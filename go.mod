module github.com/responsible-data-science/rds

go 1.21
