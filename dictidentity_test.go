// Property tests pinning the dictionary-encoding contract: a
// dict-encoded String column is a pure representation change, so every
// execution path — fairness kernels, drift scoring, the incremental
// chunk scorer, and a full FACT audit — must produce bit-identical
// results on plain and dict-encoded copies of the same frame, and
// frame.Hash plus the JSON codec must be representation-blind.
//
// Frames are randomized across the edge cases the encoding has to
// survive: unicode and whitespace-differing levels, the empty-string
// level next to genuine nulls, NaN in numeric columns, and
// high-cardinality alphabets.
package rds_test

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/fairness"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/monitor"
	"github.com/responsible-data-science/rds/internal/rng"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/synth"
)

// levelAlphabet is the categorical stress alphabet: levels differing
// only by case, only by surrounding whitespace, the empty string, and
// multi-byte unicode.
var levelAlphabet = []string{
	"A", "B", "a", "b", " A", "A ", "\tB", "",
	"été", "Ünïcode", "群体-甲", "group B",
	strings.Repeat("long-level-", 4),
}

// randGroups draws n group labels from the alphabet, forcing the first
// four rows to cover protected/reference ("B"/"A") so fairness metrics
// are always defined.
func randGroups(src *rng.Source, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = levelAlphabet[src.Intn(len(levelAlphabet))]
	}
	copy(out, []string{"A", "A", "B", "B"})
	return out
}

// randBits draws n values in {0,1} with the first four rows fixed to
// {0,1,0,1} so every forced group above sees both outcomes.
func randBits(src *rng.Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(src.Intn(2))
	}
	copy(out, []float64{0, 1, 0, 1})
	return out
}

// bitEqual is reflect.DeepEqual strengthened to the bit-identity the
// encoding contract promises: floats compare by math.Float64bits, so
// identical NaNs are equal (DeepEqual would reject them) while -0 and
// +0 are distinct (DeepEqual would conflate them). Group metrics with
// empty denominators make NaN a routine report value, so plain
// DeepEqual cannot express "the two paths computed the same bits".
func bitEqual(a, b any) bool {
	return bitEqualValue(reflect.ValueOf(a), reflect.ValueOf(b))
}

func bitEqualValue(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.Pointer, reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return bitEqualValue(a.Elem(), b.Elem())
	case reflect.Slice, reflect.Array:
		if a.Kind() == reflect.Slice && (a.IsNil() != b.IsNil()) {
			return false
		}
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !bitEqualValue(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.IsNil() != b.IsNil() || a.Len() != b.Len() {
			return false
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() || !bitEqualValue(iter.Value(), bv) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !bitEqualValue(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.String:
		return a.String() == b.String()
	case reflect.Bool:
		return a.Bool() == b.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() == b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return a.Uint() == b.Uint()
	default:
		return reflect.DeepEqual(a.Interface(), b.Interface())
	}
}

// stringPair builds value-identical plain and dict-encoded series from
// vals, marking rows null where nullAt says so. Nulls are set on the
// plain column before interning, so the dict column carries the
// canonical null encoding (code of "", null bit set).
func stringPair(name string, vals []string, nullAt []bool) (plain, dict *frame.Series) {
	plain = frame.NewString(name, vals)
	for i, isNull := range nullAt {
		if isNull {
			plain.SetNull(i)
		}
	}
	dict = plain.Intern()
	if _, _, ok := dict.DictView(); !ok {
		panic("Intern did not dictionary-encode " + name)
	}
	return plain, dict
}

// plainCloneFrame rebuilds f with every String column converted to the
// plain representation, preserving values and nulls exactly.
func plainCloneFrame(t *testing.T, f *frame.Frame) *frame.Frame {
	t.Helper()
	cols := make([]*frame.Series, f.NumCols())
	for i := 0; i < f.NumCols(); i++ {
		c := f.ColAt(i)
		if _, _, ok := c.DictView(); !ok {
			cols[i] = c
			continue
		}
		plain := frame.NewString(c.Name(), c.Strings())
		for r := 0; r < c.Len(); r++ {
			if c.IsNull(r) {
				plain.SetNull(r)
			}
		}
		cols[i] = plain
	}
	out, err := frame.New(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// dictCloneFrame rebuilds f with every plain String column interned.
func dictCloneFrame(t *testing.T, f *frame.Frame) *frame.Frame {
	t.Helper()
	cols := make([]*frame.Series, f.NumCols())
	for i := 0; i < f.NumCols(); i++ {
		cols[i] = f.ColAt(i).Intern()
	}
	out, err := frame.New(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDictIdentityFairness drives randomized labels and stress-alphabet
// group columns through every fairness entry point — the string-slice
// reference path, the plain-series path, and the dict-series path, at
// several shard counts — and demands bit-identical reports.
func TestDictIdentityFairness(t *testing.T) {
	src := rng.New(101)
	for trial := 0; trial < 20; trial++ {
		n := 4 + src.Intn(3000)
		y, pred := randBits(src, n), randBits(src, n)
		groups := randGroups(src, n)
		plain, dict := stringPair("group", groups, nil)

		want, err := fairness.Evaluate(y, pred, groups, "B", "A")
		if err != nil {
			t.Fatal(err)
		}
		wantAll, err := fairness.EvaluateAll(y, pred, groups)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range []*frame.Series{plain, dict} {
			repr := "plain"
			if _, _, ok := col.DictView(); ok {
				repr = "dict"
			}
			got, err := fairness.EvaluateSeries(y, pred, col, "B", "A")
			if err != nil {
				t.Fatal(err)
			}
			if !bitEqual(want, got) {
				t.Fatalf("trial %d: EvaluateSeries(%s) diverged:\n%+v\nvs\n%+v", trial, repr, want, got)
			}
			gotAll, err := fairness.EvaluateAllSeries(y, pred, col)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEqual(wantAll, gotAll) {
				t.Fatalf("trial %d: EvaluateAllSeries(%s) diverged", trial, repr)
			}
			for _, shards := range []int{1, 3, 8} {
				gotSh, err := fairness.EvaluateSeriesSharded(y, pred, col, "B", "A", shards)
				if err != nil {
					t.Fatal(err)
				}
				if !bitEqual(want, gotSh) {
					t.Fatalf("trial %d: EvaluateSeriesSharded(%s, shards=%d) diverged", trial, repr, shards)
				}
				gotAllSh, err := fairness.EvaluateAllSeriesSharded(y, pred, col, shards)
				if err != nil {
					t.Fatal(err)
				}
				if !bitEqual(wantAll, gotAllSh) {
					t.Fatalf("trial %d: EvaluateAllSeriesSharded(%s, shards=%d) diverged", trial, repr, shards)
				}
			}
		}
	}
}

// TestDictIdentityFairnessHighCardinality repeats the fairness identity
// on a column with thousands of distinct levels, where the kernel's
// code-indexed tally arrays are largest.
func TestDictIdentityFairnessHighCardinality(t *testing.T) {
	src := rng.New(211)
	const n = 20_000
	groups := make([]string, n)
	for i := range groups {
		groups[i] = fmt.Sprintf("level-%04d", src.Intn(5000))
	}
	copy(groups, []string{"A", "A", "B", "B"})
	y, pred := randBits(src, n), randBits(src, n)
	plain, dict := stringPair("group", groups, nil)

	want, err := fairness.EvaluateAllSeries(y, pred, plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fairness.EvaluateAllSeriesSharded(y, pred, dict, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(want, got) {
		t.Fatal("high-cardinality EvaluateAll diverged between plain and dict")
	}
	if len(want.Groups) < 4000 {
		t.Fatalf("expected thousands of groups, got %d", len(want.Groups))
	}
}

// randDriftFrame builds an n-row frame with one NaN-sprinkled numeric
// column and two stress-alphabet categorical columns (one carrying
// nulls), returned in plain and dict-encoded forms.
func randDriftFrame(t *testing.T, src *rng.Source, n int) (plain, dict *frame.Frame) {
	t.Helper()
	nums := make([]float64, n)
	for i := range nums {
		nums[i] = src.Normal(50, 12)
		if src.Intn(40) == 0 {
			nums[i] = math.NaN()
		}
	}
	cats := randGroups(src, n)
	cats2 := make([]string, n)
	nullAt := make([]bool, n)
	for i := range cats2 {
		cats2[i] = levelAlphabet[src.Intn(len(levelAlphabet))]
		nullAt[i] = src.Intn(25) == 0
	}
	num := frame.NewFloat64("score", nums)
	catPlain, catDict := stringPair("segment", cats, nil)
	cat2Plain, cat2Dict := stringPair("region", cats2, nullAt)
	p, err := frame.New(num, catPlain, cat2Plain)
	if err != nil {
		t.Fatal(err)
	}
	d, err := frame.New(num, catDict, cat2Dict)
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

// TestDictIdentityDrift checks DetectDrift and the profiled path return
// bit-identical reports for plain and dict frames in every
// baseline/current representation pairing, including vanishing and
// novel levels between the two samples.
func TestDictIdentityDrift(t *testing.T) {
	src := rng.New(307)
	for trial := 0; trial < 8; trial++ {
		basePlain, baseDict := randDriftFrame(t, src, 500+src.Intn(2000))
		curPlain, curDict := randDriftFrame(t, src, 200+src.Intn(1000))
		cfg := monitor.DriftConfig{}
		want, err := monitor.DetectDrift(basePlain, curPlain, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct {
			name      string
			base, cur *frame.Frame
		}{
			{"dict/dict", baseDict, curDict},
			{"dict/plain", baseDict, curPlain},
			{"plain/dict", basePlain, curDict},
		} {
			got, err := monitor.DetectDrift(pair.base, pair.cur, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEqual(want, got) {
				t.Fatalf("trial %d: DetectDrift(%s) diverged from plain/plain", trial, pair.name)
			}
		}
		profPlain, err := monitor.NewBaselineProfile(basePlain, cfg)
		if err != nil {
			t.Fatal(err)
		}
		profDict, err := monitor.NewBaselineProfile(baseDict, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantProf, err := monitor.DetectDriftProfiled(profPlain, curPlain)
		if err != nil {
			t.Fatal(err)
		}
		gotProf, err := monitor.DetectDriftProfiled(profDict, curDict)
		if err != nil {
			t.Fatal(err)
		}
		if !bitEqual(wantProf, gotProf) {
			t.Fatalf("trial %d: DetectDriftProfiled diverged between representations", trial)
		}
	}
}

// TestDictIdentityChunkScorer runs the incremental chunk scorer over
// plain and dict-encoded chunkings of the same stream and demands
// bit-identical drift reports — and both must equal the
// non-incremental profiled rescan of the materialized window.
func TestDictIdentityChunkScorer(t *testing.T) {
	src := rng.New(409)
	const chunkRows, chunks = 400, 6
	basePlain, _ := randDriftFrame(t, src, 2500)
	prof, err := monitor.NewBaselineProfile(basePlain, monitor.DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	streamPlain, streamDict := randDriftFrame(t, src, chunkRows*chunks)
	chunksOf := func(f *frame.Frame) []monitor.Chunk {
		out := make([]monitor.Chunk, chunks)
		for i := range out {
			rows := f.Slice(i*chunkRows, (i+1)*chunkRows)
			out[i] = monitor.Chunk{Rows: rows, Hash: rows.Hash()}
		}
		return out
	}
	plainChunks, dictChunks := chunksOf(streamPlain), chunksOf(streamDict)
	for i := range plainChunks {
		if plainChunks[i].Hash != dictChunks[i].Hash {
			t.Fatalf("chunk %d hash differs between representations", i)
		}
	}
	score := func(cs []monitor.Chunk) *monitor.DriftReport {
		sc, err := monitor.NewChunkScorer(prof, dataset.NewStateCache(dataset.DefaultStateBudgetBytes))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sc.Score(cs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want, got := score(plainChunks), score(dictChunks)
	if !bitEqual(want, got) {
		t.Fatal("ChunkScorer reports diverged between plain and dict chunks")
	}
	rescan, err := monitor.DetectDriftProfiled(prof, streamDict)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(want, rescan) {
		t.Fatalf("incremental report diverged from rescan:\n%+v\nvs\n%+v", want, rescan)
	}
}

// TestDictIdentityPipelineAudit runs the full Train+Audit pipeline on
// the dict-encoded synthetic credit dataset and on a plain-string clone
// and demands bit-identity on the complete FACT reports.
func TestDictIdentityPipelineAudit(t *testing.T) {
	data, err := synth.Credit(synth.CreditConfig{N: 4000, Bias: 1.0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := data.MustCol("group").DictView(); !ok {
		t.Fatal("synth group column should arrive dictionary-encoded")
	}
	plain := plainCloneFrame(t, data)
	if plain.Hash() != data.Hash() {
		t.Fatal("plain clone changed the frame hash")
	}
	audit := func(f *frame.Frame) *core.FACTReport {
		p, err := core.New(core.Config{Name: "credit", Policy: serve.DefaultPolicy(), Seed: 7, Actor: "test"})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Load("credit", f); err != nil {
			t.Fatal(err)
		}
		tm, err := p.Train(core.TrainSpec{
			Target: "approved", Sensitive: "group",
			Protected: "B", Reference: "A", Epochs: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Audit(tm)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want, got := audit(plain), audit(data)
	if !bitEqual(want, got) {
		t.Fatalf("FACT report diverged between representations:\n%+v\nvs\n%+v", want, got)
	}
}

// TestDictIdentityHashAndCodec checks representation-blind hashing and
// codec round-trips on randomized frames: plain and interned copies
// hash identically, WriteJSON/ReadJSON preserves Hash, values, and the
// dictionary representation, and a dictionary level that is not valid
// UTF-8 survives through the base64 escape path.
func TestDictIdentityHashAndCodec(t *testing.T) {
	src := rng.New(503)
	roundTrip := func(f *frame.Frame) *frame.Frame {
		var buf bytes.Buffer
		if err := f.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := frame.ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return back
	}
	for trial := 0; trial < 10; trial++ {
		plain, dict := randDriftFrame(t, src, 50+src.Intn(500))
		if plain.Hash() != dict.Hash() {
			t.Fatalf("trial %d: interning changed the frame hash", trial)
		}
		if !plain.Equal(dict) {
			t.Fatalf("trial %d: interning changed frame values", trial)
		}
		back := roundTrip(dict)
		if back.Hash() != dict.Hash() {
			t.Fatalf("trial %d: codec round-trip changed the hash", trial)
		}
		if !back.Equal(dict) {
			t.Fatalf("trial %d: codec round-trip changed values", trial)
		}
		for i := 0; i < back.NumCols(); i++ {
			before, after := back.ColAt(i), dict.ColAt(i)
			_, _, wantDict := after.DictView()
			_, _, gotDict := before.DictView()
			if wantDict != gotDict {
				t.Fatalf("trial %d: column %q representation not preserved (dict=%v -> %v)",
					trial, after.Name(), wantDict, gotDict)
			}
		}
		// Re-interning the plain round-trip must land on the same hash too.
		if got := dictCloneFrame(t, roundTrip(plain)).Hash(); got != plain.Hash() {
			t.Fatalf("trial %d: re-interned round-trip hash diverged", trial)
		}
	}

	// Invalid UTF-8 dictionary level: forces the codec's base64 escape.
	codes := []int32{0, 1, 2, 1, 0}
	dict := []string{"ok", "\xff\xfe-binary", ""}
	col, err := frame.NewStringDict("raw", codes, dict)
	if err != nil {
		t.Fatal(err)
	}
	f, err := frame.New(col)
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(f)
	if back.Hash() != f.Hash() || !back.Equal(f) {
		t.Fatal("invalid-UTF-8 dictionary level did not survive the codec round-trip")
	}
	if _, _, ok := back.MustCol("raw").DictView(); !ok {
		t.Fatal("invalid-UTF-8 column came back plain")
	}
}
