// Command doclint is the stdlib-only doc-comment lint CI runs: it
// fails (exit 1) when a listed package contains an exported top-level
// identifier — function, method on an exported type, type, const, or
// var — without a doc comment, so `go doc` stays complete for the
// packages whose API other layers build on.
//
// An argument ending in /... lints every package under that root, so
// CI covers the whole module:
//
//	go run ./scripts/doclint ./...
//	go run ./scripts/doclint ./internal/monitor ./internal/serve
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package dir | root/...> [...]")
		os.Exit(2)
	}
	dirs, err := expand(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	var problems []string
	for _, dir := range dirs {
		p, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doclint: %d exported identifier(s) missing doc comments\n", len(problems))
		os.Exit(1)
	}
}

// expand resolves arguments into package directories: a plain argument
// passes through, an argument ending in /... walks its root for every
// directory holding Go files (hidden directories and testdata skipped).
func expand(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		root, rec := strings.CutSuffix(a, "/...")
		if !rec {
			out = append(out, a)
			continue
		}
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					out = append(out, path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("expanding %s: %w", a, err)
		}
	}
	return out, nil
}

// lintDir parses one package directory (tests excluded) and returns a
// "file:line: ..." report per undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", dir, err)
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		out = append(out, fmt.Sprintf("%s: exported %s %s is missing a doc comment", fset.Position(pos), kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return out, nil
}

// lintGenDecl checks a type/const/var declaration: a doc comment on the
// grouped declaration covers every spec in it (the idiom for const
// blocks); otherwise each spec with an exported name needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && !groupDoc && s.Doc == nil {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is
// exported (methods on unexported types are not part of the API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return true
}
