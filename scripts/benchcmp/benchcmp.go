// Command benchcmp is the benchmark regression gate CI runs: it
// compares a fresh benchjson document (BENCH_ci.json) against the
// committed baseline documents (BENCH_7.json, BENCH_8.json, ...) and
// exits non-zero when any shared headline benchmark's throughput
// dropped by more than the threshold. Throughput is any "per-second"
// metric benchjson captured (rows/s, req/s, windows/s, records/s,
// audits/s) — higher is better; entries without one fall back to
// ns/op, lower is better.
//
//	go run ./scripts/benchcmp -current BENCH_ci.json BENCH_7.json BENCH_8.json
//
// Baselines are applied in argument order and later files win, so a
// newer era's committed numbers supersede an older era's for the
// benchmarks both recorded while benchmarks only the old era ran are
// still gated. Benchmarks present on only one side are ignored: the
// gate guards regressions, not coverage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// entry mirrors the benchjson document schema (scripts/benchjson).
type entry struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// doc mirrors the top-level benchjson document.
type doc struct {
	Entries []entry `json:"entries"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main behind a testable seam: it parses args with its own
// FlagSet, runs the gate, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	current := fs.String("current", "BENCH_ci.json", "fresh benchjson document to gate")
	threshold := fs.Float64("threshold", 0.20, "fail when throughput drops more than this fraction below baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "benchcmp: need at least one baseline file argument")
		return 2
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 1
	}
	base := map[string]entry{}
	for _, path := range fs.Args() {
		d, err := load(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchcmp: %v\n", err)
			return 1
		}
		for _, e := range d.Entries {
			base[e.Name] = e // later files win
		}
	}
	regressions := Compare(base, cur.Entries, *threshold, stdout)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(stderr, "benchcmp: REGRESSION "+r)
		}
		return 1
	}
	fmt.Fprintf(stdout, "benchcmp: %d shared benchmark(s) within %.0f%% of baseline\n", shared(base, cur.Entries), *threshold*100)
	return 0
}

// Compare checks every current entry that also exists in base and
// returns a description of each regression past the threshold. Matched
// comparisons are logged to out as they happen so CI shows the ratios
// even when everything passes.
func Compare(base map[string]entry, current []entry, threshold float64, out io.Writer) []string {
	var regressions []string
	names := make([]string, 0, len(current))
	byName := map[string]entry{}
	for _, e := range current {
		names = append(names, e.Name)
		byName[e.Name] = e
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			continue
		}
		c := byName[name]
		metric, bv, cv, higherBetter := pickMetric(b, c)
		if metric == "" || bv <= 0 || cv <= 0 {
			continue
		}
		ratio := cv / bv
		status := "ok"
		bad := (higherBetter && ratio < 1-threshold) || (!higherBetter && ratio > 1/(1-threshold))
		if bad {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %s %.4g -> %.4g (%.1f%% of baseline)",
				name, metric, bv, cv, ratio*100))
		}
		if out != nil {
			fmt.Fprintf(out, "%-55s %-10s %12.4g -> %-12.4g %6.1f%%  %s\n", name, metric, bv, cv, ratio*100, status)
		}
	}
	return regressions
}

// pickMetric chooses the comparison metric two entries share: the
// first (alphabetical) "per-second" throughput metric both report, or
// ns/op when there is none. higherBetter reports the direction.
func pickMetric(b, c entry) (name string, bv, cv float64, higherBetter bool) {
	keys := make([]string, 0, len(b.Metrics))
	for k := range b.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if len(k) > 2 && k[len(k)-2:] == "/s" {
			if cvv, ok := c.Metrics[k]; ok {
				return k, b.Metrics[k], cvv, true
			}
		}
	}
	if b.NsPerOp > 0 && c.NsPerOp > 0 {
		return "ns/op", b.NsPerOp, c.NsPerOp, false
	}
	return "", 0, 0, false
}

// shared counts current entries with a baseline counterpart.
func shared(base map[string]entry, current []entry) int {
	n := 0
	for _, e := range current {
		if _, ok := base[e.Name]; ok {
			n++
		}
	}
	return n
}

// load reads one benchjson document.
func load(path string) (*doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Entries) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", path)
	}
	return &d, nil
}
