package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func e(name string, ns float64, metrics map[string]float64) entry {
	return entry{Name: name, NsPerOp: ns, Metrics: metrics}
}

func TestCompareThroughputRegression(t *testing.T) {
	base := map[string]entry{
		"BenchmarkShardedAudit/shards=1": e("BenchmarkShardedAudit/shards=1", 100, map[string]float64{"rows/s": 20_000_000}),
	}
	// 25% throughput drop: past the 20% gate.
	cur := []entry{e("BenchmarkShardedAudit/shards=1", 130, map[string]float64{"rows/s": 15_000_000})}
	regs := Compare(base, cur, 0.20, nil)
	if len(regs) != 1 || !strings.Contains(regs[0], "rows/s") {
		t.Fatalf("want one rows/s regression, got %v", regs)
	}
	// 15% drop: within tolerance.
	cur = []entry{e("BenchmarkShardedAudit/shards=1", 115, map[string]float64{"rows/s": 17_000_000})}
	if regs := Compare(base, cur, 0.20, nil); len(regs) != 0 {
		t.Fatalf("15%% drop should pass, got %v", regs)
	}
	// Improvement never fails.
	cur = []entry{e("BenchmarkShardedAudit/shards=1", 50, map[string]float64{"rows/s": 40_000_000})}
	if regs := Compare(base, cur, 0.20, nil); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareNsPerOpFallback(t *testing.T) {
	base := map[string]entry{"BenchmarkX": e("BenchmarkX", 100, nil)}
	// ns/op is lower-better: 100 -> 150 is a 33% slowdown, past the gate.
	if regs := Compare(base, []entry{e("BenchmarkX", 150, nil)}, 0.20, nil); len(regs) != 1 {
		t.Fatalf("ns/op slowdown should fail, got %v", regs)
	}
	// 100 -> 110 stays inside the 20% budget (110 < 100/0.8).
	if regs := Compare(base, []entry{e("BenchmarkX", 110, nil)}, 0.20, nil); len(regs) != 0 {
		t.Fatalf("small ns/op slowdown should pass, got %v", regs)
	}
}

func TestCompareIgnoresUnsharedEntries(t *testing.T) {
	base := map[string]entry{"BenchmarkOld": e("BenchmarkOld", 100, map[string]float64{"rows/s": 1000})}
	cur := []entry{e("BenchmarkNew", 100, map[string]float64{"rows/s": 1})}
	if regs := Compare(base, cur, 0.20, nil); len(regs) != 0 {
		t.Fatalf("unshared benchmarks must not gate, got %v", regs)
	}
}

func TestCompareLaterBaselineWins(t *testing.T) {
	// main() folds baseline files in order with later entries
	// overwriting; simulate the fold here.
	base := map[string]entry{}
	for _, d := range [][]entry{
		{e("BenchmarkShardedAudit/shards=1", 0, map[string]float64{"rows/s": 4_700_000})},  // era 7
		{e("BenchmarkShardedAudit/shards=1", 0, map[string]float64{"rows/s": 20_000_000})}, // era 8
	} {
		for _, en := range d {
			base[en.Name] = en
		}
	}
	// 10M rows/s beats era 7 but regresses era 8 — the newer baseline
	// must be the one that gates.
	cur := []entry{e("BenchmarkShardedAudit/shards=1", 0, map[string]float64{"rows/s": 10_000_000})}
	if regs := Compare(base, cur, 0.20, nil); len(regs) != 1 {
		t.Fatalf("newer baseline should gate, got %v", regs)
	}
}

// writeDoc writes a benchjson document with the given entries to a
// temp file and returns its path.
func writeDoc(t *testing.T, name string, entries ...entry) string {
	t.Helper()
	raw, err := json.Marshal(doc{Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGateEndToEnd(t *testing.T) {
	era7 := writeDoc(t, "BENCH_7.json",
		e("BenchmarkShardedAudit/shards=1", 0, map[string]float64{"rows/s": 4_700_000}),
		e("BenchmarkOldOnly", 100, nil))
	era8 := writeDoc(t, "BENCH_8.json",
		e("BenchmarkShardedAudit/shards=1", 0, map[string]float64{"rows/s": 16_000_000}))

	var stdout, stderr bytes.Buffer
	ciOK := writeDoc(t, "ci_ok.json",
		e("BenchmarkShardedAudit/shards=1", 0, map[string]float64{"rows/s": 15_500_000}))
	if code := run([]string{"-current", ciOK, era7, era8}, &stdout, &stderr); code != 0 {
		t.Fatalf("healthy run = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "1 shared benchmark(s)") {
		t.Fatalf("stdout missing pass summary: %q", stdout.String())
	}

	// Beats era 7 but regresses era 8 — the later baseline gates.
	stdout.Reset()
	stderr.Reset()
	ciBad := writeDoc(t, "ci_bad.json",
		e("BenchmarkShardedAudit/shards=1", 0, map[string]float64{"rows/s": 10_000_000}))
	if code := run([]string{"-current", ciBad, era7, era8}, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "REGRESSION") {
		t.Fatalf("stderr missing regression report: %q", stderr.String())
	}
}

func TestRunArgumentErrors(t *testing.T) {
	base := writeDoc(t, "base.json", e("BenchmarkX", 100, nil))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag: run = %d, want 2", code)
	}
	if code := run([]string{"-current", base}, &stdout, &stderr); code != 2 {
		t.Fatalf("no baselines: run = %d, want 2", code)
	}
	if code := run([]string{"-current", "missing.json", base}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing current: run = %d, want 1", code)
	}
	if code := run([]string{"-current", base, "missing.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing baseline: run = %d, want 1", code)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-current", empty, base}, &stdout, &stderr); code != 1 {
		t.Fatalf("empty current: run = %d, want 1", code)
	}
	if code := run([]string{"-current", base, empty + "x"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unreadable baseline: run = %d, want 1", code)
	}
}
