#!/usr/bin/env bash
# Process-level durability smoke: boot rds-serve with -state-dir,
# upload a dataset, register a baseline_ref monitor, and submit a
# seven-stage remediation pipeline over HTTP, kill -9 the process,
# boot a fresh one over the same directory, and assert the dataset and
# the pinned monitor came back and the pipeline record finishes done
# with every stage — whether the SIGKILL landed mid-run (the boot path
# resumes it at its last persisted stage) or after it completed (the
# boot path finalizes it). This is the shell-level twin of
# internal/e2e TestRestartEndToEnd and TestPipelineRestartEndToEnd —
# it exercises the real binary and a real SIGKILL instead of an
# in-process stop.
#
# Usage: scripts/restart_smoke.sh [port]
set -euo pipefail

PORT="${1:-18080}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
STATE_DIR="$(mktemp -d)"
BIN="$(mktemp -d)/rds-serve"
SERVER_PID=""

cleanup() {
  [ -n "${SERVER_PID}" ] && kill -9 "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${STATE_DIR}" "$(dirname "${BIN}")"
}
trap cleanup EXIT

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "${BASE}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "restart_smoke: server on ${ADDR} never became ready" >&2
  exit 1
}

# Extract a top-level string field from a JSON object without jq.
json_field() { # json_field <field-name>
  sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\"\([^\"]*\)\".*/\1/p" | head -1
}

go build -o "${BIN}" ./cmd/rds-serve

csv="income,group,approved
50000,A,1
32000,B,0
71000,A,1
28000,B,0
64000,A,1
30000,B,1
55000,A,0
45000,B,1"

# ---- First life ----------------------------------------------------
"${BIN}" -addr "${ADDR}" -state-dir "${STATE_DIR}" &
SERVER_PID=$!
wait_ready

ref=$(curl -fsS "${BASE}/v1/datasets" -H 'Content-Type: text/csv' \
  --data-binary "${csv}" | json_field ref)
[ -n "${ref}" ] || { echo "restart_smoke: dataset upload returned no ref" >&2; exit 1; }

mon=$(curl -fsS "${BASE}/v1/monitors" -H 'Content-Type: application/json' \
  -d "{\"name\":\"smoke\",\"baseline_ref\":\"${ref}\",\"window_ms\":1000,\"epochs\":2}" \
  | json_field id)
[ -n "${mon}" ] || { echo "restart_smoke: monitor registration returned no id" >&2; exit 1; }

# A larger biased population for the remediation curriculum: group A
# approves at 80%, group B at 20%, so the unmitigated audit fails and
# the mitigate/retrain stages do real work.
pipe_csv="income,group,approved"
for i in $(seq 1 150); do
  a=1; b=0
  if [ $((i % 5)) -eq 0 ]; then a=0; b=1; fi
  pipe_csv="${pipe_csv}
$((40000 + i * 13)),A,${a}
$((30000 + i * 11)),B,${b}"
done
pipe_ref=$(curl -fsS "${BASE}/v1/datasets" -H 'Content-Type: text/csv' \
  --data-binary "${pipe_csv}" | json_field ref)
[ -n "${pipe_ref}" ] || { echo "restart_smoke: pipeline dataset upload returned no ref" >&2; exit 1; }

pl=$(curl -fsS "${BASE}/v1/pipelines" -H 'Content-Type: application/json' \
  -d "{\"dataset_ref\":\"${pipe_ref}\",\"epochs\":10,\"seed\":3}" | json_field id)
[ -n "${pl}" ] || { echo "restart_smoke: pipeline submission returned no id" >&2; exit 1; }

echo "restart_smoke: first life registered dataset ${ref}, monitor ${mon}, pipeline ${pl}; sending SIGKILL"
kill -9 "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

# ---- Second life ---------------------------------------------------
"${BIN}" -addr "${ADDR}" -state-dir "${STATE_DIR}" &
SERVER_PID=$!
wait_ready

status=$(curl -fsS "${BASE}/v1/monitors/${mon}")
echo "${status}" | tr -d ' ' | grep -q '"baseline_pinned":true' || {
  echo "restart_smoke: restored monitor lost its pinned baseline: ${status}" >&2; exit 1; }
echo "${status}" | tr -d ' ' | grep -q '"degraded":true' && {
  echo "restart_smoke: restored monitor is degraded: ${status}" >&2; exit 1; }
curl -fsS "${BASE}/v1/datasets/${ref}" >/dev/null || {
  echo "restart_smoke: baseline dataset did not survive restart" >&2; exit 1; }

# The pipeline record survived and finishes the full curriculum: the
# boot path resumed it at its last persisted stage if the SIGKILL
# landed mid-run, or finalized it if the run had already completed.
# Only the record's top-level status can read running/queued (stage
# records are written complete), so whitespace-stripped absence of
# those is the terminal signal.
rec=""
for _ in $(seq 1 300); do
  rec=$(curl -fsS "${BASE}/v1/pipelines/${pl}" | tr -d ' \n\t' || true)
  case "${rec}" in
    *'"status":"running"'*|*'"status":"queued"'*|"") sleep 0.1 ;;
    *) break ;;
  esac
done
case "${rec}" in
  *'"status":"failed"'*|"")
    echo "restart_smoke: pipeline ${pl} did not finish done after restart: ${rec}" >&2; exit 1 ;;
esac
stages=$(printf '%s' "${rec}" | grep -o '"stage":"' | wc -l)
[ "${stages}" -eq 7 ] || {
  echo "restart_smoke: pipeline ${pl} finished with ${stages} stages, want 7: ${rec}" >&2; exit 1; }

echo "restart_smoke: OK — monitor ${mon}, dataset ${ref}, and pipeline ${pl} survived kill -9"
