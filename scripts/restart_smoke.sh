#!/usr/bin/env bash
# Process-level durability smoke: boot rds-serve with -state-dir,
# upload a dataset and register a baseline_ref monitor over HTTP,
# kill -9 the process, boot a fresh one over the same directory, and
# assert the dataset and the pinned monitor came back. This is the
# shell-level twin of internal/e2e TestRestartEndToEnd — it exercises
# the real binary and a real SIGKILL instead of an in-process stop.
#
# Usage: scripts/restart_smoke.sh [port]
set -euo pipefail

PORT="${1:-18080}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
STATE_DIR="$(mktemp -d)"
BIN="$(mktemp -d)/rds-serve"
SERVER_PID=""

cleanup() {
  [ -n "${SERVER_PID}" ] && kill -9 "${SERVER_PID}" 2>/dev/null || true
  rm -rf "${STATE_DIR}" "$(dirname "${BIN}")"
}
trap cleanup EXIT

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "${BASE}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "restart_smoke: server on ${ADDR} never became ready" >&2
  exit 1
}

# Extract a top-level string field from a JSON object without jq.
json_field() { # json_field <field-name>
  sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\"\([^\"]*\)\".*/\1/p" | head -1
}

go build -o "${BIN}" ./cmd/rds-serve

csv="income,group,approved
50000,A,1
32000,B,0
71000,A,1
28000,B,0
64000,A,1
30000,B,1
55000,A,0
45000,B,1"

# ---- First life ----------------------------------------------------
"${BIN}" -addr "${ADDR}" -state-dir "${STATE_DIR}" &
SERVER_PID=$!
wait_ready

ref=$(curl -fsS "${BASE}/v1/datasets" -H 'Content-Type: text/csv' \
  --data-binary "${csv}" | json_field ref)
[ -n "${ref}" ] || { echo "restart_smoke: dataset upload returned no ref" >&2; exit 1; }

mon=$(curl -fsS "${BASE}/v1/monitors" -H 'Content-Type: application/json' \
  -d "{\"name\":\"smoke\",\"baseline_ref\":\"${ref}\",\"window_ms\":1000,\"epochs\":2}" \
  | json_field id)
[ -n "${mon}" ] || { echo "restart_smoke: monitor registration returned no id" >&2; exit 1; }

echo "restart_smoke: first life registered dataset ${ref} and monitor ${mon}; sending SIGKILL"
kill -9 "${SERVER_PID}"
wait "${SERVER_PID}" 2>/dev/null || true
SERVER_PID=""

# ---- Second life ---------------------------------------------------
"${BIN}" -addr "${ADDR}" -state-dir "${STATE_DIR}" &
SERVER_PID=$!
wait_ready

status=$(curl -fsS "${BASE}/v1/monitors/${mon}")
echo "${status}" | tr -d ' ' | grep -q '"baseline_pinned":true' || {
  echo "restart_smoke: restored monitor lost its pinned baseline: ${status}" >&2; exit 1; }
echo "${status}" | tr -d ' ' | grep -q '"degraded":true' && {
  echo "restart_smoke: restored monitor is degraded: ${status}" >&2; exit 1; }
curl -fsS "${BASE}/v1/datasets/${ref}" >/dev/null || {
  echo "restart_smoke: baseline dataset did not survive restart" >&2; exit 1; }

echo "restart_smoke: OK — monitor ${mon} and dataset ${ref} survived kill -9"
