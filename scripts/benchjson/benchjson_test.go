package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/responsible-data-science/rds
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSlidingReaudit/delta=1%/incremental         	       3	 332322845 ns/op	   3009160 rows/s	         3.009 windows/s
BenchmarkSlidingReaudit/delta=1%/rescan              	       1	8709246862 ns/op	    114821 rows/s	         0.1148 windows/s
BenchmarkShardedAudit/shards=8-8   	      12	  95000000 ns/op	  10526315 rows/s	    1024 B/op	       7 allocs/op
PASS
ok  	github.com/responsible-data-science/rds	53.843s
`

func TestParseSample(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("context = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	if len(doc.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(doc.Entries))
	}
	e := doc.Entries[0]
	if e.Name != "BenchmarkSlidingReaudit/delta=1%/incremental" {
		t.Errorf("name = %q", e.Name)
	}
	if e.Pkg != "github.com/responsible-data-science/rds" {
		t.Errorf("pkg = %q", e.Pkg)
	}
	if e.Iterations != 3 || e.NsPerOp != 332322845 {
		t.Errorf("iters/ns = %d/%v", e.Iterations, e.NsPerOp)
	}
	if e.Metrics["rows/s"] != 3009160 || e.Metrics["windows/s"] != 3.009 {
		t.Errorf("metrics = %v", e.Metrics)
	}
	sharded := doc.Entries[2]
	if sharded.Name != "BenchmarkShardedAudit/shards=8" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", sharded.Name)
	}
	if sharded.Metrics["B/op"] != 1024 || sharded.Metrics["allocs/op"] != 7 {
		t.Errorf("benchmem metrics = %v", sharded.Metrics)
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",                   // name printed alone before result
		"BenchmarkFoo 12",                // no measurements
		"BenchmarkFoo twelve 3 ns/op x",  // non-numeric iterations
		"BenchmarkFoo 12 abc ns/op junk", // non-numeric value
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
	e, ok := parseLine("BenchmarkBare-16 5 100 ns/op")
	if !ok || e.Name != "BenchmarkBare" || e.NsPerOp != 100 || len(e.Metrics) != 0 {
		t.Errorf("parseLine minimal = %+v, %v", e, ok)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := parse(strings.NewReader("PASS\nok pkg 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entries) != 0 {
		t.Fatalf("entries = %d, want 0", len(doc.Entries))
	}
}
