// Command benchjson converts `go test -bench` text output into a JSON
// document the repo commits as BENCH_<n>.json and CI uploads as an
// artifact, so benchmark history is diffable instead of buried in logs.
// It reads bench output on stdin (or from a file argument) and writes a
// JSON object to stdout or to the path given with -o:
//
//	go test -run NONE -bench . -benchmem ./... | go run ./scripts/benchjson -o BENCH_ci.json
//
// Each benchmark line becomes an entry keyed by its full sub-benchmark
// name with the parallelism suffix stripped, carrying iterations,
// ns/op, and every extra metric the benchmark reported (rows/s,
// windows/s, B/op, allocs/op, ...). Context lines (goos, goarch, cpu,
// pkg) are captured as they appear and attached to subsequent entries.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchEntry is one parsed benchmark result line.
type benchEntry struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchDoc is the JSON document benchjson emits.
type benchDoc struct {
	Goos    string       `json:"goos,omitempty"`
	Goarch  string       `json:"goarch,omitempty"`
	CPU     string       `json:"cpu,omitempty"`
	Entries []benchEntry `json:"entries"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	doc, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(doc.Entries) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// parse scans go-test bench output, collecting context lines and every
// line that starts with "Benchmark".
func parse(r io.Reader) (*benchDoc, error) {
	doc := &benchDoc{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			e, ok := parseLine(line)
			if !ok {
				continue // e.g. "BenchmarkFoo" printed alone before its result
			}
			e.Pkg = pkg
			doc.Entries = append(doc.Entries, e)
		}
	}
	return doc, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  123  45678 ns/op  9.1 rows/s  2 allocs/op
//
// into a benchEntry. The -N GOMAXPROCS suffix is stripped from the
// name; every "<value> <unit>" pair after the iteration count becomes
// either ns_per_op or a named metric.
func parseLine(line string) (benchEntry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchEntry{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchEntry{}, false
	}
	e := benchEntry{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchEntry{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			e.NsPerOp = val
			continue
		}
		if e.Metrics == nil {
			e.Metrics = map[string]float64{}
		}
		e.Metrics[unit] = val
	}
	return e, true
}
