// Package tenant makes the client a first-class concept in every plane
// of the audit service. A tenant id arrives on each HTTP request
// (X-RDS-Tenant header or a "tenant" wire field), is validated once at
// the edge, and is threaded via context through admission control
// (per-tenant queues and token buckets in internal/serve), resource
// quotas (dataset-registry bytes and counts, monitor counts), durable
// ownership (every persisted dataset and monitor records its owner),
// and observability (per-tenant /metrics slices and the
// /v1/tenants/{id}/report responsibility roll-up in internal/report).
//
// The package itself is deliberately small: id validation, the context
// plumbing, the Quotas vocabulary shared by all planes, and a Registry
// of per-tenant quota overrides persisted through the storage port
// (store.KindTenant). Usage accounting lives in the planes that own the
// resources; this package only says who may use how much.
package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/responsible-data-science/rds/internal/store"
)

// Default is the tenant every request without an explicit id runs as —
// single-tenant deployments never need to name a tenant at all.
const Default = "default"

// MaxIDLen bounds a tenant id. Ids are embedded in storage keys
// ("tenant.ref" for dataset records), so the bound keeps composite keys
// within store.ValidID's 128-byte limit.
const MaxIDLen = 40

// ErrQuota marks an admission or resource request that exceeds the
// tenant's configured quota. The HTTP layer maps it to 429: the tenant
// is over its own budget while the service has capacity to spare.
var ErrQuota = errors.New("tenant: quota exceeded")

// ErrInvalidID rejects tenant ids that are unsafe as storage-key or
// header material (see ValidID).
var ErrInvalidID = errors.New("tenant: invalid tenant id")

// ErrInvalidQuota rejects malformed quota configurations (negative
// fields). The HTTP layer maps it to 400, against the 500 a storage
// failure answers.
var ErrInvalidQuota = errors.New("tenant: invalid quotas")

// ValidID reports whether id is a well-formed tenant id: lowercase
// ASCII letters, digits, '-' or '_', starting with a letter or digit,
// 1..MaxIDLen bytes. Dots are excluded on purpose — "tenant.ref"
// composite storage keys split on the first dot.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > MaxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

// Normalize maps an optional wire-level tenant id to its canonical
// form: empty selects Default, anything else must pass ValidID.
func Normalize(id string) (string, error) {
	if id == "" {
		return Default, nil
	}
	if !ValidID(id) {
		return "", fmt.Errorf("%w: %q (want [a-z0-9][a-z0-9_-]*, at most %d bytes)", ErrInvalidID, id, MaxIDLen)
	}
	return id, nil
}

// ctxKey is the private context key carrying the request's tenant id.
type ctxKey struct{}

// NewContext returns ctx carrying an explicit, already-validated
// tenant id. The HTTP edge (internal/httpx + serve.Handler) calls it
// once per request; everything downstream reads FromContext.
func NewContext(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext returns the tenant id carried by ctx and whether one was
// explicitly set. Callers that just want an effective id should use
// Or instead.
func FromContext(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(ctxKey{}).(string)
	return id, ok
}

// Or resolves the effective tenant for a request: the context's
// explicit id when the edge set one, otherwise the (possibly empty)
// wire-level fallback, normalized. It is the one defaulting rule every
// plane shares, so a header and a body field can never disagree about
// who a request belongs to — the header, validated first, wins.
func Or(ctx context.Context, fallback string) (string, error) {
	if id, ok := FromContext(ctx); ok {
		return id, nil
	}
	return Normalize(fallback)
}

// Quotas is the per-tenant resource vocabulary every plane enforces.
// The zero value of each field means "no limit" (and weight 1), so the
// zero Quotas reproduces the historical single-tenant behavior exactly.
type Quotas struct {
	// Weight is the tenant's share in the engine's weighted-fair
	// dequeue (deficit round-robin). 0 means 1.
	Weight int `json:"weight,omitempty"`
	// RatePerSec and Burst parameterize the tenant's token-bucket
	// admission: at most Burst queued submissions instantaneously and
	// RatePerSec sustained. RatePerSec 0 disables the bucket.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: max(1, ceil(RatePerSec))).
	Burst int `json:"burst,omitempty"`
	// MaxQueue bounds the tenant's queued (not yet running) jobs; 0
	// falls back to the engine's aggregate queue capacity.
	MaxQueue int `json:"max_queue,omitempty"`
	// MaxRegistryBytes bounds the tenant's resident dataset bytes in
	// the dataset registry (0 = only the registry-wide budget applies).
	MaxRegistryBytes int64 `json:"max_registry_bytes,omitempty"`
	// MaxDatasets bounds the tenant's resident dataset count.
	MaxDatasets int `json:"max_datasets,omitempty"`
	// MaxMonitors bounds the tenant's registered monitor count.
	MaxMonitors int `json:"max_monitors,omitempty"`
	// MaxPipelines bounds the tenant's live (unfinished) staged
	// pipeline runs.
	MaxPipelines int `json:"max_pipelines,omitempty"`
}

// EffectiveWeight returns the DRR weight, mapping 0 (and negatives) to 1.
func (q Quotas) EffectiveWeight() int {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// EffectiveBurst returns the token-bucket capacity implied by the
// quotas: Burst when set, else at least one token's worth of the rate.
func (q Quotas) EffectiveBurst() float64 {
	if q.Burst > 0 {
		return float64(q.Burst)
	}
	if q.RatePerSec > 1 {
		return q.RatePerSec
	}
	return 1
}

// Validate rejects quota configurations with negative fields — zero
// (unlimited) is the floor for every knob.
func (q Quotas) Validate() error {
	if q.Weight < 0 || q.RatePerSec < 0 || q.Burst < 0 || q.MaxQueue < 0 ||
		q.MaxRegistryBytes < 0 || q.MaxDatasets < 0 || q.MaxMonitors < 0 ||
		q.MaxPipelines < 0 {
		return fmt.Errorf("%w: fields must be non-negative", ErrInvalidQuota)
	}
	return nil
}

// Info is one tenant's quota listing for the /v1/tenants API: its id,
// effective quotas, and whether they are an explicit override or the
// service defaults.
type Info struct {
	ID       string `json:"id"`
	Quotas   Quotas `json:"quotas"`
	Override bool   `json:"override"`
}

// Registry holds the service defaults plus per-tenant quota overrides,
// durably mirrored through the storage port when a store is attached.
// It is the quota source of truth every plane consults; it does no
// usage accounting itself. Safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	defaults  Quotas
	overrides map[string]Quotas
	store     store.Store
}

// NewRegistry creates a registry applying defaults to every tenant
// without an explicit override.
func NewRegistry(defaults Quotas) *Registry {
	return &Registry{defaults: defaults, overrides: map[string]Quotas{}}
}

// Defaults returns the service-wide default quotas.
func (r *Registry) Defaults() Quotas {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.defaults
}

// Quotas returns the effective quotas for id: its override when one is
// set, the service defaults otherwise. Unknown tenants are first-class
// — every valid id has quotas.
func (r *Registry) Quotas(id string) Quotas {
	r.mu.Lock()
	defer r.mu.Unlock()
	if q, ok := r.overrides[id]; ok {
		return q
	}
	return r.defaults
}

// Set installs a quota override for id, persisting it durably before
// it takes effect when a store is attached — a quota the caller saw
// accepted must survive a restart.
func (r *Registry) Set(id string, q Quotas) error {
	id, err := Normalize(id)
	if err != nil {
		return err
	}
	if err := q.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store != nil {
		payload, err := json.Marshal(q)
		if err != nil {
			return err
		}
		if err := r.store.Save(store.KindTenant, id, payload); err != nil {
			return fmt.Errorf("tenant: persisting quotas for %q: %w", id, err)
		}
	}
	r.overrides[id] = q
	return nil
}

// Remove drops id's override, reverting it to the defaults (durably
// when a store is attached). Removing an absent override is a no-op.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store != nil {
		if err := r.store.Delete(store.KindTenant, id); err != nil {
			return fmt.Errorf("tenant: removing quotas for %q: %w", id, err)
		}
	}
	delete(r.overrides, id)
	return nil
}

// List returns every tenant with an explicit override, ordered by id.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.overrides))
	for id, q := range r.overrides {
		out = append(out, Info{ID: id, Quotas: q, Override: true})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AttachStore restores every persisted quota override into the
// registry and mirrors later Set/Remove calls into st. Call it once at
// boot, before the dataset and monitor registries restore — they
// enforce quotas this restore installs. A record that fails to decode
// or carries an invalid id refuses the boot (corrupt state is named,
// not skipped), matching the dataset and monitor restore posture.
func (r *Registry) AttachStore(st store.Store) error {
	items, err := st.List(store.KindTenant)
	if err != nil {
		return fmt.Errorf("tenant: restoring quotas: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
	for _, it := range items {
		if !ValidID(it.ID) {
			return fmt.Errorf("tenant: restoring %q: %w: bad tenant id", it.ID, store.ErrCorrupt)
		}
		var q Quotas
		if err := json.Unmarshal(it.Payload, &q); err != nil {
			return fmt.Errorf("tenant: restoring %q: %w (%v)", it.ID, store.ErrCorrupt, err)
		}
		if err := q.Validate(); err != nil {
			return fmt.Errorf("tenant: restoring %q: %w (%v)", it.ID, store.ErrCorrupt, err)
		}
		r.overrides[it.ID] = q
	}
	return nil
}
