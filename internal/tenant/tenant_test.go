package tenant

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/store/memory"
)

func TestValidID(t *testing.T) {
	valid := []string{"a", "default", "acme-corp", "t_1", "0abc", strings.Repeat("x", MaxIDLen)}
	for _, id := range valid {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "-lead", "_lead", "UPPER", "has.dot", "sp ace", "h√©", strings.Repeat("x", MaxIDLen+1)}
	for _, id := range invalid {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got, err := Normalize(""); err != nil || got != Default {
		t.Fatalf("Normalize(\"\") = %q, %v; want %q, nil", got, err, Default)
	}
	if got, err := Normalize("acme"); err != nil || got != "acme" {
		t.Fatalf("Normalize(acme) = %q, %v", got, err)
	}
	if _, err := Normalize("Bad.Tenant"); !errors.Is(err, ErrInvalidID) {
		t.Fatalf("Normalize(Bad.Tenant) err = %v, want ErrInvalidID", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if id, ok := FromContext(ctx); ok || id != "" {
		t.Fatalf("FromContext(empty) = %q, %v; want \"\", false", id, ok)
	}
	ctx = NewContext(ctx, "acme")
	if id, ok := FromContext(ctx); !ok || id != "acme" {
		t.Fatalf("FromContext = %q, %v; want acme, true", id, ok)
	}
}

func TestOrPrecedence(t *testing.T) {
	// Explicit context id wins over any wire fallback.
	ctx := NewContext(context.Background(), "hdr")
	if got, err := Or(ctx, "body"); err != nil || got != "hdr" {
		t.Fatalf("Or(ctx, body) = %q, %v; want hdr", got, err)
	}
	// Without a context id the fallback is normalized.
	if got, err := Or(context.Background(), "body"); err != nil || got != "body" {
		t.Fatalf("Or(bg, body) = %q, %v; want body", got, err)
	}
	if got, err := Or(context.Background(), ""); err != nil || got != Default {
		t.Fatalf("Or(bg, \"\") = %q, %v; want default", got, err)
	}
	if _, err := Or(context.Background(), "NOPE"); !errors.Is(err, ErrInvalidID) {
		t.Fatalf("Or(bg, NOPE) err = %v, want ErrInvalidID", err)
	}
}

func TestQuotasEffective(t *testing.T) {
	var q Quotas
	if q.EffectiveWeight() != 1 {
		t.Fatalf("zero EffectiveWeight = %d, want 1", q.EffectiveWeight())
	}
	if q.EffectiveBurst() != 1 {
		t.Fatalf("zero EffectiveBurst = %v, want 1", q.EffectiveBurst())
	}
	q = Quotas{Weight: 3, RatePerSec: 5}
	if q.EffectiveWeight() != 3 || q.EffectiveBurst() != 5 {
		t.Fatalf("EffectiveWeight/Burst = %d/%v, want 3/5", q.EffectiveWeight(), q.EffectiveBurst())
	}
	q = Quotas{RatePerSec: 5, Burst: 2}
	if q.EffectiveBurst() != 2 {
		t.Fatalf("explicit Burst not honored: %v", q.EffectiveBurst())
	}
	if err := (Quotas{Weight: -1}).Validate(); err == nil {
		t.Fatal("negative weight validated")
	}
	if err := (Quotas{}).Validate(); err != nil {
		t.Fatalf("zero quotas rejected: %v", err)
	}
}

func TestRegistryOverrides(t *testing.T) {
	r := NewRegistry(Quotas{MaxDatasets: 4})
	if got := r.Quotas("unknown"); got.MaxDatasets != 4 {
		t.Fatalf("unknown tenant quotas = %+v, want defaults", got)
	}
	if err := r.Set("acme", Quotas{MaxDatasets: 1, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if got := r.Quotas("acme"); got.MaxDatasets != 1 || got.Weight != 2 {
		t.Fatalf("override not applied: %+v", got)
	}
	if err := r.Set("Bad.Id", Quotas{}); !errors.Is(err, ErrInvalidID) {
		t.Fatalf("Set(Bad.Id) err = %v", err)
	}
	if err := r.Set("acme", Quotas{Burst: -1}); err == nil {
		t.Fatal("negative quotas accepted")
	}
	list := r.List()
	if len(list) != 1 || list[0].ID != "acme" || !list[0].Override {
		t.Fatalf("List = %+v", list)
	}
	if err := r.Remove("acme"); err != nil {
		t.Fatal(err)
	}
	if got := r.Quotas("acme"); got.MaxDatasets != 4 {
		t.Fatalf("Remove did not revert to defaults: %+v", got)
	}
	// Removing an absent override is a no-op.
	if err := r.Remove("ghost"); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryPersistence(t *testing.T) {
	st := memory.New()
	defer st.Close()

	r := NewRegistry(Quotas{})
	if err := r.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("acme", Quotas{Weight: 2, MaxMonitors: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("beta", Quotas{RatePerSec: 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("beta"); err != nil {
		t.Fatal(err)
	}

	// A fresh registry over the same store restores the surviving override.
	r2 := NewRegistry(Quotas{})
	if err := r2.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if got := r2.Quotas("acme"); got.Weight != 2 || got.MaxMonitors != 3 {
		t.Fatalf("restored quotas = %+v", got)
	}
	if got := r2.Quotas("beta"); got != (Quotas{}) {
		t.Fatalf("removed override restored: %+v", got)
	}
}

func TestRegistryRestoreRefusesCorrupt(t *testing.T) {
	st := memory.New()
	defer st.Close()
	if err := st.Save(store.KindTenant, "acme", []byte(`{"weight":"not-a-number"}`)); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry(Quotas{}).AttachStore(st); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("AttachStore err = %v, want ErrCorrupt", err)
	}

	st2 := memory.New()
	defer st2.Close()
	if err := st2.Save(store.KindTenant, "Not-Valid-Tenant", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry(Quotas{}).AttachStore(st2); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("AttachStore bad-id err = %v, want ErrCorrupt", err)
	}
}

// failingStore errors on every mutation and listing so the registry's
// storage-failure paths are pinned: a quota the store refused must not
// take effect in memory.
type failingStore struct{ store.Store }

func (failingStore) Save(store.Kind, string, []byte) error { return errors.New("disk full") }
func (failingStore) Delete(store.Kind, string) error       { return errors.New("disk full") }
func (failingStore) List(store.Kind) ([]store.Item, error) { return nil, errors.New("disk gone") }

func TestRegistryStoreFailures(t *testing.T) {
	if err := NewRegistry(Quotas{}).AttachStore(failingStore{}); err == nil {
		t.Fatal("AttachStore over a failing store should refuse")
	}

	// Attach a healthy store first, then swap in the failing one so
	// only the mutation paths break.
	r := NewRegistry(Quotas{})
	st := memory.New()
	defer st.Close()
	if err := r.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	r.store = failingStore{}
	if err := r.Set("acme", Quotas{Weight: 2}); err == nil {
		t.Fatal("Set should surface the store failure")
	}
	if got := r.Quotas("acme"); got != (Quotas{}) {
		t.Fatalf("rejected Set took effect: %+v", got)
	}
	if err := r.Remove("acme"); err == nil {
		t.Fatal("Remove should surface the store failure")
	}

	// A restored record with negative fields is corrupt state, not a
	// silently-clamped quota.
	st2 := memory.New()
	defer st2.Close()
	if err := st2.Save(store.KindTenant, "acme", []byte(`{"weight":-1}`)); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry(Quotas{}).AttachStore(st2); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("AttachStore negative-quota err = %v, want ErrCorrupt", err)
	}
}
