package monitor

import (
	"bytes"
	"context"
	"log"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/policy"
)

func TestLogSinkDeliver(t *testing.T) {
	var buf bytes.Buffer
	sink := &LogSink{Logger: log.New(&buf, "", 0)}

	from, to := policy.Green, policy.Red
	if err := sink.Deliver(context.Background(), Alert{
		Monitor: "mon-1", Kind: AlertGradeRegression, Window: 3,
		Message: "grade fell", From: &from, To: &to,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Deliver(context.Background(), Alert{
		Monitor: "mon-1", Kind: AlertDriftBreach, Window: 4,
		Message: "drift", Drift: &DriftReport{MaxPSI: 0.42, MaxKS: 0.17},
	}); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "GREEN→RED") {
		t.Errorf("grade transition missing from log: %q", out)
	}
	if !strings.Contains(out, "max PSI 0.420") || !strings.Contains(out, "max KS 0.170") {
		t.Errorf("drift summary missing from log: %q", out)
	}
}
