package monitor

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/stream"
)

// mapColumn returns f with column col's values transformed in place —
// column order and dtypes preserved, so parts sliced from the original
// and the mutated frame still share a window schema (unlike
// Drop+WithColumn, which moves the column to the end).
func mapColumn(t testing.TB, f *frame.Frame, col string, fn func(float64) float64) *frame.Frame {
	t.Helper()
	cols := make([]*frame.Series, 0, f.NumCols())
	for j := 0; j < f.NumCols(); j++ {
		c := f.ColAt(j)
		if c.Name() == col {
			c = c.Map(col, fn)
		}
		cols = append(cols, c)
	}
	out, err := frame.New(cols...)
	if err != nil {
		t.Fatalf("mapColumn(%s): %v", col, err)
	}
	return out
}

// stringifyColumn returns f with column col re-typed as strings in
// place — the type-drift edge the incremental path must surface exactly
// like the rescan path.
func stringifyColumn(t testing.TB, f *frame.Frame, col string) *frame.Frame {
	t.Helper()
	vals := f.MustCol(col).Floats()
	ss := make([]string, len(vals))
	for i, v := range vals {
		ss[i] = fmt.Sprintf("%g", v)
	}
	cols := make([]*frame.Series, 0, f.NumCols())
	for j := 0; j < f.NumCols(); j++ {
		c := f.ColAt(j)
		if c.Name() == col {
			c = frame.NewString(col, ss)
		}
		cols = append(cols, c)
	}
	out, err := frame.New(cols...)
	if err != nil {
		t.Fatalf("stringifyColumn(%s): %v", col, err)
	}
	return out
}

// bitsDeepEqual compares two values structurally with floats compared
// by bit pattern, so NaN == NaN and -0.0 != 0.0 — the bit-identity the
// incremental≡rescan property demands, which reflect.DeepEqual (NaN !=
// NaN) and JSON round-trips (NaN unmarshalable) cannot express.
func bitsDeepEqual(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.Ptr, reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return bitsDeepEqual(a.Elem(), b.Elem())
	case reflect.Struct:
		if a.Type() != b.Type() {
			return false
		}
		for i := 0; i < a.NumField(); i++ {
			if !bitsDeepEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !bitsDeepEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.Len() != b.Len() || a.IsNil() != b.IsNil() {
			return false
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() || !bitsDeepEqual(a.MapIndex(k), bv) {
				return false
			}
		}
		return true
	default:
		return a.Interface() == b.Interface()
	}
}

// normalizeEntries zeroes the wall-clock fields so two runs of the same
// stream compare bit-identically.
func normalizeEntries(es []WindowEntry) []WindowEntry {
	out := append([]WindowEntry(nil), es...)
	for i := range out {
		out[i].DriftMillis = 0
	}
	return out
}

// mustEqualHistories fails unless the two histories are bit-identical
// after normalization.
func mustEqualHistories(t *testing.T, label string, got, want []WindowEntry) {
	t.Helper()
	got, want = normalizeEntries(got), normalizeEntries(want)
	if len(got) != len(want) {
		t.Fatalf("%s: history len %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !bitsDeepEqual(reflect.ValueOf(got[i]), reflect.ValueOf(want[i])) {
			t.Fatalf("%s: history[%d] diverged:\n  got:  %+v\n  want: %+v", label, i, got[i], want[i])
		}
	}
}

// randomArrivals builds a deterministic pseudo-random arrival stream
// exercising the windower's edge cases: empty batches, heartbeats,
// single-row chunks, NaN/Inf cells, all-NaN columns, dropped columns,
// type drift, and genuine distribution drift that forces off-cadence
// audits.
func randomArrivals(t testing.TB, seed int64, n int) []stream.Arrival {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool := creditFrame(t, 2000, 0, 0.35, uint64(seed)+1)
	drifted := mapColumn(t, pool, "income", func(v float64) float64 { return v*3 + 40 })
	withNaN := mapColumn(t, pool, "income", func(v float64) float64 {
		if math.Mod(v, 7) < 2 {
			return math.NaN()
		}
		return v
	})
	withInf := mapColumn(t, pool, "debt_ratio", func(v float64) float64 {
		if v > 0.5 {
			return math.Inf(1)
		}
		return v
	})
	allNaN := mapColumn(t, pool, "income", func(float64) float64 { return math.NaN() })
	typed := stringifyColumn(t, pool, "income")
	dropped, err := pool.Drop("employment_years")
	if err != nil {
		t.Fatalf("Drop: %v", err)
	}

	slice := func(f *frame.Frame, maxRows int) *frame.Frame {
		rows := 1 + rng.Intn(maxRows)
		lo := rng.Intn(f.NumRows() - rows + 1)
		return f.Slice(lo, lo+rows)
	}
	arrivals := make([]stream.Arrival, 0, n)
	// The first window ([0,100) for every spec under test) gets clean
	// parts only, so the baseline always pins and later windows are
	// genuinely drift-scored instead of the whole stream skipping.
	for _, tms := range []int64{0, 40, 80} {
		arrivals = append(arrivals, stream.Arrival{TimeMS: tms, Rows: slice(pool, 150)})
	}
	tms := int64(100)
	for len(arrivals) < n {
		tms += int64(rng.Intn(30))
		var rows *frame.Frame
		switch rng.Intn(14) {
		case 0:
			// Heartbeat: watermark only.
		case 1:
			rows = pool.Slice(0, 0) // empty batch
		case 2:
			rows = slice(pool, 1) // single-row chunk
		case 3:
			rows = slice(withNaN, 120)
		case 4:
			rows = slice(withInf, 120)
		case 5:
			rows = slice(allNaN, 60)
		case 6:
			rows = slice(dropped, 120) // schema edge: mixed windows must skip
		case 7:
			rows = slice(typed, 80) // type drift: numeric became string
		case 8, 9:
			rows = slice(drifted, 120) // drift breach forces off-cadence audits
		default:
			rows = slice(pool, 150)
		}
		arrivals = append(arrivals, stream.Arrival{TimeMS: tms, Rows: rows})
	}
	return arrivals
}

// runArrivals feeds one deterministic arrival stream through a fresh
// registry+monitor (with or without a chunk-state cache) and returns
// the full history and final summary.
func runArrivals(t *testing.T, spec Spec, cache *dataset.StateCache, arrivals []stream.Arrival) ([]WindowEntry, Summary) {
	t.Helper()
	r, err := NewRegistry(RegistryConfig{Engine: newTestEngine(t), ChunkStates: cache})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	t.Cleanup(r.Close)
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := m.Ingest(arrivals...); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	m.Flush()
	return m.History(), m.Status()
}

// TestIncrementalEqualsRescanRandomized is the tentpole's property
// test: for randomized frames (NaN/Inf cells, schema and size edges),
// random window shapes, and any shard count, a monitor running the
// incremental chunk-state path produces a history bit-identical to the
// same stream graded by the full-rescan path — FACT reports, drift
// scores, skip decisions, and error strings included.
func TestIncrementalEqualsRescanRandomized(t *testing.T) {
	shards := []int{1, 3, 8}
	slides := []int64{100, 40, 25}
	for si, shard := range shards {
		for wi, slide := range slides {
			shard, slide := shard, slide
			name := fmt.Sprintf("shards=%d/slide=%d", shard, slide)
			seed := int64(101 + 17*si + 31*wi)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				arrivals := randomArrivals(t, seed, 70)
				spec := creditSpec("prop")
				spec.Window = WindowConfig{WidthMS: 100, SlideMS: slide}
				spec.Drift.Shards = shard
				spec.AuditEvery = 2
				spec.History = 1024

				cache := dataset.NewStateCache(1 << 20)
				gotHist, gotSum := runArrivals(t, spec, cache, arrivals)
				wantHist, wantSum := runArrivals(t, spec, nil, arrivals)

				mustEqualHistories(t, name, gotHist, wantHist)
				gotSum.ProfileBuildMillis, wantSum.ProfileBuildMillis = 0, 0
				if !bitsDeepEqual(reflect.ValueOf(gotSum), reflect.ValueOf(wantSum)) {
					t.Errorf("summaries diverged:\n  got:  %+v\n  want: %+v", gotSum, wantSum)
				}

				// Guard against a vacuous pass: the stream must exercise
				// drift scoring and audits, and sliding windows must
				// actually hit the cache (shared chunks re-merged).
				var scored, audited bool
				for _, e := range gotHist {
					scored = scored || e.Drift != nil
					audited = audited || e.Audited
				}
				if !scored || !audited {
					t.Errorf("stream too quiet: scored=%v audited=%v", scored, audited)
				}
				if snap := cache.Metrics(); slide < 100 && snap.Hits == 0 {
					t.Errorf("sliding run never hit the chunk-state cache: %+v", snap)
				}
			})
		}
	}
}

// TestChunkScorerMatchesProfiledDetect pins the scorer directly against
// DetectDriftProfiled: for every current-frame shape — clean, drifted,
// NaN-laced, all-NaN, column dropped — and every chunk split, Score
// over the chunks is bit-identical to the rescan over their
// concatenation; error conditions reproduce the legacy error strings.
func TestChunkScorerMatchesProfiledDetect(t *testing.T) {
	baseline := creditFrame(t, 3000, 0, 0.35, 1)
	cfg := DriftConfig{}.withDefaults()
	prof, err := NewBaselineProfile(baseline, cfg)
	if err != nil {
		t.Fatalf("NewBaselineProfile: %v", err)
	}
	dropped, err := creditFrame(t, 900, 0, 0.35, 7).Drop("income", "neighborhood")
	if err != nil {
		t.Fatalf("Drop: %v", err)
	}
	currents := map[string]*frame.Frame{
		"clean":   creditFrame(t, 900, 0, 0.35, 2),
		"drifted": scaleColumn(t, creditFrame(t, 900, 0, 0.35, 3), "income", 4),
		"nan":     mapColumn(t, creditFrame(t, 900, 0, 0.35, 4), "income", func(v float64) float64 { return math.NaN() * 0 * v }),
		"all-nan": mapColumn(t, creditFrame(t, 900, 0, 0.35, 5), "income", func(float64) float64 { return math.NaN() }),
		"inf":     mapColumn(t, creditFrame(t, 900, 0, 0.35, 6), "debt_ratio", func(v float64) float64 { return math.Inf(1) * v }),
		"dropped": dropped,
		"tiny":    creditFrame(t, 900, 0, 0.35, 8).Slice(0, 1),
	}
	splits := []int{1, 2, 5}
	for name, cur := range currents {
		for _, parts := range splits {
			if cur.NumRows() < parts {
				continue
			}
			label := fmt.Sprintf("%s/parts=%d", name, parts)
			cache := dataset.NewStateCache(8 << 20)
			sc, err := NewChunkScorer(prof, cache)
			if err != nil {
				t.Fatalf("%s: NewChunkScorer: %v", label, err)
			}
			chunks := splitChunks(cur, parts)
			got, gerr := sc.Score(chunks)
			want, werr := DetectDriftProfiled(prof, cur)
			if (gerr == nil) != (werr == nil) || (gerr != nil && gerr.Error() != werr.Error()) {
				t.Fatalf("%s: error mismatch: %v vs %v", label, gerr, werr)
			}
			if !bitsDeepEqual(reflect.ValueOf(got), reflect.ValueOf(want)) {
				t.Errorf("%s: Score diverged from DetectDriftProfiled:\n  got:  %+v\n  want: %+v", label, got, want)
			}
			// Second pass answers from cache and must stay bit-identical.
			again, aerr := sc.Score(chunks)
			if aerr != nil {
				t.Fatalf("%s: cached Score: %v", label, aerr)
			}
			if !bitsDeepEqual(reflect.ValueOf(again), reflect.ValueOf(got)) {
				t.Errorf("%s: cached Score diverged from first Score", label)
			}
			if snap := cache.Metrics(); snap.Hits == 0 {
				t.Errorf("%s: second Score never hit the cache: %+v", label, snap)
			}
		}
	}
}

// TestChunkScorerTypeDriftParity pins the type-drift error string to
// the rescan path's, so the fallback is indistinguishable from always
// having rescanned.
func TestChunkScorerTypeDriftParity(t *testing.T) {
	baseline := creditFrame(t, 1000, 0, 0.35, 1)
	prof, err := NewBaselineProfile(baseline, DriftConfig{}.withDefaults())
	if err != nil {
		t.Fatalf("NewBaselineProfile: %v", err)
	}
	sc, err := NewChunkScorer(prof, nil)
	if err != nil {
		t.Fatalf("NewChunkScorer: %v", err)
	}
	cur := stringifyColumn(t, creditFrame(t, 400, 0, 0.35, 2), "income")
	_, gerr := sc.Score(splitChunks(cur, 3))
	_, werr := DetectDriftProfiled(prof, cur)
	if gerr == nil || werr == nil || gerr.Error() != werr.Error() {
		t.Fatalf("type-drift errors diverged: %v vs %v", gerr, werr)
	}
	if _, err := sc.Score(nil); err == nil {
		t.Error("Score(nil) accepted an empty window")
	}
	if _, err := NewChunkScorer(nil, nil); err == nil {
		t.Error("NewChunkScorer(nil) accepted a nil profile")
	}
}

// splitChunks cuts f into n contiguous hashed chunks.
func splitChunks(f *frame.Frame, n int) []Chunk {
	out := make([]Chunk, 0, n)
	rows := f.NumRows()
	for i := 0; i < n; i++ {
		lo, hi := i*rows/n, (i+1)*rows/n
		if lo == hi {
			continue
		}
		part := f.Slice(lo, hi)
		out = append(out, Chunk{Rows: part, Hash: part.Hash()})
	}
	return out
}

// TestChunkCacheEvictionChurn is the eviction regression test: a
// chunk-state cache far too small for the working set, hammered by
// concurrent ingest, re-audits, and metric reads (the -race suite runs
// this interleaved), must keep every monitor's stream-driven history
// bit-identical to a no-cache reference — a miss falls back to a full
// rescan, never a wrong or failed audit.
func TestChunkCacheEvictionChurn(t *testing.T) {
	const monitors = 2
	cache := dataset.NewStateCache(24 << 10) // a handful of chunk states; constant eviction
	r, err := NewRegistry(RegistryConfig{Engine: newTestEngine(t), ChunkStates: cache})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	t.Cleanup(r.Close)

	specFor := func(i int) Spec {
		spec := creditSpec(fmt.Sprintf("churn-%d", i))
		spec.Window = WindowConfig{WidthMS: 100, SlideMS: 50}
		spec.AuditEvery = 3
		spec.History = 1024
		return spec
	}
	streams := make([][]stream.Arrival, monitors)
	for i := range streams {
		streams[i] = randomArrivals(t, int64(900+i), 50)
	}

	// Reference histories: same streams and monitor names (the name is
	// baked into each FACT report), no cache, in a separate registry,
	// sequentially.
	want := make([][]WindowEntry, monitors)
	for i := range streams {
		want[i], _ = runArrivals(t, specFor(i), nil, streams[i])
	}

	ms := make([]*Monitor, monitors)
	for i := range ms {
		if ms[i], err = r.Register(specFor(i)); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	var wg sync.WaitGroup
	for i, m := range ms {
		wg.Add(1)
		go func(m *Monitor, arrivals []stream.Arrival) {
			defer wg.Done()
			for _, a := range arrivals {
				if err := m.Ingest(a); err != nil {
					t.Errorf("Ingest: %v", err)
				}
			}
			m.Flush()
		}(m, streams[i])
	}
	// Concurrent re-audits and metric reads churn the cache and the
	// read-side locks while windows close.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			ms[i%monitors].Reaudit(false)
			_ = r.Metrics()
			_ = cache.Metrics()
		}
	}()
	wg.Wait()

	for i, m := range ms {
		// Reaudit entries interleave nondeterministically with window
		// entries; stream-driven grading (Reaudits == 0) must match the
		// reference exactly.
		var got []WindowEntry
		for _, e := range m.History() {
			if e.Reaudits == 0 {
				got = append(got, e)
			} else if e.Error != "" {
				t.Errorf("monitor %d: re-audit under churn failed: %s", i, e.Error)
			}
		}
		mustEqualHistories(t, fmt.Sprintf("monitor %d", i), got, want[i])
	}
	if snap := cache.Metrics(); snap.Evictions == 0 {
		t.Errorf("churn never evicted: %+v", snap)
	} else if snap.Bytes > snap.BudgetBytes {
		t.Errorf("resident bytes %d exceed budget %d", snap.Bytes, snap.BudgetBytes)
	}
}

// TestReauditCoalescingInterleaving covers Reaudit bookkeeping:
// consecutive scheduled re-audits of an unchanged window coalesce into
// one history entry (Reaudits counts them), unscheduled re-audits and
// drift-forced audits never coalesce, and history window indices stay
// monotone throughout.
func TestReauditCoalescingInterleaving(t *testing.T) {
	sink := &captureSink{}
	cache := dataset.NewStateCache(1 << 20)
	r, err := NewRegistry(RegistryConfig{Engine: newTestEngine(t), ChunkStates: cache, Sinks: []Sink{sink}})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	t.Cleanup(r.Close)
	spec := creditSpec("coalesce")
	spec.AuditEvery = 10 // off cadence: only the baseline, breaches, and re-audits grade
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}

	m.Reaudit(true) // before any window: must be a no-op
	if got := len(m.History()); got != 0 {
		t.Fatalf("re-audit before first window recorded %d entries", got)
	}

	base := creditFrame(t, 400, 0, 0.35, 1)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	must(m.Ingest(stream.Arrival{TimeMS: 0, Rows: base}))
	must(m.Ingest(stream.Arrival{TimeMS: 100, Rows: base.Slice(0, 350)}))
	must(m.Ingest(stream.Arrival{TimeMS: 200})) // heartbeat closes window 1
	if got := len(m.History()); got != 2 {
		t.Fatalf("history len = %d, want 2 (baseline + window 1)", got)
	}

	// Three scheduled heartbeats on an unchanged window: one entry.
	for i := 0; i < 3; i++ {
		m.Reaudit(true)
	}
	hist := m.History()
	if got := len(hist); got != 3 {
		t.Fatalf("history len = %d, want 3 after coalesced re-audits", got)
	}
	last := hist[len(hist)-1]
	if !last.Scheduled || last.Window != 1 || last.Reaudits != 3 || !last.Audited {
		t.Fatalf("coalesced entry = %+v, want scheduled window 1 with 3 re-audits", last)
	}
	if got := r.Metrics().ScheduledReaudits; got != 3 { // the pre-window call no-ops before counting
		t.Errorf("ScheduledReaudits = %d, want 3", got)
	}

	// An unscheduled re-audit must not coalesce — and must break the
	// scheduled run, so the next scheduled one starts a fresh entry.
	m.Reaudit(false)
	m.Reaudit(true)
	hist = m.History()
	if got := len(hist); got != 5 {
		t.Fatalf("history len = %d, want 5 after unscheduled interleave", got)
	}
	if e := hist[3]; e.Scheduled || e.Reaudits != 1 {
		t.Errorf("unscheduled entry = %+v, want unscheduled Reaudits=1", e)
	}
	if e := hist[4]; !e.Scheduled || e.Reaudits != 1 {
		t.Errorf("post-interleave scheduled entry = %+v, want fresh Reaudits=1", e)
	}

	// Drift-forced audit: a new window with a gross shift breaches and
	// audits off cadence; subsequent scheduled re-audits target the new
	// window and must not coalesce into the old one's entries.
	drifted := scaleColumn(t, base, "income", 6)
	must(m.Ingest(stream.Arrival{TimeMS: 250, Rows: drifted}))
	must(m.Ingest(stream.Arrival{TimeMS: 400})) // closes window 2
	m.Reaudit(true)
	m.Reaudit(true)
	hist = m.History()
	forced := hist[5]
	if forced.Window != 2 || !forced.Audited || forced.Drift == nil || !forced.Drift.Breached {
		t.Fatalf("drift-forced entry = %+v, want audited breached window 2", forced)
	}
	tail := hist[len(hist)-1]
	if !tail.Scheduled || tail.Window != 2 || tail.Reaudits != 2 {
		t.Errorf("tail entry = %+v, want scheduled window 2 with 2 coalesced re-audits", tail)
	}
	breach := false
	for _, k := range sink.kinds() {
		breach = breach || k == AlertDriftBreach
	}
	if !breach {
		t.Error("drift breach never alerted")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Window < hist[i-1].Window {
			t.Fatalf("history indices not monotone: %d after %d", hist[i].Window, hist[i-1].Window)
		}
	}
}
