package monitor

import (
	"fmt"
	"math"
	"time"

	"github.com/responsible-data-science/rds/internal/exec"
	"github.com/responsible-data-science/rds/internal/frame"
)

// BaselineProfile is the precomputed drift state of a pinned baseline
// window. DetectDrift re-derives everything it needs from the baseline
// frame on every window — a full exec-sharded sort per numeric column
// and a level count per categorical column, over data that never
// changes once pinned. The profile computes that state exactly once,
// at pin time: per numeric column the sorted finite sample, the PSI
// bin edges and baseline bin counts, and the summary moments; per
// categorical column the level counts. DetectDriftProfiled then scores
// each window against the profile, paying only for the current
// window's scan — drift cost drops from O(baseline · windows) to
// O(baseline + windows).
//
// A profile is immutable after construction and safe for concurrent
// readers.
type BaselineProfile struct {
	cfg  DriftConfig
	rows int
	cols []profileColumn

	build time.Duration
}

// profileColumn is one column's precomputed baseline state.
type profileColumn struct {
	name    string
	present bool // the column exists in the baseline frame
	numeric bool
	dtype   frame.DType

	// Numeric state: the exec-merged sorted finite sample, the PSI
	// quantile edges over it, the baseline bin counts those edges
	// induce, and the summary moments of that finite sample (nil when
	// the column has no finite values).
	sorted  []float64
	edges   []float64
	hist    []float64
	moments *exec.Moments

	// Categorical state: the exec-merged level counts.
	levels *exec.Levels
}

// NewBaselineProfile scans the baseline frame once and precomputes
// every per-column statistic DetectDriftProfiled needs. The column set
// and binning come from cfg exactly as in DetectDrift (zero values
// select the package defaults); cfg.Shards parameterizes the build's
// exec scans. The profile preserves DetectDrift's column order —
// cfg.Columns when given, the baseline's column order otherwise — so
// profiled reports list columns identically to recomputed ones.
func NewBaselineProfile(baseline *frame.Frame, cfg DriftConfig) (*BaselineProfile, error) {
	if baseline == nil || baseline.NumRows() == 0 {
		return nil, fmt.Errorf("monitor: baseline profile needs a non-empty baseline frame")
	}
	start := time.Now()
	cfg = cfg.withDefaults()
	names := cfg.Columns
	if len(names) == 0 {
		names = baseline.Names()
	}
	opt := exec.Options{Shards: cfg.Shards}
	p := &BaselineProfile{cfg: cfg, rows: baseline.NumRows(), cols: make([]profileColumn, 0, len(names))}
	for _, name := range names {
		pc := profileColumn{name: name, present: baseline.Has(name)}
		if !pc.present {
			p.cols = append(p.cols, pc)
			continue
		}
		b := baseline.MustCol(name)
		pc.dtype = b.DType()
		switch pc.dtype {
		case frame.Float64, frame.Int64:
			pc.numeric = true
			vals := b.Floats()
			st, err := exec.RunOne(len(vals), opt, exec.NewSorted(vals, true))
			if err != nil {
				return nil, fmt.Errorf("monitor: baseline profile %q: %w", name, err)
			}
			pc.sorted = st.(*exec.Sorted).Values()
			if len(pc.sorted) > 0 {
				pc.edges = psiEdges(pc.sorted, cfg.Bins)
				pc.hist = histSorted(pc.sorted, pc.edges)
				// Summary moments over the same finite sample the
				// drift scores use, so the payload's mean/min/max
				// describe exactly the profiled values (a raw-column
				// scan would let one NaN poison the mean).
				ms, err := exec.RunOne(len(pc.sorted), opt, exec.NewMoments(pc.sorted))
				if err != nil {
					return nil, fmt.Errorf("monitor: baseline profile %q: %w", name, err)
				}
				pc.moments = ms.(*exec.Moments)
			}
		default:
			st, err := exec.RunOne(b.Len(), opt, exec.NewLevelsSeries(b))
			if err != nil {
				return nil, fmt.Errorf("monitor: baseline profile %q: %w", name, err)
			}
			pc.levels = st.(*exec.Levels)
			// The profile outlives the baseline frame; detach so the
			// retained state is the level counts, not the raw column.
			pc.levels.Detach()
		}
		p.cols = append(p.cols, pc)
	}
	p.build = time.Since(start)
	return p, nil
}

// BuildTime reports how long the one-time profile build took.
func (p *BaselineProfile) BuildTime() time.Duration { return p.build }

// Rows reports the pinned baseline's row count.
func (p *BaselineProfile) Rows() int { return p.rows }

// Config returns the effective (defaulted) drift configuration the
// profile was built with.
func (p *BaselineProfile) Config() DriftConfig { return p.cfg }

// DetectDriftProfiled scores the shift of current against a
// precomputed baseline profile. It is the amortized counterpart of
// DetectDrift: for the same baseline, configuration, and current
// window the two produce bit-identical DriftReports (a property the
// package's invariance tests enforce), but the profiled path never
// touches the baseline data again — per window it sorts only the
// current column, bins it against the precomputed edges, and compares
// level counts against the precomputed histogram.
func DetectDriftProfiled(p *BaselineProfile, current *frame.Frame) (*DriftReport, error) {
	if p == nil {
		return nil, fmt.Errorf("monitor: drift detection needs a baseline profile")
	}
	if current == nil || current.NumRows() == 0 {
		return nil, fmt.Errorf("monitor: drift detection needs non-empty baseline and current frames")
	}
	opt := exec.Options{Shards: p.cfg.Shards}
	rep := &DriftReport{}
	for i := range p.cols {
		pc := &p.cols[i]
		if !pc.present || !current.Has(pc.name) {
			continue
		}
		c := current.MustCol(pc.name)
		cd := ColumnDrift{Column: pc.name, KSPValue: 1}
		if pc.numeric {
			if ct := c.DType(); ct != frame.Float64 && ct != frame.Int64 {
				return nil, fmt.Errorf("monitor: drift: column %q changed type %s -> %s since the baseline",
					pc.name, pc.dtype, ct)
			}
			// An empty baseline sample (all-NaN column) can never be
			// scored; skip before paying the current window's sort.
			if len(pc.sorted) == 0 {
				continue
			}
			cv, err := sortedFinite(c, opt)
			if err != nil {
				return nil, err
			}
			if len(cv) == 0 {
				continue
			}
			cd.PSI = psi(pc.hist, histSorted(cv, pc.edges))
			cd.KS = ksStatistic(pc.sorted, cv)
			cd.KSPValue = ksPValue(cd.KS, len(pc.sorted), len(cv))
		} else {
			st, err := exec.RunOne(c.Len(), opt, exec.NewLevelsSeries(c))
			if err != nil {
				return nil, fmt.Errorf("monitor: drift levels: %w", err)
			}
			cd.PSI = psiLevels(pc.levels, st.(*exec.Levels))
		}
		rep.add(cd, p.cfg)
	}
	return rep, nil
}

// ProfileInfo is the JSON summary of a pinned baseline profile,
// surfaced in the monitor history payload so operators can see what
// each window is being scored against and what the one-time build
// cost.
type ProfileInfo struct {
	// Rows is the pinned baseline window's row count.
	Rows int `json:"rows"`
	// Columns / NumericColumns / CategoricalColumns count the profiled
	// columns by kind (columns named in the config but absent from the
	// baseline are not counted).
	Columns            int `json:"columns"`
	NumericColumns     int `json:"numeric_columns"`
	CategoricalColumns int `json:"categorical_columns"`
	// Bins is the PSI histogram resolution the edges were computed at.
	Bins int `json:"bins"`
	// BuildMillis is the one-time profile build cost in milliseconds.
	BuildMillis float64 `json:"build_millis"`
	// ColumnProfiles summarizes each profiled column.
	ColumnProfiles []ProfileColumnInfo `json:"column_profiles,omitempty"`
}

// ProfileColumnInfo summarizes one profiled column: sample size plus
// the precomputed moments (numeric) or level count (categorical).
type ProfileColumnInfo struct {
	// Column is the column name.
	Column string `json:"column"`
	// Kind is "numeric" or "categorical".
	Kind string `json:"kind"`
	// Values is the number of profiled values: finite values for a
	// numeric column, counted rows for a categorical one.
	Values int `json:"values"`
	// Levels is the categorical level count (0 for numeric columns).
	Levels int `json:"levels,omitempty"`
	// Mean / StdDev / Min / Max are the numeric column's precomputed
	// moments. Pointers so that a legitimate zero (a mean of exactly 0,
	// a min of 0) still appears in the payload: the field is absent
	// only when the moment is not finite (empty or single-value
	// samples) or the column is categorical.
	Mean   *float64 `json:"mean,omitempty"`
	StdDev *float64 `json:"std_dev,omitempty"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}

// Info renders the profile's JSON summary. Non-finite moments are
// omitted so the payload always marshals.
func (p *BaselineProfile) Info() ProfileInfo {
	info := ProfileInfo{
		Rows:        p.rows,
		Bins:        p.cfg.Bins,
		BuildMillis: float64(p.build) / float64(time.Millisecond),
	}
	for i := range p.cols {
		pc := &p.cols[i]
		if !pc.present {
			continue
		}
		info.Columns++
		ci := ProfileColumnInfo{Column: pc.name}
		if pc.numeric {
			info.NumericColumns++
			ci.Kind = "numeric"
			ci.Values = len(pc.sorted)
			if pc.moments != nil {
				ci.Mean = finitePtr(pc.moments.Mean())
				ci.StdDev = finitePtr(pc.moments.StdDev())
				ci.Min = finitePtr(pc.moments.Min)
				ci.Max = finitePtr(pc.moments.Max)
			}
		} else {
			info.CategoricalColumns++
			ci.Kind = "categorical"
			ci.Values = int(pc.levels.Total())
			ci.Levels = len(pc.levels.Counts)
		}
		info.ColumnProfiles = append(info.ColumnProfiles, ci)
	}
	return info
}

// finitePtr boxes a finite value and drops NaN/Inf to nil, so
// summaries stay JSON-marshalable while a real zero survives.
func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}
