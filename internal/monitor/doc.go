// Package monitor turns the request/response audit service of
// internal/serve into standing surveillance of live pipelines — the
// paper's "green data science" gauge run continuously rather than on
// demand.
//
// A Registry holds named monitors. Each monitor couples a FACT policy
// and training spec with a windowed stream auditor: stream.Arrival
// batches flow through tumbling or sliding windows, each closed window
// is materialized back into a frame.Frame, and (on the configured audit
// cadence) submitted to the shared serve.Engine for a full FACT audit.
// The first audited window is pinned as the baseline; every later
// window is compared against it with population-stability-index (PSI)
// and two-sample Kolmogorov-Smirnov drift statistics per column. Drift
// past the policy thresholds triggers an immediate off-cadence
// re-audit, and a per-monitor schedule re-audits the latest window even
// when no new data arrives. Grade regressions (Green→Amber→Red) and
// drift breaches fire Alerts into pluggable Sinks — a log sink and a
// webhook sink with retry/backoff ship in-package.
//
// Handler exposes the registry over HTTP (POST/GET/DELETE /v1/monitors,
// GET /v1/monitors/{id}/history, POST /v1/monitors/{id}/ingest);
// cmd/rds-serve mounts it next to the one-shot audit API, and
// examples/continuousaudit is a runnable walkthrough.
package monitor
