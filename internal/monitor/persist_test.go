package monitor

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/store/memory"
	"github.com/responsible-data-science/rds/internal/stream"
)

// persistRegistry builds a registry backed by st, with a dataset
// registry attached to the same store so baseline datasets survive the
// simulated restart too.
func persistRegistry(t *testing.T, st store.Store, sinks ...Sink) (*Registry, *dataset.Registry) {
	t.Helper()
	datasets := dataset.NewRegistry(0)
	if err := datasets.AttachStore(st); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	reg, err := NewRegistry(RegistryConfig{
		Engine:   newTestEngine(t),
		Datasets: datasets,
		Store:    st,
		Sinks:    sinks,
	})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	t.Cleanup(reg.Close)
	return reg, datasets
}

// TestRestoreBaselineRefBitIdentity is the headline restart property:
// a monitor registered with a BaselineRef survives a restart — same
// id, spec, pinned baseline grade, re-pinned dataset — and its
// restored profile scores a window bit-identically to the original.
func TestRestoreBaselineRefBitIdentity(t *testing.T) {
	st := memory.New()
	r1, d1 := persistRegistry(t, st)
	base := creditFrame(t, 800, 0, 0.35, 1)
	meta, err := d1.Put("baseline", base)
	if err != nil {
		t.Fatal(err)
	}
	spec := creditSpec("persisted")
	spec.BaselineRef = meta.Ref
	m1, err := r1.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}

	r2, d2 := persistRegistry(t, st)
	n, err := r2.Restore()
	if err != nil || n != 1 {
		t.Fatalf("Restore: (%d, %v), want (1, nil)", n, err)
	}
	m2, ok := r2.Get(m1.ID())
	if !ok {
		t.Fatalf("monitor %s not restored", m1.ID())
	}
	s := m2.Status()
	if s.Name != "persisted" || !s.BaselinePinned || s.Degraded {
		t.Fatalf("restored status %+v, want pinned, not degraded", s)
	}
	if s.BaselineGrade == nil || *s.BaselineGrade != *m1.Status().BaselineGrade {
		t.Fatalf("baseline grade %v, want %v", s.BaselineGrade, m1.Status().BaselineGrade)
	}
	if m2.Spec().BaselineRef != meta.Ref || m2.Spec().Seed != m1.Spec().Seed {
		t.Fatalf("restored spec %+v diverges from %+v", m2.Spec(), m1.Spec())
	}
	// The re-pin must hold in the restored dataset registry.
	if dm, ok := d2.Get(meta.Ref); !ok || dm.Pins != 1 {
		t.Fatalf("baseline dataset pins = %+v, want 1 pin", dm)
	}

	// Bit-identity: the same probe window scores identically against
	// the original and the restored profile.
	probe := scaleColumn(t, creditFrame(t, 500, 0, 0.35, 7), "income", 1.8)
	rep1, err1 := DetectDriftProfiled(m1.profile, probe)
	rep2, err2 := DetectDriftProfiled(m2.profile, probe)
	if err1 != nil || err2 != nil {
		t.Fatalf("DetectDriftProfiled: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("drift reports diverge after restore:\n%+v\n%+v", rep1, rep2)
	}
}

// TestRestoreStreamPinnedProfile proves the stream-pinned path
// persists too: a monitor whose baseline came from its first auditable
// window restores with that profile and keeps scoring bit-identically,
// without re-ingesting the baseline window.
func TestRestoreStreamPinnedProfile(t *testing.T) {
	st := memory.New()
	r1, _ := persistRegistry(t, st)
	m1, err := r1.Register(creditSpec("streamed"))
	if err != nil {
		t.Fatal(err)
	}
	data := creditFrame(t, 400, 0, 0.35, 1)
	if err := m1.Ingest(stream.Arrival{TimeMS: 0, Rows: data}, stream.Arrival{TimeMS: 100}); err != nil {
		t.Fatal(err)
	}
	if m1.profile == nil {
		t.Fatal("first window did not pin a baseline")
	}

	r2, _ := persistRegistry(t, st)
	if n, err := r2.Restore(); err != nil || n != 1 {
		t.Fatalf("Restore: (%d, %v)", n, err)
	}
	m2, _ := r2.Get(m1.ID())
	if m2 == nil || m2.profile == nil {
		t.Fatal("stream-pinned profile not restored")
	}
	probe := scaleColumn(t, creditFrame(t, 300, 0, 0.35, 9), "income", 2.5)
	rep1, _ := DetectDriftProfiled(m1.profile, probe)
	rep2, _ := DetectDriftProfiled(m2.profile, probe)
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("stream-pinned drift reports diverge:\n%+v\n%+v", rep1, rep2)
	}
	if !rep2.Breached {
		t.Fatal("probe window should breach (sanity check)")
	}
}

// TestRestoreDegradedMissingBaseline pins satellite 3: a restored
// monitor whose BaselineRef dataset is gone degrades gracefully — it
// stays registered, reports Degraded, fans out AlertBaselineMissing,
// and (with a persisted profile) keeps scoring — instead of panicking
// or silently dropping.
func TestRestoreDegradedMissingBaseline(t *testing.T) {
	st := memory.New()
	r1, d1 := persistRegistry(t, st)
	base := creditFrame(t, 600, 0, 0.35, 1)
	meta, err := d1.Put("baseline", base)
	if err != nil {
		t.Fatal(err)
	}
	spec := creditSpec("degrading")
	spec.BaselineRef = meta.Ref
	m1, err := r1.Register(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the dataset evicted while down: a restart whose dataset
	// registry never sees the store, so the ref resolves to nothing.
	sink := &captureSink{}
	reg2, err := NewRegistry(RegistryConfig{
		Engine:   newTestEngine(t),
		Datasets: dataset.NewRegistry(0),
		Store:    st,
		Sinks:    []Sink{sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg2.Close)
	if n, err := reg2.Restore(); err != nil || n != 1 {
		t.Fatalf("Restore: (%d, %v), want the monitor restored degraded", n, err)
	}
	m2, ok := reg2.Get(m1.ID())
	if !ok {
		t.Fatal("degraded monitor was dropped")
	}
	s := m2.Status()
	if !s.Degraded {
		t.Fatalf("status %+v, want Degraded", s)
	}
	found := false
	for _, k := range sink.kinds() {
		if k == AlertBaselineMissing {
			found = true
		}
	}
	if !found {
		t.Fatalf("alerts %v, want an AlertBaselineMissing", sink.kinds())
	}
	// The persisted profile still scores windows.
	if m2.profile == nil {
		t.Fatal("persisted profile lost in degraded restore")
	}
	if err := m2.Ingest(stream.Arrival{TimeMS: 0, Rows: creditFrame(t, 300, 0, 0.35, 3)}, stream.Arrival{TimeMS: 100}); err != nil {
		t.Fatalf("degraded monitor cannot ingest: %v", err)
	}
	hist := m2.History()
	if len(hist) == 0 || hist[len(hist)-1].Drift == nil {
		t.Fatalf("degraded monitor did not drift-score its window: %+v", hist)
	}
}

// TestRestoreDegradedOverHTTP proves the degraded state is visible to
// operators through the HTTP surface.
func TestRestoreDegradedOverHTTP(t *testing.T) {
	st := memory.New()
	r1, d1 := persistRegistry(t, st)
	meta, err := d1.Put("baseline", creditFrame(t, 600, 0, 0.35, 1))
	if err != nil {
		t.Fatal(err)
	}
	spec := creditSpec("web-degraded")
	spec.BaselineRef = meta.Ref
	if _, err := r1.Register(spec); err != nil {
		t.Fatal(err)
	}

	reg2, err := NewRegistry(RegistryConfig{
		Engine:   newTestEngine(t),
		Datasets: dataset.NewRegistry(0),
		Store:    st,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg2.Close)
	if _, err := reg2.Restore(); err != nil {
		t.Fatal(err)
	}
	handler := serve.NewHandler(newTestEngine(t))
	handler.Monitors = NewHandler(reg2)
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/v1/monitors")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	compact := strings.ReplaceAll(string(body), " ", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(compact, `"degraded":true`) {
		t.Fatalf("GET /v1/monitors = %d %s, want degraded:true", resp.StatusCode, body)
	}
}

// TestRestoreSeqAdvances proves restored ids cannot collide with new
// registrations: the sequence resumes past the highest restored id.
func TestRestoreSeqAdvances(t *testing.T) {
	st := memory.New()
	r1, _ := persistRegistry(t, st)
	m1, err := r1.Register(creditSpec("first"))
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := persistRegistry(t, st)
	if _, err := r2.Restore(); err != nil {
		t.Fatal(err)
	}
	m2, err := r2.Register(creditSpec("second"))
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID() <= m1.ID() {
		t.Fatalf("post-restore id %s does not advance past restored %s", m2.ID(), m1.ID())
	}
}

// TestDeleteDropsPersisted proves a deleted monitor does not resurface
// on restart.
func TestDeleteDropsPersisted(t *testing.T) {
	st := memory.New()
	r1, _ := persistRegistry(t, st)
	m1, err := r1.Register(creditSpec("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Delete(m1.ID()) {
		t.Fatal("Delete failed")
	}
	r2, _ := persistRegistry(t, st)
	if n, err := r2.Restore(); err != nil || n != 0 {
		t.Fatalf("Restore after delete: (%d, %v), want (0, nil)", n, err)
	}
}

// TestRestoreRefusesCorrupt proves damaged records refuse to restore
// instead of silently dropping monitors.
func TestRestoreRefusesCorrupt(t *testing.T) {
	t.Run("spec", func(t *testing.T) {
		st := memory.New()
		r1, _ := persistRegistry(t, st)
		m1, err := r1.Register(creditSpec("tampered"))
		if err != nil {
			t.Fatal(err)
		}
		if !st.Corrupt(store.KindMonitor, m1.ID()) {
			t.Fatal("no record to corrupt")
		}
		r2, _ := persistRegistry(t, st)
		if _, err := r2.Restore(); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Restore over corrupt spec: %v, want ErrCorrupt", err)
		}
	})
	t.Run("profile", func(t *testing.T) {
		st := memory.New()
		r1, _ := persistRegistry(t, st)
		m1, err := r1.Register(creditSpec("tampered-profile"))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save(store.KindProfile, m1.ID(), []byte(`{"rows":-3}`)); err != nil {
			t.Fatal(err)
		}
		r2, _ := persistRegistry(t, st)
		if _, err := r2.Restore(); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Restore over corrupt profile: %v, want ErrCorrupt", err)
		}
	})
}

// TestProfileCodecRoundTrip unit-tests the profile codec in isolation:
// the decoded profile's derived state (edges, histogram, level counts)
// matches the original exactly.
func TestProfileCodecRoundTrip(t *testing.T) {
	base := creditFrame(t, 1000, 0, 0.35, 1)
	p1, err := NewBaselineProfile(base, DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := encodeProfile(p1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := decodeProfile(payload)
	if err != nil {
		t.Fatal(err)
	}
	if p2.rows != p1.rows || len(p2.cols) != len(p1.cols) {
		t.Fatalf("shape mismatch: %d/%d cols, %d/%d rows", len(p2.cols), len(p1.cols), p2.rows, p1.rows)
	}
	for i := range p1.cols {
		a, b := &p1.cols[i], &p2.cols[i]
		if a.name != b.name || a.numeric != b.numeric || a.present != b.present || a.dtype != b.dtype {
			t.Fatalf("column %d identity mismatch: %+v vs %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.sorted, b.sorted) || !reflect.DeepEqual(a.edges, b.edges) || !reflect.DeepEqual(a.hist, b.hist) {
			t.Fatalf("column %q numeric state diverged", a.name)
		}
		if a.levels != nil && !reflect.DeepEqual(a.levels.Counts, b.levels.Counts) {
			t.Fatalf("column %q level counts diverged", a.name)
		}
	}
	if p1.build-p2.build > time.Millisecond || p2.build-p1.build > time.Millisecond {
		t.Fatalf("build time diverged: %v vs %v", p1.build, p2.build)
	}
}
