package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// newTestService stands up the full two-plane service the way
// cmd/rds-serve wires it: audit API + monitor API + merged metrics.
func newTestService(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	engine := serve.NewEngine(serve.Config{Workers: 2, QueueSize: 32})
	t.Cleanup(engine.Close)
	reg, err := NewRegistry(RegistryConfig{Engine: engine})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	t.Cleanup(reg.Close)
	handler := serve.NewHandler(engine)
	handler.Monitors = NewHandler(reg)
	handler.MonitorMetrics = func() any { return reg.Metrics() }
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, reg
}

// doJSON posts body to url and decodes the JSON response into out,
// asserting the expected status and JSON content type.
func doJSON(t *testing.T, method, url, body string, wantStatus int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("building %s %s: %v", method, url, err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s %s Content-Type = %q, want application/json", method, url, ct)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response: %v\n%s", method, url, err, raw)
		}
	}
}

// TestHTTPMonitorLifecycle is the end-to-end acceptance scenario: a
// monitor over a drifting synthetic credit stream observes a Green
// baseline, a PSI/KS drift breach that forces a re-audit, a grade
// regression alert delivered to a webhook, and full window history.
func TestHTTPMonitorLifecycle(t *testing.T) {
	srv, _ := newTestService(t)

	var webhookMu sync.Mutex
	var received []Alert
	webhook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var a Alert
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			t.Errorf("webhook payload: %v", err)
		}
		webhookMu.Lock()
		received = append(received, a)
		webhookMu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	defer webhook.Close()

	// Register: drift is the only thing that can trigger a
	// post-baseline audit (audit_every is huge), so an automatic
	// re-audit proves the breach fired.
	var sum Summary
	doJSON(t, http.MethodPost, srv.URL+"/v1/monitors", fmt.Sprintf(
		`{"name":"credit-live","window_ms":60000,"audit_every":1000,"webhook":%q}`, webhook.URL),
		http.StatusCreated, &sum)
	if sum.ID == "" || sum.Name != "credit-live" {
		t.Fatalf("registration summary = %+v", sum)
	}
	base := srv.URL + "/v1/monitors/" + sum.ID

	// Minute 0: a fair population. The window stays open (nothing past
	// its end yet), so no audit has happened.
	doJSON(t, http.MethodPost, base+"/ingest",
		`{"time_ms":0,"synthetic":{"n":2000,"bias":0}}`, http.StatusOK, &sum)
	if sum.BaselinePinned {
		t.Fatal("baseline pinned before the first window closed")
	}

	// Minute 1: the population drifts — protected-group share doubles
	// and heavy label bias appears. This arrival closes the baseline
	// window (audited Green, pinned); the flush closes the drifted
	// window, whose PSI breach forces the off-cadence audit.
	doJSON(t, http.MethodPost, base+"/ingest",
		`{"time_ms":60000,"synthetic":{"n":2000,"bias":3,"group_b_fraction":0.7,"seed":2},"flush":true}`,
		http.StatusOK, &sum)
	if !sum.BaselinePinned || sum.Audits != 2 || sum.DriftBreaches != 1 || sum.Regressions != 1 {
		t.Fatalf("post-drift summary = %+v, want pinned baseline, 2 audits, 1 breach, 1 regression", sum)
	}
	if sum.BaselineGrade == nil || *sum.BaselineGrade != policy.Green {
		t.Errorf("baseline grade = %v, want GREEN", sum.BaselineGrade)
	}
	if sum.LastGrade == nil || *sum.LastGrade != policy.Red {
		t.Errorf("last grade = %v, want RED", sum.LastGrade)
	}

	// History shows the full transition, plus the pinned baseline's
	// precomputed drift profile and per-window drift latency.
	var hist struct {
		Monitor         string        `json:"monitor"`
		History         []WindowEntry `json:"history"`
		BaselineProfile *ProfileInfo  `json:"baseline_profile"`
	}
	doJSON(t, http.MethodGet, base+"/history", "", http.StatusOK, &hist)
	if len(hist.History) != 2 {
		t.Fatalf("history len = %d, want 2", len(hist.History))
	}
	if hist.BaselineProfile == nil || hist.BaselineProfile.Rows != 2000 || hist.BaselineProfile.Columns == 0 {
		t.Errorf("baseline_profile = %+v, want the pinned 2000-row window profiled", hist.BaselineProfile)
	}
	if hist.History[1].DriftMillis < 0 {
		t.Errorf("drifted entry drift_millis = %v, want >= 0", hist.History[1].DriftMillis)
	}
	b, d := hist.History[0], hist.History[1]
	if !b.Baseline || !b.Audited || b.Grade == nil || *b.Grade != policy.Green {
		t.Errorf("baseline entry = %+v, want audited Green baseline", b)
	}
	if d.Drift == nil || !d.Drift.Breached || !d.Audited || !d.Regressed {
		t.Errorf("drifted entry = %+v, want breached, audited, regressed", d)
	}
	if d.Grade == nil || *d.Grade != policy.Red {
		t.Errorf("drifted grade = %v, want RED", d.Grade)
	}
	if b.Report == nil || d.Report == nil {
		t.Error("history entries missing FACT reports")
	}

	// The webhook received the drift breach then the grade regression.
	webhookMu.Lock()
	kinds := make([]AlertKind, 0, len(received))
	for _, a := range received {
		kinds = append(kinds, a.Kind)
	}
	webhookMu.Unlock()
	if len(kinds) != 2 || kinds[0] != AlertDriftBreach || kinds[1] != AlertGradeRegression {
		t.Fatalf("webhook alert kinds = %v, want [drift_breach grade_regression]", kinds)
	}
	webhookMu.Lock()
	reg := received[1]
	webhookMu.Unlock()
	if reg.From == nil || reg.To == nil || *reg.From != policy.Green || *reg.To != policy.Red {
		t.Errorf("regression alert transition = %v→%v, want GREEN→RED", reg.From, reg.To)
	}

	// /metrics carries the engine fields at the top level and the
	// monitoring gauges under "monitor".
	var metrics map[string]any
	doJSON(t, http.MethodGet, srv.URL+"/metrics", "", http.StatusOK, &metrics)
	if _, ok := metrics["jobs_completed"]; !ok {
		t.Error("/metrics lost the engine's top-level fields")
	}
	if _, ok := metrics["latency_window"]; !ok {
		t.Error("/metrics missing the documented latency_window field")
	}
	mon, ok := metrics["monitor"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics monitor section = %T, want object", metrics["monitor"])
	}
	for _, field := range []string{"monitors_active", "windows_materialized", "drift_breaches", "grade_regressions", "alerts_delivered",
		"baseline_profiles_built", "profile_build_millis_total", "drift_windows_scored", "drift_millis_total"} {
		if _, ok := mon[field]; !ok {
			t.Errorf("/metrics monitor section missing %q", field)
		}
	}
	if got := mon["drift_breaches"].(float64); got != 1 {
		t.Errorf("monitor drift_breaches = %v, want 1", got)
	}

	// Listing, status, and deletion.
	var list []Summary
	doJSON(t, http.MethodGet, srv.URL+"/v1/monitors", "", http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != sum.ID {
		t.Fatalf("list = %+v, want the one registered monitor", list)
	}
	doJSON(t, http.MethodDelete, base, "", http.StatusOK, nil)
	doJSON(t, http.MethodGet, base, "", http.StatusNotFound, nil)
}

func TestHTTPMonitorValidation(t *testing.T) {
	srv, reg := newTestService(t)
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"nameless register", http.MethodPost, "/v1/monitors", `{}`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/monitors", `{"name":"x","nope":1}`, http.StatusBadRequest},
		{"slide past width", http.MethodPost, "/v1/monitors", `{"name":"x","window_ms":100,"slide_ms":200}`, http.StatusBadRequest},
		{"unknown monitor status", http.MethodGet, "/v1/monitors/mon-999999", "", http.StatusNotFound},
		{"unknown monitor history", http.MethodGet, "/v1/monitors/mon-999999/history", "", http.StatusNotFound},
		{"unknown monitor ingest", http.MethodPost, "/v1/monitors/mon-999999/ingest", `{"csv":"a\n1\n"}`, http.StatusNotFound},
		{"bad method on collection", http.MethodDelete, "/v1/monitors", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doJSON(t, tc.method, srv.URL+tc.path, tc.body, tc.wantStatus, nil)
		})
	}

	// Ingest source must be exactly one of csv/synthetic.
	m, err := reg.Register(creditSpec("src"))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	for _, body := range []string{`{}`, `{"csv":"a\n1\n","synthetic":{"n":10}}`} {
		doJSON(t, http.MethodPost, srv.URL+"/v1/monitors/"+m.ID()+"/ingest", body, http.StatusBadRequest, nil)
	}

	// Negative time_ms — the regression that used to panic the windower
	// ("makeslice: cap out of range") or silently mis-assign rows into
	// window 0 — answers 400 for any int64, down to MinInt64.
	for _, body := range []string{
		`{"time_ms":-1,"csv":"a\n1\n"}`,
		`{"time_ms":-60000,"csv":"a\n1\n"}`,
		`{"time_ms":-9223372036854775808,"csv":"a\n1\n"}`,
	} {
		doJSON(t, http.MethodPost, srv.URL+"/v1/monitors/"+m.ID()+"/ingest", body, http.StatusBadRequest, nil)
	}
	if got := m.Status(); got.RowsIngested != 0 || got.Windows != 0 {
		t.Errorf("rejected negative-time ingest mutated state: %+v", got)
	}
}

func TestWebhookSinkRetriesWithBackoff(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()

	sink := &WebhookSink{URL: flaky.URL, Backoff: time.Millisecond}
	if err := sink.Deliver(context.Background(), Alert{Monitor: "m", Kind: AlertDriftBreach}); err != nil {
		t.Fatalf("Deliver with one transient failure: %v", err)
	}
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != 2 {
		t.Errorf("attempts = %d, want 2 (one retry)", got)
	}
}

func TestWebhookSinkGivesUpAfterMaxAttempts(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer down.Close()

	sink := &WebhookSink{URL: down.URL, MaxAttempts: 3, Backoff: time.Millisecond}
	if err := sink.Deliver(context.Background(), Alert{Monitor: "m", Kind: AlertAuditFailure}); err == nil {
		t.Fatal("Deliver succeeded against an always-failing webhook")
	}
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

// TestHTTPMonitorTenantScoping pins the monitoring plane's
// multi-tenant HTTP contract: registrations owned by the wire tenant,
// tenant-scoped lists, cross-tenant ids answering 404 on every
// subresource, and per-tenant monitor-count quotas answering 429.
func TestHTTPMonitorTenantScoping(t *testing.T) {
	engine := serve.NewEngine(serve.Config{Workers: 2, QueueSize: 32})
	t.Cleanup(engine.Close)
	reg, err := NewRegistry(RegistryConfig{
		Engine: engine,
		Quotas: func(id string) tenant.Quotas {
			if id == "acme" {
				return tenant.Quotas{MaxMonitors: 1}
			}
			return tenant.Quotas{}
		},
	})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	t.Cleanup(reg.Close)
	handler := serve.NewHandler(engine)
	handler.Monitors = NewHandler(reg)
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)

	var sum Summary
	doJSON(t, http.MethodPost, srv.URL+"/v1/monitors",
		`{"name":"prod","window_ms":60000,"tenant":"acme"}`, http.StatusCreated, &sum)
	if sum.Tenant != "acme" || sum.ID == "" {
		t.Fatalf("registration summary = %+v, want tenant acme", sum)
	}

	// acme is at its MaxMonitors of 1: the next registration is 429.
	doJSON(t, http.MethodPost, srv.URL+"/v1/monitors",
		`{"name":"prod-2","window_ms":60000,"tenant":"acme"}`, http.StatusTooManyRequests, nil)
	// Other tenants are unaffected by acme's quota.
	var other Summary
	doJSON(t, http.MethodPost, srv.URL+"/v1/monitors",
		`{"name":"prod","window_ms":60000,"tenant":"beta"}`, http.StatusCreated, &other)

	// Lists are tenant-scoped; names only need to be unique per tenant.
	var sums []Summary
	doJSON(t, http.MethodGet, srv.URL+"/v1/monitors?tenant=acme", "", http.StatusOK, &sums)
	if len(sums) != 1 || sums[0].ID != sum.ID {
		t.Fatalf("acme list = %+v, want just %s", sums, sum.ID)
	}
	doJSON(t, http.MethodGet, srv.URL+"/v1/monitors", "", http.StatusOK, &sums)
	if len(sums) != 0 {
		t.Fatalf("default list = %+v, want empty", sums)
	}

	// Cross-tenant ids read as absent on every subresource.
	base := srv.URL + "/v1/monitors/" + sum.ID
	doJSON(t, http.MethodGet, base, "", http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, base+"/history", "", http.StatusNotFound, nil)
	doJSON(t, http.MethodPost, base+"/ingest",
		`{"time_ms":0,"synthetic":{"n":100}}`, http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, base, "", http.StatusNotFound, nil)

	// The owner reaches all of them.
	doJSON(t, http.MethodGet, base+"?tenant=acme", "", http.StatusOK, &sum)
	doJSON(t, http.MethodGet, base+"/history?tenant=acme", "", http.StatusOK, nil)
	doJSON(t, http.MethodDelete, base+"?tenant=acme", "", http.StatusOK, nil)

	// Tenant validation at the edge: malformed ids answer 400.
	doJSON(t, http.MethodGet, srv.URL+"/v1/monitors?tenant=Bad.Tenant", "", http.StatusBadRequest, nil)
}
