package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/responsible-data-science/rds/internal/policy"
)

// AlertKind classifies what a monitor observed.
type AlertKind string

// Alert kinds.
const (
	// AlertDriftBreach fires when a window's PSI/KS drift against the
	// pinned baseline crosses a threshold.
	AlertDriftBreach AlertKind = "drift_breach"
	// AlertGradeRegression fires when an audited window's overall grade
	// is worse than the previous audited grade (Green→Amber→Red).
	AlertGradeRegression AlertKind = "grade_regression"
	// AlertAuditFailure fires when a window audit errors or is rejected
	// by a saturated engine.
	AlertAuditFailure AlertKind = "audit_failure"
	// AlertBaselineMissing fires when a restored monitor's BaselineRef
	// no longer resolves in the dataset registry (or its re-audit
	// fails): the monitor runs degraded instead of being dropped.
	AlertBaselineMissing AlertKind = "baseline_missing"
)

// Alert is one monitoring observation delivered to sinks. The JSON form
// is the webhook payload.
type Alert struct {
	Monitor string    `json:"monitor"` // monitor id
	Name    string    `json:"name"`    // registered dataset name
	Kind    AlertKind `json:"kind"`
	Window  int64     `json:"window"` // window index the alert concerns
	Message string    `json:"message"`
	// From/To carry the grade transition for grade_regression alerts.
	From *policy.Grade `json:"from,omitempty"`
	To   *policy.Grade `json:"to,omitempty"`
	// Drift carries the breaching drift report for drift_breach alerts.
	Drift *DriftReport `json:"drift,omitempty"`
}

// Sink receives alerts. Implementations must be safe for concurrent
// use; delivery happens on the ingesting goroutine, so slow sinks slow
// ingestion (the webhook sink bounds this with MaxAttempts × Backoff).
type Sink interface {
	// Deliver ships one alert, returning an error if it could not be
	// delivered (after any internal retries).
	Deliver(ctx context.Context, a Alert) error
}

// LogSink writes alerts to a standard-library logger.
type LogSink struct {
	// Logger defaults to the process-wide log.Default().
	Logger *log.Logger
}

// Deliver logs the alert on one line.
func (s *LogSink) Deliver(_ context.Context, a Alert) error {
	l := s.Logger
	if l == nil {
		l = log.Default()
	}
	extra := ""
	if a.Kind == AlertGradeRegression && a.From != nil && a.To != nil {
		extra = fmt.Sprintf(" (%s→%s)", *a.From, *a.To)
	}
	if a.Kind == AlertDriftBreach && a.Drift != nil {
		extra = fmt.Sprintf(" (max PSI %.3f, max KS %.3f)", a.Drift.MaxPSI, a.Drift.MaxKS)
	}
	l.Printf("monitor %s [%s] window %d: %s%s", a.Monitor, a.Kind, a.Window, a.Message, extra)
	return nil
}

// WebhookSink POSTs alerts as JSON to a URL, retrying failed deliveries
// with exponential backoff.
type WebhookSink struct {
	// URL receives the POSTed Alert JSON. Required.
	URL string
	// Client defaults to a client with a 10s timeout.
	Client *http.Client
	// MaxAttempts bounds delivery attempts (default 3).
	MaxAttempts int
	// Backoff is the delay before the second attempt, doubling per
	// retry (default 250ms).
	Backoff time.Duration
}

// Deliver POSTs the alert, treating any 2xx status as success. Non-2xx
// responses and transport errors are retried MaxAttempts times with
// exponential backoff; ctx cancellation stops the retry loop.
func (s *WebhookSink) Deliver(ctx context.Context, a Alert) error {
	if s.URL == "" {
		return fmt.Errorf("monitor: webhook sink has no URL")
	}
	client := s.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	attempts := s.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := s.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	body, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("monitor: encoding alert: %w", err)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				return fmt.Errorf("monitor: webhook delivery cancelled: %w", ctx.Err())
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("monitor: building webhook request: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return nil
		}
		lastErr = fmt.Errorf("webhook returned %s", resp.Status)
	}
	return fmt.Errorf("monitor: webhook delivery to %s failed after %d attempts: %w", s.URL, attempts, lastErr)
}
