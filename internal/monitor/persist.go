package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/exec"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// Persistence. With RegistryConfig.Store set, the registry keeps two
// durable records per monitor, both keyed by monitor id: the spec
// (store.KindMonitor) and, once a baseline is pinned, the baseline
// profile (store.KindProfile). A restart then restores every monitor
// via Restore: specs are decoded, profiles rebuilt, and baseline
// datasets re-pinned in the dataset registry.
//
// The profile record persists only the irreducible baseline state —
// the sorted finite sample per numeric column and the level counts per
// categorical column. Everything else DetectDriftProfiled consumes
// (PSI edges, baseline histogram, summary moments) is recomputed from
// that sample at decode time by the same pure functions the original
// build used, so a restored profile scores every window bit-identically
// to the profile it was saved from: finite float64s round-trip JSON
// exactly, and psiEdges/histSorted are deterministic in their inputs.
//
// What does not survive a restart: in-flight windower state (rows of
// partially filled windows), the bounded window history, per-monitor
// counters, and non-webhook alert sinks (a Sink is arbitrary process
// state; only WebhookSink, being pure config, is persisted).

// specDoc is the persisted form of a monitor Spec. Unlike the HTTP
// wire form it carries the full TrainSpec (Exclude included) and the
// effective defaulted values, so a restored monitor behaves exactly
// like the one that was running.
type specDoc struct {
	Name string `json:"name"`
	// Tenant is the owning tenant (omitted for the default tenant,
	// keeping pre-multi-tenant state directories readable). Ownership
	// lives on the resource record itself, not in a separate list, so
	// a crash cannot leave spec and ownership disagreeing.
	Tenant         string            `json:"tenant,omitempty"`
	Policy         policy.FACTPolicy `json:"policy"`
	Train          core.TrainSpec    `json:"train"`
	Seed           uint64            `json:"seed,omitempty"`
	Window         WindowConfig      `json:"window"`
	Drift          DriftConfig       `json:"drift"`
	BaselineRef    string            `json:"baseline_ref,omitempty"`
	AuditEvery     int               `json:"audit_every,omitempty"`
	ReauditEveryMS int64             `json:"reaudit_every_ms,omitempty"`
	History        int               `json:"history,omitempty"`
	Webhooks       []string          `json:"webhooks,omitempty"`
}

// specDocFrom captures spec's persistable state. Webhook sinks are
// kept by URL; any other sink implementation is process-local state
// and is dropped from the durable record.
func specDocFrom(spec Spec) specDoc {
	doc := specDoc{
		Name:           spec.Name,
		Policy:         spec.Policy,
		Train:          spec.Train,
		Seed:           spec.Seed,
		Window:         spec.Window,
		Drift:          spec.Drift,
		BaselineRef:    spec.BaselineRef,
		AuditEvery:     spec.AuditEvery,
		ReauditEveryMS: spec.ReauditEvery.Milliseconds(),
		History:        spec.History,
	}
	if spec.Tenant != tenant.Default {
		doc.Tenant = spec.Tenant
	}
	for _, s := range spec.Sinks {
		if w, ok := s.(*WebhookSink); ok {
			doc.Webhooks = append(doc.Webhooks, w.URL)
		}
	}
	return doc
}

// spec rebuilds the monitor Spec.
func (d specDoc) spec() Spec {
	spec := Spec{
		Name:         d.Name,
		Tenant:       d.Tenant,
		Policy:       d.Policy,
		Train:        d.Train,
		Seed:         d.Seed,
		Window:       d.Window,
		Drift:        d.Drift,
		BaselineRef:  d.BaselineRef,
		AuditEvery:   d.AuditEvery,
		ReauditEvery: time.Duration(d.ReauditEveryMS) * time.Millisecond,
		History:      d.History,
	}
	for _, u := range d.Webhooks {
		spec.Sinks = append(spec.Sinks, &WebhookSink{URL: u})
	}
	return spec
}

// profileDoc is the persisted form of a pinned baseline profile plus
// the baseline grade it was audited at.
type profileDoc struct {
	Grade       *policy.Grade      `json:"baseline_grade,omitempty"`
	Config      DriftConfig        `json:"config"`
	Rows        int                `json:"rows"`
	BuildMillis float64            `json:"build_millis"`
	Columns     []profileColumnDoc `json:"columns"`
}

// profileColumnDoc is one column's persisted baseline state: the
// sorted finite sample (numeric) or the level counts (categorical).
// Edges, histogram, and moments are recomputed at decode time.
type profileColumnDoc struct {
	Name    string           `json:"name"`
	Present bool             `json:"present,omitempty"`
	Numeric bool             `json:"numeric,omitempty"`
	DType   string           `json:"dtype,omitempty"`
	Sorted  []float64        `json:"sorted,omitempty"`
	Levels  map[string]int64 `json:"levels,omitempty"`
}

// dtypeNames maps the persisted dtype spellings back to frame.DType.
var dtypeNames = map[string]frame.DType{
	frame.Float64.String(): frame.Float64,
	frame.Int64.String():   frame.Int64,
	frame.String.String():  frame.String,
	frame.Bool.String():    frame.Bool,
}

// encodeProfile serializes p and its baseline grade.
func encodeProfile(p *BaselineProfile, grade *policy.Grade) ([]byte, error) {
	doc := profileDoc{
		Grade:       grade,
		Config:      p.cfg,
		Rows:        p.rows,
		BuildMillis: float64(p.build) / float64(time.Millisecond),
		Columns:     make([]profileColumnDoc, 0, len(p.cols)),
	}
	for i := range p.cols {
		pc := &p.cols[i]
		cd := profileColumnDoc{Name: pc.name, Present: pc.present, Numeric: pc.numeric}
		if pc.present {
			cd.DType = pc.dtype.String()
		}
		if pc.numeric {
			cd.Sorted = pc.sorted
		} else if pc.levels != nil {
			cd.Levels = pc.levels.Counts
		}
		doc.Columns = append(doc.Columns, cd)
	}
	return json.Marshal(doc)
}

// decodeProfile rebuilds a BaselineProfile (and its baseline grade)
// from encodeProfile's output, recomputing the derived per-column
// state. The persisted sample is validated — ascending, finite — so a
// tampered record is refused as corrupt rather than silently producing
// wrong drift scores.
func decodeProfile(payload []byte) (*BaselineProfile, *policy.Grade, error) {
	var doc profileDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, nil, fmt.Errorf("%w: decoding profile: %v", store.ErrCorrupt, err)
	}
	if doc.Rows <= 0 {
		return nil, nil, fmt.Errorf("%w: profile has row count %d", store.ErrCorrupt, doc.Rows)
	}
	cfg := doc.Config.withDefaults()
	opt := exec.Options{Shards: cfg.Shards}
	p := &BaselineProfile{
		cfg:   cfg,
		rows:  doc.Rows,
		cols:  make([]profileColumn, 0, len(doc.Columns)),
		build: time.Duration(doc.BuildMillis * float64(time.Millisecond)),
	}
	for _, cd := range doc.Columns {
		pc := profileColumn{name: cd.Name, present: cd.Present, numeric: cd.Numeric}
		if cd.Present {
			dt, ok := dtypeNames[cd.DType]
			if !ok {
				return nil, nil, fmt.Errorf("%w: profile column %q has unknown dtype %q", store.ErrCorrupt, cd.Name, cd.DType)
			}
			pc.dtype = dt
		}
		switch {
		case !cd.Present:
		case cd.Numeric:
			for i, v := range cd.Sorted {
				if math.IsNaN(v) || math.IsInf(v, 0) || (i > 0 && v < cd.Sorted[i-1]) {
					return nil, nil, fmt.Errorf("%w: profile column %q sample is not sorted finite", store.ErrCorrupt, cd.Name)
				}
			}
			if len(cd.Sorted) > 0 {
				pc.sorted = cd.Sorted
				pc.edges = psiEdges(pc.sorted, cfg.Bins)
				pc.hist = histSorted(pc.sorted, pc.edges)
				ms, err := exec.RunOne(len(pc.sorted), opt, exec.NewMoments(pc.sorted))
				if err != nil {
					return nil, nil, fmt.Errorf("monitor: rebuilding profile column %q: %w", cd.Name, err)
				}
				pc.moments = ms.(*exec.Moments)
			}
		default:
			counts := map[string]int64{}
			for k, v := range cd.Levels {
				if v < 0 {
					return nil, nil, fmt.Errorf("%w: profile column %q has negative level count", store.ErrCorrupt, cd.Name)
				}
				counts[k] = v
			}
			pc.levels = &exec.Levels{Counts: counts}
		}
		p.cols = append(p.cols, pc)
	}
	return p, doc.Grade, nil
}

// persistSpec writes m's spec record; a nil store is a no-op.
func (r *Registry) persistSpec(m *Monitor) error {
	st := r.cfg.Store
	if st == nil {
		return nil
	}
	payload, err := json.Marshal(specDocFrom(m.spec))
	if err != nil {
		return err
	}
	return st.Save(store.KindMonitor, m.id, payload)
}

// persistProfileLocked writes m's profile record; callers hold
// m.procMu. A nil store or an unpinned profile is a no-op.
func (r *Registry) persistProfileLocked(m *Monitor) error {
	st := r.cfg.Store
	if st == nil || m.profile == nil {
		return nil
	}
	m.mu.Lock()
	grade := m.baseGrade
	m.mu.Unlock()
	payload, err := encodeProfile(m.profile, grade)
	if err != nil {
		return err
	}
	return st.Save(store.KindProfile, m.id, payload)
}

// dropPersisted removes m's durable records after deletion, counting
// (not propagating) failures: the monitor is already gone from the
// live registry and the worst case of a leftover record is a spurious
// restore on the next boot.
func (r *Registry) dropPersisted(id string) {
	st := r.cfg.Store
	if st == nil {
		return
	}
	if err := st.Delete(store.KindMonitor, id); err != nil {
		r.metrics.bump(&r.metrics.persistFailures, 1)
	}
	if err := st.Delete(store.KindProfile, id); err != nil {
		r.metrics.bump(&r.metrics.persistFailures, 1)
	}
}

// Restore rebuilds every persisted monitor into the registry and
// returns how many were restored. Call it once at boot, after the
// dataset registry has restored its resident set (restored monitors
// re-pin their baseline datasets) and before serving traffic.
//
// A corrupt record — an undecodable spec, a profile that fails
// validation — aborts the restore with an error wrapping
// store.ErrCorrupt: damaged state refuses to start rather than
// silently dropping monitors. A missing baseline dataset is different:
// the monitor is restored degraded (Summary.Degraded, an
// AlertBaselineMissing fan-out) with whatever persisted profile it
// has, because a dataset evicted while the process was down is an
// operational condition, not corruption.
func (r *Registry) Restore() (int, error) {
	st := r.cfg.Store
	if st == nil {
		return 0, nil
	}
	items, err := st.List(store.KindMonitor)
	if err != nil {
		return 0, fmt.Errorf("monitor: restoring registry: %w", err)
	}
	restored := 0
	var maxSeq uint64
	for _, it := range items {
		var doc specDoc
		if err := json.Unmarshal(it.Payload, &doc); err != nil {
			return restored, fmt.Errorf("monitor: restoring %s: %w: %v", it.ID, store.ErrCorrupt, err)
		}
		spec := doc.spec().withDefaults()
		ten, terr := tenant.Normalize(doc.Tenant)
		if terr != nil {
			return restored, fmt.Errorf("monitor: restoring %s: %w: %v", it.ID, store.ErrCorrupt, terr)
		}
		spec.Tenant = ten
		m := &Monitor{
			id:   it.ID,
			spec: spec,
			reg:  r,
			win:  newWindower(spec.Window),
			stop: make(chan struct{}),
		}

		praw, ok, err := st.Find(store.KindProfile, it.ID)
		if err != nil {
			return restored, fmt.Errorf("monitor: restoring %s profile: %w", it.ID, err)
		}
		if ok {
			prof, grade, derr := decodeProfile(praw)
			if derr != nil {
				return restored, fmt.Errorf("monitor: restoring %s profile: %w", it.ID, derr)
			}
			m.profile = prof
			info := prof.Info()
			m.baseGrade = grade
			m.profileInfo = &info
		}

		if spec.BaselineRef != "" {
			if err := r.repinBaseline(m); err != nil {
				return restored, err
			}
		}

		r.mu.Lock()
		// Restore enforces name uniqueness but not the MaxMonitors
		// quota: a quota lowered between boots must not refuse to
		// restore monitors that were registered legitimately.
		if _, err := r.checkRestorableLocked(spec.Tenant, spec.Name); err != nil {
			r.mu.Unlock()
			m.stopSchedule()
			m.releasePin()
			return restored, fmt.Errorf("monitor: restoring %s: %w", it.ID, err)
		}
		r.monitors[m.id] = m
		r.mu.Unlock()
		r.metrics.bump(&r.metrics.monitorsTotal, 1)

		var n uint64
		if _, err := fmt.Sscanf(it.ID, "mon-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
		if spec.ReauditEvery > 0 {
			go m.reauditLoop(spec.ReauditEvery)
		}
		restored++
	}
	r.mu.Lock()
	if maxSeq > r.seq {
		r.seq = maxSeq
	}
	r.mu.Unlock()
	return restored, nil
}

// repinBaseline re-pins a restored monitor's baseline dataset. A
// missing dataset degrades the monitor instead of failing the restore:
// the degraded flag is set, an AlertBaselineMissing fans out, and any
// persisted profile keeps scoring windows. A present dataset with no
// persisted profile is re-audited exactly like a fresh registration;
// an audit failure likewise degrades rather than drops the monitor.
func (r *Registry) repinBaseline(m *Monitor) error {
	ref := m.spec.BaselineRef
	if r.cfg.Datasets != nil {
		if f, ok := r.cfg.Datasets.PinAs(m.spec.Tenant, ref); ok {
			if m.profile != nil {
				return nil
			}
			if err := m.pinBaseline(f, ref); err != nil {
				m.releasePin()
				m.setDegraded(fmt.Sprintf("baseline_ref %q re-audit failed after restart: %v; monitor unpinned until data arrives", ref, err))
				return nil
			}
			m.procMu.Lock()
			perr := r.persistProfileLocked(m)
			m.procMu.Unlock()
			if perr != nil {
				r.metrics.bump(&r.metrics.persistFailures, 1)
			}
			return nil
		}
	}
	// Pin never taken: spend the releaseOnce so a later Delete/Close
	// cannot unpin a ref this monitor does not hold.
	m.releaseOnce.Do(func() {})
	reason := fmt.Sprintf("baseline_ref %q is not resident after restart; re-upload the dataset and re-register to re-pin", ref)
	if m.profile != nil {
		reason = fmt.Sprintf("baseline_ref %q is not resident after restart; drift scoring continues on the persisted profile", ref)
	}
	m.setDegraded(reason)
	return nil
}

// setDegraded marks the monitor degraded and fans out the
// AlertBaselineMissing explaining why.
func (m *Monitor) setDegraded(reason string) {
	m.mu.Lock()
	m.degraded = true
	m.mu.Unlock()
	m.alert(Alert{Kind: AlertBaselineMissing, Window: -1, Message: reason})
}
