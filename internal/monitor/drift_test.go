package monitor

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/exec"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/synth"
)

func creditFrame(t testing.TB, n int, bias, frac float64, seed uint64) *frame.Frame {
	t.Helper()
	f, err := synth.Credit(synth.CreditConfig{N: n, Bias: bias, GroupBFraction: frac, Seed: seed})
	if err != nil {
		t.Fatalf("synth.Credit: %v", err)
	}
	return f
}

// scaleColumn returns f with column col multiplied by factor — a gross
// numeric distribution shift the KS statistic must catch.
func scaleColumn(t testing.TB, f *frame.Frame, col string, factor float64) *frame.Frame {
	t.Helper()
	scaled := f.MustCol(col).Map(col, func(v float64) float64 { return v * factor })
	out, err := f.Drop(col)
	if err != nil {
		t.Fatalf("Drop(%s): %v", col, err)
	}
	if out, err = out.WithColumn(scaled); err != nil {
		t.Fatalf("WithColumn(%s): %v", col, err)
	}
	return out
}

func TestDetectDriftTableDriven(t *testing.T) {
	baseline := creditFrame(t, 3000, 0, 0.35, 1)
	cases := []struct {
		name        string
		current     *frame.Frame
		wantBreach  bool
		wantColumns map[string]bool // column -> breached
	}{
		{
			// Same generator, different seed: sampling noise only.
			name:       "identical distribution",
			current:    creditFrame(t, 3000, 0, 0.35, 99),
			wantBreach: false,
		},
		{
			// Group mix flips 0.35 -> 0.75: categorical PSI on "group"
			// (and the redlining proxy "neighborhood") must breach.
			name:        "categorical shift",
			current:     creditFrame(t, 3000, 0, 0.75, 7),
			wantBreach:  true,
			wantColumns: map[string]bool{"group": true, "neighborhood": true},
		},
		{
			// Income scaled 1.6x: numeric KS (and PSI) on "income" must
			// breach while untouched columns stay quiet.
			name:        "numeric shift",
			current:     scaleColumn(t, creditFrame(t, 3000, 0, 0.35, 42), "income", 1.6),
			wantBreach:  true,
			wantColumns: map[string]bool{"income": true, "debt_ratio": false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := DetectDrift(baseline, tc.current, DriftConfig{})
			if err != nil {
				t.Fatalf("DetectDrift: %v", err)
			}
			if rep.Breached != tc.wantBreach {
				t.Errorf("Breached = %v, want %v (max PSI %.4f, max KS %.4f)",
					rep.Breached, tc.wantBreach, rep.MaxPSI, rep.MaxKS)
			}
			got := map[string]ColumnDrift{}
			for _, c := range rep.Columns {
				got[c.Column] = c
			}
			for col, want := range tc.wantColumns {
				cd, ok := got[col]
				if !ok {
					t.Fatalf("column %q missing from drift report", col)
				}
				if cd.Breached != want {
					t.Errorf("column %q breached = %v, want %v (PSI %.4f, KS %.4f)",
						col, cd.Breached, want, cd.PSI, cd.KS)
				}
			}
		})
	}
}

func TestDetectDriftIdenticalFrameIsZero(t *testing.T) {
	f := creditFrame(t, 1000, 1, 0.35, 3)
	rep, err := DetectDrift(f, f, DriftConfig{})
	if err != nil {
		t.Fatalf("DetectDrift: %v", err)
	}
	if rep.Breached {
		t.Errorf("identical frames breached drift: %+v", rep)
	}
	if rep.MaxKS != 0 {
		t.Errorf("identical frames MaxKS = %v, want 0", rep.MaxKS)
	}
	// PSI floored smoothing keeps identical histograms at ~0.
	if rep.MaxPSI > 1e-9 {
		t.Errorf("identical frames MaxPSI = %v, want ~0", rep.MaxPSI)
	}
}

func TestDetectDriftEmptyInputs(t *testing.T) {
	f := creditFrame(t, 100, 0, 0.35, 1)
	for _, pair := range [][2]*frame.Frame{{nil, f}, {f, nil}, {nil, nil}} {
		if _, err := DetectDrift(pair[0], pair[1], DriftConfig{}); err == nil {
			t.Error("DetectDrift accepted nil frame")
		}
	}
}

func TestDetectDriftColumnSubset(t *testing.T) {
	baseline := creditFrame(t, 1500, 0, 0.35, 1)
	current := creditFrame(t, 1500, 0, 0.75, 2)
	rep, err := DetectDrift(baseline, current, DriftConfig{Columns: []string{"income"}})
	if err != nil {
		t.Fatalf("DetectDrift: %v", err)
	}
	if len(rep.Columns) != 1 || rep.Columns[0].Column != "income" {
		t.Fatalf("columns = %+v, want just income", rep.Columns)
	}
}

// TestDetectDriftShardInvariance: the drift report — every PSI, KS,
// and p-value — is bit-for-bit identical at every shard count, because
// the histogram sketches and sorted samples merge in deterministic
// chunk order.
func TestDetectDriftShardInvariance(t *testing.T) {
	baseline := creditFrame(t, 3000, 0, 0.35, 1)
	current := creditFrame(t, 3000, 0.8, 0.6, 2)
	want, err := DetectDrift(baseline, current, DriftConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 16} {
		got, err := DetectDrift(baseline, current, DriftConfig{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Columns) != len(want.Columns) ||
			math.Float64bits(got.MaxPSI) != math.Float64bits(want.MaxPSI) ||
			math.Float64bits(got.MaxKS) != math.Float64bits(want.MaxKS) ||
			got.Breached != want.Breached {
			t.Fatalf("shards=%d: report head diverged: %+v vs %+v", shards, got, want)
		}
		for i, c := range got.Columns {
			w := want.Columns[i]
			if c.Column != w.Column || c.Breached != w.Breached ||
				math.Float64bits(c.PSI) != math.Float64bits(w.PSI) ||
				math.Float64bits(c.KS) != math.Float64bits(w.KS) ||
				math.Float64bits(c.KSPValue) != math.Float64bits(w.KSPValue) {
				t.Errorf("shards=%d column %q diverged: %+v vs %+v", shards, c.Column, c, w)
			}
		}
	}
}

// TestDetectDriftDTypeSchemaChange: a column that flips from numeric
// to string between baseline and current (e.g. a CSV batch where one
// "income" token is non-numeric) must yield an error entry, not a
// panic mid-ingest.
func TestDetectDriftDTypeSchemaChange(t *testing.T) {
	baseline := creditFrame(t, 200, 0, 0.35, 1)
	stringized := baseline.MustCol("income").Strings()
	current, err := baseline.Drop("income")
	if err != nil {
		t.Fatal(err)
	}
	if current, err = current.WithColumn(frame.NewString("income", stringized)); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectDrift(baseline, current, DriftConfig{}); err == nil {
		t.Fatal("numeric->string schema change should error, not score")
	}
}

func TestKSStatisticKnownShift(t *testing.T) {
	// Two disjoint samples: D must be 1. Identical samples: D = 0.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 11, 12, 13}
	if d := ksStatistic(a, b); d != 1 {
		t.Errorf("disjoint KS = %v, want 1", d)
	}
	if d := ksStatistic(a, a); d != 0 {
		t.Errorf("identical KS = %v, want 0", d)
	}
}

func TestKSPValueBounds(t *testing.T) {
	if p := ksPValue(0, 100, 100); p != 1 {
		t.Errorf("p(D=0) = %v, want 1", p)
	}
	p := ksPValue(0.5, 500, 500)
	if p < 0 || p > 1e-6 {
		t.Errorf("p(D=0.5, n=500) = %v, want ~0", p)
	}
	pSmall := ksPValue(0.05, 100, 100)
	if pSmall < 0.5 {
		t.Errorf("p(D=0.05, n=100) = %v, want large (not significant)", pSmall)
	}
}

func TestCategoricalPSIVanishingLevelStaysFinite(t *testing.T) {
	a := frame.NewString("a", []string{"x", "x", "y", "y"})
	b := frame.NewString("b", []string{"x", "x", "x", "x"})
	got, err := categoricalPSI(a, b, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("PSI with vanished level = %v, want finite", got)
	}
	if got <= DefaultPSIThreshold {
		t.Errorf("PSI with vanished level = %v, want > %v", got, DefaultPSIThreshold)
	}
}
