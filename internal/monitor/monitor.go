package monitor

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/stream"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// DefaultHistory is the default per-monitor window-history ring size.
const DefaultHistory = 64

// alertTimeout bounds one alert's total sink-delivery time.
const alertTimeout = 30 * time.Second

// Spec declares one continuous monitor: what to audit, how to window
// the stream, when to re-audit, and how to score drift.
type Spec struct {
	// Name labels the monitored dataset in reports and alerts. Required;
	// unique among the owning tenant's live monitors (two tenants may
	// each have a monitor named "prod").
	Name string
	// Tenant is the owning tenant's id ("" means the default tenant).
	// It scopes name uniqueness, baseline-ref resolution, the monitor
	// count quota, and which audits the monitor's windows bill to.
	Tenant string
	// Policy holds the FACT thresholds each window is graded against.
	Policy policy.FACTPolicy
	// Train describes the training run audited per window.
	Train core.TrainSpec
	// Seed drives each window audit's stochastic steps (default 1).
	Seed uint64
	// Window shapes the stream windower.
	Window WindowConfig
	// Drift parameterizes PSI/KS scoring against the pinned baseline.
	Drift DriftConfig
	// BaselineRef, when set, pins the drift baseline at registration
	// time from the dataset registry (RegistryConfig.Datasets) instead
	// of waiting for the first auditable window: the named dataset is
	// audited once, its drift profile precomputed, and the dataset
	// pinned in the registry so LRU eviction cannot drop a standing
	// monitor's baseline. The pin is released when the monitor is
	// deleted. Every stream window — the first included — is then
	// scored against this baseline.
	BaselineRef string
	// AuditEvery is the audit cadence in windows: 1 audits every window,
	// N audits every Nth (default 1). Drift breaches force an immediate
	// off-cadence audit regardless.
	AuditEvery int
	// ReauditEvery schedules wall-clock re-audits of the latest
	// materialized window even when no new data arrives (0 disables).
	ReauditEvery time.Duration
	// History bounds the per-window history ring (default 64).
	History int
	// Sinks receive this monitor's alerts, in addition to the
	// registry-wide sinks.
	Sinks []Sink
}

func (s Spec) withDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.AuditEvery <= 0 {
		s.AuditEvery = 1
	}
	if s.History <= 0 {
		s.History = DefaultHistory
	}
	s.Window = s.Window.withDefaults()
	s.Drift = s.Drift.withDefaults()
	return s
}

// WindowEntry is one history record: a materialized window with its
// drift score and (when audited) its FACT report.
type WindowEntry struct {
	// Window is the window index; scheduled re-audits reuse the index
	// of the window they re-grade.
	Window  int64 `json:"window"`
	StartMS int64 `json:"start_ms"`
	EndMS   int64 `json:"end_ms"`
	Rows    int   `json:"rows"`
	// Baseline marks the pinned baseline window.
	Baseline bool `json:"baseline,omitempty"`
	// Skipped marks windows below MinRows, recorded but not graded.
	Skipped bool `json:"skipped,omitempty"`
	// Audited reports whether this entry carries a fresh FACT report.
	Audited bool `json:"audited"`
	// Scheduled marks entries produced by the re-audit schedule rather
	// than by stream progress.
	Scheduled bool `json:"scheduled,omitempty"`
	// Reaudits counts consecutive scheduled re-audits coalesced into
	// this entry (same window, same outcome): the heartbeat confirms
	// liveness without flooding the history ring.
	Reaudits int           `json:"reaudits,omitempty"`
	Grade    *policy.Grade `json:"grade,omitempty"`
	// DriftMillis is the wall-clock cost of scoring this window's drift
	// against the pinned baseline profile — the incremental chunk-state
	// merge when the registry's chunk-state cache is enabled, the full
	// rescan otherwise (0 for the baseline window itself and for
	// skipped windows).
	DriftMillis float64 `json:"drift_millis,omitempty"`
	// Regressed marks an audited entry whose grade is worse than the
	// previously audited grade.
	Regressed bool             `json:"regressed,omitempty"`
	Drift     *DriftReport     `json:"drift,omitempty"`
	Report    *core.FACTReport `json:"report,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// Summary is a monitor's point-in-time status for listings and alerts.
type Summary struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Tenant string `json:"tenant"`
	// BaselinePinned reports whether a baseline window has been audited
	// and pinned for drift comparison.
	BaselinePinned bool          `json:"baseline_pinned"`
	BaselineGrade  *policy.Grade `json:"baseline_grade,omitempty"`
	// Degraded marks a restored monitor whose BaselineRef dataset was
	// no longer resident after restart (or failed its re-audit): the
	// monitor keeps running — on its persisted profile when one
	// survived, otherwise re-baselining from the stream — but the
	// registration-time pin is gone until the dataset is re-uploaded
	// and the monitor re-registered.
	Degraded bool `json:"degraded,omitempty"`
	// ProfileBuildMillis is the one-time cost of precomputing the
	// pinned baseline's drift profile (0 until a baseline is pinned).
	ProfileBuildMillis float64       `json:"profile_build_millis,omitempty"`
	LastGrade          *policy.Grade `json:"last_grade,omitempty"`
	LastWindow         int64         `json:"last_window"`
	RowsIngested       uint64        `json:"rows_ingested"`
	LateRows           int64         `json:"late_rows"`
	Windows            uint64        `json:"windows"`
	Audits             uint64        `json:"audits"`
	DriftBreaches      uint64        `json:"drift_breaches"`
	Regressions        uint64        `json:"grade_regressions"`
	HistoryLen         int           `json:"history_len"`
}

// RegistryConfig parameterizes a Registry.
type RegistryConfig struct {
	// Engine runs the per-window audits. Required; shared with the
	// request/response plane so both compete fairly for workers.
	Engine *serve.Engine
	// Datasets, when set, lets monitor registrations pin a resident
	// dataset as their drift baseline by content ref (Spec.BaselineRef).
	Datasets *dataset.Registry
	// ChunkStates, when set, enables incremental sliding-window drift
	// scoring: per-chunk kernel states are cached under (chunk hash,
	// profile key), so a window advance re-merges surviving chunk
	// states and only scans the rows that entered — O(delta) per
	// slide instead of O(window). Results are bit-identical to the
	// full-rescan path (the incremental≡rescan property tests
	// enforce it); a cache miss or any condition the merged path
	// cannot reproduce silently falls back to the rescan.
	ChunkStates *dataset.StateCache
	// Sinks receive every monitor's alerts (e.g. one LogSink).
	Sinks []Sink
	// Quotas, when set, resolves a tenant's quota config at
	// registration time; a tenant at its MaxMonitors limit gets
	// tenant.ErrQuota instead of a new monitor. Nil means unlimited.
	Quotas func(string) tenant.Quotas
	// Store, when set, durably persists monitor specs and pinned
	// baseline profiles so Restore can rebuild the monitoring plane
	// after a restart (see persist.go for exactly what survives).
	Store store.Store
}

// Registry owns the live monitors: registration, lookup, deletion,
// alert fan-out, and plane-wide metrics. Safe for concurrent use.
type Registry struct {
	cfg RegistryConfig

	mu       sync.Mutex
	monitors map[string]*Monitor
	seq      uint64
	closed   bool

	metrics registryMetrics
}

// registryMetrics aggregates monitoring-plane counters; guarded by its
// own mutex so hot ingest paths don't contend with registry lookups.
type registryMetrics struct {
	mu                  sync.Mutex
	monitorsTotal       uint64
	rowsIngested        uint64
	windowsMaterialized uint64
	windowsAudited      uint64
	windowsSkipped      uint64
	driftBreaches       uint64
	gradeRegressions    uint64
	scheduledReaudits   uint64
	auditFailures       uint64
	alertsDelivered     uint64
	alertsFailed        uint64
	profileBuilds       uint64
	profileBuildMillis  float64
	driftWindows        uint64
	driftMillis         float64
	persistFailures     uint64
}

func (m *registryMetrics) bump(field *uint64, by uint64) {
	m.mu.Lock()
	*field += by
	m.mu.Unlock()
}

// bumpMillis accumulates a wall-clock duration into a millisecond
// gauge (profile builds, per-window drift scoring).
func (m *registryMetrics) bumpMillis(field *float64, d time.Duration) {
	m.mu.Lock()
	*field += float64(d) / float64(time.Millisecond)
	m.mu.Unlock()
}

// MetricsSnapshot is the monitoring plane's JSON gauge set, merged into
// GET /metrics under the "monitor" key.
type MetricsSnapshot struct {
	MonitorsActive      int    `json:"monitors_active"`
	MonitorsTotal       uint64 `json:"monitors_total"`
	RowsIngested        uint64 `json:"rows_ingested"`
	WindowsMaterialized uint64 `json:"windows_materialized"`
	WindowsAudited      uint64 `json:"windows_audited"`
	WindowsSkipped      uint64 `json:"windows_skipped"`
	DriftBreaches       uint64 `json:"drift_breaches"`
	GradeRegressions    uint64 `json:"grade_regressions"`
	ScheduledReaudits   uint64 `json:"scheduled_reaudits"`
	AuditFailures       uint64 `json:"audit_failures"`
	AlertsDelivered     uint64 `json:"alerts_delivered"`
	AlertsFailed        uint64 `json:"alerts_failed"`
	// BaselineProfiles counts pinned baselines whose drift profile was
	// precomputed; ProfileBuildMillis is their cumulative build cost.
	BaselineProfiles   uint64  `json:"baseline_profiles_built"`
	ProfileBuildMillis float64 `json:"profile_build_millis_total"`
	// DriftWindows counts windows scored against a baseline profile;
	// DriftMillis is their cumulative scoring cost, so
	// DriftMillis / DriftWindows is the plane's mean per-window drift
	// latency.
	DriftWindows uint64  `json:"drift_windows_scored"`
	DriftMillis  float64 `json:"drift_millis_total"`
	// PersistFailures counts best-effort store writes/deletes that
	// failed (stream-pinned profile saves, post-delete record removal);
	// persist failures on the registration path fail the registration
	// instead of counting here.
	PersistFailures uint64 `json:"persist_failures"`
	// Tenants maps tenant id to that tenant's live monitor count
	// (tenants with no monitors are omitted).
	Tenants map[string]int `json:"tenants,omitempty"`
}

// NewRegistry creates an empty registry backed by the given engine.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("monitor: registry needs a serve.Engine")
	}
	return &Registry{cfg: cfg, monitors: map[string]*Monitor{}}, nil
}

// Register validates the spec, creates the monitor, and starts its
// re-audit schedule (when configured). A spec carrying a BaselineRef
// resolves and pins the dataset in the dataset registry, audits it,
// and precomputes its drift profile before the monitor goes live — a
// failed baseline audit fails the whole registration.
func (r *Registry) Register(spec Spec) (*Monitor, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("monitor: spec needs a name")
	}
	ten, err := tenant.Normalize(spec.Tenant)
	if err != nil {
		return nil, err
	}
	spec.Tenant = ten
	if err := spec.Policy.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	if err := spec.Window.validate(); err != nil {
		return nil, err
	}

	// Resolve and pin the baseline before the monitor exists: the pin
	// shields the dataset from LRU eviction for the monitor's lifetime.
	var baseline *frame.Frame
	if spec.BaselineRef != "" {
		if r.cfg.Datasets == nil {
			return nil, fmt.Errorf("monitor: spec has baseline_ref %q but the registry has no dataset registry", spec.BaselineRef)
		}
		f, ok := r.cfg.Datasets.PinAs(spec.Tenant, spec.BaselineRef)
		if !ok {
			return nil, fmt.Errorf("monitor: unknown baseline_ref %q (load it first via POST /v1/datasets)", spec.BaselineRef)
		}
		baseline = f
	}

	// Reserve an id up front; the monitor is NOT published until its
	// baseline (if any) is pinned, so Get/List/Delete/Ingest can never
	// observe a half-initialized monitor mid-baseline-audit.
	r.mu.Lock()
	if err := r.checkRegistrableLocked(spec.Tenant, spec.Name); err != nil {
		r.mu.Unlock()
		r.unpinDataset(spec.Tenant, spec.BaselineRef)
		return nil, err
	}
	r.seq++
	m := &Monitor{
		id:   fmt.Sprintf("mon-%06d", r.seq),
		spec: spec,
		reg:  r,
		win:  newWindower(spec.Window),
		stop: make(chan struct{}),
	}
	r.mu.Unlock()

	if baseline != nil {
		// The baseline audit runs outside r.mu (audits can be slow and
		// must not block the registry).
		if err := m.pinBaseline(baseline, spec.BaselineRef); err != nil {
			m.stopSchedule()
			m.releasePin()
			return nil, err
		}
	}

	r.mu.Lock()
	// Re-check: the registry may have closed, or a same-name Register
	// may have won the race, while the baseline audit ran.
	if err := r.checkRegistrableLocked(spec.Tenant, spec.Name); err != nil {
		r.mu.Unlock()
		m.stopSchedule()
		m.releasePin()
		return nil, err
	}
	r.monitors[m.id] = m
	r.metrics.bump(&r.metrics.monitorsTotal, 1)
	r.mu.Unlock()

	// Durability before success: a registration the caller saw succeed
	// must survive a restart, so a failed persist unwinds the whole
	// registration (Delete also clears any partial records).
	err = r.persistSpec(m)
	if err == nil {
		m.procMu.Lock()
		err = r.persistProfileLocked(m)
		m.procMu.Unlock()
	}
	if err != nil {
		r.Delete(m.id)
		return nil, fmt.Errorf("monitor: persisting %s: %w", m.id, err)
	}

	if spec.ReauditEvery > 0 {
		go m.reauditLoop(spec.ReauditEvery)
	}
	return m, nil
}

// checkRegistrableLocked rejects registration on a closed registry, a
// duplicate monitor name within the tenant, or a tenant already at its
// MaxMonitors quota; callers hold r.mu.
func (r *Registry) checkRegistrableLocked(ten, name string) error {
	owned, err := r.checkRestorableLocked(ten, name)
	if err != nil {
		return err
	}
	if r.cfg.Quotas != nil {
		if q := r.cfg.Quotas(ten); q.MaxMonitors > 0 && owned >= q.MaxMonitors {
			return fmt.Errorf("monitor: tenant %q at monitor quota (%d): %w", ten, q.MaxMonitors, tenant.ErrQuota)
		}
	}
	return nil
}

// checkRestorableLocked is checkRegistrableLocked minus the quota
// check (Restore must not refuse monitors a lowered quota now
// excludes); it returns the tenant's current monitor count so the
// registration path can apply the quota on top. Callers hold r.mu.
func (r *Registry) checkRestorableLocked(ten, name string) (owned int, err error) {
	if r.closed {
		return 0, fmt.Errorf("monitor: registry closed")
	}
	for _, m := range r.monitors {
		if m.spec.Tenant != ten {
			continue
		}
		owned++
		if m.spec.Name == name {
			return owned, fmt.Errorf("monitor: name %q already registered as %s", name, m.id)
		}
	}
	return owned, nil
}

// unpinDataset releases a tenant's baseline pin, tolerating an empty
// ref or an absent dataset registry.
func (r *Registry) unpinDataset(ten, ref string) {
	if ref != "" && r.cfg.Datasets != nil {
		r.cfg.Datasets.UnpinAs(ten, ref)
	}
}

// Get returns the monitor with the given id.
func (r *Registry) Get(id string) (*Monitor, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.monitors[id]
	return m, ok
}

// List returns summaries of all live monitors, ordered by id.
func (r *Registry) List() []Summary {
	r.mu.Lock()
	ms := make([]*Monitor, 0, len(r.monitors))
	for _, m := range r.monitors {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	out := make([]Summary, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ListAs returns summaries of the tenant's live monitors, ordered by
// id. Other tenants' monitors are invisible.
func (r *Registry) ListAs(ten string) []Summary {
	out := make([]Summary, 0)
	for _, s := range r.List() {
		if s.Tenant == ten {
			out = append(out, s)
		}
	}
	return out
}

// Delete stops and removes the monitor with the given id, reporting
// whether it existed. A baseline pinned from the dataset registry is
// released, making the dataset evictable again.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	m, ok := r.monitors[id]
	delete(r.monitors, id)
	r.mu.Unlock()
	if ok {
		m.stopSchedule()
		m.releasePin()
		r.dropPersisted(id)
	}
	return ok
}

// Close stops every monitor's schedule and rejects further
// registrations. The shared engine is left running (the
// request/response plane owns its lifecycle).
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	ms := make([]*Monitor, 0, len(r.monitors))
	for _, m := range r.monitors {
		ms = append(ms, m)
	}
	r.monitors = map[string]*Monitor{}
	r.mu.Unlock()
	for _, m := range ms {
		m.stopSchedule()
		m.releasePin()
	}
}

// Metrics snapshots the monitoring plane's gauges.
func (r *Registry) Metrics() MetricsSnapshot {
	r.mu.Lock()
	active := len(r.monitors)
	var perTenant map[string]int
	if active > 0 {
		perTenant = make(map[string]int)
		for _, mon := range r.monitors {
			perTenant[mon.spec.Tenant]++
		}
	}
	r.mu.Unlock()
	m := &r.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	return MetricsSnapshot{
		MonitorsActive:      active,
		MonitorsTotal:       m.monitorsTotal,
		RowsIngested:        m.rowsIngested,
		WindowsMaterialized: m.windowsMaterialized,
		WindowsAudited:      m.windowsAudited,
		WindowsSkipped:      m.windowsSkipped,
		DriftBreaches:       m.driftBreaches,
		GradeRegressions:    m.gradeRegressions,
		ScheduledReaudits:   m.scheduledReaudits,
		AuditFailures:       m.auditFailures,
		AlertsDelivered:     m.alertsDelivered,
		AlertsFailed:        m.alertsFailed,
		BaselineProfiles:    m.profileBuilds,
		ProfileBuildMillis:  m.profileBuildMillis,
		DriftWindows:        m.driftWindows,
		DriftMillis:         m.driftMillis,
		PersistFailures:     m.persistFailures,
		Tenants:             perTenant,
	}
}

// deliver fans one alert out to the registry and monitor sinks.
func (r *Registry) deliver(a Alert, extra []Sink) {
	sinks := append(append([]Sink{}, r.cfg.Sinks...), extra...)
	if len(sinks) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), alertTimeout)
	defer cancel()
	for _, s := range sinks {
		if err := s.Deliver(ctx, a); err != nil {
			r.metrics.bump(&r.metrics.alertsFailed, 1)
		} else {
			r.metrics.bump(&r.metrics.alertsDelivered, 1)
		}
	}
}

// Monitor is one registered continuous audit: a windower over the
// arrival stream, a pinned baseline, a bounded window history, and
// per-monitor counters. All methods are safe for concurrent use.
type Monitor struct {
	id   string
	spec Spec
	reg  *Registry

	// procMu serializes stream processing — the windower, baseline
	// pinning, engine audits, and alert delivery — so windows are
	// graded in arrival order. Audits and webhook retries can be slow;
	// they hold only procMu, never mu.
	procMu     sync.Mutex
	win        *windower
	profile    *BaselineProfile // precomputed pinned-baseline drift state
	scorer     *ChunkScorer     // incremental drift scorer (built once per profile)
	lastFrame  *frame.Frame     // latest window, materialized lazily from lastChunks
	lastChunks []Chunk          // latest auditable window's chunk identities
	lastHash   string           // chunk-derived content id of the latest window
	sinceAudit int              // windows since the last audit (cadence counter)

	// mu guards the read-side state with short critical sections, so
	// Status and History stay responsive while an audit or alert
	// delivery is in flight under procMu.
	mu          sync.Mutex
	lastWindow  int64
	lastGrade   *policy.Grade // last audited grade
	baseGrade   *policy.Grade
	degraded    bool         // restored with a missing baseline dataset
	profileInfo *ProfileInfo // snapshot of the pinned profile's summary
	history     []WindowEntry
	rows        uint64
	lateRows    int64
	windows     uint64
	audits      uint64
	breaches    uint64
	regressions uint64

	stop     chan struct{}
	stopOnce sync.Once
	// releaseOnce guards the baseline dataset unpin so Delete, Close,
	// and a failed registration cannot double-release the pin.
	releaseOnce sync.Once
}

// ID returns the registry-assigned monitor id.
func (m *Monitor) ID() string { return m.id }

// Spec returns the monitor's effective (defaulted) spec.
func (m *Monitor) Spec() Spec { return m.spec }

// pinBaseline audits a registry-resident dataset and installs it as
// the pinned drift baseline at registration time (Spec.BaselineRef).
// The history entry uses window index -1: the baseline precedes the
// stream, so every real window — index 0 included — is drift-scored
// against it. ref doubles as the dataset's content hash, so the audit
// submit never re-hashes the (possibly 1M-row) frame.
func (m *Monitor) pinBaseline(f *frame.Frame, ref string) error {
	m.procMu.Lock()
	defer m.procMu.Unlock()
	entry := WindowEntry{Window: -1, Rows: f.NumRows(), Baseline: true}
	m.audit(f, &entry, ref)
	if entry.Error != "" {
		m.appendHistory(entry)
		return fmt.Errorf("monitor: baseline_ref %q audit failed: %s", ref, entry.Error)
	}
	prof, err := NewBaselineProfile(f, m.spec.Drift)
	if err != nil {
		entry.Error = err.Error()
		m.appendHistory(entry)
		return fmt.Errorf("monitor: baseline_ref %q profile: %w", ref, err)
	}
	m.profile = prof
	m.reg.metrics.bump(&m.reg.metrics.profileBuilds, 1)
	m.reg.metrics.bumpMillis(&m.reg.metrics.profileBuildMillis, prof.BuildTime())
	info := prof.Info()
	m.mu.Lock()
	m.baseGrade = entry.Grade
	m.profileInfo = &info
	m.mu.Unlock()
	m.appendHistory(entry)
	return nil
}

// releasePin releases the baseline dataset pin exactly once.
func (m *Monitor) releasePin() {
	m.releaseOnce.Do(func() { m.reg.unpinDataset(m.spec.Tenant, m.spec.BaselineRef) })
}

// Ingest feeds arrivals (in non-decreasing time order) through the
// windower, auditing every window the advancing watermark closes.
// Audits run synchronously on the calling goroutine via the shared
// engine, so Ingest returns only after closed windows are graded;
// concurrent Ingest calls on the same monitor are serialized. Status
// and History never wait on an in-flight audit or alert delivery.
//
// Every arrival is validated before any window state changes: a batch
// containing a negative TimeMS — which has no window on a stream clock
// that starts at zero — rejects the whole batch with an error instead
// of mis-assigning rows or panicking in window-index arithmetic. Any
// int64 TimeMS, down to math.MinInt64, is safe to submit.
func (m *Monitor) Ingest(arrivals ...stream.Arrival) error {
	for _, a := range arrivals {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("monitor: %w", err)
		}
	}
	m.procMu.Lock()
	defer m.procMu.Unlock()
	for _, a := range arrivals {
		var n uint64
		if a.Rows != nil {
			n = uint64(a.Rows.NumRows())
			m.reg.metrics.bump(&m.reg.metrics.rowsIngested, n)
		}
		closed := m.win.observe(a)
		m.mu.Lock()
		m.rows += n
		m.lateRows = m.win.lateRows
		m.mu.Unlock()
		for _, w := range closed {
			m.processWindow(w)
		}
	}
	return nil
}

// Flush force-closes all open windows — the partial final windows of a
// finite stream — and audits them on the usual cadence.
func (m *Monitor) Flush() {
	m.procMu.Lock()
	defer m.procMu.Unlock()
	for _, w := range m.win.flush() {
		m.processWindow(w)
	}
}

// Reaudit re-grades the latest auditable window immediately,
// regardless of cadence; scheduled marks it as driven by the re-audit
// schedule. It is a no-op before the first auditable window closes.
// The audit submits under the window's chunk-derived content hash, so
// an unchanged window is answered by the engine's report cache without
// re-hashing the (possibly 1M-row) flat frame — a quiet stream's
// heartbeat costs O(chunks), not O(rows). Consecutive scheduled
// re-audits with the same outcome coalesce into one history entry
// whose Reaudits count records the repeated confirmations, so the
// heartbeat cannot flush real drift history out of the bounded ring.
func (m *Monitor) Reaudit(scheduled bool) {
	m.procMu.Lock()
	defer m.procMu.Unlock()
	if m.lastFrame == nil && len(m.lastChunks) == 0 {
		return
	}
	if scheduled {
		m.reg.metrics.bump(&m.reg.metrics.scheduledReaudits, 1)
	}
	f, err := m.windowFrame()
	if err != nil || f == nil {
		return
	}
	m.mu.Lock()
	lastWindow := m.lastWindow
	m.mu.Unlock()
	entry := WindowEntry{
		Window:    lastWindow,
		StartMS:   lastWindow * m.spec.Window.SlideMS,
		EndMS:     lastWindow*m.spec.Window.SlideMS + m.spec.Window.WidthMS,
		Rows:      f.NumRows(),
		Scheduled: scheduled,
		Reaudits:  1,
	}
	m.audit(f, &entry, m.lastHash)
	m.recordReaudit(entry)
}

// History returns a copy of the window history, oldest first.
func (m *Monitor) History() []WindowEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]WindowEntry(nil), m.history...)
}

// BaselineProfileInfo returns the pinned baseline profile's summary,
// or nil before a baseline is pinned. Like Status and History it takes
// only the read-side lock, so it never waits on an in-flight audit.
func (m *Monitor) BaselineProfileInfo() *ProfileInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.profileInfo == nil {
		return nil
	}
	info := *m.profileInfo
	return &info
}

// Status snapshots the monitor's counters and grades.
func (m *Monitor) Status() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	var buildMS float64
	if m.profileInfo != nil {
		buildMS = m.profileInfo.BuildMillis
	}
	return Summary{
		ID:                 m.id,
		Name:               m.spec.Name,
		Tenant:             m.spec.Tenant,
		BaselinePinned:     m.baseGrade != nil,
		BaselineGrade:      m.baseGrade,
		Degraded:           m.degraded,
		ProfileBuildMillis: buildMS,
		LastGrade:          m.lastGrade,
		LastWindow:         m.lastWindow,
		RowsIngested:       m.rows,
		LateRows:           m.lateRows,
		Windows:            m.windows,
		Audits:             m.audits,
		DriftBreaches:      m.breaches,
		Regressions:        m.regressions,
		HistoryLen:         len(m.history),
	}
}

// processWindow grades one closed window; callers hold m.procMu (never
// m.mu — audits and alert delivery must not block Status/History).
func (m *Monitor) processWindow(w *closedWindow) {
	m.mu.Lock()
	m.windows++
	m.mu.Unlock()
	m.reg.metrics.bump(&m.reg.metrics.windowsMaterialized, 1)
	entry := WindowEntry{Window: w.index, StartMS: w.startMS, EndMS: w.endMS, Rows: w.rows}

	if w.rows < m.spec.Window.MinRows {
		entry.Skipped = true
		m.reg.metrics.bump(&m.reg.metrics.windowsSkipped, 1)
		m.appendHistory(entry)
		return
	}
	if m.profile == nil {
		// First auditable window: always audit, pin as the drift
		// baseline, and precompute the baseline profile every later
		// window is scored against.
		f, err := w.materialize()
		if err != nil || f == nil {
			if err != nil {
				entry.Error = err.Error()
			}
			entry.Skipped = true
			m.reg.metrics.bump(&m.reg.metrics.windowsSkipped, 1)
			m.appendHistory(entry)
			return
		}
		m.setLastWindow(w.index, w.chunks(), f)
		entry.Baseline = true
		m.audit(f, &entry, "")
		if entry.Error == "" {
			prof, perr := NewBaselineProfile(f, m.spec.Drift)
			if perr != nil {
				entry.Error = perr.Error()
			} else {
				m.profile = prof
				m.reg.metrics.bump(&m.reg.metrics.profileBuilds, 1)
				m.reg.metrics.bumpMillis(&m.reg.metrics.profileBuildMillis, prof.BuildTime())
				info := prof.Info()
				m.mu.Lock()
				m.baseGrade = entry.Grade
				m.profileInfo = &info
				m.mu.Unlock()
				// Best-effort: the stream-pinned baseline keeps scoring
				// in memory either way; a failed save only costs the
				// profile a re-pin from the stream after a restart.
				if perr := m.reg.persistProfileLocked(m); perr != nil {
					m.reg.metrics.bump(&m.reg.metrics.persistFailures, 1)
				}
			}
		}
		m.sinceAudit = 0
		m.appendHistory(entry)
		return
	}

	// Drift path. With a chunk-state cache configured, score the window
	// incrementally from its chunk states — O(delta) per slide — and
	// defer materialization until an audit actually needs the flat
	// frame. Any incremental error (cache type confusion, mid-window
	// schema change, type drift) falls back to the full rescan, which
	// re-derives the legacy outcome — including the legacy error —
	// from the materialized window, so a miss can cost time but never
	// a wrong or failed grading.
	chunks := w.chunks()
	var (
		f     *frame.Frame
		drift *DriftReport
		derr  error
	)
	driftStart := time.Now()
	if m.reg.cfg.ChunkStates != nil {
		if sc := m.chunkScorer(); sc != nil {
			if rep, err := sc.Score(chunks); err == nil {
				drift = rep
			}
		}
	}
	if drift == nil {
		var err error
		f, err = w.materialize()
		if err != nil || f == nil {
			if err != nil {
				entry.Error = err.Error()
			}
			entry.Skipped = true
			m.reg.metrics.bump(&m.reg.metrics.windowsSkipped, 1)
			m.appendHistory(entry)
			return
		}
		drift, derr = DetectDriftProfiled(m.profile, f)
	}
	driftDur := time.Since(driftStart)
	m.setLastWindow(w.index, chunks, f)
	entry.DriftMillis = float64(driftDur) / float64(time.Millisecond)
	m.reg.metrics.bump(&m.reg.metrics.driftWindows, 1)
	m.reg.metrics.bumpMillis(&m.reg.metrics.driftMillis, driftDur)
	if derr != nil {
		entry.Error = derr.Error()
	} else {
		entry.Drift = drift
	}
	m.sinceAudit++
	breached := drift != nil && drift.Breached
	if breached {
		m.mu.Lock()
		m.breaches++
		m.mu.Unlock()
		m.reg.metrics.bump(&m.reg.metrics.driftBreaches, 1)
		m.alert(Alert{
			Kind:    AlertDriftBreach,
			Window:  w.index,
			Message: fmt.Sprintf("drift vs baseline breached thresholds (max PSI %.3f > %.2f or max KS %.3f > %.2f); forcing re-audit", drift.MaxPSI, m.spec.Drift.PSIThreshold, drift.MaxKS, m.spec.Drift.KSThreshold),
			Drift:   drift,
		})
	}
	if breached || m.sinceAudit >= m.spec.AuditEvery {
		// The FACT audit trains on the flat window, so the incremental
		// path materializes here — only when an audit actually fires.
		// The chunk-derived hash keys the engine's report cache without
		// an O(rows · cols) re-hash of the window.
		af, aerr := m.windowFrame()
		if aerr != nil {
			entry.Error = aerr.Error()
			m.reg.metrics.bump(&m.reg.metrics.auditFailures, 1)
		} else {
			m.audit(af, &entry, m.lastHash)
		}
		m.sinceAudit = 0
	}
	m.appendHistory(entry)
}

// setLastWindow records the latest auditable window as the re-audit
// target. f may be nil when the incremental drift path deferred
// materialization; windowFrame rebuilds the flat frame from the
// retained chunks on first need. Callers hold procMu.
func (m *Monitor) setLastWindow(index int64, chunks []Chunk, f *frame.Frame) {
	m.lastFrame = f
	m.lastChunks = chunks
	m.lastHash = windowDataHash(chunks)
	m.mu.Lock()
	m.lastWindow = index
	m.mu.Unlock()
}

// windowFrame returns the latest auditable window's flat frame,
// materializing it from the retained chunks on first need and
// memoizing the result. Callers hold procMu.
func (m *Monitor) windowFrame() (*frame.Frame, error) {
	if m.lastFrame != nil {
		return m.lastFrame, nil
	}
	m.mu.Lock()
	index := m.lastWindow
	m.mu.Unlock()
	f, err := materializeChunks(m.lastChunks, index)
	if err != nil {
		return nil, err
	}
	m.lastFrame = f
	return f, nil
}

// chunkScorer returns the monitor's incremental drift scorer, built
// once per pinned profile against the registry's chunk-state cache.
// Callers hold procMu.
func (m *Monitor) chunkScorer() *ChunkScorer {
	if m.scorer == nil && m.profile != nil {
		if sc, err := NewChunkScorer(m.profile, m.reg.cfg.ChunkStates); err == nil {
			m.scorer = sc
		}
	}
	return m.scorer
}

// audit runs one FACT audit of f through the shared engine, filling the
// entry's report/grade and firing grade-regression or failure alerts.
// dataHash, when non-empty, is f's known content hash (a dataset
// registry ref) and lets the engine skip re-hashing f for its report
// cache. Callers hold m.procMu; m.mu is taken only for the state
// updates, so readers never wait on the engine or on sink delivery.
func (m *Monitor) audit(f *frame.Frame, entry *WindowEntry, dataHash string) {
	name := fmt.Sprintf("%s/window-%05d", m.spec.Name, entry.Window)
	if entry.Window < 0 {
		name = m.spec.Name + "/baseline"
	}
	req := &serve.Request{
		Tenant:   m.spec.Tenant,
		Dataset:  name,
		Data:     f,
		DataHash: dataHash,
		Policy:   m.spec.Policy,
		Spec:     m.spec.Train,
		Seed:     m.spec.Seed,
		// Window audits are system work scheduled on the tenant's
		// behalf, not tenant submissions: the system-monitor class keeps
		// them off the tenant's token bucket, so a tight rate_per_sec
		// cannot starve the tenant's own drift scoring.
		Class: serve.ClassSystem,
	}
	id, err := m.reg.cfg.Engine.Submit(req)
	if err == nil {
		var js serve.JobStatus
		js, err = m.reg.cfg.Engine.Wait(context.Background(), id)
		if err == nil && js.Status == serve.StatusFailed {
			err = fmt.Errorf("%s", js.Error)
		}
		if err == nil {
			entry.Audited = true
			entry.Report = js.Report
			grade := js.Report.Overall
			entry.Grade = &grade

			m.mu.Lock()
			prev := m.lastGrade
			regressed := prev != nil && grade < *prev
			if regressed {
				m.regressions++
			}
			m.audits++
			m.lastGrade = &grade
			m.mu.Unlock()

			m.reg.metrics.bump(&m.reg.metrics.windowsAudited, 1)
			if regressed {
				entry.Regressed = true
				m.reg.metrics.bump(&m.reg.metrics.gradeRegressions, 1)
				m.alert(Alert{
					Kind:    AlertGradeRegression,
					Window:  entry.Window,
					Message: fmt.Sprintf("window %d regressed %s → %s", entry.Window, *prev, grade),
					From:    prev,
					To:      &grade,
				})
			}
			return
		}
	}
	entry.Error = err.Error()
	m.reg.metrics.bump(&m.reg.metrics.auditFailures, 1)
	m.alert(Alert{
		Kind:    AlertAuditFailure,
		Window:  entry.Window,
		Message: fmt.Sprintf("window %d audit failed: %v", entry.Window, err),
	})
}

// alert stamps monitor identity onto a and fans it out.
func (m *Monitor) alert(a Alert) {
	a.Monitor = m.id
	a.Name = m.spec.Name
	m.reg.deliver(a, m.spec.Sinks)
}

// appendHistory records one entry in the bounded ring.
func (m *Monitor) appendHistory(e WindowEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appendLocked(e)
}

// appendLocked appends under the ring bound; callers hold m.mu.
func (m *Monitor) appendLocked(e WindowEntry) {
	m.history = append(m.history, e)
	if over := len(m.history) - m.spec.History; over > 0 {
		m.history = append([]WindowEntry(nil), m.history[over:]...)
	}
}

// recordReaudit files a re-audit entry, coalescing it into the previous
// entry when that entry is a scheduled re-audit of the same window with
// the same outcome — a quiet stream's heartbeat confirms liveness via
// the Reaudits count instead of flooding the ring.
func (m *Monitor) recordReaudit(e WindowEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.history); e.Scheduled && n > 0 {
		last := m.history[n-1]
		if last.Scheduled && last.Window == e.Window && last.Error == e.Error && gradeEq(last.Grade, e.Grade) {
			e.Reaudits = last.Reaudits + 1
			m.history[n-1] = e
			return
		}
	}
	m.appendLocked(e)
}

// gradeEq compares two optional grades.
func gradeEq(a, b *policy.Grade) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// reauditLoop drives the re-audit schedule until the monitor stops.
func (m *Monitor) reauditLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Reaudit(true)
		}
	}
}

func (m *Monitor) stopSchedule() {
	m.stopOnce.Do(func() { close(m.stop) })
}
