package monitor

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/stream"
)

func newTestEngine(t testing.TB) *serve.Engine {
	t.Helper()
	e := serve.NewEngine(serve.Config{Workers: 2, QueueSize: 32})
	t.Cleanup(e.Close)
	return e
}

func newTestRegistry(t testing.TB, sinks ...Sink) *Registry {
	t.Helper()
	r, err := NewRegistry(RegistryConfig{Engine: newTestEngine(t), Sinks: sinks})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

// captureSink records alerts for assertions.
type captureSink struct {
	mu     sync.Mutex
	alerts []Alert
}

func (c *captureSink) Deliver(_ context.Context, a Alert) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.alerts = append(c.alerts, a)
	return nil
}

func (c *captureSink) kinds() []AlertKind {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]AlertKind, 0, len(c.alerts))
	for _, a := range c.alerts {
		out = append(out, a.Kind)
	}
	return out
}

func creditSpec(name string) Spec {
	return Spec{
		Name:   name,
		Policy: serve.DefaultPolicy(),
		Train:  core.TrainSpec{Target: "approved", Sensitive: "group", Protected: "B", Reference: "A"},
		Window: WindowConfig{WidthMS: 100},
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := newTestRegistry(t)
	m, err := r.Register(creditSpec("loans"))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := r.Register(creditSpec("loans")); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := r.Register(Spec{}); err == nil {
		t.Error("nameless spec accepted")
	}
	if got := len(r.List()); got != 1 {
		t.Errorf("List() len = %d, want 1", got)
	}
	if _, ok := r.Get(m.ID()); !ok {
		t.Errorf("Get(%q) missing", m.ID())
	}
	if !r.Delete(m.ID()) {
		t.Error("Delete returned false for live monitor")
	}
	if r.Delete(m.ID()) {
		t.Error("Delete returned true for removed monitor")
	}
	if got := r.Metrics().MonitorsTotal; got != 1 {
		t.Errorf("MonitorsTotal = %d, want 1", got)
	}
	r.Close()
	if _, err := r.Register(creditSpec("late")); err == nil {
		t.Error("Register accepted after Close")
	}
}

func TestMonitorAuditCadence(t *testing.T) {
	r := newTestRegistry(t)
	spec := creditSpec("cadence")
	spec.AuditEvery = 3
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	data := creditFrame(t, 400, 0, 0.35, 1)
	for i := int64(0); i < 4; i++ {
		m.Ingest(stream.Arrival{TimeMS: i * 100, Rows: data})
	}
	m.Ingest(stream.Arrival{TimeMS: 400}) // heartbeat closes window 3
	hist := m.History()
	if len(hist) != 4 {
		t.Fatalf("history len = %d, want 4", len(hist))
	}
	wantAudited := []bool{true, false, false, true} // baseline, then every 3rd
	for i, e := range hist {
		if e.Audited != wantAudited[i] {
			t.Errorf("window %d audited = %v, want %v", e.Window, e.Audited, wantAudited[i])
		}
	}
	if !hist[0].Baseline {
		t.Error("first audited window not pinned as baseline")
	}
	if hist[1].Drift == nil || hist[1].Drift.Breached {
		t.Errorf("same-distribution window drift = %+v, want quiet non-nil", hist[1].Drift)
	}
	s := m.Status()
	if !s.BaselinePinned || s.Audits != 2 || s.Windows != 4 {
		t.Errorf("status = %+v, want pinned baseline, 2 audits, 4 windows", s)
	}
}

func TestMonitorDriftForcesReauditAndRegressionAlert(t *testing.T) {
	sink := &captureSink{}
	r := newTestRegistry(t, sink)
	spec := creditSpec("drifting")
	spec.AuditEvery = 1000 // only drift can force a post-baseline audit
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	m.Ingest(stream.Arrival{TimeMS: 0, Rows: creditFrame(t, 2000, 0, 0.35, 1)})
	m.Ingest(stream.Arrival{TimeMS: 100, Rows: creditFrame(t, 2000, 3, 0.7, 2)})
	m.Flush()

	hist := m.History()
	if len(hist) != 2 {
		t.Fatalf("history len = %d, want 2", len(hist))
	}
	base, drifted := hist[0], hist[1]
	if !base.Audited || base.Grade == nil || *base.Grade != policy.Green {
		t.Fatalf("baseline entry = %+v, want audited Green", base)
	}
	if drifted.Drift == nil || !drifted.Drift.Breached {
		t.Fatalf("drifted window drift = %+v, want breach", drifted.Drift)
	}
	if !drifted.Audited {
		t.Error("drift breach did not force an off-cadence audit")
	}
	if drifted.Grade == nil || *drifted.Grade != policy.Red {
		t.Errorf("drifted grade = %v, want RED", drifted.Grade)
	}
	if !drifted.Regressed {
		t.Error("grade regression not recorded on the drifted entry")
	}

	kinds := sink.kinds()
	if len(kinds) != 2 || kinds[0] != AlertDriftBreach || kinds[1] != AlertGradeRegression {
		t.Errorf("alert kinds = %v, want [drift_breach grade_regression]", kinds)
	}
	snap := r.Metrics()
	if snap.DriftBreaches != 1 || snap.GradeRegressions != 1 || snap.AlertsDelivered != 2 {
		t.Errorf("metrics = %+v, want 1 breach, 1 regression, 2 alerts delivered", snap)
	}
}

// TestMonitorIngestRejectsNegativeTime: the whole batch is rejected
// with an error before any window state changes — no rows counted, no
// windows opened, no panic, for any int64 time down to MinInt64.
func TestMonitorIngestRejectsNegativeTime(t *testing.T) {
	r := newTestRegistry(t)
	m, err := r.Register(creditSpec("neg-time"))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	for _, tm := range []int64{-1, -60000, math.MinInt64} {
		err := m.Ingest(
			stream.Arrival{TimeMS: 0, Rows: rowsFrame(t, 1)},
			stream.Arrival{TimeMS: tm, Rows: rowsFrame(t, 2)},
		)
		if err == nil {
			t.Fatalf("Ingest accepted arrival at t=%d", tm)
		}
	}
	s := m.Status()
	if s.RowsIngested != 0 || s.Windows != 0 || len(m.History()) != 0 {
		t.Errorf("rejected batches mutated state: %+v", s)
	}
	if err := m.Ingest(stream.Arrival{TimeMS: 0, Rows: rowsFrame(t, 1)}); err != nil {
		t.Errorf("valid arrival rejected after bad batches: %v", err)
	}
}

// TestMonitorBaselineProfileAndLatencyGauges: pinning a baseline builds
// its drift profile exactly once, the per-window drift latency lands in
// history entries and the plane gauges, and the profile summary is
// readable without touching the processing lock.
func TestMonitorBaselineProfileAndLatencyGauges(t *testing.T) {
	r := newTestRegistry(t)
	spec := creditSpec("profiled")
	spec.AuditEvery = 1000
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if m.BaselineProfileInfo() != nil {
		t.Error("profile info present before a baseline is pinned")
	}
	m.Ingest(stream.Arrival{TimeMS: 0, Rows: creditFrame(t, 1000, 0, 0.35, 1)})
	m.Ingest(stream.Arrival{TimeMS: 100, Rows: creditFrame(t, 1000, 0, 0.35, 2)})
	m.Ingest(stream.Arrival{TimeMS: 200, Rows: creditFrame(t, 1000, 0, 0.35, 3)})
	m.Flush()

	info := m.BaselineProfileInfo()
	if info == nil {
		t.Fatal("no profile info after baseline pin")
	}
	if info.Rows != 1000 || info.Columns == 0 || info.NumericColumns == 0 || info.CategoricalColumns == 0 {
		t.Errorf("profile info = %+v, want the credit schema profiled", info)
	}
	if got := m.Status().ProfileBuildMillis; got != info.BuildMillis {
		t.Errorf("Status().ProfileBuildMillis = %v, want %v", got, info.BuildMillis)
	}
	hist := m.History()
	if len(hist) != 3 {
		t.Fatalf("history len = %d, want 3", len(hist))
	}
	if hist[0].DriftMillis != 0 {
		t.Errorf("baseline entry DriftMillis = %v, want 0", hist[0].DriftMillis)
	}
	for _, e := range hist[1:] {
		if e.Drift == nil || e.DriftMillis < 0 {
			t.Errorf("window %d: drift=%v drift_millis=%v, want scored with non-negative latency", e.Window, e.Drift, e.DriftMillis)
		}
	}
	snap := r.Metrics()
	if snap.BaselineProfiles != 1 || snap.DriftWindows != 2 {
		t.Errorf("gauges = %+v, want 1 profile built and 2 windows scored", snap)
	}
	if snap.ProfileBuildMillis < 0 || snap.DriftMillis < 0 {
		t.Errorf("latency gauges negative: %+v", snap)
	}
}

func TestMonitorSkipsWindowsBelowMinRows(t *testing.T) {
	r := newTestRegistry(t)
	spec := creditSpec("sparse")
	spec.Window.MinRows = 10
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	m.Ingest(stream.Arrival{TimeMS: 0, Rows: rowsFrame(t, 1, 2, 3)})
	m.Ingest(stream.Arrival{TimeMS: 150}) // closes window 0
	hist := m.History()
	if len(hist) != 1 || !hist[0].Skipped || hist[0].Audited {
		t.Fatalf("history = %+v, want one skipped unaudited entry", hist)
	}
	if r.Metrics().WindowsSkipped != 1 {
		t.Errorf("WindowsSkipped = %d, want 1", r.Metrics().WindowsSkipped)
	}
	if m.Status().BaselinePinned {
		t.Error("skipped window pinned as baseline")
	}
}

func TestMonitorHistoryRingBounded(t *testing.T) {
	r := newTestRegistry(t)
	spec := creditSpec("ring")
	spec.Window.MinRows = 100 // every window skips; no audits, fast
	spec.History = 3
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := int64(0); i < 6; i++ {
		m.Ingest(stream.Arrival{TimeMS: i * 100, Rows: rowsFrame(t, 1)})
	}
	m.Ingest(stream.Arrival{TimeMS: 600})
	hist := m.History()
	if len(hist) != 3 {
		t.Fatalf("history len = %d, want ring bound 3", len(hist))
	}
	if hist[0].Window != 3 || hist[2].Window != 5 {
		t.Errorf("ring kept windows %d..%d, want 3..5", hist[0].Window, hist[2].Window)
	}
}

func TestMonitorReauditAndSchedule(t *testing.T) {
	r := newTestRegistry(t)
	m, err := r.Register(creditSpec("reaudit"))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	m.Reaudit(true) // no window yet: must be a no-op
	if len(m.History()) != 0 {
		t.Fatal("Reaudit before any window produced history")
	}
	m.Ingest(stream.Arrival{TimeMS: 0, Rows: creditFrame(t, 400, 0, 0.35, 1)})
	m.Ingest(stream.Arrival{TimeMS: 150})
	m.Reaudit(true)
	hist := m.History()
	if len(hist) != 2 {
		t.Fatalf("history len = %d, want baseline + re-audit", len(hist))
	}
	re := hist[1]
	if !re.Scheduled || !re.Audited || re.Window != 0 || re.Reaudits != 1 {
		t.Errorf("re-audit entry = %+v, want scheduled audited window 0 with Reaudits 1", re)
	}
	if r.Metrics().ScheduledReaudits != 1 {
		t.Errorf("ScheduledReaudits = %d, want 1", r.Metrics().ScheduledReaudits)
	}

	// A quiet stream's heartbeat coalesces: repeated identical
	// scheduled re-audits refresh one entry instead of flooding the
	// bounded ring.
	m.Reaudit(true)
	m.Reaudit(true)
	hist = m.History()
	if len(hist) != 2 {
		t.Fatalf("history len after repeated re-audits = %d, want 2 (coalesced)", len(hist))
	}
	if hist[1].Reaudits != 3 {
		t.Errorf("coalesced Reaudits = %d, want 3", hist[1].Reaudits)
	}
	if r.Metrics().ScheduledReaudits != 3 {
		t.Errorf("ScheduledReaudits = %d, want 3", r.Metrics().ScheduledReaudits)
	}
}

// TestMonitorStatusNotBlockedBySlowSink pins the lock split: audits and
// alert delivery run under the processing lock only, so the status and
// history endpoints answer while a webhook delivery is stuck.
func TestMonitorStatusNotBlockedBySlowSink(t *testing.T) {
	sink := &blockingSink{entered: make(chan struct{}), release: make(chan struct{})}
	r := newTestRegistry(t, sink)
	spec := creditSpec("slow-sink")
	spec.AuditEvery = 1000
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Ingest(stream.Arrival{TimeMS: 0, Rows: creditFrame(t, 400, 0, 0.35, 1)})
		m.Ingest(stream.Arrival{TimeMS: 100, Rows: creditFrame(t, 400, 0, 0.8, 2)}) // group-mix drift
		m.Ingest(stream.Arrival{TimeMS: 200})                                       // closes the drifted window -> breach -> alert blocks
	}()
	select {
	case <-sink.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("drift alert never reached the sink")
	}
	statusDone := make(chan Summary, 1)
	go func() {
		statusDone <- m.Status()
		m.History()
	}()
	select {
	case s := <-statusDone:
		if s.DriftBreaches != 1 {
			t.Errorf("status during blocked delivery: breaches = %d, want 1", s.DriftBreaches)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Status blocked behind a slow alert sink")
	}
	close(sink.release)
	<-done
}

// blockingSink signals entry and blocks delivery until released.
type blockingSink struct {
	entered chan struct{}
	release chan struct{}
}

func (s *blockingSink) Deliver(_ context.Context, _ Alert) error {
	s.entered <- struct{}{}
	<-s.release
	return nil
}

func TestMonitorScheduledReauditLoop(t *testing.T) {
	r := newTestRegistry(t)
	spec := creditSpec("ticker")
	spec.ReauditEvery = 20 * time.Millisecond
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	m.Ingest(stream.Arrival{TimeMS: 0, Rows: creditFrame(t, 400, 0, 0.35, 1)})
	m.Ingest(stream.Arrival{TimeMS: 150})
	deadline := time.Now().Add(5 * time.Second)
	for r.Metrics().ScheduledReaudits == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if r.Metrics().ScheduledReaudits == 0 {
		t.Fatal("scheduled re-audit never fired")
	}
	r.Delete(m.ID()) // stops the loop; -race would flag leaks touching state
}

func TestMonitorAuditFailureAlert(t *testing.T) {
	sink := &captureSink{}
	r := newTestRegistry(t, sink)
	spec := creditSpec("broken")
	spec.Train.Target = "no_such_column"
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	m.Ingest(stream.Arrival{TimeMS: 0, Rows: creditFrame(t, 400, 0, 0.35, 1)})
	m.Ingest(stream.Arrival{TimeMS: 150})
	hist := m.History()
	if len(hist) != 1 || hist[0].Error == "" || hist[0].Audited {
		t.Fatalf("history = %+v, want one failed entry", hist)
	}
	if kinds := sink.kinds(); len(kinds) != 1 || kinds[0] != AlertAuditFailure {
		t.Errorf("alert kinds = %v, want [audit_failure]", kinds)
	}
	if m.Status().BaselinePinned {
		t.Error("failed audit pinned a baseline")
	}
	if r.Metrics().AuditFailures != 1 {
		t.Errorf("AuditFailures = %d, want 1", r.Metrics().AuditFailures)
	}
}

func TestMonitorConcurrentIngestAndStatus(t *testing.T) {
	r := newTestRegistry(t)
	spec := creditSpec("racy")
	spec.Window.MinRows = 1000 // skip audits; exercise locking only
	m, err := r.Register(spec)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 50; i++ {
				m.Ingest(stream.Arrival{TimeMS: i * 10, Rows: rowsFrame(t, float64(g))})
				m.Status()
				m.History()
			}
		}(g)
	}
	wg.Wait()
	if got := m.Status().RowsIngested; got != 200 {
		t.Errorf("RowsIngested = %d, want 200", got)
	}
}

func TestRegistryNeedsEngine(t *testing.T) {
	if _, err := NewRegistry(RegistryConfig{}); err == nil {
		t.Fatal("NewRegistry accepted nil engine")
	}
}
