package monitor

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/rng"
)

// reportJSON marshals a drift report; byte equality of two reports is
// the strongest form of the profiled ≡ recompute contract (every PSI,
// KS, p-value, threshold verdict, and column order bit agrees).
func reportJSON(t testing.TB, rep *DriftReport) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshaling drift report: %v", err)
	}
	return string(b)
}

// requireProfiledMatchesRecompute asserts DetectDriftProfiled over a
// fresh profile of baseline produces a byte-identical report to the
// legacy full recompute, at every shard count in the sweep.
func requireProfiledMatchesRecompute(t *testing.T, baseline, current *frame.Frame, cfg DriftConfig) {
	t.Helper()
	for _, shards := range []int{1, 3, 8} {
		cfg.Shards = shards
		want, werr := DetectDrift(baseline, current, cfg)
		prof, perr := NewBaselineProfile(baseline, cfg)
		if perr != nil {
			t.Fatalf("shards=%d: NewBaselineProfile: %v", shards, perr)
		}
		got, gerr := DetectDriftProfiled(prof, current)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("shards=%d: error mismatch: recompute=%v profiled=%v", shards, werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("shards=%d: error text diverged:\nrecompute: %v\nprofiled:  %v", shards, werr, gerr)
			}
			continue
		}
		if w, g := reportJSON(t, want), reportJSON(t, got); w != g {
			t.Fatalf("shards=%d: profiled report diverged from recompute:\nrecompute: %s\nprofiled:  %s", shards, w, g)
		}
		// Belt and braces beyond JSON: the float bits themselves.
		for i := range want.Columns {
			w, g := want.Columns[i], got.Columns[i]
			if math.Float64bits(w.PSI) != math.Float64bits(g.PSI) ||
				math.Float64bits(w.KS) != math.Float64bits(g.KS) ||
				math.Float64bits(w.KSPValue) != math.Float64bits(g.KSPValue) {
				t.Fatalf("shards=%d column %q: float bits diverged: %+v vs %+v", shards, w.Column, w, g)
			}
		}
	}
}

// randomDriftFrame builds an adversarial drift input: a NaN/Inf-laced
// float column, an int64 column, a categorical column drawn from a
// seed-dependent level pool (so baseline and current can have disjoint
// levels), and an all-NaN column that must be skipped entirely.
func randomDriftFrame(src *rng.Source, rows int) *frame.Frame {
	pool := []string{"a", "b", "c", "d", "e", "f"}
	levels := pool[:2+src.Intn(len(pool)-2)]
	num := make([]float64, rows)
	ints := make([]int64, rows)
	cat := make([]string, rows)
	ghost := make([]float64, rows)
	for i := 0; i < rows; i++ {
		switch src.Intn(12) {
		case 0:
			num[i] = math.NaN()
		case 1:
			num[i] = math.Inf(1)
		case 2:
			num[i] = math.Inf(-1)
		default:
			num[i] = src.Normal(float64(src.Intn(3)), 1+src.Float64()*4)
		}
		ints[i] = int64(src.Intn(7)) - 3
		cat[i] = levels[src.Intn(len(levels))]
		ghost[i] = math.NaN()
	}
	return frame.MustNew(
		frame.NewFloat64("num", num),
		frame.NewInt64("count", ints),
		frame.NewString("cat", cat),
		frame.NewFloat64("ghost", ghost),
	)
}

// TestDetectDriftProfiledPropertyRandomFrames is the shard-and-profile
// invariance property test: over randomized frames — NaN/±Inf values,
// int64 columns, disjoint categorical levels, an all-NaN column — the
// profiled path reproduces the legacy recompute byte for byte at every
// shard count, including when one profile is reused across many
// windows.
func TestDetectDriftProfiledPropertyRandomFrames(t *testing.T) {
	src := rng.New(20260730)
	for trial := 0; trial < 12; trial++ {
		baseline := randomDriftFrame(src, 50+src.Intn(400))
		current := randomDriftFrame(src, 1+src.Intn(300))
		requireProfiledMatchesRecompute(t, baseline, current, DriftConfig{})
	}
	// One pinned profile scored against a sequence of windows — the
	// production shape — must match a fresh recompute per window.
	baseline := randomDriftFrame(src, 300)
	prof, err := NewBaselineProfile(baseline, DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 6; trial++ {
		current := randomDriftFrame(src, 1+src.Intn(200))
		want, werr := DetectDrift(baseline, current, DriftConfig{})
		got, gerr := DetectDriftProfiled(prof, current)
		if werr != nil || gerr != nil {
			t.Fatalf("trial %d: recompute=%v profiled=%v", trial, werr, gerr)
		}
		if w, g := reportJSON(t, want), reportJSON(t, got); w != g {
			t.Fatalf("trial %d: reused profile diverged:\nrecompute: %s\nprofiled:  %s", trial, w, g)
		}
	}
}

// TestDetectDriftProfiledMatchesRecomputeOnCredit pins the equivalence
// on the realistic mixed-schema generator the service demos with,
// including heavy categorical and numeric drift.
func TestDetectDriftProfiledMatchesRecomputeOnCredit(t *testing.T) {
	baseline := creditFrame(t, 3000, 0, 0.35, 1)
	for _, tc := range []struct {
		name    string
		current *frame.Frame
	}{
		{"identical distribution", creditFrame(t, 3000, 0, 0.35, 99)},
		{"categorical shift", creditFrame(t, 3000, 0, 0.75, 7)},
		{"numeric shift", scaleColumn(t, creditFrame(t, 3000, 0, 0.35, 42), "income", 1.6)},
		{"self", baseline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			requireProfiledMatchesRecompute(t, baseline, tc.current, DriftConfig{})
		})
	}
}

// TestDetectDriftProfiledColumnSubset: explicit column restrictions —
// including names absent from one or both frames — behave identically
// on both paths.
func TestDetectDriftProfiledColumnSubset(t *testing.T) {
	baseline := creditFrame(t, 1500, 0, 0.35, 1)
	current := creditFrame(t, 1500, 0, 0.75, 2)
	for _, cols := range [][]string{
		{"income"},
		{"income", "group"},
		{"income", "no_such_column", "group"},
		{"no_such_column"},
	} {
		requireProfiledMatchesRecompute(t, baseline, current, DriftConfig{Columns: cols})
	}
}

// TestDetectDriftProfiledSchemaChangeErrors: a numeric column arriving
// as a string column is schema drift; both paths must fail loudly with
// the same message.
func TestDetectDriftProfiledSchemaChangeErrors(t *testing.T) {
	baseline := creditFrame(t, 200, 0, 0.35, 1)
	stringized := baseline.MustCol("income").Strings()
	current, err := baseline.Drop("income")
	if err != nil {
		t.Fatal(err)
	}
	if current, err = current.WithColumn(frame.NewString("income", stringized)); err != nil {
		t.Fatal(err)
	}
	requireProfiledMatchesRecompute(t, baseline, current, DriftConfig{})
}

func TestBaselineProfileValidation(t *testing.T) {
	if _, err := NewBaselineProfile(nil, DriftConfig{}); err == nil {
		t.Error("nil baseline accepted")
	}
	empty := frame.MustNew(frame.NewFloat64("x", nil))
	if _, err := NewBaselineProfile(empty, DriftConfig{}); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := DetectDriftProfiled(nil, creditFrame(t, 10, 0, 0.35, 1)); err == nil {
		t.Error("nil profile accepted")
	}
	prof, err := NewBaselineProfile(creditFrame(t, 10, 0, 0.35, 1), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cur := range []*frame.Frame{nil, frame.MustNew(frame.NewFloat64("x", nil))} {
		if _, err := DetectDriftProfiled(prof, cur); err == nil {
			t.Error("empty current frame accepted")
		}
	}
}

// TestBaselineProfileInfo: the summary counts columns by kind, stays
// JSON-marshalable even with all-NaN columns (non-finite moments are
// omitted), and reports the build cost.
func TestBaselineProfileInfo(t *testing.T) {
	src := rng.New(7)
	prof, err := NewBaselineProfile(randomDriftFrame(src, 250), DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	info := prof.Info()
	if info.Rows != 250 || info.Columns != 4 || info.NumericColumns != 3 || info.CategoricalColumns != 1 {
		t.Errorf("info = %+v, want 250 rows, 4 columns (3 numeric, 1 categorical)", info)
	}
	if info.Bins != DefaultDriftBins {
		t.Errorf("info.Bins = %d, want default %d", info.Bins, DefaultDriftBins)
	}
	if info.BuildMillis < 0 {
		t.Errorf("BuildMillis = %v, want >= 0", info.BuildMillis)
	}
	raw, err := json.Marshal(info)
	if err != nil {
		t.Fatalf("profile info with all-NaN column must marshal: %v", err)
	}
	var round ProfileInfo
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	for _, ci := range info.ColumnProfiles {
		if ci.Column == "ghost" && (ci.Values != 0 || ci.Mean != nil || ci.StdDev != nil) {
			t.Errorf("all-NaN column profile = %+v, want omitted moments", ci)
		}
		if ci.Column == "cat" && (ci.Kind != "categorical" || ci.Levels < 2 || ci.Values != 250 || ci.Mean != nil) {
			t.Errorf("categorical column profile = %+v", ci)
		}
		if ci.Kind == "numeric" && ci.Values > 1 && (ci.Mean == nil || ci.StdDev == nil || ci.Min == nil || ci.Max == nil) {
			t.Errorf("numeric column %q missing finite moments: %+v", ci.Column, ci)
		}
	}
}
