package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/stream"
	"github.com/responsible-data-science/rds/internal/synth"
)

// newBaselineFixture builds an engine + dataset registry + monitor
// registry, with a synthetic credit population resident.
func newBaselineFixture(t *testing.T, budget int64) (*Registry, *dataset.Registry, dataset.Meta) {
	t.Helper()
	engine := serve.NewEngine(serve.Config{Workers: 2, JobTimeout: time.Minute})
	t.Cleanup(engine.Close)
	datasets := dataset.NewRegistry(budget)
	reg, err := NewRegistry(RegistryConfig{Engine: engine, Datasets: datasets})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	base, err := synth.Credit(synth.CreditConfig{N: 800, Bias: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := datasets.Put("baseline", base)
	if err != nil {
		t.Fatal(err)
	}
	return reg, datasets, meta
}

func baselineSpec(name, ref string) Spec {
	return Spec{
		Name:        name,
		BaselineRef: ref,
		Policy:      serve.DefaultPolicy(),
		Train: core.TrainSpec{
			Target: "approved", Sensitive: "group",
			Protected: "B", Reference: "A", Epochs: 5,
		},
		Window: WindowConfig{WidthMS: 1000},
	}
}

func TestRegisterWithBaselineRef(t *testing.T) {
	reg, datasets, meta := newBaselineFixture(t, 64<<20)
	m, err := reg.Register(baselineSpec("ref-monitor", meta.Ref))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if !st.BaselinePinned || st.BaselineGrade == nil {
		t.Fatalf("baseline not pinned at registration: %+v", st)
	}
	hist := m.History()
	if len(hist) != 1 || !hist[0].Baseline || hist[0].Window != -1 || !hist[0].Audited {
		t.Fatalf("baseline history entry = %+v", hist)
	}
	if got, _ := datasets.Get(meta.Ref); got.Pins != 1 {
		t.Fatalf("dataset pins = %d, want 1", got.Pins)
	}

	// The first stream window must be drift-scored against the pinned
	// baseline, not swallowed as a new baseline.
	win, err := synth.Credit(synth.CreditConfig{N: 400, Bias: 0.5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest(stream.Arrival{TimeMS: 0, Rows: win}, stream.Arrival{TimeMS: 1001}); err != nil {
		t.Fatal(err)
	}
	hist = m.History()
	last := hist[len(hist)-1]
	if last.Baseline || last.Drift == nil {
		t.Fatalf("first window entry = %+v, want drift-scored non-baseline", last)
	}

	// Deleting the monitor releases the pin.
	if !reg.Delete(m.ID()) {
		t.Fatal("delete failed")
	}
	if got, _ := datasets.Get(meta.Ref); got.Pins != 0 {
		t.Fatalf("dataset pins = %d after monitor delete, want 0", got.Pins)
	}
}

// TestBaselineSurvivesRegistryChurn: while a monitor holds the pin,
// over-budget uploads must evict around the baseline, never through it.
func TestBaselineSurvivesRegistryChurn(t *testing.T) {
	reg, datasets, meta := newBaselineFixture(t, 3*meta0Size(t))
	m, err := reg.Register(baselineSpec("pinned", meta.Ref))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(20); seed < 28; seed++ {
		f, err := synth.Credit(synth.CreditConfig{N: 800, Bias: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := datasets.Put("churn", f); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := datasets.Resolve(meta.Ref); !ok {
		t.Fatal("pinned baseline evicted by registry churn")
	}
	reg.Delete(m.ID())
	// Unpinned now: the next over-budget churn may evict it.
	for seed := uint64(30); seed < 34; seed++ {
		f, err := synth.Credit(synth.CreditConfig{N: 800, Bias: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := datasets.Put("churn2", f); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := datasets.Resolve(meta.Ref); ok {
		t.Fatal("unpinned baseline survived eviction pressure that should have dropped it")
	}
}

// meta0Size sizes the standard 800-row fixture dataset so budgets can
// be stated in multiples of it.
func meta0Size(t *testing.T) int64 {
	t.Helper()
	f, err := synth.Credit(synth.CreditConfig{N: 800, Bias: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return dataset.SizeOf(f)
}

func TestRegisterBaselineRefErrors(t *testing.T) {
	reg, _, _ := newBaselineFixture(t, 64<<20)
	if _, err := reg.Register(baselineSpec("missing", "no-such-ref")); err == nil ||
		!strings.Contains(err.Error(), "unknown baseline_ref") {
		t.Fatalf("unknown ref error = %v", err)
	}

	// A registry wired without a dataset registry must reject refs.
	engine := serve.NewEngine(serve.Config{Workers: 1, JobTimeout: time.Minute})
	defer engine.Close()
	bare, err := NewRegistry(RegistryConfig{Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Register(baselineSpec("bare", "some-ref")); err == nil ||
		!strings.Contains(err.Error(), "no dataset registry") {
		t.Fatalf("bare registry error = %v", err)
	}
}

// TestHTTPBaselineRefLifecycle drives the three planes the way
// cmd/rds-serve wires them: upload a dataset, register a monitor whose
// baseline_ref pins it, watch DELETE /v1/datasets answer 409 while the
// monitor lives, and succeed after the monitor is deleted.
func TestHTTPBaselineRefLifecycle(t *testing.T) {
	engine := serve.NewEngine(serve.Config{Workers: 2, JobTimeout: time.Minute})
	t.Cleanup(engine.Close)
	datasets := dataset.NewRegistry(64 << 20)
	reg, err := NewRegistry(RegistryConfig{Engine: engine, Datasets: datasets})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	handler := serve.NewHandler(engine)
	handler.Monitors = NewHandler(reg)
	handler.Datasets = dataset.NewHandler(datasets)
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)

	base, err := synth.Credit(synth.CreditConfig{N: 600, Bias: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	csv, err := base.CSVString()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/datasets?name=live-baseline", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	var meta dataset.Meta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var sum Summary
	doJSON(t, http.MethodPost, srv.URL+"/v1/monitors",
		fmt.Sprintf(`{"name":"live","baseline_ref":%q,"window_ms":1000,"epochs":5}`, meta.Ref),
		http.StatusCreated, &sum)
	if !sum.BaselinePinned {
		t.Fatalf("summary = %+v, want pinned baseline", sum)
	}

	var errBody map[string]string
	doJSON(t, http.MethodDelete, srv.URL+"/v1/datasets/"+meta.Ref, "", http.StatusConflict, &errBody)

	doJSON(t, http.MethodDelete, srv.URL+"/v1/monitors/"+sum.ID, "", http.StatusOK, &errBody)
	doJSON(t, http.MethodDelete, srv.URL+"/v1/datasets/"+meta.Ref, "", http.StatusOK, &errBody)

	// An unknown baseline_ref registration answers 400.
	doJSON(t, http.MethodPost, srv.URL+"/v1/monitors",
		`{"name":"bad","baseline_ref":"missing","window_ms":1000}`,
		http.StatusBadRequest, &errBody)
}

// TestCloseReleasesBaselinePins: registry Close must unpin every
// monitor's baseline, not just Delete.
func TestCloseReleasesBaselinePins(t *testing.T) {
	reg, datasets, meta := newBaselineFixture(t, 64<<20)
	if _, err := reg.Register(baselineSpec("a", meta.Ref)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(baselineSpec("b", meta.Ref)); err != nil {
		t.Fatal(err)
	}
	if got, _ := datasets.Get(meta.Ref); got.Pins != 2 {
		t.Fatalf("pins = %d, want 2", got.Pins)
	}
	reg.Close()
	if got, _ := datasets.Get(meta.Ref); got.Pins != 0 {
		t.Fatalf("pins = %d after Close, want 0", got.Pins)
	}
}
