package monitor

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/stream"
)

func rowsFrame(t testing.TB, vals ...float64) *frame.Frame {
	t.Helper()
	return frame.MustNew(frame.NewFloat64("x", vals))
}

func TestWindowerTumblingAssignsAndCloses(t *testing.T) {
	w := newWindower(WindowConfig{WidthMS: 100}.withDefaults())
	if closed := w.observe(stream.Arrival{TimeMS: 10, Rows: rowsFrame(t, 1, 2)}); len(closed) != 0 {
		t.Fatalf("window closed prematurely: %+v", closed)
	}
	if closed := w.observe(stream.Arrival{TimeMS: 90, Rows: rowsFrame(t, 3)}); len(closed) != 0 {
		t.Fatalf("window closed prematurely at t=90")
	}
	// t=100 is the first instant past window 0's [0,100).
	closed := w.observe(stream.Arrival{TimeMS: 100, Rows: rowsFrame(t, 4)})
	if len(closed) != 1 {
		t.Fatalf("got %d closed windows, want 1", len(closed))
	}
	win := closed[0]
	if win.index != 0 || win.startMS != 0 || win.endMS != 100 {
		t.Errorf("window bounds = (%d, %d, %d), want (0, 0, 100)", win.index, win.startMS, win.endMS)
	}
	if win.rows != 3 {
		t.Errorf("window rows = %d, want 3", win.rows)
	}
	f, err := win.materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if f.NumRows() != 3 {
		t.Errorf("materialized rows = %d, want 3", f.NumRows())
	}
}

func TestWindowerEmptyArrivalIsHeartbeat(t *testing.T) {
	w := newWindower(WindowConfig{WidthMS: 100}.withDefaults())
	w.observe(stream.Arrival{TimeMS: 5, Rows: rowsFrame(t, 1)})
	// A rowless arrival only advances the watermark — it must still
	// close window 0, and must not open an empty window of its own.
	closed := w.observe(stream.Arrival{TimeMS: 250})
	if len(closed) != 1 {
		t.Fatalf("heartbeat closed %d windows, want 1", len(closed))
	}
	if len(w.open) != 0 {
		t.Errorf("heartbeat left %d windows open, want 0", len(w.open))
	}
	if closed[0].rows != 1 {
		t.Errorf("closed window rows = %d, want 1", closed[0].rows)
	}
}

func TestWindowerFlushEmitsPartialFinalWindow(t *testing.T) {
	w := newWindower(WindowConfig{WidthMS: 100}.withDefaults())
	w.observe(stream.Arrival{TimeMS: 120, Rows: rowsFrame(t, 1, 2)})
	closed := w.flush()
	if len(closed) != 1 {
		t.Fatalf("flush emitted %d windows, want 1", len(closed))
	}
	if closed[0].index != 1 || closed[0].rows != 2 {
		t.Errorf("partial window = index %d rows %d, want index 1 rows 2", closed[0].index, closed[0].rows)
	}
	if again := w.flush(); len(again) != 0 {
		t.Errorf("second flush emitted %d windows, want 0", len(again))
	}
}

func TestWindowerSlidingOverlap(t *testing.T) {
	// Width 100, slide 50: t=60 belongs to window 0 [0,100) and
	// window 1 [50,150).
	w := newWindower(WindowConfig{WidthMS: 100, SlideMS: 50}.withDefaults())
	w.observe(stream.Arrival{TimeMS: 60, Rows: rowsFrame(t, 1)})
	closed := w.observe(stream.Arrival{TimeMS: 200, Rows: rowsFrame(t, 2)})
	var got []int64
	rows := map[int64]int{}
	for _, c := range closed {
		got = append(got, c.index)
		rows[c.index] = c.rows
	}
	if len(closed) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("closed windows = %v, want [0 1]", got)
	}
	if rows[0] != 1 || rows[1] != 1 {
		t.Errorf("row counts = %v, want 1 in each overlapping window", rows)
	}
}

func TestWindowerSlideBeyondWidthRejected(t *testing.T) {
	cfg := WindowConfig{WidthMS: 100, SlideMS: 200}.withDefaults()
	if err := cfg.validate(); err == nil {
		t.Fatal("slide > width validated; rows between windows would be silently dropped")
	}
}

func TestWindowerLateRowsDropped(t *testing.T) {
	w := newWindower(WindowConfig{WidthMS: 100}.withDefaults())
	w.observe(stream.Arrival{TimeMS: 10, Rows: rowsFrame(t, 1)})
	w.observe(stream.Arrival{TimeMS: 150, Rows: rowsFrame(t, 2)}) // closes window 0
	// t=20 targets only window 0, which is already emitted.
	w.observe(stream.Arrival{TimeMS: 20, Rows: rowsFrame(t, 3)})
	if w.lateRows != 1 {
		t.Errorf("lateRows = %d, want 1", w.lateRows)
	}
}

// TestWindowerNegativeTimeNeverPanics is the regression test for the
// negative-time_ms crash: indicesFor used to compute a negative slice
// capacity for sufficiently negative times ("makeslice: cap out of
// range", with int64 overflow in the kMin arithmetic near MinInt64) and
// mis-assigned slightly negative times into window 0. Every negative
// time now maps to no window: the rows are dropped as late and the
// watermark never moves.
func TestWindowerNegativeTimeNeverPanics(t *testing.T) {
	for _, cfg := range []WindowConfig{
		{WidthMS: 100},              // tumbling
		{WidthMS: 100, SlideMS: 40}, // sliding
	} {
		w := newWindower(cfg.withDefaults())
		for _, tm := range []int64{-1, -99, -100, -1_000_000, math.MinInt64 + 1, math.MinInt64} {
			if got := w.indicesFor(tm); got != nil {
				t.Errorf("indicesFor(%d) = %v, want nil (no window precedes t=0)", tm, got)
			}
			closed := w.observe(stream.Arrival{TimeMS: tm, Rows: rowsFrame(t, 1)})
			if len(closed) != 0 {
				t.Errorf("observe(t=%d) closed %d windows, want 0", tm, len(closed))
			}
		}
		if w.lateRows != 6 {
			t.Errorf("lateRows = %d, want 6 (every negative-time row dropped as late)", w.lateRows)
		}
		if len(w.open) != 0 {
			t.Errorf("negative times opened %d windows, want 0", len(w.open))
		}
		if w.started || w.watermark != 0 {
			t.Errorf("negative times moved the watermark: started=%v watermark=%d", w.started, w.watermark)
		}
		// The stream still works normally afterwards.
		w.observe(stream.Arrival{TimeMS: 10, Rows: rowsFrame(t, 1)})
		if closed := w.observe(stream.Arrival{TimeMS: 250}); len(closed) == 0 {
			t.Error("windower broken after negative-time arrivals: nothing closes")
		}
	}
}

func TestClosedWindowMaterializeEmpty(t *testing.T) {
	win := &closedWindow{index: 0, startMS: 0, endMS: 100}
	f, err := win.materialize()
	if err != nil {
		t.Fatalf("materialize empty: %v", err)
	}
	if f != nil {
		t.Errorf("empty window materialized %d rows, want nil", f.NumRows())
	}
}
