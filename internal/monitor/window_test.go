package monitor

import (
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/stream"
)

func rowsFrame(t testing.TB, vals ...float64) *frame.Frame {
	t.Helper()
	return frame.MustNew(frame.NewFloat64("x", vals))
}

func TestWindowerTumblingAssignsAndCloses(t *testing.T) {
	w := newWindower(WindowConfig{WidthMS: 100}.withDefaults())
	if closed := w.observe(stream.Arrival{TimeMS: 10, Rows: rowsFrame(t, 1, 2)}); len(closed) != 0 {
		t.Fatalf("window closed prematurely: %+v", closed)
	}
	if closed := w.observe(stream.Arrival{TimeMS: 90, Rows: rowsFrame(t, 3)}); len(closed) != 0 {
		t.Fatalf("window closed prematurely at t=90")
	}
	// t=100 is the first instant past window 0's [0,100).
	closed := w.observe(stream.Arrival{TimeMS: 100, Rows: rowsFrame(t, 4)})
	if len(closed) != 1 {
		t.Fatalf("got %d closed windows, want 1", len(closed))
	}
	win := closed[0]
	if win.index != 0 || win.startMS != 0 || win.endMS != 100 {
		t.Errorf("window bounds = (%d, %d, %d), want (0, 0, 100)", win.index, win.startMS, win.endMS)
	}
	if win.rows != 3 {
		t.Errorf("window rows = %d, want 3", win.rows)
	}
	f, err := win.materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if f.NumRows() != 3 {
		t.Errorf("materialized rows = %d, want 3", f.NumRows())
	}
}

func TestWindowerEmptyArrivalIsHeartbeat(t *testing.T) {
	w := newWindower(WindowConfig{WidthMS: 100}.withDefaults())
	w.observe(stream.Arrival{TimeMS: 5, Rows: rowsFrame(t, 1)})
	// A rowless arrival only advances the watermark — it must still
	// close window 0, and must not open an empty window of its own.
	closed := w.observe(stream.Arrival{TimeMS: 250})
	if len(closed) != 1 {
		t.Fatalf("heartbeat closed %d windows, want 1", len(closed))
	}
	if len(w.open) != 0 {
		t.Errorf("heartbeat left %d windows open, want 0", len(w.open))
	}
	if closed[0].rows != 1 {
		t.Errorf("closed window rows = %d, want 1", closed[0].rows)
	}
}

func TestWindowerFlushEmitsPartialFinalWindow(t *testing.T) {
	w := newWindower(WindowConfig{WidthMS: 100}.withDefaults())
	w.observe(stream.Arrival{TimeMS: 120, Rows: rowsFrame(t, 1, 2)})
	closed := w.flush()
	if len(closed) != 1 {
		t.Fatalf("flush emitted %d windows, want 1", len(closed))
	}
	if closed[0].index != 1 || closed[0].rows != 2 {
		t.Errorf("partial window = index %d rows %d, want index 1 rows 2", closed[0].index, closed[0].rows)
	}
	if again := w.flush(); len(again) != 0 {
		t.Errorf("second flush emitted %d windows, want 0", len(again))
	}
}

func TestWindowerSlidingOverlap(t *testing.T) {
	// Width 100, slide 50: t=60 belongs to window 0 [0,100) and
	// window 1 [50,150).
	w := newWindower(WindowConfig{WidthMS: 100, SlideMS: 50}.withDefaults())
	w.observe(stream.Arrival{TimeMS: 60, Rows: rowsFrame(t, 1)})
	closed := w.observe(stream.Arrival{TimeMS: 200, Rows: rowsFrame(t, 2)})
	var got []int64
	rows := map[int64]int{}
	for _, c := range closed {
		got = append(got, c.index)
		rows[c.index] = c.rows
	}
	if len(closed) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("closed windows = %v, want [0 1]", got)
	}
	if rows[0] != 1 || rows[1] != 1 {
		t.Errorf("row counts = %v, want 1 in each overlapping window", rows)
	}
}

func TestWindowerSlideBeyondWidthRejected(t *testing.T) {
	cfg := WindowConfig{WidthMS: 100, SlideMS: 200}.withDefaults()
	if err := cfg.validate(); err == nil {
		t.Fatal("slide > width validated; rows between windows would be silently dropped")
	}
}

func TestWindowerLateRowsDropped(t *testing.T) {
	w := newWindower(WindowConfig{WidthMS: 100}.withDefaults())
	w.observe(stream.Arrival{TimeMS: 10, Rows: rowsFrame(t, 1)})
	w.observe(stream.Arrival{TimeMS: 150, Rows: rowsFrame(t, 2)}) // closes window 0
	// t=20 targets only window 0, which is already emitted.
	w.observe(stream.Arrival{TimeMS: 20, Rows: rowsFrame(t, 3)})
	if w.lateRows != 1 {
		t.Errorf("lateRows = %d, want 1", w.lateRows)
	}
}

func TestClosedWindowMaterializeEmpty(t *testing.T) {
	win := &closedWindow{index: 0, startMS: 0, endMS: 100}
	f, err := win.materialize()
	if err != nil {
		t.Fatalf("materialize empty: %v", err)
	}
	if f != nil {
		t.Errorf("empty window materialized %d rows, want nil", f.NumRows())
	}
}
