package monitor

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/httpx"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/stream"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// SpecWire is the JSON body of POST /v1/monitors.
type SpecWire struct {
	// Name labels the monitored dataset. Required; unique within the
	// owning tenant.
	Name string `json:"name"`
	// Tenant is the owning tenant's id; the X-RDS-Tenant header takes
	// precedence, both empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Policy holds the FACT thresholds; serve.DefaultPolicy when
	// omitted.
	Policy *policy.FACTPolicy `json:"policy,omitempty"`

	// Target is the binary label column (default "approved").
	Target string `json:"target,omitempty"`
	// Sensitive is the sensitive-attribute column (default "group").
	Sensitive string `json:"sensitive,omitempty"`
	// Protected is the protected group value (default "B").
	Protected string `json:"protected,omitempty"`
	// Reference is the reference group value (default "A").
	Reference string `json:"reference,omitempty"`
	// Mitigation is "none", "reweigh", or "threshold".
	Mitigation string `json:"mitigation,omitempty"`
	// TestFraction is the held-out fraction (default 0.3).
	TestFraction float64 `json:"test_fraction,omitempty"`
	// Epochs is the logistic training epoch count (default 40).
	Epochs int `json:"epochs,omitempty"`
	// Seed drives each window audit's stochastic steps (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// BaselineRef pins a registry-resident dataset (its content hash
	// from POST /v1/datasets) as the drift baseline at registration
	// time, instead of baselining the first stream window. The dataset
	// stays pinned — unevictable — until the monitor is deleted.
	BaselineRef string `json:"baseline_ref,omitempty"`

	// WindowMS is the window width in stream milliseconds
	// (default 60000).
	WindowMS int64 `json:"window_ms,omitempty"`
	// SlideMS is the hop between window starts; omitted means tumbling.
	SlideMS int64 `json:"slide_ms,omitempty"`
	// MinRows is the minimum auditable window size (default 1).
	MinRows int `json:"min_rows,omitempty"`
	// AuditEvery audits every Nth window (default 1; drift breaches
	// always force an audit).
	AuditEvery int `json:"audit_every,omitempty"`

	// Drift overrides the PSI/KS thresholds and binning.
	Drift *DriftConfig `json:"drift,omitempty"`

	// ReauditEveryMS schedules wall-clock re-audits of the latest
	// window (0 disables).
	ReauditEveryMS int64 `json:"reaudit_every_ms,omitempty"`
	// History bounds the window-history ring (default 64).
	History int `json:"history,omitempty"`
	// Webhook, when set, attaches a WebhookSink delivering this
	// monitor's alerts to the URL.
	Webhook string `json:"webhook,omitempty"`
}

// IngestWire is the JSON body of POST /v1/monitors/{id}/ingest: one
// batch of rows (inline CSV or synthetic demo data) stamped onto the
// monitor's stream clock.
type IngestWire struct {
	// TimeMS is the arrival time of the first batch on the stream
	// clock.
	TimeMS int64 `json:"time_ms"`
	// BatchRows splits the rows into arrivals of this many rows
	// (default: one arrival with all rows).
	BatchRows int `json:"batch_rows,omitempty"`
	// GapMS spaces consecutive split arrivals apart (default 0).
	GapMS int64 `json:"gap_ms,omitempty"`
	// CSV is an inline CSV document with a header row.
	CSV string `json:"csv,omitempty"`
	// Synthetic generates a synthetic credit batch instead of CSV.
	Synthetic *serve.SyntheticSpec `json:"synthetic,omitempty"`
	// Flush force-closes all open windows after ingesting (end of a
	// finite stream).
	Flush bool `json:"flush,omitempty"`
}

// Handler exposes a Registry over HTTP:
//
//	POST   /v1/monitors               register a monitor
//	GET    /v1/monitors               list monitors
//	GET    /v1/monitors/{id}          monitor status
//	DELETE /v1/monitors/{id}          stop and remove a monitor
//	GET    /v1/monitors/{id}/history  per-window reports and drift
//	POST   /v1/monitors/{id}/ingest   feed rows onto the stream clock
//
// cmd/rds-serve mounts it on the audit API's mux; all responses are
// application/json.
type Handler struct {
	reg *Registry
	// DefaultHistory applies to registrations that omit "history"
	// (falls back to the package DefaultHistory when 0).
	DefaultHistory int
	// DefaultReaudit applies to registrations that omit
	// "reaudit_every_ms" (0 leaves scheduled re-audits off).
	DefaultReaudit time.Duration
}

// NewHandler wraps the registry in the HTTP API.
func NewHandler(reg *Registry) *Handler { return &Handler{reg: reg} }

// ServeHTTP routes the monitor API. Every operation is tenant-scoped:
// the tenant comes from the X-RDS-Tenant header (validated here, so
// the handler is safe to mount standalone), the "tenant" wire/query
// field, or defaults; another tenant's monitor ids read as 404.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r, err := httpx.Tenant(r)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/monitors")
	if !ok {
		httpx.Error(w, http.StatusNotFound, fmt.Errorf("no route %s", r.URL.Path))
		return
	}
	rest = strings.Trim(rest, "/")
	switch {
	case rest == "":
		switch r.Method {
		case http.MethodPost:
			h.register(w, r)
		case http.MethodGet:
			ten, err := tenant.Or(r.Context(), r.URL.Query().Get("tenant"))
			if err != nil {
				httpx.Error(w, http.StatusBadRequest, err)
				return
			}
			httpx.WriteJSON(w, http.StatusOK, h.reg.ListAs(ten))
		default:
			httpx.Error(w, http.StatusMethodNotAllowed, errors.New("POST or GET required"))
		}
	case strings.HasSuffix(rest, "/history"):
		h.history(w, r, strings.TrimSuffix(rest, "/history"))
	case strings.HasSuffix(rest, "/ingest"):
		h.ingest(w, r, strings.TrimSuffix(rest, "/ingest"))
	default:
		h.byID(w, r, rest)
	}
}

func (h *Handler) register(w http.ResponseWriter, r *http.Request) {
	var wire SpecWire
	if err := httpx.DecodeJSON(w, r, &wire); err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	spec, err := wire.spec()
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	ten, err := tenant.Or(r.Context(), wire.Tenant)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	spec.Tenant = ten
	if spec.History == 0 {
		spec.History = h.DefaultHistory
	}
	if spec.ReauditEvery == 0 {
		spec.ReauditEvery = h.DefaultReaudit
	}
	m, err := h.reg.Register(spec)
	if errors.Is(err, tenant.ErrQuota) {
		httpx.Error(w, http.StatusTooManyRequests, err)
		return
	}
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	httpx.WriteJSON(w, http.StatusCreated, m.Status())
}

// getOwned resolves id to a monitor the request's tenant owns, writing
// the error response itself on failure. A monitor owned by another
// tenant is indistinguishable from an absent one (404) — no
// cross-tenant probing.
func (h *Handler) getOwned(w http.ResponseWriter, r *http.Request, id string) (*Monitor, bool) {
	ten, err := tenant.Or(r.Context(), r.URL.Query().Get("tenant"))
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return nil, false
	}
	m, ok := h.reg.Get(id)
	if !ok || m.spec.Tenant != ten {
		httpx.Error(w, http.StatusNotFound, fmt.Errorf("no monitor %q", id))
		return nil, false
	}
	return m, true
}

func (h *Handler) byID(w http.ResponseWriter, r *http.Request, id string) {
	m, ok := h.getOwned(w, r, id)
	if !ok {
		return
	}
	switch r.Method {
	case http.MethodGet:
		httpx.WriteJSON(w, http.StatusOK, m.Status())
	case http.MethodDelete:
		h.reg.Delete(id)
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"deleted": id})
	default:
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("GET or DELETE required"))
	}
}

func (h *Handler) history(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	m, ok := h.getOwned(w, r, id)
	if !ok {
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]any{
		"monitor":          id,
		"history":          m.History(),
		"baseline_profile": m.BaselineProfileInfo(),
	})
}

func (h *Handler) ingest(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	m, ok := h.getOwned(w, r, id)
	if !ok {
		return
	}
	var wire IngestWire
	if err := httpx.DecodeJSON(w, r, &wire); err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	rows, err := wire.rows()
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	batch := wire.BatchRows
	if batch <= 0 {
		batch = rows.NumRows()
	}
	// FrameArrivals rejects a negative time_ms up front (the stream
	// clock starts at zero), so adversarial timestamps answer 400 here
	// instead of panicking window-index arithmetic; the Ingest check is
	// the same contract for API callers constructing arrivals directly.
	arrivals, err := stream.FrameArrivals(rows, batch, wire.TimeMS, wire.GapMS)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	if err := m.Ingest(arrivals...); err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	if wire.Flush {
		m.Flush()
	}
	httpx.WriteJSON(w, http.StatusOK, m.Status())
}

// spec materializes the wire registration into a monitor Spec.
func (wire *SpecWire) spec() (Spec, error) {
	mitigation, err := core.ParseMitigation(wire.Mitigation)
	if err != nil {
		return Spec{}, err
	}
	pol := serve.DefaultPolicy()
	if wire.Policy != nil {
		pol = *wire.Policy
	}
	drift := DriftConfig{}
	if wire.Drift != nil {
		drift = *wire.Drift
	}
	var sinks []Sink
	if wire.Webhook != "" {
		sinks = append(sinks, &WebhookSink{URL: wire.Webhook})
	}
	return Spec{
		Name:        wire.Name,
		BaselineRef: wire.BaselineRef,
		Policy:      pol,
		Train: core.TrainSpec{
			Target:       httpx.StringOr(wire.Target, "approved"),
			Sensitive:    httpx.StringOr(wire.Sensitive, "group"),
			Protected:    httpx.StringOr(wire.Protected, "B"),
			Reference:    httpx.StringOr(wire.Reference, "A"),
			TestFraction: wire.TestFraction,
			Mitigation:   mitigation,
			Epochs:       wire.Epochs,
		},
		Seed: wire.Seed,
		Window: WindowConfig{
			WidthMS: wire.WindowMS,
			SlideMS: wire.SlideMS,
			MinRows: wire.MinRows,
		},
		Drift:        drift,
		AuditEvery:   wire.AuditEvery,
		ReauditEvery: time.Duration(wire.ReauditEveryMS) * time.Millisecond,
		History:      wire.History,
		Sinks:        sinks,
	}, nil
}

// rows materializes the ingest payload into a frame.
func (wire *IngestWire) rows() (*frame.Frame, error) {
	switch {
	case wire.CSV != "" && wire.Synthetic == nil:
		return frame.ReadCSVString(wire.CSV)
	case wire.CSV == "" && wire.Synthetic != nil:
		return wire.Synthetic.Credit()
	}
	return nil, errors.New("exactly one of csv or synthetic must be set")
}
