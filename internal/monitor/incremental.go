package monitor

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/exec"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/provenance"
)

// Chunk pairs one window chunk — an arrival batch — with its content
// hash. The windower memoizes each batch's hash once, so overlapping
// sliding windows that share the batch share the identity for free.
type Chunk struct {
	// Rows is the chunk's frame. Required, non-empty.
	Rows *frame.Frame
	// Hash is Rows' content hash (frame.Hash). Empty disables caching
	// for this chunk; a wrong hash serves another chunk's state, so
	// callers must hand the true content hash.
	Hash string
}

// ChunkScorer scores a sliding window's drift against a pinned
// baseline profile from per-chunk states instead of a materialized
// frame. Each chunk contributes its sorted finite sample per numeric
// column and its level counts per categorical column — both
// chunk-layout-invariant, so the deterministic re-merge is
// bit-identical to DetectDriftProfiled over the concatenated window
// (the incremental≡rescan property the monitor tests enforce). States
// are cached in a dataset.StateCache keyed by (chunk hash, profile
// key): a window advance re-merges surviving chunk states and only
// scans the rows that entered, making the slide O(delta), not
// O(window). A cache miss rebuilds the state from the chunk's rows —
// eviction costs time, never correctness.
//
// Moments are deliberately absent from the chunk state: their
// parallel-variance merge is chunk-layout-sensitive, and the profiled
// drift path only needs them on the baseline side, where the profile
// already holds them.
//
// A scorer is immutable after construction and safe for concurrent
// use.
type ChunkScorer struct {
	profile *BaselineProfile
	cache   *dataset.StateCache
	// key fingerprints the profile's column treatment (names + kinds,
	// in order); it namespaces cache keys so two monitors profiling
	// the same stream share states while differently configured ones
	// cannot collide.
	key string
}

// NewChunkScorer builds a scorer for the given profile. cache may be
// nil, in which case every Score rebuilds every chunk state (correct,
// just not incremental).
func NewChunkScorer(p *BaselineProfile, cache *dataset.StateCache) (*ChunkScorer, error) {
	if p == nil {
		return nil, fmt.Errorf("monitor: chunk scorer needs a baseline profile")
	}
	parts := make([]string, 0, 2*len(p.cols)+1)
	parts = append(parts, "rds-chunk-state-v1")
	for i := range p.cols {
		pc := &p.cols[i]
		kind := "absent"
		if pc.present {
			if pc.numeric {
				kind = "numeric"
			} else {
				kind = "categorical"
			}
		}
		parts = append(parts, pc.name, kind)
	}
	return &ChunkScorer{profile: p, cache: cache, key: provenance.HashStrings(parts...)}, nil
}

// chunkState is one chunk's cached drift state: per profiled column,
// the chunk's dtype plus its sorted finite sample (numeric treatment)
// or level counts (categorical treatment), in profile column order.
type chunkState struct {
	rows int
	cols []chunkColumn
}

// chunkColumn is one profiled column's state within a chunk.
type chunkColumn struct {
	present bool
	dtype   frame.DType
	sorted  []float64
	levels  *exec.Levels
}

// sizeBytes estimates the state's heap footprint for the cache's byte
// budget (relative accuracy is all the budget arithmetic needs).
func (s *chunkState) sizeBytes() int64 {
	const colOverhead = 64
	n := int64(48)
	for i := range s.cols {
		cc := &s.cols[i]
		n += colOverhead + 8*int64(len(cc.sorted))
		if cc.levels != nil {
			for k := range cc.levels.Counts {
				n += 48 + int64(len(k))
			}
		}
	}
	return n
}

// buildState scans one chunk into its per-column drift state.
func (s *ChunkScorer) buildState(rows *frame.Frame) (*chunkState, error) {
	opt := exec.Options{Shards: s.profile.cfg.Shards}
	st := &chunkState{rows: rows.NumRows(), cols: make([]chunkColumn, len(s.profile.cols))}
	for i := range s.profile.cols {
		pc := &s.profile.cols[i]
		cc := &st.cols[i]
		if !pc.present || !rows.Has(pc.name) {
			continue
		}
		c := rows.MustCol(pc.name)
		cc.present = true
		cc.dtype = c.DType()
		if pc.numeric {
			if cc.dtype != frame.Float64 && cc.dtype != frame.Int64 {
				// Type drift: recorded, not scored — Score surfaces it
				// so the caller falls back to the rescan path, which
				// reports the schema change exactly as a materialized
				// window would.
				continue
			}
			vals := c.Floats()
			sorted, err := exec.RunOne(len(vals), opt, exec.NewSorted(vals, true))
			if err != nil {
				return nil, fmt.Errorf("monitor: chunk state %q: %w", pc.name, err)
			}
			cc.sorted = sorted.(*exec.Sorted).Values()
		} else {
			lv, err := exec.RunOne(c.Len(), opt, exec.NewLevelsSeries(c))
			if err != nil {
				return nil, fmt.Errorf("monitor: chunk state %q: %w", pc.name, err)
			}
			cc.levels = lv.(*exec.Levels)
			// The cached state outlives the chunk frame; drop the raw
			// column so residency is the counts, not the rows.
			cc.levels.Detach()
		}
	}
	return st, nil
}

// state returns the chunk's drift state, consulting the cache first.
func (s *ChunkScorer) state(ch Chunk) (*chunkState, error) {
	var key string
	if s.cache != nil && ch.Hash != "" {
		key = provenance.HashStrings("chunk-state", s.key, ch.Hash)
		if v, ok := s.cache.Get(key); ok {
			if st, ok := v.(*chunkState); ok {
				return st, nil
			}
		}
	}
	st, err := s.buildState(ch.Rows)
	if err != nil {
		return nil, err
	}
	if key != "" {
		s.cache.Put(key, st, st.sizeBytes())
	}
	return st, nil
}

// Score computes the window's drift report from its chunks,
// bit-identical to DetectDriftProfiled over the chunks' concatenation.
// Any condition the merged path cannot reproduce exactly — chunks
// disagreeing on schema, a profiled column changing dtype — returns an
// error; callers treat every Score error as "fall back to the full
// rescan", which re-derives the legacy outcome (including the legacy
// error) from the materialized window.
func (s *ChunkScorer) Score(chunks []Chunk) (*DriftReport, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("monitor: drift detection needs non-empty baseline and current frames")
	}
	// Chunks must agree on the full window schema, not just the
	// profiled columns: materialization would reject a mid-window
	// schema change, and the incremental path must never grade a
	// window the rescan path would refuse.
	first := chunks[0].Rows
	for _, ch := range chunks[1:] {
		if !schemaEqual(first, ch.Rows) {
			return nil, fmt.Errorf("monitor: window chunks disagree on schema")
		}
	}
	states := make([]*chunkState, len(chunks))
	for i, ch := range chunks {
		st, err := s.state(ch)
		if err != nil {
			return nil, err
		}
		states[i] = st
	}

	p := s.profile
	rep := &DriftReport{}
	for i := range p.cols {
		pc := &p.cols[i]
		if !pc.present || !states[0].cols[i].present {
			continue
		}
		cd := ColumnDrift{Column: pc.name, KSPValue: 1}
		if pc.numeric {
			if dt := states[0].cols[i].dtype; dt != frame.Float64 && dt != frame.Int64 {
				return nil, fmt.Errorf("monitor: drift: column %q changed type %s -> %s since the baseline",
					pc.name, pc.dtype, dt)
			}
			if len(pc.sorted) == 0 {
				continue
			}
			runs := make([][]float64, 0, len(states))
			for _, st := range states {
				if len(st.cols[i].sorted) > 0 {
					runs = append(runs, st.cols[i].sorted)
				}
			}
			cv := exec.MergeRuns(runs)
			if len(cv) == 0 {
				continue
			}
			cd.PSI = psi(pc.hist, histSorted(cv, pc.edges))
			cd.KS = ksStatistic(pc.sorted, cv)
			cd.KSPValue = ksPValue(cd.KS, len(pc.sorted), len(cv))
		} else {
			merged := &exec.Levels{Counts: map[string]int64{}}
			for _, st := range states {
				merged.Merge(st.cols[i].levels)
			}
			cd.PSI = psiLevels(pc.levels, merged)
		}
		rep.add(cd, p.cfg)
	}
	return rep, nil
}

// schemaEqual reports whether two frames share the exact column
// layout frame.Append requires: same count, names, and dtypes, in
// order.
func schemaEqual(a, b *frame.Frame) bool {
	if a.NumCols() != b.NumCols() {
		return false
	}
	for j := 0; j < a.NumCols(); j++ {
		ca, cb := a.ColAt(j), b.ColAt(j)
		if ca.Name() != cb.Name() || ca.DType() != cb.DType() {
			return false
		}
	}
	return true
}

// windowDataHash derives a stable content identifier for a window
// from its chunk hashes — O(chunks) where frame.Hash over the
// materialized window is O(rows · cols). It feeds the audit engine's
// report-cache key (serve.Request.DataHash): collision-free because
// every part hash is itself a content hash and HashStrings
// length-frames its parts.
func windowDataHash(chunks []Chunk) string {
	parts := make([]string, 0, len(chunks)+1)
	parts = append(parts, "rds-window-chunks-v1")
	for _, ch := range chunks {
		parts = append(parts, ch.Hash)
	}
	return provenance.HashStrings(parts...)
}
