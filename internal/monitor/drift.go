package monitor

import (
	"fmt"
	"math"
	"sort"

	"github.com/responsible-data-science/rds/internal/exec"
	"github.com/responsible-data-science/rds/internal/frame"
)

// Default drift thresholds. PSI 0.2 is the conventional "significant
// shift, investigate" boundary from credit-scoring practice; a
// two-sample KS statistic of 0.15 on windows of hundreds of rows is a
// gross distributional change, far past sampling noise.
const (
	DefaultPSIThreshold = 0.2
	DefaultKSThreshold  = 0.15
	// DefaultDriftBins is the histogram resolution for PSI on numeric
	// columns (deciles of the baseline).
	DefaultDriftBins = 10
	// psiFloor is the smoothing floor applied to bin proportions so a
	// level that vanishes from one side yields a large-but-finite PSI
	// instead of +Inf.
	psiFloor = 1e-4
)

// DriftConfig parameterizes baseline-vs-current drift scoring. Zero
// values select the package defaults.
type DriftConfig struct {
	// PSIThreshold breaches a column when its population stability
	// index exceeds it (default 0.2).
	PSIThreshold float64 `json:"psi_threshold,omitempty"`
	// KSThreshold breaches a numeric column when the two-sample
	// Kolmogorov-Smirnov statistic exceeds it (default 0.15).
	KSThreshold float64 `json:"ks_threshold,omitempty"`
	// Bins is the PSI histogram resolution for numeric columns
	// (default 10, i.e. baseline deciles).
	Bins int `json:"bins,omitempty"`
	// Columns restricts scoring to the named columns (default: every
	// column present in both frames).
	Columns []string `json:"columns,omitempty"`
	// Shards is the goroutine count for the sharded execution engine
	// that builds the per-column histogram sketches and sorted samples
	// (default runtime.GOMAXPROCS). Scores are shard-invariant: the
	// shard count changes wall-clock time, never the statistics.
	Shards int `json:"shards,omitempty"`
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.PSIThreshold <= 0 {
		c.PSIThreshold = DefaultPSIThreshold
	}
	if c.KSThreshold <= 0 {
		c.KSThreshold = DefaultKSThreshold
	}
	if c.Bins <= 1 {
		c.Bins = DefaultDriftBins
	}
	return c
}

// ColumnDrift scores one column's baseline-vs-current shift.
type ColumnDrift struct {
	Column string `json:"column"`
	// PSI is the population stability index over baseline-decile bins
	// (numeric) or levels (categorical).
	PSI float64 `json:"psi"`
	// KS is the two-sample Kolmogorov-Smirnov statistic; 0 for
	// categorical columns (PSI covers them).
	KS float64 `json:"ks"`
	// KSPValue is the asymptotic p-value of KS (1 when KS is not
	// computed).
	KSPValue float64 `json:"ks_p_value"`
	// Breached reports whether either statistic crossed its threshold.
	Breached bool `json:"breached"`
}

// DriftReport is the full baseline-vs-current comparison for one window.
type DriftReport struct {
	Columns []ColumnDrift `json:"columns"`
	MaxPSI  float64       `json:"max_psi"`
	MaxKS   float64       `json:"max_ks"`
	// Breached reports whether any column breached a threshold.
	Breached bool `json:"breached"`
}

// DetectDrift scores the shift of current against baseline column by
// column: PSI for every column (baseline-decile bins for numeric, level
// histograms for categorical) and the two-sample KS statistic for
// numeric columns. Columns missing from either frame are skipped.
//
// The per-column scans route through the sharded execution engine
// (internal/exec): numeric columns are sorted via parallel chunk sorts
// (one pass serves the KS statistic, the PSI bin edges, and the PSI
// bin counts by binary search), categorical columns go through
// mergeable level counts. Scores are identical at every shard count
// (cfg.Shards), so a re-audit on a differently provisioned host
// reproduces the same drift report bit for bit.
func DetectDrift(baseline, current *frame.Frame, cfg DriftConfig) (*DriftReport, error) {
	if baseline == nil || current == nil || baseline.NumRows() == 0 || current.NumRows() == 0 {
		return nil, fmt.Errorf("monitor: drift detection needs non-empty baseline and current frames")
	}
	cfg = cfg.withDefaults()
	cols := cfg.Columns
	if len(cols) == 0 {
		for _, name := range baseline.Names() {
			if current.Has(name) {
				cols = append(cols, name)
			}
		}
	}
	opt := exec.Options{Shards: cfg.Shards}
	rep := &DriftReport{}
	for _, name := range cols {
		if !baseline.Has(name) || !current.Has(name) {
			continue
		}
		b := baseline.MustCol(name)
		c := current.MustCol(name)
		cd := ColumnDrift{Column: name, KSPValue: 1}
		switch b.DType() {
		case frame.Float64, frame.Int64:
			// A column that was numeric at the baseline but arrives
			// with another dtype is schema drift, not a distribution
			// to score; fail loudly so the window records the error
			// instead of panicking on a string-typed Floats().
			if ct := c.DType(); ct != frame.Float64 && ct != frame.Int64 {
				return nil, fmt.Errorf("monitor: drift: column %q changed type %s -> %s since the baseline",
					name, b.DType(), ct)
			}
			bv, err := sortedFinite(b, opt)
			if err != nil {
				return nil, err
			}
			cv, err := sortedFinite(c, opt)
			if err != nil {
				return nil, err
			}
			if len(bv) == 0 || len(cv) == 0 {
				continue
			}
			cd.PSI = numericPSI(bv, cv, cfg.Bins)
			cd.KS = ksStatistic(bv, cv)
			cd.KSPValue = ksPValue(cd.KS, len(bv), len(cv))
		default:
			psiVal, err := categoricalPSI(b, c, opt)
			if err != nil {
				return nil, err
			}
			cd.PSI = psiVal
		}
		rep.add(cd, cfg)
	}
	return rep, nil
}

// add files one column score into the report, applying the thresholds
// and folding the maxima — shared by the recompute (DetectDrift) and
// profiled (DetectDriftProfiled) paths so their grading cannot differ.
func (r *DriftReport) add(cd ColumnDrift, cfg DriftConfig) {
	cd.Breached = cd.PSI > cfg.PSIThreshold || cd.KS > cfg.KSThreshold
	r.Columns = append(r.Columns, cd)
	r.MaxPSI = math.Max(r.MaxPSI, cd.PSI)
	r.MaxKS = math.Max(r.MaxKS, cd.KS)
	r.Breached = r.Breached || cd.Breached
}

// sortedFinite extracts a column's finite values, sorted by parallel
// chunk sorts and one deterministic merge.
func sortedFinite(s *frame.Series, opt exec.Options) ([]float64, error) {
	vals := s.Floats()
	st, err := exec.RunOne(len(vals), opt, exec.NewSorted(vals, true))
	if err != nil {
		return nil, fmt.Errorf("monitor: drift sort: %w", err)
	}
	return st.(*exec.Sorted).Values(), nil
}

// numericPSI bins both samples by the baseline's quantile edges and
// sums (p-q)·ln(p/q) over bins. Inputs must be sorted (the merged
// output of the exec sort kernel), so each bin count is a difference
// of binary-search positions — no further pass over the data. The
// counts are identical to an exec.Hist scan of the raw values: bin i
// holds values v with edges[i-1] < v <= edges[i].
func numericPSI(baseline, current []float64, bins int) float64 {
	edges := psiEdges(baseline, bins)
	return psi(histSorted(baseline, edges), histSorted(current, edges))
}

// psiEdges returns the baseline's bins-quantile bin edges (bins - 1 of
// them) over a non-empty sorted sample. Shared by the recompute path
// and the baseline-profile build, so precomputed edges are the exact
// edges DetectDrift would re-derive.
func psiEdges(baseline []float64, bins int) []float64 {
	edges := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		q := float64(i) / float64(bins)
		idx := int(q*float64(len(baseline)-1) + 0.5)
		edges = append(edges, baseline[idx])
	}
	return edges
}

// histSorted counts a sorted sample into len(edges)+1 bins via binary
// searches: bin i is the number of values in (edges[i-1], edges[i]].
func histSorted(sorted, edges []float64) []float64 {
	counts := make([]float64, len(edges)+1)
	prev := 0
	for i, e := range edges {
		// First index with sorted[j] > e == count of values <= e.
		hi := sort.Search(len(sorted), func(j int) bool { return sorted[j] > e })
		counts[i] = float64(hi - prev)
		prev = hi
	}
	counts[len(edges)] = float64(len(sorted) - prev)
	return counts
}

// categoricalPSI computes PSI over mergeable level counts of both
// sides, folded over the sorted union of levels so the float result is
// deterministic. The kernels tally dictionary-encoded columns by int32
// code — no per-row string materialization or map lookup.
func categoricalPSI(baseline, current *frame.Series, opt exec.Options) (float64, error) {
	bs, err := exec.RunOne(baseline.Len(), opt, exec.NewLevelsSeries(baseline))
	if err != nil {
		return 0, fmt.Errorf("monitor: drift levels: %w", err)
	}
	cs, err := exec.RunOne(current.Len(), opt, exec.NewLevelsSeries(current))
	if err != nil {
		return 0, fmt.Errorf("monitor: drift levels: %w", err)
	}
	return psiLevels(bs.(*exec.Levels), cs.(*exec.Levels)), nil
}

// psiLevels folds two mergeable level-count states into PSI over the
// sorted union of their levels. Shared by the recompute path and the
// profiled path (which keeps the baseline side precomputed), so the
// float fold order — and therefore the score bits — cannot differ
// between them.
func psiLevels(bl, cl *exec.Levels) float64 {
	union := map[string]bool{}
	for _, k := range bl.Keys() {
		union[k] = true
	}
	for _, k := range cl.Keys() {
		union[k] = true
	}
	keys := make([]string, 0, len(union))
	for k := range union {
		keys = append(keys, k)
	}
	// Keys() is sorted per side; the union needs one more sort for a
	// deterministic fold order.
	sort.Strings(keys)
	a := make([]float64, len(keys))
	b := make([]float64, len(keys))
	for i, k := range keys {
		a[i] = float64(bl.Counts[k])
		b[i] = float64(cl.Counts[k])
	}
	return psi(a, b)
}

// psi folds two aligned histograms into the population stability index,
// with proportions floored at psiFloor so empty bins stay finite.
func psi(a, b []float64) float64 {
	// Pad to equal length (levels seen on one side only).
	for len(a) < len(b) {
		a = append(a, 0)
	}
	for len(b) < len(a) {
		b = append(b, 0)
	}
	var na, nb float64
	for i := range a {
		na += a[i]
		nb += b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	var out float64
	for i := range a {
		p := math.Max(a[i]/na, psiFloor)
		q := math.Max(b[i]/nb, psiFloor)
		out += (p - q) * math.Log(p/q)
	}
	return out
}

// ksStatistic is the two-sample Kolmogorov-Smirnov statistic
// D = sup |F_a - F_b| over sorted samples. Both cursors advance through
// every copy of the current value before the CDF gap is measured, so
// tied (discrete) data — binary labels, small counts — scores 0 for
// identical samples instead of an artifact of intra-tie ordering.
func ksStatistic(a, b []float64) float64 {
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		d = math.Max(d, diff)
	}
	return d
}

// ksPValue is the asymptotic two-sample KS p-value
// (Kolmogorov distribution with the finite-sample correction of
// Stephens 1970).
func ksPValue(d float64, n, m int) float64 {
	if d <= 0 {
		return 1
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	// Alternating series; 100 terms is far past convergence.
	var sum float64
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * lambda * lambda * float64(k) * float64(k))
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	return math.Max(0, math.Min(1, p))
}
