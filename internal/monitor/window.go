package monitor

import (
	"fmt"
	"sort"
	"sync"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/stream"
)

// WindowConfig shapes the stream windower. Zero values select sensible
// defaults.
type WindowConfig struct {
	// WidthMS is the window width in stream milliseconds (default 60000,
	// one Internet Minute).
	WidthMS int64
	// SlideMS is the hop between consecutive window starts. 0 or
	// SlideMS == WidthMS means tumbling windows; SlideMS < WidthMS means
	// overlapping sliding windows. SlideMS > WidthMS is rejected
	// (it would silently drop rows between windows).
	SlideMS int64
	// MinRows is the minimum row count for a window to be auditable
	// (default 1). Smaller windows are recorded in history as skipped
	// rather than graded on meaningless sample sizes.
	MinRows int
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.WidthMS <= 0 {
		c.WidthMS = 60_000
	}
	if c.SlideMS <= 0 {
		c.SlideMS = c.WidthMS
	}
	if c.MinRows <= 0 {
		c.MinRows = 1
	}
	return c
}

func (c WindowConfig) validate() error {
	if c.SlideMS > c.WidthMS {
		return fmt.Errorf("monitor: slide %dms exceeds width %dms (rows between windows would be dropped)", c.SlideMS, c.WidthMS)
	}
	return nil
}

// windowPart wraps one arrival batch. Overlapping sliding windows that
// cover the batch share the same part, so the memoized content hash —
// the chunk identity the incremental re-audit path caches states under
// — is computed once per batch no matter how many windows ride it.
type windowPart struct {
	rows *frame.Frame

	hashOnce sync.Once
	hash     string
}

// contentHash returns the part's frame.Hash, computed on first use.
func (p *windowPart) contentHash() string {
	p.hashOnce.Do(func() { p.hash = p.rows.Hash() })
	return p.hash
}

// closedWindow is one materializable window handed to the monitor when
// the watermark passes its end.
type closedWindow struct {
	index   int64 // window number: starts at index*SlideMS
	startMS int64
	endMS   int64
	rows    int
	parts   []*windowPart
}

// materialize concatenates the window's arrival batches into one frame.
// Returns nil for an empty window.
func (w *closedWindow) materialize() (*frame.Frame, error) {
	var out *frame.Frame
	for _, p := range w.parts {
		if p.rows.NumRows() == 0 {
			continue
		}
		if out == nil {
			out = p.rows
			continue
		}
		var err error
		if out, err = out.Append(p.rows); err != nil {
			return nil, fmt.Errorf("monitor: materializing window %d: %w", w.index, err)
		}
	}
	return out, nil
}

// chunks returns the window's arrival batches as hashed chunk
// identities, in arrival order — the incremental drift path's input.
func (w *closedWindow) chunks() []Chunk {
	out := make([]Chunk, 0, len(w.parts))
	for _, p := range w.parts {
		if p.rows.NumRows() == 0 {
			continue
		}
		out = append(out, Chunk{Rows: p.rows, Hash: p.contentHash()})
	}
	return out
}

// materializeChunks concatenates chunk frames into one window frame,
// nil when empty; index labels errors with the window number.
func materializeChunks(chunks []Chunk, index int64) (*frame.Frame, error) {
	var out *frame.Frame
	for _, ch := range chunks {
		if out == nil {
			out = ch.Rows
			continue
		}
		var err error
		if out, err = out.Append(ch.Rows); err != nil {
			return nil, fmt.Errorf("monitor: materializing window %d: %w", index, err)
		}
	}
	return out, nil
}

// windower assigns time-ordered arrivals to tumbling/sliding windows and
// emits each window once the watermark passes its end. Not safe for
// concurrent use; the owning Monitor serializes access.
type windower struct {
	cfg       WindowConfig
	open      map[int64]*closedWindow
	watermark int64 // latest arrival time seen
	started   bool
	lateRows  int64 // rows whose windows had already closed
}

func newWindower(cfg WindowConfig) *windower {
	return &windower{cfg: cfg, open: map[int64]*closedWindow{}}
}

// observe files one arrival and returns the windows it closed, oldest
// first. Arrivals are assumed time-ordered; rows targeting only
// already-closed windows are counted as late and dropped.
func (w *windower) observe(a stream.Arrival) []*closedWindow {
	// Ingest validates arrivals before they reach the windower, but the
	// windower is the last line of defense: a negative time has no
	// window (the stream clock starts at zero), so its rows are dropped
	// as late instead of feeding indicesFor arithmetic that could
	// overflow for times near math.MinInt64.
	if a.TimeMS < 0 {
		if a.Rows != nil {
			w.lateRows += int64(a.Rows.NumRows())
		}
		return nil
	}
	if a.TimeMS > w.watermark || !w.started {
		w.watermark = a.TimeMS
		w.started = true
	}
	if a.Rows != nil && a.Rows.NumRows() > 0 {
		placed := false
		// One shared part per arrival: every window covering the batch
		// appends the same pointer, so the part's memoized hash — and
		// any chunk state cached under it — is shared across the
		// overlapping windows too.
		part := &windowPart{rows: a.Rows}
		for _, k := range w.indicesFor(a.TimeMS) {
			win, ok := w.open[k]
			if !ok {
				if w.closedBefore(k) {
					continue // window already emitted; this row is late
				}
				win = &closedWindow{
					index:   k,
					startMS: k * w.cfg.SlideMS,
					endMS:   k*w.cfg.SlideMS + w.cfg.WidthMS,
				}
				w.open[k] = win
			}
			win.parts = append(win.parts, part)
			win.rows += a.Rows.NumRows()
			placed = true
		}
		if !placed {
			w.lateRows += int64(a.Rows.NumRows())
		}
	}
	return w.drain(w.watermark)
}

// indicesFor returns the window indices covering time t: every k with
// k*slide <= t < k*slide + width. Negative times precede every window
// and yield nil; without that guard a sufficiently negative t (e.g.
// math.MinInt64) makes kMax - kMin + 1 negative — or overflows t -
// width outright — and the slice allocation panics with "makeslice:
// cap out of range".
func (w *windower) indicesFor(t int64) []int64 {
	if t < 0 {
		return nil
	}
	kMax := t / w.cfg.SlideMS
	kMin := (t-w.cfg.WidthMS)/w.cfg.SlideMS + 1
	if t < w.cfg.WidthMS {
		kMin = 0
	}
	out := make([]int64, 0, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		out = append(out, k)
	}
	return out
}

// closedBefore reports whether window k's end is already behind the
// watermark with the window gone from the open set (i.e. emitted).
func (w *windower) closedBefore(k int64) bool {
	return k*w.cfg.SlideMS+w.cfg.WidthMS <= w.watermark
}

// drain emits every open window whose end is at or before the
// watermark, oldest first.
func (w *windower) drain(watermark int64) []*closedWindow {
	var out []*closedWindow
	for k, win := range w.open {
		if win.endMS <= watermark {
			out = append(out, win)
			delete(w.open, k)
		}
	}
	sortWindows(out)
	return out
}

// flush force-closes every open window (the partial final windows of a
// finite stream), oldest first.
func (w *windower) flush() []*closedWindow {
	var out []*closedWindow
	for k, win := range w.open {
		out = append(out, win)
		delete(w.open, k)
	}
	sortWindows(out)
	return out
}

func sortWindows(ws []*closedWindow) {
	sort.Slice(ws, func(i, j int) bool { return ws[i].index < ws[j].index })
}
