// Package explain implements the comprehensibility half of FACT Q4
// ("transparency: how to clarify answers so that they become
// indisputable?"). The paper's target is the black box "that apparently
// makes good decisions, but cannot rationalize them"; this package turns
// any Classifier into artifacts a human can audit:
//
//   - permutation feature importance (global: which inputs matter),
//   - partial-dependence profiles (global: how an input moves the score),
//   - a global surrogate decision tree with measured fidelity
//     (a readable approximation, honest about how faithful it is),
//   - local perturbation explanations (LIME-style linear weights around
//     one decision),
//   - counterfactuals ("what minimal change flips this decision").
package explain

import (
	"fmt"
	"math"
	"sort"

	"github.com/responsible-data-science/rds/internal/ml"
	"github.com/responsible-data-science/rds/internal/rng"
)

// Importance is one feature's permutation importance: the drop in accuracy
// when the feature's values are shuffled, averaged over repeats.
type Importance struct {
	Feature string
	Drop    float64 // accuracy_baseline - accuracy_permuted; higher = more important
}

// PermutationImportance computes permutation feature importance of model
// on the dataset, with `repeats` shuffles per feature.
func PermutationImportance(model ml.Classifier, d *ml.Dataset, repeats int, src *rng.Source) ([]Importance, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N() < 10 {
		return nil, fmt.Errorf("explain: need >= 10 rows, got %d", d.N())
	}
	if repeats <= 0 {
		return nil, fmt.Errorf("explain: repeats must be positive, got %d", repeats)
	}
	baseline, err := ml.Accuracy(d.Y, ml.PredictAll(model, d.X))
	if err != nil {
		return nil, err
	}
	out := make([]Importance, d.D())
	col := make([]float64, d.N())
	for j := 0; j < d.D(); j++ {
		var totalDrop float64
		for r := 0; r < repeats; r++ {
			for i := range col {
				col[i] = d.X[i][j]
			}
			src.Shuffle(len(col), func(a, b int) { col[a], col[b] = col[b], col[a] })
			// Predict with the shuffled column swapped in, row by row, to
			// avoid copying the whole matrix.
			correct := 0.0
			buf := make([]float64, d.D())
			for i, row := range d.X {
				copy(buf, row)
				buf[j] = col[i]
				if ml.Predict(model, buf) == d.Y[i] {
					correct++
				}
			}
			totalDrop += baseline - correct/float64(d.N())
		}
		out[j] = Importance{Feature: d.Features[j], Drop: totalDrop / float64(repeats)}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Drop > out[b].Drop })
	return out, nil
}

// PDPoint is one grid point of a partial-dependence profile.
type PDPoint struct {
	Value    float64 // feature value
	MeanProb float64 // mean P(y=1) with the feature forced to Value
}

// PartialDependence computes the partial-dependence profile of the named
// feature over a grid of `points` values spanning its observed range.
func PartialDependence(model ml.Classifier, d *ml.Dataset, feature string, points int) ([]PDPoint, error) {
	if points < 2 {
		return nil, fmt.Errorf("explain: need >= 2 grid points, got %d", points)
	}
	j, err := d.FeatureIndex(feature)
	if err != nil {
		return nil, err
	}
	col := d.Column(j)
	lo, hi := col[0], col[0]
	for _, v := range col {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo == hi {
		return nil, fmt.Errorf("explain: feature %q is constant", feature)
	}
	out := make([]PDPoint, points)
	buf := make([]float64, d.D())
	for g := 0; g < points; g++ {
		v := lo + (hi-lo)*float64(g)/float64(points-1)
		var sum float64
		for _, row := range d.X {
			copy(buf, row)
			buf[j] = v
			sum += model.PredictProba(buf)
		}
		out[g] = PDPoint{Value: v, MeanProb: sum / float64(d.N())}
	}
	return out, nil
}

// Surrogate is a readable approximation of a black box, with its fidelity
// (agreement with the black box on the training data) measured and
// reported rather than assumed.
type Surrogate struct {
	Tree     *ml.Tree
	Fidelity float64 // fraction of rows where surrogate and black box agree
}

// FitSurrogate trains a depth-limited decision tree to mimic the black
// box's *predictions* (not the ground truth) and reports fidelity. A
// surrogate with low fidelity is an explanation of nothing; callers must
// check it.
func FitSurrogate(blackBox ml.Classifier, d *ml.Dataset, maxDepth int) (*Surrogate, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	preds := ml.PredictAll(blackBox, d.X)
	mimic := d.Clone()
	mimic.Y = preds
	mimic.Weights = nil
	tree, err := ml.TrainTree(mimic, ml.TreeConfig{MaxDepth: maxDepth, MinLeaf: 5})
	if err != nil {
		return nil, fmt.Errorf("explain: surrogate training: %w", err)
	}
	agree, err := ml.Accuracy(preds, ml.PredictAll(tree, d.X))
	if err != nil {
		return nil, err
	}
	return &Surrogate{Tree: tree, Fidelity: agree}, nil
}

// Rules returns the surrogate's decision rules.
func (s *Surrogate) Rules() []string { return s.Tree.Rules() }

// LocalExplanation is a linear approximation of the model around one
// instance: per-feature weights of a ridge regression fit to the black
// box's probabilities on proximity-weighted perturbations.
type LocalExplanation struct {
	Features  []string
	Weights   []float64
	Intercept float64
	BaseProb  float64 // black-box probability at the instance itself
}

// ExplainLocal produces a LIME-style local explanation of model at x:
// `samples` Gaussian perturbations are drawn around x (per-feature scale =
// the dataset's feature stddev), weighted by an RBF proximity kernel, and
// a weighted ridge regression maps perturbed inputs to the black box's
// probabilities.
func ExplainLocal(model ml.Classifier, d *ml.Dataset, x []float64, samples int, src *rng.Source) (*LocalExplanation, error) {
	if len(x) != d.D() {
		return nil, fmt.Errorf("explain: instance has %d features, dataset %d", len(x), d.D())
	}
	if samples < 50 {
		return nil, fmt.Errorf("explain: need >= 50 samples, got %d", samples)
	}
	std := ml.FitStandardizer(d)
	perturbed := &ml.Dataset{Features: append([]string(nil), d.Features...)}
	weights := make([]float64, samples)
	const kernelWidth = 0.75
	for s := 0; s < samples; s++ {
		row := make([]float64, len(x))
		var dist2 float64
		for j := range x {
			delta := src.Norm()
			row[j] = x[j] + delta*std.Scale[j]
			dist2 += delta * delta
		}
		perturbed.X = append(perturbed.X, row)
		perturbed.Y = append(perturbed.Y, model.PredictProba(row))
		weights[s] = math.Exp(-dist2 / (2 * kernelWidth * kernelWidth * float64(len(x))))
	}
	perturbed.Weights = weights
	lin, err := ml.TrainLinear(perturbed, 1e-3)
	if err != nil {
		return nil, fmt.Errorf("explain: local surrogate: %w", err)
	}
	return &LocalExplanation{
		Features:  perturbed.Features,
		Weights:   lin.Weights,
		Intercept: lin.Bias,
		BaseProb:  model.PredictProba(x),
	}, nil
}

// TopFeatures returns the k features with the largest absolute local
// weight, most influential first.
func (e *LocalExplanation) TopFeatures(k int) []string {
	idx := make([]int, len(e.Weights))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(e.Weights[idx[a]]) > math.Abs(e.Weights[idx[b]])
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = e.Features[idx[i]]
	}
	return out
}

// Counterfactual is a minimal feature change that flips a decision.
type Counterfactual struct {
	Changed  map[string]float64 // feature -> new value
	NewProb  float64
	NumEdits int
}

// FindCounterfactual searches greedily for a small set of single-feature
// edits that flips model's decision on x to the desired class. Each step
// scans a grid over each feature's observed range and commits the single
// edit with the best probability movement. maxEdits bounds the number of
// changed features. Returns an error when no flip is found — silence
// would imply the decision is unconditional, which is itself a finding
// the caller must see.
func FindCounterfactual(model ml.Classifier, d *ml.Dataset, x []float64, desired float64, maxEdits int, immutable []string) (*Counterfactual, error) {
	if len(x) != d.D() {
		return nil, fmt.Errorf("explain: instance has %d features, dataset %d", len(x), d.D())
	}
	if desired != 0 && desired != 1 {
		return nil, fmt.Errorf("explain: desired class must be 0/1, got %v", desired)
	}
	if maxEdits <= 0 {
		return nil, fmt.Errorf("explain: maxEdits must be positive")
	}
	frozen := map[int]bool{}
	for _, name := range immutable {
		j, err := d.FeatureIndex(name)
		if err != nil {
			return nil, err
		}
		frozen[j] = true
	}
	lo := make([]float64, d.D())
	hi := make([]float64, d.D())
	for j := 0; j < d.D(); j++ {
		col := d.Column(j)
		lo[j], hi[j] = col[0], col[0]
		for _, v := range col {
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
	}
	want := func(p float64) bool {
		if desired == 1 {
			return p >= 0.5
		}
		return p < 0.5
	}
	score := func(p float64) float64 {
		if desired == 1 {
			return p
		}
		return -p
	}
	cur := append([]float64(nil), x...)
	changed := map[string]float64{}
	const grid = 25
	for edit := 0; edit < maxEdits; edit++ {
		p := model.PredictProba(cur)
		if want(p) {
			break
		}
		bestJ := -1
		var bestV, bestScore float64
		bestScore = score(p)
		for j := 0; j < d.D(); j++ {
			if frozen[j] || lo[j] == hi[j] {
				continue
			}
			orig := cur[j]
			for g := 0; g <= grid; g++ {
				v := lo[j] + (hi[j]-lo[j])*float64(g)/grid
				cur[j] = v
				if s := score(model.PredictProba(cur)); s > bestScore {
					bestScore = s
					bestJ = j
					bestV = v
				}
			}
			cur[j] = orig
		}
		if bestJ < 0 {
			break // no single edit improves further
		}
		cur[bestJ] = bestV
		changed[d.Features[bestJ]] = bestV
	}
	final := model.PredictProba(cur)
	if !want(final) {
		return nil, fmt.Errorf("explain: no counterfactual within %d edits (prob %.3f)", maxEdits, final)
	}
	return &Counterfactual{Changed: changed, NewProb: final, NumEdits: len(changed)}, nil
}
