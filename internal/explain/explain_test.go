package explain

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/ml"
	"github.com/responsible-data-science/rds/internal/rng"
)

// plantedData has a strong feature (x0), a weak one (x1) and pure noise
// (x2): y = 1 iff 2*x0 + 0.3*x1 > 0.
func plantedData(n int, seed uint64) *ml.Dataset {
	src := rng.New(seed)
	d := &ml.Dataset{Features: []string{"x0", "x1", "x2"}}
	for i := 0; i < n; i++ {
		x0 := src.Norm()
		x1 := src.Norm()
		x2 := src.Norm()
		y := 0.0
		if 2*x0+0.3*x1 > 0 {
			y = 1
		}
		d.X = append(d.X, []float64{x0, x1, x2})
		d.Y = append(d.Y, y)
	}
	return d
}

func trainModel(t *testing.T, d *ml.Dataset) ml.Classifier {
	t.Helper()
	m, err := ml.TrainLogistic(d, ml.LogisticConfig{Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPermutationImportanceRanking(t *testing.T) {
	d := plantedData(2000, 1)
	model := trainModel(t, d)
	src := rng.New(2)
	imp, err := PermutationImportance(model, d, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 3 {
		t.Fatalf("got %d importances", len(imp))
	}
	if imp[0].Feature != "x0" {
		t.Fatalf("top feature = %q, want x0 (full: %+v)", imp[0].Feature, imp)
	}
	// Noise feature must have near-zero importance.
	for _, im := range imp {
		if im.Feature == "x2" && math.Abs(im.Drop) > 0.02 {
			t.Fatalf("noise feature importance = %v", im.Drop)
		}
	}
	if imp[0].Drop < 0.1 {
		t.Fatalf("strong feature importance = %v", imp[0].Drop)
	}
}

func TestPermutationImportanceErrors(t *testing.T) {
	d := plantedData(5, 3)
	model := trainModel(t, plantedData(100, 3))
	if _, err := PermutationImportance(model, d, 3, rng.New(1)); err == nil {
		t.Fatal("tiny dataset accepted")
	}
	if _, err := PermutationImportance(model, plantedData(100, 4), 0, rng.New(1)); err == nil {
		t.Fatal("zero repeats accepted")
	}
}

func TestPartialDependenceMonotone(t *testing.T) {
	d := plantedData(1000, 5)
	model := trainModel(t, d)
	pd, err := PartialDependence(model, d, "x0", 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd) != 9 {
		t.Fatalf("grid = %d", len(pd))
	}
	// P(y=1) must rise with x0.
	if pd[0].MeanProb >= pd[8].MeanProb {
		t.Fatalf("PD not increasing: %v -> %v", pd[0].MeanProb, pd[8].MeanProb)
	}
	for i := 1; i < len(pd); i++ {
		if pd[i].Value <= pd[i-1].Value {
			t.Fatal("grid values not increasing")
		}
	}
	// Noise feature: flat profile.
	pdNoise, err := PartialDependence(model, d, "x2", 9)
	if err != nil {
		t.Fatal(err)
	}
	spread := pdNoise[8].MeanProb - pdNoise[0].MeanProb
	if math.Abs(spread) > 0.05 {
		t.Fatalf("noise PD spread = %v", spread)
	}
}

func TestPartialDependenceErrors(t *testing.T) {
	d := plantedData(100, 7)
	model := trainModel(t, d)
	if _, err := PartialDependence(model, d, "ghost", 5); err == nil {
		t.Fatal("unknown feature accepted")
	}
	if _, err := PartialDependence(model, d, "x0", 1); err == nil {
		t.Fatal("single grid point accepted")
	}
	constant := &ml.Dataset{
		X:        [][]float64{{1}, {1}, {1}},
		Y:        []float64{0, 1, 0},
		Features: []string{"c"},
	}
	if _, err := PartialDependence(model, constant, "c", 5); err == nil {
		t.Fatal("constant feature accepted")
	}
}

func TestSurrogateFidelity(t *testing.T) {
	d := plantedData(2000, 9)
	blackBox, err := ml.TrainEnsemble(d, ml.EnsembleConfig{NumTrees: 20, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	sur, err := FitSurrogate(blackBox, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sur.Fidelity < 0.85 {
		t.Fatalf("surrogate fidelity = %v", sur.Fidelity)
	}
	rules := sur.Rules()
	if len(rules) == 0 {
		t.Fatal("no rules extracted")
	}
	// The surrogate of this model must split on x0 at the root.
	if sur.Tree.Root.IsLeaf() || sur.Tree.Features[sur.Tree.Root.Feature] != "x0" {
		t.Fatalf("surrogate root feature wrong")
	}
	// Deeper surrogate is at least as faithful.
	deep, err := FitSurrogate(blackBox, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Fidelity < sur.Fidelity-1e-9 {
		t.Fatalf("deeper surrogate less faithful: %v < %v", deep.Fidelity, sur.Fidelity)
	}
}

func TestExplainLocalIdentifiesDriver(t *testing.T) {
	d := plantedData(1500, 11)
	model := trainModel(t, d)
	x := []float64{0.1, 0.0, 0.0} // near the boundary
	exp, err := ExplainLocal(model, d, x, 500, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	top := exp.TopFeatures(1)
	if top[0] != "x0" {
		t.Fatalf("local top feature = %q, want x0 (weights %v)", top[0], exp.Weights)
	}
	// Weight signs: x0 positive, and |w(x0)| >> |w(x2)|.
	if exp.Weights[0] <= 0 {
		t.Fatalf("x0 local weight = %v, want positive", exp.Weights[0])
	}
	if math.Abs(exp.Weights[0]) < 5*math.Abs(exp.Weights[2]) {
		t.Fatalf("x0 weight %v not dominant over noise %v", exp.Weights[0], exp.Weights[2])
	}
	if exp.BaseProb < 0 || exp.BaseProb > 1 {
		t.Fatalf("base prob = %v", exp.BaseProb)
	}
}

func TestExplainLocalErrors(t *testing.T) {
	d := plantedData(200, 13)
	model := trainModel(t, d)
	if _, err := ExplainLocal(model, d, []float64{1}, 500, rng.New(1)); err == nil {
		t.Fatal("wrong-width instance accepted")
	}
	if _, err := ExplainLocal(model, d, []float64{0, 0, 0}, 10, rng.New(1)); err == nil {
		t.Fatal("too few samples accepted")
	}
}

func TestFindCounterfactualFlipsDecision(t *testing.T) {
	d := plantedData(1000, 15)
	model := trainModel(t, d)
	x := []float64{-2, 0, 0} // firmly rejected
	if ml.Predict(model, x) != 0 {
		t.Fatal("test instance not rejected")
	}
	cf, err := FindCounterfactual(model, d, x, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cf.NewProb < 0.5 {
		t.Fatalf("counterfactual prob = %v", cf.NewProb)
	}
	if cf.NumEdits > 2 {
		t.Fatalf("edits = %d", cf.NumEdits)
	}
	// It should edit x0, the decisive feature.
	if _, ok := cf.Changed["x0"]; !ok {
		t.Fatalf("counterfactual changed %v, want x0", cf.Changed)
	}
}

func TestFindCounterfactualRespectsImmutable(t *testing.T) {
	d := plantedData(1000, 17)
	model := trainModel(t, d)
	x := []float64{-2, -3, 0}
	// With both informative features frozen, no flip is possible.
	_, err := FindCounterfactual(model, d, x, 1, 3, []string{"x0", "x1"})
	if err == nil {
		t.Fatal("flip claimed with decisive features frozen")
	}
}

func TestFindCounterfactualValidation(t *testing.T) {
	d := plantedData(100, 19)
	model := trainModel(t, d)
	x := []float64{0, 0, 0}
	if _, err := FindCounterfactual(model, d, x, 0.5, 2, nil); err == nil {
		t.Fatal("non-binary desired accepted")
	}
	if _, err := FindCounterfactual(model, d, x, 1, 0, nil); err == nil {
		t.Fatal("zero maxEdits accepted")
	}
	if _, err := FindCounterfactual(model, d, x, 1, 2, []string{"ghost"}); err == nil {
		t.Fatal("unknown immutable accepted")
	}
	if _, err := FindCounterfactual(model, d, []float64{1}, 1, 2, nil); err == nil {
		t.Fatal("wrong-width instance accepted")
	}
}
