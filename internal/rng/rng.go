// Package rng provides deterministic, seedable pseudo-random number
// generation and the sampling distributions used throughout the toolkit.
//
// Reproducibility is a transparency requirement (FACT Q4): every synthetic
// dataset, bootstrap resample, and differentially private noise draw in this
// repository is driven by an explicit *rng.Source so that experiments can be
// regenerated bit-for-bit from a seed recorded in provenance metadata.
//
// The core generator is SplitMix64 feeding a xoshiro256** state, both public
// domain algorithms with good statistical quality and no external
// dependencies. The package deliberately does not use math/rand's global
// state: hidden global seeds are exactly the kind of unaccountable
// nondeterminism the paper argues against.
package rng

import (
	"fmt"
	"math"
)

// Source is a deterministic pseudo-random number generator.
//
// It implements xoshiro256** seeded via SplitMix64, providing a 2^256-1
// period. A Source is NOT safe for concurrent use; use Split to derive
// independent child streams for parallel work.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Two Sources constructed
// with the same seed produce identical streams.
func New(seed uint64) *Source {
	r := &Source{}
	// SplitMix64 expansion of the seed into the xoshiro state. SplitMix64 is
	// the recommended seeding procedure for the xoshiro family: it guarantees
	// the state is not all-zero and decorrelates similar seeds.
	sm := seed
	for i := 0; i < 4; i++ {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		r.s[i] = z
	}
	return r
}

// Split derives a new statistically independent Source from r. The child is
// seeded from the parent stream, so a run that Splits in a fixed order is
// fully reproducible.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn bound must be positive, got %d", n))
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al*bh + (al*bl)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += ah * bl
	return ah*bh + w2 + (w1 >> 32), a * b
}

// Norm returns a standard normal variate (mean 0, stddev 1) using the
// Marsaglia polar method.
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation. It panics if stddev is negative.
func (r *Source) Normal(mean, stddev float64) float64 {
	if stddev < 0 {
		panic("rng: Normal stddev must be non-negative")
	}
	return mean + stddev*r.Norm()
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
// It panics if lambda <= 0.
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp rate must be positive")
	}
	// Inverse transform on (0,1]; 1-Float64() avoids log(0).
	return -math.Log(1-r.Float64()) / lambda
}

// Laplace returns a Laplace (double exponential) variate centred at mu with
// scale b. This is the noise distribution of the classic epsilon-DP Laplace
// mechanism. It panics if b <= 0.
func (r *Source) Laplace(mu, b float64) float64 {
	if b <= 0 {
		panic("rng: Laplace scale must be positive")
	}
	u := r.Float64() - 0.5
	if u < 0 {
		return mu + b*math.Log(1+2*u)
	}
	return mu - b*math.Log(1-2*u)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial returns the number of successes in n Bernoulli(p) trials.
func (r *Source) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial n must be non-negative")
	}
	// Direct simulation: n is small in all our workloads relative to the
	// cost of a BTPE implementation, and exactness matters for tests.
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// algorithm for small means and normal approximation with rejection
// adjustment for large means. It panics if mean < 0.
func (r *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson mean must be non-negative")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// For large means, sum of independent Poissons: split into chunks of 25.
	half := mean / 2
	return r.Poisson(half) + r.Poisson(mean-half)
}

// Zipf returns a variate in [1, n] following a Zipf distribution with
// exponent s > 0; rank 1 is most probable. It panics on invalid
// parameters. For repeated draws with the same (n, s), use NewZipf —
// this convenience recomputes the CDF on every call.
func (r *Source) Zipf(n int, s float64) int {
	z := NewZipf(n, s)
	return z.Draw(r)
}

// Zipf is a finite Zipf(n, s) sampler with a precomputed CDF; Draw costs
// one uniform variate plus a binary search. Safe for concurrent Draw
// calls as long as each goroutine uses its own Source.
type Zipf struct {
	n   int
	cdf []float64 // cdf[k] = P(X <= k+1), normalized
}

// NewZipf precomputes the inverse-CDF table for Zipf(n, s) with rank 1
// most probable. It panics on invalid parameters.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: Zipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	var cum float64
	for k := 1; k <= n; k++ {
		cum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = cum
	}
	inv := 1 / cum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // exact top, no float residue
	return &Zipf{n: n, cdf: cdf}
}

// Draw samples a rank in [1, n] using src.
func (z *Zipf) Draw(src *Source) int {
	u := src.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Categorical samples an index in [0, len(weights)) proportionally to
// weights. Negative weights or an all-zero weight vector cause a panic.
func (r *Source) Categorical(weights []float64) int {
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: Categorical weight %d is invalid (%v)", i, w))
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical weights sum to zero")
	}
	u := r.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap
// function, via Fisher-Yates.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n or either argument is negative.
func (r *Source) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("rng: cannot sample %d from %d without replacement", k, n))
	}
	// Partial Fisher-Yates: O(n) space, O(k) swaps.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}
