package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal(10,2) mean = %v", mean)
	}
}

func TestNormalPanicsOnNegativeStddev(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normal with negative stddev did not panic")
		}
	}()
	New(1).Normal(0, -1)
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp(2)
		if x < 0 {
			t.Fatalf("Exp produced negative value %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(23)
	const n, b = 300000, 1.5
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Laplace(0, b)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// Var of Laplace(0,b) is 2b^2 = 4.5.
	if math.Abs(variance-2*b*b) > 0.15 {
		t.Errorf("Laplace variance = %v, want ~%v", variance, 2*b*b)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(29)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(31)
	const n, p = 200000, 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(37)
	const trials, n, p = 20000, 40, 0.25
	var sum float64
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial out of range: %d", k)
		}
		sum += float64(k)
	}
	if mean := sum / trials; math.Abs(mean-n*p) > 0.2 {
		t.Fatalf("Binomial mean = %v, want ~%v", mean, n*p)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(41)
	for _, mean := range []float64{0.5, 4, 30, 150} {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / trials
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(43)
	const n, draws = 10, 100000
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		k := r.Zipf(n, 1.2)
		if k < 1 || k > n {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[5] {
		t.Fatalf("Zipf counts not decreasing: %v", counts[1:])
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := New(47)
	weights := []float64{1, 2, 7}
	const draws = 100000
	counts := make([]float64, 3)
	for i := 0; i < draws; i++ {
		counts[r.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(counts[i]-want)/want > 0.05 {
			t.Fatalf("category %d count %v, want ~%v", i, counts[i], want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"zero":     {0, 0},
		"negative": {1, -1},
		"nan":      {1, math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%s) did not panic", name)
				}
			}()
			New(1).Categorical(weights)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)
		k := int(kRaw)
		if k > n {
			n, k = k, n
		}
		s := New(seed).SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversample did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 5)
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(53)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

func TestNewZipfMatchesConvenience(t *testing.T) {
	// Draws from the precomputed sampler follow the same distribution as
	// the convenience method (identical CDF, shared source type).
	z := NewZipf(10, 1.2)
	r := New(101)
	counts := make([]int, 11)
	for i := 0; i < 100000; i++ {
		k := z.Draw(r)
		if k < 1 || k > 10 {
			t.Fatalf("Zipf draw out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[5] {
		t.Fatalf("Zipf counts not decreasing: %v", counts[1:])
	}
}

func TestNewZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(100000, 1.2)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw(r)
	}
}
