package procmine

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/privacy"
	"github.com/responsible-data-science/rds/internal/rng"
)

// The responsible views: event logs identify people twice over — the
// case (a patient, an applicant) and implicitly the workers executing
// activities. Publishing a raw log or even raw activity counts leaks.
// These helpers give the FACT-compliant alternatives.

// Pseudonymize returns a copy of the log with case ids replaced by
// domain-specific pseudonyms, so two recipients cannot join their logs on
// the case id while each still sees consistent traces.
func Pseudonymize(l *Log, p *privacy.Pseudonymizer, domain string) *Log {
	out := &Log{Traces: make([]Trace, len(l.Traces))}
	for i, tr := range l.Traces {
		out.Traces[i] = Trace{
			CaseID: p.Pseudonym(domain, tr.CaseID),
			Events: append([]Event(nil), tr.Events...),
		}
	}
	return out
}

// PrivateActivityCounts releases per-activity event counts under
// differential privacy. Sensitivity note: one *case* can contribute up to
// maxEventsPerCase events, so the Laplace scale uses that bound —
// case-level privacy, the correct unit for event logs.
func PrivateActivityCounts(b *privacy.Budget, l *Log, eps float64, maxEventsPerCase int, src *rng.Source) (map[string]float64, error) {
	if maxEventsPerCase <= 0 {
		return nil, fmt.Errorf("procmine: maxEventsPerCase must be positive, got %d", maxEventsPerCase)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if err := b.Spend("activity-counts", eps, 0); err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, tr := range l.Traces {
		events := tr.Events
		if len(events) > maxEventsPerCase {
			// Clamp the contribution of outlier cases: required for the
			// stated sensitivity to hold.
			events = events[:maxEventsPerCase]
		}
		for _, e := range events {
			counts[e.Activity]++
		}
	}
	scale := float64(maxEventsPerCase) / eps
	out := make(map[string]float64, len(counts))
	for a, c := range counts {
		noisy := float64(c) + src.Laplace(0, scale)
		if noisy < 0 {
			noisy = 0
		}
		out[a] = noisy
	}
	return out, nil
}
