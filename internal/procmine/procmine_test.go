package procmine

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/privacy"
	"github.com/responsible-data-science/rds/internal/rng"
)

func tinyLog(t *testing.T) *Log {
	t.Helper()
	base := time.Date(2026, 1, 1, 9, 0, 0, 0, time.UTC)
	mk := func(id string, acts []string, gaps []time.Duration) Trace {
		tr := Trace{CaseID: id}
		now := base
		for i, a := range acts {
			if i > 0 {
				now = now.Add(gaps[i-1])
			}
			tr.Events = append(tr.Events, Event{Activity: a, Time: now})
		}
		return tr
	}
	h := time.Hour
	return &Log{Traces: []Trace{
		mk("c1", []string{"a", "b", "c"}, []time.Duration{1 * h, 2 * h}),
		mk("c2", []string{"a", "b", "c"}, []time.Duration{3 * h, 2 * h}),
		mk("c3", []string{"a", "c"}, []time.Duration{5 * h}),
	}}
}

func TestValidate(t *testing.T) {
	l := tinyLog(t)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := &Log{Traces: []Trace{l.Traces[0], l.Traces[0]}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate case ids accepted")
	}
	empty := &Log{Traces: []Trace{{CaseID: "x"}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty trace accepted")
	}
	back := &Log{Traces: []Trace{{CaseID: "x", Events: []Event{
		{Activity: "a", Time: time.Unix(100, 0)},
		{Activity: "b", Time: time.Unix(50, 0)},
	}}}}
	if err := back.Validate(); err == nil {
		t.Fatal("time travel accepted")
	}
}

func TestDiscoverDFG(t *testing.T) {
	g, err := Discover(tinyLog(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount("a", "b") != 2 || g.EdgeCount("b", "c") != 2 || g.EdgeCount("a", "c") != 1 {
		t.Fatalf("edge counts wrong: ab=%d bc=%d ac=%d",
			g.EdgeCount("a", "b"), g.EdgeCount("b", "c"), g.EdgeCount("a", "c"))
	}
	if g.EdgeCount(Start, "a") != 3 || g.EdgeCount("c", End) != 3 {
		t.Fatal("boundary edges wrong")
	}
	// Mean wait on a->b: (1h + 3h)/2 = 2h.
	e := g.Edges["a"]["b"]
	if e.MeanWait != 2*time.Hour {
		t.Fatalf("a->b mean wait = %v", e.MeanWait)
	}
	if len(g.Activities) != 3 {
		t.Fatalf("activities = %v", g.Activities)
	}
	if !strings.Contains(g.Render(), "a") {
		t.Fatal("render empty")
	}
}

func TestStartEndCounts(t *testing.T) {
	g, err := Discover(tinyLog(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.StartCounts()["a"] != 3 {
		t.Fatalf("start counts = %v", g.StartCounts())
	}
	if g.EndCounts()["c"] != 3 {
		t.Fatalf("end counts = %v", g.EndCounts())
	}
	if g.NumTraces() != 3 {
		t.Fatalf("traces = %d", g.NumTraces())
	}
	// Returned maps are copies.
	g.StartCounts()["a"] = 99
	if g.StartCounts()["a"] != 3 {
		t.Fatal("StartCounts leaked internal state")
	}
}

func TestVariants(t *testing.T) {
	vs := Variants(tinyLog(t))
	if len(vs) != 2 {
		t.Fatalf("variants = %d", len(vs))
	}
	if vs[0].Variant != "a->b->c" || vs[0].Count != 2 {
		t.Fatalf("top variant = %+v", vs[0])
	}
}

func TestConformance(t *testing.T) {
	// Reference allows only a->b->c.
	ref, err := Discover(&Log{Traces: []Trace{{
		CaseID: "ref",
		Events: []Event{
			{Activity: "a", Time: time.Unix(0, 0)},
			{Activity: "b", Time: time.Unix(1, 0)},
			{Activity: "c", Time: time.Unix(2, 0)},
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := CheckConformance(ref, tinyLog(t))
	if err != nil {
		t.Fatal(err)
	}
	// c3 (a->c) has one disallowed step among its 3; total steps 4+4+3=11.
	if math.Abs(conf.Fitness-10.0/11) > 1e-12 {
		t.Fatalf("fitness = %v, want 10/11", conf.Fitness)
	}
	if conf.Deviations["a->c"] != 1 {
		t.Fatalf("deviations = %v", conf.Deviations)
	}
	if len(conf.DeviantCases) != 1 || conf.DeviantCases[0] != "c3" {
		t.Fatalf("deviant cases = %v", conf.DeviantCases)
	}
}

func TestGeneratorPlantedStructure(t *testing.T) {
	log, err := Generate(GeneratorConfig{Cases: 2000, DeviationRate: 0.08, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := Discover(log)
	if err != nil {
		t.Fatal(err)
	}
	// The skip edge receive->pick exists (deviations) at roughly 8%.
	skip := g.EdgeCount(ActReceive, ActPick)
	rate := float64(skip) / 2000
	if rate < 0.05 || rate > 0.12 {
		t.Fatalf("skip rate = %v, want ~0.08", rate)
	}
	// The planted bottleneck tops the list.
	bn := g.Bottlenecks(1)
	if len(bn) != 1 || bn[0].From != ActPick || bn[0].To != ActShip {
		t.Fatalf("top bottleneck = %+v", bn)
	}
	if bn[0].MeanWait < 24*time.Hour {
		t.Fatalf("bottleneck wait = %v", bn[0].MeanWait)
	}
}

func TestConformanceAgainstNormative(t *testing.T) {
	log, err := Generate(GeneratorConfig{Cases: 1000, DeviationRate: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := CheckConformance(NormativeDFG(), log)
	if err != nil {
		t.Fatal(err)
	}
	// Only the skip deviates; fitness high but below 1.
	if conf.Fitness >= 1 || conf.Fitness < 0.95 {
		t.Fatalf("fitness = %v", conf.Fitness)
	}
	if conf.Deviations[ActReceive+"->"+ActPick] == 0 {
		t.Fatalf("planted deviation not found: %v", conf.Deviations)
	}
	// Deviant case count matches the deviation count (one skip per case).
	if len(conf.DeviantCases) != conf.Deviations[ActReceive+"->"+ActPick] {
		t.Fatalf("deviant cases %d != deviations %d",
			len(conf.DeviantCases), conf.Deviations[ActReceive+"->"+ActPick])
	}
	// Zero-deviation log has fitness 1.
	clean, err := Generate(GeneratorConfig{Cases: 200, DeviationRate: 1e-12, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	confClean, err := CheckConformance(NormativeDFG(), clean)
	if err != nil {
		t.Fatal(err)
	}
	if confClean.Fitness != 1 {
		t.Fatalf("clean fitness = %v", confClean.Fitness)
	}
}

func TestPseudonymizeLog(t *testing.T) {
	log := tinyLog(t)
	p, err := privacy.NewPseudonymizer([]byte("procmine-key-0123456789abcdef00"))
	if err != nil {
		t.Fatal(err)
	}
	anon := Pseudonymize(log, p, "auditor")
	if anon.Traces[0].CaseID == "c1" {
		t.Fatal("case id not pseudonymized")
	}
	// Structure preserved.
	if anon.Traces[0].Variant() != log.Traces[0].Variant() {
		t.Fatal("trace structure changed")
	}
	// Deterministic per domain; different across domains.
	anon2 := Pseudonymize(log, p, "auditor")
	if anon.Traces[0].CaseID != anon2.Traces[0].CaseID {
		t.Fatal("pseudonymization not deterministic")
	}
	other := Pseudonymize(log, p, "regulator")
	if anon.Traces[0].CaseID == other.Traces[0].CaseID {
		t.Fatal("domains linkable")
	}
	// Original untouched.
	if log.Traces[0].CaseID != "c1" {
		t.Fatal("input mutated")
	}
}

func TestPrivateActivityCounts(t *testing.T) {
	log, err := Generate(GeneratorConfig{Cases: 3000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := privacy.NewBudget(1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(13)
	counts, err := PrivateActivityCounts(b, log, 1.0, 8, src)
	if err != nil {
		t.Fatal(err)
	}
	// All six activities present; counts near truth (receive = 3000).
	if len(counts) != 6 {
		t.Fatalf("activities = %d", len(counts))
	}
	if math.Abs(counts[ActReceive]-3000) > 100 {
		t.Fatalf("receive count = %v", counts[ActReceive])
	}
	// Budget charged once.
	eps, _ := b.Remaining()
	if eps != 0 {
		t.Fatalf("remaining = %v", eps)
	}
	if _, err := PrivateActivityCounts(b, log, 0.5, 8, src); err == nil {
		t.Fatal("exhausted budget accepted")
	}
	if _, err := PrivateActivityCounts(b, log, 0.5, 0, src); err == nil {
		t.Fatal("zero max-events accepted")
	}
}
