// Package procmine implements a compact process-mining substrate — the
// first author's field, cited by the paper as "data science in action"
// (van der Aalst 2016b) and the motivating domain for several FACT
// concerns: event logs are person-level traces (confidentiality), the
// discovered model is used to judge people's work (fairness,
// transparency), and conformance verdicts need statistical care
// (accuracy).
//
// Provided: an event-log model, directly-follows-graph discovery, variant
// analysis, token-free conformance checking against a reference DFG,
// bottleneck analysis, plus responsible views — pseudonymized case ids
// and differentially private activity counts.
package procmine

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Event is one step of one case.
type Event struct {
	Activity string
	Time     time.Time
}

// Trace is the ordered event sequence of one case.
type Trace struct {
	CaseID string
	Events []Event
}

// Activities returns the activity sequence of the trace.
func (t *Trace) Activities() []string {
	out := make([]string, len(t.Events))
	for i, e := range t.Events {
		out[i] = e.Activity
	}
	return out
}

// Variant returns the canonical "a->b->c" form of the trace.
func (t *Trace) Variant() string {
	return strings.Join(t.Activities(), "->")
}

// Log is an event log: a set of traces.
type Log struct {
	Traces []Trace
}

// Validate checks structural invariants: non-empty traces with unique
// case ids and non-decreasing timestamps within each trace.
func (l *Log) Validate() error {
	seen := map[string]bool{}
	for i, tr := range l.Traces {
		if tr.CaseID == "" {
			return fmt.Errorf("procmine: trace %d has empty case id", i)
		}
		if seen[tr.CaseID] {
			return fmt.Errorf("procmine: duplicate case id %q", tr.CaseID)
		}
		seen[tr.CaseID] = true
		if len(tr.Events) == 0 {
			return fmt.Errorf("procmine: case %q has no events", tr.CaseID)
		}
		for j := 1; j < len(tr.Events); j++ {
			if tr.Events[j].Time.Before(tr.Events[j-1].Time) {
				return fmt.Errorf("procmine: case %q time travels at event %d", tr.CaseID, j)
			}
		}
	}
	return nil
}

// NumEvents returns the total event count.
func (l *Log) NumEvents() int {
	n := 0
	for _, tr := range l.Traces {
		n += len(tr.Events)
	}
	return n
}

// Edge is one directly-follows relation with its statistics.
type Edge struct {
	From, To string
	Count    int
	MeanWait time.Duration // mean time between From completing and To starting
}

// DFG is a directly-follows graph discovered from a log. The artificial
// endpoints "▶" (start) and "■" (end) bound every trace.
type DFG struct {
	Activities []string // sorted
	Edges      map[string]map[string]*Edge
	starts     map[string]int
	ends       map[string]int
	traces     int
}

// Start and End are the artificial boundary activities.
const (
	Start = "▶" // ▶
	End   = "■" // ■
)

// Discover mines the directly-follows graph of the log.
func Discover(l *Log) (*DFG, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(l.Traces) == 0 {
		return nil, fmt.Errorf("procmine: empty log")
	}
	g := &DFG{
		Edges:  map[string]map[string]*Edge{},
		starts: map[string]int{},
		ends:   map[string]int{},
		traces: len(l.Traces),
	}
	actSet := map[string]bool{}
	addEdge := func(from, to string, wait time.Duration) {
		m, ok := g.Edges[from]
		if !ok {
			m = map[string]*Edge{}
			g.Edges[from] = m
		}
		e, ok := m[to]
		if !ok {
			e = &Edge{From: from, To: to}
			m[to] = e
		}
		// Running mean of waiting time.
		total := time.Duration(e.Count) * e.MeanWait
		e.Count++
		e.MeanWait = (total + wait) / time.Duration(e.Count)
	}
	for _, tr := range l.Traces {
		acts := tr.Activities()
		for _, a := range acts {
			actSet[a] = true
		}
		g.starts[acts[0]]++
		g.ends[acts[len(acts)-1]]++
		addEdge(Start, acts[0], 0)
		for i := 1; i < len(acts); i++ {
			addEdge(acts[i-1], acts[i], tr.Events[i].Time.Sub(tr.Events[i-1].Time))
		}
		addEdge(acts[len(acts)-1], End, 0)
	}
	for a := range actSet {
		g.Activities = append(g.Activities, a)
	}
	sort.Strings(g.Activities)
	return g, nil
}

// StartCounts returns how many traces start with each activity.
func (g *DFG) StartCounts() map[string]int {
	out := make(map[string]int, len(g.starts))
	for a, c := range g.starts {
		out[a] = c
	}
	return out
}

// EndCounts returns how many traces end with each activity.
func (g *DFG) EndCounts() map[string]int {
	out := make(map[string]int, len(g.ends))
	for a, c := range g.ends {
		out[a] = c
	}
	return out
}

// NumTraces returns the number of traces the graph was discovered from
// (0 for hand-built reference graphs).
func (g *DFG) NumTraces() int { return g.traces }

// EdgeCount returns the count of the (from, to) relation (0 if absent).
func (g *DFG) EdgeCount(from, to string) int {
	if m, ok := g.Edges[from]; ok {
		if e, ok := m[to]; ok {
			return e.Count
		}
	}
	return 0
}

// HasEdge reports whether from is ever directly followed by to.
func (g *DFG) HasEdge(from, to string) bool { return g.EdgeCount(from, to) > 0 }

// Render prints the graph's edges, sorted by count descending.
func (g *DFG) Render() string {
	var edges []*Edge
	for _, m := range g.Edges {
		for _, e := range m {
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].Count != edges[b].Count {
			return edges[a].Count > edges[b].Count
		}
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	var b strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&b, "%-14s -> %-14s %5d", e.From, e.To, e.Count)
		if e.MeanWait > 0 {
			fmt.Fprintf(&b, "  wait %s", e.MeanWait.Round(time.Minute))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// VariantCount is one trace variant with its frequency.
type VariantCount struct {
	Variant string
	Count   int
}

// Variants tabulates trace variants, most frequent first.
func Variants(l *Log) []VariantCount {
	counts := map[string]int{}
	for _, tr := range l.Traces {
		counts[tr.Variant()]++
	}
	out := make([]VariantCount, 0, len(counts))
	for v, c := range counts {
		out = append(out, VariantCount{Variant: v, Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Variant < out[b].Variant
	})
	return out
}

// Conformance is the result of replaying a log against a reference DFG.
type Conformance struct {
	// Fitness in [0,1]: fraction of directly-follows steps (including the
	// start/end boundaries) permitted by the reference graph.
	Fitness float64
	// Deviations counts, per "from->to" relation, the steps the reference
	// does not allow.
	Deviations map[string]int
	// DeviantCases lists case ids with at least one deviation.
	DeviantCases []string
}

// CheckConformance replays log against the reference graph.
func CheckConformance(reference *DFG, l *Log) (*Conformance, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	c := &Conformance{Deviations: map[string]int{}}
	var total, ok int
	for _, tr := range l.Traces {
		acts := append(append([]string{Start}, tr.Activities()...), End)
		deviant := false
		for i := 1; i < len(acts); i++ {
			total++
			if reference.HasEdge(acts[i-1], acts[i]) {
				ok++
			} else {
				c.Deviations[acts[i-1]+"->"+acts[i]]++
				deviant = true
			}
		}
		if deviant {
			c.DeviantCases = append(c.DeviantCases, tr.CaseID)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("procmine: nothing to replay")
	}
	c.Fitness = float64(ok) / float64(total)
	return c, nil
}

// Bottleneck is one slow hand-over in the process.
type Bottleneck struct {
	From, To string
	MeanWait time.Duration
	Count    int
}

// Bottlenecks returns the edges with the longest mean waits (excluding
// the artificial boundaries), slowest first, at most k.
func (g *DFG) Bottlenecks(k int) []Bottleneck {
	var out []Bottleneck
	for _, m := range g.Edges {
		for _, e := range m {
			if e.From == Start || e.To == End {
				continue
			}
			out = append(out, Bottleneck{From: e.From, To: e.To, MeanWait: e.MeanWait, Count: e.Count})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].MeanWait != out[b].MeanWait {
			return out[a].MeanWait > out[b].MeanWait
		}
		return out[a].From+out[a].To < out[b].From+out[b].To
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
