package procmine

import (
	"fmt"
	"time"

	"github.com/responsible-data-science/rds/internal/rng"
)

// GeneratorConfig parameterizes the synthetic order-to-cash event log.
type GeneratorConfig struct {
	Cases         int     // number of cases (default 1000)
	DeviationRate float64 // fraction of cases that skip the credit check (default 0.05)
	ReworkRate    float64 // fraction of cases looping back from ship to pick (default 0.1)
	Seed          uint64  // rng seed (default 1)
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.Cases <= 0 {
		c.Cases = 1000
	}
	if c.DeviationRate == 0 {
		c.DeviationRate = 0.05
	}
	if c.ReworkRate == 0 {
		c.ReworkRate = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Normative process: receive -> credit_check -> pick -> ship -> invoice ->
// pay. Deviating cases skip credit_check (the planted compliance
// violation); rework cases loop ship -> pick once.
const (
	ActReceive = "receive_order"
	ActCredit  = "credit_check"
	ActPick    = "pick_goods"
	ActShip    = "ship_goods"
	ActInvoice = "send_invoice"
	ActPay     = "receive_payment"
)

// Generate produces a synthetic order-to-cash log with planted deviations
// and a known bottleneck (pick -> ship waits are the longest).
func Generate(cfg GeneratorConfig) (*Log, error) {
	cfg = cfg.withDefaults()
	if cfg.DeviationRate < 0 || cfg.DeviationRate > 1 {
		return nil, fmt.Errorf("procmine: deviation rate %v out of [0,1]", cfg.DeviationRate)
	}
	if cfg.ReworkRate < 0 || cfg.ReworkRate > 1 {
		return nil, fmt.Errorf("procmine: rework rate %v out of [0,1]", cfg.ReworkRate)
	}
	src := rng.New(cfg.Seed)
	base := time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)
	log := &Log{}
	for c := 0; c < cfg.Cases; c++ {
		start := base.Add(time.Duration(src.Intn(90*24)) * time.Hour)
		var acts []string
		acts = append(acts, ActReceive)
		if !src.Bernoulli(cfg.DeviationRate) {
			acts = append(acts, ActCredit)
		}
		acts = append(acts, ActPick, ActShip)
		if src.Bernoulli(cfg.ReworkRate) {
			acts = append(acts, ActPick, ActShip)
		}
		acts = append(acts, ActInvoice, ActPay)

		tr := Trace{CaseID: fmt.Sprintf("order-%05d", c)}
		now := start
		for i, a := range acts {
			if i > 0 {
				// Transition-specific waits: pick->ship is the planted
				// bottleneck (mean 48h), everything else 2-8h.
				var wait time.Duration
				if acts[i-1] == ActPick && a == ActShip {
					wait = time.Duration(24+src.Intn(48)) * time.Hour
				} else {
					wait = time.Duration(2+src.Intn(6)) * time.Hour
				}
				now = now.Add(wait)
			}
			tr.Events = append(tr.Events, Event{Activity: a, Time: now})
		}
		log.Traces = append(log.Traces, tr)
	}
	return log, nil
}

// NormativeDFG returns the reference model of the order-to-cash process
// (with rework allowed, without the credit-check skip).
func NormativeDFG() *DFG {
	g := &DFG{
		Edges:  map[string]map[string]*Edge{},
		starts: map[string]int{},
		ends:   map[string]int{},
	}
	allow := func(from, to string) {
		m, ok := g.Edges[from]
		if !ok {
			m = map[string]*Edge{}
			g.Edges[from] = m
		}
		m[to] = &Edge{From: from, To: to, Count: 1}
	}
	allow(Start, ActReceive)
	allow(ActReceive, ActCredit)
	allow(ActCredit, ActPick)
	allow(ActPick, ActShip)
	allow(ActShip, ActPick) // rework loop is permitted
	allow(ActShip, ActInvoice)
	allow(ActInvoice, ActPay)
	allow(ActPay, End)
	g.Activities = []string{ActCredit, ActInvoice, ActPay, ActPick, ActReceive, ActShip}
	return g
}
