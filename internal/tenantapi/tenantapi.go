// Package tenantapi exposes the multi-tenant control surface over
// HTTP: quota configuration (backed by tenant.Registry) and the
// per-tenant TAPS-style responsibility report that rolls a tenant's
// audit grades, drift posture, and provenance cards into one document.
//
//	GET    /v1/tenants              service defaults + every quota override
//	GET    /v1/tenants/{id}         one tenant's effective quotas
//	PUT    /v1/tenants/{id}         install a quota override
//	DELETE /v1/tenants/{id}         remove an override (defaults apply again)
//	GET    /v1/tenants/{id}/report  responsibility report
//
// Requests carrying an X-RDS-Tenant header are scoped to that tenant:
// asking about any other tenant answers 404, indistinguishable from an
// absent one. Header-less (operator) requests see every tenant.
package tenantapi

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/httpx"
	"github.com/responsible-data-science/rds/internal/monitor"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/provenance"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// Handler wires the quota registry and the data/monitoring planes into
// the /v1/tenants API. Datasets and Monitors may be nil (reports then
// render empty sections).
type Handler struct {
	// Tenants is the quota source of truth. Required.
	Tenants *tenant.Registry
	// Datasets supplies the report's dataset inventory and datasheets.
	Datasets *dataset.Registry
	// Monitors supplies the report's audit grades and drift posture.
	Monitors *monitor.Registry
	// Pipelines supplies the report's remediation-run counters
	// (internal/pipeline.Registry).
	Pipelines PipelineCounter
}

// PipelineCounter is the slice of the pipeline registry the report
// needs: per-tenant run counts. Declared here so tenantapi does not
// depend on the pipeline plane's full surface.
type PipelineCounter interface {
	// CountsAs reports ten's total retained and live (unfinished) runs.
	CountsAs(ten string) (total, live int)
}

// NewHandler builds the tenants API around the given quota registry.
func NewHandler(tenants *tenant.Registry) *Handler {
	return &Handler{Tenants: tenants}
}

// ListResponse is the JSON body of GET /v1/tenants.
type ListResponse struct {
	// Defaults are the service-wide quotas tenants without an override
	// run under.
	Defaults tenant.Quotas `json:"defaults"`
	// Tenants lists every explicit quota override, ordered by id.
	Tenants []tenant.Info `json:"tenants"`
}

// ServeHTTP routes the tenants API.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r, err := httpx.Tenant(r)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/tenants")
	if !ok {
		httpx.Error(w, http.StatusNotFound, fmt.Errorf("no route %s", r.URL.Path))
		return
	}
	rest = strings.Trim(rest, "/")
	switch {
	case rest == "":
		if r.Method != http.MethodGet {
			httpx.Error(w, http.StatusMethodNotAllowed, errors.New("GET required"))
			return
		}
		httpx.WriteJSON(w, http.StatusOK, ListResponse{
			Defaults: h.Tenants.Defaults(),
			Tenants:  h.Tenants.List(),
		})
	case strings.HasSuffix(rest, "/report"):
		h.report(w, r, strings.TrimSuffix(rest, "/report"))
	default:
		h.byID(w, r, rest)
	}
}

// visible reports whether the request may address tenant id: operator
// requests (no tenant context) always may; tenant-scoped requests only
// their own id. The failure is a 404, not a 403 — other tenants read
// as absent.
func visible(r *http.Request, id string) bool {
	ten, ok := tenant.FromContext(r.Context())
	return !ok || ten == id
}

func (h *Handler) byID(w http.ResponseWriter, r *http.Request, id string) {
	id, err := tenant.Normalize(id)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	if !visible(r, id) {
		httpx.Error(w, http.StatusNotFound, fmt.Errorf("no tenant %q", id))
		return
	}
	switch r.Method {
	case http.MethodGet:
		info := tenant.Info{ID: id, Quotas: h.Tenants.Quotas(id)}
		for _, o := range h.Tenants.List() {
			if o.ID == id {
				info.Override = true
			}
		}
		httpx.WriteJSON(w, http.StatusOK, info)
	case http.MethodPut:
		var q tenant.Quotas
		if err := httpx.DecodeJSON(w, r, &q); err != nil {
			httpx.Error(w, http.StatusBadRequest, err)
			return
		}
		if err := h.Tenants.Set(id, q); err != nil {
			status := http.StatusBadRequest
			if !errors.Is(err, tenant.ErrInvalidID) && !errors.Is(err, tenant.ErrInvalidQuota) {
				status = http.StatusInternalServerError
			}
			httpx.Error(w, status, err)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, tenant.Info{ID: id, Quotas: h.Tenants.Quotas(id), Override: true})
	case http.MethodDelete:
		if err := h.Tenants.Remove(id); err != nil {
			httpx.Error(w, http.StatusInternalServerError, err)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"removed": id})
	default:
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("GET, PUT, or DELETE required"))
	}
}

// Report is the TAPS-style (transparency, accountability, provenance)
// responsibility roll-up for one tenant: the audit grades and drift
// posture of its monitors plus provenance cards for its resident
// datasets. Every field is a pure function of the tenant's data and
// audit results — nothing here depends on scheduling order, queue
// state, or wall-clock timing, so the same workload renders the same
// bytes regardless of how the engine interleaved it (property-tested).
type Report struct {
	Tenant string        `json:"tenant"`
	Quotas tenant.Quotas `json:"quotas"`
	// Posture is the one-line roll-up: "ok", "drifting" (any monitor
	// with drift breaches), or "degraded" (any degraded monitor;
	// dominates drifting).
	Posture  string          `json:"posture"`
	Datasets []DatasetReport `json:"datasets"`
	Monitors []MonitorReport `json:"monitors"`
	// Pipelines counts the tenant's remediation runs. Unlike the other
	// sections it is a point-in-time gauge — a live run finishes on the
	// engine's schedule — so it is excluded from the byte-identity
	// guarantee while runs are in flight; with every run terminal it is
	// deterministic in the submitted work like everything else.
	Pipelines *PipelineSection `json:"pipelines,omitempty"`
}

// PipelineSection is the responsibility report's remediation-plane
// slice: how many staged runs the tenant has retained and how many are
// still executing.
type PipelineSection struct {
	Total int `json:"total"`
	Live  int `json:"live"`
}

// DatasetReport is one resident dataset's slice of the report,
// including its rendered datasheet (Gebru et al.) provenance card.
type DatasetReport struct {
	Ref       string `json:"ref"`
	Name      string `json:"name"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	Bytes     int64  `json:"bytes"`
	Pinned    bool   `json:"pinned"`
	Datasheet string `json:"datasheet"`
}

// MonitorReport is one monitor's slice of the report: its audit grades
// and drift counters (all deterministic in the ingested stream) plus a
// rendered model card. Timing fields (profile build cost, latencies)
// and the registry-assigned monitor id are deliberately absent — both
// vary with run-to-run scheduling and registration order and would
// break the report's byte-identity guarantee; Name is unique within
// the tenant and identifies the monitor stably.
type MonitorReport struct {
	Name          string        `json:"name"`
	BaselineGrade *policy.Grade `json:"baseline_grade,omitempty"`
	LastGrade     *policy.Grade `json:"last_grade,omitempty"`
	Degraded      bool          `json:"degraded"`
	RowsIngested  uint64        `json:"rows_ingested"`
	Windows       uint64        `json:"windows"`
	Audits        uint64        `json:"audits"`
	DriftBreaches uint64        `json:"drift_breaches"`
	Regressions   uint64        `json:"grade_regressions"`
	ModelCard     string        `json:"model_card"`
}

func (h *Handler) report(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	id, err := tenant.Normalize(id)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	if !visible(r, id) {
		httpx.Error(w, http.StatusNotFound, fmt.Errorf("no tenant %q", id))
		return
	}
	httpx.WriteJSON(w, http.StatusOK, h.BuildReport(id))
}

// BuildReport assembles the responsibility report for ten. Exported so
// tests can assert byte-identity without going through HTTP.
func (h *Handler) BuildReport(ten string) Report {
	rep := Report{
		Tenant:   ten,
		Quotas:   h.Tenants.Quotas(ten),
		Posture:  "ok",
		Datasets: []DatasetReport{},
		Monitors: []MonitorReport{},
	}
	if h.Datasets != nil {
		for _, m := range h.Datasets.ListAs(ten) {
			sheet := provenance.Datasheet{
				Name: m.Name,
				Hash: m.Ref,
				Rows: m.Rows,
				Cols: m.Cols,
			}
			rep.Datasets = append(rep.Datasets, DatasetReport{
				Ref:       m.Ref,
				Name:      m.Name,
				Rows:      m.Rows,
				Cols:      m.Cols,
				Bytes:     m.Bytes,
				Pinned:    m.Pins > 0,
				Datasheet: sheet.Render(),
			})
		}
	}
	if h.Monitors != nil {
		for _, s := range h.Monitors.ListAs(ten) {
			rep.Monitors = append(rep.Monitors, MonitorReport{
				Name:          s.Name,
				BaselineGrade: s.BaselineGrade,
				LastGrade:     s.LastGrade,
				Degraded:      s.Degraded,
				RowsIngested:  s.RowsIngested,
				Windows:       s.Windows,
				Audits:        s.Audits,
				DriftBreaches: s.DriftBreaches,
				Regressions:   s.Regressions,
				ModelCard:     h.modelCard(s),
			})
			if s.DriftBreaches > 0 && rep.Posture == "ok" {
				rep.Posture = "drifting"
			}
			if s.Degraded {
				rep.Posture = "degraded"
			}
		}
	}
	if h.Pipelines != nil {
		total, live := h.Pipelines.CountsAs(ten)
		rep.Pipelines = &PipelineSection{Total: total, Live: live}
	}
	return rep
}

// modelCard renders the model card (Mitchell et al.) for one monitor's
// per-window audit model.
func (h *Handler) modelCard(s monitor.Summary) string {
	var spec monitor.Spec
	if m, ok := h.Monitors.Get(s.ID); ok {
		spec = m.Spec()
	}
	card := provenance.ModelCard{
		Name:           s.Name,
		ModelType:      "logistic regression (FACT audit)",
		IntendedUse:    "per-window fairness/accuracy auditing of the monitored stream",
		TrainingData:   "each closed stream window, audited independently",
		FairnessNotes:  fmt.Sprintf("sensitive attribute %q excluded from features; protected %q vs reference %q", spec.Train.Sensitive, spec.Train.Protected, spec.Train.Reference),
		ExcludedFields: []string{spec.Train.Sensitive},
	}
	if spec.BaselineRef != "" {
		card.TrainingData = fmt.Sprintf("baseline dataset %s, then each closed stream window", spec.BaselineRef)
	}
	return card.Render()
}
