package tenantapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/httpx"
	"github.com/responsible-data-science/rds/internal/monitor"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/stream"
	"github.com/responsible-data-science/rds/internal/synth"
	"github.com/responsible-data-science/rds/internal/tenant"
)

func testHandler(t *testing.T) *Handler {
	t.Helper()
	return NewHandler(tenant.NewRegistry(tenant.Quotas{Weight: 1}))
}

func do(t *testing.T, h http.Handler, method, path, tenantHeader, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
	}
	if tenantHeader != "" {
		r.Header.Set(httpx.TenantHeader, tenantHeader)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestQuotaCRUD(t *testing.T) {
	h := testHandler(t)

	w := do(t, h, http.MethodGet, "/v1/tenants", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("list: %d %s", w.Code, w.Body)
	}
	var list ListResponse
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tenants) != 0 || list.Defaults.Weight != 1 {
		t.Fatalf("fresh list = %+v", list)
	}

	w = do(t, h, http.MethodPut, "/v1/tenants/acme", "", `{"weight":3,"max_datasets":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("put: %d %s", w.Code, w.Body)
	}

	w = do(t, h, http.MethodGet, "/v1/tenants/acme", "", "")
	var info tenant.Info
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Override || info.Quotas.Weight != 3 || info.Quotas.MaxDatasets != 2 {
		t.Fatalf("get after put = %+v", info)
	}

	// An unknown tenant is first-class: it answers the defaults.
	w = do(t, h, http.MethodGet, "/v1/tenants/other", "", "")
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Override || info.Quotas.Weight != 1 {
		t.Fatalf("unknown tenant = %+v", info)
	}

	w = do(t, h, http.MethodDelete, "/v1/tenants/acme", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", w.Code, w.Body)
	}
	w = do(t, h, http.MethodGet, "/v1/tenants/acme", "", "")
	json.Unmarshal(w.Body.Bytes(), &info)
	if info.Override {
		t.Fatal("override survived delete")
	}

	if w := do(t, h, http.MethodPut, "/v1/tenants/Bad.Id", "", `{}`); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid id: %d", w.Code)
	}
}

func TestRoutingAndMethodErrors(t *testing.T) {
	h := testHandler(t)
	cases := []struct {
		method, path, ten, body string
		want                    int
	}{
		{http.MethodGet, "/v1/other", "", "", http.StatusNotFound},
		{http.MethodPost, "/v1/tenants", "", "{}", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/tenants/acme", "", "{}", http.StatusMethodNotAllowed},
		{http.MethodPut, "/v1/tenants/acme/report", "", "{}", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/tenants/Bad.Id", "", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/tenants/Bad.Id/report", "", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/tenants/acme", "Bad.Header", "", http.StatusBadRequest},
		{http.MethodPut, "/v1/tenants/acme", "", `{"weight":-1}`, http.StatusBadRequest},
		{http.MethodPut, "/v1/tenants/acme", "", `not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := do(t, h, c.method, c.path, c.ten, c.body); w.Code != c.want {
			t.Errorf("%s %s (tenant %q): %d, want %d: %s", c.method, c.path, c.ten, w.Code, c.want, w.Body)
		}
	}
	// A tenant-scoped PUT/DELETE on another tenant's id reads as absent.
	if w := do(t, h, http.MethodPut, "/v1/tenants/other", "self", "{}"); w.Code != http.StatusNotFound {
		t.Errorf("cross-tenant put: %d, want 404", w.Code)
	}
	if w := do(t, h, http.MethodDelete, "/v1/tenants/other", "self", ""); w.Code != http.StatusNotFound {
		t.Errorf("cross-tenant delete: %d, want 404", w.Code)
	}
}

func TestTenantScopedVisibility(t *testing.T) {
	h := testHandler(t)
	// A tenant-scoped request may address only itself; any other id
	// reads as absent.
	if w := do(t, h, http.MethodGet, "/v1/tenants/self", "self", ""); w.Code != http.StatusOK {
		t.Fatalf("own id: %d", w.Code)
	}
	if w := do(t, h, http.MethodGet, "/v1/tenants/other", "self", ""); w.Code != http.StatusNotFound {
		t.Fatalf("other id: %d, want 404", w.Code)
	}
	if w := do(t, h, http.MethodGet, "/v1/tenants/other/report", "self", ""); w.Code != http.StatusNotFound {
		t.Fatalf("other report: %d, want 404", w.Code)
	}
}

// buildStack assembles a full two-tenant workload — datasets loaded,
// monitors registered, identical rows ingested — on an engine with the
// given worker count, ingesting tenants in the given order. Everything
// about the workload is fixed; only the scheduling environment varies.
func buildStack(t *testing.T, workers int, order []string) *Handler {
	t.Helper()
	tenants := tenant.NewRegistry(tenant.Quotas{})
	engine := serve.NewEngine(serve.Config{Workers: workers, QueueSize: 64, TenantQuotas: tenants.Quotas})
	t.Cleanup(engine.Close)
	datasets := dataset.NewRegistry(64 << 20)
	datasets.UseQuotas(tenants.Quotas)
	monitors, err := monitor.NewRegistry(monitor.RegistryConfig{
		Engine:   engine,
		Datasets: datasets,
		Quotas:   tenants.Quotas,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(monitors.Close)

	rows, err := synth.Credit(synth.CreditConfig{N: 300, GroupBFraction: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, ten := range order {
		if _, err := datasets.PutAs(ten, ten+"-data", rows); err != nil {
			t.Fatalf("PutAs(%s): %v", ten, err)
		}
		m, err := monitors.Register(monitor.Spec{
			Name:   "stream",
			Tenant: ten,
			Policy: serve.DefaultPolicy(),
			Train:  core.TrainSpec{Target: "approved", Sensitive: "group", Protected: "B", Reference: "A"},
			Window: monitor.WindowConfig{WidthMS: 100},
			Seed:   1,
		})
		if err != nil {
			t.Fatalf("Register(%s): %v", ten, err)
		}
		for i := int64(0); i < 3; i++ {
			if err := m.Ingest(stream.Arrival{TimeMS: i * 100, Rows: rows}); err != nil {
				t.Fatalf("Ingest(%s): %v", ten, err)
			}
		}
		m.Flush()
	}
	return &Handler{Tenants: tenants, Datasets: datasets, Monitors: monitors}
}

// TestReportByteIdentityAcrossScheduling is the property test for the
// report's determinism guarantee: the same two-tenant workload run
// under different worker counts and different tenant interleavings
// must render byte-identical responsibility reports — audit results
// and the roll-ups built from them never depend on scheduling.
func TestReportByteIdentityAcrossScheduling(t *testing.T) {
	a := buildStack(t, 1, []string{"alpha", "beta"})
	b := buildStack(t, 4, []string{"beta", "alpha"})
	for _, ten := range []string{"alpha", "beta"} {
		ra, err := json.Marshal(a.BuildReport(ten))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := json.Marshal(b.BuildReport(ten))
		if err != nil {
			t.Fatal(err)
		}
		if string(ra) != string(rb) {
			t.Fatalf("report for %s differs across scheduling:\n%s\n---\n%s", ten, ra, rb)
		}
	}
}

func TestReportContent(t *testing.T) {
	h := buildStack(t, 2, []string{"alpha"})
	w := do(t, h, http.MethodGet, "/v1/tenants/alpha/report", "alpha", "")
	if w.Code != http.StatusOK {
		t.Fatalf("report: %d %s", w.Code, w.Body)
	}
	var rep Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Tenant != "alpha" {
		t.Fatalf("tenant = %q", rep.Tenant)
	}
	if len(rep.Datasets) != 1 || rep.Datasets[0].Name != "alpha-data" {
		t.Fatalf("datasets = %+v", rep.Datasets)
	}
	if !strings.Contains(rep.Datasets[0].Datasheet, "# Datasheet") {
		t.Fatal("datasheet card missing")
	}
	if len(rep.Monitors) != 1 || rep.Monitors[0].Name != "stream" {
		t.Fatalf("monitors = %+v", rep.Monitors)
	}
	mon := rep.Monitors[0]
	if mon.Audits == 0 || mon.LastGrade == nil {
		t.Fatalf("monitor not audited: %+v", mon)
	}
	if !strings.Contains(mon.ModelCard, "# Model Card") {
		t.Fatal("model card missing")
	}
	// Another tenant's report renders empty sections, not alpha's data.
	var other Report
	w = do(t, h, http.MethodGet, "/v1/tenants/beta/report", "", "")
	if err := json.Unmarshal(w.Body.Bytes(), &other); err != nil {
		t.Fatal(err)
	}
	if len(other.Datasets) != 0 || len(other.Monitors) != 0 {
		t.Fatalf("beta sees alpha's resources: %+v", other)
	}
}
