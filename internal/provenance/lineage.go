// Package provenance implements the accountability half of FACT Q4: "the
// journey from raw data to meaningful inferences involves multiple steps
// and actors, thus accountability and comprehensibility are essential for
// transparency."
//
// It records every pipeline step in a lineage DAG whose nodes carry
// SHA-256 content hashes, keeps a hash-chained append-only audit log that
// makes tampering detectable, and renders model cards / dataset
// datasheets from the recorded facts.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/responsible-data-science/rds/internal/frame"
)

// NodeKind classifies lineage nodes.
type NodeKind string

// Node kinds.
const (
	KindDataset   NodeKind = "dataset"
	KindTransform NodeKind = "transform"
	KindModel     NodeKind = "model"
	KindDecision  NodeKind = "decision"
	KindReport    NodeKind = "report"
)

// Node is one step in the lineage DAG.
type Node struct {
	ID      string
	Kind    NodeKind
	Label   string
	Hash    string            // content hash (hex SHA-256)
	Inputs  []string          // parent node IDs
	Meta    map[string]string // free-form facts (seed, params, actor)
	Created time.Time
}

// Graph is an append-only lineage DAG. Not safe for concurrent use.
type Graph struct {
	nodes map[string]*Node
	order []string // insertion order (a valid topological order)
	clock func() time.Time
}

// NewGraph creates an empty lineage graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[string]*Node{}, clock: time.Now}
}

// SetClock overrides the timestamp source (tests).
func (g *Graph) SetClock(clock func() time.Time) { g.clock = clock }

// Add appends a node. All inputs must already exist (enforcing acyclicity
// by construction), and IDs must be unique.
func (g *Graph) Add(id string, kind NodeKind, label, hash string, inputs []string, meta map[string]string) (*Node, error) {
	if id == "" {
		return nil, fmt.Errorf("provenance: empty node id")
	}
	if _, dup := g.nodes[id]; dup {
		return nil, fmt.Errorf("provenance: duplicate node %q", id)
	}
	for _, in := range inputs {
		if _, ok := g.nodes[in]; !ok {
			return nil, fmt.Errorf("provenance: node %q references unknown input %q", id, in)
		}
	}
	m := map[string]string{}
	for k, v := range meta {
		m[k] = v
	}
	n := &Node{
		ID:      id,
		Kind:    kind,
		Label:   label,
		Hash:    hash,
		Inputs:  append([]string(nil), inputs...),
		Meta:    m,
		Created: g.clock(),
	}
	g.nodes[id] = n
	g.order = append(g.order, id)
	return n, nil
}

// Get returns a node by ID.
func (g *Graph) Get(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.order) }

// Nodes returns the nodes in insertion (topological) order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.order))
	for i, id := range g.order {
		out[i] = g.nodes[id]
	}
	return out
}

// Ancestry returns every transitive input of the node, deduplicated, in
// topological order — the full provenance of one artifact.
func (g *Graph) Ancestry(id string) ([]*Node, error) {
	if _, ok := g.nodes[id]; !ok {
		return nil, fmt.Errorf("provenance: unknown node %q", id)
	}
	seen := map[string]bool{}
	var visit func(string)
	visit = func(cur string) {
		for _, in := range g.nodes[cur].Inputs {
			if !seen[in] {
				seen[in] = true
				visit(in)
			}
		}
	}
	visit(id)
	var out []*Node
	for _, nid := range g.order {
		if seen[nid] {
			out = append(out, g.nodes[nid])
		}
	}
	return out, nil
}

// Leaves returns nodes that no other node consumes (current artifacts).
func (g *Graph) Leaves() []*Node {
	consumed := map[string]bool{}
	for _, id := range g.order {
		for _, in := range g.nodes[id].Inputs {
			consumed[in] = true
		}
	}
	var out []*Node
	for _, id := range g.order {
		if !consumed[id] {
			out = append(out, g.nodes[id])
		}
	}
	return out
}

// Render prints the graph as an indented text tree, one line per node.
func (g *Graph) Render() string {
	var b strings.Builder
	for _, id := range g.order {
		n := g.nodes[id]
		fmt.Fprintf(&b, "%-10s %-24s %s", n.Kind, n.ID, n.Label)
		if len(n.Inputs) > 0 {
			fmt.Fprintf(&b, "  <- %s", strings.Join(n.Inputs, ", "))
		}
		if n.Hash != "" {
			fmt.Fprintf(&b, "  [%.12s]", n.Hash)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HashFrame computes the canonical content hash of a frame (SHA-256 over
// names, dtypes, null masks and values — see frame.Hash). Identical
// frames hash identically; any value, column, or order change produces a
// different hash.
func HashFrame(f *frame.Frame) (string, error) {
	if f == nil {
		return "", fmt.Errorf("provenance: hashing nil frame")
	}
	return f.Hash(), nil
}

// HashBytes computes the hex SHA-256 of raw bytes.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// HashStrings hashes a list of strings with length framing (no
// concatenation ambiguity).
func HashStrings(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SortedMetaString renders metadata deterministically for hashing/display.
func SortedMetaString(meta map[string]string) string {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, meta[k])
	}
	return b.String()
}
