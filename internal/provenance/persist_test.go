package provenance

import (
	"strings"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add("raw", KindDataset, "raw", "h1", nil, map[string]string{"seed": "7"})
	g.Add("clean", KindTransform, "cleaned", "h2", []string{"raw"}, nil)
	g.Add("model", KindModel, "scorer", "h3", []string{"clean"}, nil)

	var buf strings.Builder
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadGraphJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3 {
		t.Fatalf("loaded %d nodes", loaded.Len())
	}
	n, ok := loaded.Get("clean")
	if !ok || n.Inputs[0] != "raw" || n.Kind != KindTransform {
		t.Fatalf("node content lost: %+v", n)
	}
	if m, _ := loaded.Get("raw"); m.Meta["seed"] != "7" {
		t.Fatal("meta lost")
	}
	anc, err := loaded.Ancestry("model")
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 2 {
		t.Fatalf("ancestry after reload = %d", len(anc))
	}
}

func TestReadGraphJSONRejectsBadDocuments(t *testing.T) {
	// Input referencing a later (unknown) node must be rejected.
	doc := `{"nodes":[{"ID":"b","Kind":"model","Inputs":["a"]},{"ID":"a","Kind":"dataset"}]}`
	if _, err := ReadGraphJSON(strings.NewReader(doc)); err == nil {
		t.Fatal("forward reference accepted")
	}
	if _, err := ReadGraphJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	dup := `{"nodes":[{"ID":"a","Kind":"dataset"},{"ID":"a","Kind":"dataset"}]}`
	if _, err := ReadGraphJSON(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestAuditJSONRoundTrip(t *testing.T) {
	l := NewAuditLog()
	l.Append("alice", "load", "x.csv", "n=5")
	l.Append("bob", "train", "m1", "")
	var buf strings.Builder
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadAuditJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d entries", loaded.Len())
	}
	if loaded.Verify() != -1 {
		t.Fatal("reloaded chain broken")
	}
	// Appending after reload continues the chain.
	loaded.Append("carol", "audit", "m1", "")
	if loaded.Verify() != -1 {
		t.Fatal("chain broken after post-reload append")
	}
}

func TestReadAuditJSONRejectsTampered(t *testing.T) {
	l := NewAuditLog()
	l.Append("a", "x", "s", "secret")
	l.Append("a", "y", "s", "")
	var buf strings.Builder
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	forged := strings.Replace(buf.String(), "secret", "forged", 1)
	if _, err := ReadAuditJSON(strings.NewReader(forged)); err == nil {
		t.Fatal("tampered document accepted")
	}
	if !strings.Contains(buf.String(), "secret") {
		t.Fatal("test setup: details not serialized")
	}
}
