package provenance

import (
	"encoding/json"
	"fmt"
	"io"
)

// Persistence: lineage graphs and audit logs serialize to JSON so runs
// survive the process. Audit logs re-verify their hash chain on load —
// storage is untrusted by design.

// graphDoc is the serialized form of a Graph.
type graphDoc struct {
	Nodes []*Node `json:"nodes"`
}

// WriteJSON serializes the graph (insertion order preserved).
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(graphDoc{Nodes: g.Nodes()}); err != nil {
		return fmt.Errorf("provenance: encoding graph: %w", err)
	}
	return nil
}

// ReadGraphJSON deserializes a graph, re-validating structure: unique
// IDs, inputs resolving to earlier nodes.
func ReadGraphJSON(r io.Reader) (*Graph, error) {
	var doc graphDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("provenance: decoding graph: %w", err)
	}
	g := NewGraph()
	for _, n := range doc.Nodes {
		if n == nil {
			return nil, fmt.Errorf("provenance: null node in graph document")
		}
		added, err := g.Add(n.ID, n.Kind, n.Label, n.Hash, n.Inputs, n.Meta)
		if err != nil {
			return nil, fmt.Errorf("provenance: rejecting stored graph: %w", err)
		}
		added.Created = n.Created
	}
	return g, nil
}

// WriteJSON serializes the audit log.
func (l *AuditLog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(l.Entries()); err != nil {
		return fmt.Errorf("provenance: encoding audit log: %w", err)
	}
	return nil
}

// ReadAuditJSON deserializes an audit log and verifies the hash chain,
// refusing tampered documents with the index of the first bad entry.
func ReadAuditJSON(r io.Reader) (*AuditLog, error) {
	var entries []AuditEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("provenance: decoding audit log: %w", err)
	}
	if bad := VerifyEntries(entries); bad != -1 {
		return nil, fmt.Errorf("provenance: stored audit log tampered at entry %d", bad)
	}
	l := NewAuditLog()
	l.entries = entries
	return l, nil
}
