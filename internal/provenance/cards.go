package provenance

import (
	"fmt"
	"strings"
)

// ModelCard is the transparency artifact accompanying a trained model
// (Mitchell et al.'s "Model Cards for Model Reporting", instantiated for
// this toolkit). Every field is plain text so the card renders anywhere.
type ModelCard struct {
	Name           string
	Version        string
	ModelType      string
	IntendedUse    string
	TrainingData   string // description + content hash
	Features       []string
	ExcludedFields []string // e.g. the sensitive attribute
	Metrics        map[string]float64
	FairnessNotes  string
	PrivacyNotes   string
	Limitations    string
	LineageID      string // node ID in the lineage graph
}

// Validate checks that the card carries the minimum accountable content.
func (c *ModelCard) Validate() error {
	var missing []string
	if c.Name == "" {
		missing = append(missing, "Name")
	}
	if c.ModelType == "" {
		missing = append(missing, "ModelType")
	}
	if c.IntendedUse == "" {
		missing = append(missing, "IntendedUse")
	}
	if c.TrainingData == "" {
		missing = append(missing, "TrainingData")
	}
	if len(missing) > 0 {
		return fmt.Errorf("provenance: model card missing %s", strings.Join(missing, ", "))
	}
	return nil
}

// Render formats the card as Markdown.
func (c *ModelCard) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Model Card: %s", c.Name)
	if c.Version != "" {
		fmt.Fprintf(&b, " (v%s)", c.Version)
	}
	b.WriteString("\n\n")
	section := func(title, body string) {
		if body == "" {
			return
		}
		fmt.Fprintf(&b, "## %s\n%s\n\n", title, body)
	}
	section("Model type", c.ModelType)
	section("Intended use", c.IntendedUse)
	section("Training data", c.TrainingData)
	if len(c.Features) > 0 {
		section("Features", strings.Join(c.Features, ", "))
	}
	if len(c.ExcludedFields) > 0 {
		section("Excluded fields", strings.Join(c.ExcludedFields, ", "))
	}
	if len(c.Metrics) > 0 {
		b.WriteString("## Metrics\n")
		for _, k := range sortedKeys(c.Metrics) {
			fmt.Fprintf(&b, "- %s: %.4f\n", k, c.Metrics[k])
		}
		b.WriteString("\n")
	}
	section("Fairness", c.FairnessNotes)
	section("Privacy", c.PrivacyNotes)
	section("Limitations", c.Limitations)
	if c.LineageID != "" {
		section("Lineage", "node "+c.LineageID)
	}
	return b.String()
}

// Datasheet is the dataset-side transparency artifact (Gebru et al.'s
// "Datasheets for Datasets", minimal form).
type Datasheet struct {
	Name           string
	Hash           string
	Rows, Cols     int
	Collection     string // how the data came to be (for synth: generator + seed)
	SensitiveField string
	Consent        string // consent/purpose basis
	Caveats        string
}

// Render formats the datasheet as Markdown.
func (d *Datasheet) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Datasheet: %s\n\n", d.Name)
	fmt.Fprintf(&b, "- Rows: %d, Columns: %d\n", d.Rows, d.Cols)
	if d.Hash != "" {
		fmt.Fprintf(&b, "- Content hash: %s\n", d.Hash)
	}
	if d.Collection != "" {
		fmt.Fprintf(&b, "- Collection: %s\n", d.Collection)
	}
	if d.SensitiveField != "" {
		fmt.Fprintf(&b, "- Sensitive field: %s\n", d.SensitiveField)
	}
	if d.Consent != "" {
		fmt.Fprintf(&b, "- Consent basis: %s\n", d.Consent)
	}
	if d.Caveats != "" {
		fmt.Fprintf(&b, "- Caveats: %s\n", d.Caveats)
	}
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Small n; insertion sort avoids another import.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
