package provenance

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/responsible-data-science/rds/internal/frame"
)

func TestGraphAddAndAncestry(t *testing.T) {
	g := NewGraph()
	if _, err := g.Add("raw", KindDataset, "raw data", "h1", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("clean", KindTransform, "cleaned", "h2", []string{"raw"}, map[string]string{"op": "dropna"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("model", KindModel, "logistic", "h3", []string{"clean"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("decision", KindDecision, "loan decisions", "h4", []string{"model", "clean"}, nil); err != nil {
		t.Fatal(err)
	}
	anc, err := g.Ancestry("decision")
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 3 {
		t.Fatalf("ancestry = %d nodes", len(anc))
	}
	// Topological: raw before clean before model.
	if anc[0].ID != "raw" || anc[1].ID != "clean" {
		t.Fatalf("ancestry order: %s, %s", anc[0].ID, anc[1].ID)
	}
	leaves := g.Leaves()
	if len(leaves) != 1 || leaves[0].ID != "decision" {
		t.Fatalf("leaves = %v", leaves)
	}
	if g.Len() != 4 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestGraphRejectsBadEdges(t *testing.T) {
	g := NewGraph()
	if _, err := g.Add("a", KindDataset, "", "", []string{"ghost"}, nil); err == nil {
		t.Fatal("unknown input accepted")
	}
	if _, err := g.Add("", KindDataset, "", "", nil, nil); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := g.Add("a", KindDataset, "", "", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add("a", KindDataset, "", "", nil, nil); err == nil {
		t.Fatal("duplicate id accepted")
	}
	// Cycles are impossible by construction: a node cannot reference a
	// node added later. (Self-reference is also rejected.)
	if _, err := g.Add("self", KindDataset, "", "", []string{"self"}, nil); err == nil {
		t.Fatal("self-reference accepted")
	}
}

func TestGraphMetaCopied(t *testing.T) {
	g := NewGraph()
	meta := map[string]string{"seed": "1"}
	n, err := g.Add("a", KindDataset, "", "", nil, meta)
	if err != nil {
		t.Fatal(err)
	}
	meta["seed"] = "mutated"
	if n.Meta["seed"] != "1" {
		t.Fatal("meta not copied")
	}
}

func TestGraphRender(t *testing.T) {
	g := NewGraph()
	g.Add("raw", KindDataset, "raw credit data", "abcdef1234567890", nil, nil)
	g.Add("model", KindModel, "scorer", "", []string{"raw"}, nil)
	out := g.Render()
	if !strings.Contains(out, "raw credit data") || !strings.Contains(out, "<- raw") {
		t.Fatalf("render = %q", out)
	}
	if !strings.Contains(out, "abcdef123456") {
		t.Fatal("hash prefix missing from render")
	}
}

func TestHashFrameSensitivity(t *testing.T) {
	f1 := frame.MustNew(frame.NewInt64("a", []int64{1, 2}))
	f2 := frame.MustNew(frame.NewInt64("a", []int64{1, 2}))
	f3 := frame.MustNew(frame.NewInt64("a", []int64{1, 3}))
	h1, err := HashFrame(f1)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := HashFrame(f2)
	h3, _ := HashFrame(f3)
	if h1 != h2 {
		t.Fatal("identical frames hash differently")
	}
	if h1 == h3 {
		t.Fatal("different frames hash identically")
	}
	if len(h1) != 64 {
		t.Fatalf("hash length %d", len(h1))
	}
}

func TestHashStringsFraming(t *testing.T) {
	// Length framing must distinguish ("ab","c") from ("a","bc").
	if HashStrings("ab", "c") == HashStrings("a", "bc") {
		t.Fatal("concatenation ambiguity")
	}
	check := func(a, b string) bool {
		if a == b {
			return true
		}
		return HashStrings(a) != HashStrings(b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAuditLogChain(t *testing.T) {
	l := NewAuditLog()
	ts := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { ts = ts.Add(time.Second); return ts })
	l.Append("alice", "load", "credit.csv", "n=5000")
	l.Append("pipeline", "train", "model-1", "logistic")
	l.Append("bob", "decide", "batch-7", "approved 132")
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if bad := l.Verify(); bad != -1 {
		t.Fatalf("fresh log corrupt at %d", bad)
	}
	// Entries chain: each PrevHash is the prior Hash.
	es := l.Entries()
	if es[1].PrevHash != es[0].Hash || es[2].PrevHash != es[1].Hash {
		t.Fatal("chain links wrong")
	}
}

func TestAuditLogDetectsTamper(t *testing.T) {
	l := NewAuditLog()
	l.Append("a", "x", "s", "")
	l.Append("a", "y", "s", "")
	l.Append("a", "z", "s", "")
	es := l.Entries()

	// Mutate a middle entry's details.
	tampered := append([]AuditEntry(nil), es...)
	tampered[1].Details = "forged"
	if bad := VerifyEntries(tampered); bad != 1 {
		t.Fatalf("tamper detected at %d, want 1", bad)
	}
	// Recomputing the entry's own hash still breaks the next link.
	tampered[1].Hash = ""
	tampered[1].Hash = entryHashForTest(tampered[1])
	if bad := VerifyEntries(tampered); bad != 2 {
		t.Fatalf("re-hashed tamper detected at %d, want 2", bad)
	}
	// Deleting an entry breaks sequencing.
	deleted := append(append([]AuditEntry(nil), es[:1]...), es[2:]...)
	if bad := VerifyEntries(deleted); bad != 1 {
		t.Fatalf("deletion detected at %d, want 1", bad)
	}
	// Untouched copy verifies.
	if bad := VerifyEntries(es); bad != -1 {
		t.Fatalf("clean copy corrupt at %d", bad)
	}
}

// entryHashForTest re-exports the internal hash for the tamper test.
func entryHashForTest(e AuditEntry) string { return entryHash(e) }

func TestAuditLogRender(t *testing.T) {
	l := NewAuditLog()
	l.Append("alice", "load", "data.csv", "rows=10")
	out := l.Render()
	if !strings.Contains(out, "alice") || !strings.Contains(out, "rows=10") {
		t.Fatalf("render = %q", out)
	}
}

func TestModelCard(t *testing.T) {
	c := &ModelCard{
		Name:           "credit-scorer",
		Version:        "1.0",
		ModelType:      "logistic regression",
		IntendedUse:    "loan pre-screening",
		TrainingData:   "synth credit v1 [abc123]",
		Features:       []string{"income", "debt_ratio"},
		ExcludedFields: []string{"group"},
		Metrics:        map[string]float64{"accuracy": 0.91, "auc": 0.95},
		FairnessNotes:  "DI 0.83 after reweighing",
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	for _, want := range []string{"credit-scorer", "logistic regression", "accuracy: 0.9100", "group", "DI 0.83"} {
		if !strings.Contains(out, want) {
			t.Fatalf("card missing %q:\n%s", want, out)
		}
	}
	// Metrics render in sorted key order.
	if strings.Index(out, "accuracy") > strings.Index(out, "auc") {
		t.Fatal("metrics not sorted")
	}
}

func TestModelCardValidate(t *testing.T) {
	c := &ModelCard{Name: "x"}
	err := c.Validate()
	if err == nil {
		t.Fatal("incomplete card validated")
	}
	for _, want := range []string{"ModelType", "IntendedUse", "TrainingData"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestDatasheetRender(t *testing.T) {
	d := &Datasheet{
		Name: "hospital-v1", Hash: "deadbeef", Rows: 5000, Cols: 7,
		Collection:     "synth.Hospital seed=21",
		SensitiveField: "diagnosis",
		Consent:        "synthetic; no real patients",
	}
	out := d.Render()
	for _, want := range []string{"hospital-v1", "deadbeef", "5000", "diagnosis", "synthetic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("datasheet missing %q", want)
		}
	}
}

func TestSortedMetaString(t *testing.T) {
	s := SortedMetaString(map[string]string{"b": "2", "a": "1"})
	if s != "a=1 b=2" {
		t.Fatalf("meta = %q", s)
	}
}
