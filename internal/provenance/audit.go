package provenance

import (
	"fmt"
	"strings"
	"time"
)

// AuditEntry is one event in the tamper-evident log. Hash covers the
// previous entry's hash plus this entry's fields, forming a chain: editing
// or deleting any historical entry breaks every later hash.
type AuditEntry struct {
	Seq      int
	Time     time.Time
	Actor    string
	Action   string
	Subject  string
	Details  string
	PrevHash string
	Hash     string
}

// AuditLog is an append-only, hash-chained event log. Not safe for
// concurrent use; wrap with a mutex if shared.
type AuditLog struct {
	entries []AuditEntry
	clock   func() time.Time
}

// NewAuditLog creates an empty log.
func NewAuditLog() *AuditLog {
	return &AuditLog{clock: time.Now}
}

// SetClock overrides the timestamp source (tests).
func (l *AuditLog) SetClock(clock func() time.Time) { l.clock = clock }

// genesisHash anchors the chain.
const genesisHash = "0000000000000000000000000000000000000000000000000000000000000000"

// Append records an event and returns the new entry.
func (l *AuditLog) Append(actor, action, subject, details string) AuditEntry {
	prev := genesisHash
	if len(l.entries) > 0 {
		prev = l.entries[len(l.entries)-1].Hash
	}
	e := AuditEntry{
		Seq:      len(l.entries),
		Time:     l.clock(),
		Actor:    actor,
		Action:   action,
		Subject:  subject,
		Details:  details,
		PrevHash: prev,
	}
	e.Hash = entryHash(e)
	l.entries = append(l.entries, e)
	return e
}

func entryHash(e AuditEntry) string {
	return HashStrings(
		fmt.Sprintf("%d", e.Seq),
		e.Time.UTC().Format(time.RFC3339Nano),
		e.Actor,
		e.Action,
		e.Subject,
		e.Details,
		e.PrevHash,
	)
}

// Len returns the number of entries.
func (l *AuditLog) Len() int { return len(l.entries) }

// Entries returns a copy of the log.
func (l *AuditLog) Entries() []AuditEntry {
	return append([]AuditEntry(nil), l.entries...)
}

// Verify walks the chain and returns the index of the first corrupted
// entry, or -1 if the log is intact.
func (l *AuditLog) Verify() int {
	prev := genesisHash
	for i, e := range l.entries {
		if e.Seq != i || e.PrevHash != prev || entryHash(e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// VerifyEntries checks an externally supplied chain (e.g. read back from
// storage) with the same rules.
func VerifyEntries(entries []AuditEntry) int {
	prev := genesisHash
	for i, e := range entries {
		if e.Seq != i || e.PrevHash != prev || entryHash(e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// Render prints the log, one line per entry.
func (l *AuditLog) Render() string {
	var b strings.Builder
	for _, e := range l.entries {
		fmt.Fprintf(&b, "#%04d %s %-12s %-16s %s", e.Seq, e.Time.UTC().Format(time.RFC3339), e.Actor, e.Action, e.Subject)
		if e.Details != "" {
			fmt.Fprintf(&b, " (%s)", e.Details)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
