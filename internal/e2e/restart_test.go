// Package e2e holds cross-layer end-to-end tests that assemble the
// full service the way cmd/rds-serve does — engine, dataset registry,
// monitor registry, HTTP handler, durable store — and drive it over
// HTTP. The restart test is the durability acceptance test: state
// written through the storage port must survive a hard stop and
// restore bit-identically.
package e2e

import (
	"bytes"
	"encoding/json"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/monitor"
	"github.com/responsible-data-science/rds/internal/pipeline"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/store/fsjson"
	"github.com/responsible-data-science/rds/internal/synth"
	"github.com/responsible-data-science/rds/internal/tenant"
	"github.com/responsible-data-science/rds/internal/tenantapi"
)

// service is one booted instance of the full stack over a state dir.
type service struct {
	srv       *httptest.Server
	engine    *serve.Engine
	registry  *monitor.Registry
	tenants   *tenant.Registry
	pipelines *pipeline.Registry
}

// boot assembles the stack exactly as cmd/rds-serve does: open the
// state store, restore tenant quotas, then datasets, then monitors,
// then pipelines, and mount the handler with every plane (including
// /v1/tenants and /v1/pipelines).
func boot(t *testing.T, stateDir string) *service {
	t.Helper()
	st, err := fsjson.Open(stateDir)
	if err != nil {
		t.Fatalf("fsjson.Open(%s): %v", stateDir, err)
	}
	tenants := tenant.NewRegistry(tenant.Quotas{})
	if err := tenants.AttachStore(st); err != nil {
		t.Fatalf("tenant AttachStore: %v", err)
	}
	engine := serve.NewEngine(serve.Config{Workers: 2, QueueSize: 32, JobTimeout: time.Minute, TenantQuotas: tenants.Quotas})
	datasets := dataset.NewRegistry(0)
	datasets.UseQuotas(tenants.Quotas)
	if err := datasets.AttachStore(st); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	registry, err := monitor.NewRegistry(monitor.RegistryConfig{
		Engine:   engine,
		Datasets: datasets,
		Store:    st,
		Quotas:   tenants.Quotas,
	})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	if _, err := registry.Restore(); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	pipelines := pipeline.NewRegistry(engine, datasets, tenants.Quotas)
	if err := pipelines.AttachStore(st); err != nil {
		t.Fatalf("pipeline AttachStore: %v", err)
	}
	handler := serve.NewHandler(engine)
	handler.Datasets = dataset.NewHandler(datasets)
	handler.Monitors = monitor.NewHandler(registry)
	handler.MonitorMetrics = func() any { return registry.Metrics() }
	handler.Pipelines = pipeline.NewHandler(pipelines)
	handler.Tenants = &tenantapi.Handler{Tenants: tenants, Datasets: datasets, Monitors: registry, Pipelines: pipelines}
	return &service{srv: httptest.NewServer(handler), engine: engine, registry: registry, tenants: tenants, pipelines: pipelines}
}

// hardStop kills the instance without any graceful persistence pass —
// the moral equivalent of kill -9 for in-process state. Durable state
// must already be on disk; nothing is flushed here.
func (s *service) hardStop() {
	s.srv.Close()
	s.engine.Close()
}

// post sends a JSON POST and decodes the response into out.
func post(t *testing.T, url, contentType string, body []byte, out any) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, raw, err)
		}
	}
}

// get fetches a URL and decodes the JSON response into out.
func get(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
}

// driftOf extracts the drift-scored (non-baseline) entries from a
// history payload, keyed by window index.
func driftOf(entries []monitor.WindowEntry) map[int64]*monitor.DriftReport {
	out := map[int64]*monitor.DriftReport{}
	for _, e := range entries {
		if e.Drift != nil {
			out[e.Window] = e.Drift
		}
	}
	return out
}

// TestRestartEndToEnd is the PR's acceptance test: boot the service
// with a state dir, upload a dataset, register a baseline_ref monitor,
// push traffic, hard-stop mid-traffic, reboot over the same dir, and
// assert the monitor, its pin, its baseline profile, and audit-by-ref
// all resume — with drift scores bit-identical to the first life.
func TestRestartEndToEnd(t *testing.T) {
	stateDir := t.TempDir()

	baseline, err := synth.Credit(synth.CreditConfig{N: 800, Bias: 0, GroupBFraction: 0.35, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseCSV, err := baseline.CSVString()
	if err != nil {
		t.Fatal(err)
	}
	window, err := synth.Credit(synth.CreditConfig{N: 400, Bias: 0.3, GroupBFraction: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	windowCSV, err := window.CSVString()
	if err != nil {
		t.Fatal(err)
	}

	// ---- First life -------------------------------------------------
	a := boot(t, stateDir)

	var ds struct {
		Ref string `json:"ref"`
	}
	post(t, a.srv.URL+"/v1/datasets", "text/csv", []byte(baseCSV), &ds)
	if ds.Ref == "" {
		t.Fatal("dataset upload returned no ref")
	}

	regBody, _ := json.Marshal(map[string]any{
		"name":         "credit-stream",
		"baseline_ref": ds.Ref,
		"window_ms":    100,
		"epochs":       5,
	})
	var mon struct {
		ID string `json:"id"`
	}
	post(t, a.srv.URL+"/v1/monitors", "application/json", regBody, &mon)

	ingest, _ := json.Marshal(map[string]any{"time_ms": 0, "csv": windowCSV, "flush": true})
	post(t, a.srv.URL+"/v1/monitors/"+mon.ID+"/ingest", "application/json", ingest, nil)

	var hist1 struct {
		History []monitor.WindowEntry `json:"history"`
	}
	get(t, a.srv.URL+"/v1/monitors/"+mon.ID+"/history", &hist1)
	drift1 := driftOf(hist1.History)
	if len(drift1) == 0 {
		t.Fatalf("first life produced no drift-scored windows: %+v", hist1)
	}

	// Mid-traffic: rows land in an open window that will never close.
	// They are in-flight state and are expected to die with the
	// process; everything registered/uploaded above must not.
	partial, _ := json.Marshal(map[string]any{"time_ms": 200, "csv": windowCSV})
	post(t, a.srv.URL+"/v1/monitors/"+mon.ID+"/ingest", "application/json", partial, nil)

	a.hardStop()

	// ---- Second life ------------------------------------------------
	b := boot(t, stateDir)
	defer b.hardStop()
	defer b.registry.Close()

	var sums []monitor.Summary
	get(t, b.srv.URL+"/v1/monitors", &sums)
	if len(sums) != 1 || sums[0].ID != mon.ID || sums[0].Name != "credit-stream" {
		t.Fatalf("monitors after restart = %+v, want %s restored", sums, mon.ID)
	}
	if !sums[0].BaselinePinned || sums[0].Degraded {
		t.Fatalf("restored monitor %+v, want baseline pinned and not degraded", sums[0])
	}

	// The baseline dataset survived and is audit-able by ref.
	var dmeta dataset.Meta
	get(t, b.srv.URL+"/v1/datasets/"+ds.Ref, &dmeta)
	if dmeta.Pins != 1 {
		t.Fatalf("baseline dataset %+v, want 1 pin from the restored monitor", dmeta)
	}
	auditBody, _ := json.Marshal(map[string]any{"dataset_ref": ds.Ref, "epochs": 5})
	var audit map[string]any
	post(t, b.srv.URL+"/v1/audit", "application/json", auditBody, &audit)

	// Bit-identity: replay the same window and compare drift scores.
	post(t, b.srv.URL+"/v1/monitors/"+mon.ID+"/ingest", "application/json", ingest, nil)
	var hist2 struct {
		History []monitor.WindowEntry `json:"history"`
	}
	get(t, b.srv.URL+"/v1/monitors/"+mon.ID+"/history", &hist2)
	drift2 := driftOf(hist2.History)
	for w, d1 := range drift1 {
		d2, ok := drift2[w]
		if !ok {
			t.Fatalf("window %d not drift-scored after restart (history %+v)", w, hist2)
		}
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("window %d drift diverged after restart:\nbefore %+v\nafter  %+v", w, d1, d2)
		}
	}

	// The in-flight partial window did not resurrect.
	if got := sums[0].RowsIngested; got != 0 {
		t.Fatalf("restored monitor claims %d pre-restart rows; counters are not durable", got)
	}
}

// TestRestartRefusesCorruptState proves the boot path (not just the
// adapter) refuses a damaged state dir with an error naming the file.
func TestRestartRefusesCorruptState(t *testing.T) {
	stateDir := t.TempDir()
	a := boot(t, stateDir)
	base, err := synth.Credit(synth.CreditConfig{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	csv, err := base.CSVString()
	if err != nil {
		t.Fatal(err)
	}
	var ds struct {
		Ref string `json:"ref"`
	}
	post(t, a.srv.URL+"/v1/datasets", "text/csv", []byte(csv), &ds)
	a.hardStop()

	// Truncate the dataset record on disk.
	matches, err := filepathGlob(stateDir, ds.Ref+".json")
	if err != nil || len(matches) != 1 {
		t.Fatalf("locating record: %v (%d matches)", err, len(matches))
	}
	if err := truncateFile(matches[0]); err != nil {
		t.Fatal(err)
	}

	st, err := fsjson.Open(stateDir)
	if err != nil {
		t.Fatalf("Open after record truncation should succeed (corruption surfaces at read): %v", err)
	}
	derr := dataset.NewRegistry(0).AttachStore(st)
	if derr == nil || !strings.Contains(derr.Error(), ds.Ref) {
		t.Fatalf("restore over truncated record: %v, want refusal naming %s", derr, ds.Ref)
	}
}

// filepathGlob finds name under root recursively.
func filepathGlob(root, name string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && d.Name() == name {
			out = append(out, path)
		}
		return err
	})
	return out, err
}

// truncateFile cuts the file to half its length — a torn write.
func truncateFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw[:len(raw)/2], 0o644)
}
