package e2e

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/pipeline"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/synth"
)

// pollRecord fetches the pipeline record until pred holds (or the
// deadline passes, failing the test).
func pollRecord(t *testing.T, url string, pred func(pipeline.Record) bool) pipeline.Record {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		var rec pipeline.Record
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
		if pred(rec) {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("record at %s never satisfied predicate: %+v", url, rec)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func auditDetail(t *testing.T, rec pipeline.Record, i int) pipeline.AuditDetail {
	t.Helper()
	var d pipeline.AuditDetail
	if err := json.Unmarshal(rec.Stages[i].Detail, &d); err != nil {
		t.Fatalf("stage %d detail: %v", i, err)
	}
	return d
}

// TestPipelineRestartEndToEnd is the staged-runtime durability
// acceptance test: submit the full seven-stage curriculum over HTTP,
// hard-stop the service mid-run, reboot over the same state dir, and
// assert the pipeline resumes at its last completed stage and finishes
// with the mitigated grades — byte-identical, stage for stage, to an
// uninterrupted run of the same spec.
func TestPipelineRestartEndToEnd(t *testing.T) {
	stateDir := t.TempDir()

	// Big enough that individual stages take real wall-clock time, so
	// the hard stop reliably lands mid-run.
	data, err := synth.Credit(synth.CreditConfig{N: 4000, Bias: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	csv, err := data.CSVString()
	if err != nil {
		t.Fatal(err)
	}

	// ---- First life -------------------------------------------------
	a := boot(t, stateDir)

	var ds struct {
		Ref string `json:"ref"`
	}
	post(t, a.srv.URL+"/v1/datasets", "text/csv", []byte(csv), &ds)

	// Choreograph a deterministic kill point with gate tasks on the
	// engine (boot runs 2 workers; stages and gates share the default
	// tenant's pipeline-class FIFO):
	//
	//	1. gate1 ×2 occupy both workers
	//	2. the pipeline's first stage queues behind them
	//	3. gate2 ×2 queue behind the first stage
	//	4. releasing gate1 lets exactly one stage run — its successor
	//	   queues behind the gate2 pair, which re-block both workers
	//	5. hardStop closes the scheduler; releasing gate2 lets the
	//	   workers drain the queued stage, whose readmission then fails
	//	   against the closed scheduler — the interrupted run has
	//	   exactly two completed stages durably on disk
	gate1, gate2 := make(chan struct{}), make(chan struct{})
	gate := func(ch chan struct{}) serve.TaskSpec {
		return serve.TaskSpec{Stages: []serve.Stage{{
			Run: func(ctx context.Context) (any, error) { <-ch; return nil, nil },
		}}}
	}
	for i := 0; i < 2; i++ {
		if _, err := a.engine.SubmitTask(gate(gate1)); err != nil {
			t.Fatal(err)
		}
	}
	spec, _ := json.Marshal(map[string]any{
		"dataset_ref": ds.Ref,
		"epochs":      60,
		"seed":        5,
	})
	var rec pipeline.Record
	post(t, a.srv.URL+"/v1/pipelines", "application/json", spec, &rec)
	if rec.ID == "" || len(rec.Spec.Stages) != 7 {
		t.Fatalf("submitted record = %+v, want the default 7-stage curriculum", rec)
	}
	for i := 0; i < 2; i++ {
		if _, err := a.engine.SubmitTask(gate(gate2)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate1)

	mid := pollRecord(t, a.srv.URL+"/v1/pipelines/"+rec.ID, func(r pipeline.Record) bool {
		return len(r.Stages) >= 1
	})
	if mid.Status == serve.StatusDone {
		t.Fatalf("run finished before the hard stop (stages %d)", len(mid.Stages))
	}
	// Pull the plug. Close blocks until the workers drain, so gate2
	// lifts once the scheduler has already stopped admitting.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate2)
	}()
	a.hardStop()

	// ---- Second life ------------------------------------------------
	b := boot(t, stateDir)
	defer b.hardStop()
	defer b.registry.Close()

	resumed := pollRecord(t, b.srv.URL+"/v1/pipelines/"+rec.ID, func(r pipeline.Record) bool {
		return r.Status == serve.StatusDone || r.Status == serve.StatusFailed
	})
	if resumed.Status != serve.StatusDone {
		t.Fatalf("resumed run = %s (%s)", resumed.Status, resumed.Error)
	}
	if resumed.Resumed < 1 {
		t.Fatalf("resumed counter = %d, want >= 1", resumed.Resumed)
	}
	if len(resumed.Stages) != 7 {
		t.Fatalf("resumed run completed %d stages, want 7", len(resumed.Stages))
	}

	// The pre-kill stage records stand untouched (same indices, done).
	for i, s := range resumed.Stages {
		if s.Index != i || s.Status != serve.StatusDone {
			t.Fatalf("stage %d after resume = %+v", i, s)
		}
	}

	// Curriculum semantics survived the kill: the mitigated re-audit
	// grades no worse than the unmitigated audit with better disparate
	// impact, and the private re-audit grades by the true attribute.
	initial, mitigated, private := auditDetail(t, resumed, 1), auditDetail(t, resumed, 3), auditDetail(t, resumed, 6)
	if initial.Overall != policy.Red {
		t.Fatalf("unmitigated audit on bias-1.0 data = %s, want red", initial.Overall)
	}
	if mitigated.Overall < initial.Overall || mitigated.DisparateImpact <= initial.DisparateImpact {
		t.Fatalf("mitigation lost across restart: %s DI %v -> %s DI %v",
			initial.Overall, initial.DisparateImpact, mitigated.Overall, mitigated.DisparateImpact)
	}
	if !private.TrueGroups || private.EpsSpent != 1.0 {
		t.Fatalf("private re-audit = %+v, want true-group audit with eps_spent 1", private)
	}

	// Deterministic-replay equivalence: an uninterrupted run of the
	// same spec in the second life produces byte-identical stage
	// details — the kill changed nothing but the Resumed counter.
	var fresh pipeline.Record
	post(t, b.srv.URL+"/v1/pipelines", "application/json", spec, &fresh)
	freshDone := pollRecord(t, b.srv.URL+"/v1/pipelines/"+fresh.ID, func(r pipeline.Record) bool {
		return r.Status == serve.StatusDone || r.Status == serve.StatusFailed
	})
	if freshDone.Status != serve.StatusDone {
		t.Fatalf("fresh run = %s (%s)", freshDone.Status, freshDone.Error)
	}
	for i := range freshDone.Stages {
		if string(freshDone.Stages[i].Detail) != string(resumed.Stages[i].Detail) {
			t.Fatalf("stage %d: resumed run diverged from uninterrupted run:\n%s\n%s",
				i, resumed.Stages[i].Detail, freshDone.Stages[i].Detail)
		}
	}

	// The tenant responsibility report rolls up the remediation plane.
	var report struct {
		Pipelines *struct {
			Total int `json:"total"`
			Live  int `json:"live"`
		} `json:"pipelines"`
	}
	get(t, b.srv.URL+"/v1/tenants/default/report", &report)
	if report.Pipelines == nil || report.Pipelines.Total < 2 {
		t.Fatalf("tenant report pipelines section = %+v, want both runs counted", report.Pipelines)
	}
}
