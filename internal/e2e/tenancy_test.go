package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/httpx"
	"github.com/responsible-data-science/rds/internal/monitor"
	"github.com/responsible-data-science/rds/internal/synth"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// tenantReq issues one HTTP request as the given tenant (empty = no
// header, i.e. the default tenant / operator) and returns the raw
// outcome. Unlike post/get it never fails on a non-2xx status, so
// tests can assert rejections and their headers.
func tenantReq(t *testing.T, method, url, ten, contentType string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	r, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		r.Header.Set("Content-Type", contentType)
	}
	if ten != "" {
		r.Header.Set(httpx.TenantHeader, ten)
	}
	resp, err := http.DefaultClient.Do(r)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw
}

// TestTenantIsolationEndToEnd is the multi-tenant acceptance test: a
// tenant that exhausts its own token bucket is answered 429 with a
// Retry-After header on every further submission, while another
// tenant's audits keep completing against the same engine — one
// tenant's saturation never bleeds into a neighbor's service.
func TestTenantIsolationEndToEnd(t *testing.T) {
	svc := boot(t, t.TempDir())
	defer svc.hardStop()

	// Throttle alpha hard: a burst of 2 submissions, then a refill so
	// slow the bucket is effectively empty for the rest of the test.
	code, _, body := tenantReq(t, http.MethodPut, svc.srv.URL+"/v1/tenants/alpha", "",
		"application/json", []byte(`{"rate_per_sec":0.001,"burst":2}`))
	if code != http.StatusOK {
		t.Fatalf("installing alpha quota: %d %s", code, body)
	}

	// Every audit uses a distinct seed: an identical request would be
	// answered from the report cache, which never reaches admission.
	seed := 0
	audit := func() []byte {
		seed++
		return []byte(fmt.Sprintf(`{"synthetic":{"n":300,"seed":%d}}`, seed))
	}
	for i := 0; i < 2; i++ {
		code, _, body := tenantReq(t, http.MethodPost, svc.srv.URL+"/v1/audit", "alpha", "application/json", audit())
		if code != http.StatusOK {
			t.Fatalf("alpha audit #%d within burst: %d %s", i, code, body)
		}
	}

	// Alpha is saturated: every further submission is 429 + Retry-After.
	assertThrottled := func(when string) {
		t.Helper()
		code, hdr, body := tenantReq(t, http.MethodPost, svc.srv.URL+"/v1/audit", "alpha", "application/json", audit())
		if code != http.StatusTooManyRequests {
			t.Fatalf("saturated alpha %s: %d %s, want 429", when, code, body)
		}
		secs, err := strconv.Atoi(hdr.Get("Retry-After"))
		if err != nil || secs < 1 {
			t.Fatalf("429 %s carries Retry-After %q, want an integer >= 1", when, hdr.Get("Retry-After"))
		}
	}
	assertThrottled("before beta's audits")

	// Beta's audits complete normally alongside alpha's rejections.
	for i := 0; i < 3; i++ {
		code, _, raw := tenantReq(t, http.MethodPost, svc.srv.URL+"/v1/audit", "beta", "application/json", audit())
		if code != http.StatusOK {
			t.Fatalf("beta audit #%d while alpha throttled: %d %s", i, code, raw)
		}
		var js struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(raw, &js); err != nil || js.Status != "done" {
			t.Fatalf("beta audit #%d status = %q (%v): %s", i, js.Status, err, raw)
		}
	}
	assertThrottled("after beta's audits")
}

// TestTenantStateSurvivesRestart proves the tenancy plane is durable:
// a quota override installed over HTTP and the ownership of a
// tenant's dataset and monitor all survive a hard stop — and the
// restored override still enforces.
func TestTenantStateSurvivesRestart(t *testing.T) {
	stateDir := t.TempDir()
	base, err := synth.Credit(synth.CreditConfig{N: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	csv, err := base.CSVString()
	if err != nil {
		t.Fatal(err)
	}

	// ---- First life -------------------------------------------------
	a := boot(t, stateDir)

	code, _, body := tenantReq(t, http.MethodPut, a.srv.URL+"/v1/tenants/acme", "",
		"application/json", []byte(`{"weight":2,"max_monitors":1}`))
	if code != http.StatusOK {
		t.Fatalf("installing acme quota: %d %s", code, body)
	}

	var ds struct {
		Ref string `json:"ref"`
	}
	code, _, raw := tenantReq(t, http.MethodPost, a.srv.URL+"/v1/datasets", "acme", "text/csv", []byte(csv))
	if code/100 != 2 {
		t.Fatalf("acme upload: %d %s", code, raw)
	}
	if err := json.Unmarshal(raw, &ds); err != nil || ds.Ref == "" {
		t.Fatalf("acme upload response %s (%v)", raw, err)
	}

	regBody, _ := json.Marshal(map[string]any{
		"name":         "prod",
		"baseline_ref": ds.Ref,
		"window_ms":    100,
		"epochs":       5,
	})
	var mon struct {
		ID string `json:"id"`
	}
	code, _, raw = tenantReq(t, http.MethodPost, a.srv.URL+"/v1/monitors", "acme", "application/json", regBody)
	if code/100 != 2 {
		t.Fatalf("acme register: %d %s", code, raw)
	}
	if err := json.Unmarshal(raw, &mon); err != nil || mon.ID == "" {
		t.Fatalf("acme register response %s (%v)", raw, err)
	}

	a.hardStop()

	// ---- Second life ------------------------------------------------
	b := boot(t, stateDir)
	defer b.hardStop()
	defer b.registry.Close()

	// The quota override survived the reboot.
	var info tenant.Info
	get(t, b.srv.URL+"/v1/tenants/acme", &info)
	if !info.Override || info.Quotas.Weight != 2 || info.Quotas.MaxMonitors != 1 {
		t.Fatalf("acme quotas after restart = %+v, want the persisted override", info)
	}

	// Ownership survived: acme sees its dataset and monitor; the
	// default tenant sees neither — acme's ref reads as absent.
	code, _, raw = tenantReq(t, http.MethodGet, b.srv.URL+"/v1/datasets", "acme", "", nil)
	var metas []dataset.Meta
	if code != http.StatusOK || json.Unmarshal(raw, &metas) != nil || len(metas) != 1 || metas[0].Ref != ds.Ref {
		t.Fatalf("acme datasets after restart: %d %s, want just %s", code, raw, ds.Ref)
	}
	if code, _, _ := tenantReq(t, http.MethodGet, b.srv.URL+"/v1/datasets/"+ds.Ref, "", "", nil); code != http.StatusNotFound {
		t.Fatalf("default tenant reads acme's dataset: %d, want 404", code)
	}

	code, _, raw = tenantReq(t, http.MethodGet, b.srv.URL+"/v1/monitors", "acme", "", nil)
	var sums []monitor.Summary
	if code != http.StatusOK || json.Unmarshal(raw, &sums) != nil || len(sums) != 1 {
		t.Fatalf("acme monitors after restart: %d %s", code, raw)
	}
	if sums[0].Name != "prod" || sums[0].Tenant != "acme" || !sums[0].BaselinePinned {
		t.Fatalf("restored monitor = %+v, want acme's pinned prod monitor", sums[0])
	}
	code, _, raw = tenantReq(t, http.MethodGet, b.srv.URL+"/v1/monitors", "", "", nil)
	var defSums []monitor.Summary
	if code != http.StatusOK || json.Unmarshal(raw, &defSums) != nil || len(defSums) != 0 {
		t.Fatalf("default tenant's monitor list after restart: %d %s, want empty", code, raw)
	}
	if code, _, _ := tenantReq(t, http.MethodGet, b.srv.URL+"/v1/monitors/"+mon.ID, "", "", nil); code != http.StatusNotFound {
		t.Fatalf("default tenant reads acme's monitor: %d, want 404", code)
	}

	// The restored override still enforces: acme sits at max_monitors,
	// so a second register is a quota rejection, not a dup-name error.
	second, _ := json.Marshal(map[string]any{
		"name":         "prod-2",
		"baseline_ref": ds.Ref,
		"window_ms":    100,
		"epochs":       5,
	})
	code, _, raw = tenantReq(t, http.MethodPost, b.srv.URL+"/v1/monitors", "acme", "application/json", second)
	if code != http.StatusTooManyRequests {
		t.Fatalf("register over restored quota: %d %s, want 429", code, raw)
	}
	if !bytes.Contains(raw, []byte("at monitor quota")) {
		t.Fatalf("quota rejection body %s, want it to name the quota", raw)
	}
}
