package dataset

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/store"
)

// Persistence. With a store attached, the registry mirrors its
// resident set durably: Put writes the dataset (exact frame codec,
// keyed by its content hash) before reporting success, Delete removes
// the durable copy before the resident one, and evictions drop both.
// The invariant is simple — the store holds exactly the resident set —
// so a restart restores exactly what was resident, and the content
// hash doubles as an integrity check: a restored frame that no longer
// hashes to its key is refused as corrupt.

// datasetDoc is the persisted form of one resident dataset.
type datasetDoc struct {
	// Name is the upload name shown in Meta.
	Name string `json:"name"`
	// Frame is the exact frame encoding (frame.WriteJSON).
	Frame json.RawMessage `json:"frame"`
}

// AttachStore restores every persisted dataset into the registry and
// mirrors all later mutations into st. Call it once, before serving
// traffic and before monitor restore (monitors re-pin their baselines
// out of what AttachStore made resident). Restored entries arrive in
// ref order and are subject to the byte budget: if the budget shrank
// between boots, least recently restored unpinned entries are evicted
// — durably, keeping the store equal to the resident set.
//
// A payload that fails to decode, or decodes to a frame whose hash is
// not its key, aborts the restore with an error naming the record:
// corrupt state is refused, not silently dropped.
func (r *Registry) AttachStore(st store.Store) error {
	items, err := st.List(store.KindDataset)
	if err != nil {
		return fmt.Errorf("dataset: restoring registry: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
	for _, it := range items {
		var doc datasetDoc
		if err := json.Unmarshal(it.Payload, &doc); err != nil {
			return fmt.Errorf("dataset: restoring %q: %w (%v)", it.ID, store.ErrCorrupt, err)
		}
		f, err := frame.ReadJSON(bytes.NewReader(doc.Frame))
		if err != nil {
			return fmt.Errorf("dataset: restoring %q: %w (%v)", it.ID, store.ErrCorrupt, err)
		}
		if got := f.Hash(); got != it.ID {
			return fmt.Errorf("dataset: restoring %q: frame hashes to %s: %w", it.ID, got, store.ErrCorrupt)
		}
		size := SizeOf(f)
		if size > r.budget {
			// The budget shrank below this dataset since it was
			// persisted. Keep the invariant (store == resident set):
			// drop it durably rather than carry unreachable state.
			if derr := st.Delete(store.KindDataset, it.ID); derr != nil {
				return fmt.Errorf("dataset: restoring %q: dropping over-budget dataset: %v", it.ID, derr)
			}
			r.evictions++
			continue
		}
		for r.bytes+size > r.budget {
			if !r.evictOldestUnpinned() {
				break
			}
		}
		e := &entry{
			meta: Meta{
				Ref:   it.ID,
				Name:  doc.Name,
				Rows:  f.NumRows(),
				Cols:  f.NumCols(),
				Bytes: size,
			},
			data: f,
		}
		r.byRef[it.ID] = r.order.PushFront(e)
		r.bytes += size
	}
	return nil
}

// saveLocked persists e's dataset under its ref; callers hold r.mu and
// have checked r.store != nil.
func (r *Registry) saveLocked(e *entry) error {
	var buf bytes.Buffer
	if err := e.data.WriteJSON(&buf); err != nil {
		return err
	}
	payload, err := json.Marshal(datasetDoc{Name: e.meta.Name, Frame: buf.Bytes()})
	if err != nil {
		return err
	}
	return r.store.Save(store.KindDataset, e.meta.Ref, payload)
}

// dropStoredLocked removes ref's durable copy, counting (not
// propagating) failures; callers hold r.mu. Used on the eviction path,
// where the in-memory eviction has already happened and the worst case
// of a leftover record is re-residency on the next boot.
func (r *Registry) dropStoredLocked(ref string) {
	if r.store == nil {
		return
	}
	if err := r.store.Delete(store.KindDataset, ref); err != nil {
		r.persistErrors++
	}
}
