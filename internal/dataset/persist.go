package dataset

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// Persistence. With a store attached, the registry mirrors its
// resident set durably: Put writes the dataset (exact frame codec,
// keyed by its content hash) before reporting success, Delete removes
// the durable copy before the resident one, and evictions drop both.
// The invariant is simple — the store holds exactly the resident set —
// so a restart restores exactly what was resident, and the content
// hash doubles as an integrity check: a restored frame that no longer
// hashes to its key is refused as corrupt.

// datasetDoc is the persisted form of one resident dataset. Ownership
// lives here, on the resource record itself — not in a separate
// tenant→refs list — so a crash can never leave a dataset and its
// ownership disagreeing.
type datasetDoc struct {
	// Name is the upload name shown in Meta.
	Name string `json:"name"`
	// Tenant is the owning tenant (omitted for the default tenant,
	// keeping pre-multi-tenant state directories readable).
	Tenant string `json:"tenant,omitempty"`
	// Frame is the exact frame encoding (frame.WriteJSON).
	Frame json.RawMessage `json:"frame"`
}

// storeID is the KindDataset record key for (ten, ref): the bare ref
// for the default tenant — bit-compatible with state directories
// written before tenancy existed — and "ten.ref" otherwise. Tenant ids
// cannot contain '.', and refs are fixed-width hex, so the first dot
// splits unambiguously.
func storeID(ten, ref string) string {
	if ten == tenant.Default {
		return ref
	}
	return ten + "." + ref
}

// parseStoreID inverts storeID.
func parseStoreID(id string) (ten, ref string) {
	if i := strings.IndexByte(id, '.'); i >= 0 {
		return id[:i], id[i+1:]
	}
	return tenant.Default, id
}

// AttachStore restores every persisted dataset into the registry and
// mirrors all later mutations into st. Call it once, before serving
// traffic and before monitor restore (monitors re-pin their baselines
// out of what AttachStore made resident). Restored entries arrive in
// ref order and are subject to the byte budget: if the budget shrank
// between boots, least recently restored unpinned entries are evicted
// — durably, keeping the store equal to the resident set.
//
// A payload that fails to decode, or decodes to a frame whose hash is
// not its key, aborts the restore with an error naming the record:
// corrupt state is refused, not silently dropped.
func (r *Registry) AttachStore(st store.Store) error {
	items, err := st.List(store.KindDataset)
	if err != nil {
		return fmt.Errorf("dataset: restoring registry: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
	for _, it := range items {
		var doc datasetDoc
		if err := json.Unmarshal(it.Payload, &doc); err != nil {
			return fmt.Errorf("dataset: restoring %q: %w (%v)", it.ID, store.ErrCorrupt, err)
		}
		ten, ref := parseStoreID(it.ID)
		if doc.Tenant != "" && doc.Tenant != ten {
			return fmt.Errorf("dataset: restoring %q: record claims tenant %q: %w", it.ID, doc.Tenant, store.ErrCorrupt)
		}
		f, err := frame.ReadJSON(bytes.NewReader(doc.Frame))
		if err != nil {
			return fmt.Errorf("dataset: restoring %q: %w (%v)", it.ID, store.ErrCorrupt, err)
		}
		if got := f.Hash(); got != ref {
			return fmt.Errorf("dataset: restoring %q: frame hashes to %s: %w", it.ID, got, store.ErrCorrupt)
		}
		size := SizeOf(f)
		if size > r.budget {
			// The budget shrank below this dataset since it was
			// persisted. Keep the invariant (store == resident set):
			// drop it durably rather than carry unreachable state.
			if derr := st.Delete(store.KindDataset, it.ID); derr != nil {
				return fmt.Errorf("dataset: restoring %q: dropping over-budget dataset: %v", it.ID, derr)
			}
			r.evictions++
			continue
		}
		for r.bytes+size > r.budget {
			if !r.evictOldestUnpinned() {
				break
			}
		}
		e := &entry{
			meta: Meta{
				Ref:    ref,
				Tenant: ten,
				Name:   doc.Name,
				Rows:   f.NumRows(),
				Cols:   f.NumCols(),
				Bytes:  size,
			},
			data: f,
		}
		r.byRef[refKey{ten, ref}] = r.order.PushFront(e)
		r.bytes += size
		r.chargeLocked(ten, 1, size)
	}
	return nil
}

// saveLocked persists e's dataset under its tenant-scoped store id;
// callers hold r.mu and have checked r.store != nil.
func (r *Registry) saveLocked(e *entry) error {
	var buf bytes.Buffer
	if err := e.data.WriteJSON(&buf); err != nil {
		return err
	}
	doc := datasetDoc{Name: e.meta.Name, Frame: buf.Bytes()}
	if e.meta.Tenant != tenant.Default {
		doc.Tenant = e.meta.Tenant
	}
	payload, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	return r.store.Save(store.KindDataset, storeID(e.meta.Tenant, e.meta.Ref), payload)
}

// dropStoredLocked removes (ten, ref)'s durable copy, counting (not
// propagating) failures; callers hold r.mu. Used on the eviction path,
// where the in-memory eviction has already happened and the worst case
// of a leftover record is re-residency on the next boot.
func (r *Registry) dropStoredLocked(ten, ref string) {
	if r.store == nil {
		return
	}
	if err := r.store.Delete(store.KindDataset, storeID(ten, ref)); err != nil {
		r.persistErrors++
	}
}
