package dataset

import (
	"container/list"
	"sync"
)

// DefaultStateBudgetBytes is the default chunk-state cache byte
// budget: 64 MiB. Chunk states are derived data (sorted samples and
// level counts, not raw rows), so the default sits well below the
// dataset registry's.
const DefaultStateBudgetBytes = 64 << 20

// StateCache is the byte-budgeted LRU cache behind incremental
// sliding-window re-audits: per-chunk kernel states keyed by
// (chunk hash, profile key), so a window advance re-merges surviving
// chunk states and only scans the rows that entered. It deliberately
// knows nothing about what it stores — values are opaque with a
// caller-measured size — which keeps the dependency arrow pointing
// the same way as the dataset registry's (monitor builds on dataset,
// never the reverse).
//
// The cache is an optimization, never an oracle: a missing key means
// the caller recomputes the state from rows it still holds, so
// eviction can only cost time, not correctness. Safe for concurrent
// use.
type StateCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	order  *list.List // front = most recently used; values are *stateEntry
	byKey  map[string]*list.Element

	hits, misses, evictions uint64
}

// stateEntry is one resident chunk state.
type stateEntry struct {
	key  string
	val  any
	size int64
}

// NewStateCache creates an empty cache holding at most budgetBytes of
// chunk states (DefaultStateBudgetBytes when <= 0).
func NewStateCache(budgetBytes int64) *StateCache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultStateBudgetBytes
	}
	return &StateCache{
		budget: budgetBytes,
		order:  list.New(),
		byKey:  map[string]*list.Element{},
	}
}

// Budget returns the cache's byte budget.
func (c *StateCache) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget
}

// Get returns the cached state for key, marking it most recently
// used. The bool reports a hit; misses count toward the
// chunk_state_misses gauge.
func (c *StateCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*stateEntry).val, true
}

// Put makes val resident under key, evicting least-recently-used
// entries until it fits. size is the caller's estimate of val's heap
// footprint. A value larger than the whole budget is silently not
// cached (the caller keeps working off its own copy); re-putting an
// existing key replaces the value and refreshes recency.
func (c *StateCache) Put(key string, val any, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*stateEntry)
		c.bytes += size - e.size
		e.val, e.size = val, size
		c.order.MoveToFront(el)
	} else {
		e := &stateEntry{key: key, val: val, size: size}
		c.byKey[key] = c.order.PushFront(e)
		c.bytes += size
	}
	for c.bytes > c.budget {
		el := c.order.Back()
		if el == nil {
			break
		}
		e := el.Value.(*stateEntry)
		c.order.Remove(el)
		delete(c.byKey, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// Len returns the number of resident states.
func (c *StateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// StateSnapshot is the chunk-state cache's JSON gauge set, merged into
// GET /metrics under the "chunk_states" key.
type StateSnapshot struct {
	Resident    int    `json:"chunk_states_resident"`
	Bytes       int64  `json:"chunk_state_bytes"`
	BudgetBytes int64  `json:"chunk_state_budget_bytes"`
	Hits        uint64 `json:"chunk_state_hits"`
	Misses      uint64 `json:"chunk_state_misses"`
	Evictions   uint64 `json:"chunk_state_evictions"`
}

// Metrics snapshots the cache gauges.
func (c *StateCache) Metrics() StateSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return StateSnapshot{
		Resident:    c.order.Len(),
		Bytes:       c.bytes,
		BudgetBytes: c.budget,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
	}
}
