package dataset

import (
	"math"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
)

func TestReadNDJSONTypes(t *testing.T) {
	f, err := ReadNDJSON(strings.NewReader(
		`{"id": 1, "score": 0.5, "ok": true, "tag": "x"}
{"id": 2, "score": 2, "ok": false, "tag": "y"}
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]frame.DType{
		"id": frame.Int64, "score": frame.Float64, "ok": frame.Bool, "tag": frame.String,
	}
	for name, dt := range want {
		if got := f.MustCol(name).DType(); got != dt {
			t.Errorf("column %q inferred %s, want %s", name, got, dt)
		}
	}
	if f.MustCol("id").Int(1) != 2 || f.MustCol("score").Float(1) != 2 {
		t.Fatal("values wrong")
	}
	// Int widened into a float column.
	if f.MustCol("score").Float(0) != 0.5 {
		t.Fatal("float value wrong")
	}
	if got := f.Names(); got[0] != "id" || got[3] != "tag" {
		t.Fatalf("column order %v, want first-appearance", got)
	}
}

func TestReadNDJSONMissingAndLateKeys(t *testing.T) {
	f, err := ReadNDJSON(strings.NewReader(
		`{"a": 1}
{"a": 2, "b": "late"}
{"b": "only"}
`))
	if err != nil {
		t.Fatal(err)
	}
	a, b := f.MustCol("a"), f.MustCol("b")
	if !a.IsNull(2) || a.Int(0) != 1 {
		t.Fatal("missing trailing key not null")
	}
	if !b.IsNull(0) || b.Str(1) != "late" {
		t.Fatal("late column not backfilled")
	}
}

func TestReadNDJSONNullsAndMixed(t *testing.T) {
	f, err := ReadNDJSON(strings.NewReader(
		`{"v": null, "m": 1}
{"v": 3, "m": "x"}
`))
	if err != nil {
		t.Fatal(err)
	}
	v := f.MustCol("v")
	if !v.IsNull(0) || v.Int(1) != 3 {
		t.Fatal("null handling wrong")
	}
	m := f.MustCol("m")
	if m.DType() != frame.String || m.Str(0) != "1" || m.Str(1) != "x" {
		t.Fatalf("mixed column = %s %q %q", m.DType(), m.Str(0), m.Str(1))
	}
}

func TestReadNDJSONRejectsNested(t *testing.T) {
	if _, err := ReadNDJSON(strings.NewReader(`{"a": {"nested": 1}}`)); err == nil {
		t.Fatal("nested object accepted")
	}
	if _, err := ReadNDJSON(strings.NewReader(`{"a": [1,2]}`)); err == nil {
		t.Fatal("array accepted")
	}
	if _, err := ReadNDJSON(strings.NewReader(`[1,2]`)); err == nil {
		t.Fatal("top-level array accepted")
	}
	if _, err := ReadNDJSON(strings.NewReader(``)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadNDJSONBigIntsStayExact(t *testing.T) {
	f, err := ReadNDJSON(strings.NewReader(
		`{"n": 9007199254740993}
{"n": -9007199254740993}
`))
	if err != nil {
		t.Fatal(err)
	}
	n := f.MustCol("n")
	if n.DType() != frame.Int64 || n.Int(0) != 9007199254740993 {
		t.Fatalf("big int column = %s %d", n.DType(), n.Int(0))
	}
	if math.Abs(float64(n.Int(0))-9007199254740993) > 2 {
		t.Fatal("precision sanity")
	}
}
