package dataset

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/store/memory"
)

// persistFrame builds a small distinct frame keyed by seed.
func persistFrame(t *testing.T, seed int64) *frame.Frame {
	t.Helper()
	vals := make([]int64, 8)
	for i := range vals {
		vals[i] = seed + int64(i)
	}
	f, err := frame.New(frame.NewInt64("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestAttachStoreRoundTrip proves the core durability path: datasets
// put into a store-backed registry come back after a "restart" (a
// fresh registry attached to the same store) with the same ref, name,
// and bit-identical frame hash.
func TestAttachStoreRoundTrip(t *testing.T) {
	st := memory.New()
	r1 := NewRegistry(0)
	if err := r1.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	f := persistFrame(t, 100)
	meta, err := r1.Put("train.csv", f)
	if err != nil {
		t.Fatal(err)
	}

	r2 := NewRegistry(0)
	if err := r2.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	got, m2, ok := r2.Resolve(meta.Ref)
	if !ok {
		t.Fatalf("dataset %s did not survive restart", meta.Ref)
	}
	if m2.Name != "train.csv" || m2.Rows != 8 {
		t.Fatalf("restored meta %+v, want name train.csv rows 8", m2)
	}
	if got.Hash() != f.Hash() {
		t.Fatalf("restored frame hash %s, want %s", got.Hash(), f.Hash())
	}
}

// TestDeleteRemovesDurableCopy proves a deleted dataset does not
// resurface on restart.
func TestDeleteRemovesDurableCopy(t *testing.T) {
	st := memory.New()
	r1 := NewRegistry(0)
	if err := r1.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	meta, err := r1.Put("d", persistFrame(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := r1.Delete(meta.Ref); !ok || err != nil {
		t.Fatalf("Delete: (%v, %v)", ok, err)
	}
	r2 := NewRegistry(0)
	if err := r2.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r2.Resolve(meta.Ref); ok {
		t.Fatal("deleted dataset resurfaced after restart")
	}
}

// TestEvictionRemovesDurableCopy proves the store mirrors the resident
// set under budget pressure: an evicted dataset's durable copy goes
// with it.
func TestEvictionRemovesDurableCopy(t *testing.T) {
	st := memory.New()
	small := persistFrame(t, 1)
	budget := 2*SizeOf(small) + SizeOf(small)/2 // room for two, not three
	r := NewRegistry(budget)
	if err := r.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	m1, err := r.Put("a", persistFrame(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("b", persistFrame(t, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("c", persistFrame(t, 2000)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.Resolve(m1.Ref); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok, err := st.Find(store.KindDataset, m1.Ref); ok || err != nil {
		t.Fatalf("evicted dataset still persisted: ok=%v err=%v", ok, err)
	}
	if items, err := st.List(store.KindDataset); err != nil || len(items) != 2 {
		t.Fatalf("store holds %d datasets (err %v), want 2", len(items), err)
	}
}

// TestAttachStoreRefusesHashMismatch proves a persisted record whose
// frame no longer hashes to its key is refused at restore — the
// content hash doubles as an integrity check.
func TestAttachStoreRefusesHashMismatch(t *testing.T) {
	st := memory.New()
	var buf bytes.Buffer
	if err := persistFrame(t, 5).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(map[string]any{"name": "x", "frame": json.RawMessage(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(store.KindDataset, "not-the-real-hash", payload); err != nil {
		t.Fatal(err)
	}
	err = NewRegistry(0).AttachStore(st)
	if !errors.Is(err, store.ErrCorrupt) || !strings.Contains(err.Error(), "not-the-real-hash") {
		t.Fatalf("AttachStore over mismatched hash: %v, want ErrCorrupt naming the record", err)
	}
}

// TestAttachStoreRefusesCorruptRecord proves a tampered record refuses
// the whole restore rather than silently dropping data.
func TestAttachStoreRefusesCorruptRecord(t *testing.T) {
	st := memory.New()
	r1 := NewRegistry(0)
	if err := r1.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	meta, err := r1.Put("d", persistFrame(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Corrupt(store.KindDataset, meta.Ref) {
		t.Fatal("Corrupt found no record")
	}
	if err := NewRegistry(0).AttachStore(st); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("AttachStore over corrupt record: %v, want ErrCorrupt", err)
	}
}

// TestAttachStoreShrunkBudget proves a dataset larger than the whole
// (shrunk) budget is dropped durably at restore, keeping the
// store-equals-resident-set invariant instead of carrying unreachable
// state forever.
func TestAttachStoreShrunkBudget(t *testing.T) {
	st := memory.New()
	r1 := NewRegistry(0)
	if err := r1.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	meta, err := r1.Put("big", persistFrame(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry(16) // far below the dataset's size
	if err := r2.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r2.Resolve(meta.Ref); ok {
		t.Fatal("over-budget dataset restored")
	}
	if items, err := st.List(store.KindDataset); err != nil || len(items) != 0 {
		t.Fatalf("over-budget dataset still persisted: (%v, %v)", items, err)
	}
}
