package dataset

import (
	"fmt"
	"sync"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
)

// testFrame builds a small frame whose content (and therefore ref)
// varies with seed.
func testFrame(t testing.TB, seed, rows int) *frame.Frame {
	t.Helper()
	ids := make([]int64, rows)
	vs := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(seed*1_000_000 + i)
		vs[i] = float64(seed) + float64(i)/7
	}
	return frame.MustNew(frame.NewInt64("id", ids), frame.NewFloat64("v", vs))
}

func TestPutResolveRoundTrip(t *testing.T) {
	r := NewRegistry(1 << 20)
	f := testFrame(t, 1, 100)
	meta, err := r.Put("credit", f)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Ref != f.Hash() {
		t.Fatalf("ref %q is not the content hash %q", meta.Ref, f.Hash())
	}
	if meta.Rows != 100 || meta.Cols != 2 || meta.Name != "credit" {
		t.Fatalf("meta = %+v", meta)
	}
	got, m, ok := r.Resolve(meta.Ref)
	if !ok || got != f {
		t.Fatal("resolve did not return the resident frame")
	}
	if m.Hits != 1 {
		t.Fatalf("hits = %d", m.Hits)
	}
	if _, _, ok := r.Resolve("no-such-ref"); ok {
		t.Fatal("unknown ref resolved")
	}
	snap := r.Metrics()
	if snap.Resident != 1 || snap.Hits != 1 || snap.Misses != 1 || snap.Bytes != meta.Bytes {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestPutIdempotent(t *testing.T) {
	r := NewRegistry(1 << 20)
	f := testFrame(t, 1, 50)
	a, err := r.Put("first", f)
	if err != nil {
		t.Fatal(err)
	}
	// Identical content under a different handle: same ref, one
	// resident copy, the first name kept.
	b, err := r.Put("second", testFrame(t, 1, 50))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ref != b.Ref || b.Name != "first" {
		t.Fatalf("re-upload meta = %+v, want ref %s name first", b, a.Ref)
	}
	if snap := r.Metrics(); snap.Resident != 1 {
		t.Fatalf("resident = %d after duplicate upload", snap.Resident)
	}
}

func TestBudgetEvictsLRU(t *testing.T) {
	f1, f2, f3 := testFrame(t, 1, 200), testFrame(t, 2, 200), testFrame(t, 3, 200)
	size := SizeOf(f1)
	r := NewRegistry(2*size + size/2) // room for two
	m1, err1 := r.Put("a", f1)
	m2, err2 := r.Put("b", f2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Touch a so b is the least recently used.
	if _, _, ok := r.Resolve(m1.Ref); !ok {
		t.Fatal("a missing")
	}
	m3, err := r.Put("c", f3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.Resolve(m2.Ref); ok {
		t.Fatal("LRU entry b survived over-budget Put")
	}
	for _, ref := range []string{m1.Ref, m3.Ref} {
		if _, _, ok := r.Resolve(ref); !ok {
			t.Fatalf("entry %s evicted wrongly", ref)
		}
	}
	snap := r.Metrics()
	if snap.Evictions != 1 || snap.Resident != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestPutLargerThanBudget(t *testing.T) {
	f := testFrame(t, 1, 1000)
	r := NewRegistry(SizeOf(f) / 2)
	if _, err := r.Put("big", f); err == nil {
		t.Fatal("over-budget dataset accepted")
	}
}

func TestPinnedSurvivesEviction(t *testing.T) {
	f1, f2, f3 := testFrame(t, 1, 200), testFrame(t, 2, 200), testFrame(t, 3, 200)
	size := SizeOf(f1)
	r := NewRegistry(2*size + size/2)
	m1, _ := r.Put("baseline", f1)
	if _, ok := r.Pin(m1.Ref); !ok {
		t.Fatal("pin failed")
	}
	if _, err := r.Put("b", f2); err != nil {
		t.Fatal(err)
	}
	// Pinned baseline is the LRU candidate but must be skipped.
	if _, err := r.Put("c", f3); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.Resolve(m1.Ref); !ok {
		t.Fatal("pinned baseline evicted")
	}
	// Both unpinned entries pinned+current can't fit a third; the
	// pinned one must not be sacrificed either.
	if _, err := r.Delete(m1.Ref); err == nil {
		t.Fatal("pinned dataset deleted")
	}
	r.Unpin(m1.Ref)
	if ok, err := r.Delete(m1.Ref); err != nil || !ok {
		t.Fatalf("delete after unpin: %v %v", ok, err)
	}
}

func TestAllPinnedOverBudget(t *testing.T) {
	f1, f2 := testFrame(t, 1, 200), testFrame(t, 2, 200)
	r := NewRegistry(SizeOf(f1) + SizeOf(f1)/2)
	m1, err := r.Put("a", f1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Pin(m1.Ref); !ok {
		t.Fatal("pin failed")
	}
	if _, err := r.Put("b", f2); err == nil {
		t.Fatal("Put succeeded with the whole budget pinned")
	}
}

func TestListMostRecentFirst(t *testing.T) {
	r := NewRegistry(1 << 20)
	m1, _ := r.Put("a", testFrame(t, 1, 10))
	m2, _ := r.Put("b", testFrame(t, 2, 10))
	r.Resolve(m1.Ref)
	list := r.List()
	if len(list) != 2 || list[0].Ref != m1.Ref || list[1].Ref != m2.Ref {
		t.Fatalf("list order = %+v", list)
	}
}

// TestConcurrentResolveVsEvict hammers resolves, pins, and
// eviction-forcing puts concurrently; under -race this is the
// eviction/resolve race check the registry must stay clean on.
func TestConcurrentResolveVsEvict(t *testing.T) {
	const workers = 8
	base := testFrame(t, 0, 300)
	r := NewRegistry(4 * SizeOf(base))
	pinned, err := r.Put("pinned", base)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Pin(pinned.Ref); !ok {
		t.Fatal("pin failed")
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				f := testFrame(t, 1+w*100+i, 300)
				meta, err := r.Put(fmt.Sprintf("w%d-%d", w, i), f)
				if err != nil {
					t.Error(err)
					return
				}
				// Resolve own and the pinned ref while other workers
				// force evictions.
				if got, _, ok := r.Resolve(meta.Ref); ok && got.NumRows() != 300 {
					t.Error("resolved frame corrupted")
					return
				}
				got, _, ok := r.Resolve(pinned.Ref)
				if !ok {
					t.Error("pinned dataset evicted during churn")
					return
				}
				if got != base {
					t.Error("pinned resolve returned wrong frame")
					return
				}
				if i%7 == 0 {
					if _, ok := r.Pin(meta.Ref); ok {
						r.Unpin(meta.Ref)
					}
				}
			}
		}()
	}
	wg.Wait()
	snap := r.Metrics()
	if snap.Bytes > r.Budget() {
		t.Fatalf("resident bytes %d exceed budget %d", snap.Bytes, r.Budget())
	}
	if _, _, ok := r.Resolve(pinned.Ref); !ok {
		t.Fatal("pinned dataset missing after churn")
	}
}

func TestSizeOfScalesWithRows(t *testing.T) {
	small := SizeOf(testFrame(t, 1, 100))
	large := SizeOf(testFrame(t, 1, 10_000))
	if large < 50*small/2 {
		t.Fatalf("SizeOf not roughly linear: %d vs %d", small, large)
	}
	withStrings := frame.MustNew(frame.NewString("s", []string{"aaaaaaaaaa", "bbbbbbbbbb"}))
	if SizeOf(withStrings) < 20 {
		t.Fatal("string payload not counted")
	}
}
