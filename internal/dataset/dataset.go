// Package dataset implements the content-addressed dataset registry:
// load a dataset once, get back its content hash (frame.Hash) as a
// dataset_ref, and have every later audit or monitor registration
// resolve the resident frame by ref in O(1) instead of re-uploading and
// re-parsing the bytes. The registry is byte-budgeted — resident
// datasets are measured with SizeOf and the least recently used
// unpinned ones are evicted when a Put would exceed the budget — and
// pin-aware: the monitoring plane pins its baseline datasets so a
// standing monitor's 1M-row baseline can never be evicted underneath
// it.
//
// Because the ref IS the content hash, a resolved dataset needs no
// re-hash on the audit hot path: serve's report-cache key reuses the
// ref directly, which is what turns repeat-audit latency from
// O(dataset) parsing into an O(1) lookup (see BenchmarkRegistryResolve).
package dataset

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// DefaultBudgetBytes is the default registry byte budget: 256 MiB.
const DefaultBudgetBytes = 256 << 20

// ErrOverBudget is returned by Put when the dataset cannot be made
// resident: it is larger than the whole budget, or pinned datasets
// occupy too much of it. The HTTP layer maps it to 507.
var ErrOverBudget = errors.New("dataset: registry byte budget exceeded")

// ErrPinned is returned by Delete while monitors hold pins on the
// dataset. The HTTP layer maps it to 409.
var ErrPinned = errors.New("dataset: dataset is pinned")

// Meta describes one resident dataset, JSON-serializable for the HTTP
// API. Ref is the frame's content hash — the dataset_ref audit and
// monitor requests resolve by — and Tenant is the owning tenant:
// datasets are scoped, so the same content uploaded by two tenants is
// two entries, each charged to its owner's quota.
type Meta struct {
	Ref    string `json:"ref"`
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	Rows   int    `json:"rows"`
	Cols   int    `json:"cols"`
	Bytes  int64  `json:"bytes"`
	Pins   int    `json:"pins"`
	Hits   uint64 `json:"hits"`
}

// entry is the registry-internal state behind a Meta.
type entry struct {
	meta Meta
	data *frame.Frame
}

// refKey addresses one resident dataset: content hashes are scoped per
// tenant, so tenants can neither see nor unpin each other's refs.
type refKey struct {
	tenant string
	ref    string
}

// tenantUsage is one tenant's slice of the registry accounting.
type tenantUsage struct {
	resident int
	bytes    int64
}

// Registry is the byte-budgeted, content-addressed store of resident
// datasets with LRU eviction that skips pinned entries. Entries are
// tenant-scoped: every operation resolves within one tenant's
// namespace, the shared byte budget and LRU order span all tenants,
// and per-tenant quotas (bytes, count) bound each tenant's share when
// a quota source is attached. Safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	order  *list.List // front = most recently used; values are *entry
	byRef  map[refKey]*list.Element
	usage  map[string]*tenantUsage

	// quotas resolves a tenant's resource quotas; nil means unlimited.
	quotas func(string) tenant.Quotas

	// store, when non-nil, durably mirrors the resident set (see
	// AttachStore in persist.go).
	store store.Store

	hits, misses, evictions, persistErrors uint64
}

// NewRegistry creates an empty registry holding at most budgetBytes of
// resident dataset payload (DefaultBudgetBytes when <= 0).
func NewRegistry(budgetBytes int64) *Registry {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	return &Registry{
		budget: budgetBytes,
		order:  list.New(),
		byRef:  map[refKey]*list.Element{},
		usage:  map[string]*tenantUsage{},
	}
}

// Budget returns the registry's byte budget.
func (r *Registry) Budget() int64 { return r.budget }

// UseQuotas attaches the per-tenant quota source (typically
// (*tenant.Registry).Quotas). PutAs enforces MaxRegistryBytes and
// MaxDatasets against it; nil (the default) means no per-tenant bound.
func (r *Registry) UseQuotas(q func(string) tenant.Quotas) {
	r.mu.Lock()
	r.quotas = q
	r.mu.Unlock()
}

// usageLocked returns ten's accounting, creating it on first sight.
func (r *Registry) usageLocked(ten string) *tenantUsage {
	u := r.usage[ten]
	if u == nil {
		u = &tenantUsage{}
		r.usage[ten] = u
	}
	return u
}

// chargeLocked adjusts ten's accounting by one entry of size bytes
// (negative on removal), dropping empty tenants from the map.
func (r *Registry) chargeLocked(ten string, entries int, size int64) {
	u := r.usageLocked(ten)
	u.resident += entries
	u.bytes += size
	if u.resident <= 0 && u.bytes <= 0 {
		delete(r.usage, ten)
	}
}

// Put makes f resident for the default tenant; see PutAs.
func (r *Registry) Put(name string, f *frame.Frame) (Meta, error) {
	return r.PutAs(tenant.Default, name, f)
}

// PutAs makes f resident for ten under its content hash and returns
// its Meta; the returned Ref is the dataset_ref clients audit by.
// Uploading bytes the tenant already has resident is idempotent: the
// existing entry is refreshed (most recently used) and returned,
// keeping its first name. The tenant's quotas (bytes, dataset count)
// are checked first — a violation is tenant.ErrQuota (HTTP 429), the
// tenant's own budget. Then the shared byte budget applies: least
// recently used unpinned entries of any tenant are evicted until the
// dataset fits; ErrOverBudget (HTTP 507) reports one that cannot fit
// even then.
func (r *Registry) PutAs(ten, name string, f *frame.Frame) (Meta, error) {
	if f == nil || f.NumRows() == 0 {
		return Meta{}, fmt.Errorf("dataset: Put needs a non-empty dataset")
	}
	ten, err := tenant.Normalize(ten)
	if err != nil {
		return Meta{}, err
	}
	// Hash and measure outside the lock: both are O(dataset) and must
	// not serialize against hot resolves.
	ref := f.Hash()
	size := SizeOf(f)

	r.mu.Lock()
	defer r.mu.Unlock()
	key := refKey{ten, ref}
	if el, ok := r.byRef[key]; ok {
		r.order.MoveToFront(el)
		return el.Value.(*entry).meta, nil
	}
	if r.quotas != nil {
		quo := r.quotas(ten)
		u := r.usageLocked(ten)
		if quo.MaxDatasets > 0 && u.resident >= quo.MaxDatasets {
			return Meta{}, fmt.Errorf("%w: tenant %q has %d of %d datasets resident",
				tenant.ErrQuota, ten, u.resident, quo.MaxDatasets)
		}
		if quo.MaxRegistryBytes > 0 && u.bytes+size > quo.MaxRegistryBytes {
			return Meta{}, fmt.Errorf("%w: tenant %q would hold %d of %d registry bytes",
				tenant.ErrQuota, ten, u.bytes+size, quo.MaxRegistryBytes)
		}
	}
	if size > r.budget {
		return Meta{}, fmt.Errorf("%w: dataset is %d bytes, budget %d", ErrOverBudget, size, r.budget)
	}
	for r.bytes+size > r.budget {
		if !r.evictOldestUnpinned() {
			return Meta{}, fmt.Errorf("%w: %d bytes pinned, dataset needs %d of %d",
				ErrOverBudget, r.bytes, size, r.budget)
		}
	}
	e := &entry{
		meta: Meta{
			Ref:    ref,
			Tenant: ten,
			Name:   name,
			Rows:   f.NumRows(),
			Cols:   f.NumCols(),
			Bytes:  size,
		},
		data: f,
	}
	if r.store != nil {
		// Durability before visibility: a Put the caller saw succeed
		// must survive a restart, so the store write happens first and
		// a failure fails the Put. Encoding under the lock keeps the
		// store ordered with the resident set; uploads are already
		// O(dataset) so the extra pass does not change their shape.
		if err := r.saveLocked(e); err != nil {
			return Meta{}, fmt.Errorf("dataset: persisting %q: %w", ref, err)
		}
	}
	r.byRef[key] = r.order.PushFront(e)
	r.bytes += size
	r.chargeLocked(ten, 1, size)
	return e.meta, nil
}

// evictOldestUnpinned drops the least recently used unpinned entry of
// any tenant, reporting whether one existed; callers hold r.mu.
func (r *Registry) evictOldestUnpinned() bool {
	for el := r.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.meta.Pins > 0 {
			continue
		}
		r.order.Remove(el)
		delete(r.byRef, refKey{e.meta.Tenant, e.meta.Ref})
		r.bytes -= e.meta.Bytes
		r.chargeLocked(e.meta.Tenant, -1, -e.meta.Bytes)
		r.evictions++
		r.dropStoredLocked(e.meta.Tenant, e.meta.Ref)
		return true
	}
	return false
}

// Resolve resolves ref in the default tenant's namespace; see ResolveAs.
func (r *Registry) Resolve(ref string) (*frame.Frame, Meta, bool) {
	return r.ResolveAs(tenant.Default, ref)
}

// ResolveAs returns ten's resident dataset for ref, marking it most
// recently used. The bool reports a hit; misses — including another
// tenant's ref, indistinguishable from absent — count toward the
// dataset_misses gauge.
func (r *Registry) ResolveAs(ten, ref string) (*frame.Frame, Meta, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byRef[refKey{ten, ref}]
	if !ok {
		r.misses++
		return nil, Meta{}, false
	}
	r.order.MoveToFront(el)
	e := el.Value.(*entry)
	e.meta.Hits++
	r.hits++
	return e.data, e.meta, true
}

// Pin pins ref in the default tenant's namespace; see PinAs.
func (r *Registry) Pin(ref string) (*frame.Frame, bool) {
	return r.PinAs(tenant.Default, ref)
}

// PinAs resolves ten's ref and takes one pin on it, shielding it from
// eviction and deletion until a matching UnpinAs. Monitors pin their
// baselines for their whole lifetime. The bool reports whether ref
// resolved within ten's namespace.
func (r *Registry) PinAs(ten, ref string) (*frame.Frame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byRef[refKey{ten, ref}]
	if !ok {
		r.misses++
		return nil, false
	}
	r.order.MoveToFront(el)
	e := el.Value.(*entry)
	e.meta.Pins++
	e.meta.Hits++
	r.hits++
	return e.data, true
}

// Unpin releases a default-tenant pin; see UnpinAs.
func (r *Registry) Unpin(ref string) { r.UnpinAs(tenant.Default, ref) }

// UnpinAs releases one pin taken by PinAs. Unknown refs are a no-op
// (the registry never evicts pinned entries, so an unknown ref means
// the caller already released it).
func (r *Registry) UnpinAs(ten, ref string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.byRef[refKey{ten, ref}]; ok {
		if e := el.Value.(*entry); e.meta.Pins > 0 {
			e.meta.Pins--
		}
	}
}

// Get returns the default tenant's Meta for ref; see GetAs.
func (r *Registry) Get(ref string) (Meta, bool) {
	return r.GetAs(tenant.Default, ref)
}

// GetAs returns ten's Meta for ref without touching recency or
// counters.
func (r *Registry) GetAs(ten, ref string) (Meta, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byRef[refKey{ten, ref}]
	if !ok {
		return Meta{}, false
	}
	return el.Value.(*entry).meta, true
}

// Delete evicts the default tenant's ref; see DeleteAs.
func (r *Registry) Delete(ref string) (bool, error) {
	return r.DeleteAs(tenant.Default, ref)
}

// DeleteAs evicts ten's dataset for ref, reporting whether it existed
// in ten's namespace — another tenant's ref reads as absent, so
// tenants cannot delete each other's data. Pinned datasets answer
// ErrPinned: a monitor's baseline cannot be deleted out from under it.
func (r *Registry) DeleteAs(ten, ref string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := refKey{ten, ref}
	el, ok := r.byRef[key]
	if !ok {
		return false, nil
	}
	e := el.Value.(*entry)
	if e.meta.Pins > 0 {
		return false, fmt.Errorf("%w: %q has %d pins", ErrPinned, ref, e.meta.Pins)
	}
	if r.store != nil {
		// Durable copy goes first: a Delete that reported success must
		// not resurface the dataset on restart.
		if err := r.store.Delete(store.KindDataset, storeID(ten, ref)); err != nil {
			return false, fmt.Errorf("dataset: deleting persisted %q: %w", ref, err)
		}
	}
	r.order.Remove(el)
	delete(r.byRef, key)
	r.bytes -= e.meta.Bytes
	r.chargeLocked(ten, -1, -e.meta.Bytes)
	return true, nil
}

// List returns the default tenant's resident datasets; see ListAs.
func (r *Registry) List() []Meta { return r.ListAs(tenant.Default) }

// ListAs returns ten's resident datasets, most recently used first.
// The listing is scoped: no tenant can enumerate another's refs.
func (r *Registry) ListAs(ten string) []Meta {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := []Meta{}
	for el := r.order.Front(); el != nil; el = el.Next() {
		if m := el.Value.(*entry).meta; m.Tenant == ten {
			out = append(out, m)
		}
	}
	return out
}

// Snapshot is the registry's JSON gauge set, merged into GET /metrics
// under the "datasets" key.
type Snapshot struct {
	Resident    int    `json:"datasets_resident"`
	Pinned      int    `json:"datasets_pinned"`
	Bytes       int64  `json:"dataset_bytes"`
	BudgetBytes int64  `json:"dataset_budget_bytes"`
	Hits        uint64 `json:"dataset_hits"`
	Misses      uint64 `json:"dataset_misses"`
	Evictions   uint64 `json:"dataset_evictions"`
	// PersistErrors counts best-effort store mirror operations that
	// failed (eviction-path deletes); Put/Delete persist failures are
	// returned to the caller instead of counted here.
	PersistErrors uint64 `json:"dataset_persist_errors"`
	// Tenants is each tenant's slice of the registry accounting, keyed
	// by tenant id; tenants with nothing resident are omitted.
	Tenants map[string]TenantUsage `json:"tenants,omitempty"`
}

// TenantUsage is one tenant's registry footprint.
type TenantUsage struct {
	// Resident is the tenant's resident dataset count.
	Resident int `json:"resident"`
	// Bytes is the tenant's resident payload bytes.
	Bytes int64 `json:"bytes"`
}

// Metrics snapshots the registry gauges.
func (r *Registry) Metrics() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	pinned := 0
	for el := r.order.Front(); el != nil; el = el.Next() {
		if el.Value.(*entry).meta.Pins > 0 {
			pinned++
		}
	}
	s := Snapshot{
		Resident:      r.order.Len(),
		Pinned:        pinned,
		Bytes:         r.bytes,
		BudgetBytes:   r.budget,
		Hits:          r.hits,
		Misses:        r.misses,
		Evictions:     r.evictions,
		PersistErrors: r.persistErrors,
	}
	if len(r.usage) > 0 {
		s.Tenants = make(map[string]TenantUsage, len(r.usage))
		for id, u := range r.usage {
			s.Tenants[id] = TenantUsage{Resident: u.resident, Bytes: u.bytes}
		}
	}
	return s
}

// SizeOf estimates a frame's resident heap footprint in bytes: payload
// slices by dtype (8 bytes per numeric, 1 per bool, string header plus
// text per string cell — or 4 bytes per row plus one shared header+text
// per dictionary level for dict-encoded columns), a null bitmap when
// present, and a fixed per-column overhead. The budget arithmetic only
// needs relative accuracy, so the estimate errs simple rather than
// exact; TestSizeOfTracksMeasuredBytes pins it against measured live
// heap within 10%.
func SizeOf(f *frame.Frame) int64 {
	const colOverhead = 96 // Series struct + name + slice headers
	var n int64
	for j := 0; j < f.NumCols(); j++ {
		c := f.ColAt(j)
		n += colOverhead + int64(len(c.Name()))
		rows := int64(c.Len())
		switch c.DType() {
		case frame.Float64, frame.Int64:
			n += 8 * rows
		case frame.Bool:
			n += rows
		case frame.String:
			if codes, dict, ok := c.DictView(); ok {
				n += 4 * int64(len(codes))
				for _, v := range dict {
					n += 16 + int64(len(v))
				}
			} else {
				n += 16 * rows
				for i := 0; i < c.Len(); i++ {
					n += int64(len(c.Str(i)))
				}
			}
		}
		if c.NullCount() > 0 {
			n += rows
		}
	}
	return n
}
