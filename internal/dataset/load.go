package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/responsible-data-science/rds/internal/frame"
)

// jsonKind discriminates the value shapes an NDJSON cell can carry.
type jsonKind uint8

// NDJSON cell shapes.
const (
	kindNull jsonKind = iota
	kindInt
	kindFloat
	kindBool
	kindString
)

// jsonCell is one parsed NDJSON value.
type jsonCell struct {
	kind jsonKind
	i    int64
	f    float64
	b    bool
	s    string
}

// jsonColumn accumulates one NDJSON key's cells across rows, chunked
// like the CSV loader so a million-row stream never pays geometric
// append growth.
type jsonColumn struct {
	name   string
	chunks [][]jsonCell
	n      int
}

func (c *jsonColumn) push(v jsonCell) {
	if len(c.chunks) == 0 || len(c.chunks[len(c.chunks)-1]) == cap(c.chunks[len(c.chunks)-1]) {
		c.chunks = append(c.chunks, make([]jsonCell, 0, ndjsonChunkRows))
	}
	last := len(c.chunks) - 1
	c.chunks[last] = append(c.chunks[last], v)
	c.n++
}

// padTo backfills nulls up to row rows (columns that appear late, or
// rows that omit a key).
func (c *jsonColumn) padTo(rows int) {
	for c.n < rows {
		c.push(jsonCell{kind: kindNull})
	}
}

// ndjsonChunkRows is the fixed block size NDJSON cells accumulate in.
const ndjsonChunkRows = 8192

// ReadNDJSON parses newline-delimited JSON — one flat object per line —
// into a Frame, streaming through a json.Decoder so the input is never
// buffered whole. Columns are the union of keys in first-appearance
// order; rows missing a key get nulls. All-integer number columns
// become Int64, other all-number columns Float64, booleans Bool, and
// anything mixed falls back to String (numbers and booleans rendered).
// Nested objects and arrays are rejected: datasets are tabular.
func ReadNDJSON(r io.Reader) (*frame.Frame, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()

	var (
		cols   []*jsonColumn
		byName = map[string]*jsonColumn{}
		rows   int
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading ndjson row %d: %w", rows+1, err)
		}
		if d, ok := tok.(json.Delim); !ok || d != '{' {
			return nil, fmt.Errorf("dataset: ndjson row %d: each line must be a JSON object, got %v", rows+1, tok)
		}
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return nil, fmt.Errorf("dataset: reading ndjson row %d: %w", rows+1, err)
			}
			key := keyTok.(string)
			cell, err := decodeCell(dec)
			if err != nil {
				return nil, fmt.Errorf("dataset: ndjson row %d, key %q: %w", rows+1, key, err)
			}
			col, ok := byName[key]
			if !ok {
				col = &jsonColumn{name: key}
				col.padTo(rows)
				byName[key] = col
				cols = append(cols, col)
			}
			if col.n > rows {
				return nil, fmt.Errorf("dataset: ndjson row %d repeats key %q", rows+1, key)
			}
			col.padTo(rows)
			col.push(cell)
		}
		if _, err := dec.Token(); err != nil { // closing '}'
			return nil, fmt.Errorf("dataset: reading ndjson row %d: %w", rows+1, err)
		}
		rows++
	}
	if rows == 0 || len(cols) == 0 {
		return nil, fmt.Errorf("dataset: ndjson input has no rows")
	}
	series := make([]*frame.Series, len(cols))
	for j, col := range cols {
		col.padTo(rows)
		series[j] = buildSeries(col)
	}
	return frame.New(series...)
}

// decodeCell reads one scalar value from the decoder.
func decodeCell(dec *json.Decoder) (jsonCell, error) {
	tok, err := dec.Token()
	if err != nil {
		return jsonCell{}, err
	}
	switch v := tok.(type) {
	case nil:
		return jsonCell{kind: kindNull}, nil
	case bool:
		return jsonCell{kind: kindBool, b: v}, nil
	case string:
		return jsonCell{kind: kindString, s: v}, nil
	case json.Number:
		if i, err := strconv.ParseInt(v.String(), 10, 64); err == nil {
			return jsonCell{kind: kindInt, i: i}, nil
		}
		f, err := v.Float64()
		if err != nil {
			return jsonCell{}, fmt.Errorf("bad number %q: %w", v.String(), err)
		}
		return jsonCell{kind: kindFloat, f: f}, nil
	case json.Delim:
		return jsonCell{}, fmt.Errorf("nested %v values are not tabular", v)
	default:
		return jsonCell{}, fmt.Errorf("unsupported value %v", v)
	}
}

// buildSeries unifies one column's cells into the narrowest series
// type: Int64 ⊂ Float64, Bool, String; any mix falls back to String.
func buildSeries(col *jsonColumn) *frame.Series {
	var ints, floats, bools, strs, any int
	for _, chunk := range col.chunks {
		for _, c := range chunk {
			switch c.kind {
			case kindInt:
				ints++
			case kindFloat:
				floats++
			case kindBool:
				bools++
			case kindString:
				strs++
			default:
				continue
			}
			any++
		}
	}
	switch {
	case any == 0 || ints == any:
		return buildTyped(col, frame.NewInt64, func(c jsonCell) int64 { return c.i })
	case ints+floats == any:
		return buildTyped(col, frame.NewFloat64, func(c jsonCell) float64 {
			if c.kind == kindInt {
				return float64(c.i)
			}
			return c.f
		})
	case bools == any:
		return buildTyped(col, frame.NewBool, func(c jsonCell) bool { return c.b })
	case strs == any:
		return buildTyped(col, frame.NewString, func(c jsonCell) string { return c.s }).InternIngest()
	default:
		return buildTyped(col, frame.NewString, renderCell).InternIngest()
	}
}

// buildTyped materializes a column through one of the frame series
// constructors, re-marking nulls afterwards.
func buildTyped[T any](col *jsonColumn, ctor func(string, []T) *frame.Series, get func(jsonCell) T) *frame.Series {
	vals := make([]T, col.n)
	nulls := []int(nil)
	i := 0
	for _, chunk := range col.chunks {
		for _, c := range chunk {
			if c.kind == kindNull {
				nulls = append(nulls, i)
			} else {
				vals[i] = get(c)
			}
			i++
		}
	}
	s := ctor(col.name, vals)
	for _, i := range nulls {
		s.SetNull(i)
	}
	return s
}

// renderCell formats any scalar cell as text for mixed columns.
func renderCell(c jsonCell) string {
	switch c.kind {
	case kindInt:
		return strconv.FormatInt(c.i, 10)
	case kindFloat:
		return strconv.FormatFloat(c.f, 'g', -1, 64)
	case kindBool:
		return strconv.FormatBool(c.b)
	default:
		return c.s
	}
}
