package dataset

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/httpx"
	"github.com/responsible-data-science/rds/internal/tenant"
)

func newTestServer(t *testing.T, budget int64) (*Registry, *httptest.Server) {
	t.Helper()
	reg := NewRegistry(budget)
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(srv.Close)
	return reg, srv
}

func decodeMeta(t *testing.T, resp *http.Response, wantStatus int) Meta {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var meta Meta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	return meta
}

func TestHTTPUploadJSONAndRawCSV(t *testing.T) {
	_, srv := newTestServer(t, 1<<20)
	resp, err := http.Post(srv.URL+"/v1/datasets", "application/json",
		strings.NewReader(`{"name":"credit","csv":"id,v\n1,2.5\n2,3.5\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	meta := decodeMeta(t, resp, http.StatusCreated)
	if meta.Ref == "" || meta.Rows != 2 || meta.Name != "credit" {
		t.Fatalf("meta = %+v", meta)
	}

	// The same bytes as a raw text/csv body answer the same ref.
	resp, err = http.Post(srv.URL+"/v1/datasets?name=raw", "text/csv",
		strings.NewReader("id,v\n1,2.5\n2,3.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	again := decodeMeta(t, resp, http.StatusCreated)
	if again.Ref != meta.Ref {
		t.Fatalf("raw upload ref %q != json upload ref %q", again.Ref, meta.Ref)
	}
}

func TestHTTPUploadNDJSON(t *testing.T) {
	_, srv := newTestServer(t, 1<<20)
	resp, err := http.Post(srv.URL+"/v1/datasets?name=events", "application/x-ndjson",
		strings.NewReader(`{"id":1,"ok":true}
{"id":2,"ok":false}
`))
	if err != nil {
		t.Fatal(err)
	}
	meta := decodeMeta(t, resp, http.StatusCreated)
	if meta.Rows != 2 || meta.Cols != 2 || meta.Name != "events" {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestHTTPGetListDelete(t *testing.T) {
	reg, srv := newTestServer(t, 1<<20)
	meta, err := reg.Put("a", testFrame(t, 1, 20))
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/datasets/" + meta.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeMeta(t, resp, http.StatusOK); got.Ref != meta.Ref {
		t.Fatalf("get = %+v", got)
	}

	resp, err = http.Get(srv.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []Meta
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("list = %+v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/datasets/"+meta.Ref, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/datasets/" + meta.Ref)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d", resp.StatusCode)
	}
}

func TestHTTPDeletePinnedConflicts(t *testing.T) {
	reg, srv := newTestServer(t, 1<<20)
	meta, err := reg.Put("a", testFrame(t, 1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Pin(meta.Ref); !ok {
		t.Fatal("pin failed")
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/datasets/"+meta.Ref, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete of pinned dataset = %d, want 409", resp.StatusCode)
	}
}

func TestHTTPOverBudget(t *testing.T) {
	_, srv := newTestServer(t, 64) // far too small for any dataset
	var rows strings.Builder
	rows.WriteString("id,v\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&rows, "%d,%d\n", i, i)
	}
	resp, err := http.Post(srv.URL+"/v1/datasets", "text/csv", strings.NewReader(rows.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-budget upload = %d, want 507", resp.StatusCode)
	}
}

func TestHTTPBadUploads(t *testing.T) {
	_, srv := newTestServer(t, 1<<20)
	for name, body := range map[string]string{
		"both sources": `{"csv":"a\n1\n","ndjson":"{\"a\":1}"}`,
		"neither":      `{"name":"x"}`,
		"bad csv":      `{"csv":"a,b\n1\n"}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/datasets", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestHTTPTenantScoping pins the data plane's multi-tenant HTTP
// contract: uploads owned by the header's tenant, tenant-scoped lists,
// cross-tenant refs answering 404, per-tenant dataset-count quotas
// answering 429, and tenant validation at the edge.
func TestHTTPTenantScoping(t *testing.T) {
	reg, srv := newTestServer(t, 1<<20)
	reg.UseQuotas(func(id string) tenant.Quotas {
		if id == "acme" {
			return tenant.Quotas{MaxDatasets: 1}
		}
		return tenant.Quotas{}
	})
	upload := func(ten, csv string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/datasets?name=d", strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "text/csv")
		if ten != "" {
			req.Header.Set(httpx.TenantHeader, ten)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	meta := decodeMeta(t, upload("acme", "id,v\n1,2.5\n"), http.StatusCreated)

	// acme is at its MaxDatasets of 1: the next distinct upload is 429.
	resp := upload("acme", "id,v\n1,9.5\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota upload = %d, want 429", resp.StatusCode)
	}
	// Other tenants are unaffected by acme's quota.
	decodeMeta(t, upload("other", "id,v\n1,9.5\n"), http.StatusCreated)

	// Lists are tenant-scoped (?tenant= is the headerless spelling).
	var list []Meta
	get := func(url, ten string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if ten != "" {
			req.Header.Set(httpx.TenantHeader, ten)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		list = nil
		json.NewDecoder(resp.Body).Decode(&list)
		return resp.StatusCode
	}
	if code := get(srv.URL+"/v1/datasets", "acme"); code != http.StatusOK || len(list) != 1 || list[0].Ref != meta.Ref {
		t.Fatalf("acme list = %d %+v, want just %s", code, list, meta.Ref)
	}
	if code := get(srv.URL+"/v1/datasets?tenant=acme", ""); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("?tenant=acme list = %d %+v", code, list)
	}
	if code := get(srv.URL+"/v1/datasets", ""); code != http.StatusOK || len(list) != 0 {
		t.Fatalf("default list = %d %+v, want empty", code, list)
	}

	// Cross-tenant refs read as absent, for GET and DELETE alike.
	if code := get(srv.URL+"/v1/datasets/"+meta.Ref, ""); code != http.StatusNotFound {
		t.Fatalf("default tenant GET of acme's ref = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/datasets/"+meta.Ref, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("default tenant DELETE of acme's ref = %d, want 404", resp.StatusCode)
	}

	// Tenant validation happens once at the edge: a malformed header or
	// query tenant is a 400, not a silent fallback to default.
	if code := get(srv.URL+"/v1/datasets", "Bad.Tenant"); code != http.StatusBadRequest {
		t.Fatalf("bad tenant header = %d, want 400", code)
	}
	if code := get(srv.URL+"/v1/datasets?tenant=Bad.Tenant", ""); code != http.StatusBadRequest {
		t.Fatalf("bad tenant query = %d, want 400", code)
	}
	if code := get(srv.URL+"/v1/datasets/"+meta.Ref+"?tenant=Bad.Tenant", ""); code != http.StatusBadRequest {
		t.Fatalf("bad tenant query on ref = %d, want 400", code)
	}
}
