package dataset

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
)

// buildSizedFrame materializes a registry-shaped frame — numeric
// columns, a low-cardinality dict-encoded categorical, a null-carrying
// categorical — through the CSV ingest path, returning only the frame
// so construction temporaries are collectible before measurement.
func buildSizedFrame(tb testing.TB, rows int) *frame.Frame {
	tb.Helper()
	var sb strings.Builder
	sb.Grow(rows * 32)
	sb.WriteString("income,age,group,region\n")
	for i := 0; i < rows; i++ {
		region := ""
		if i%7 != 0 {
			region = fmt.Sprintf("region-%02d", i%40)
		}
		fmt.Fprintf(&sb, "%d.5,%d,%s,%s\n", 20000+i%80000, 18+i%60, string(rune('A'+i%4)), region)
	}
	f, err := frame.ReadCSVString(sb.String())
	if err != nil {
		tb.Fatal(err)
	}
	if _, _, ok := f.MustCol("group").DictView(); !ok {
		tb.Fatal("group column should ingest dictionary-encoded")
	}
	return f
}

// TestSizeOfTracksMeasuredBytes pins the registry's budget arithmetic
// to reality: SizeOf's estimate for an ingested frame — including the
// dict-column footprint the codec and registry must agree on — has to
// land within 10% of the measured live-heap growth of materializing
// that frame. A drift past that means the byte budget admits far more
// or less data than it claims.
func TestSizeOfTracksMeasuredBytes(t *testing.T) {
	const rows = 200_000
	measure := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	before := measure()
	f := buildSizedFrame(t, rows)
	after := measure()
	measured := float64(after - before)
	est := float64(SizeOf(f))
	runtime.KeepAlive(f)
	if measured <= 0 {
		t.Fatalf("heap measurement collapsed: before=%d after=%d", before, after)
	}
	ratio := est / measured
	t.Logf("SizeOf=%.0f measured=%.0f ratio=%.3f", est, measured, ratio)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("SizeOf %.0f vs measured %.0f bytes: ratio %.3f outside [0.9, 1.1]", est, measured, ratio)
	}
}
