package dataset

import (
	"bytes"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
)

// FuzzReadNDJSON throws arbitrary bytes at the NDJSON loader. Malformed
// input may be rejected with an error but must never panic; any frame
// the loader does produce must be rectangular, deterministic across
// re-parses, hash-stable, and must survive the frame JSON codec with
// values and dictionary encoding intact.
func FuzzReadNDJSON(f *testing.F) {
	seeds := []string{
		"",
		"{}",
		`{"a":1}`,
		"{\"a\":1,\"b\":\"x\"}\n{\"a\":2,\"b\":\"y\"}\n",
		"{\"a\":1}\n{\"b\":2}\n",          // disjoint keys: null backfill
		"{\"a\":null}\n{\"a\":\"\"}\n",    // null vs empty-string value
		"{\"a\":1}\n{\"a\":1.5}\n",        // int widened to float
		"{\"a\":1}\n{\"a\":\"x\"}\n",      // mixed types fall back to string
		"{\"a\":true}\n{\"a\":false}\n",   // bool column
		"{\"a\":9223372036854775807}\n",   // int64 max
		"{\"a\":1e309}\n",                 // float overflow
		"{\"a\":{\"nested\":1}}\n",        // nested object: rejected
		"{\"a\":[1,2]}\n",                 // array: rejected
		"{\"a\":1,\"a\":2}\n",             // duplicate key: rejected
		"{\"é\":\"ü\"}\n{\"é\":\"群体\"}\n", // unicode keys and values
		// Dictionary stress: levels differing only by case/whitespace.
		"{\"g\":\"x\"}\n{\"g\":\"X\"}\n{\"g\":\" x\"}\n{\"g\":\"x \"}\n{\"g\":\"x\"}\n",
		"{\"a\":1}\n{\"a\":2}{\"a\":3}\n", // objects without newline separator
		"{\"a\":1}\ngarbage\n",            // trailing garbage
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		fr, err := ReadNDJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		rows, cols := fr.NumRows(), fr.NumCols()
		if cols == 0 {
			t.Fatalf("parsed frame has no columns: %q", input)
		}
		for j := 0; j < cols; j++ {
			c := fr.ColAt(j)
			if c.Len() != rows {
				t.Fatalf("column %q has %d rows, frame has %d: %q", c.Name(), c.Len(), rows, input)
			}
			for i := 0; i < rows; i++ {
				_ = c.Value(i)
			}
			if _, dict, ok := c.DictView(); ok {
				seen := make(map[string]bool, len(dict))
				for _, lv := range dict {
					if seen[lv] {
						t.Fatalf("column %q dict repeats level %q: %q", c.Name(), lv, input)
					}
					seen[lv] = true
				}
			}
		}
		if h1, h2 := fr.Hash(), fr.Hash(); h1 != h2 {
			t.Fatalf("Hash not deterministic: %s vs %s", h1, h2)
		}
		again, err := ReadNDJSON(strings.NewReader(input))
		if err != nil {
			t.Fatalf("re-parse of accepted input failed: %v: %q", err, input)
		}
		if !fr.Equal(again) || fr.Hash() != again.Hash() {
			t.Fatalf("re-parse not deterministic: %q", input)
		}
		var buf bytes.Buffer
		if err := fr.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON of parsed frame failed: %v: %q", err, input)
		}
		back, err := frame.ReadJSON(&buf)
		if err != nil {
			t.Fatalf("codec round-trip failed: %v: %q", err, input)
		}
		if !back.Equal(fr) || back.Hash() != fr.Hash() {
			t.Fatalf("codec round-trip changed the frame: %q", input)
		}
		for j := 0; j < cols; j++ {
			_, _, wantDict := fr.ColAt(j).DictView()
			_, _, gotDict := back.ColAt(j).DictView()
			if wantDict != gotDict {
				t.Fatalf("codec round-trip changed column %q representation: %q", fr.ColAt(j).Name(), input)
			}
		}
	})
}
