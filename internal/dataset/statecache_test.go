package dataset

import (
	"fmt"
	"sync"
	"testing"
)

func TestStateCacheBasics(t *testing.T) {
	c := NewStateCache(100)
	if c.Budget() != 100 {
		t.Fatalf("Budget = %d, want 100", c.Budget())
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get on empty cache hit")
	}
	c.Put("a", "A", 40)
	c.Put("b", "B", 40)
	if v, ok := c.Get("a"); !ok || v.(string) != "A" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	snap := c.Metrics()
	if snap.Resident != 2 || snap.Bytes != 80 || snap.Hits != 1 || snap.Misses != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestStateCacheDefaultBudget(t *testing.T) {
	if got := NewStateCache(0).Budget(); got != DefaultStateBudgetBytes {
		t.Errorf("Budget() = %d, want default %d", got, DefaultStateBudgetBytes)
	}
	if got := NewStateCache(-5).Budget(); got != DefaultStateBudgetBytes {
		t.Errorf("Budget() = %d, want default %d", got, DefaultStateBudgetBytes)
	}
}

func TestStateCacheLRUEviction(t *testing.T) {
	c := NewStateCache(100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	c.Get("a")        // "a" most recent; "b" is now the LRU victim
	c.Put("c", 3, 40) // over budget: evicts "b"
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %q evicted out of LRU order", k)
		}
	}
	snap := c.Metrics()
	if snap.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", snap.Evictions)
	}
	if snap.Bytes != 80 || snap.Bytes > snap.BudgetBytes {
		t.Errorf("Bytes = %d (budget %d), want 80 within budget", snap.Bytes, snap.BudgetBytes)
	}
}

func TestStateCacheReplaceRefreshes(t *testing.T) {
	c := NewStateCache(100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	c.Put("a", 10, 60) // replace: new value, new size, now most recent
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Fatalf("Get(a) after replace = %v, %v", v, ok)
	}
	if got := c.Metrics().Bytes; got != 100 {
		t.Fatalf("Bytes after replace = %d, want 100", got)
	}
	c.Put("c", 3, 40) // evicts "b", the LRU after a's refresh
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; replace did not refresh a's recency")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite refresh")
	}
}

func TestStateCacheOversizeValueSkipped(t *testing.T) {
	c := NewStateCache(100)
	c.Put("a", 1, 40)
	c.Put("huge", 2, 1000) // larger than the whole budget: not cached
	if _, ok := c.Get("huge"); ok {
		t.Error("oversize value was cached")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("oversize Put evicted resident entries")
	}
	c.Put("neg", 3, -10) // negative size clamps to zero
	if _, ok := c.Get("neg"); !ok {
		t.Error("negative-size value not cached")
	}
	if got := c.Metrics().Bytes; got != 40 {
		t.Errorf("Bytes = %d, want 40", got)
	}
}

// TestStateCacheConcurrentChurn hammers a tiny cache from many
// goroutines (the -race suite runs this interleaved): every hit must
// return the value stored under the key, and residency must respect
// the budget throughout.
func TestStateCacheConcurrentChurn(t *testing.T) {
	c := NewStateCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k-%d", (g*31+i)%24)
				if v, ok := c.Get(k); ok && v.(string) != k {
					t.Errorf("Get(%q) returned %v", k, v)
				}
				c.Put(k, k, 16)
				if i%50 == 0 {
					_ = c.Metrics()
					_ = c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := c.Metrics()
	if snap.Bytes > snap.BudgetBytes {
		t.Errorf("Bytes %d exceeds budget %d after churn", snap.Bytes, snap.BudgetBytes)
	}
	if snap.Evictions == 0 {
		t.Error("churn never evicted")
	}
}
