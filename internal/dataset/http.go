package dataset

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/httpx"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// UploadWire is the JSON body of POST /v1/datasets. Exactly one of CSV
// or NDJSON must be set; raw text/csv and application/x-ndjson bodies
// (with ?name=) are also accepted.
type UploadWire struct {
	// Name labels the dataset in listings (default "dataset").
	Name string `json:"name,omitempty"`
	// Tenant is the uploading tenant's id; the X-RDS-Tenant header
	// takes precedence, both empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// CSV is an inline CSV document with a header row.
	CSV string `json:"csv,omitempty"`
	// NDJSON is newline-delimited JSON, one flat object per row.
	NDJSON string `json:"ndjson,omitempty"`
}

// Handler exposes a Registry over HTTP:
//
//	POST   /v1/datasets        load a dataset once -> 201 with its content-hash ref
//	GET    /v1/datasets        list resident datasets (most recently used first)
//	GET    /v1/datasets/{ref}  one dataset's metadata
//	DELETE /v1/datasets/{ref}  evict (409 while pinned by a monitor)
//
// The returned "ref" is the dataset_ref audit requests and monitor
// registrations resolve by. cmd/rds-serve mounts the handler on the
// audit API's mux; all responses are application/json.
type Handler struct {
	reg *Registry
}

// NewHandler wraps the registry in the HTTP API.
func NewHandler(reg *Registry) *Handler { return &Handler{reg: reg} }

// Registry returns the underlying registry, so the serving plane can
// resolve dataset_refs and merge the registry gauges into /metrics.
func (h *Handler) Registry() *Registry { return h.reg }

// ServeHTTP routes the dataset API. Every operation is tenant-scoped:
// the tenant comes from the X-RDS-Tenant header (validated here, so
// the handler is safe to mount standalone), the "tenant" wire/query
// field, or defaults.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r, err := httpx.Tenant(r)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/datasets")
	if !ok {
		httpx.Error(w, http.StatusNotFound, fmt.Errorf("no route %s", r.URL.Path))
		return
	}
	rest = strings.Trim(rest, "/")
	switch {
	case rest == "" && r.Method == http.MethodPost:
		h.upload(w, r)
	case rest == "" && r.Method == http.MethodGet:
		ten, err := tenant.Or(r.Context(), r.URL.Query().Get("tenant"))
		if err != nil {
			httpx.Error(w, http.StatusBadRequest, err)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, h.reg.ListAs(ten))
	case rest == "":
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("POST or GET required"))
	default:
		h.byRef(w, r, rest)
	}
}

func (h *Handler) upload(w http.ResponseWriter, r *http.Request) {
	name, wireTenant, f, err := h.decodeUpload(w, r)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	ten, err := tenant.Or(r.Context(), wireTenant)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	meta, err := h.reg.PutAs(ten, httpx.StringOr(name, "dataset"), f)
	switch {
	case errors.Is(err, tenant.ErrQuota):
		// The tenant's own budget, not the service's: 429.
		httpx.Error(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrOverBudget):
		httpx.Error(w, http.StatusInsufficientStorage, err)
		return
	case err != nil:
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	httpx.WriteJSON(w, http.StatusCreated, meta)
}

// decodeUpload parses the upload body into a frame plus the wire-level
// tenant hint: JSON envelopes as-is, raw text/csv and
// application/x-ndjson streams directly off the (size-capped) body
// without an intermediate string (?name= and ?tenant= from the query).
func (h *Handler) decodeUpload(w http.ResponseWriter, r *http.Request) (name, wireTenant string, f *frame.Frame, err error) {
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "text/csv"):
		r.Body = http.MaxBytesReader(w, r.Body, httpx.MaxBodyBytes)
		f, err := frame.ReadCSV(r.Body)
		return r.URL.Query().Get("name"), r.URL.Query().Get("tenant"), f, err
	case strings.HasPrefix(ct, "application/x-ndjson"):
		r.Body = http.MaxBytesReader(w, r.Body, httpx.MaxBodyBytes)
		f, err := ReadNDJSON(r.Body)
		return r.URL.Query().Get("name"), r.URL.Query().Get("tenant"), f, err
	}
	var wire UploadWire
	if err := httpx.DecodeJSON(w, r, &wire); err != nil {
		return "", "", nil, err
	}
	switch {
	case wire.CSV != "" && wire.NDJSON == "":
		f, err := frame.ReadCSVString(wire.CSV)
		return wire.Name, wire.Tenant, f, err
	case wire.NDJSON != "" && wire.CSV == "":
		f, err := ReadNDJSON(strings.NewReader(wire.NDJSON))
		return wire.Name, wire.Tenant, f, err
	}
	return "", "", nil, errors.New("exactly one of csv or ndjson must be set")
}

func (h *Handler) byRef(w http.ResponseWriter, r *http.Request, ref string) {
	ten, err := tenant.Or(r.Context(), r.URL.Query().Get("tenant"))
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	switch r.Method {
	case http.MethodGet:
		meta, ok := h.reg.GetAs(ten, ref)
		if !ok {
			// Another tenant's ref reads as absent — no cross-tenant
			// probing.
			httpx.Error(w, http.StatusNotFound, fmt.Errorf("no dataset %q", ref))
			return
		}
		httpx.WriteJSON(w, http.StatusOK, meta)
	case http.MethodDelete:
		ok, err := h.reg.DeleteAs(ten, ref)
		if errors.Is(err, ErrPinned) {
			httpx.Error(w, http.StatusConflict, err)
			return
		}
		if !ok {
			httpx.Error(w, http.StatusNotFound, fmt.Errorf("no dataset %q", ref))
			return
		}
		httpx.WriteJSON(w, http.StatusOK, map[string]string{"deleted": ref})
	default:
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("GET or DELETE required"))
	}
}
