// Package httpx holds the JSON plumbing shared by the service's HTTP
// planes (internal/serve and internal/monitor): response encoding, the
// error envelope, request-body decoding with a shared size bound, and
// small wire-level defaulting helpers. Keeping them in one place
// guarantees the request/response and monitoring APIs cannot drift
// apart in their JSON error behavior.
package httpx

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/responsible-data-science/rds/internal/tenant"
)

// MaxBodyBytes bounds one uploaded request body (CSV payloads
// included) across every API plane: 64 MiB.
const MaxBodyBytes = 64 << 20

// TenantHeader is the request header naming the calling tenant. A
// request without it runs as tenant.Default (single-tenant clients
// keep working unchanged); an invalid value is a 400 at the edge.
const TenantHeader = "X-RDS-Tenant"

// Tenant validates the request's TenantHeader once at the HTTP edge
// and, when present, returns a request whose context carries the
// explicit tenant id (tenant.NewContext). Without the header the
// request is returned untouched so wire-level "tenant" fields can
// still apply via tenant.Or. The error, when non-nil, is a client
// error — map it to 400.
func Tenant(r *http.Request) (*http.Request, error) {
	raw := r.Header.Get(TenantHeader)
	if raw == "" {
		return r, nil
	}
	id, err := tenant.Normalize(raw)
	if err != nil {
		return r, err
	}
	return r.WithContext(tenant.NewContext(r.Context(), id)), nil
}

// WriteJSON renders v as indented application/json with the given
// status. Every response on every plane — success and error alike —
// goes through here, so clients can always parse the body. Encoding
// happens before the status line is written: a value that cannot
// marshal answers 500 with the error envelope instead of a success
// status over an empty body.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		status = http.StatusInternalServerError
		body, _ = json.MarshalIndent(map[string]string{"error": "encoding response: " + err.Error()}, "", "  ")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte("\n"))
}

// Error renders err in the service-wide JSON error envelope
// {"error": "..."} with the given status.
func Error(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, map[string]string{"error": err.Error()})
}

// DecodeJSON strictly decodes the request body into v: the body is
// capped at MaxBodyBytes and unknown fields are rejected, so a typo'd
// field name fails loudly instead of silently applying defaults.
func DecodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding JSON body: %w", err)
	}
	return nil
}

// StringOr returns v, or fallback when v is empty — the wire-level
// defaulting idiom for optional string fields.
func StringOr(v, fallback string) string {
	if v == "" {
		return fallback
	}
	return v
}
