package httpx

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/tenant"
)

func TestWriteJSONAndErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusCreated, map[string]int{"n": 3})
	if rec.Code != http.StatusCreated {
		t.Errorf("status = %d, want 201", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var out map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["n"] != 3 {
		t.Errorf("body = %q (%v), want {\"n\":3}", rec.Body, err)
	}

	rec = httptest.NewRecorder()
	Error(rec, http.StatusBadRequest, errors.New("boom"))
	var env map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("error envelope not JSON: %v", err)
	}
	if env["error"] != "boom" || rec.Code != http.StatusBadRequest {
		t.Errorf("envelope = %+v status %d, want error=boom 400", env, rec.Code)
	}
}

func TestDecodeJSONRejectsUnknownFields(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{"known":1,"nope":2}`))
	var v struct {
		Known int `json:"known"`
	}
	if err := DecodeJSON(httptest.NewRecorder(), req, &v); err == nil {
		t.Fatal("unknown field accepted")
	}
	req = httptest.NewRequest(http.MethodPost, "/", strings.NewReader(`{"known":7}`))
	if err := DecodeJSON(httptest.NewRecorder(), req, &v); err != nil || v.Known != 7 {
		t.Fatalf("DecodeJSON = %v, known = %d, want nil and 7", err, v.Known)
	}
}

func TestTenantHeader(t *testing.T) {
	// No header: request unchanged, no explicit tenant in context.
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	got, err := Tenant(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tenant.FromContext(got.Context()); ok {
		t.Fatal("tenant set in context without header")
	}

	// Valid header: context carries the explicit id.
	req = httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(TenantHeader, "acme")
	got, err = Tenant(req)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := tenant.FromContext(got.Context()); !ok || id != "acme" {
		t.Fatalf("tenant in context = %q, %v; want acme, true", id, ok)
	}

	// Invalid header: client error.
	req = httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(TenantHeader, "Not Valid")
	if _, err := Tenant(req); !errors.Is(err, tenant.ErrInvalidID) {
		t.Fatalf("Tenant err = %v, want ErrInvalidID", err)
	}
}

func TestStringOr(t *testing.T) {
	if got := StringOr("", "fb"); got != "fb" {
		t.Errorf("StringOr(\"\") = %q, want fb", got)
	}
	if got := StringOr("x", "fb"); got != "x" {
		t.Errorf("StringOr(\"x\") = %q, want x", got)
	}
}

func TestWriteJSONUnencodableValueAnswers500(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusOK, math.NaN())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (encoding must fail before the status line)", rec.Code)
	}
	var env map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("500 body is not the JSON error envelope: %v: %q", err, rec.Body.String())
	}
	if !strings.Contains(env["error"], "encoding response") {
		t.Fatalf("error envelope = %q, want an encoding-response message", env["error"])
	}
}
