// Package privacy implements FACT Q3: "data science that ensures
// confidentiality — how to answer questions without revealing secrets?"
//
// Three complementary mechanisms, mirroring the paper's prescription:
//
//   - Differential privacy under a strict, enforced privacy budget
//     (the paper: "techniques that work under a strict privacy budget"):
//     Laplace/Gaussian/exponential mechanisms and budget-accounted
//     private aggregates.
//   - Syntactic anonymization for data publishing: k-anonymity via
//     Mondrian generalization, with l-diversity and t-closeness checks
//     and a re-identification risk estimate.
//   - Cryptographic protection for data in use: HMAC-based polymorphic
//     pseudonymization (recipient-specific, unlinkable pseudonyms) and
//     Paillier additively homomorphic encryption standing in for the
//     polymorphic encryption the paper cites, enabling aggregation over
//     ciphertexts.
package privacy

import (
	"fmt"
	"math"
	"sync"

	"github.com/responsible-data-science/rds/internal/rng"
)

// Budget is a privacy-budget accountant enforcing sequential composition:
// every differentially private release spends epsilon (and optionally
// delta), and once the budget is exhausted further queries are refused
// rather than silently degraded. This hard refusal is the point — the
// paper's pipeline must not leak "just one more query" past its promise.
// Budget is safe for concurrent use.
type Budget struct {
	mu           sync.Mutex
	totalEps     float64
	totalDelta   float64
	spentEps     float64
	spentDelta   float64
	spendEntries []SpendEntry
}

// SpendEntry records one budget expenditure for the audit trail.
type SpendEntry struct {
	Label string
	Eps   float64
	Delta float64
}

// ErrBudgetExhausted is returned (wrapped) when a spend would exceed the
// budget.
var ErrBudgetExhausted = fmt.Errorf("privacy: budget exhausted")

// NewBudget creates an accountant with the given total epsilon and delta.
func NewBudget(eps, delta float64) (*Budget, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("privacy: total epsilon must be positive and finite, got %v", eps)
	}
	if delta < 0 || delta >= 1 {
		return nil, fmt.Errorf("privacy: total delta must be in [0,1), got %v", delta)
	}
	return &Budget{totalEps: eps, totalDelta: delta}, nil
}

// Spend reserves (eps, delta) from the budget, recording label in the
// audit trail. It fails with ErrBudgetExhausted if the remaining budget is
// insufficient, without partial spending.
func (b *Budget) Spend(label string, eps, delta float64) error {
	if eps <= 0 || math.IsNaN(eps) {
		return fmt.Errorf("privacy: spend epsilon must be positive, got %v", eps)
	}
	if delta < 0 {
		return fmt.Errorf("privacy: spend delta must be non-negative, got %v", delta)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	const tol = 1e-12
	if b.spentEps+eps > b.totalEps+tol || b.spentDelta+delta > b.totalDelta+tol {
		return fmt.Errorf("%w: requested eps=%v delta=%v, remaining eps=%v delta=%v (%s)",
			ErrBudgetExhausted, eps, delta, b.totalEps-b.spentEps, b.totalDelta-b.spentDelta, label)
	}
	b.spentEps += eps
	b.spentDelta += delta
	b.spendEntries = append(b.spendEntries, SpendEntry{Label: label, Eps: eps, Delta: delta})
	return nil
}

// Remaining returns the unspent (epsilon, delta).
func (b *Budget) Remaining() (eps, delta float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totalEps - b.spentEps, b.totalDelta - b.spentDelta
}

// Spent returns the consumed (epsilon, delta).
func (b *Budget) Spent() (eps, delta float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spentEps, b.spentDelta
}

// Trail returns a copy of the expenditure audit trail.
func (b *Budget) Trail() []SpendEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]SpendEntry(nil), b.spendEntries...)
}

// LaplaceMechanism releases value + Laplace(sensitivity/eps) noise,
// charging eps to the budget. sensitivity is the query's L1 sensitivity.
func LaplaceMechanism(b *Budget, label string, value, sensitivity, eps float64, src *rng.Source) (float64, error) {
	if sensitivity <= 0 {
		return 0, fmt.Errorf("privacy: sensitivity must be positive, got %v", sensitivity)
	}
	if err := b.Spend(label, eps, 0); err != nil {
		return 0, err
	}
	return value + src.Laplace(0, sensitivity/eps), nil
}

// GaussianMechanism releases value + N(0, sigma^2) noise calibrated for
// (eps, delta)-DP with the classic analytic bound
// sigma = sensitivity * sqrt(2 ln(1.25/delta)) / eps (valid for eps <= 1).
func GaussianMechanism(b *Budget, label string, value, sensitivity, eps, delta float64, src *rng.Source) (float64, error) {
	if sensitivity <= 0 {
		return 0, fmt.Errorf("privacy: sensitivity must be positive, got %v", sensitivity)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("privacy: Gaussian mechanism needs delta in (0,1), got %v", delta)
	}
	if eps <= 0 || eps > 1 {
		return 0, fmt.Errorf("privacy: classic Gaussian mechanism bound needs eps in (0,1], got %v", eps)
	}
	if err := b.Spend(label, eps, delta); err != nil {
		return 0, err
	}
	sigma := sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / eps
	return value + src.Normal(0, sigma), nil
}

// ExponentialMechanism selects one of the candidates with probability
// proportional to exp(eps * score / (2 * sensitivity)), the standard
// utility-based selection mechanism. Returns the chosen index.
func ExponentialMechanism(b *Budget, label string, scores []float64, sensitivity, eps float64, src *rng.Source) (int, error) {
	if len(scores) == 0 {
		return 0, fmt.Errorf("privacy: exponential mechanism needs candidates")
	}
	if sensitivity <= 0 {
		return 0, fmt.Errorf("privacy: sensitivity must be positive, got %v", sensitivity)
	}
	if err := b.Spend(label, eps, 0); err != nil {
		return 0, err
	}
	// Normalize in log space for stability.
	maxScore := scores[0]
	for _, s := range scores[1:] {
		if s > maxScore {
			maxScore = s
		}
	}
	weights := make([]float64, len(scores))
	for i, s := range scores {
		weights[i] = math.Exp(eps * (s - maxScore) / (2 * sensitivity))
	}
	return src.Categorical(weights), nil
}

// RandomizedResponse releases a bit with plausible deniability: the true
// bit is kept with probability e^eps/(1+e^eps), flipped otherwise. The
// same accountant semantics apply. Returns the released bit.
func RandomizedResponse(b *Budget, label string, truth bool, eps float64, src *rng.Source) (bool, error) {
	if err := b.Spend(label, eps, 0); err != nil {
		return false, err
	}
	keep := math.Exp(eps) / (1 + math.Exp(eps))
	if src.Bernoulli(keep) {
		return truth, nil
	}
	return !truth, nil
}

// RandomizedResponseEstimate debiases an observed positive rate from
// randomized responses collected at the given eps.
func RandomizedResponseEstimate(observedRate, eps float64) float64 {
	p := math.Exp(eps) / (1 + math.Exp(eps))
	return (observedRate + p - 1) / (2*p - 1)
}

// PrivateCount releases a noisy count of rows matching pred.
// Count queries have sensitivity 1.
func PrivateCount(b *Budget, label string, n int, eps float64, src *rng.Source) (float64, error) {
	return LaplaceMechanism(b, label, float64(n), 1, eps, src)
}

// PrivateSum releases a noisy sum of values clamped to [lo, hi]; clamping
// bounds the sensitivity at max(|lo|, |hi|). The clamp is applied here so
// callers cannot accidentally submit unbounded-sensitivity data.
func PrivateSum(b *Budget, label string, values []float64, lo, hi, eps float64, src *rng.Source) (float64, error) {
	if lo >= hi {
		return 0, fmt.Errorf("privacy: PrivateSum needs lo < hi, got [%v,%v]", lo, hi)
	}
	var sum float64
	for _, v := range values {
		sum += clampF(v, lo, hi)
	}
	sensitivity := math.Max(math.Abs(lo), math.Abs(hi))
	return LaplaceMechanism(b, label, sum, sensitivity, eps, src)
}

// PrivateMean releases a noisy mean of values clamped to [lo, hi], using
// half the epsilon for the sum and half for the count, then dividing.
// For n == 0 an error is returned (a DP mean of nothing reveals nothing
// but a division by zero).
func PrivateMean(b *Budget, label string, values []float64, lo, hi, eps float64, src *rng.Source) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("privacy: PrivateMean of empty slice")
	}
	if lo >= hi {
		return 0, fmt.Errorf("privacy: PrivateMean needs lo < hi, got [%v,%v]", lo, hi)
	}
	sum, err := PrivateSum(b, label+"/sum", values, lo, hi, eps/2, src)
	if err != nil {
		return 0, err
	}
	count, err := PrivateCount(b, label+"/count", len(values), eps/2, src)
	if err != nil {
		return 0, err
	}
	if count < 1 {
		count = 1
	}
	return clampF(sum/count, lo, hi), nil
}

// PrivateHistogram releases a noisy count per category. A single row
// changes exactly one bucket, so by parallel composition the whole
// histogram costs one eps (charged once).
func PrivateHistogram(b *Budget, label string, counts map[string]int, eps float64, src *rng.Source) (map[string]float64, error) {
	if err := b.Spend(label, eps, 0); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(counts))
	for k, v := range counts {
		noisy := float64(v) + src.Laplace(0, 1/eps)
		if noisy < 0 {
			noisy = 0
		}
		out[k] = noisy
	}
	return out, nil
}

// PrivateQuantile estimates the q-quantile of values within [lo, hi] via
// the exponential mechanism over candidate split points (the standard
// Smith mechanism on a discretized domain with `grid` candidates).
func PrivateQuantile(b *Budget, label string, values []float64, q, lo, hi, eps float64, grid int, src *rng.Source) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("privacy: quantile q=%v out of [0,1]", q)
	}
	if lo >= hi {
		return 0, fmt.Errorf("privacy: PrivateQuantile needs lo < hi")
	}
	if grid < 2 {
		return 0, fmt.Errorf("privacy: PrivateQuantile needs grid >= 2")
	}
	n := len(values)
	target := q * float64(n)
	candidates := make([]float64, grid)
	scores := make([]float64, grid)
	for g := 0; g < grid; g++ {
		c := lo + (hi-lo)*float64(g)/float64(grid-1)
		candidates[g] = c
		var below float64
		for _, v := range values {
			if clampF(v, lo, hi) <= c {
				below++
			}
		}
		// Utility: negative distance between rank and target rank.
		scores[g] = -math.Abs(below - target)
	}
	idx, err := ExponentialMechanism(b, label, scores, 1, eps, src)
	if err != nil {
		return 0, err
	}
	return candidates[idx], nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
