package privacy

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

func TestSparseVectorDetectsClearPositives(t *testing.T) {
	src := rng.New(71)
	b := newBudget(t, 10, 0)
	sv, err := NewSparseVector(b, "monitor", 100, 1, 2.0, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	// Stream of clearly-below values, then clearly-above ones.
	positives := 0
	for i := 0; i < 50; i++ {
		hit, err := sv.Query(10) // far below threshold 100
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			positives++
		}
	}
	if positives > 2 {
		t.Fatalf("%d false positives on far-below stream", positives)
	}
	for i := 0; i < 3-positives; i++ {
		hit, err := sv.Query(500) // far above
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("clear positive missed at %d", i)
		}
	}
	if sv.Remaining() != 0 {
		t.Fatalf("remaining = %d", sv.Remaining())
	}
	if _, err := sv.Query(500); err == nil {
		t.Fatal("exhausted sparse vector answered")
	}
}

func TestSparseVectorChargesOnce(t *testing.T) {
	src := rng.New(73)
	b := newBudget(t, 1.0, 0)
	sv, err := NewSparseVector(b, "m", 50, 1, 1.0, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	eps, _ := b.Remaining()
	if eps != 0 {
		t.Fatalf("remaining after setup = %v, want 0 (prepaid)", eps)
	}
	// Hundreds of negative queries cost nothing extra.
	for i := 0; i < 500; i++ {
		if _, err := sv.Query(-100); err != nil {
			t.Fatal(err)
		}
	}
	eps, _ = b.Remaining()
	if eps != 0 {
		t.Fatalf("negative queries changed the budget: %v", eps)
	}
}

func TestSparseVectorValidation(t *testing.T) {
	src := rng.New(1)
	b := newBudget(t, 10, 0)
	if _, err := NewSparseVector(b, "x", 0, 0, 1, 1, src); err == nil {
		t.Fatal("zero sensitivity accepted")
	}
	if _, err := NewSparseVector(b, "x", 0, 1, 1, 0, src); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := NewSparseVector(b, "x", 0, 1, 0, 1, src); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	tight := newBudget(t, 0.5, 0)
	if _, err := NewSparseVector(tight, "x", 0, 1, 1.0, 1, src); err == nil {
		t.Fatal("overspending sparse vector accepted")
	}
}

func TestContinualCounterAccuracy(t *testing.T) {
	src := rng.New(79)
	b := newBudget(t, 1.0, 0)
	c, err := NewContinualCounter(b, "live", 1.0, 20, src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	for i := 0; i < n; i++ {
		if err := c.Increment(1); err != nil {
			t.Fatal(err)
		}
	}
	if c.TrueCount() != n {
		t.Fatalf("true count = %v, want %d", c.TrueCount(), n)
	}
	// Binary-mechanism error is O(log^{1.5} n / eps) — far below the
	// naive per-step-noise error of O(n). Allow a generous constant.
	errAbs := math.Abs(c.Count() - n)
	logN := math.Log2(float64(n))
	bound := 20 * math.Pow(logN, 1.5)
	if errAbs > bound {
		t.Fatalf("continual count error %v exceeds O(log^1.5 n) bound %v", errAbs, bound)
	}
	if c.T() != n {
		t.Fatalf("T = %d", c.T())
	}
}

func TestContinualCounterPrefixErrorBounded(t *testing.T) {
	// The error must stay bounded at *every* prefix, not only at the end.
	src := rng.New(83)
	b := newBudget(t, 2.0, 0)
	c, err := NewContinualCounter(b, "live", 2.0, 18, src)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := 1; i <= 20000; i++ {
		if err := c.Increment(1); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 { // sample prefixes
			if e := math.Abs(c.Count() - float64(i)); e > worst {
				worst = e
			}
		}
	}
	bound := 20 * math.Pow(math.Log2(20000), 1.5) / 2.0
	if worst > bound {
		t.Fatalf("worst prefix error %v exceeds %v", worst, bound)
	}
}

func TestContinualCounterChargesOnce(t *testing.T) {
	src := rng.New(89)
	b := newBudget(t, 1.0, 0)
	c, err := NewContinualCounter(b, "c", 1.0, 10, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Increment(1); err != nil {
			t.Fatal(err)
		}
		c.Count() // repeated reads are free
	}
	eps, _ := b.Remaining()
	if eps != 0 {
		t.Fatalf("stream changed budget: remaining %v", eps)
	}
}

func TestContinualCounterValidation(t *testing.T) {
	src := rng.New(1)
	b := newBudget(t, 10, 0)
	if _, err := NewContinualCounter(b, "c", 1, 0, src); err == nil {
		t.Fatal("zero levels accepted")
	}
	if _, err := NewContinualCounter(b, "c", 0, 10, src); err == nil {
		t.Fatal("zero eps accepted")
	}
	c, err := NewContinualCounter(b, "c", 1, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Increment(2); err == nil {
		t.Fatal("out-of-range increment accepted")
	}
	// Capacity 2^3-1 = 7 increments.
	for i := 0; i < 7; i++ {
		if err := c.Increment(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Increment(1); err == nil {
		t.Fatal("capacity overflow accepted")
	}
}

func TestContinualCounterNeverNegative(t *testing.T) {
	src := rng.New(97)
	b := newBudget(t, 0.1, 0)
	c, err := NewContinualCounter(b, "c", 0.1, 15, src)
	if err != nil {
		t.Fatal(err)
	}
	// With tiny eps and zero increments, noise could go negative; the
	// release clamps at 0.
	for i := 0; i < 50; i++ {
		if err := c.Increment(0); err != nil {
			t.Fatal(err)
		}
		if c.Count() < 0 {
			t.Fatal("negative released count")
		}
	}
}
