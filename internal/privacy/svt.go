package privacy

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/rng"
)

// SparseVector implements the sparse vector technique (AboveThreshold):
// it answers a stream of threshold queries — "is this statistic above T?"
// — and charges the privacy budget only once per *positive* answer
// (plus the initial threshold noise), regardless of how many negative
// answers it gives. This is the canonical tool for monitoring pipelines
// under a strict budget: most checks pass silently for free.
//
// The implementation is the standard AboveThreshold of Dwork & Roth
// (Alg. 1), generalized to restart after each positive so the caller can
// detect up to Count positives with total cost eps.
type SparseVector struct {
	budget    *Budget
	src       *rng.Source
	eps       float64
	threshold float64
	sens      float64
	remaining int
	noisyT    float64
	active    bool
	label     string
}

// NewSparseVector prepares an AboveThreshold instance that may report up
// to count positives. The total epsilon cost (charged immediately, since
// the mechanism's guarantee covers the whole stream) is eps; half funds
// the threshold noise, half the query noise, scaled by count as in the
// multi-positive variant.
func NewSparseVector(b *Budget, label string, threshold, sensitivity, eps float64, count int, src *rng.Source) (*SparseVector, error) {
	if sensitivity <= 0 {
		return nil, fmt.Errorf("privacy: sensitivity must be positive, got %v", sensitivity)
	}
	if count <= 0 {
		return nil, fmt.Errorf("privacy: positive count must be positive, got %d", count)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("privacy: epsilon must be positive, got %v", eps)
	}
	if err := b.Spend(label, eps, 0); err != nil {
		return nil, err
	}
	sv := &SparseVector{
		budget:    b,
		src:       src,
		eps:       eps / float64(count),
		threshold: threshold,
		sens:      sensitivity,
		remaining: count,
		label:     label,
	}
	sv.rearm()
	return sv, nil
}

func (sv *SparseVector) rearm() {
	// eps1 = eps/2 for the threshold; eps2 = eps/2 for queries.
	sv.noisyT = sv.threshold + sv.src.Laplace(0, 2*sv.sens/sv.eps)
	sv.active = true
}

// Remaining returns how many positive answers the instance can still give.
func (sv *SparseVector) Remaining() int { return sv.remaining }

// Query tests one statistic against the threshold. It returns true when
// the noisy statistic exceeds the noisy threshold. After the configured
// number of positives the instance is exhausted and returns an error.
func (sv *SparseVector) Query(value float64) (bool, error) {
	if sv.remaining <= 0 || !sv.active {
		return false, fmt.Errorf("privacy: sparse vector exhausted (%s)", sv.label)
	}
	noisy := value + sv.src.Laplace(0, 4*sv.sens/sv.eps)
	if noisy >= sv.noisyT {
		sv.remaining--
		if sv.remaining > 0 {
			sv.rearm()
		} else {
			sv.active = false
		}
		return true, nil
	}
	return false, nil
}
