package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/responsible-data-science/rds/internal/rng"
	"github.com/responsible-data-science/rds/internal/synth"
)

// Property: the randomized-response debiasing identity holds analytically:
// if observed = p*true + (1-p)*(1-true) with p = e^eps/(1+e^eps), then
// RandomizedResponseEstimate(observed, eps) == true rate.
func TestRandomizedResponseDebiasIdentity(t *testing.T) {
	check := func(rateRaw, epsRaw uint16) bool {
		trueRate := float64(rateRaw) / 65535
		eps := 0.05 + 4*float64(epsRaw)/65535
		p := math.Exp(eps) / (1 + math.Exp(eps))
		observed := p*trueRate + (1-p)*(1-trueRate)
		est := RandomizedResponseEstimate(observed, eps)
		return math.Abs(est-trueRate) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Anonymize never produces a class below k, for any k and any
// subset of quasi-identifiers, and preserves the row count.
func TestAnonymizeInvariantProperty(t *testing.T) {
	f, err := synth.Hospital(synth.HospitalConfig{N: 600, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	qiSets := [][]string{
		{"age"},
		{"age", "sex"},
		{"age", "sex", "zip"},
		{"zip"},
	}
	for _, qis := range qiSets {
		for _, k := range []int{2, 7, 30} {
			res, err := Anonymize(f, AnonymizeConfig{K: k, QuasiIdentifiers: qis})
			if err != nil {
				t.Fatalf("qis=%v k=%d: %v", qis, k, err)
			}
			if res.MinClassSize < k {
				t.Fatalf("qis=%v k=%d: min class %d", qis, k, res.MinClassSize)
			}
			if res.Data.NumRows() != f.NumRows() {
				t.Fatalf("row count changed")
			}
			minClass, ok, err := VerifyKAnonymity(res.Data, qis, k)
			if err != nil || !ok {
				t.Fatalf("qis=%v k=%d: verify failed (min %d, err %v)", qis, k, minClass, err)
			}
		}
	}
}

// Property: budget spend/remaining bookkeeping is conservative: after any
// sequence of spends, spent + remaining == total exactly.
func TestBudgetConservationProperty(t *testing.T) {
	check := func(spends []uint8) bool {
		total := 10.0
		b, err := NewBudget(total, 0)
		if err != nil {
			return false
		}
		for _, s := range spends {
			eps := float64(s%40)/10 + 0.01
			_ = b.Spend("q", eps, 0) // refusals fine
		}
		spent, _ := b.Spent()
		remaining, _ := b.Remaining()
		return math.Abs(spent+remaining-total) < 1e-9 && remaining >= -1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Laplace mechanism releases are unbiased — the mean of many
// releases converges to the true value.
func TestLaplaceUnbiasedProperty(t *testing.T) {
	src := rng.New(121)
	for _, truth := range []float64{-50, 0, 123.4} {
		b, err := NewBudget(1e6, 0)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const reps = 20000
		for i := 0; i < reps; i++ {
			v, err := LaplaceMechanism(b, "u", truth, 1, 1.0, src)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if mean := sum / reps; math.Abs(mean-truth) > 0.05 {
			t.Fatalf("mean release %v for truth %v", mean, truth)
		}
	}
}

// Property: pseudonyms are injective per domain over distinct ids (no
// collisions in realistic universes).
func TestPseudonymInjectivityProperty(t *testing.T) {
	p, err := NewPseudonymizer([]byte("prop-test-key-000000000000000000"))
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, b string) bool {
		if a == b {
			return true
		}
		return p.Pseudonym("d", a) != p.Pseudonym("d", b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
