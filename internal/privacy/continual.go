package privacy

import (
	"fmt"
	"math"

	"github.com/responsible-data-science/rds/internal/rng"
)

// ContinualCounter releases a running count under differential privacy
// using the binary (tree) mechanism of Chan, Shi & Song: after T
// increments, each prefix count has error O(log^{1.5} T / eps) rather
// than the O(T/eps) of renoising every step, and the whole unbounded
// stream costs a single eps. This is the primitive that lets the
// Internet-Minute pipeline publish live counters responsibly.
type ContinualCounter struct {
	eps   float64
	src   *rng.Source
	t     int       // number of increments so far
	sums  []float64 // true partial sums per tree level (dyadic blocks)
	noise []float64 // noise per active dyadic block
	depth int
}

// NewContinualCounter creates a counter releasing eps-DP prefix counts for
// streams up to 2^maxLevels increments (maxLevels ~ 30 covers 10^9).
// The budget is charged once, up front, for the whole stream.
func NewContinualCounter(b *Budget, label string, eps float64, maxLevels int, src *rng.Source) (*ContinualCounter, error) {
	if maxLevels <= 0 || maxLevels > 62 {
		return nil, fmt.Errorf("privacy: maxLevels %d out of (0,62]", maxLevels)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("privacy: epsilon must be positive, got %v", eps)
	}
	if err := b.Spend(label, eps, 0); err != nil {
		return nil, err
	}
	return &ContinualCounter{
		eps:   eps,
		src:   src,
		sums:  make([]float64, maxLevels+1),
		noise: make([]float64, maxLevels+1),
		depth: maxLevels,
	}, nil
}

// Increment feeds one observation (0 or 1; fractional contributions in
// [0,1] are also accepted, e.g. clamped values).
func (c *ContinualCounter) Increment(v float64) error {
	if v < 0 || v > 1 || math.IsNaN(v) {
		return fmt.Errorf("privacy: increment %v out of [0,1]", v)
	}
	if c.t >= (1<<uint(c.depth))-1 {
		return fmt.Errorf("privacy: continual counter capacity exhausted (%d increments)", c.t)
	}
	c.t++
	// The binary representation of t tells which dyadic blocks close.
	// Standard streaming formulation: push v into level 0; when a level
	// already holds a closed block, merge upward (like binary addition).
	carry := v
	level := 0
	t := c.t
	for level < c.depth {
		if t&(1<<uint(level)) != 0 {
			// This level's block is now complete: it absorbs the carry
			// and gets fresh noise (each item is in at most `depth`
			// blocks, so per-level noise Laplace(depth/eps) yields
			// eps-DP overall).
			c.sums[level] += carry
			c.noise[level] = c.src.Laplace(0, float64(c.depth)/c.eps)
			break
		}
		// Merge the open block upward.
		carry += c.sums[level]
		c.sums[level] = 0
		c.noise[level] = 0
		level++
	}
	return nil
}

// T returns the number of increments so far.
func (c *ContinualCounter) T() int { return c.t }

// Count returns the current eps-DP running count: the sum of the active
// dyadic blocks' noisy values. Calling Count repeatedly costs nothing —
// the noise is fixed per block, which is exactly the binary mechanism's
// trick.
func (c *ContinualCounter) Count() float64 {
	var total float64
	for level := 0; level <= c.depth; level++ {
		if c.t&(1<<uint(level)) != 0 {
			total += c.sums[level] + c.noise[level]
		}
	}
	if total < 0 {
		return 0
	}
	return total
}

// TrueCount returns the exact running count (for tests and error
// measurement; a deployment would not expose this).
func (c *ContinualCounter) TrueCount() float64 {
	var total float64
	for level := 0; level <= c.depth; level++ {
		if c.t&(1<<uint(level)) != 0 {
			total += c.sums[level]
		}
	}
	return total
}
