package privacy

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// Paillier implements the Paillier additively homomorphic cryptosystem:
// Enc(a) * Enc(b) mod n^2 = Enc(a+b). It stands in for the "polymorphic
// encryption" the paper cites as the security-side answer to Q3: an
// aggregator can sum encrypted values (hospital charges, salaries, votes)
// without ever decrypting an individual record; only the key holder
// decrypts the total.
//
// The implementation uses the standard simplification g = n+1, which
// makes encryption Enc(m) = (1 + m*n) * r^n mod n^2.

// PaillierPublicKey encrypts and operates on ciphertexts.
type PaillierPublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // n^2, cached
}

// PaillierPrivateKey decrypts.
type PaillierPrivateKey struct {
	Pub    *PaillierPublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^lambda mod n^2))^-1 mod n
}

// GeneratePaillier creates a key pair with the given modulus size in bits
// (>= 256; use >= 2048 for real deployments, smaller for tests).
func GeneratePaillier(bits int) (*PaillierPrivateKey, error) {
	if bits < 256 {
		return nil, fmt.Errorf("privacy: Paillier modulus must be >= 256 bits, got %d", bits)
	}
	for attempt := 0; attempt < 16; attempt++ {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("privacy: generating prime: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("privacy: generating prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)
		n2 := new(big.Int).Mul(n, n)
		pub := &PaillierPublicKey{N: n, N2: n2}
		// mu = (L(g^lambda mod n^2))^-1 mod n with g = n+1:
		// g^lambda mod n^2 = 1 + lambda*n (binomial), so L(..) = lambda.
		mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
		if mu == nil {
			continue // gcd(lambda, n) != 1; retry with new primes
		}
		return &PaillierPrivateKey{Pub: pub, lambda: lambda, mu: mu}, nil
	}
	return nil, fmt.Errorf("privacy: failed to generate valid Paillier keys")
}

// Encrypt encrypts a non-negative integer m < N.
func (pk *PaillierPublicKey) Encrypt(m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("privacy: plaintext out of [0, N)")
	}
	// Random r in [1, N) with gcd(r, N) = 1.
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, fmt.Errorf("privacy: sampling randomness: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(big.NewInt(1)) == 0 {
			break
		}
	}
	// c = (1 + m*n) * r^n mod n^2.
	c := new(big.Int).Mul(m, pk.N)
	c.Add(c, big.NewInt(1))
	c.Mod(c, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c.Mul(c, rn)
	c.Mod(c, pk.N2)
	return c, nil
}

// EncryptInt64 encrypts a non-negative int64.
func (pk *PaillierPublicKey) EncryptInt64(m int64) (*big.Int, error) {
	if m < 0 {
		return nil, fmt.Errorf("privacy: EncryptInt64 needs non-negative value, got %d", m)
	}
	return pk.Encrypt(big.NewInt(m))
}

// Add homomorphically adds two ciphertexts: Dec(Add(c1,c2)) = m1 + m2 mod N.
func (pk *PaillierPublicKey) Add(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// AddPlain homomorphically adds a plaintext constant to a ciphertext.
func (pk *PaillierPublicKey) AddPlain(c *big.Int, m *big.Int) *big.Int {
	// c * g^m = c * (1 + m*n) mod n^2.
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	out := new(big.Int).Mul(c, gm)
	return out.Mod(out, pk.N2)
}

// MulPlain homomorphically multiplies the plaintext by a constant k:
// Dec(MulPlain(c, k)) = k*m mod N.
func (pk *PaillierPublicKey) MulPlain(c *big.Int, k *big.Int) *big.Int {
	return new(big.Int).Exp(c, k, pk.N2)
}

// Rerandomize refreshes a ciphertext so the new ciphertext is unlinkable
// to the old one while decrypting identically — the "polymorphic"
// property used when forwarding encrypted records between parties.
func (pk *PaillierPublicKey) Rerandomize(c *big.Int) (*big.Int, error) {
	zero, err := pk.Encrypt(big.NewInt(0))
	if err != nil {
		return nil, err
	}
	return pk.Add(c, zero), nil
}

// Decrypt recovers the plaintext: L(c^lambda mod n^2) * mu mod n,
// where L(x) = (x-1)/n.
func (sk *PaillierPrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(sk.Pub.N2) >= 0 {
		return nil, fmt.Errorf("privacy: ciphertext out of range")
	}
	x := new(big.Int).Exp(c, sk.lambda, sk.Pub.N2)
	x.Sub(x, big.NewInt(1))
	x.Div(x, sk.Pub.N)
	x.Mul(x, sk.mu)
	x.Mod(x, sk.Pub.N)
	return x, nil
}

// EncryptedSum encrypts each value and folds them into a single ciphertext
// holding the total — the end-to-end confidential aggregation primitive
// used by the hospital example.
func EncryptedSum(pk *PaillierPublicKey, values []int64) (*big.Int, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("privacy: EncryptedSum of empty slice")
	}
	acc, err := pk.EncryptInt64(values[0])
	if err != nil {
		return nil, err
	}
	for _, v := range values[1:] {
		c, err := pk.EncryptInt64(v)
		if err != nil {
			return nil, err
		}
		acc = pk.Add(acc, c)
	}
	return acc, nil
}
