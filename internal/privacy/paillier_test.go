package privacy

import (
	"math/big"
	"testing"
	"testing/quick"
)

// testKey generates a small (fast) key once per test binary.
var testKey *PaillierPrivateKey

func getKey(t *testing.T) *PaillierPrivateKey {
	t.Helper()
	if testKey == nil {
		k, err := GeneratePaillier(512)
		if err != nil {
			t.Fatal(err)
		}
		testKey = k
	}
	return testKey
}

func TestPaillierRoundTrip(t *testing.T) {
	sk := getKey(t)
	for _, m := range []int64{0, 1, 42, 1 << 40} {
		c, err := sk.Pub.EncryptInt64(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Fatalf("round trip %d -> %d", m, got.Int64())
		}
	}
}

func TestPaillierHomomorphicAddition(t *testing.T) {
	sk := getKey(t)
	c1, err := sk.Pub.EncryptInt64(1234)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.Pub.EncryptInt64(8766)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sk.Decrypt(sk.Pub.Add(c1, c2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 10000 {
		t.Fatalf("Enc(1234)+Enc(8766) decrypts to %v", sum)
	}
}

func TestPaillierHomomorphicProperty(t *testing.T) {
	sk := getKey(t)
	check := func(a, b uint32) bool {
		ca, err := sk.Pub.EncryptInt64(int64(a))
		if err != nil {
			return false
		}
		cb, err := sk.Pub.EncryptInt64(int64(b))
		if err != nil {
			return false
		}
		sum, err := sk.Decrypt(sk.Pub.Add(ca, cb))
		if err != nil {
			return false
		}
		return sum.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPaillierAddPlainAndMulPlain(t *testing.T) {
	sk := getKey(t)
	c, err := sk.Pub.EncryptInt64(100)
	if err != nil {
		t.Fatal(err)
	}
	cPlus := sk.Pub.AddPlain(c, big.NewInt(23))
	got, err := sk.Decrypt(cPlus)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 123 {
		t.Fatalf("AddPlain -> %v", got)
	}
	cMul := sk.Pub.MulPlain(c, big.NewInt(7))
	got, err = sk.Decrypt(cMul)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 700 {
		t.Fatalf("MulPlain -> %v", got)
	}
}

func TestPaillierCiphertextsRandomized(t *testing.T) {
	sk := getKey(t)
	c1, _ := sk.Pub.EncryptInt64(5)
	c2, _ := sk.Pub.EncryptInt64(5)
	if c1.Cmp(c2) == 0 {
		t.Fatal("two encryptions of the same value are identical (not semantically secure)")
	}
}

func TestPaillierRerandomizeUnlinkable(t *testing.T) {
	sk := getKey(t)
	c, _ := sk.Pub.EncryptInt64(77)
	r, err := sk.Pub.Rerandomize(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(c) == 0 {
		t.Fatal("rerandomization returned the same ciphertext")
	}
	got, err := sk.Decrypt(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 77 {
		t.Fatalf("rerandomized decrypts to %v", got)
	}
}

func TestEncryptedSum(t *testing.T) {
	sk := getKey(t)
	values := []int64{100, 250, 333, 17}
	c, err := EncryptedSum(sk.Pub, values)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 700 {
		t.Fatalf("encrypted sum = %v, want 700", got)
	}
	if _, err := EncryptedSum(sk.Pub, nil); err == nil {
		t.Fatal("empty sum accepted")
	}
}

func TestPaillierValidation(t *testing.T) {
	sk := getKey(t)
	if _, err := sk.Pub.EncryptInt64(-1); err == nil {
		t.Fatal("negative plaintext accepted")
	}
	tooBig := new(big.Int).Set(sk.Pub.N)
	if _, err := sk.Pub.Encrypt(tooBig); err == nil {
		t.Fatal("plaintext >= N accepted")
	}
	if _, err := sk.Decrypt(big.NewInt(0)); err == nil {
		t.Fatal("zero ciphertext accepted")
	}
	if _, err := GeneratePaillier(128); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}
