package privacy

import (
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/synth"
)

func hospitalFrame(t *testing.T, n int) *frame.Frame {
	t.Helper()
	f, err := synth.Hospital(synth.HospitalConfig{N: n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAnonymizeEnforcesK(t *testing.T) {
	f := hospitalFrame(t, 1000)
	qis := []string{"age", "sex", "zip"}
	for _, k := range []int{2, 5, 10, 25} {
		res, err := Anonymize(f, AnonymizeConfig{K: k, QuasiIdentifiers: qis})
		if err != nil {
			t.Fatal(err)
		}
		if res.MinClassSize < k {
			t.Fatalf("k=%d: min class %d", k, res.MinClassSize)
		}
		minClass, ok, err := VerifyKAnonymity(res.Data, qis, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("k=%d: verification failed with min class %d", k, minClass)
		}
		// Non-QI columns untouched.
		if !res.Data.MustCol("charges").Equal(f.MustCol("charges")) {
			t.Fatal("non-QI column modified")
		}
		if res.Data.NumRows() != f.NumRows() {
			t.Fatal("row count changed")
		}
	}
}

func TestAnonymizeInformationLossMonotone(t *testing.T) {
	f := hospitalFrame(t, 2000)
	qis := []string{"age", "sex", "zip"}
	var losses []float64
	for _, k := range []int{2, 10, 50, 200} {
		res, err := Anonymize(f, AnonymizeConfig{K: k, QuasiIdentifiers: qis})
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, res.InformationLoss)
		if res.InformationLoss < 0 || res.InformationLoss > 1 {
			t.Fatalf("loss out of range: %v", res.InformationLoss)
		}
	}
	for i := 1; i < len(losses); i++ {
		if losses[i] < losses[i-1]-1e-9 {
			t.Fatalf("information loss not monotone in k: %v", losses)
		}
	}
}

func TestAnonymizeReducesReidentificationRisk(t *testing.T) {
	f := hospitalFrame(t, 1500)
	qis := []string{"age", "sex", "zip"}
	before, err := ReidentificationRisk(f, qis)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anonymize(f, AnonymizeConfig{K: 10, QuasiIdentifiers: qis})
	if err != nil {
		t.Fatal(err)
	}
	after, err := ReidentificationRisk(res.Data, qis)
	if err != nil {
		t.Fatal(err)
	}
	if after > 0.1 {
		t.Fatalf("post-anonymization risk = %v, want <= 1/k", after)
	}
	if after >= before {
		t.Fatalf("risk did not fall: %v -> %v", before, after)
	}
}

func TestAnonymizeGeneralizationFormats(t *testing.T) {
	f := frame.MustNew(
		frame.NewInt64("age", []int64{20, 30, 40, 50}),
		frame.NewString("sex", []string{"F", "M", "F", "M"}),
		frame.NewString("diag", []string{"a", "b", "c", "d"}),
	)
	res, err := Anonymize(f, AnonymizeConfig{K: 4, QuasiIdentifiers: []string{"age", "sex"}})
	if err != nil {
		t.Fatal(err)
	}
	age := res.Data.MustCol("age")
	if age.Str(0) != "[20-50]" {
		t.Fatalf("age generalization = %q", age.Str(0))
	}
	sex := res.Data.MustCol("sex")
	if sex.Str(0) != "{F,M}" {
		t.Fatalf("sex generalization = %q", sex.Str(0))
	}
}

func TestAnonymizeValidation(t *testing.T) {
	f := hospitalFrame(t, 100)
	if _, err := Anonymize(f, AnonymizeConfig{K: 1, QuasiIdentifiers: []string{"age"}}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Anonymize(f, AnonymizeConfig{K: 2}); err == nil {
		t.Fatal("no QIs accepted")
	}
	if _, err := Anonymize(f, AnonymizeConfig{K: 101, QuasiIdentifiers: []string{"age"}}); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := Anonymize(f, AnonymizeConfig{K: 2, QuasiIdentifiers: []string{"ghost"}}); err == nil {
		t.Fatal("unknown QI accepted")
	}
	withNull := frame.NewInt64("age", []int64{1, 2, 3})
	withNull.SetNull(0)
	g := frame.MustNew(withNull)
	if _, err := Anonymize(g, AnonymizeConfig{K: 2, QuasiIdentifiers: []string{"age"}}); err == nil {
		t.Fatal("null QI accepted")
	}
}

func TestLDiversity(t *testing.T) {
	f := frame.MustNew(
		frame.NewString("qi", []string{"x", "x", "x", "y", "y", "y"}),
		frame.NewString("diag", []string{"a", "b", "c", "a", "a", "a"}),
	)
	l, err := LDiversity(f, []string{"qi"}, "diag")
	if err != nil {
		t.Fatal(err)
	}
	// Class x has 3 distinct, class y has 1: min is 1.
	if l != 1 {
		t.Fatalf("l = %d, want 1", l)
	}
	if _, err := LDiversity(f, []string{"qi"}, "ghost"); err == nil {
		t.Fatal("unknown sensitive accepted")
	}
}

func TestTCloseness(t *testing.T) {
	// Class x matches the global distribution; class y is all "a".
	f := frame.MustNew(
		frame.NewString("qi", []string{"x", "x", "y", "y"}),
		frame.NewString("diag", []string{"a", "b", "a", "a"}),
	)
	tc, err := TCloseness(f, []string{"qi"}, "diag")
	if err != nil {
		t.Fatal(err)
	}
	// Global: a=0.75, b=0.25. Class y: a=1. TV = (|1-0.75| + |0-0.25|)/2 = 0.25.
	if tc < 0.24 || tc > 0.26 {
		t.Fatalf("t-closeness = %v, want 0.25", tc)
	}
}

func TestTClosenessUniform(t *testing.T) {
	f := frame.MustNew(
		frame.NewString("qi", []string{"x", "x", "y", "y"}),
		frame.NewString("diag", []string{"a", "b", "a", "b"}),
	)
	tc, err := TCloseness(f, []string{"qi"}, "diag")
	if err != nil {
		t.Fatal(err)
	}
	if tc > 1e-9 {
		t.Fatalf("uniform classes t = %v, want 0", tc)
	}
}

func TestReidentificationRiskAllUnique(t *testing.T) {
	f := frame.MustNew(frame.NewString("id", []string{"a", "b", "c"}))
	risk, err := ReidentificationRisk(f, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if risk != 1 {
		t.Fatalf("all-unique risk = %v, want 1", risk)
	}
}

func TestPseudonymizerDeterministicAndDomainSeparated(t *testing.T) {
	p, err := NewPseudonymizer([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	a1 := p.Pseudonym("research", "patient-42")
	a2 := p.Pseudonym("research", "patient-42")
	if a1 != a2 {
		t.Fatal("pseudonym not deterministic")
	}
	b := p.Pseudonym("billing", "patient-42")
	if a1 == b {
		t.Fatal("pseudonyms linkable across domains")
	}
	other := p.Pseudonym("research", "patient-43")
	if a1 == other {
		t.Fatal("distinct ids collide")
	}
	if len(a1) != 32 || strings.ToLower(a1) != a1 {
		t.Fatalf("pseudonym format %q", a1)
	}
}

func TestPseudonymizerLinkableOnlyWithKey(t *testing.T) {
	p, _ := NewPseudonymizer([]byte("0123456789abcdef"))
	a := p.Pseudonym("research", "id-7")
	b := p.Pseudonym("billing", "id-7")
	if !p.Linkable("research", a, "billing", b, "id-7") {
		t.Fatal("key holder cannot re-link")
	}
	if p.Linkable("research", a, "billing", b, "id-8") {
		t.Fatal("wrong candidate linked")
	}
	// A different master key cannot reproduce the pseudonyms.
	q, _ := NewPseudonymizer([]byte("fedcba9876543210"))
	if q.Pseudonym("research", "id-7") == a {
		t.Fatal("different keys produce identical pseudonyms")
	}
}

func TestPseudonymizerColumnAndValidation(t *testing.T) {
	if _, err := NewPseudonymizer([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
	p, _ := NewPseudonymizer([]byte("0123456789abcdef"))
	col := p.PseudonymizeColumn("d", []string{"a", "b", "a"})
	if col[0] != col[2] || col[0] == col[1] {
		t.Fatal("column pseudonymization inconsistent")
	}
}
