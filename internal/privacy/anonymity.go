package privacy

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/responsible-data-science/rds/internal/frame"
)

// AnonymizeConfig controls Mondrian k-anonymization.
type AnonymizeConfig struct {
	K                int      // minimum equivalence-class size (required, >= 2)
	QuasiIdentifiers []string // columns an attacker could link on
	Sensitive        string   // optional: sensitive column for l-diversity reporting
}

// AnonymizeResult is a k-anonymized release plus its quality metrics.
type AnonymizeResult struct {
	Data *frame.Frame // quasi-identifiers generalized to ranges/sets, other columns intact
	// Classes is the number of equivalence classes in the release.
	Classes int
	// MinClassSize is the smallest class (>= K by construction).
	MinClassSize int
	// InformationLoss in [0,1]: mean normalized width of the generalized
	// quasi-identifier ranges (0 = exact values survive, 1 = fully
	// suppressed).
	InformationLoss float64
}

// Anonymize produces a k-anonymous view of f with respect to the quasi-
// identifier columns, using the Mondrian multidimensional partitioning
// algorithm: recursively split the data on the widest quasi-identifier
// while every part keeps at least K rows, then generalize each partition's
// quasi-identifiers to their value range.
//
// Numeric quasi-identifiers generalize to "[lo-hi]" strings; categorical
// ones to a sorted set "{a,b}". Non-quasi-identifier columns pass through
// untouched.
func Anonymize(f *frame.Frame, cfg AnonymizeConfig) (*AnonymizeResult, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("privacy: k must be >= 2, got %d", cfg.K)
	}
	if len(cfg.QuasiIdentifiers) == 0 {
		return nil, fmt.Errorf("privacy: no quasi-identifiers given")
	}
	if f.NumRows() < cfg.K {
		return nil, fmt.Errorf("privacy: %d rows cannot be %d-anonymized", f.NumRows(), cfg.K)
	}
	type qiCol struct {
		name    string
		col     *frame.Series
		numeric bool
	}
	qis := make([]qiCol, 0, len(cfg.QuasiIdentifiers))
	for _, name := range cfg.QuasiIdentifiers {
		col, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		if col.NullCount() > 0 {
			return nil, fmt.Errorf("privacy: quasi-identifier %q has nulls; impute or drop first", name)
		}
		numeric := col.DType() == frame.Float64 || col.DType() == frame.Int64
		qis = append(qis, qiCol{name: name, col: col, numeric: numeric})
	}

	// Global spans for information-loss normalization.
	globalSpan := make([]float64, len(qis))
	globalCard := make([]int, len(qis))
	for qi := range qis {
		if qis[qi].numeric {
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := 0; i < f.NumRows(); i++ {
				v := qis[qi].col.Float(i)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			globalSpan[qi] = hi - lo
		} else {
			globalCard[qi] = len(qis[qi].col.Levels())
		}
	}

	all := make([]int, f.NumRows())
	for i := range all {
		all[i] = i
	}
	var partitions [][]int
	var split func(rows []int)
	split = func(rows []int) {
		// Choose the quasi-identifier with the widest normalized span.
		bestQI := -1
		bestSpan := 0.0
		for qi := range qis {
			var span float64
			if qis[qi].numeric {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, r := range rows {
					v := qis[qi].col.Float(r)
					lo = math.Min(lo, v)
					hi = math.Max(hi, v)
				}
				if globalSpan[qi] > 0 {
					span = (hi - lo) / globalSpan[qi]
				}
			} else {
				levels := map[string]bool{}
				for _, r := range rows {
					levels[qis[qi].col.FormatValue(r)] = true
				}
				if globalCard[qi] > 1 {
					span = float64(len(levels)-1) / float64(globalCard[qi]-1)
				}
			}
			if span > bestSpan {
				bestSpan = span
				bestQI = qi
			}
		}
		if bestQI < 0 || len(rows) < 2*cfg.K {
			partitions = append(partitions, rows)
			return
		}
		// Median split on the chosen dimension.
		sorted := append([]int(nil), rows...)
		qi := qis[bestQI]
		sort.SliceStable(sorted, func(a, b int) bool {
			if qi.numeric {
				return qi.col.Float(sorted[a]) < qi.col.Float(sorted[b])
			}
			return qi.col.FormatValue(sorted[a]) < qi.col.FormatValue(sorted[b])
		})
		mid := len(sorted) / 2
		// Move the split point off ties so both halves are well-defined.
		eq := func(a, b int) bool {
			if qi.numeric {
				return qi.col.Float(a) == qi.col.Float(b)
			}
			return qi.col.FormatValue(a) == qi.col.FormatValue(b)
		}
		for mid < len(sorted) && mid > 0 && eq(sorted[mid-1], sorted[mid]) {
			mid++
		}
		if mid < cfg.K || len(sorted)-mid < cfg.K {
			partitions = append(partitions, rows)
			return
		}
		split(sorted[:mid])
		split(sorted[mid:])
	}
	split(all)

	// Generalize each partition.
	n := f.NumRows()
	genCols := make(map[string][]string, len(qis))
	for _, qi := range qis {
		genCols[qi.name] = make([]string, n)
	}
	var totalLoss float64
	minClass := n
	for _, part := range partitions {
		if len(part) < minClass {
			minClass = len(part)
		}
		var partLoss float64
		for qiIdx, qi := range qis {
			var label string
			var loss float64
			if qi.numeric {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, r := range part {
					v := qi.col.Float(r)
					lo = math.Min(lo, v)
					hi = math.Max(hi, v)
				}
				if lo == hi {
					label = formatNum(lo)
				} else {
					label = "[" + formatNum(lo) + "-" + formatNum(hi) + "]"
				}
				if globalSpan[qiIdx] > 0 {
					loss = (hi - lo) / globalSpan[qiIdx]
				}
			} else {
				levels := map[string]bool{}
				for _, r := range part {
					levels[qi.col.FormatValue(r)] = true
				}
				names := make([]string, 0, len(levels))
				for l := range levels {
					names = append(names, l)
				}
				sort.Strings(names)
				if len(names) == 1 {
					label = names[0]
				} else {
					label = "{" + strings.Join(names, ",") + "}"
				}
				if globalCard[qiIdx] > 1 {
					loss = float64(len(names)-1) / float64(globalCard[qiIdx]-1)
				}
			}
			for _, r := range part {
				genCols[qi.name][r] = label
			}
			partLoss += loss
		}
		totalLoss += partLoss / float64(len(qis)) * float64(len(part))
	}

	out := f
	var err error
	for _, qi := range qis {
		out, err = out.WithColumn(frame.NewString(qi.name, genCols[qi.name]))
		if err != nil {
			return nil, err
		}
	}
	return &AnonymizeResult{
		Data:            out,
		Classes:         len(partitions),
		MinClassSize:    minClass,
		InformationLoss: totalLoss / float64(n),
	}, nil
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// VerifyKAnonymity checks that every combination of the quasi-identifier
// values occurs at least k times, returning the smallest class size.
func VerifyKAnonymity(f *frame.Frame, quasiIdentifiers []string, k int) (minClass int, ok bool, err error) {
	groups, err := f.GroupBy(quasiIdentifiers...)
	if err != nil {
		return 0, false, err
	}
	minClass = math.MaxInt
	for _, g := range groups {
		if g.Rows.NumRows() < minClass {
			minClass = g.Rows.NumRows()
		}
	}
	if len(groups) == 0 {
		return 0, false, fmt.Errorf("privacy: empty frame")
	}
	return minClass, minClass >= k, nil
}

// LDiversity returns the minimum number of distinct sensitive values per
// equivalence class — the release satisfies l-diversity for any l up to
// that number.
func LDiversity(f *frame.Frame, quasiIdentifiers []string, sensitive string) (int, error) {
	if !f.Has(sensitive) {
		return 0, fmt.Errorf("privacy: no sensitive column %q", sensitive)
	}
	groups, err := f.GroupBy(quasiIdentifiers...)
	if err != nil {
		return 0, err
	}
	minL := math.MaxInt
	for _, g := range groups {
		distinct := len(g.Rows.MustCol(sensitive).Levels())
		if distinct < minL {
			minL = distinct
		}
	}
	if len(groups) == 0 {
		return 0, fmt.Errorf("privacy: empty frame")
	}
	return minL, nil
}

// TCloseness returns the maximum total-variation distance between any
// equivalence class's sensitive-value distribution and the global
// distribution. The release satisfies t-closeness for any t at or above
// the returned value.
func TCloseness(f *frame.Frame, quasiIdentifiers []string, sensitive string) (float64, error) {
	col, err := f.Col(sensitive)
	if err != nil {
		return 0, err
	}
	global := map[string]float64{}
	for i := 0; i < col.Len(); i++ {
		global[col.FormatValue(i)]++
	}
	n := float64(col.Len())
	for k := range global {
		global[k] /= n
	}
	groups, err := f.GroupBy(quasiIdentifiers...)
	if err != nil {
		return 0, err
	}
	var worst float64
	for _, g := range groups {
		local := map[string]float64{}
		gcol := g.Rows.MustCol(sensitive)
		for i := 0; i < gcol.Len(); i++ {
			local[gcol.FormatValue(i)]++
		}
		gn := float64(gcol.Len())
		var tv float64
		for k, p := range global {
			tv += math.Abs(p - local[k]/gn)
		}
		for k, c := range local {
			if _, seen := global[k]; !seen {
				tv += c / gn
			}
		}
		tv /= 2
		if tv > worst {
			worst = tv
		}
	}
	return worst, nil
}

// ReidentificationRisk estimates the expected probability that a random
// individual is uniquely linked by the quasi-identifiers: the mean of
// 1/classSize over rows. 1.0 means everyone is unique (fully exposed).
func ReidentificationRisk(f *frame.Frame, quasiIdentifiers []string) (float64, error) {
	groups, err := f.GroupBy(quasiIdentifiers...)
	if err != nil {
		return 0, err
	}
	if f.NumRows() == 0 {
		return 0, fmt.Errorf("privacy: empty frame")
	}
	var sum float64
	for _, g := range groups {
		// Each of the class's members is re-identified with prob 1/size;
		// summed over members that is exactly 1 per class.
		sum++
		_ = g
	}
	return sum / float64(f.NumRows()), nil
}
