package privacy

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Pseudonymizer issues keyed, deterministic pseudonyms for identifiers.
//
// It implements the *polymorphic* pseudonymization pattern the paper
// cites for health data: the same identifier yields a different, mutually
// unlinkable pseudonym per recipient domain (derived via HMAC with a
// domain-separated key), so two data consumers cannot join their datasets
// on the pseudonym, while each consumer's view stays internally
// consistent. The issuing authority, holding the master key, can
// re-derive (and thus resolve or rotate) any pseudonym.
type Pseudonymizer struct {
	master []byte
}

// NewPseudonymizer creates a pseudonymizer from a master key of at least
// 16 bytes.
func NewPseudonymizer(masterKey []byte) (*Pseudonymizer, error) {
	if len(masterKey) < 16 {
		return nil, fmt.Errorf("privacy: master key must be >= 16 bytes, got %d", len(masterKey))
	}
	return &Pseudonymizer{master: append([]byte(nil), masterKey...)}, nil
}

// domainKey derives the per-recipient key: HMAC(master, "domain:"+domain).
func (p *Pseudonymizer) domainKey(domain string) []byte {
	mac := hmac.New(sha256.New, p.master)
	mac.Write([]byte("domain:" + domain))
	return mac.Sum(nil)
}

// Pseudonym returns the pseudonym of id for the given recipient domain:
// hex(HMAC(domainKey, id))[:32]. Deterministic per (domain, id).
func (p *Pseudonymizer) Pseudonym(domain, id string) string {
	mac := hmac.New(sha256.New, p.domainKey(domain))
	mac.Write([]byte(id))
	return hex.EncodeToString(mac.Sum(nil))[:32]
}

// PseudonymizeColumn maps a column of identifiers into domain-specific
// pseudonyms.
func (p *Pseudonymizer) PseudonymizeColumn(domain string, ids []string) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = p.Pseudonym(domain, id)
	}
	return out
}

// Linkable reports whether two pseudonyms from two domains belong to the
// same identifier — an operation only the key holder can perform, which
// is exactly the controlled re-linkage ("polymorphic" resolution) the
// pattern is designed for.
func (p *Pseudonymizer) Linkable(domainA, pseudoA, domainB, pseudoB, candidateID string) bool {
	return p.Pseudonym(domainA, candidateID) == pseudoA &&
		p.Pseudonym(domainB, candidateID) == pseudoB
}
