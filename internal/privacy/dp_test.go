package privacy

import (
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

func newBudget(t *testing.T, eps, delta float64) *Budget {
	t.Helper()
	b, err := NewBudget(eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBudgetAccounting(t *testing.T) {
	b := newBudget(t, 1.0, 1e-5)
	if err := b.Spend("q1", 0.4, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend("q2", 0.4, 1e-5); err != nil {
		t.Fatal(err)
	}
	eps, delta := b.Remaining()
	if math.Abs(eps-0.2) > 1e-12 || delta != 0 {
		t.Fatalf("remaining = (%v, %v)", eps, delta)
	}
	// Overspend must fail and not partially deduct.
	if err := b.Spend("q3", 0.3, 0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspend error = %v", err)
	}
	eps, _ = b.Remaining()
	if math.Abs(eps-0.2) > 1e-12 {
		t.Fatalf("failed spend deducted budget: %v", eps)
	}
	// Exact exhaustion is allowed.
	if err := b.Spend("q4", 0.2, 0); err != nil {
		t.Fatalf("exact spend refused: %v", err)
	}
	trail := b.Trail()
	if len(trail) != 3 || trail[0].Label != "q1" {
		t.Fatalf("trail = %+v", trail)
	}
}

func TestBudgetDeltaExhaustion(t *testing.T) {
	b := newBudget(t, 10, 1e-6)
	if err := b.Spend("d", 0.1, 1e-5); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("delta overspend error = %v", err)
	}
}

func TestBudgetValidation(t *testing.T) {
	if _, err := NewBudget(0, 0); err == nil {
		t.Fatal("zero epsilon accepted")
	}
	if _, err := NewBudget(1, 1); err == nil {
		t.Fatal("delta=1 accepted")
	}
	b := newBudget(t, 1, 0)
	if err := b.Spend("x", -0.1, 0); err == nil {
		t.Fatal("negative spend accepted")
	}
	if err := b.Spend("x", 0.1, -1); err == nil {
		t.Fatal("negative delta accepted")
	}
}

func TestBudgetConcurrentSpendNeverOverdraws(t *testing.T) {
	b := newBudget(t, 1.0, 0)
	var wg sync.WaitGroup
	granted := make(chan struct{}, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Spend("c", 0.05, 0) == nil {
				granted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(granted)
	count := 0
	for range granted {
		count++
	}
	if count != 20 {
		t.Fatalf("granted %d spends of 0.05 from budget 1.0, want exactly 20", count)
	}
}

func TestLaplaceMechanismNoiseScale(t *testing.T) {
	src := rng.New(1)
	const trials = 20000
	for _, eps := range []float64{0.1, 1.0} {
		b := newBudget(t, float64(trials)*eps+1, 0)
		var errSum float64
		for i := 0; i < trials; i++ {
			v, err := LaplaceMechanism(b, "m", 100, 1, eps, src)
			if err != nil {
				t.Fatal(err)
			}
			errSum += math.Abs(v - 100)
		}
		got := errSum / trials
		want := 1 / eps // E|Laplace(b)| = b = sensitivity/eps
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("eps=%v mean |error| = %v, want ~%v", eps, got, want)
		}
	}
}

func TestLaplaceMechanismChargesBudget(t *testing.T) {
	b := newBudget(t, 0.5, 0)
	src := rng.New(2)
	if _, err := LaplaceMechanism(b, "a", 1, 1, 0.5, src); err != nil {
		t.Fatal(err)
	}
	if _, err := LaplaceMechanism(b, "b", 1, 1, 0.5, src); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second query error = %v", err)
	}
}

func TestLaplaceMechanismValidation(t *testing.T) {
	b := newBudget(t, 1, 0)
	if _, err := LaplaceMechanism(b, "x", 1, 0, 0.1, rng.New(1)); err == nil {
		t.Fatal("zero sensitivity accepted")
	}
}

func TestGaussianMechanism(t *testing.T) {
	src := rng.New(3)
	const trials = 5000
	eps, delta := 0.5, 1e-5
	b := newBudget(t, float64(trials)*eps+1, float64(trials)*delta*2)
	sigma := math.Sqrt(2*math.Log(1.25/delta)) / eps
	var sumSq float64
	for i := 0; i < trials; i++ {
		v, err := GaussianMechanism(b, "g", 0, 1, eps, delta, src)
		if err != nil {
			t.Fatal(err)
		}
		sumSq += v * v
	}
	got := math.Sqrt(sumSq / trials)
	if math.Abs(got-sigma)/sigma > 0.05 {
		t.Fatalf("empirical sigma = %v, want %v", got, sigma)
	}
}

func TestGaussianMechanismValidation(t *testing.T) {
	b := newBudget(t, 10, 0.5)
	src := rng.New(1)
	if _, err := GaussianMechanism(b, "x", 0, 1, 2.0, 1e-5, src); err == nil {
		t.Fatal("eps > 1 accepted by classic bound")
	}
	if _, err := GaussianMechanism(b, "x", 0, 1, 0.5, 0, src); err == nil {
		t.Fatal("delta = 0 accepted")
	}
}

func TestExponentialMechanismPrefersHighScores(t *testing.T) {
	src := rng.New(5)
	scores := []float64{0, 0, 10, 0}
	b := newBudget(t, 1e6, 0)
	counts := make([]int, 4)
	for i := 0; i < 2000; i++ {
		idx, err := ExponentialMechanism(b, "e", scores, 1, 2.0, src)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	if counts[2] < 1900 {
		t.Fatalf("high-score candidate chosen %d/2000", counts[2])
	}
}

func TestExponentialMechanismLowEpsNearUniform(t *testing.T) {
	src := rng.New(6)
	scores := []float64{0, 1}
	b := newBudget(t, 1e6, 0)
	counts := make([]int, 2)
	for i := 0; i < 10000; i++ {
		idx, err := ExponentialMechanism(b, "e", scores, 1, 0.01, src)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio > 1.2 || ratio < 0.85 {
		t.Fatalf("eps->0 should be near uniform, ratio = %v", ratio)
	}
}

func TestRandomizedResponse(t *testing.T) {
	src := rng.New(7)
	const n = 50000
	eps := 1.0
	b := newBudget(t, float64(n)*eps+1, 0)
	trueRate := 0.3
	var observed float64
	for i := 0; i < n; i++ {
		truth := src.Bernoulli(trueRate)
		resp, err := RandomizedResponse(b, "rr", truth, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		if resp {
			observed++
		}
	}
	est := RandomizedResponseEstimate(observed/n, eps)
	if math.Abs(est-trueRate) > 0.02 {
		t.Fatalf("debiased estimate = %v, want ~%v", est, trueRate)
	}
}

func TestPrivateCountAndSum(t *testing.T) {
	src := rng.New(9)
	b := newBudget(t, 10, 0)
	c, err := PrivateCount(b, "count", 1000, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1000) > 20 {
		t.Fatalf("private count = %v", c)
	}
	values := make([]float64, 500)
	for i := range values {
		values[i] = 10
	}
	s, err := PrivateSum(b, "sum", values, 0, 20, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-5000) > 300 {
		t.Fatalf("private sum = %v", s)
	}
	// Clamping: one wild value must not blow up the release.
	values[0] = 1e9
	s2, err := PrivateSum(b, "sum2", values, 0, 20, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	if s2 > 6000 {
		t.Fatalf("clamping failed: %v", s2)
	}
	if _, err := PrivateSum(b, "bad", values, 5, 5, 1, src); err == nil {
		t.Fatal("lo >= hi accepted")
	}
}

func TestPrivateMeanAccuracyVsEps(t *testing.T) {
	src := rng.New(11)
	values := make([]float64, 2000)
	for i := range values {
		values[i] = src.Normal(50, 10)
	}
	meanAbsErr := func(eps float64) float64 {
		var total float64
		const reps = 200
		b := newBudget(t, float64(reps)*eps+1, 0)
		for r := 0; r < reps; r++ {
			m, err := PrivateMean(b, "mean", values, 0, 100, eps, src)
			if err != nil {
				t.Fatal(err)
			}
			total += math.Abs(m - 50)
		}
		return total / reps
	}
	lo := meanAbsErr(0.05)
	hi := meanAbsErr(5.0)
	if lo <= hi {
		t.Fatalf("error did not shrink with eps: eps=0.05 -> %v, eps=5 -> %v", lo, hi)
	}
	if hi > 1.0 {
		t.Fatalf("high-eps mean too noisy: %v", hi)
	}
}

func TestPrivateMeanEmpty(t *testing.T) {
	b := newBudget(t, 1, 0)
	if _, err := PrivateMean(b, "m", nil, 0, 1, 0.5, rng.New(1)); err == nil {
		t.Fatal("empty mean accepted")
	}
}

func TestPrivateHistogram(t *testing.T) {
	src := rng.New(13)
	b := newBudget(t, 1.0, 0)
	counts := map[string]int{"a": 500, "b": 300, "c": 10}
	h, err := PrivateHistogram(b, "hist", counts, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h["a"]-500) > 30 || math.Abs(h["b"]-300) > 30 {
		t.Fatalf("histogram too noisy: %v", h)
	}
	for k, v := range h {
		if v < 0 {
			t.Fatalf("negative released count for %s: %v", k, v)
		}
	}
	// Parallel composition: whole histogram cost one eps.
	eps, _ := b.Remaining()
	if eps != 0 {
		t.Fatalf("remaining = %v, want 0", eps)
	}
	if _, err := PrivateHistogram(b, "again", counts, 0.5, src); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatal("exhausted histogram succeeded")
	}
}

func TestPrivateQuantile(t *testing.T) {
	src := rng.New(15)
	values := make([]float64, 2000)
	for i := range values {
		values[i] = float64(i) / 20 // uniform 0..100
	}
	b := newBudget(t, 100, 0)
	med, err := PrivateQuantile(b, "median", values, 0.5, 0, 100, 2.0, 200, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-50) > 5 {
		t.Fatalf("private median = %v, want ~50", med)
	}
	q9, err := PrivateQuantile(b, "p90", values, 0.9, 0, 100, 2.0, 200, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q9-90) > 5 {
		t.Fatalf("private p90 = %v, want ~90", q9)
	}
	if _, err := PrivateQuantile(b, "bad", values, 1.5, 0, 100, 1, 100, src); err == nil {
		t.Fatal("q > 1 accepted")
	}
	if _, err := PrivateQuantile(b, "bad", values, 0.5, 0, 100, 1, 1, src); err == nil {
		t.Fatal("grid < 2 accepted")
	}
}
