package stream

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/frame"
)

// Arrival is one timestamped batch of feature rows flowing into the
// monitoring plane (internal/monitor). Where Event models the paper's
// Internet-Minute exhibit — high-rate actions without features — an
// Arrival carries the actual rows a production pipeline would score, so
// windowed auditors can materialize them back into a frame.Frame and
// grade the window against a FACT policy.
type Arrival struct {
	// TimeMS is the batch's arrival time in milliseconds since stream
	// start. Consumers assume arrivals are delivered in non-decreasing
	// time order.
	TimeMS int64
	// Rows holds the batch's feature rows. May be empty (a heartbeat
	// that only advances the consumer's watermark).
	Rows *frame.Frame
}

// Validate rejects arrivals the windowing consumers cannot place: the
// stream clock starts at zero, so a negative TimeMS is a client error,
// not a very early batch. Consumers (monitor.Monitor.Ingest, the HTTP
// ingest path) check this before touching any window state, which is
// what keeps adversarial timestamps — down to math.MinInt64 — from
// reaching window-index arithmetic that would overflow or panic.
func (a Arrival) Validate() error {
	if a.TimeMS < 0 {
		return fmt.Errorf("stream: arrival time_ms must be >= 0, got %d", a.TimeMS)
	}
	return nil
}

// FrameArrivals slices f into consecutive batches of batchRows rows and
// timestamps them gapMS apart starting at startMS, turning a static
// dataset into a deterministic arrival stream. The final batch may be
// partial. It is the bridge tests, examples, and the HTTP ingest path
// use to replay synth generators as live traffic.
func FrameArrivals(f *frame.Frame, batchRows int, startMS, gapMS int64) ([]Arrival, error) {
	if f == nil {
		return nil, fmt.Errorf("stream: FrameArrivals needs a frame")
	}
	if batchRows <= 0 {
		return nil, fmt.Errorf("stream: batch size must be positive, got %d", batchRows)
	}
	if startMS < 0 {
		return nil, fmt.Errorf("stream: arrival start time_ms must be >= 0, got %d", startMS)
	}
	if gapMS < 0 {
		return nil, fmt.Errorf("stream: arrival gap must be >= 0, got %d", gapMS)
	}
	var out []Arrival
	t := startMS
	for lo := 0; lo < f.NumRows(); lo += batchRows {
		hi := lo + batchRows
		if hi > f.NumRows() {
			hi = f.NumRows()
		}
		out = append(out, Arrival{TimeMS: t, Rows: f.Slice(lo, hi)})
		t += gapMS
	}
	return out, nil
}
