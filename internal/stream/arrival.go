package stream

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/frame"
)

// Arrival is one timestamped batch of feature rows flowing into the
// monitoring plane (internal/monitor). Where Event models the paper's
// Internet-Minute exhibit — high-rate actions without features — an
// Arrival carries the actual rows a production pipeline would score, so
// windowed auditors can materialize them back into a frame.Frame and
// grade the window against a FACT policy.
type Arrival struct {
	// TimeMS is the batch's arrival time in milliseconds since stream
	// start. Consumers assume arrivals are delivered in non-decreasing
	// time order.
	TimeMS int64
	// Rows holds the batch's feature rows. May be empty (a heartbeat
	// that only advances the consumer's watermark).
	Rows *frame.Frame
}

// FrameArrivals slices f into consecutive batches of batchRows rows and
// timestamps them gapMS apart starting at startMS, turning a static
// dataset into a deterministic arrival stream. The final batch may be
// partial. It is the bridge tests, examples, and the HTTP ingest path
// use to replay synth generators as live traffic.
func FrameArrivals(f *frame.Frame, batchRows int, startMS, gapMS int64) ([]Arrival, error) {
	if f == nil {
		return nil, fmt.Errorf("stream: FrameArrivals needs a frame")
	}
	if batchRows <= 0 {
		return nil, fmt.Errorf("stream: batch size must be positive, got %d", batchRows)
	}
	if gapMS < 0 {
		return nil, fmt.Errorf("stream: arrival gap must be >= 0, got %d", gapMS)
	}
	var out []Arrival
	t := startMS
	for lo := 0; lo < f.NumRows(); lo += batchRows {
		hi := lo + batchRows
		if hi > f.NumRows() {
			hi = f.NumRows()
		}
		out = append(out, Arrival{TimeMS: t, Rows: f.Slice(lo, hi)})
		t += gapMS
	}
	return out, nil
}
