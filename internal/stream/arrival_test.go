package stream

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
)

func TestFrameArrivalsSlicesAndTimestamps(t *testing.T) {
	f := frame.MustNew(frame.NewFloat64("x", []float64{1, 2, 3, 4, 5}))
	arrivals, err := FrameArrivals(f, 2, 100, 50)
	if err != nil {
		t.Fatalf("FrameArrivals: %v", err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("got %d arrivals, want 3", len(arrivals))
	}
	wantTimes := []int64{100, 150, 200}
	wantRows := []int{2, 2, 1} // final batch is partial
	total := 0
	for i, a := range arrivals {
		if a.TimeMS != wantTimes[i] {
			t.Errorf("arrival %d at t=%d, want %d", i, a.TimeMS, wantTimes[i])
		}
		if a.Rows.NumRows() != wantRows[i] {
			t.Errorf("arrival %d has %d rows, want %d", i, a.Rows.NumRows(), wantRows[i])
		}
		total += a.Rows.NumRows()
	}
	if total != f.NumRows() {
		t.Errorf("arrivals carry %d rows, want all %d", total, f.NumRows())
	}
	if got := arrivals[2].Rows.MustCol("x").Float(0); got != 5 {
		t.Errorf("final partial batch starts at %v, want 5", got)
	}
}

func TestFrameArrivalsRejectsBadInputs(t *testing.T) {
	f := frame.MustNew(frame.NewFloat64("x", []float64{1}))
	if _, err := FrameArrivals(nil, 1, 0, 0); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := FrameArrivals(f, 0, 0, 0); err == nil {
		t.Error("zero batch size accepted")
	}
	if _, err := FrameArrivals(f, 1, 0, -1); err == nil {
		t.Error("negative gap accepted")
	}
	// The stream clock starts at zero: negative start times (down to
	// math.MinInt64) are client errors, not very early batches —
	// unchecked they reach window-index arithmetic that panics.
	for _, start := range []int64{-1, -60000, math.MinInt64} {
		if _, err := FrameArrivals(f, 1, start, 0); err == nil {
			t.Errorf("negative start time %d accepted", start)
		}
	}
}

func TestArrivalValidateRejectsNegativeTime(t *testing.T) {
	for _, tc := range []struct {
		timeMS int64
		ok     bool
	}{
		{0, true}, {1, true}, {math.MaxInt64, true},
		{-1, false}, {-60000, false}, {math.MinInt64, false},
	} {
		err := Arrival{TimeMS: tc.timeMS}.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(time_ms=%d) = %v, want ok=%v", tc.timeMS, err, tc.ok)
		}
	}
}

func TestFrameArrivalsEmptyFrame(t *testing.T) {
	f := frame.MustNew(frame.NewFloat64("x", nil))
	arrivals, err := FrameArrivals(f, 10, 0, 10)
	if err != nil {
		t.Fatalf("FrameArrivals: %v", err)
	}
	if len(arrivals) != 0 {
		t.Errorf("empty frame produced %d arrivals, want 0", len(arrivals))
	}
}
