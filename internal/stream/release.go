package stream

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/privacy"
	"github.com/responsible-data-science/rds/internal/rng"
)

// PrivateWindowRelease publishes the per-type counts of one window under
// differential privacy: each type's count gets Laplace(1/eps) noise, and
// the whole window costs one eps by parallel composition (a single event
// belongs to exactly one type and window).
func PrivateWindowRelease(b *privacy.Budget, w *WindowCounter, win int64, eps float64, src *rng.Source) (map[EventType]float64, error) {
	counts := w.Window(win)
	if len(counts) == 0 {
		return nil, fmt.Errorf("stream: window %d has no observations", win)
	}
	named := make(map[string]int, len(counts))
	for et, c := range counts {
		named[et.String()] = int(c)
	}
	noisy, err := privacy.PrivateHistogram(b, fmt.Sprintf("window-%d", win), named, eps, src)
	if err != nil {
		return nil, err
	}
	out := make(map[EventType]float64, len(noisy))
	for et := range counts {
		out[et] = noisy[et.String()]
	}
	return out, nil
}
