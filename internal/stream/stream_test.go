package stream

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/privacy"
	"github.com/responsible-data-science/rds/internal/rng"
)

func TestGeneratorMatchesPaperRates(t *testing.T) {
	// At 1% scale over one simulated minute, each service's count should
	// match its scaled paper rate closely (fixed spacing with jitter).
	g, err := NewGenerator(GeneratorConfig{RateScale: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	events := g.GenerateFor(60_000)
	counts := map[EventType]int{}
	for _, ev := range events {
		counts[ev.Type]++
	}
	for et, perMinute := range PaperRatesPerMinute {
		want := perMinute * 0.01
		got := float64(counts[et])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: %v events, want ~%v", et, got, want)
		}
	}
}

func TestGeneratorEventsOrdered(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{RateScale: 0.001, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	events := g.GenerateFor(30_000)
	for i := 1; i < len(events); i++ {
		if events[i].TimeMS < events[i-1].TimeMS {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, _ := NewGenerator(GeneratorConfig{RateScale: 0.001, Seed: 7})
	g2, _ := NewGenerator(GeneratorConfig{RateScale: 0.001, Seed: 7})
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("streams diverged")
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{RateScale: 100}); err == nil {
		t.Fatal("huge rate scale accepted")
	}
}

func TestGeneratorUserSkew(t *testing.T) {
	g, _ := NewGenerator(GeneratorConfig{RateScale: 0.001, Users: 1000, Seed: 9})
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().UserID]++
	}
	// Zipf: user 1 must dominate user 100.
	if counts[1] <= counts[100]*5 {
		t.Fatalf("user skew weak: u1=%d u100=%d", counts[1], counts[100])
	}
}

func TestWindowCounter(t *testing.T) {
	w, err := NewWindowCounter(1000)
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(Event{Type: TweetSent, TimeMS: 100})
	w.Observe(Event{Type: TweetSent, TimeMS: 900})
	w.Observe(Event{Type: TweetSent, TimeMS: 1100})
	w.Observe(Event{Type: SiriAnswer, TimeMS: 500})
	if got := w.Window(0)[TweetSent]; got != 2 {
		t.Fatalf("window 0 tweets = %d", got)
	}
	if got := w.Window(1)[TweetSent]; got != 1 {
		t.Fatalf("window 1 tweets = %d", got)
	}
	if got := w.Window(0)[SiriAnswer]; got != 1 {
		t.Fatalf("window 0 siri = %d", got)
	}
	wins := w.Windows()
	if len(wins) != 2 || wins[0] != 0 || wins[1] != 1 {
		t.Fatalf("windows = %v", wins)
	}
	if _, err := NewWindowCounter(0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestReservoirUniformity(t *testing.T) {
	src := rng.New(11)
	// Stream of 10000 events; sample 100; each event's inclusion
	// probability should be ~1%. Check via repeated runs on the first
	// vs last event.
	const streamLen, k, runs = 5000, 100, 400
	firstIn, lastIn := 0, 0
	for r := 0; r < runs; r++ {
		res, err := NewReservoir(k, src)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < streamLen; i++ {
			res.Observe(Event{TimeMS: int64(i)})
		}
		for _, ev := range res.Sample() {
			if ev.TimeMS == 0 {
				firstIn++
			}
			if ev.TimeMS == streamLen-1 {
				lastIn++
			}
		}
	}
	want := float64(k) / streamLen * runs // = 8
	if math.Abs(float64(firstIn)-want) > want || math.Abs(float64(lastIn)-want) > want {
		t.Fatalf("inclusion counts first=%d last=%d, want ~%v", firstIn, lastIn, want)
	}
}

func TestReservoirBounds(t *testing.T) {
	src := rng.New(13)
	res, _ := NewReservoir(10, src)
	for i := 0; i < 100; i++ {
		res.Observe(Event{TimeMS: int64(i)})
	}
	if len(res.Sample()) != 10 {
		t.Fatalf("sample size = %d", len(res.Sample()))
	}
	if res.Seen() != 100 {
		t.Fatalf("seen = %d", res.Seen())
	}
	if _, err := NewReservoir(0, src); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSpaceSavingFindsHeavyHitters(t *testing.T) {
	s, err := NewSpaceSaving(20)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(15)
	// Planted: items 1..3 get 1000 each; 5000 noise items get ~1 each.
	truth := map[uint64]int64{1: 1000, 2: 1000, 3: 1000}
	var feed []uint64
	for it, c := range truth {
		for i := int64(0); i < c; i++ {
			feed = append(feed, it)
		}
	}
	for i := 0; i < 5000; i++ {
		feed = append(feed, 1000+uint64(src.Intn(100000)))
	}
	src.Shuffle(len(feed), func(a, b int) { feed[a], feed[b] = feed[b], feed[a] })
	for _, it := range feed {
		s.Observe(it)
	}
	top := s.Top(3)
	found := map[uint64]bool{}
	for _, hh := range top {
		found[hh.Item] = true
		// Count overestimates by at most MaxError.
		if hh.Count < truth[hh.Item] {
			t.Fatalf("item %d count %d below truth %d", hh.Item, hh.Count, truth[hh.Item])
		}
		if hh.Count-hh.MaxError > truth[hh.Item] {
			t.Fatalf("item %d count %d - err %d exceeds truth %d", hh.Item, hh.Count, hh.MaxError, truth[hh.Item])
		}
	}
	for it := range truth {
		if !found[it] {
			t.Fatalf("heavy hitter %d missed (top: %+v)", it, top)
		}
	}
	if s.Seen() != int64(len(feed)) {
		t.Fatalf("seen = %d", s.Seen())
	}
}

func TestSpaceSavingCapacityBound(t *testing.T) {
	s, _ := NewSpaceSaving(5)
	for i := uint64(0); i < 1000; i++ {
		s.Observe(i)
	}
	if got := len(s.Top(100)); got > 5 {
		t.Fatalf("tracked %d items with capacity 5", got)
	}
	if _, err := NewSpaceSaving(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestPrivateWindowRelease(t *testing.T) {
	g, _ := NewGenerator(GeneratorConfig{RateScale: 0.01, Seed: 17})
	w, _ := NewWindowCounter(60_000)
	for _, ev := range g.GenerateFor(60_000) {
		w.Observe(ev)
	}
	b, err := privacy.NewBudget(1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(18)
	noisy, err := PrivateWindowRelease(b, w, 0, 1.0, src)
	if err != nil {
		t.Fatal(err)
	}
	truth := w.Window(0)
	for et, c := range truth {
		if math.Abs(noisy[et]-float64(c)) > 50 {
			t.Fatalf("%s noisy=%v true=%d", et, noisy[et], c)
		}
	}
	// Budget spent exactly once for the whole window.
	eps, _ := b.Remaining()
	if eps != 0 {
		t.Fatalf("remaining eps = %v", eps)
	}
	// Second release refused.
	if _, err := PrivateWindowRelease(b, w, 0, 1.0, src); err == nil {
		t.Fatal("exhausted budget release succeeded")
	}
	// Empty window refused.
	if _, err := PrivateWindowRelease(b, w, 99, 1.0, src); err == nil {
		t.Fatal("empty window released")
	}
}
