// Package stream implements the high-rate event-processing substrate
// behind the paper's "Internet Minute" exhibit (Section 3): ~1.0M Tinder
// swipes, 3.5M Google searches, 0.1M Siri answers, 0.85M Dropbox uploads,
// 0.9M Facebook logins, 0.45M tweets, and 7M snaps, every minute — all of
// it personal data that responsible infrastructure must aggregate without
// retaining or exposing individuals.
//
// The package provides a deterministic generator running at the paper's
// published per-minute rates, tumbling-window counters, reservoir
// sampling, the space-saving heavy-hitters sketch, and differentially
// private release of windowed counts (bridging to the privacy package).
//
// It is also the ingestion substrate of the monitoring plane: an Arrival
// couples a timestamped batch of feature rows with the stream clock, and
// FrameArrivals replays a static frame as live traffic. internal/monitor
// consumes Arrivals through tumbling/sliding windows and audits each
// window against a FACT policy.
package stream

import (
	"fmt"
	"sort"

	"github.com/responsible-data-science/rds/internal/rng"
)

// EventType identifies a service generating events.
type EventType int

// The paper's seven Internet-Minute services.
const (
	TinderSwipe EventType = iota
	GoogleSearch
	SiriAnswer
	DropboxUpload
	FacebookLogin
	TweetSent
	SnapReceived
	numEventTypes
)

// String returns the service name.
func (e EventType) String() string {
	switch e {
	case TinderSwipe:
		return "tinder_swipes"
	case GoogleSearch:
		return "google_searches"
	case SiriAnswer:
		return "siri_answers"
	case DropboxUpload:
		return "dropbox_uploads"
	case FacebookLogin:
		return "facebook_logins"
	case TweetSent:
		return "tweets_sent"
	case SnapReceived:
		return "snaps_received"
	}
	return fmt.Sprintf("EventType(%d)", int(e))
}

// PaperRatesPerMinute are the per-minute event volumes the paper reports
// (James 2016, "Data Never Sleeps 4.0").
var PaperRatesPerMinute = map[EventType]float64{
	TinderSwipe:   1_000_000,
	GoogleSearch:  3_500_000,
	SiriAnswer:    100_000,
	DropboxUpload: 850_000,
	FacebookLogin: 900_000,
	TweetSent:     450_000,
	SnapReceived:  7_000_000,
}

// Event is one user action.
type Event struct {
	Type   EventType
	UserID uint64 // Zipf-skewed over the user universe
	TimeMS int64  // milliseconds since stream start
}

// GeneratorConfig controls the event generator.
type GeneratorConfig struct {
	// RateScale scales the paper's per-minute rates (1.0 = full rate;
	// tests use smaller). Default 1.0.
	RateScale float64
	// Users is the user-universe size for Zipf-skewed attribution
	// (default 100000).
	Users int
	// Seed drives the deterministic stream (default 1).
	Seed uint64
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.RateScale == 0 {
		c.RateScale = 1.0
	}
	if c.Users <= 0 {
		c.Users = 100000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Generator produces a deterministic, rate-accurate interleaved event
// stream. Events of each type are spaced at fixed intervals derived from
// the paper's rates (with per-event jitter), merged in time order.
type Generator struct {
	cfg    GeneratorConfig
	src    *rng.Source
	zipf   *rng.Zipf
	nextAt []float64 // pending emission time per type, fractional ms
	gapMS  []float64
}

// NewGenerator creates a generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	cfg = cfg.withDefaults()
	if cfg.RateScale < 0 || cfg.RateScale > 10 {
		return nil, fmt.Errorf("stream: rate scale %v out of (0,10]", cfg.RateScale)
	}
	g := &Generator{cfg: cfg, src: rng.New(cfg.Seed), zipf: rng.NewZipf(cfg.Users, 1.2)}
	g.gapMS = make([]float64, numEventTypes)
	g.nextAt = make([]float64, numEventTypes)
	for et := EventType(0); et < numEventTypes; et++ {
		perMinute := PaperRatesPerMinute[et] * cfg.RateScale
		g.gapMS[et] = 60_000 / perMinute
		g.nextAt[et] = g.gapMS[et] * g.src.Float64()
	}
	return g, nil
}

// Next returns the next event in time order. Emission times are tracked
// as fractional milliseconds so sub-millisecond inter-arrival gaps (the
// full-rate snap stream arrives every ~8.5 microseconds) accumulate
// without truncation bias.
func (g *Generator) Next() Event {
	// Seven types: a linear scan beats heap bookkeeping.
	best := 0
	for i := 1; i < len(g.nextAt); i++ {
		if g.nextAt[i] < g.nextAt[best] {
			best = i
		}
	}
	at := g.nextAt[best]
	ev := Event{
		Type:   EventType(best),
		UserID: uint64(g.zipf.Draw(g.src)),
		TimeMS: int64(at),
	}
	g.nextAt[best] = at + g.gapMS[best]*(0.5+g.src.Float64())
	return ev
}

// GenerateFor returns all events with TimeMS < durationMS.
func (g *Generator) GenerateFor(durationMS int64) []Event {
	var out []Event
	for {
		ev := g.Next()
		if ev.TimeMS >= durationMS {
			return out
		}
		out = append(out, ev)
	}
}

// WindowCounter tallies events per type in tumbling windows.
type WindowCounter struct {
	widthMS int64
	counts  map[int64]map[EventType]int64
}

// NewWindowCounter creates a counter with the given window width.
func NewWindowCounter(widthMS int64) (*WindowCounter, error) {
	if widthMS <= 0 {
		return nil, fmt.Errorf("stream: window width must be positive, got %d", widthMS)
	}
	return &WindowCounter{widthMS: widthMS, counts: map[int64]map[EventType]int64{}}, nil
}

// Observe records an event.
func (w *WindowCounter) Observe(ev Event) {
	win := ev.TimeMS / w.widthMS
	m, ok := w.counts[win]
	if !ok {
		m = map[EventType]int64{}
		w.counts[win] = m
	}
	m[ev.Type]++
}

// Window returns the per-type counts of window index win (0-based).
func (w *WindowCounter) Window(win int64) map[EventType]int64 {
	out := map[EventType]int64{}
	for et, c := range w.counts[win] {
		out[et] = c
	}
	return out
}

// Windows returns the observed window indices in order.
func (w *WindowCounter) Windows() []int64 {
	out := make([]int64, 0, len(w.counts))
	for k := range w.counts {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Reservoir maintains a uniform sample of k items from an unbounded
// stream (Vitter's algorithm R) — bounded retention is the responsible
// alternative to keeping every event.
type Reservoir struct {
	k     int
	seen  int64
	items []Event
	src   *rng.Source
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir(k int, src *rng.Source) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("stream: reservoir capacity must be positive, got %d", k)
	}
	return &Reservoir{k: k, src: src}, nil
}

// Observe offers an event to the reservoir.
func (r *Reservoir) Observe(ev Event) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, ev)
		return
	}
	// Replace with probability k/seen.
	j := r.src.Intn(int(r.seen))
	if j < r.k {
		r.items[j] = ev
	}
}

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []Event {
	return append([]Event(nil), r.items...)
}

// Seen returns the number of observed events.
func (r *Reservoir) Seen() int64 { return r.seen }

// SpaceSaving is the space-saving heavy-hitters sketch: it tracks at most
// capacity counters and guarantees that any item with true frequency
// above seen/capacity is present, with count overestimated by at most the
// minimum counter.
type SpaceSaving struct {
	capacity int
	counts   map[uint64]int64
	errors   map[uint64]int64
	seen     int64
}

// NewSpaceSaving creates a sketch with the given counter capacity.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("stream: capacity must be positive, got %d", capacity)
	}
	return &SpaceSaving{
		capacity: capacity,
		counts:   map[uint64]int64{},
		errors:   map[uint64]int64{},
	}, nil
}

// Observe feeds one item.
func (s *SpaceSaving) Observe(item uint64) {
	s.seen++
	if _, ok := s.counts[item]; ok {
		s.counts[item]++
		return
	}
	if len(s.counts) < s.capacity {
		s.counts[item] = 1
		s.errors[item] = 0
		return
	}
	// Evict the minimum counter.
	var minItem uint64
	minCount := int64(1<<62 - 1)
	for it, c := range s.counts {
		if c < minCount {
			minCount = c
			minItem = it
		}
	}
	delete(s.counts, minItem)
	delete(s.errors, minItem)
	s.counts[item] = minCount + 1
	s.errors[item] = minCount
}

// HeavyHitter is one tracked item with its estimated count and maximum
// overestimation error.
type HeavyHitter struct {
	Item     uint64
	Count    int64
	MaxError int64
}

// Top returns the k tracked items with the highest estimated counts.
func (s *SpaceSaving) Top(k int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(s.counts))
	for it, c := range s.counts {
		out = append(out, HeavyHitter{Item: it, Count: c, MaxError: s.errors[it]})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Item < out[b].Item
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Seen returns the number of observed items.
func (s *SpaceSaving) Seen() int64 { return s.seen }
