// Package pipeline is the remediation plane: it runs the paper's full
// responsible-data-science loop — train a classifier, audit it,
// mitigate, re-audit, privatize the sensitive attribute under local
// differential privacy, retrain, re-audit — as a staged job on the
// serve engine's runtime. Each stage is admitted through the tenant
// scheduler under the "pipeline" class, emits a typed result into the
// job's history ring, and persists its outcome under store
// KindPipelines before the next stage may run, so a killed process
// resumes every in-flight pipeline at its last completed stage.
//
// The stage vocabulary mirrors the exemplar curriculum (classifier →
// fair classifier → private classifier → private+fair classifier):
//
//	train          fit the baseline logistic model (no mitigation)
//	audit          FACT-audit the current model
//	mitigate       retrain with the spec's fairness mitigation
//	re-audit       FACT-audit again (alias of audit; reads better in specs)
//	ldp-privatize  randomized-response the sensitive column, keeping the
//	               true values in "<sensitive>__true" for the auditor
//	retrain        retrain on the privatized frame (current mitigation);
//	               subsequent audits group by the true attribute
//
// cmd/rds-serve exposes the plane as POST /v1/pipelines and
// GET /v1/pipelines/{id}.
package pipeline

import (
	"encoding/json"
	"fmt"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/serve"
)

// Stage names.
const (
	// StageTrain fits the baseline model without mitigation.
	StageTrain = "train"
	// StageAudit FACT-audits the current model.
	StageAudit = "audit"
	// StageMitigate retrains with the spec's fairness mitigation.
	StageMitigate = "mitigate"
	// StageReaudit is audit under the name pipeline specs read best with.
	StageReaudit = "re-audit"
	// StagePrivatize applies randomized response to the sensitive column.
	StagePrivatize = "ldp-privatize"
	// StageRetrain refits on the (possibly privatized) working frame.
	StageRetrain = "retrain"
)

// DefaultStages is the full curriculum run when a spec omits "stages".
var DefaultStages = []string{
	StageTrain, StageAudit, StageMitigate, StageReaudit,
	StagePrivatize, StageRetrain, StageReaudit,
}

// Spec is the JSON body of POST /v1/pipelines: the dataset to remediate
// (by registry ref — pipelines never ship data inline), the training
// spec, the mitigation and privacy knobs, and the stage list.
type Spec struct {
	// Tenant is the submitting tenant's id; the X-RDS-Tenant header,
	// validated at the edge, takes precedence.
	Tenant string `json:"tenant,omitempty"`
	// Name labels the run (default "pipeline").
	Name string `json:"name,omitempty"`
	// DatasetRef is the content hash of a resident dataset (POST
	// /v1/datasets). Required: the ref pins the exact bytes every stage
	// — and every post-restart replay — computes over.
	DatasetRef string `json:"dataset_ref"`

	// Target is the binary label column (default "approved").
	Target string `json:"target,omitempty"`
	// Sensitive is the sensitive-attribute column (default "group").
	Sensitive string `json:"sensitive,omitempty"`
	// Protected is the protected group value (default "B").
	Protected string `json:"protected,omitempty"`
	// Reference is the reference group value (default "A").
	Reference string `json:"reference,omitempty"`
	// Exclude lists additional columns kept out of the features.
	Exclude []string `json:"exclude,omitempty"`
	// TestFraction is the held-out fraction (default 0.3).
	TestFraction float64 `json:"test_fraction,omitempty"`
	// Epochs is the logistic training epoch count (default 40).
	Epochs int `json:"epochs,omitempty"`

	// Mitigation is the fairness intervention the mitigate stage (and
	// every later training stage) applies: "reweigh" (default) or
	// "threshold".
	Mitigation string `json:"mitigation,omitempty"`
	// Epsilon is the per-individual randomized-response budget of the
	// ldp-privatize stage (default 1.0).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Seed drives every stochastic step (default 1). With the pinned
	// dataset_ref it makes the whole run — and its post-restart replay —
	// deterministic.
	Seed uint64 `json:"seed,omitempty"`
	// Shards overrides the service shard count for row-scans.
	Shards int `json:"shards,omitempty"`

	// Stages is the ordered stage list (default DefaultStages).
	Stages []string `json:"stages,omitempty"`
	// Policy holds the FACT thresholds audits grade against (default
	// serve.DefaultPolicy).
	Policy *policy.FACTPolicy `json:"policy,omitempty"`
}

// withDefaults returns the spec with every omitted knob resolved, or an
// error for an invalid stage list.
func (s Spec) withDefaults() (Spec, error) {
	if s.DatasetRef == "" {
		return s, fmt.Errorf("pipeline: spec needs dataset_ref (upload via POST /v1/datasets first)")
	}
	if s.Name == "" {
		s.Name = "pipeline"
	}
	if s.Target == "" {
		s.Target = "approved"
	}
	if s.Sensitive == "" {
		s.Sensitive = "group"
	}
	if s.Protected == "" {
		s.Protected = "B"
	}
	if s.Reference == "" {
		s.Reference = "A"
	}
	if s.Mitigation == "" {
		s.Mitigation = "reweigh"
	}
	if _, err := core.ParseMitigation(s.Mitigation); err != nil {
		return s, err
	}
	if s.Epsilon == 0 {
		s.Epsilon = 1.0
	}
	if s.Epsilon < 0 {
		return s, fmt.Errorf("pipeline: epsilon %v negative", s.Epsilon)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Stages) == 0 {
		s.Stages = append([]string(nil), DefaultStages...)
	}
	trained := false
	for i, name := range s.Stages {
		switch name {
		case StageTrain, StageMitigate, StageRetrain:
			trained = true
		case StageAudit, StageReaudit:
			if !trained {
				return s, fmt.Errorf("pipeline: stage %d (%q) audits before any training stage", i, name)
			}
		case StagePrivatize:
			// Position-free: privatizing before training is legal (the
			// curriculum's "private classifier" trains on noisy data).
		default:
			return s, fmt.Errorf("pipeline: unknown stage %q (want %v)", name, DefaultStages)
		}
	}
	if pol := s.Policy; pol != nil {
		if err := pol.Validate(); err != nil {
			return s, err
		}
	}
	return s, nil
}

// policyOrDefault resolves the grading policy.
func (s Spec) policyOrDefault() policy.FACTPolicy {
	if s.Policy != nil {
		return *s.Policy
	}
	return serve.DefaultPolicy()
}

// trainSpec renders the core training spec with the given mitigation
// and optional auditor's true-attribute column.
func (s Spec) trainSpec(mit core.Mitigation, trueCol string) core.TrainSpec {
	return core.TrainSpec{
		Target:       s.Target,
		Sensitive:    s.Sensitive,
		Protected:    s.Protected,
		Reference:    s.Reference,
		Exclude:      s.Exclude,
		TestFraction: s.TestFraction,
		Mitigation:   mit,
		Epochs:       s.Epochs,
		TrueGroups:   trueCol,
	}
}

// StageRecord is one completed stage in a pipeline's persisted record:
// the irreducible facts (which stage, what it reported) from which the
// in-memory artifacts are rebuilt by deterministic replay.
type StageRecord struct {
	Index         int             `json:"index"`
	Stage         string          `json:"stage"`
	Kind          string          `json:"kind"`
	Status        serve.Status    `json:"status"`
	ElapsedMillis float64         `json:"elapsed_millis"`
	Detail        json.RawMessage `json:"detail,omitempty"`
	Error         string          `json:"error,omitempty"`
}

// Record is one pipeline run's durable state and the JSON body of
// GET /v1/pipelines/{id}: the normalized spec plus every completed
// stage's result. It is written before the run becomes visible and
// after every stage, so at any kill point the store holds exactly the
// stages that finished.
type Record struct {
	ID     string       `json:"id"`
	Tenant string       `json:"tenant"`
	Spec   Spec         `json:"spec"`
	Status serve.Status `json:"status"`
	// Stages holds the completed stages, oldest first.
	Stages []StageRecord `json:"stages"`
	Error  string        `json:"error,omitempty"`
	// ElapsedMillis is submit-to-finish latency once the run ends.
	ElapsedMillis float64 `json:"elapsed_millis,omitempty"`
	// Resumed counts how many times a restart re-entered this run.
	Resumed int `json:"resumed,omitempty"`
}

// clone deep-copies the record so registry internals never alias
// HTTP-rendered state.
func (r *Record) clone() *Record {
	out := *r
	out.Spec.Stages = append([]string(nil), r.Spec.Stages...)
	out.Spec.Exclude = append([]string(nil), r.Spec.Exclude...)
	out.Stages = make([]StageRecord, len(r.Stages))
	for i, s := range r.Stages {
		s.Detail = append(json.RawMessage(nil), s.Detail...)
		out.Stages[i] = s
	}
	return &out
}

// TrainDetail is the typed result of train/retrain stages.
type TrainDetail struct {
	Mitigation string  `json:"mitigation"`
	Accuracy   float64 `json:"accuracy"`
	AUC        float64 `json:"auc"`
	// Privatized marks models fit after ldp-privatize ran.
	Privatized bool `json:"privatized"`
}

// AuditDetail is the typed result of audit/re-audit stages: the FACT
// grades up front, the full report attached.
type AuditDetail struct {
	Overall         policy.Grade `json:"overall"`
	DisparateImpact float64      `json:"disparate_impact"`
	Accuracy        float64      `json:"accuracy"`
	EpsSpent        float64      `json:"eps_spent"`
	// TrueGroups marks audits grouped by the auditor's ground-truth
	// attribute rather than the (privatized) sensitive column.
	TrueGroups bool             `json:"true_groups,omitempty"`
	Report     *core.FACTReport `json:"report"`
}

// MitigateDetail is the typed result of the mitigate stage: the model
// metrics plus the deltas against the model it replaced.
type MitigateDetail struct {
	Mitigation string  `json:"mitigation"`
	Accuracy   float64 `json:"accuracy"`
	AUC        float64 `json:"auc"`
	// AccuracyDelta/AUCDelta are vs the previous trained model (0 when
	// mitigate ran first).
	AccuracyDelta float64 `json:"accuracy_delta"`
	AUCDelta      float64 `json:"auc_delta"`
}

// PrivatizeDetail is the typed result of the ldp-privatize stage.
type PrivatizeDetail struct {
	Column string `json:"column"`
	// TrueColumn is where the pre-noise values were preserved for the
	// auditor ("<column>__true", excluded from features).
	TrueColumn string `json:"true_column"`
	// Epsilon is the per-individual randomized-response budget and
	// EpsSpent the accountant's running total after this stage.
	Epsilon  float64 `json:"epsilon"`
	EpsSpent float64 `json:"eps_spent"`
	// KeepProbability is e^eps/(1+e^eps); FlippedFraction the realized
	// flip rate over the column.
	KeepProbability float64 `json:"keep_probability"`
	FlippedFraction float64 `json:"flipped_fraction"`
}
