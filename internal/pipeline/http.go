package pipeline

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/responsible-data-science/rds/internal/httpx"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// Handler exposes the pipeline plane over HTTP:
//
//	POST /v1/pipelines       submit a staged run (202 + initial record)
//	GET  /v1/pipelines       list visible runs, newest first
//	GET  /v1/pipelines/{id}  one run's record (spec + per-stage results)
//
// Submission is always async — pipelines are minutes of work, not a
// request-response exchange; poll the record (or the per-stage history)
// for progress. Tenant-scoped requests see only their own runs; a
// foreign id answers 404, indistinguishable from an absent one.
type Handler struct {
	// Runs is the pipeline registry. Required.
	Runs *Registry
}

// NewHandler wraps the registry in the HTTP API.
func NewHandler(runs *Registry) *Handler { return &Handler{Runs: runs} }

// ServeHTTP routes the pipelines API.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r, err := httpx.Tenant(r)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/pipelines")
	if !ok {
		httpx.Error(w, http.StatusNotFound, fmt.Errorf("no route %s", r.URL.Path))
		return
	}
	rest = strings.Trim(rest, "/")
	switch {
	case rest == "" && r.Method == http.MethodPost:
		h.post(w, r)
	case rest == "" && r.Method == http.MethodGet:
		httpx.WriteJSON(w, http.StatusOK, map[string]any{
			"pipelines": h.Runs.List(viewer(r)),
		})
	case rest == "":
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("GET or POST required"))
	case r.Method == http.MethodGet:
		rec, ok := h.Runs.Get(viewer(r), rest)
		if !ok {
			httpx.Error(w, http.StatusNotFound, fmt.Errorf("no pipeline %q", rest))
			return
		}
		httpx.WriteJSON(w, http.StatusOK, rec)
	default:
		httpx.Error(w, http.StatusMethodNotAllowed, errors.New("GET required"))
	}
}

// viewer resolves the request's visibility scope: the context tenant
// when the edge validated one, "" (operator, sees all) otherwise.
func viewer(r *http.Request) string {
	ten, ok := tenant.FromContext(r.Context())
	if !ok {
		return ""
	}
	return ten
}

func (h *Handler) post(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, httpx.MaxBodyBytes)
	var spec Spec
	if err := httpx.DecodeJSON(w, r, &spec); err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	ten, err := tenant.Or(r.Context(), spec.Tenant)
	if err != nil {
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	spec.Tenant = ten
	rec, err := h.Runs.Submit(spec)
	switch {
	case errors.Is(err, tenant.ErrQuota), errors.Is(err, serve.ErrTenantBusy):
		setRetryAfter(w, err)
		httpx.Error(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, serve.ErrBusy):
		setRetryAfter(w, err)
		httpx.Error(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, serve.ErrClosed):
		httpx.Error(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpx.Error(w, http.StatusBadRequest, err)
		return
	}
	httpx.WriteJSON(w, http.StatusAccepted, rec)
}

// setRetryAfter mirrors the audit plane's Retry-After contract on
// pipeline admission rejections.
func setRetryAfter(w http.ResponseWriter, err error) {
	if secs, ok := serve.RetryAfter(err); ok {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
}
