package pipeline

import (
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/store/memory"
	"github.com/responsible-data-science/rds/internal/synth"
)

// BenchmarkPipelineRun times one full default curriculum (train →
// audit → mitigate → re-audit → ldp-privatize → retrain → re-audit)
// end to end through the staged runtime: submit, stage-by-stage
// scheduling through admission, per-stage persistence into the memory
// store, and the poll-to-terminal a client pays. This is the headline
// cost of the remediation plane — the number BENCH_10.json baselines
// and the CI benchcmp gate watches.
func BenchmarkPipelineRun(b *testing.B) {
	engine := serve.NewEngine(serve.Config{Workers: 2, QueueSize: 64, JobTimeout: time.Minute})
	defer engine.Close()
	datasets := dataset.NewRegistry(0)
	f, err := synth.Credit(synth.CreditConfig{N: 2000, Bias: 1.0, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	meta, err := datasets.Put("credit", f)
	if err != nil {
		b.Fatal(err)
	}
	runs := NewRegistry(engine, datasets, nil)
	if err := runs.AttachStore(memory.New()); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh seed each iteration keeps every run's training real
		// (deterministic replay would otherwise be a same-bytes rerun).
		rec, err := runs.Submit(Spec{DatasetRef: meta.Ref, Epochs: 20, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		for {
			cur, ok := runs.Get("", rec.ID)
			if !ok {
				b.Fatalf("run %s vanished", rec.ID)
			}
			if terminal(cur.Status) {
				if cur.Status != serve.StatusDone {
					b.Fatalf("run %s = %s (%s)", rec.ID, cur.Status, cur.Error)
				}
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.ReportMetric(float64(b.N*len(DefaultStages))/b.Elapsed().Seconds(), "stages/s")
}
