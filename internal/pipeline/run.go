package pipeline

import (
	"context"
	"fmt"
	"math"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/privacy"
	"github.com/responsible-data-science/rds/internal/rng"
	"github.com/responsible-data-science/rds/internal/serve"
)

// runState is one pipeline run's in-memory working state: the core
// pipeline (frame, lineage, rng), the current model, and the privacy
// accountant. None of it is persisted — every field is a deterministic
// function of (dataset bytes, normalized spec), pinned by dataset_ref
// and seed, so a restart rebuilds it by replaying the completed stages'
// compute (see ensureReady). Stages run strictly sequentially (the
// engine schedules one stage of a task at a time, with happens-before
// edges through the scheduler), so no locking is needed.
type runState struct {
	spec Spec
	base *frame.Frame

	pipe   *core.Pipeline
	src    *rng.Source // drives randomized response; split off the seed
	budget *privacy.Budget

	model      *core.TrainedModel
	mitigation core.Mitigation // applied by mitigate; inherited by retrain
	trueCol    string          // set once ldp-privatize ran
	// replay lists stage names completed in a previous process life,
	// to be re-executed (results discarded) before the first live stage.
	replay []string
}

// newRunState builds the state for a run whose first len(replay) stages
// completed in a previous process life (empty for fresh runs).
func newRunState(spec Spec, base *frame.Frame, replay []string) *runState {
	return &runState{spec: spec, base: base, replay: replay}
}

// init builds the core pipeline, loads the pinned dataset, and attaches
// the privacy accountant. Called lazily from the first executing stage
// so construction cost lands on a worker, not the submit path.
func (rs *runState) init() error {
	pol := rs.spec.policyOrDefault()
	pipe, err := core.New(core.Config{
		Name:   rs.spec.Name,
		Policy: pol,
		Seed:   rs.spec.Seed,
		Actor:  "rds-pipeline",
		Shards: rs.spec.Shards,
	})
	if err != nil {
		return err
	}
	if err := pipe.Load(rs.spec.DatasetRef, rs.base); err != nil {
		return err
	}
	// The accountant's ceiling is the policy's epsilon cap when the
	// policy sets one — a spec asking for more than the policy allows
	// fails the privatize stage instead of silently overspending.
	maxEps := pol.MaxEpsilon
	if maxEps <= 0 {
		maxEps = rs.spec.Epsilon
	}
	if maxEps > 0 {
		b, err := privacy.NewBudget(maxEps, 0)
		if err != nil {
			return err
		}
		rs.budget = b
		pipe.AttachBudget(b)
	}
	rs.pipe = pipe
	rs.src = rng.New(rs.spec.Seed)
	return nil
}

// ensureReady initializes the run on first use and replays any stages
// completed before a restart. Every stage body is deterministic in
// (dataset, spec, seed) and consumes randomness in stage order, so the
// replayed compute reconstructs the exact pre-kill model, frame, and
// accountant — the persisted record supplies the history; replay
// supplies the artifacts.
func (rs *runState) ensureReady(ctx context.Context) error {
	if rs.pipe != nil {
		return nil
	}
	if err := rs.init(); err != nil {
		return err
	}
	for i, name := range rs.replay {
		if _, err := rs.runStage(ctx, name); err != nil {
			return fmt.Errorf("pipeline: replaying completed stage %d (%q): %w", i, name, err)
		}
	}
	return nil
}

// runStage executes one named stage against the current state and
// returns its typed detail.
func (rs *runState) runStage(ctx context.Context, name string) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch name {
	case StageTrain:
		return rs.train(core.MitigateNone)
	case StageRetrain:
		return rs.train(rs.mitigation)
	case StageMitigate:
		return rs.mitigate()
	case StageAudit, StageReaudit:
		return rs.audit()
	case StagePrivatize:
		return rs.privatize()
	}
	return nil, fmt.Errorf("pipeline: unknown stage %q", name)
}

func (rs *runState) train(mit core.Mitigation) (any, error) {
	tm, err := rs.pipe.Train(rs.spec.trainSpec(mit, rs.trueCol))
	if err != nil {
		return nil, err
	}
	rs.model = tm
	return &TrainDetail{
		Mitigation: mit.String(),
		Accuracy:   tm.Accuracy,
		AUC:        tm.AUC,
		Privatized: rs.trueCol != "",
	}, nil
}

func (rs *runState) mitigate() (any, error) {
	mit, err := core.ParseMitigation(rs.spec.Mitigation)
	if err != nil {
		return nil, err
	}
	prev := rs.model
	tm, err := rs.pipe.Train(rs.spec.trainSpec(mit, rs.trueCol))
	if err != nil {
		return nil, err
	}
	rs.model = tm
	rs.mitigation = mit
	d := &MitigateDetail{Mitigation: mit.String(), Accuracy: tm.Accuracy, AUC: tm.AUC}
	if prev != nil {
		d.AccuracyDelta = tm.Accuracy - prev.Accuracy
		d.AUCDelta = tm.AUC - prev.AUC
	}
	return d, nil
}

func (rs *runState) audit() (any, error) {
	if rs.model == nil {
		return nil, fmt.Errorf("pipeline: audit before any training stage")
	}
	rep, err := rs.pipe.Audit(rs.model)
	if err != nil {
		return nil, err
	}
	return &AuditDetail{
		Overall:         rep.Overall,
		DisparateImpact: rep.Fairness.Report.DisparateImpact,
		Accuracy:        rep.Accuracy.Accuracy,
		EpsSpent:        rep.Confidentiality.EpsSpent,
		TrueGroups:      rs.trueCol != "",
		Report:          rep,
	}, nil
}

// privatize applies binary randomized response to the sensitive column
// — each row's group membership is kept with probability
// e^eps/(1+e^eps), flipped otherwise — and preserves the true values in
// "<sensitive>__true" for the auditor. Epsilon is charged to the
// accountant once: under local DP each individual's bit is randomized
// independently, so the per-individual guarantee (what the accountant
// tracks) is eps, not n·eps. Later training stages see only the noisy
// attribute; later audits group by the preserved truth.
func (rs *runState) privatize() (any, error) {
	if rs.trueCol != "" {
		return nil, fmt.Errorf("pipeline: column %q already privatized", rs.spec.Sensitive)
	}
	col := rs.spec.Sensitive
	eps := rs.spec.Epsilon
	label := "ldp-privatize(" + col + ")"
	if err := rs.budget.Spend(label, eps, 0); err != nil {
		return nil, err
	}
	keep := math.Exp(eps) / (1 + math.Exp(eps))
	trueCol := col + "__true"
	flipped := 0
	err := rs.pipe.Transform(label, func(f *frame.Frame) (*frame.Frame, error) {
		s, err := f.Col(col)
		if err != nil {
			return nil, err
		}
		if f.Has(trueCol) {
			return nil, fmt.Errorf("pipeline: column %q already exists", trueCol)
		}
		vals := s.Strings()
		noisy := make([]string, len(vals))
		for i, v := range vals {
			isProt := v == rs.spec.Protected
			out := isProt
			if !rs.src.Bernoulli(keep) {
				out = !out
				flipped++
			}
			if out {
				noisy[i] = rs.spec.Protected
			} else {
				noisy[i] = rs.spec.Reference
			}
		}
		f2, err := f.WithColumn(s.Rename(trueCol))
		if err != nil {
			return nil, err
		}
		return f2.WithColumn(frame.NewString(col, noisy).Intern())
	})
	if err != nil {
		return nil, err
	}
	rs.trueCol = trueCol
	spent, _ := rs.budget.Spent()
	n := rs.pipe.Frame().NumRows()
	d := &PrivatizeDetail{
		Column:          col,
		TrueColumn:      trueCol,
		Epsilon:         eps,
		EpsSpent:        spent,
		KeepProbability: keep,
	}
	if n > 0 {
		d.FlippedFraction = float64(flipped) / float64(n)
	}
	return d, nil
}

// stages renders the run's remaining stage names as serve stages, all
// under the pipeline admission class.
func (rs *runState) stages(names []string) []serve.Stage {
	out := make([]serve.Stage, len(names))
	for i, name := range names {
		name := name
		out[i] = serve.Stage{
			Name: name,
			Kind: serve.ClassPipeline,
			Run: func(ctx context.Context) (any, error) {
				if err := rs.ensureReady(ctx); err != nil {
					return nil, err
				}
				return rs.runStage(ctx, name)
			},
		}
	}
	return out
}
