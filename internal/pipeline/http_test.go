package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/synth"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// doJSON sends one request with optional tenant header and returns the
// status code and raw body.
func doJSON(t *testing.T, srv *httptest.Server, method, path, ten string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if ten != "" {
		req.Header.Set("X-RDS-Tenant", ten)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func TestHTTPPipelineLifecycle(t *testing.T) {
	w := newWorld(t, nil)
	srv := httptest.NewServer(NewHandler(w.runs))
	defer srv.Close()

	code, raw := doJSON(t, srv, http.MethodPost, "/v1/pipelines", "", map[string]any{
		"dataset_ref": w.ref,
		"epochs":      8,
		"stages":      []string{"train", "audit", "mitigate", "re-audit"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", code, raw)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" || rec.Spec.Mitigation != "reweigh" {
		t.Fatalf("accepted record = %+v, want id and defaulted spec", rec)
	}

	// Poll the record endpoint until the run is terminal.
	deadline := time.Now().Add(time.Minute)
	var got Record
	for {
		code, raw = doJSON(t, srv, http.MethodGet, "/v1/pipelines/"+rec.ID, "", nil)
		if code != http.StatusOK {
			t.Fatalf("GET = %d: %s", code, raw)
		}
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if terminal(got.Status) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never finished: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Status != serve.StatusDone || len(got.Stages) != 4 {
		t.Fatalf("final = %s with %d stages (%s)", got.Status, len(got.Stages), got.Error)
	}

	var list struct {
		Pipelines []Record `json:"pipelines"`
	}
	code, raw = doJSON(t, srv, http.MethodGet, "/v1/pipelines", "", nil)
	if code != http.StatusOK {
		t.Fatalf("GET list = %d", code)
	}
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Pipelines) != 1 || list.Pipelines[0].ID != rec.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestHTTPPipelineErrorPaths(t *testing.T) {
	w := newWorld(t, nil)
	srv := httptest.NewServer(NewHandler(w.runs))
	defer srv.Close()

	for _, tc := range []struct {
		name string
		body any
		want int
	}{
		{"missing dataset_ref", map[string]any{}, http.StatusBadRequest},
		{"unknown dataset", map[string]any{"dataset_ref": "nope"}, http.StatusBadRequest},
		{"unknown stage", map[string]any{"dataset_ref": w.ref, "stages": []string{"ship-it"}}, http.StatusBadRequest},
		{"bad mitigation", map[string]any{"dataset_ref": w.ref, "mitigation": "hope"}, http.StatusBadRequest},
	} {
		if code, raw := doJSON(t, srv, http.MethodPost, "/v1/pipelines", "", tc.body); code != tc.want {
			t.Errorf("%s: POST = %d (%s), want %d", tc.name, code, raw, tc.want)
		}
	}
	if code, _ := doJSON(t, srv, http.MethodDelete, "/v1/pipelines", "", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE collection = %d, want 405", code)
	}
	if code, _ := doJSON(t, srv, http.MethodGet, "/v1/pipelines/pl-404404", "", nil); code != http.StatusNotFound {
		t.Errorf("GET absent run = %d, want 404", code)
	}
	if code, _ := doJSON(t, srv, http.MethodGet, "/v1/pipelines/pl-000001", "Bad Tenant!", nil); code != http.StatusBadRequest {
		t.Errorf("invalid tenant header = %d, want 400", code)
	}
}

// TestHTTPPipelineTenantScoping checks the header-scoped visibility
// contract: a tenant's runs are invisible (404, not 403) to others,
// operators see all, and a quota rejection answers 429 with
// Retry-After semantics reserved for admission errors.
func TestHTTPPipelineTenantScoping(t *testing.T) {
	quotas := func(ten string) tenant.Quotas {
		if ten == "capped" {
			return tenant.Quotas{MaxPipelines: 1}
		}
		return tenant.Quotas{}
	}
	engine := serve.NewEngine(serve.Config{Workers: 1, QueueSize: 16, JobTimeout: time.Minute, TenantQuotas: quotas})
	defer engine.Close()
	w := newWorld(t, nil) // datasets + a resident default-tenant frame
	f, err := synth.Credit(synth.CreditConfig{N: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := w.datasets.PutAs("capped", "credit-c", f)
	if err != nil {
		t.Fatal(err)
	}
	runs := NewRegistry(engine, w.datasets, quotas)
	srv := httptest.NewServer(NewHandler(runs))
	defer srv.Close()

	// Hold the only worker so the capped tenant's run stays live.
	block := make(chan struct{})
	entered := make(chan struct{})
	blocker, err := engine.SubmitTask(serve.TaskSpec{Stages: []serve.Stage{{
		Run: func(ctx context.Context) (any, error) { close(entered); <-block; return nil, nil },
	}}})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	defer func() {
		close(block)
		engine.WaitTask(context.Background(), blocker)
	}()

	spec := map[string]any{"dataset_ref": meta.Ref, "epochs": 3, "stages": []string{"train"}}
	code, raw := doJSON(t, srv, http.MethodPost, "/v1/pipelines", "capped", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST as capped = %d: %s", code, raw)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Tenant != "capped" {
		t.Fatalf("record tenant = %q, want header tenant", rec.Tenant)
	}

	// Second live run: quota → 429.
	code, raw = doJSON(t, srv, http.MethodPost, "/v1/pipelines", "capped", spec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over max_pipelines = %d (%s), want 429", code, raw)
	}

	// Foreign tenant: the run reads as absent.
	if code, _ := doJSON(t, srv, http.MethodGet, "/v1/pipelines/"+rec.ID, "other", nil); code != http.StatusNotFound {
		t.Fatalf("foreign GET = %d, want 404", code)
	}
	if code, _ := doJSON(t, srv, http.MethodGet, "/v1/pipelines/"+rec.ID, "capped", nil); code != http.StatusOK {
		t.Fatalf("own GET = %d, want 200", code)
	}
	if code, _ := doJSON(t, srv, http.MethodGet, "/v1/pipelines/"+rec.ID, "", nil); code != http.StatusOK {
		t.Fatalf("operator GET = %d, want 200", code)
	}
	var list struct {
		Pipelines []Record `json:"pipelines"`
	}
	_, raw = doJSON(t, srv, http.MethodGet, "/v1/pipelines", "other", nil)
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Pipelines) != 0 {
		t.Fatalf("foreign list sees %d runs, want 0", len(list.Pipelines))
	}
}
