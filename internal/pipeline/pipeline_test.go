package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/store/memory"
	"github.com/responsible-data-science/rds/internal/synth"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// world is one assembled pipeline plane for tests: engine, dataset
// registry, pipeline registry over a memory store, and a resident
// biased synthetic dataset.
type world struct {
	engine   *serve.Engine
	datasets *dataset.Registry
	runs     *Registry
	ref      string
}

func newWorld(t *testing.T, quotas func(string) tenant.Quotas) *world {
	t.Helper()
	engine := serve.NewEngine(serve.Config{Workers: 2, QueueSize: 64, JobTimeout: time.Minute, TenantQuotas: quotas})
	t.Cleanup(engine.Close)
	datasets := dataset.NewRegistry(0)
	f, err := synth.Credit(synth.CreditConfig{N: 500, Bias: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := datasets.Put("credit", f)
	if err != nil {
		t.Fatal(err)
	}
	runs := NewRegistry(engine, datasets, quotas)
	if err := runs.AttachStore(memory.New()); err != nil {
		t.Fatal(err)
	}
	return &world{engine: engine, datasets: datasets, runs: runs, ref: meta.Ref}
}

// wait polls the registry until run id is terminal.
func (w *world) wait(t *testing.T, id string) *Record {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		rec, ok := w.runs.Get("", id)
		if !ok {
			t.Fatalf("run %s vanished", id)
		}
		if terminal(rec.Status) {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return nil
}

// auditAt decodes the AuditDetail of the stage at index i.
func auditAt(t *testing.T, rec *Record, i int) AuditDetail {
	t.Helper()
	if i >= len(rec.Stages) {
		t.Fatalf("record has %d stages, want index %d (%+v)", len(rec.Stages), i, rec)
	}
	var d AuditDetail
	if err := json.Unmarshal(rec.Stages[i].Detail, &d); err != nil {
		t.Fatalf("decoding stage %d detail: %v", i, err)
	}
	return d
}

func TestSpecValidation(t *testing.T) {
	base := Spec{DatasetRef: "abc"}
	if _, err := base.withDefaults(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no dataset", Spec{}, "dataset_ref"},
		{"bad mitigation", Spec{DatasetRef: "abc", Mitigation: "wish"}, "mitigation"},
		{"negative epsilon", Spec{DatasetRef: "abc", Epsilon: -1}, "epsilon"},
		{"unknown stage", Spec{DatasetRef: "abc", Stages: []string{"train", "deploy"}}, "unknown stage"},
		{"audit first", Spec{DatasetRef: "abc", Stages: []string{"audit", "train"}}, "before any training"},
	}
	for _, tc := range cases {
		if _, err := tc.spec.withDefaults(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	got, err := Spec{DatasetRef: "abc"}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got.Mitigation != "reweigh" || got.Epsilon != 1.0 || got.Seed != 1 || len(got.Stages) != len(DefaultStages) {
		t.Fatalf("defaults = %+v", got)
	}
}

// TestFullCurriculumImprovesGrade is the acceptance test: over
// synthetic biased data the default seven-stage curriculum completes,
// the mitigated re-audit grades at least as well as the initial audit
// with strictly better disparate impact, the ldp-privatize stage
// reports its epsilon to the accountant, and the final private+fair
// re-audit grades by the true attribute without losing the mitigation.
func TestFullCurriculumImprovesGrade(t *testing.T) {
	w := newWorld(t, nil)
	rec, err := w.runs.Submit(Spec{DatasetRef: w.ref, Epochs: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != serve.StatusQueued && rec.Status != serve.StatusRunning {
		t.Fatalf("initial record status = %s", rec.Status)
	}
	final := w.wait(t, rec.ID)
	if final.Status != serve.StatusDone {
		t.Fatalf("run = %s (%s), want done; stages %+v", final.Status, final.Error, final.Stages)
	}
	if len(final.Stages) != 7 {
		t.Fatalf("completed stages = %d, want 7", len(final.Stages))
	}
	for i, s := range final.Stages {
		if s.Status != serve.StatusDone || s.Index != i || s.Kind != serve.ClassPipeline {
			t.Fatalf("stage %d = %+v, want done under the pipeline class", i, s)
		}
	}

	initial := auditAt(t, final, 1)   // audit of the unmitigated model
	mitigated := auditAt(t, final, 3) // re-audit after mitigate
	private := auditAt(t, final, 6)   // re-audit after privatize+retrain
	if initial.Overall != policy.Red {
		t.Fatalf("unmitigated audit on bias-1.0 data = %s, want red", initial.Overall)
	}
	if mitigated.Overall < initial.Overall {
		t.Fatalf("mitigated grade %s worse than initial %s", mitigated.Overall, initial.Overall)
	}
	if mitigated.DisparateImpact <= initial.DisparateImpact {
		t.Fatalf("mitigation did not improve disparate impact: %v -> %v",
			initial.DisparateImpact, mitigated.DisparateImpact)
	}
	if initial.EpsSpent != 0 || mitigated.EpsSpent != 0 {
		t.Fatalf("epsilon spent before ldp-privatize: %v / %v", initial.EpsSpent, mitigated.EpsSpent)
	}

	var priv PrivatizeDetail
	if err := json.Unmarshal(final.Stages[4].Detail, &priv); err != nil {
		t.Fatal(err)
	}
	if priv.Epsilon != 1.0 || priv.EpsSpent != 1.0 {
		t.Fatalf("privatize detail = %+v, want epsilon 1.0 spent once", priv)
	}
	if priv.KeepProbability <= 0.5 || priv.KeepProbability >= 1 {
		t.Fatalf("keep probability = %v, want in (0.5, 1)", priv.KeepProbability)
	}
	if priv.FlippedFraction <= 0 || priv.FlippedFraction >= 0.5 {
		t.Fatalf("flipped fraction = %v, want in (0, 0.5)", priv.FlippedFraction)
	}
	if priv.TrueColumn != "group__true" {
		t.Fatalf("true column = %q", priv.TrueColumn)
	}

	if !private.TrueGroups {
		t.Fatal("final re-audit not grouped by the true attribute")
	}
	if private.EpsSpent != 1.0 {
		t.Fatalf("final audit eps_spent = %v, want 1.0", private.EpsSpent)
	}
	if private.Overall < initial.Overall {
		t.Fatalf("private+fair grade %s worse than unmitigated %s", private.Overall, initial.Overall)
	}
}

// TestThresholdMitigationImprovesGrade runs the short fair-classifier
// arc under the threshold mitigation: train, audit, mitigate, re-audit.
func TestThresholdMitigationImprovesGrade(t *testing.T) {
	w := newWorld(t, nil)
	rec, err := w.runs.Submit(Spec{
		DatasetRef: w.ref,
		Epochs:     12,
		Mitigation: "threshold",
		Stages:     []string{StageTrain, StageAudit, StageMitigate, StageReaudit},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := w.wait(t, rec.ID)
	if final.Status != serve.StatusDone {
		t.Fatalf("run = %s (%s)", final.Status, final.Error)
	}
	initial, mitigated := auditAt(t, final, 1), auditAt(t, final, 3)
	if mitigated.Overall < initial.Overall || mitigated.DisparateImpact <= initial.DisparateImpact {
		t.Fatalf("threshold mitigation: %s DI %v -> %s DI %v, want improvement",
			initial.Overall, initial.DisparateImpact, mitigated.Overall, mitigated.DisparateImpact)
	}
	var mit MitigateDetail
	if err := json.Unmarshal(final.Stages[2].Detail, &mit); err != nil {
		t.Fatal(err)
	}
	if mit.Mitigation != "threshold" {
		t.Fatalf("mitigate detail = %+v", mit)
	}
}

// TestRunsAreDeterministic pins the property resume relies on: two runs
// of the same spec over the same dataset produce byte-identical stage
// details.
func TestRunsAreDeterministic(t *testing.T) {
	w := newWorld(t, nil)
	spec := Spec{DatasetRef: w.ref, Epochs: 8, Seed: 11}
	a, err := w.runs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.runs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := w.wait(t, a.ID), w.wait(t, b.ID)
	if fa.Status != serve.StatusDone || fb.Status != serve.StatusDone {
		t.Fatalf("runs = %s / %s", fa.Status, fb.Status)
	}
	for i := range fa.Stages {
		if string(fa.Stages[i].Detail) != string(fb.Stages[i].Detail) {
			t.Fatalf("stage %d diverged between identical runs:\n%s\n%s",
				i, fa.Stages[i].Detail, fb.Stages[i].Detail)
		}
	}
}

// TestResumeAtLastCompletedStage is the durability acceptance test at
// the registry level: a record persisted mid-run (as a kill -9 leaves
// it) is resumed by AttachStore at its last completed stage, and the
// resumed run's remaining stages are byte-identical to the
// uninterrupted run's — deterministic replay rebuilt the exact model
// and privatized frame.
func TestResumeAtLastCompletedStage(t *testing.T) {
	w := newWorld(t, nil)
	spec := Spec{DatasetRef: w.ref, Epochs: 8, Seed: 9}
	rec, err := w.runs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	full := w.wait(t, rec.ID)
	if full.Status != serve.StatusDone {
		t.Fatalf("reference run = %s (%s)", full.Status, full.Error)
	}

	// Re-create the kill point after every prefix length: the store
	// holds the spec plus k completed stages, status still running.
	for k := 1; k < len(full.Stages); k++ {
		st := memory.New()
		cut := *full
		cut.Status = serve.StatusRunning
		cut.Error = ""
		cut.ElapsedMillis = 0
		cut.Stages = full.Stages[:k]
		payload, err := json.Marshal(&cut)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save("pipelines", cut.ID, payload); err != nil {
			t.Fatal(err)
		}

		resumed := NewRegistry(w.engine, w.datasets, nil)
		if err := resumed.AttachStore(st); err != nil {
			t.Fatalf("k=%d: AttachStore: %v", k, err)
		}
		var got *Record
		deadline := time.Now().Add(time.Minute)
		for time.Now().Before(deadline) {
			r, ok := resumed.Get("", cut.ID)
			if !ok {
				t.Fatalf("k=%d: resumed run vanished", k)
			}
			if terminal(r.Status) {
				got = r
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if got == nil {
			t.Fatalf("k=%d: resumed run never finished", k)
		}
		if got.Status != serve.StatusDone {
			t.Fatalf("k=%d: resumed run = %s (%s)", k, got.Status, got.Error)
		}
		if got.Resumed != 1 {
			t.Fatalf("k=%d: resumed counter = %d, want 1", k, got.Resumed)
		}
		if len(got.Stages) != len(full.Stages) {
			t.Fatalf("k=%d: resumed stages = %d, want %d", k, len(got.Stages), len(full.Stages))
		}
		for i := k; i < len(full.Stages); i++ {
			if string(got.Stages[i].Detail) != string(full.Stages[i].Detail) {
				t.Fatalf("k=%d: stage %d after resume diverged from uninterrupted run:\n%s\n%s",
					k, i, got.Stages[i].Detail, full.Stages[i].Detail)
			}
		}
	}
}

// TestRestoreFinalizesAndFails covers the non-resumable restore arcs:
// all-stages-done records are finalized, records whose dataset is gone
// fail loudly in the record (not the boot), and corrupt records refuse
// the boot.
func TestRestoreFinalizesAndFails(t *testing.T) {
	w := newWorld(t, nil)
	spec, err := Spec{DatasetRef: w.ref}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	spec.Tenant = tenant.Default

	save := func(st *memory.Store, rec *Record) {
		t.Helper()
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save("pipelines", rec.ID, payload); err != nil {
			t.Fatal(err)
		}
	}

	// All stages persisted but the finish marker never landed.
	st := memory.New()
	done := &Record{ID: "pl-000001", Tenant: tenant.Default, Spec: spec, Status: serve.StatusRunning}
	for i, name := range spec.Stages {
		done.Stages = append(done.Stages, StageRecord{Index: i, Stage: name, Status: serve.StatusDone})
	}
	// Last persisted stage failed before the finish marker could land.
	failed := &Record{ID: "pl-000002", Tenant: tenant.Default, Spec: spec, Status: serve.StatusRunning,
		Stages: []StageRecord{{Index: 0, Stage: StageTrain, Status: serve.StatusFailed, Error: "boom"}}}
	// Dataset evicted between lives.
	gone := *done
	gone.ID = "pl-000003"
	gone.Stages = done.Stages[:2]
	gone.Spec.DatasetRef = "no-such-ref"
	save(st, done)
	save(st, failed)
	save(st, &gone)

	r := NewRegistry(w.engine, w.datasets, nil)
	if err := r.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if rec, _ := r.Get("", "pl-000001"); rec.Status != serve.StatusDone {
		t.Fatalf("all-done record = %s, want finalized done", rec.Status)
	}
	if rec, _ := r.Get("", "pl-000002"); rec.Status != serve.StatusFailed || rec.Error != "boom" {
		t.Fatalf("failed-stage record = %s (%s), want failed boom", rec.Status, rec.Error)
	}
	if rec, _ := r.Get("", "pl-000003"); rec.Status != serve.StatusFailed ||
		!strings.Contains(rec.Error, "not resident") {
		t.Fatalf("gone-dataset record = %s (%s), want failed not-resident", rec.Status, rec.Error)
	}
	// seq advanced past restored ids: the next submit does not collide.
	rec, err := r.Submit(Spec{DatasetRef: w.ref, Stages: []string{StageTrain}, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "pl-000004" {
		t.Fatalf("post-restore id = %s, want pl-000004", rec.ID)
	}

	// Corrupt record (valid JSON, wrong shape): refuse the boot.
	bad := memory.New()
	if err := bad.Save("pipelines", "pl-000009", []byte(`[1,2,3]`)); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry(w.engine, w.datasets, nil).AttachStore(bad); err == nil ||
		!strings.Contains(err.Error(), "pl-000009") {
		t.Fatalf("corrupt record restore: %v, want refusal naming the record", err)
	}
	// A record that names itself differently from its store id is also a
	// refusal — silent renames would break resume bookkeeping.
	renamed := memory.New()
	other := &Record{ID: "pl-000001", Tenant: tenant.Default, Spec: spec, Status: serve.StatusDone}
	payload, err := json.Marshal(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := renamed.Save("pipelines", "pl-000002", payload); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry(w.engine, w.datasets, nil).AttachStore(renamed); err == nil {
		t.Fatal("id-mismatched record accepted")
	}
}

// TestMaxPipelinesQuota checks the tenant quota gate: with
// max_pipelines 1 a second live run is rejected wrapping
// tenant.ErrQuota, and a slot frees once the first run finishes.
func TestMaxPipelinesQuota(t *testing.T) {
	quotas := func(string) tenant.Quotas { return tenant.Quotas{MaxPipelines: 1} }
	engine := serve.NewEngine(serve.Config{Workers: 1, QueueSize: 16, JobTimeout: time.Minute})
	defer engine.Close()
	datasets := dataset.NewRegistry(0)
	f, err := synth.Credit(synth.CreditConfig{N: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := datasets.Put("credit", f)
	if err != nil {
		t.Fatal(err)
	}
	runs := NewRegistry(engine, datasets, quotas)

	// Occupy the single worker so the first run stays live.
	block := make(chan struct{})
	entered := make(chan struct{})
	blocker, err := engine.SubmitTask(serve.TaskSpec{Stages: []serve.Stage{{
		Run: func(ctx context.Context) (any, error) { close(entered); <-block; return nil, nil },
	}}})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	spec := Spec{DatasetRef: meta.Ref, Epochs: 3, Stages: []string{StageTrain}}
	first, err := runs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runs.Submit(spec); !errors.Is(err, tenant.ErrQuota) {
		t.Fatalf("second live run: %v, want tenant.ErrQuota", err)
	}
	if got := runs.LiveCount(tenant.Default); got != 1 {
		t.Fatalf("live count = %d, want 1", got)
	}

	close(block)
	if _, err := engine.WaitTask(context.Background(), blocker); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		rec, _ := runs.Get("", first.ID)
		if terminal(rec.Status) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first run never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := runs.Submit(spec); err != nil {
		t.Fatalf("submit after slot freed: %v", err)
	}
}

// TestTenantScoping checks Get/List visibility: tenants see only their
// own runs (foreign ids read as absent), operators see everything, and
// CountsAs slices per tenant.
func TestTenantScoping(t *testing.T) {
	w := newWorld(t, nil)
	fA, err := synth.Credit(synth.CreditConfig{N: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	metaA, err := w.datasets.PutAs("acme", "credit-a", fA)
	if err != nil {
		t.Fatal(err)
	}
	short := []string{StageTrain}
	a, err := w.runs.Submit(Spec{Tenant: "acme", DatasetRef: metaA.Ref, Epochs: 3, Stages: short})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.runs.Submit(Spec{DatasetRef: w.ref, Epochs: 3, Stages: short})
	if err != nil {
		t.Fatal(err)
	}
	w.wait(t, a.ID)
	w.wait(t, b.ID)

	if _, ok := w.runs.Get("acme", b.ID); ok {
		t.Fatal("tenant acme sees the default tenant's run")
	}
	if _, ok := w.runs.Get("acme", a.ID); !ok {
		t.Fatal("tenant acme cannot see its own run")
	}
	if got := len(w.runs.List("acme")); got != 1 {
		t.Fatalf("acme list = %d runs, want 1", got)
	}
	if got := len(w.runs.List("")); got != 2 {
		t.Fatalf("operator list = %d runs, want 2", got)
	}
	total, live := w.runs.CountsAs("acme")
	if total != 1 || live != 0 {
		t.Fatalf("CountsAs(acme) = %d/%d, want 1 total 0 live", total, live)
	}
	// A tenant cannot run a pipeline over another tenant's dataset.
	if _, err := w.runs.Submit(Spec{Tenant: "acme", DatasetRef: w.ref, Epochs: 3, Stages: short}); err == nil {
		t.Fatal("cross-tenant dataset_ref accepted")
	}
}
