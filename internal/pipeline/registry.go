package pipeline

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/responsible-data-science/rds/internal/dataset"
	"github.com/responsible-data-science/rds/internal/serve"
	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/tenant"
)

// maxFinishedRecords bounds how many finished pipeline records the
// registry (and the store) retain; the oldest finished runs are pruned
// past it so an always-on service cannot grow without limit. Live runs
// are never pruned.
const maxFinishedRecords = 256

// Registry owns the pipeline plane: it validates specs, pins the
// dataset, submits runs to the serve engine as staged tasks, mirrors
// every stage completion into durable records (store.KindPipelines),
// and — via AttachStore at boot — resumes interrupted runs at their
// last completed stage. Safe for concurrent use.
type Registry struct {
	engine   *serve.Engine
	datasets *dataset.Registry
	quotas   func(string) tenant.Quotas

	mu   sync.Mutex
	st   store.Store
	recs map[string]*Record
	// order lists record ids oldest-first for bounded pruning.
	order []string
	// live counts each tenant's unfinished runs for MaxPipelines.
	live map[string]int
	seq  uint64
}

// NewRegistry builds the pipeline plane over the serve engine and the
// dataset registry. quotas resolves tenant quotas (nil = unlimited).
func NewRegistry(engine *serve.Engine, datasets *dataset.Registry, quotas func(string) tenant.Quotas) *Registry {
	if quotas == nil {
		quotas = func(string) tenant.Quotas { return tenant.Quotas{} }
	}
	return &Registry{
		engine:   engine,
		datasets: datasets,
		quotas:   quotas,
		recs:     map[string]*Record{},
		live:     map[string]int{},
	}
}

// persistLocked writes rec through the store port (no-op without one).
// Callers hold r.mu; the write happens before the record's new state is
// observable through Get/List, and — because the engine runs the
// OnStage hook synchronously — before the run's next stage executes:
// durable before visible.
func (r *Registry) persistLocked(rec *Record) error {
	if r.st == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return r.st.Save(store.KindPipelines, rec.ID, payload)
}

// Submit validates spec, pins the dataset ref, persists the new run,
// and enqueues its stages. The returned record is the run's initial
// snapshot. Admission rejections are serve *RetryError values (429/503
// semantics); quota exhaustion wraps tenant.ErrQuota.
func (r *Registry) Submit(spec Spec) (*Record, error) {
	ten, err := tenant.Normalize(spec.Tenant)
	if err != nil {
		return nil, err
	}
	spec.Tenant = ten
	spec, err = spec.withDefaults()
	if err != nil {
		return nil, err
	}
	base, meta, ok := r.datasets.ResolveAs(ten, spec.DatasetRef)
	if !ok {
		return nil, fmt.Errorf("pipeline: no dataset %q resident for tenant %q", spec.DatasetRef, ten)
	}
	_ = meta

	r.mu.Lock()
	if max := r.quotas(ten).MaxPipelines; max > 0 && r.live[ten] >= max {
		r.mu.Unlock()
		return nil, fmt.Errorf("pipeline: tenant %q at max_pipelines %d: %w", ten, max, tenant.ErrQuota)
	}
	r.seq++
	rec := &Record{
		ID:     fmt.Sprintf("pl-%06d", r.seq),
		Tenant: ten,
		Spec:   spec,
		Status: serve.StatusQueued,
		Stages: []StageRecord{},
	}
	if err := r.persistLocked(rec); err != nil {
		r.seq--
		r.mu.Unlock()
		return nil, fmt.Errorf("pipeline: persisting run: %w", err)
	}
	r.recs[rec.ID] = rec
	r.order = append(r.order, rec.ID)
	r.live[ten]++
	r.mu.Unlock()

	if err := r.launch(rec, spec.Stages, newRunState(spec, base, nil)); err != nil {
		r.drop(rec)
		return nil, err
	}
	r.mu.Lock()
	out := rec.clone()
	r.mu.Unlock()
	return out, nil
}

// launch submits the run's (remaining) stages to the engine with hooks
// that mirror every stage result into the durable record.
func (r *Registry) launch(rec *Record, names []string, rs *runState) error {
	id := rec.ID
	_, err := r.engine.SubmitTask(serve.TaskSpec{
		Tenant:      rec.Tenant,
		Name:        id,
		Stages:      rs.stages(names),
		HistorySize: len(names) + 1,
		OnStage: func(res serve.StageResult) {
			r.onStage(id, res)
		},
		OnFinish: func(final serve.TaskStatus) {
			r.onFinish(id, final)
		},
	})
	return err
}

// drop removes a run that failed to launch: the persisted record and
// the live count are rolled back so the rejection is traceless.
func (r *Registry) drop(rec *Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.recs, rec.ID)
	for i, id := range r.order {
		if id == rec.ID {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	if r.live[rec.Tenant] > 0 {
		r.live[rec.Tenant]--
	}
	if r.st != nil {
		_ = r.st.Delete(store.KindPipelines, rec.ID)
	}
}

// onStage appends one completed stage to the durable record. It runs on
// the engine worker between stage completion and the next stage's
// scheduling, so the store always holds every finished stage before its
// successor can run.
func (r *Registry) onStage(id string, res serve.StageResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.recs[id]
	if rec == nil {
		return
	}
	sr := StageRecord{
		Index:         len(rec.Stages),
		Stage:         res.Stage,
		Kind:          res.Kind,
		Status:        res.Status,
		ElapsedMillis: res.ElapsedMillis,
		Error:         res.Error,
	}
	if res.Detail != nil {
		sr.Detail = marshalDetail(res.Detail)
	}
	rec.Status = serve.StatusRunning
	rec.Stages = append(rec.Stages, sr)
	_ = r.persistLocked(rec)
}

// marshalDetail renders a stage's typed detail for the durable record.
// A detail that cannot marshal is recorded as an error object, never
// dropped: a silently missing detail would make the persisted record
// lie about what the stage produced.
func marshalDetail(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(map[string]string{"detail_error": err.Error()})
	}
	return b
}

// onFinish marks the run terminal, frees its live-quota slot, and
// prunes the oldest finished records past the retention bound.
func (r *Registry) onFinish(id string, final serve.TaskStatus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.recs[id]
	if rec == nil {
		return
	}
	if final.Interrupted {
		// Engine shutdown between stages, not a run failure: leave the
		// record non-terminal (its completed stages are already durable)
		// so the next boot's AttachStore resumes it where it stopped.
		rec.Status = serve.StatusRunning
		_ = r.persistLocked(rec)
		if r.live[rec.Tenant] > 0 {
			r.live[rec.Tenant]--
		}
		return
	}
	rec.Status = final.Status
	rec.Error = final.Error
	rec.ElapsedMillis = final.ElapsedMillis
	_ = r.persistLocked(rec)
	if r.live[rec.Tenant] > 0 {
		r.live[rec.Tenant]--
	}
	r.pruneLocked()
}

// pruneLocked forgets the oldest finished records past
// maxFinishedRecords, in both memory and the store.
func (r *Registry) pruneLocked() {
	finished := 0
	for _, id := range r.order {
		if rec := r.recs[id]; rec != nil && terminal(rec.Status) {
			finished++
		}
	}
	for i := 0; finished > maxFinishedRecords && i < len(r.order); {
		rec := r.recs[r.order[i]]
		if rec == nil || !terminal(rec.Status) {
			i++
			continue
		}
		delete(r.recs, rec.ID)
		r.order = append(r.order[:i], r.order[i+1:]...)
		if r.st != nil {
			_ = r.st.Delete(store.KindPipelines, rec.ID)
		}
		finished--
	}
}

func terminal(s serve.Status) bool {
	return s == serve.StatusDone || s == serve.StatusFailed
}

// Get returns run id's record as visible to ten: an operator (empty
// ten) sees every run, a tenant only its own — absent and foreign runs
// are indistinguishable.
func (r *Registry) Get(ten, id string) (*Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.recs[id]
	if rec == nil || (ten != "" && rec.Tenant != ten) {
		return nil, false
	}
	return rec.clone(), true
}

// List returns the runs visible to ten (operator: all), newest first.
func (r *Registry) List(ten string) []*Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := []*Record{}
	for i := len(r.order) - 1; i >= 0; i-- {
		rec := r.recs[r.order[i]]
		if rec == nil || (ten != "" && rec.Tenant != ten) {
			continue
		}
		out = append(out, rec.clone())
	}
	return out
}

// LiveCount reports ten's unfinished runs (the MaxPipelines gauge).
func (r *Registry) LiveCount(ten string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live[ten]
}

// CountsAs reports ten's total and live run counts for the
// responsibility report.
func (r *Registry) CountsAs(ten string) (total, live int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range r.recs {
		if rec.Tenant == ten {
			total++
			if !terminal(rec.Status) {
				live++
			}
		}
	}
	return total, live
}

// ListAs returns ten's runs newest-first (the tenant-scoped List).
func (r *Registry) ListAs(ten string) []*Record { return r.List(ten) }

// AttachStore adopts st as the registry's durability port and restores
// every persisted run: finished records become queryable again, and
// interrupted runs are resumed at their last completed stage — the
// persisted stage results stand, the remaining stages are re-enqueued,
// and the in-memory artifacts are rebuilt by deterministic replay of
// the completed stages' compute. A corrupt record refuses the boot
// (fail loudly, not quietly degraded); a missing dataset fails only the
// runs that need it.
func (r *Registry) AttachStore(st store.Store) error {
	items, err := st.List(store.KindPipelines)
	if err != nil {
		return fmt.Errorf("pipeline: restoring runs: %w", err)
	}
	type resume struct {
		rec       *Record
		remaining []string
		rs        *runState
	}
	var resumes []resume

	r.mu.Lock()
	r.st = st
	for _, it := range items {
		var rec Record
		if err := json.Unmarshal(it.Payload, &rec); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("pipeline: corrupt run record %q: %w", it.ID, err)
		}
		if rec.ID != it.ID {
			r.mu.Unlock()
			return fmt.Errorf("pipeline: run record %q names itself %q", it.ID, rec.ID)
		}
		cp := rec
		r.recs[rec.ID] = &cp
		r.order = append(r.order, rec.ID)
		if n, err := strconv.ParseUint(strings.TrimPrefix(rec.ID, "pl-"), 10, 64); err == nil && n > r.seq {
			r.seq = n
		}
	}
	// order restored by id — ids are monotone, so this is submission
	// order (List renders newest first from it).
	sort.Strings(r.order)
	for _, id := range r.order {
		rec := r.recs[id]
		if terminal(rec.Status) {
			continue
		}
		done := len(rec.Stages)
		names := rec.Spec.Stages
		if done >= len(names) {
			// Every stage finished but the terminal status didn't land
			// before the kill: finalize now.
			rec.Status = serve.StatusDone
			for _, s := range rec.Stages {
				if s.Status == serve.StatusFailed {
					rec.Status = serve.StatusFailed
					rec.Error = s.Error
				}
			}
			_ = r.persistLocked(rec)
			continue
		}
		if done > 0 && rec.Stages[done-1].Status == serve.StatusFailed {
			// The failing stage persisted before the finish marker could:
			// the run is over, record it so.
			rec.Status = serve.StatusFailed
			rec.Error = rec.Stages[done-1].Error
			_ = r.persistLocked(rec)
			continue
		}
		base, _, ok := r.datasets.ResolveAs(rec.Tenant, rec.Spec.DatasetRef)
		if !ok {
			rec.Status = serve.StatusFailed
			rec.Error = fmt.Sprintf("pipeline: dataset %q not resident after restart", rec.Spec.DatasetRef)
			_ = r.persistLocked(rec)
			continue
		}
		rec.Status = serve.StatusRunning
		rec.Resumed++
		_ = r.persistLocked(rec)
		r.live[rec.Tenant]++
		resumes = append(resumes, resume{
			rec:       rec,
			remaining: names[done:],
			rs:        newRunState(rec.Spec, base, names[:done]),
		})
	}
	r.mu.Unlock()

	for _, rs := range resumes {
		if err := r.launch(rs.rec, rs.remaining, rs.rs); err != nil {
			r.mu.Lock()
			rs.rec.Status = serve.StatusFailed
			rs.rec.Error = fmt.Sprintf("pipeline: resume rejected: %v", err)
			_ = r.persistLocked(rs.rec)
			if r.live[rs.rec.Tenant] > 0 {
				r.live[rs.rec.Tenant]--
			}
			r.mu.Unlock()
		}
	}
	return nil
}
