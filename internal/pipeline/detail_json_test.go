package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/core"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/serve"
)

// skewedApprovalCSV builds a dataset whose trained model predicts no
// positives for group B: incomes separate the groups cleanly and B
// approves at 20%, so the audit report carries NaN precision for the
// protected group ("NaN when nothing was predicted positive").
func skewedApprovalCSV() string {
	var sb strings.Builder
	sb.WriteString("income,group,approved\n")
	for i := 0; i < 150; i++ {
		aAp, bAp := 1, 0
		if i%5 == 4 {
			aAp, bAp = 0, 1
		}
		fmt.Fprintf(&sb, "%d,A,%d\n%d,B,%d\n", 40013+13*i, aAp, 30011+11*i, bAp)
	}
	return sb.String()
}

// An audit whose report carries NaN group metrics must still produce
// a marshalable stage detail — this is the exact shape that used to
// drop audit-stage details from pipeline records and empty the
// /v1/audit response body.
func TestAuditDetailWithNaNMetricsMarshals(t *testing.T) {
	f, err := frame.ReadCSVString(skewedApprovalCSV())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serve.RunAudit(context.Background(), &serve.Request{
		Dataset: "credit", Data: f, Seed: 1,
		Spec: core.TrainSpec{Target: "approved", Sensitive: "group", Protected: "B", Reference: "A"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rep.Fairness.Report.Protected.Precision) {
		t.Fatalf("Protected.Precision = %v, want NaN — the regression scenario no longer reproduces; rebuild the dataset",
			rep.Fairness.Report.Protected.Precision)
	}

	detail := &AuditDetail{
		Overall:         rep.Overall,
		DisparateImpact: rep.Fairness.Report.DisparateImpact,
		Accuracy:        rep.Accuracy.Accuracy,
		Report:          rep,
	}
	b := marshalDetail(detail)
	if b == nil {
		t.Fatal("marshalDetail returned nil")
	}
	s := string(b)
	if strings.Contains(s, "detail_error") {
		t.Fatalf("audit detail fell back to the error object: %s", s)
	}
	if !strings.Contains(s, `"Precision":null`) {
		t.Fatalf("NaN precision not encoded as null in stage detail: %s", s)
	}
	if !strings.Contains(s, `"overall"`) {
		t.Fatalf("stage detail missing audit fields: %s", s)
	}
}

// A detail that genuinely cannot marshal is recorded as an error
// object, never dropped from the stage record.
func TestMarshalDetailRecordsFailure(t *testing.T) {
	b := marshalDetail(map[string]any{"ch": make(chan int)})
	var env map[string]string
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("fallback detail is not JSON: %v: %q", err, b)
	}
	if env["detail_error"] == "" {
		t.Fatalf("fallback detail missing detail_error: %q", b)
	}
}
