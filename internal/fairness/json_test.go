package fairness

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// A report with zero predicted positives in the protected group
// carries NaN precision and NaN predictive-parity difference by
// design. It must still encode — non-finite values become null — and
// null must decode back to NaN.
func TestReportJSONNonFinite(t *testing.T) {
	yTrue := []float64{1, 0, 1, 1, 1, 0, 1, 0}
	yPred := []float64{1, 0, 1, 1, 0, 0, 0, 0}
	groups := []string{"A", "A", "A", "A", "B", "B", "B", "B"}
	rep, err := Evaluate(yTrue, yPred, groups, "B", "A")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rep.Protected.Precision) {
		t.Fatalf("Protected.Precision = %v, want NaN (no predicted positives)", rep.Protected.Precision)
	}
	if !math.IsNaN(rep.PredictiveParityDifference) {
		t.Fatalf("PredictiveParityDifference = %v, want NaN", rep.PredictiveParityDifference)
	}

	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report with NaN fields: %v", err)
	}
	s := string(b)
	if !strings.Contains(s, `"Precision":null`) {
		t.Fatalf("NaN precision not encoded as null: %s", s)
	}
	if !strings.Contains(s, `"PredictiveParityDifference":null`) {
		t.Fatalf("NaN parity difference not encoded as null: %s", s)
	}

	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !math.IsNaN(back.Protected.Precision) || !math.IsNaN(back.PredictiveParityDifference) {
		t.Fatalf("null did not decode back to NaN: %+v", back)
	}
	// Finite fields round-trip exactly.
	if back.Reference.Precision != rep.Reference.Precision {
		t.Fatalf("Reference.Precision %v != %v", back.Reference.Precision, rep.Reference.Precision)
	}
	if back.StatisticalParityDifference != rep.StatisticalParityDifference {
		t.Fatalf("StatisticalParityDifference %v != %v",
			back.StatisticalParityDifference, rep.StatisticalParityDifference)
	}
	if back.Protected.N != rep.Protected.N || back.Protected.Group != rep.Protected.Group {
		t.Fatalf("group identity lost: %+v", back.Protected)
	}
}

// +Inf disparate impact (zero reference positive rate) encodes as
// null too: JSON has no Inf literal, and the wire contract is
// "non-finite means undefined".
func TestReportJSONInfDisparateImpact(t *testing.T) {
	yTrue := []float64{1, 1, 0, 0}
	yPred := []float64{0, 0, 1, 1}
	groups := []string{"ref", "ref", "prot", "prot"}
	rep, err := Evaluate(yTrue, yPred, groups, "prot", "ref")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rep.DisparateImpact, 1) {
		t.Fatalf("DisparateImpact = %v, want +Inf", rep.DisparateImpact)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report with +Inf DI: %v", err)
	}
	if !strings.Contains(string(b), `"DisparateImpact":null`) {
		t.Fatalf("+Inf DI not encoded as null: %s", b)
	}
}

// A fully finite report round-trips value-exact through JSON.
func TestReportJSONFiniteRoundTrip(t *testing.T) {
	yTrue := []float64{1, 0, 1, 0, 1, 0, 1, 1}
	yPred := []float64{1, 0, 1, 1, 1, 0, 0, 1}
	groups := []string{"A", "A", "A", "A", "B", "B", "B", "B"}
	rep, err := Evaluate(yTrue, yPred, groups, "B", "A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != rep {
		t.Fatalf("finite report changed across JSON round-trip:\n got %+v\nwant %+v", back, rep)
	}
}
