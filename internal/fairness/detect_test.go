package fairness

import (
	"testing"

	"github.com/responsible-data-science/rds/internal/ml"
	"github.com/responsible-data-science/rds/internal/rng"
	"github.com/responsible-data-science/rds/internal/synth"
)

func TestDetectProxiesRanksPlantedProxy(t *testing.T) {
	f, err := synth.Credit(synth.CreditConfig{N: 6000, ProxyStrength: 0.9, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ml.FromFrame(f, "approved", "group")
	if err != nil {
		t.Fatal(err)
	}
	groups := f.MustCol("group").Strings()
	scores, err := DetectProxies(ds, groups, "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != ds.D() {
		t.Fatalf("scores = %d, features = %d", len(scores), ds.D())
	}
	// The top proxies must be neighborhood dummies (the planted redline).
	topIsNeighborhood := false
	for _, s := range scores[:3] {
		if len(s.Feature) >= 12 && s.Feature[:12] == "neighborhood" {
			topIsNeighborhood = true
		}
	}
	if !topIsNeighborhood {
		t.Fatalf("top-3 proxies %v do not include neighborhood", []string{scores[0].Feature, scores[1].Feature, scores[2].Feature})
	}
	// debt_ratio is independent of group: must score near the bottom.
	for i, s := range scores {
		if s.Feature == "debt_ratio" && i < len(scores)/2 {
			t.Fatalf("independent feature debt_ratio ranked %d with assoc %v", i, s.Association)
		}
	}
}

func TestDetectProxiesErrors(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1}}, Y: []float64{0}, Features: []string{"x"}}
	if _, err := DetectProxies(d, []string{"a"}, "a"); err == nil {
		t.Fatal("tiny dataset accepted")
	}
	big := &ml.Dataset{Features: []string{"x"}}
	for i := 0; i < 20; i++ {
		big.X = append(big.X, []float64{float64(i)})
		big.Y = append(big.Y, 0)
	}
	groups := make([]string, 20)
	for i := range groups {
		groups[i] = "a"
	}
	if _, err := DetectProxies(big, groups, "notpresent"); err == nil {
		t.Fatal("absent protected group accepted")
	}
	if _, err := DetectProxies(big, groups[:5], "a"); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSituationTestingFindsPlantedDiscrimination(t *testing.T) {
	// Two identical sub-populations; protected members with the same
	// features get rejected while reference members are accepted.
	src := rng.New(19)
	d := &ml.Dataset{Features: []string{"x1", "x2"}}
	var groups []string
	var pred []float64
	for i := 0; i < 300; i++ {
		x1 := src.Normal(0, 1)
		x2 := src.Normal(0, 1)
		d.X = append(d.X, []float64{x1, x2})
		d.Y = append(d.Y, 0)
		if i%2 == 0 {
			groups = append(groups, "B")
			pred = append(pred, 0) // protected always rejected
		} else {
			groups = append(groups, "A")
			pred = append(pred, 1) // reference always accepted
		}
	}
	results, err := SituationTesting(d, pred, groups, "B", "A", 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Every audited protected member should be flagged with diff 1.
	if len(results) != 150 {
		t.Fatalf("flagged %d of 150 discriminated individuals", len(results))
	}
	if results[0].Diff != 1 {
		t.Fatalf("top diff = %v", results[0].Diff)
	}
}

func TestSituationTestingCleanDecisions(t *testing.T) {
	// Decisions depend only on x (threshold rule), same for both groups:
	// no individual should be flagged at a high threshold.
	src := rng.New(23)
	d := &ml.Dataset{Features: []string{"x"}}
	var groups []string
	var pred []float64
	for i := 0; i < 400; i++ {
		x := src.Normal(0, 1)
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 0)
		g := "A"
		if i%2 == 0 {
			g = "B"
		}
		groups = append(groups, g)
		if x > 0 {
			pred = append(pred, 1)
		} else {
			pred = append(pred, 0)
		}
	}
	results, err := SituationTesting(d, pred, groups, "B", "A", 7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// A handful of boundary cases may trip; the bulk must be clean.
	if len(results) > 10 {
		t.Fatalf("%d false positives on clean decisions", len(results))
	}
}

func TestSituationTestingErrors(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1}, {2}}, Y: []float64{0, 0}, Features: []string{"x"}}
	groups := []string{"B", "A"}
	pred := []float64{0, 1}
	if _, err := SituationTesting(d, pred, groups, "B", "A", 5, 0.5); err == nil {
		t.Fatal("infeasible k accepted")
	}
	if _, err := SituationTesting(d, pred, groups, "B", "A", 1, 2); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if _, err := SituationTesting(d, pred[:1], groups, "B", "A", 1, 0.5); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
