// Package fairness implements FACT Q1: "data science without prejudice —
// how to avoid unfair conclusions even if they are true?"
//
// It provides three layers:
//
//   - Measurement: group fairness metrics (statistical parity, disparate
//     impact, equal opportunity, equalized odds, predictive parity,
//     per-group calibration) and individual-fairness consistency.
//   - Detection: proxy/redlining discovery (features that encode the
//     sensitive attribute even after it is dropped — the paper's warning
//     that "even if sensitive attributes are omitted, members of certain
//     groups may still be systematically rejected") and situation testing.
//   - Mitigation: reweighing and massaging (pre-processing), disparate
//     impact repair (feature transformation), and reject-option /
//     per-group threshold optimization (post-processing).
//
// Conventions: the protected group and reference group are identified by
// their string labels; predictions and labels are 0/1 with 1 the
// favourable outcome (e.g. loan approved).
package fairness

import (
	"fmt"
	"math"

	"github.com/responsible-data-science/rds/internal/exec"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/ml"
)

// GroupStats summarizes outcomes within one group.
type GroupStats struct {
	Group        string
	N            int
	BaseRate     float64 // P(y=1), from true labels
	PositiveRate float64 // P(yhat=1)
	TPR          float64 // recall within the group
	FPR          float64
	Precision    float64
}

// Report compares a protected group against a reference group on the
// standard group-fairness metrics.
type Report struct {
	Protected GroupStats
	Reference GroupStats

	// StatisticalParityDifference is P(yhat=1|protected) - P(yhat=1|reference).
	// 0 is parity; negative values disadvantage the protected group.
	StatisticalParityDifference float64
	// DisparateImpact is the ratio P(yhat=1|protected) / P(yhat=1|reference).
	// The EEOC "four-fifths rule" flags values below 0.8.
	DisparateImpact float64
	// EqualOpportunityDifference is TPR(protected) - TPR(reference).
	EqualOpportunityDifference float64
	// EqualizedOddsDifference is max(|dTPR|, |dFPR|).
	EqualizedOddsDifference float64
	// PredictiveParityDifference is precision(protected) - precision(reference).
	PredictiveParityDifference float64
}

// FourFifths reports whether the disparate-impact ratio passes the
// four-fifths rule.
func (r Report) FourFifths() bool { return r.DisparateImpact >= 0.8 }

// Evaluate computes the group-fairness report for hard predictions yPred
// against true labels yTrue, with groups naming each row's group
// membership. Labels and predictions must be 0/1. It routes through the
// sharded execution engine at the default shard count; see
// EvaluateSharded for the parallelism contract.
func Evaluate(yTrue, yPred []float64, groups []string, protected, reference string) (Report, error) {
	return EvaluateSharded(yTrue, yPred, groups, protected, reference, 0)
}

// EvaluateSharded is Evaluate on an explicit shard count (0 selects
// runtime.GOMAXPROCS). The group tallies are integer outcome counts
// merged in deterministic chunk order by internal/exec, so the report
// is bit-for-bit identical at every shard count — parallelism changes
// wall-clock time, never the metrics.
func EvaluateSharded(yTrue, yPred []float64, groups []string, protected, reference string, shards int) (Report, error) {
	if len(yTrue) != len(yPred) || len(yTrue) != len(groups) {
		return Report{}, fmt.Errorf("fairness: length mismatch: %d labels, %d predictions, %d groups",
			len(yTrue), len(yPred), len(groups))
	}
	kernel := exec.NewOutcomes(yTrue, yPred, groups, protected, reference)
	return reportFromKernel(kernel, yTrue, yPred, func(i int) string { return groups[i] }, protected, reference, shards)
}

// EvaluateSeries is Evaluate keyed on the group column itself instead
// of pre-rendered strings: dictionary-encoded columns tally by int32
// code — no string hash per row — and the report is bit-identical to
// the string-keyed path (property-tested).
func EvaluateSeries(yTrue, yPred []float64, groups *frame.Series, protected, reference string) (Report, error) {
	return EvaluateSeriesSharded(yTrue, yPred, groups, protected, reference, 0)
}

// EvaluateSeriesSharded is EvaluateSeries on an explicit shard count;
// see EvaluateSharded for the parallelism contract.
func EvaluateSeriesSharded(yTrue, yPred []float64, groups *frame.Series, protected, reference string, shards int) (Report, error) {
	if len(yTrue) != len(yPred) || len(yTrue) != groups.Len() {
		return Report{}, fmt.Errorf("fairness: length mismatch: %d labels, %d predictions, %d groups",
			len(yTrue), len(yPred), groups.Len())
	}
	kernel := exec.NewOutcomesSeries(yTrue, yPred, groups, protected, reference)
	return reportFromKernel(kernel, yTrue, yPred, groups.Str, protected, reference, shards)
}

// reportFromKernel runs an outcomes kernel and derives the two-group
// report — the shared tail of the string-keyed and column-keyed
// evaluations. groupAt names row i's group for error messages only.
func reportFromKernel(kernel exec.Kernel, yTrue, yPred []float64, groupAt func(int) string, protected, reference string, shards int) (Report, error) {
	st, err := exec.RunOne(len(yTrue), exec.Options{Shards: shards}, kernel)
	if err != nil {
		return Report{}, fmt.Errorf("fairness: %w", err)
	}
	out := st.(*exec.Outcomes)
	if i := out.ErrRow; i >= 0 {
		return Report{}, fmt.Errorf("fairness: group %q: non-binary label/prediction at row %d: %v/%v",
			groupAt(i), i, yTrue[i], yPred[i])
	}
	prot, err := groupStats(out, protected)
	if err != nil {
		return Report{}, err
	}
	ref, err := groupStats(out, reference)
	if err != nil {
		return Report{}, err
	}
	r := Report{Protected: prot, Reference: ref}
	r.StatisticalParityDifference = prot.PositiveRate - ref.PositiveRate
	if ref.PositiveRate > 0 {
		r.DisparateImpact = prot.PositiveRate / ref.PositiveRate
	} else if prot.PositiveRate == 0 {
		r.DisparateImpact = 1 // nobody gets the favourable outcome anywhere
	} else {
		r.DisparateImpact = math.Inf(1)
	}
	r.EqualOpportunityDifference = prot.TPR - ref.TPR
	r.EqualizedOddsDifference = math.Max(math.Abs(prot.TPR-ref.TPR), math.Abs(prot.FPR-ref.FPR))
	r.PredictiveParityDifference = prot.Precision - ref.Precision
	return r, nil
}

// groupStats derives one group's rates from its merged outcome counts.
// Every rate is computed from exact integer tallies through the same
// ml.ConfusionMatrix formulas a sequential pass uses, so the result is
// independent of how the rows were sharded.
func groupStats(out *exec.Outcomes, name string) (GroupStats, error) {
	c := out.Counts[name]
	if c == nil || c.N == 0 {
		return GroupStats{}, fmt.Errorf("fairness: group %q has no rows", name)
	}
	cm := ml.ConfusionMatrix{
		TP: float64(c.TP), FP: float64(c.FP),
		TN: float64(c.TN), FN: float64(c.FN),
	}
	return GroupStats{
		Group:        name,
		N:            int(c.N),
		BaseRate:     float64(c.TP+c.FN) / float64(c.N),
		PositiveRate: cm.PositiveRate(),
		TPR:          cm.Recall(),
		FPR:          cm.FalsePositiveRate(),
		Precision:    cm.Precision(),
	}, nil
}

// CalibrationGap returns the absolute difference in expected calibration
// error between the two groups, given probabilistic predictions. Per-group
// calibration is the fairness notion under which a score means the same
// thing regardless of group membership.
func CalibrationGap(yTrue, probs []float64, groups []string, protected, reference string, bins int) (float64, error) {
	if len(yTrue) != len(probs) || len(yTrue) != len(groups) {
		return 0, fmt.Errorf("fairness: CalibrationGap length mismatch")
	}
	ece := func(name string) (float64, error) {
		var gt, gp []float64
		for i, g := range groups {
			if g == name {
				gt = append(gt, yTrue[i])
				gp = append(gp, probs[i])
			}
		}
		if len(gt) == 0 {
			return 0, fmt.Errorf("fairness: group %q has no rows", name)
		}
		return ml.ExpectedCalibrationError(gt, gp, bins)
	}
	a, err := ece(protected)
	if err != nil {
		return 0, err
	}
	b, err := ece(reference)
	if err != nil {
		return 0, err
	}
	return math.Abs(a - b), nil
}

// Consistency measures individual fairness as 1 - mean |yhat_i - mean
// yhat of the k nearest neighbours of i| over the feature space (Zemel et
// al.'s consistency score). 1 means identical treatment of similar
// individuals. The neighbour search excludes the point itself.
func Consistency(d *ml.Dataset, yPred []float64, k int) (float64, error) {
	if len(yPred) != d.N() {
		return 0, fmt.Errorf("fairness: Consistency needs one prediction per row")
	}
	if k <= 0 || k >= d.N() {
		return 0, fmt.Errorf("fairness: Consistency k=%d out of range [1,%d)", k, d.N())
	}
	// Reuse KNN with k+1 neighbours (the nearest is the point itself).
	knn, err := ml.TrainKNN(d, k+1)
	if err != nil {
		return 0, err
	}
	var total float64
	for i, x := range d.X {
		nb := knn.Neighbors(x)
		var sum float64
		count := 0
		for _, j := range nb {
			if j == i {
				continue
			}
			sum += yPred[j]
			count++
			if count == k {
				break
			}
		}
		total += math.Abs(yPred[i] - sum/float64(count))
	}
	return 1 - total/float64(d.N()), nil
}
