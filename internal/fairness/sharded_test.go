package fairness

import (
	"fmt"
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/ml"
	"github.com/responsible-data-science/rds/internal/rng"
)

// referenceEvaluate is the pre-sharding sequential implementation,
// kept verbatim as the oracle: filter each group's rows in order, run
// them through ml.Confusion, and derive the rates. EvaluateSharded
// must reproduce it bit for bit at every shard count.
func referenceEvaluate(yTrue, yPred []float64, groups []string, protected, reference string) (Report, error) {
	gs := func(name string) (GroupStats, error) {
		var gt, gp []float64
		for i, g := range groups {
			if g != name {
				continue
			}
			gt = append(gt, yTrue[i])
			gp = append(gp, yPred[i])
		}
		if len(gt) == 0 {
			return GroupStats{}, fmt.Errorf("group %q has no rows", name)
		}
		cm, err := ml.Confusion(gt, gp)
		if err != nil {
			return GroupStats{}, err
		}
		var base float64
		for _, y := range gt {
			base += y
		}
		return GroupStats{
			Group: name, N: len(gt), BaseRate: base / float64(len(gt)),
			PositiveRate: cm.PositiveRate(), TPR: cm.Recall(),
			FPR: cm.FalsePositiveRate(), Precision: cm.Precision(),
		}, nil
	}
	prot, err := gs(protected)
	if err != nil {
		return Report{}, err
	}
	ref, err := gs(reference)
	if err != nil {
		return Report{}, err
	}
	r := Report{Protected: prot, Reference: ref}
	r.StatisticalParityDifference = prot.PositiveRate - ref.PositiveRate
	if ref.PositiveRate > 0 {
		r.DisparateImpact = prot.PositiveRate / ref.PositiveRate
	} else if prot.PositiveRate == 0 {
		r.DisparateImpact = 1
	} else {
		r.DisparateImpact = math.Inf(1)
	}
	r.EqualOpportunityDifference = prot.TPR - ref.TPR
	r.EqualizedOddsDifference = math.Max(math.Abs(prot.TPR-ref.TPR), math.Abs(prot.FPR-ref.FPR))
	r.PredictiveParityDifference = prot.Precision - ref.Precision
	return r, nil
}

// eqBits compares floats bitwise, treating all NaN payloads as equal.
func eqBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func eqGroupStats(a, b GroupStats) bool {
	return a.Group == b.Group && a.N == b.N &&
		eqBits(a.BaseRate, b.BaseRate) && eqBits(a.PositiveRate, b.PositiveRate) &&
		eqBits(a.TPR, b.TPR) && eqBits(a.FPR, b.FPR) && eqBits(a.Precision, b.Precision)
}

func eqReport(a, b Report) bool {
	return eqGroupStats(a.Protected, b.Protected) && eqGroupStats(a.Reference, b.Reference) &&
		eqBits(a.StatisticalParityDifference, b.StatisticalParityDifference) &&
		eqBits(a.DisparateImpact, b.DisparateImpact) &&
		eqBits(a.EqualOpportunityDifference, b.EqualOpportunityDifference) &&
		eqBits(a.EqualizedOddsDifference, b.EqualizedOddsDifference) &&
		eqBits(a.PredictiveParityDifference, b.PredictiveParityDifference)
}

// randomCase draws one synthetic evaluation input. Group shares and
// rates vary per seed so degenerate groups (all-positive, all-negative)
// appear across the sweep.
func randomCase(n int, seed uint64) (yTrue, yPred []float64, groups []string) {
	src := rng.New(seed)
	yTrue = make([]float64, n)
	yPred = make([]float64, n)
	groups = make([]string, n)
	names := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		groups[i] = names[int(src.Uint64()%3)]
		if src.Bernoulli(0.4) {
			yTrue[i] = 1
		}
		if src.Bernoulli(0.5) {
			yPred[i] = 1
		}
	}
	// Pin at least one row per evaluated group so the oracle never errors.
	if n >= 2 {
		groups[0], groups[n-1] = "A", "B"
	}
	return
}

// TestEvaluateShardInvariance is the merge-correctness property test
// for every fairness metric: for random populations of many sizes —
// including single-row and fewer-rows-than-shards (empty-shard) cases —
// the sharded evaluation at 1 shard, at many shards, and the sequential
// reference implementation all agree bit for bit.
func TestEvaluateShardInvariance(t *testing.T) {
	for _, n := range []int{2, 3, 17, 100, 1000, 8192, 8193} {
		for seed := uint64(1); seed <= 5; seed++ {
			yTrue, yPred, groups := randomCase(n, seed*97+uint64(n))
			want, err := referenceEvaluate(yTrue, yPred, groups, "B", "A")
			if err != nil {
				t.Fatalf("n=%d seed=%d: reference: %v", n, seed, err)
			}
			for _, shards := range []int{1, 2, 4, 16, 64} {
				got, err := EvaluateSharded(yTrue, yPred, groups, "B", "A", shards)
				if err != nil {
					t.Fatalf("n=%d seed=%d shards=%d: %v", n, seed, shards, err)
				}
				if !eqReport(got, want) {
					t.Errorf("n=%d seed=%d shards=%d: sharded report diverged from sequential:\n got %+v\nwant %+v",
						n, seed, shards, got, want)
				}
			}
		}
	}
}

// TestEvaluateShardedEdgeCases covers the degenerate shard layouts the
// planner must keep exact: one-row inputs and error paths.
func TestEvaluateShardedEdgeCases(t *testing.T) {
	// A single row can only populate one group; the other must error
	// identically at every shard count.
	for _, shards := range []int{1, 8} {
		_, err := EvaluateSharded([]float64{1}, []float64{1}, []string{"A"}, "B", "A", shards)
		if err == nil {
			t.Fatalf("shards=%d: single-row missing group should error", shards)
		}
	}
	// Non-binary labels are rejected, and only when they sit in an
	// evaluated group.
	yTrue := []float64{1, 2, 0}
	yPred := []float64{1, 1, 0}
	groups := []string{"A", "C", "B"}
	for _, shards := range []int{1, 4} {
		if _, err := EvaluateSharded(yTrue, yPred, groups, "B", "A", shards); err != nil {
			t.Errorf("shards=%d: invalid row in unevaluated group C should be skipped: %v", shards, err)
		}
		if _, err := EvaluateSharded(yTrue, yPred, groups, "C", "A", shards); err == nil {
			t.Errorf("shards=%d: invalid row in evaluated group C should error", shards)
		}
	}
}

// TestEvaluateAllShardInvariance checks the multigroup report the same
// way: one sharded pass must match itself at every shard count, and
// match the per-group sequential oracle.
func TestEvaluateAllShardInvariance(t *testing.T) {
	yTrue, yPred, groups := randomCase(5000, 12345)
	base, err := EvaluateAll(yTrue, yPred, groups)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range base.Groups {
		want, err := referenceEvaluate(yTrue, yPred, groups, g.Group, g.Group)
		if err != nil {
			t.Fatal(err)
		}
		if !eqGroupStats(g, want.Protected) {
			t.Errorf("group %q: %+v vs sequential %+v", g.Group, g, want.Protected)
		}
	}
}
