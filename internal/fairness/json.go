// JSON encoding for fairness reports. Zero-denominator metrics are
// deliberately NaN in memory ("NaN when nothing was predicted
// positive" — see internal/ml), but encoding/json refuses non-finite
// floats, so a tag-free Report made a whole FACTReport unserializable
// the moment one group had zero predicted positives. These marshalers
// keep the in-memory semantics and encode non-finite values as null
// (JSON has no NaN/Inf literal); null decodes back to NaN. The wire
// keys are the Go field names, byte-identical to the tag-free
// encoding for finite reports.

package fairness

import (
	"bytes"
	"encoding/json"
	"math"
)

// nanFloat is a float64 whose JSON encoding survives non-finite
// values: NaN and ±Inf encode as null, and null decodes as NaN.
type nanFloat float64

func (f nanFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func (f *nanFloat) UnmarshalJSON(b []byte) error {
	if bytes.Equal(bytes.TrimSpace(b), []byte("null")) {
		*f = nanFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = nanFloat(v)
	return nil
}

// groupStatsWire mirrors GroupStats field for field so the key names
// and order match the struct's natural encoding.
type groupStatsWire struct {
	Group        string
	N            int
	BaseRate     nanFloat
	PositiveRate nanFloat
	TPR          nanFloat
	FPR          nanFloat
	Precision    nanFloat
}

func (g GroupStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(groupStatsWire{
		Group:        g.Group,
		N:            g.N,
		BaseRate:     nanFloat(g.BaseRate),
		PositiveRate: nanFloat(g.PositiveRate),
		TPR:          nanFloat(g.TPR),
		FPR:          nanFloat(g.FPR),
		Precision:    nanFloat(g.Precision),
	})
}

func (g *GroupStats) UnmarshalJSON(b []byte) error {
	var w groupStatsWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*g = GroupStats{
		Group:        w.Group,
		N:            w.N,
		BaseRate:     float64(w.BaseRate),
		PositiveRate: float64(w.PositiveRate),
		TPR:          float64(w.TPR),
		FPR:          float64(w.FPR),
		Precision:    float64(w.Precision),
	}
	return nil
}

// reportWire mirrors Report; the group stats route through the
// GroupStats marshalers above.
type reportWire struct {
	Protected GroupStats
	Reference GroupStats

	StatisticalParityDifference nanFloat
	DisparateImpact             nanFloat
	EqualOpportunityDifference  nanFloat
	EqualizedOddsDifference     nanFloat
	PredictiveParityDifference  nanFloat
}

func (r Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportWire{
		Protected:                   r.Protected,
		Reference:                   r.Reference,
		StatisticalParityDifference: nanFloat(r.StatisticalParityDifference),
		DisparateImpact:             nanFloat(r.DisparateImpact),
		EqualOpportunityDifference:  nanFloat(r.EqualOpportunityDifference),
		EqualizedOddsDifference:     nanFloat(r.EqualizedOddsDifference),
		PredictiveParityDifference:  nanFloat(r.PredictiveParityDifference),
	})
}

func (r *Report) UnmarshalJSON(b []byte) error {
	var w reportWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Report{
		Protected:                   w.Protected,
		Reference:                   w.Reference,
		StatisticalParityDifference: float64(w.StatisticalParityDifference),
		DisparateImpact:             float64(w.DisparateImpact),
		EqualOpportunityDifference:  float64(w.EqualOpportunityDifference),
		EqualizedOddsDifference:     float64(w.EqualizedOddsDifference),
		PredictiveParityDifference:  float64(w.PredictiveParityDifference),
	}
	return nil
}
