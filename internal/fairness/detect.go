package fairness

import (
	"fmt"
	"math"
	"sort"

	"github.com/responsible-data-science/rds/internal/ml"
	"github.com/responsible-data-science/rds/internal/stats"
)

// ProxyScore ranks how strongly one feature encodes the sensitive
// attribute.
type ProxyScore struct {
	Feature string
	// Association in [0,1]: |point-biserial correlation| between the
	// feature and protected-group membership (Spearman-based, so monotone
	// nonlinear encodings are caught too).
	Association float64
	// PredictivePower is the accuracy above chance of predicting group
	// membership from this single feature with a depth-2 tree, rescaled
	// to [0,1]. High values mean the feature alone re-identifies the
	// group — dropping the sensitive column will not help (redlining).
	PredictivePower float64
}

// DetectProxies ranks every feature of the dataset by how well it encodes
// membership in the protected group. The paper's warning is precise:
// omitting the sensitive attribute does not prevent discrimination when
// proxies remain. groups must align with the dataset rows.
func DetectProxies(d *ml.Dataset, groups []string, protected string) ([]ProxyScore, error) {
	if len(groups) != d.N() {
		return nil, fmt.Errorf("fairness: DetectProxies needs one group label per row")
	}
	if d.N() < 10 {
		return nil, fmt.Errorf("fairness: DetectProxies needs >=10 rows, got %d", d.N())
	}
	member := make([]float64, d.N())
	var anyMember bool
	for i, g := range groups {
		if g == protected {
			member[i] = 1
			anyMember = true
		}
	}
	if !anyMember {
		return nil, fmt.Errorf("fairness: no rows in protected group %q", protected)
	}
	scores := make([]ProxyScore, 0, d.D())
	for j, name := range d.Features {
		col := d.Column(j)
		assoc := math.Abs(stats.SpearmanCorrelation(col, member))
		if math.IsNaN(assoc) {
			assoc = 0 // constant feature
		}
		power, err := singleFeaturePower(col, member)
		if err != nil {
			return nil, fmt.Errorf("fairness: proxy power for %q: %w", name, err)
		}
		scores = append(scores, ProxyScore{Feature: name, Association: assoc, PredictivePower: power})
	}
	sort.SliceStable(scores, func(a, b int) bool {
		sa := math.Max(scores[a].Association, scores[a].PredictivePower)
		sb := math.Max(scores[b].Association, scores[b].PredictivePower)
		return sa > sb
	})
	return scores, nil
}

// singleFeaturePower trains a depth-2 tree from one feature to group
// membership and reports accuracy rescaled above the majority-class rate:
// 0 = no better than always guessing the majority, 1 = perfect.
func singleFeaturePower(col, member []float64) (float64, error) {
	d := &ml.Dataset{Features: []string{"f"}}
	d.X = make([][]float64, len(col))
	for i, v := range col {
		d.X[i] = []float64{v}
	}
	d.Y = member
	var pos float64
	for _, m := range member {
		pos += m
	}
	majority := math.Max(pos, float64(len(member))-pos) / float64(len(member))
	tree, err := ml.TrainTree(d, ml.TreeConfig{MaxDepth: 2, MinLeaf: 5})
	if err != nil {
		return 0, err
	}
	acc, err := ml.Accuracy(member, ml.PredictAll(tree, d.X))
	if err != nil {
		return 0, err
	}
	if majority >= 1 {
		return 0, nil
	}
	power := (acc - majority) / (1 - majority)
	if power < 0 {
		power = 0
	}
	return power, nil
}

// SituationTestResult is the outcome of k-NN situation testing for one
// audited individual.
type SituationTestResult struct {
	Row  int
	Diff float64 // positive-decision rate of reference-group neighbours minus own-group neighbours
}

// SituationTesting implements k-NN situation testing (Luong et al.): for
// each protected-group member with an unfavourable decision, compare the
// decision rate among its k nearest neighbours from the protected group
// versus the k nearest from the reference group. A large positive Diff
// means similar reference-group individuals fare better — individual
// evidence of discrimination. Returns results for audited rows with
// Diff >= threshold, sorted by Diff descending.
func SituationTesting(d *ml.Dataset, yPred []float64, groups []string, protected, reference string, k int, threshold float64) ([]SituationTestResult, error) {
	if len(yPred) != d.N() || len(groups) != d.N() {
		return nil, fmt.Errorf("fairness: SituationTesting length mismatch")
	}
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("fairness: SituationTesting threshold %v out of [0,1]", threshold)
	}
	var protIdx, refIdx []int
	for i, g := range groups {
		switch g {
		case protected:
			protIdx = append(protIdx, i)
		case reference:
			refIdx = append(refIdx, i)
		}
	}
	if k <= 0 || k > len(protIdx)-1 || k > len(refIdx) {
		return nil, fmt.Errorf("fairness: SituationTesting k=%d infeasible (protected=%d reference=%d)", k, len(protIdx), len(refIdx))
	}
	var out []SituationTestResult
	for _, i := range protIdx {
		if yPred[i] != 0 {
			continue // only audit unfavourable decisions
		}
		ownRate := neighborRate(d, yPred, i, protIdx, k, true)
		refRate := neighborRate(d, yPred, i, refIdx, k, false)
		diff := refRate - ownRate
		if diff >= threshold {
			out = append(out, SituationTestResult{Row: i, Diff: diff})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Diff > out[b].Diff })
	return out, nil
}

// neighborRate returns the mean prediction among the k nearest rows to
// row i drawn from candidates (excluding i itself when excludeSelf).
func neighborRate(d *ml.Dataset, yPred []float64, i int, candidates []int, k int, excludeSelf bool) float64 {
	type pair struct {
		dist float64
		idx  int
	}
	ds := make([]pair, 0, len(candidates))
	for _, c := range candidates {
		if excludeSelf && c == i {
			continue
		}
		ds = append(ds, pair{euclidean(d.X[i], d.X[c]), c})
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].dist != ds[b].dist {
			return ds[a].dist < ds[b].dist
		}
		return ds[a].idx < ds[b].idx
	})
	if k > len(ds) {
		k = len(ds)
	}
	var sum float64
	for j := 0; j < k; j++ {
		sum += yPred[ds[j].idx]
	}
	return sum / float64(k)
}

func euclidean(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return math.Sqrt(s)
}
