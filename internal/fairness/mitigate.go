package fairness

import (
	"fmt"
	"math"
	"sort"

	"github.com/responsible-data-science/rds/internal/ml"
)

// Reweigh computes Kamiran-Calders instance weights that make group
// membership statistically independent of the label in the weighted
// training distribution: w(g, y) = P(g)P(y) / P(g, y). Training any
// weight-aware model on the returned weights removes statistical
// dependence between group and label without touching features or labels.
func Reweigh(y []float64, groups []string) ([]float64, error) {
	n := len(y)
	if n == 0 || len(groups) != n {
		return nil, fmt.Errorf("fairness: Reweigh needs equal-length non-empty labels and groups")
	}
	countG := map[string]float64{}
	countY := map[float64]float64{}
	countGY := map[string]float64{}
	for i, g := range groups {
		if y[i] != 0 && y[i] != 1 {
			return nil, fmt.Errorf("fairness: Reweigh labels must be 0/1, row %d is %v", i, y[i])
		}
		countG[g]++
		countY[y[i]]++
		countGY[key(g, y[i])]++
	}
	w := make([]float64, n)
	nf := float64(n)
	for i, g := range groups {
		joint := countGY[key(g, y[i])]
		w[i] = (countG[g] / nf) * (countY[y[i]] / nf) / (joint / nf)
	}
	return w, nil
}

func key(g string, y float64) string {
	if y == 1 {
		return g + "\x1f1"
	}
	return g + "\x1f0"
}

// Massage implements Kamiran-Calders "massaging": it flips the labels of
// the protected group's most promising rejected candidates to 1 and the
// reference group's least promising accepted candidates to 0, in equal
// numbers M, where M is the smallest number of swaps that equalizes
// positive label rates. The ranker scores candidates (higher = more
// deserving of the favourable outcome). Returns the modified labels and M.
func Massage(y []float64, groups []string, scores []float64, protected, reference string) ([]float64, int, error) {
	n := len(y)
	if len(groups) != n || len(scores) != n || n == 0 {
		return nil, 0, fmt.Errorf("fairness: Massage needs equal-length non-empty inputs")
	}
	var protIdx, refIdx []int
	var protPos, refPos float64
	for i, g := range groups {
		if y[i] != 0 && y[i] != 1 {
			return nil, 0, fmt.Errorf("fairness: Massage labels must be 0/1, row %d is %v", i, y[i])
		}
		switch g {
		case protected:
			protIdx = append(protIdx, i)
			protPos += y[i]
		case reference:
			refIdx = append(refIdx, i)
			refPos += y[i]
		}
	}
	if len(protIdx) == 0 || len(refIdx) == 0 {
		return nil, 0, fmt.Errorf("fairness: Massage needs rows in both groups")
	}
	out := append([]float64(nil), y...)
	np, nr := float64(len(protIdx)), float64(len(refIdx))
	if protPos/np >= refPos/nr {
		return out, 0, nil // protected group already at or above parity
	}
	// Promotion candidates: protected rejected, highest score first.
	var promote []int
	for _, i := range protIdx {
		if y[i] == 0 {
			promote = append(promote, i)
		}
	}
	sort.SliceStable(promote, func(a, b int) bool { return scores[promote[a]] > scores[promote[b]] })
	// Demotion candidates: reference accepted, lowest score first.
	var demote []int
	for _, i := range refIdx {
		if y[i] == 1 {
			demote = append(demote, i)
		}
	}
	sort.SliceStable(demote, func(a, b int) bool { return scores[demote[a]] < scores[demote[b]] })

	m := 0
	pPos, rPos := protPos, refPos
	for m < len(promote) && m < len(demote) {
		if pPos/np >= rPos/nr {
			break
		}
		out[promote[m]] = 1
		out[demote[m]] = 0
		pPos++
		rPos--
		m++
	}
	return out, m, nil
}

// RepairDisparateImpact transforms numeric features so that each group's
// marginal feature distribution matches the overall median distribution
// (Feldman et al.'s geometric repair with amount lambda in [0,1]; 1 = full
// repair). It removes proxy information carried by feature *distributions*
// while preserving within-group rank order. Returns a repaired copy.
func RepairDisparateImpact(d *ml.Dataset, groups []string, lambda float64) (*ml.Dataset, error) {
	if len(groups) != d.N() {
		return nil, fmt.Errorf("fairness: RepairDisparateImpact needs one group per row")
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("fairness: repair amount %v out of [0,1]", lambda)
	}
	out := d.Clone()
	byGroup := map[string][]int{}
	for i, g := range groups {
		byGroup[g] = append(byGroup[g], i)
	}
	groupNames := make([]string, 0, len(byGroup))
	for g := range byGroup {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)
	for j := 0; j < d.D(); j++ {
		col := d.Column(j)
		// Per-group sorted values for quantile lookup.
		sorted := map[string][]float64{}
		for g, idx := range byGroup {
			vals := make([]float64, len(idx))
			for k, i := range idx {
				vals[k] = col[i]
			}
			sort.Float64s(vals)
			sorted[g] = vals
		}
		for _, g := range groupNames {
			idx := byGroup[g]
			own := sorted[g]
			for _, i := range idx {
				// Rank of this value within its own group.
				q := quantileOf(own, col[i])
				// Median of all groups' q-quantiles (the "repaired" value).
				target := medianQuantile(sorted, groupNames, q)
				out.X[i][j] = (1-lambda)*col[i] + lambda*target
			}
		}
	}
	return out, nil
}

func quantileOf(sorted []float64, v float64) float64 {
	// Fraction of values strictly below v, midpoint for ties.
	lo := sort.SearchFloat64s(sorted, v)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	if len(sorted) <= 1 {
		return 0.5
	}
	mid := (float64(lo) + float64(hi)) / 2
	return mid / float64(len(sorted))
}

func medianQuantile(sorted map[string][]float64, groups []string, q float64) float64 {
	vals := make([]float64, 0, len(groups))
	for _, g := range groups {
		vals = append(vals, quantileValue(sorted[g], q))
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func quantileValue(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GroupThresholds holds per-group decision thresholds chosen by
// OptimizeThresholds.
type GroupThresholds struct {
	Thresholds map[string]float64
	Default    float64
}

// Apply converts probabilities into decisions using each row's group
// threshold.
func (gt GroupThresholds) Apply(probs []float64, groups []string) []float64 {
	out := make([]float64, len(probs))
	for i, p := range probs {
		th, ok := gt.Thresholds[groups[i]]
		if !ok {
			th = gt.Default
		}
		if p >= th {
			out[i] = 1
		}
	}
	return out
}

// ParityGoal selects which fairness criterion OptimizeThresholds targets.
type ParityGoal int

const (
	// DemographicParity equalizes positive rates across groups.
	DemographicParity ParityGoal = iota
	// EqualOpportunity equalizes true-positive rates across groups.
	EqualOpportunity
)

// OptimizeThresholds searches per-group thresholds so that the protected
// group's rate (positive rate or TPR, per goal) matches the reference
// group's rate under the reference group's default 0.5 threshold. It is
// the classical post-processing mitigation: the model is untouched and
// only the decision rule changes.
func OptimizeThresholds(yTrue, probs []float64, groups []string, protected, reference string, goal ParityGoal) (GroupThresholds, error) {
	n := len(yTrue)
	if len(probs) != n || len(groups) != n || n == 0 {
		return GroupThresholds{}, fmt.Errorf("fairness: OptimizeThresholds needs equal-length non-empty inputs")
	}
	refRate, err := rateAtThreshold(yTrue, probs, groups, reference, 0.5, goal)
	if err != nil {
		return GroupThresholds{}, err
	}
	// Scan candidate thresholds for the protected group.
	best := 0.5
	bestGap := math.Inf(1)
	for t := 0.01; t <= 0.99; t += 0.01 {
		r, err := rateAtThreshold(yTrue, probs, groups, protected, t, goal)
		if err != nil {
			return GroupThresholds{}, err
		}
		if gap := math.Abs(r - refRate); gap < bestGap {
			bestGap = gap
			best = t
		}
	}
	return GroupThresholds{
		Thresholds: map[string]float64{protected: best, reference: 0.5},
		Default:    0.5,
	}, nil
}

func rateAtThreshold(yTrue, probs []float64, groups []string, group string, t float64, goal ParityGoal) (float64, error) {
	var pos, den float64
	for i, g := range groups {
		if g != group {
			continue
		}
		switch goal {
		case DemographicParity:
			den++
			if probs[i] >= t {
				pos++
			}
		case EqualOpportunity:
			if yTrue[i] == 1 {
				den++
				if probs[i] >= t {
					pos++
				}
			}
		}
	}
	if den == 0 {
		return 0, fmt.Errorf("fairness: group %q has no qualifying rows", group)
	}
	return pos / den, nil
}

// RejectOptionClassify implements reject-option post-processing (Kamiran
// et al.): inside the low-confidence band |p - 0.5| <= margin, protected-
// group members receive the favourable outcome and reference-group members
// the unfavourable one; outside the band the model's decision stands.
func RejectOptionClassify(probs []float64, groups []string, protected string, margin float64) ([]float64, error) {
	if len(probs) != len(groups) {
		return nil, fmt.Errorf("fairness: RejectOptionClassify length mismatch")
	}
	if margin < 0 || margin > 0.5 {
		return nil, fmt.Errorf("fairness: margin %v out of [0,0.5]", margin)
	}
	out := make([]float64, len(probs))
	for i, p := range probs {
		inBand := math.Abs(p-0.5) <= margin
		switch {
		case inBand && groups[i] == protected:
			out[i] = 1
		case inBand:
			out[i] = 0
		case p >= 0.5:
			out[i] = 1
		}
	}
	return out, nil
}
