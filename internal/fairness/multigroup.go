package fairness

import (
	"fmt"
	"math"
	"sort"

	"github.com/responsible-data-science/rds/internal/exec"
	"github.com/responsible-data-science/rds/internal/frame"
)

// MultiReport evaluates fairness across an arbitrary number of groups,
// the situation real sensitive attributes (ethnicity, age bands,
// intersections) present. Each group is compared against the most
// favoured group, following the usual regulatory framing.
type MultiReport struct {
	// Groups in descending positive-rate order; Groups[0] is the most
	// favoured (the implicit reference).
	Groups []GroupStats
	// MinDisparateImpact is the worst group's positive rate over the most
	// favoured group's — the number the four-fifths rule applies to when
	// more than two groups exist.
	MinDisparateImpact float64
	// MaxEqualizedOdds is the largest pairwise equalized-odds difference.
	MaxEqualizedOdds float64
}

// EvaluateAll computes fairness statistics for every distinct group in
// groups, at the default shard count. At least two groups must be
// present.
func EvaluateAll(yTrue, yPred []float64, groups []string) (*MultiReport, error) {
	return EvaluateAllSharded(yTrue, yPred, groups, 0)
}

// EvaluateAllSharded is EvaluateAll on an explicit shard count (0
// selects runtime.GOMAXPROCS). A single sharded pass over the rows
// tallies every group at once (internal/exec), so the cost is one scan
// regardless of group count and the result is identical at every shard
// count.
func EvaluateAllSharded(yTrue, yPred []float64, groups []string, shards int) (*MultiReport, error) {
	if len(yTrue) != len(yPred) || len(yTrue) != len(groups) {
		return nil, fmt.Errorf("fairness: EvaluateAll length mismatch")
	}
	kernel := exec.NewOutcomes(yTrue, yPred, groups)
	return multiFromKernel(kernel, yTrue, yPred, func(i int) string { return groups[i] }, shards)
}

// EvaluateAllSeries is EvaluateAll keyed on the group column itself;
// dictionary-encoded columns tally by code (see EvaluateSeries).
func EvaluateAllSeries(yTrue, yPred []float64, groups *frame.Series) (*MultiReport, error) {
	return EvaluateAllSeriesSharded(yTrue, yPred, groups, 0)
}

// EvaluateAllSeriesSharded is EvaluateAllSeries on an explicit shard
// count; see EvaluateAllSharded for the parallelism contract.
func EvaluateAllSeriesSharded(yTrue, yPred []float64, groups *frame.Series, shards int) (*MultiReport, error) {
	if len(yTrue) != len(yPred) || len(yTrue) != groups.Len() {
		return nil, fmt.Errorf("fairness: EvaluateAll length mismatch")
	}
	kernel := exec.NewOutcomesSeries(yTrue, yPred, groups)
	return multiFromKernel(kernel, yTrue, yPred, groups.Str, shards)
}

// multiFromKernel runs an outcomes kernel and derives the multi-group
// report — the shared tail of the string-keyed and column-keyed
// evaluations. groupAt names row i's group for error messages only.
func multiFromKernel(kernel exec.Kernel, yTrue, yPred []float64, groupAt func(int) string, shards int) (*MultiReport, error) {
	st, err := exec.RunOne(len(yTrue), exec.Options{Shards: shards}, kernel)
	if err != nil {
		return nil, fmt.Errorf("fairness: %w", err)
	}
	out := st.(*exec.Outcomes)
	if i := out.ErrRow; i >= 0 {
		return nil, fmt.Errorf("fairness: group %q: non-binary label/prediction at row %d: %v/%v",
			groupAt(i), i, yTrue[i], yPred[i])
	}
	if len(out.Counts) < 2 {
		return nil, fmt.Errorf("fairness: EvaluateAll needs >= 2 groups, got %d", len(out.Counts))
	}
	names := make([]string, 0, len(out.Counts))
	for g := range out.Counts {
		names = append(names, g)
	}
	sort.Strings(names)
	stats := make([]GroupStats, 0, len(names))
	for _, g := range names {
		s, err := groupStats(out, g)
		if err != nil {
			return nil, err
		}
		stats = append(stats, s)
	}
	sort.SliceStable(stats, func(a, b int) bool {
		return stats[a].PositiveRate > stats[b].PositiveRate
	})
	rep := &MultiReport{Groups: stats}
	best := stats[0].PositiveRate
	worst := stats[len(stats)-1].PositiveRate
	if best > 0 {
		rep.MinDisparateImpact = worst / best
	} else {
		rep.MinDisparateImpact = 1
	}
	for i := 0; i < len(stats); i++ {
		for j := i + 1; j < len(stats); j++ {
			eo := pairEqualizedOdds(stats[i], stats[j])
			if eo > rep.MaxEqualizedOdds {
				rep.MaxEqualizedOdds = eo
			}
		}
	}
	return rep, nil
}

func pairEqualizedOdds(a, b GroupStats) float64 {
	dTPR := math.Abs(a.TPR - b.TPR)
	dFPR := math.Abs(a.FPR - b.FPR)
	// NaNs (degenerate groups) should not dominate: treat as 0 so they
	// surface through the group stats instead.
	if math.IsNaN(dTPR) {
		dTPR = 0
	}
	if math.IsNaN(dFPR) {
		dFPR = 0
	}
	return math.Max(dTPR, dFPR)
}

// FourFifths reports whether every group passes the four-fifths rule
// against the most favoured group.
func (m *MultiReport) FourFifths() bool { return m.MinDisparateImpact >= 0.8 }

// WorstGroup returns the group with the lowest positive rate.
func (m *MultiReport) WorstGroup() GroupStats { return m.Groups[len(m.Groups)-1] }
