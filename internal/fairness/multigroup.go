package fairness

import (
	"fmt"
	"math"
	"sort"
)

// MultiReport evaluates fairness across an arbitrary number of groups,
// the situation real sensitive attributes (ethnicity, age bands,
// intersections) present. Each group is compared against the most
// favoured group, following the usual regulatory framing.
type MultiReport struct {
	// Groups in descending positive-rate order; Groups[0] is the most
	// favoured (the implicit reference).
	Groups []GroupStats
	// MinDisparateImpact is the worst group's positive rate over the most
	// favoured group's — the number the four-fifths rule applies to when
	// more than two groups exist.
	MinDisparateImpact float64
	// MaxEqualizedOdds is the largest pairwise equalized-odds difference.
	MaxEqualizedOdds float64
}

// EvaluateAll computes fairness statistics for every distinct group in
// groups. At least two groups must be present.
func EvaluateAll(yTrue, yPred []float64, groups []string) (*MultiReport, error) {
	if len(yTrue) != len(yPred) || len(yTrue) != len(groups) {
		return nil, fmt.Errorf("fairness: EvaluateAll length mismatch")
	}
	distinct := map[string]bool{}
	for _, g := range groups {
		distinct[g] = true
	}
	if len(distinct) < 2 {
		return nil, fmt.Errorf("fairness: EvaluateAll needs >= 2 groups, got %d", len(distinct))
	}
	names := make([]string, 0, len(distinct))
	for g := range distinct {
		names = append(names, g)
	}
	sort.Strings(names)
	stats := make([]GroupStats, 0, len(names))
	for _, g := range names {
		s, err := groupStats(yTrue, yPred, groups, g)
		if err != nil {
			return nil, err
		}
		stats = append(stats, s)
	}
	sort.SliceStable(stats, func(a, b int) bool {
		return stats[a].PositiveRate > stats[b].PositiveRate
	})
	rep := &MultiReport{Groups: stats}
	best := stats[0].PositiveRate
	worst := stats[len(stats)-1].PositiveRate
	if best > 0 {
		rep.MinDisparateImpact = worst / best
	} else {
		rep.MinDisparateImpact = 1
	}
	for i := 0; i < len(stats); i++ {
		for j := i + 1; j < len(stats); j++ {
			eo := pairEqualizedOdds(stats[i], stats[j])
			if eo > rep.MaxEqualizedOdds {
				rep.MaxEqualizedOdds = eo
			}
		}
	}
	return rep, nil
}

func pairEqualizedOdds(a, b GroupStats) float64 {
	dTPR := math.Abs(a.TPR - b.TPR)
	dFPR := math.Abs(a.FPR - b.FPR)
	// NaNs (degenerate groups) should not dominate: treat as 0 so they
	// surface through the group stats instead.
	if math.IsNaN(dTPR) {
		dTPR = 0
	}
	if math.IsNaN(dFPR) {
		dFPR = 0
	}
	return math.Max(dTPR, dFPR)
}

// FourFifths reports whether every group passes the four-fifths rule
// against the most favoured group.
func (m *MultiReport) FourFifths() bool { return m.MinDisparateImpact >= 0.8 }

// WorstGroup returns the group with the lowest positive rate.
func (m *MultiReport) WorstGroup() GroupStats { return m.Groups[len(m.Groups)-1] }
