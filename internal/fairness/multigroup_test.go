package fairness

import (
	"math"
	"testing"
)

func TestEvaluateAllThreeGroups(t *testing.T) {
	var yTrue, yPred []float64
	var groups []string
	add := func(g string, y, p float64, n int) {
		for i := 0; i < n; i++ {
			yTrue = append(yTrue, y)
			yPred = append(yPred, p)
			groups = append(groups, g)
		}
	}
	// Positive rates: a = 0.6, b = 0.5, c = 0.3.
	add("a", 1, 1, 6)
	add("a", 0, 0, 4)
	add("b", 1, 1, 5)
	add("b", 0, 0, 5)
	add("c", 1, 1, 3)
	add("c", 0, 0, 7)
	rep, err := EvaluateAll(yTrue, yPred, groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 3 {
		t.Fatalf("groups = %d", len(rep.Groups))
	}
	if rep.Groups[0].Group != "a" || rep.WorstGroup().Group != "c" {
		t.Fatalf("ordering wrong: %v / %v", rep.Groups[0].Group, rep.WorstGroup().Group)
	}
	if math.Abs(rep.MinDisparateImpact-0.5) > 1e-12 { // 0.3/0.6
		t.Fatalf("min DI = %v, want 0.5", rep.MinDisparateImpact)
	}
	if rep.FourFifths() {
		t.Fatal("0.5 passed four-fifths")
	}
}

func TestEvaluateAllEqualGroups(t *testing.T) {
	yTrue := []float64{1, 0, 1, 0, 1, 0}
	yPred := []float64{1, 0, 1, 0, 1, 0}
	groups := []string{"x", "x", "y", "y", "z", "z"}
	rep, err := EvaluateAll(yTrue, yPred, groups)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FourFifths() {
		t.Fatal("equal groups failed four-fifths")
	}
	if rep.MaxEqualizedOdds > 1e-12 {
		t.Fatalf("max EO = %v", rep.MaxEqualizedOdds)
	}
}

func TestEvaluateAllEqualizedOddsWorstPair(t *testing.T) {
	var yTrue, yPred []float64
	var groups []string
	add := func(g string, y, p float64, n int) {
		for i := 0; i < n; i++ {
			yTrue = append(yTrue, y)
			yPred = append(yPred, p)
			groups = append(groups, g)
		}
	}
	// Group a: TPR 1.0; group b: TPR 0.5; group c: TPR 0.0. All FPR 0.
	add("a", 1, 1, 4)
	add("a", 0, 0, 4)
	add("b", 1, 1, 2)
	add("b", 1, 0, 2)
	add("b", 0, 0, 4)
	add("c", 1, 0, 4)
	add("c", 0, 0, 4)
	rep, err := EvaluateAll(yTrue, yPred, groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MaxEqualizedOdds-1.0) > 1e-12 {
		t.Fatalf("max EO = %v, want 1.0 (a vs c)", rep.MaxEqualizedOdds)
	}
}

func TestEvaluateAllValidation(t *testing.T) {
	if _, err := EvaluateAll([]float64{1}, []float64{1}, []string{"only"}); err == nil {
		t.Fatal("single group accepted")
	}
	if _, err := EvaluateAll([]float64{1}, []float64{1, 0}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
