package fairness

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/ml"
	"github.com/responsible-data-science/rds/internal/rng"
	"github.com/responsible-data-science/rds/internal/synth"
)

// biasedCredit returns a biased credit dataset split into features,
// labels, and group labels.
func biasedCredit(t *testing.T, n int, bias float64, seed uint64) (*ml.Dataset, []string, *frame.Frame) {
	t.Helper()
	f, err := synth.Credit(synth.CreditConfig{N: n, Bias: bias, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ml.FromFrame(f, "approved", "group")
	if err != nil {
		t.Fatal(err)
	}
	groups := f.MustCol("group").Strings()
	return ds, groups, f
}

func TestReweighBalancesGroupLabelDependence(t *testing.T) {
	_, groups, f := biasedCredit(t, 5000, 1.0, 3)
	y := f.MustCol("approved").Floats()
	w, err := Reweigh(y, groups)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted positive rates must be equal across groups.
	rate := func(g string) float64 {
		var pos, tot float64
		for i := range y {
			if groups[i] != g {
				continue
			}
			tot += w[i]
			pos += w[i] * y[i]
		}
		return pos / tot
	}
	if math.Abs(rate("A")-rate("B")) > 1e-9 {
		t.Fatalf("weighted rates differ: A=%v B=%v", rate("A"), rate("B"))
	}
	// Total weight is preserved (sum w = n).
	var total float64
	for _, v := range w {
		total += v
	}
	if math.Abs(total-float64(len(y))) > 1e-6 {
		t.Fatalf("total weight = %v, want %v", total, len(y))
	}
}

// Property: reweighing always equalizes weighted base rates, for any
// random assignment of labels and two groups.
func TestReweighParityProperty(t *testing.T) {
	check := func(labels []bool, groupBits []bool) bool {
		n := len(labels)
		if len(groupBits) < n {
			n = len(groupBits)
		}
		if n < 4 {
			return true
		}
		y := make([]float64, n)
		groups := make([]string, n)
		cells := map[string]bool{}
		for i := 0; i < n; i++ {
			if labels[i] {
				y[i] = 1
			}
			groups[i] = "A"
			if groupBits[i] {
				groups[i] = "B"
			}
			cells[fmt.Sprintf("%s%v", groups[i], labels[i])] = true
		}
		// Reweighing equalizes rates only when every (group,label) cell is
		// populated; with an empty cell the group's weighted rate is pinned
		// at 0 or 1. Skip those degenerate inputs.
		if len(cells) < 4 {
			return true
		}
		w, err := Reweigh(y, groups)
		if err != nil {
			return false
		}
		rate := func(g string) float64 {
			var pos, tot float64
			for i := range y {
				if groups[i] == g {
					tot += w[i]
					pos += w[i] * y[i]
				}
			}
			return pos / tot
		}
		return math.Abs(rate("A")-rate("B")) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReweighErrors(t *testing.T) {
	if _, err := Reweigh(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Reweigh([]float64{2}, []string{"a"}); err == nil {
		t.Fatal("non-binary label accepted")
	}
}

func TestReweighReducesModelBias(t *testing.T) {
	ds, groups, f := biasedCredit(t, 8000, 1.2, 5)
	y := f.MustCol("approved").Floats()

	baseModel, err := ml.TrainLogistic(ds, ml.LogisticConfig{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	basePred := ml.PredictAll(baseModel, ds.X)
	baseRep, err := Evaluate(y, basePred, groups, "B", "A")
	if err != nil {
		t.Fatal(err)
	}

	w, err := Reweigh(y, groups)
	if err != nil {
		t.Fatal(err)
	}
	weighted := ds.Clone()
	weighted.Weights = w
	fairModel, err := ml.TrainLogistic(weighted, ml.LogisticConfig{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	fairPred := ml.PredictAll(fairModel, ds.X)
	fairRep, err := Evaluate(y, fairPred, groups, "B", "A")
	if err != nil {
		t.Fatal(err)
	}
	if fairRep.DisparateImpact <= baseRep.DisparateImpact {
		t.Fatalf("reweighing did not improve DI: %v -> %v", baseRep.DisparateImpact, fairRep.DisparateImpact)
	}
}

func TestMassageEqualizesLabelRates(t *testing.T) {
	_, groups, f := biasedCredit(t, 4000, 1.0, 7)
	y := f.MustCol("approved").Floats()
	// Score = income as a crude ranker.
	scores := f.MustCol("income").Floats()
	out, m, err := Massage(y, groups, scores, "B", "A")
	if err != nil {
		t.Fatal(err)
	}
	if m == 0 {
		t.Fatal("no swaps performed on biased data")
	}
	rate := func(ys []float64, g string) float64 {
		var pos, tot float64
		for i := range ys {
			if groups[i] == g {
				tot++
				pos += ys[i]
			}
		}
		return pos / tot
	}
	before := rate(y, "A") - rate(y, "B")
	after := rate(out, "A") - rate(out, "B")
	if math.Abs(after) > math.Abs(before)/4 {
		t.Fatalf("massaging left gap %v (was %v)", after, before)
	}
	// Total positives preserved (swap semantics).
	var sumBefore, sumAfter float64
	for i := range y {
		sumBefore += y[i]
		sumAfter += out[i]
	}
	if sumBefore != sumAfter {
		t.Fatalf("massaging changed total positives: %v -> %v", sumBefore, sumAfter)
	}
	// Input labels untouched.
	orig := f.MustCol("approved").Floats()
	for i := range y {
		if y[i] != orig[i] {
			t.Fatal("Massage mutated input labels")
		}
	}
}

func TestMassageAlreadyFair(t *testing.T) {
	y := []float64{1, 0, 1, 0}
	groups := []string{"A", "A", "B", "B"}
	scores := []float64{1, 2, 3, 4}
	out, m, err := Massage(y, groups, scores, "B", "A")
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Fatalf("swaps on fair data: %d", m)
	}
	for i := range y {
		if out[i] != y[i] {
			t.Fatal("labels changed on fair data")
		}
	}
}

func TestMassageErrors(t *testing.T) {
	if _, _, err := Massage([]float64{1}, []string{"a"}, []float64{1, 2}, "a", "b"); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := Massage([]float64{1, 0}, []string{"a", "a"}, []float64{1, 2}, "b", "a"); err == nil {
		t.Fatal("missing group accepted")
	}
}

func TestRepairDisparateImpactFullRepair(t *testing.T) {
	// Two groups with shifted feature distributions; full repair must
	// equalize group means (approximately, via quantile alignment).
	src := rng.New(9)
	d := &ml.Dataset{Features: []string{"x"}}
	var groups []string
	for i := 0; i < 1000; i++ {
		g := "A"
		mu := 10.0
		if i%2 == 0 {
			g = "B"
			mu = 20.0
		}
		d.X = append(d.X, []float64{src.Normal(mu, 2)})
		d.Y = append(d.Y, 0)
		groups = append(groups, g)
	}
	repaired, err := RepairDisparateImpact(d, groups, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(ds *ml.Dataset, g string) float64 {
		var sum, n float64
		for i := range ds.X {
			if groups[i] == g {
				sum += ds.X[i][0]
				n++
			}
		}
		return sum / n
	}
	gapBefore := math.Abs(meanOf(d, "A") - meanOf(d, "B"))
	gapAfter := math.Abs(meanOf(repaired, "A") - meanOf(repaired, "B"))
	if gapAfter > gapBefore/20 {
		t.Fatalf("full repair left mean gap %v (was %v)", gapAfter, gapBefore)
	}
	// Rank order within groups preserved.
	var aIdx []int
	for i, g := range groups {
		if g == "A" {
			aIdx = append(aIdx, i)
		}
	}
	for k := 1; k < len(aIdx); k++ {
		i, j := aIdx[k-1], aIdx[k]
		if (d.X[i][0] < d.X[j][0]) != (repaired.X[i][0] < repaired.X[j][0]) {
			// Ties can flip; only flag clear inversions.
			if math.Abs(d.X[i][0]-d.X[j][0]) > 1e-9 && math.Abs(repaired.X[i][0]-repaired.X[j][0]) > 1e-9 {
				t.Fatal("repair broke within-group rank order")
			}
		}
	}
}

func TestRepairLambdaZeroIsIdentity(t *testing.T) {
	d := &ml.Dataset{
		X:        [][]float64{{1}, {2}, {3}, {4}},
		Y:        []float64{0, 0, 0, 0},
		Features: []string{"x"},
	}
	groups := []string{"A", "B", "A", "B"}
	out, err := RepairDisparateImpact(d, groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.X {
		if out.X[i][0] != d.X[i][0] {
			t.Fatal("lambda=0 changed data")
		}
	}
	if _, err := RepairDisparateImpact(d, groups, 2); err == nil {
		t.Fatal("lambda > 1 accepted")
	}
}

func TestOptimizeThresholdsDemographicParity(t *testing.T) {
	ds, groups, f := biasedCredit(t, 6000, 1.0, 11)
	y := f.MustCol("approved").Floats()
	model, err := ml.TrainLogistic(ds, ml.LogisticConfig{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	probs := ml.PredictProbaAll(model, ds.X)

	baseRep, err := Evaluate(y, ml.PredictAll(model, ds.X), groups, "B", "A")
	if err != nil {
		t.Fatal(err)
	}
	th, err := OptimizeThresholds(y, probs, groups, "B", "A", DemographicParity)
	if err != nil {
		t.Fatal(err)
	}
	adjusted := th.Apply(probs, groups)
	adjRep, err := Evaluate(y, adjusted, groups, "B", "A")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adjRep.StatisticalParityDifference) > math.Abs(baseRep.StatisticalParityDifference)/2 {
		t.Fatalf("threshold optimization SPD %v -> %v", baseRep.StatisticalParityDifference, adjRep.StatisticalParityDifference)
	}
	// Protected threshold must be below the default to admit more B's.
	if th.Thresholds["B"] >= 0.5 {
		t.Fatalf("protected threshold = %v, want < 0.5", th.Thresholds["B"])
	}
}

func TestOptimizeThresholdsEqualOpportunity(t *testing.T) {
	ds, groups, f := biasedCredit(t, 6000, 1.0, 13)
	y := f.MustCol("approved").Floats()
	model, err := ml.TrainLogistic(ds, ml.LogisticConfig{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	probs := ml.PredictProbaAll(model, ds.X)
	th, err := OptimizeThresholds(y, probs, groups, "B", "A", EqualOpportunity)
	if err != nil {
		t.Fatal(err)
	}
	adjusted := th.Apply(probs, groups)
	rep, err := Evaluate(y, adjusted, groups, "B", "A")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.EqualOpportunityDifference) > 0.08 {
		t.Fatalf("EOD after optimization = %v", rep.EqualOpportunityDifference)
	}
}

func TestGroupThresholdsApplyDefault(t *testing.T) {
	gt := GroupThresholds{Thresholds: map[string]float64{"B": 0.3}, Default: 0.5}
	out := gt.Apply([]float64{0.4, 0.4}, []string{"B", "C"})
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("Apply = %v", out)
	}
}

func TestRejectOptionClassify(t *testing.T) {
	probs := []float64{0.45, 0.45, 0.9, 0.1, 0.55, 0.55}
	groups := []string{"B", "A", "A", "B", "B", "A"}
	out, err := RejectOptionClassify(probs, groups, "B", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 1, 0, 1, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("row %d = %v, want %v (full %v)", i, out[i], want[i], out)
		}
	}
	if _, err := RejectOptionClassify(probs, groups[:2], "B", 0.1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RejectOptionClassify(probs, groups, "B", 0.9); err == nil {
		t.Fatal("margin > 0.5 accepted")
	}
}
