package fairness

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/ml"
)

// fixedOutcomes builds labels/predictions/groups with exact per-group rates.
//
//	ref:  40 rows, 20 true-pos-label; predictions give TPR 0.9, FPR 0.2
//	prot: 40 rows, 20 true-pos-label; predictions give TPR 0.5, FPR 0.1
func fixedOutcomes() (yTrue, yPred []float64, groups []string) {
	addRows := func(g string, y, p float64, n int) {
		for i := 0; i < n; i++ {
			yTrue = append(yTrue, y)
			yPred = append(yPred, p)
			groups = append(groups, g)
		}
	}
	// Reference: TP=18 FN=2 FP=4 TN=16.
	addRows("ref", 1, 1, 18)
	addRows("ref", 1, 0, 2)
	addRows("ref", 0, 1, 4)
	addRows("ref", 0, 0, 16)
	// Protected: TP=10 FN=10 FP=2 TN=18.
	addRows("prot", 1, 1, 10)
	addRows("prot", 1, 0, 10)
	addRows("prot", 0, 1, 2)
	addRows("prot", 0, 0, 18)
	return
}

func TestEvaluateKnownRates(t *testing.T) {
	yTrue, yPred, groups := fixedOutcomes()
	r, err := Evaluate(yTrue, yPred, groups, "prot", "ref")
	if err != nil {
		t.Fatal(err)
	}
	if r.Reference.N != 40 || r.Protected.N != 40 {
		t.Fatalf("group sizes %d/%d", r.Protected.N, r.Reference.N)
	}
	// Positive rates: ref 22/40=0.55, prot 12/40=0.30.
	if math.Abs(r.Reference.PositiveRate-0.55) > 1e-12 {
		t.Errorf("ref positive rate = %v", r.Reference.PositiveRate)
	}
	if math.Abs(r.Protected.PositiveRate-0.30) > 1e-12 {
		t.Errorf("prot positive rate = %v", r.Protected.PositiveRate)
	}
	if math.Abs(r.StatisticalParityDifference-(-0.25)) > 1e-12 {
		t.Errorf("SPD = %v", r.StatisticalParityDifference)
	}
	if math.Abs(r.DisparateImpact-0.30/0.55) > 1e-12 {
		t.Errorf("DI = %v", r.DisparateImpact)
	}
	if r.FourFifths() {
		t.Error("DI 0.545 should fail four-fifths")
	}
	// TPR: ref 0.9, prot 0.5.
	if math.Abs(r.EqualOpportunityDifference-(-0.4)) > 1e-12 {
		t.Errorf("EOD = %v", r.EqualOpportunityDifference)
	}
	// Equalized odds: max(|0.4|, |0.1-0.2|) = 0.4.
	if math.Abs(r.EqualizedOddsDifference-0.4) > 1e-12 {
		t.Errorf("EOdds = %v", r.EqualizedOddsDifference)
	}
	// Base rates both 0.5.
	if r.Protected.BaseRate != 0.5 || r.Reference.BaseRate != 0.5 {
		t.Error("base rates wrong")
	}
}

func TestEvaluatePerfectParity(t *testing.T) {
	yTrue := []float64{1, 0, 1, 0}
	yPred := []float64{1, 0, 1, 0}
	groups := []string{"a", "a", "b", "b"}
	r, err := Evaluate(yTrue, yPred, groups, "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatisticalParityDifference != 0 || r.DisparateImpact != 1 || r.EqualizedOddsDifference != 0 {
		t.Fatalf("parity metrics nonzero: %+v", r)
	}
	if !r.FourFifths() {
		t.Error("perfect parity should pass four-fifths")
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{1, 0}, []string{"a", "b"}, "a", "b"); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Evaluate([]float64{1, 0}, []float64{1, 0}, []string{"a", "a"}, "missing", "a"); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestEvaluateZeroReferenceRate(t *testing.T) {
	yTrue := []float64{1, 1, 0, 0}
	yPred := []float64{0, 0, 1, 1}
	groups := []string{"ref", "ref", "prot", "prot"}
	r, err := Evaluate(yTrue, yPred, groups, "prot", "ref")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.DisparateImpact, 1) {
		t.Fatalf("DI with zero reference rate = %v, want +Inf", r.DisparateImpact)
	}
	// Both rates zero -> DI defined as 1.
	yPred2 := []float64{0, 0, 0, 0}
	r, err = Evaluate(yTrue, yPred2, groups, "prot", "ref")
	if err != nil {
		t.Fatal(err)
	}
	if r.DisparateImpact != 1 {
		t.Fatalf("DI with both rates zero = %v, want 1", r.DisparateImpact)
	}
}

func TestCalibrationGap(t *testing.T) {
	// Group a perfectly calibrated at 0.5; group b predicted 0.9 but
	// observes 0.5 -> ECE gap 0.4.
	var yTrue, probs []float64
	var groups []string
	for i := 0; i < 100; i++ {
		y := 0.0
		if i%2 == 0 {
			y = 1
		}
		yTrue = append(yTrue, y)
		probs = append(probs, 0.5)
		groups = append(groups, "a")
	}
	for i := 0; i < 100; i++ {
		y := 0.0
		if i%2 == 0 {
			y = 1
		}
		yTrue = append(yTrue, y)
		probs = append(probs, 0.9)
		groups = append(groups, "b")
	}
	gap, err := CalibrationGap(yTrue, probs, groups, "b", "a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-0.4) > 1e-9 {
		t.Fatalf("calibration gap = %v, want 0.4", gap)
	}
}

func TestCalibrationGapErrors(t *testing.T) {
	if _, err := CalibrationGap([]float64{1}, []float64{0.5}, []string{"a"}, "b", "a", 10); err == nil {
		t.Fatal("missing group accepted")
	}
}

func TestConsistencyUniformPredictions(t *testing.T) {
	d := &ml.Dataset{Features: []string{"x"}}
	for i := 0; i < 50; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, 0)
	}
	pred := make([]float64, 50) // all zero: perfectly consistent
	c, err := Consistency(d, pred, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("uniform consistency = %v, want 1", c)
	}
}

func TestConsistencyDetectsArbitraryDecisions(t *testing.T) {
	// Identical individuals with alternating predictions: minimal
	// consistency.
	d := &ml.Dataset{Features: []string{"x"}}
	pred := make([]float64, 40)
	for i := 0; i < 40; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, 0)
		pred[i] = float64(i % 2)
	}
	c, err := Consistency(d, pred, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c > 0.4 {
		t.Fatalf("alternating consistency = %v, want low", c)
	}
}

func TestConsistencyErrors(t *testing.T) {
	d := &ml.Dataset{X: [][]float64{{1}, {2}}, Y: []float64{0, 1}, Features: []string{"x"}}
	if _, err := Consistency(d, []float64{0}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Consistency(d, []float64{0, 1}, 5); err == nil {
		t.Fatal("k >= n accepted")
	}
}
