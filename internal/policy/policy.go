// Package policy implements the governance layer of Sections 3-4 of the
// paper: GDPR-style consent and purpose limitation, data-subject rights
// (access and erasure), retention limits, and a declarative FACT policy
// that states the thresholds a pipeline must meet per dimension. The
// paper's closing question — "How can FACT elements be embedded in our
// requirements?" — is answered operationally: a FACTPolicy is a
// requirements artifact that the core package evaluates mechanically.
package policy

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/responsible-data-science/rds/internal/provenance"
)

// Purpose names a processing purpose (GDPR purpose limitation).
type Purpose string

// Common purposes used by the examples.
const (
	PurposeResearch  Purpose = "research"
	PurposeBilling   Purpose = "billing"
	PurposeMarketing Purpose = "marketing"
	PurposeCare      Purpose = "care"
)

// ConsentLedger tracks, per data subject, which purposes they have
// consented to. It is the source of truth access control consults.
// Safe for concurrent use.
type ConsentLedger struct {
	mu       sync.RWMutex
	consents map[string]map[Purpose]time.Time // subject -> purpose -> granted at
	erased   map[string]time.Time             // subjects whose data must be gone
	clock    func() time.Time
}

// NewConsentLedger creates an empty ledger.
func NewConsentLedger() *ConsentLedger {
	return &ConsentLedger{
		consents: map[string]map[Purpose]time.Time{},
		erased:   map[string]time.Time{},
		clock:    time.Now,
	}
}

// SetClock overrides the timestamp source (tests).
func (l *ConsentLedger) SetClock(clock func() time.Time) { l.clock = clock }

// Grant records consent by subject for purpose.
func (l *ConsentLedger) Grant(subject string, purpose Purpose) error {
	if subject == "" {
		return fmt.Errorf("policy: empty subject")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, gone := l.erased[subject]; gone {
		return fmt.Errorf("policy: subject %q has exercised erasure; re-onboarding required", subject)
	}
	m, ok := l.consents[subject]
	if !ok {
		m = map[Purpose]time.Time{}
		l.consents[subject] = m
	}
	m[purpose] = l.clock()
	return nil
}

// Revoke withdraws consent for one purpose.
func (l *ConsentLedger) Revoke(subject string, purpose Purpose) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.consents[subject], purpose)
}

// HasConsent reports whether the subject currently consents to purpose.
func (l *ConsentLedger) HasConsent(subject string, purpose Purpose) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if _, gone := l.erased[subject]; gone {
		return false
	}
	_, ok := l.consents[subject][purpose]
	return ok
}

// Erase records a data-subject erasure request (GDPR art. 17): all
// consents vanish and the subject is flagged so downstream stores can be
// purged. Idempotent.
func (l *ConsentLedger) Erase(subject string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.consents, subject)
	if _, already := l.erased[subject]; !already {
		l.erased[subject] = l.clock()
	}
}

// Erased returns the subjects with pending erasure obligations.
func (l *ConsentLedger) Erased() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.erased))
	for s := range l.erased {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// AccessReport answers a data-subject access request (GDPR art. 15): the
// purposes the subject has consented to, with timestamps.
func (l *ConsentLedger) AccessReport(subject string) string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "Access report for %s\n", subject)
	if _, gone := l.erased[subject]; gone {
		fmt.Fprintf(&b, "  erasure requested at %s\n", l.erased[subject].UTC().Format(time.RFC3339))
		return b.String()
	}
	m := l.consents[subject]
	if len(m) == 0 {
		b.WriteString("  no active consents\n")
		return b.String()
	}
	purposes := make([]string, 0, len(m))
	for p := range m {
		purposes = append(purposes, string(p))
	}
	sort.Strings(purposes)
	for _, p := range purposes {
		fmt.Fprintf(&b, "  %s: granted %s\n", p, m[Purpose(p)].UTC().Format(time.RFC3339))
	}
	return b.String()
}

// AccessDecision is the outcome of a purpose-based access check.
type AccessDecision struct {
	Allowed []string // subjects whose rows may be processed
	Denied  []string // subjects excluded (no consent or erased)
}

// FilterByConsent partitions subjects by whether they consent to purpose.
// Pipelines call this before touching rows, so purpose limitation is
// enforced structurally rather than by convention.
func (l *ConsentLedger) FilterByConsent(subjects []string, purpose Purpose) AccessDecision {
	var d AccessDecision
	for _, s := range subjects {
		if l.HasConsent(s, purpose) {
			d.Allowed = append(d.Allowed, s)
		} else {
			d.Denied = append(d.Denied, s)
		}
	}
	return d
}

// RetentionPolicy bounds how long records may be kept per purpose.
type RetentionPolicy struct {
	MaxAge map[Purpose]time.Duration
}

// Expired reports whether a record collected at `collected` for `purpose`
// must be deleted as of `now`. Purposes with no rule never expire.
func (r *RetentionPolicy) Expired(purpose Purpose, collected, now time.Time) bool {
	if r == nil || r.MaxAge == nil {
		return false
	}
	maxAge, ok := r.MaxAge[purpose]
	if !ok {
		return false
	}
	return now.Sub(collected) > maxAge
}

// FACTPolicy is the declarative FACT requirements artifact: per-dimension
// thresholds a pipeline must satisfy. Zero values mean "not required".
// The JSON form is the wire format accepted by the audit service
// (cmd/rds-serve); omitted fields keep their "not required" zero value.
type FACTPolicy struct {
	// Fairness.
	MinDisparateImpact float64 `json:"min_disparate_impact,omitempty"`  // e.g. 0.8 (four-fifths rule)
	MaxEqOppDifference float64 `json:"max_eq_opp_difference,omitempty"` // e.g. 0.1
	// Accuracy.
	RequireIntervals    bool   `json:"require_intervals,omitempty"`     // point estimates must carry CIs
	MaxUncorrectedTests int    `json:"max_uncorrected_tests,omitempty"` // hypothesis count above which correction is mandatory
	Correction          string `json:"correction,omitempty"`            // required correction ("holm", "benjamini-hochberg", ...)
	// Confidentiality.
	MaxEpsilon    float64 `json:"max_epsilon,omitempty"`     // total privacy budget ceiling
	MinKAnonymity int     `json:"min_k_anonymity,omitempty"` // published micro-data must satisfy k
	// Transparency.
	RequireLineage       bool    `json:"require_lineage,omitempty"`
	RequireModelCard     bool    `json:"require_model_card,omitempty"`
	MinSurrogateFidelity float64 `json:"min_surrogate_fidelity,omitempty"` // explanation fidelity floor
	// Governance.
	RequiredPurpose Purpose `json:"required_purpose,omitempty"` // purpose rows must be consented to
}

// Hash returns the canonical SHA-256 of the policy's thresholds, with
// every field length-framed in declaration order (via
// provenance.HashStrings, the repo's one definition of that framing).
// Two policies hash equally iff they demand the same requirements,
// which lets the audit service key report caches on (dataset hash,
// policy hash).
func (p *FACTPolicy) Hash() string {
	return provenance.HashStrings(
		strconv.FormatFloat(p.MinDisparateImpact, 'g', -1, 64),
		strconv.FormatFloat(p.MaxEqOppDifference, 'g', -1, 64),
		strconv.FormatBool(p.RequireIntervals),
		strconv.Itoa(p.MaxUncorrectedTests),
		p.Correction,
		strconv.FormatFloat(p.MaxEpsilon, 'g', -1, 64),
		strconv.Itoa(p.MinKAnonymity),
		strconv.FormatBool(p.RequireLineage),
		strconv.FormatBool(p.RequireModelCard),
		strconv.FormatFloat(p.MinSurrogateFidelity, 'g', -1, 64),
		string(p.RequiredPurpose),
	)
}

// Validate sanity-checks threshold ranges.
func (p *FACTPolicy) Validate() error {
	if p.MinDisparateImpact < 0 || p.MinDisparateImpact > 1 {
		return fmt.Errorf("policy: MinDisparateImpact %v out of [0,1]", p.MinDisparateImpact)
	}
	if p.MaxEqOppDifference < 0 || p.MaxEqOppDifference > 1 {
		return fmt.Errorf("policy: MaxEqOppDifference %v out of [0,1]", p.MaxEqOppDifference)
	}
	if p.MaxEpsilon < 0 {
		return fmt.Errorf("policy: MaxEpsilon %v negative", p.MaxEpsilon)
	}
	if p.MinKAnonymity < 0 {
		return fmt.Errorf("policy: MinKAnonymity %d negative", p.MinKAnonymity)
	}
	if p.MinSurrogateFidelity < 0 || p.MinSurrogateFidelity > 1 {
		return fmt.Errorf("policy: MinSurrogateFidelity %v out of [0,1]", p.MinSurrogateFidelity)
	}
	if p.MaxUncorrectedTests < 0 {
		return fmt.Errorf("policy: MaxUncorrectedTests %d negative", p.MaxUncorrectedTests)
	}
	return nil
}

// Grade is a traffic-light compliance verdict.
type Grade int

// Grades, worst to best.
const (
	Red Grade = iota
	Amber
	Green
)

// String renders the grade.
func (g Grade) String() string {
	switch g {
	case Red:
		return "RED"
	case Amber:
		return "AMBER"
	case Green:
		return "GREEN"
	}
	return fmt.Sprintf("Grade(%d)", int(g))
}

// MarshalJSON renders the grade as its traffic-light name ("GREEN"),
// keeping the service's JSON reports readable and stable even if the
// numeric ordering ever changes.
func (g Grade) MarshalJSON() ([]byte, error) {
	return json.Marshal(g.String())
}

// UnmarshalJSON parses a traffic-light name back into a Grade.
func (g *Grade) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch strings.ToUpper(s) {
	case "RED":
		*g = Red
	case "AMBER":
		*g = Amber
	case "GREEN":
		*g = Green
	default:
		return fmt.Errorf("policy: unknown grade %q", s)
	}
	return nil
}

// Finding is one policy-evaluation observation.
type Finding struct {
	Dimension string `json:"dimension"` // "fairness" | "accuracy" | "confidentiality" | "transparency" | "governance"
	Grade     Grade  `json:"grade"`
	Message   string `json:"message"`
}

// WorstGrade folds findings into an overall verdict (Green when empty).
func WorstGrade(findings []Finding) Grade {
	worst := Green
	for _, f := range findings {
		if f.Grade < worst {
			worst = f.Grade
		}
	}
	return worst
}
