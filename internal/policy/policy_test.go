package policy

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestConsentGrantRevoke(t *testing.T) {
	l := NewConsentLedger()
	if err := l.Grant("alice", PurposeResearch); err != nil {
		t.Fatal(err)
	}
	if !l.HasConsent("alice", PurposeResearch) {
		t.Fatal("granted consent not found")
	}
	if l.HasConsent("alice", PurposeMarketing) {
		t.Fatal("unconsented purpose allowed")
	}
	if l.HasConsent("bob", PurposeResearch) {
		t.Fatal("unknown subject has consent")
	}
	l.Revoke("alice", PurposeResearch)
	if l.HasConsent("alice", PurposeResearch) {
		t.Fatal("revoked consent still active")
	}
	if err := l.Grant("", PurposeResearch); err == nil {
		t.Fatal("empty subject accepted")
	}
}

func TestErasure(t *testing.T) {
	l := NewConsentLedger()
	l.Grant("carol", PurposeBilling)
	l.Erase("carol")
	if l.HasConsent("carol", PurposeBilling) {
		t.Fatal("erased subject retains consent")
	}
	if err := l.Grant("carol", PurposeBilling); err == nil {
		t.Fatal("re-grant after erasure accepted silently")
	}
	erased := l.Erased()
	if len(erased) != 1 || erased[0] != "carol" {
		t.Fatalf("erased = %v", erased)
	}
	// Idempotent.
	l.Erase("carol")
	if len(l.Erased()) != 1 {
		t.Fatal("double erase duplicated")
	}
}

func TestAccessReport(t *testing.T) {
	l := NewConsentLedger()
	fixed := time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return fixed })
	l.Grant("dave", PurposeResearch)
	l.Grant("dave", PurposeCare)
	rep := l.AccessReport("dave")
	for _, want := range []string{"dave", "research", "care", "2026-06-01T12:00:00Z"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// Purposes sorted.
	if strings.Index(rep, "care") > strings.Index(rep, "research") {
		t.Fatal("report not sorted")
	}
	if !strings.Contains(l.AccessReport("nobody"), "no active consents") {
		t.Fatal("unknown subject report wrong")
	}
	l.Erase("dave")
	if !strings.Contains(l.AccessReport("dave"), "erasure requested") {
		t.Fatal("erased subject report wrong")
	}
}

func TestFilterByConsent(t *testing.T) {
	l := NewConsentLedger()
	l.Grant("a", PurposeResearch)
	l.Grant("b", PurposeMarketing)
	l.Grant("c", PurposeResearch)
	l.Erase("c")
	d := l.FilterByConsent([]string{"a", "b", "c", "d"}, PurposeResearch)
	if len(d.Allowed) != 1 || d.Allowed[0] != "a" {
		t.Fatalf("allowed = %v", d.Allowed)
	}
	if len(d.Denied) != 3 {
		t.Fatalf("denied = %v", d.Denied)
	}
}

func TestRetention(t *testing.T) {
	r := &RetentionPolicy{MaxAge: map[Purpose]time.Duration{
		PurposeMarketing: 30 * 24 * time.Hour,
	}}
	collected := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	if r.Expired(PurposeMarketing, collected, collected.Add(29*24*time.Hour)) {
		t.Fatal("fresh record expired")
	}
	if !r.Expired(PurposeMarketing, collected, collected.Add(31*24*time.Hour)) {
		t.Fatal("stale record not expired")
	}
	// Unruled purpose never expires.
	if r.Expired(PurposeResearch, collected, collected.Add(10*365*24*time.Hour)) {
		t.Fatal("unruled purpose expired")
	}
	var nilPolicy *RetentionPolicy
	if nilPolicy.Expired(PurposeResearch, collected, collected) {
		t.Fatal("nil policy expired something")
	}
}

func TestFACTPolicyValidate(t *testing.T) {
	good := &FACTPolicy{
		MinDisparateImpact:   0.8,
		MaxEqOppDifference:   0.1,
		MaxEpsilon:           1.0,
		MinKAnonymity:        5,
		MinSurrogateFidelity: 0.85,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FACTPolicy{
		{MinDisparateImpact: 1.5},
		{MaxEqOppDifference: -0.1},
		{MaxEpsilon: -1},
		{MinKAnonymity: -2},
		{MinSurrogateFidelity: 2},
		{MaxUncorrectedTests: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d validated", i)
		}
	}
}

func TestGrades(t *testing.T) {
	if Green.String() != "GREEN" || Amber.String() != "AMBER" || Red.String() != "RED" {
		t.Fatal("grade strings wrong")
	}
	findings := []Finding{
		{Dimension: "fairness", Grade: Green},
		{Dimension: "accuracy", Grade: Amber},
		{Dimension: "privacy", Grade: Green},
	}
	if WorstGrade(findings) != Amber {
		t.Fatal("worst grade wrong")
	}
	findings = append(findings, Finding{Dimension: "transparency", Grade: Red})
	if WorstGrade(findings) != Red {
		t.Fatal("red not dominating")
	}
	if WorstGrade(nil) != Green {
		t.Fatal("empty findings not green")
	}
}

func TestConsentConcurrency(t *testing.T) {
	l := NewConsentLedger()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			l.Grant("x", PurposeResearch)
			l.Revoke("x", PurposeResearch)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		l.HasConsent("x", PurposeResearch)
		l.FilterByConsent([]string{"x"}, PurposeResearch)
	}
	<-done
}

func TestGradeJSONRoundTrip(t *testing.T) {
	for _, g := range []Grade{Red, Amber, Green} {
		b, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + g.String() + `"`; string(b) != want {
			t.Errorf("Marshal(%s) = %s, want %s", g, b, want)
		}
		var back Grade
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != g {
			t.Errorf("round trip %s -> %s", g, back)
		}
	}
	var g Grade
	if err := json.Unmarshal([]byte(`"PURPLE"`), &g); err == nil {
		t.Error("unknown grade must not unmarshal")
	}
}

func TestFindingJSONUsesGradeNames(t *testing.T) {
	b, err := json.Marshal(Finding{Dimension: "fairness", Grade: Amber, Message: "close"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"grade": "AMBER"`) && !strings.Contains(string(b), `"grade":"AMBER"`) {
		t.Errorf("finding JSON should carry the grade name: %s", b)
	}
}

func TestFACTPolicyHash(t *testing.T) {
	base := FACTPolicy{MinDisparateImpact: 0.8, Correction: "holm", RequireLineage: true}
	same := FACTPolicy{MinDisparateImpact: 0.8, Correction: "holm", RequireLineage: true}
	if base.Hash() != same.Hash() {
		t.Error("equal policies must hash equally")
	}
	for name, changed := range map[string]FACTPolicy{
		"threshold":  {MinDisparateImpact: 0.9, Correction: "holm", RequireLineage: true},
		"correction": {MinDisparateImpact: 0.8, Correction: "bonferroni", RequireLineage: true},
		"flag":       {MinDisparateImpact: 0.8, Correction: "holm"},
		"zero":       {},
	} {
		if changed.Hash() == base.Hash() {
			t.Errorf("%s change must change the hash", name)
		}
	}
}
