// Package fsjson implements the store port on the local filesystem as
// a directory of JSON records, with crash-safe writes throughout. It is
// the adapter behind rds-serve's -state-dir flag: monitors, pinned
// baseline profiles, and dataset-registry entries written through it
// survive a hard process kill.
//
// # Layout
//
// The state directory holds a CURRENT pointer file and one generation
// directory at a time:
//
//	<root>/CURRENT                       -> "gen-000001\n"
//	<root>/gen-000001/<kind>/<id>.json   one envelope file per record
//
// Every record file is an envelope {kind, id, sha256, payload}: the
// payload is the canonical JSON document, the sha256 is its checksum.
// A truncated or tampered file fails the checksum (or fails to decode
// at all) and is refused with store.ErrCorrupt naming the file —
// storage is untrusted by design, mirroring provenance.ReadAuditJSON.
//
// # Crash safety
//
// Individual Saves write a temp file in the record's directory, fsync
// it, rename it over the target, and fsync the directory — a reader
// (or a rebooted process) sees the old record or the new one, never a
// half-written file. Snapshot goes further: the full next state is
// written into a fresh generation directory, fsynced, renamed into
// place, and only then does CURRENT flip (itself via temp+fsync+
// rename). A crash anywhere mid-snapshot leaves CURRENT pointing at
// the previous generation with all its files intact; Open garbage-
// collects the unreferenced debris on the next boot.
//
// # Boot semantics
//
// Open of a missing or empty directory is a fresh boot: the first
// generation is initialized. Open of a directory with state refuses to
// start — with an error naming the offending file — when CURRENT is
// missing, empty, or names a generation that does not exist. The
// adapter assumes a single writing process per state directory.
package fsjson

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/responsible-data-science/rds/internal/store"
)

// currentFile is the generation pointer file name.
const currentFile = "CURRENT"

// tmpPrefix marks in-flight temp files and partial generation
// directories; Open removes any leftovers (crash debris).
const tmpPrefix = ".tmp-"

// envelope is the on-disk form of one record.
type envelope struct {
	// Kind and ID identify the record; they must match the file's
	// location (self-describing files survive being copied around).
	Kind string `json:"kind"`
	ID   string `json:"id"`
	// SHA256 is the hex checksum of Payload's exact bytes.
	SHA256 string `json:"sha256"`
	// Payload is the record's canonical JSON document.
	Payload json.RawMessage `json:"payload"`
}

// Store is the filesystem adapter. Safe for concurrent use within one
// process; the state directory must have a single writing process.
type Store struct {
	root string

	mu  sync.Mutex
	gen string // current generation directory name, e.g. "gen-000001"
}

// Open attaches to (or initializes) the state directory at root. A
// missing or empty directory is a fresh boot; a directory with
// unrecognized contents, or with a missing, empty, or dangling CURRENT
// file, refuses to open with an error naming the problem file.
func Open(root string) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("fsjson: state directory path is empty")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("fsjson: creating state dir: %w", err)
	}
	s := &Store{root: root}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("fsjson: reading state dir: %w", err)
	}
	var hasCurrent bool
	var gens, debris, strangers []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == currentFile:
			hasCurrent = true
		case strings.HasPrefix(name, tmpPrefix):
			debris = append(debris, name)
		case e.IsDir() && isGenName(name):
			gens = append(gens, name)
		default:
			strangers = append(strangers, name)
		}
	}
	if len(strangers) > 0 {
		return nil, fmt.Errorf("fsjson: %s does not look like a state dir (unexpected entry %q); refusing to touch it",
			root, strangers[0])
	}
	// Crash debris — temp files and partial generations never flipped
	// into CURRENT — is safe to drop: by construction nothing
	// references it.
	for _, name := range debris {
		if err := os.RemoveAll(filepath.Join(root, name)); err != nil {
			return nil, fmt.Errorf("fsjson: clearing crash debris %s: %w", name, err)
		}
	}
	if !hasCurrent {
		if len(gens) > 0 {
			return nil, fmt.Errorf("fsjson: %s has generation %s but no %s file; state dir is corrupt (a crash during first initialization leaves this — wipe the directory to start fresh)",
				root, gens[0], currentFile)
		}
		// Fresh boot: initialize generation 1, then flip CURRENT.
		s.gen = genName(1)
		if err := os.MkdirAll(filepath.Join(root, s.gen), 0o755); err != nil {
			return nil, fmt.Errorf("fsjson: initializing %s: %w", s.gen, err)
		}
		if err := s.writeCurrent(s.gen); err != nil {
			return nil, err
		}
		return s, nil
	}
	curPath := filepath.Join(root, currentFile)
	raw, err := os.ReadFile(curPath)
	if err != nil {
		return nil, fmt.Errorf("fsjson: reading %s: %w", curPath, err)
	}
	gen := strings.TrimSpace(string(raw))
	if gen == "" {
		return nil, fmt.Errorf("fsjson: %s is empty (truncated write?); refusing to start", curPath)
	}
	if !isGenName(gen) {
		return nil, fmt.Errorf("fsjson: %s names invalid generation %q; refusing to start", curPath, gen)
	}
	if fi, err := os.Stat(filepath.Join(root, gen)); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("fsjson: %s names generation %q which does not exist; refusing to start", curPath, gen)
	}
	s.gen = gen
	// Generations other than CURRENT are leftovers of an interrupted
	// snapshot (either the old state after a completed flip, or a new
	// one that never flipped); the pointer decides, the rest is debris.
	for _, g := range gens {
		if g != gen {
			if err := os.RemoveAll(filepath.Join(root, g)); err != nil {
				return nil, fmt.Errorf("fsjson: clearing stale generation %s: %w", g, err)
			}
		}
	}
	return s, nil
}

// Save upserts one record with a crash-safe temp+fsync+rename write.
func (s *Store) Save(kind store.Kind, id string, payload []byte) error {
	if err := store.CheckKey(kind, id); err != nil {
		return err
	}
	data, err := encodeEnvelope(kind, id, payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.root, s.gen, string(kind))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fsjson: creating %s: %w", dir, err)
	}
	return writeFileAtomic(dir, recordFile(id), data)
}

// Find reads one record, verifying the envelope and checksum; a
// truncated or tampered file answers store.ErrCorrupt naming the file.
func (s *Store) Find(kind store.Kind, id string) ([]byte, bool, error) {
	if err := store.CheckKey(kind, id); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	path := filepath.Join(s.root, s.gen, string(kind), recordFile(id))
	s.mu.Unlock()
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("fsjson: reading %s: %w", path, err)
	}
	payload, err := decodeEnvelope(raw, kind, id, path)
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// Delete removes one record; absent records are a no-op.
func (s *Store) Delete(kind store.Kind, id string) error {
	if err := store.CheckKey(kind, id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.root, s.gen, string(kind), recordFile(id))
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("fsjson: deleting %s: %w", path, err)
	}
	return nil
}

// List reads the kind's records ordered by ID ascending. Any corrupt
// record fails the whole listing — a boot-time restore must refuse to
// start on a bad record, not silently drop it.
func (s *Store) List(kind store.Kind) ([]store.Item, error) {
	if !store.ValidKind(kind) {
		return nil, fmt.Errorf("%w: %q", store.ErrInvalidKind, kind)
	}
	s.mu.Lock()
	dir := filepath.Join(s.root, s.gen, string(kind))
	s.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return []store.Item{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fsjson: reading %s: %w", dir, err)
	}
	var items []store.Item
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("fsjson: reading %s: %w", path, err)
		}
		payload, err := decodeEnvelope(raw, kind, id, path)
		if err != nil {
			return nil, err
		}
		items = append(items, store.Item{ID: id, Payload: payload})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	if items == nil {
		items = []store.Item{}
	}
	return items, nil
}

// Snapshot atomically replaces the store's contents by writing a fresh
// generation and flipping CURRENT. A crash at any point leaves the
// previous generation intact and referenced.
func (s *Store) Snapshot(state map[store.Kind][]store.Item) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := genName(genNumber(s.gen) + 1)
	tmpGen := tmpPrefix + next
	tmpPath := filepath.Join(s.root, tmpGen)
	if err := os.RemoveAll(tmpPath); err != nil {
		return fmt.Errorf("fsjson: clearing %s: %w", tmpPath, err)
	}
	if err := os.MkdirAll(tmpPath, 0o755); err != nil {
		return fmt.Errorf("fsjson: creating %s: %w", tmpPath, err)
	}
	for kind, items := range state {
		dir := filepath.Join(tmpPath, string(kind))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("fsjson: creating %s: %w", dir, err)
		}
		for _, it := range items {
			if err := store.CheckKey(kind, it.ID); err != nil {
				return err
			}
			data, err := encodeEnvelope(kind, it.ID, it.Payload)
			if err != nil {
				return err
			}
			if err := writeFileAtomic(dir, recordFile(it.ID), data); err != nil {
				return err
			}
		}
	}
	// The new generation is complete on disk; make it visible with two
	// atomic renames — directory into place, then the CURRENT flip.
	if err := os.Rename(tmpPath, filepath.Join(s.root, next)); err != nil {
		return fmt.Errorf("fsjson: publishing generation %s: %w", next, err)
	}
	if err := syncDir(s.root); err != nil {
		return err
	}
	if err := s.writeCurrent(next); err != nil {
		return err
	}
	old := s.gen
	s.gen = next
	if err := os.RemoveAll(filepath.Join(s.root, old)); err != nil {
		return fmt.Errorf("fsjson: removing old generation %s: %w", old, err)
	}
	return nil
}

// Close is a no-op: every write is already durable when Save or
// Snapshot returns.
func (s *Store) Close() error { return nil }

// Root returns the state directory path.
func (s *Store) Root() string { return s.root }

// writeCurrent atomically points CURRENT at gen.
func (s *Store) writeCurrent(gen string) error {
	return writeFileAtomic(s.root, currentFile, []byte(gen+"\n"))
}

// recordFile maps a record id to its file name.
func recordFile(id string) string { return id + ".json" }

// genName renders generation n as its directory name.
func genName(n int) string { return fmt.Sprintf("gen-%06d", n) }

// isGenName reports whether name is a well-formed generation directory
// name.
func isGenName(name string) bool {
	var n int
	_, err := fmt.Sscanf(name, "gen-%06d", &n)
	return err == nil && name == genName(n)
}

// genNumber extracts the generation number (0 when malformed; callers
// only pass validated names).
func genNumber(name string) int {
	var n int
	fmt.Sscanf(name, "gen-%06d", &n)
	return n
}

// encodeEnvelope canonicalizes the payload and wraps it with its
// checksum.
func encodeEnvelope(kind store.Kind, id string, payload []byte) ([]byte, error) {
	canon, err := store.CanonicalJSON(payload)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(canon)
	data, err := json.Marshal(envelope{
		Kind:    string(kind),
		ID:      id,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: canon,
	})
	if err != nil {
		return nil, fmt.Errorf("fsjson: encoding record %s/%s: %w", kind, id, err)
	}
	return append(data, '\n'), nil
}

// decodeEnvelope validates one record file: JSON shape, identity
// fields, and the payload checksum. Every failure is store.ErrCorrupt
// naming the file, so boot logs point straight at the bad record.
func decodeEnvelope(raw []byte, kind store.Kind, id, path string) ([]byte, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("%w: %s is empty (truncated write?)", store.ErrCorrupt, path)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("%w: %s does not decode (truncated or tampered): %v", store.ErrCorrupt, path, err)
	}
	if env.Kind != string(kind) || env.ID != id {
		return nil, fmt.Errorf("%w: %s claims to be %s/%s", store.ErrCorrupt, path, env.Kind, env.ID)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, fmt.Errorf("%w: %s failed its payload checksum (tampered?)", store.ErrCorrupt, path)
	}
	return append([]byte(nil), env.Payload...), nil
}

// newWriter wraps the destination file's writer; tests swap it for an
// error-injecting writer to prove a failed write never replaces the
// previous record generation.
var newWriter = func(f *os.File) interface{ Write([]byte) (int, error) } { return f }

// writeFileAtomic writes name under dir via temp file + fsync + rename
// + directory fsync: after a crash at any point, the target holds
// either its previous contents or the complete new ones.
func writeFileAtomic(dir, name string, data []byte) error {
	f, err := os.CreateTemp(dir, tmpPrefix+name+"-*")
	if err != nil {
		return fmt.Errorf("fsjson: creating temp file in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := newWriter(f).Write(data); err != nil {
		cleanup()
		return fmt.Errorf("fsjson: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("fsjson: fsyncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsjson: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsjson: publishing %s: %w", name, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsjson: opening %s for fsync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fsjson: fsyncing %s: %w", dir, err)
	}
	return nil
}
