package fsjson

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/store/contract"
)

// open opens a store at dir, failing the test on error.
func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestContract runs the cross-adapter contract suite against the
// filesystem adapter. Reopen genuinely reopens the state directory —
// the restart path every durability property rides on — and Corrupt
// flips a byte in the record file on disk.
func TestContract(t *testing.T) {
	contract.Run(t, contract.Adapter{
		Make: func(t *testing.T) store.Store { return open(t, t.TempDir()) },
		Reopen: func(t *testing.T, s store.Store) store.Store {
			return open(t, s.(*Store).Root())
		},
		Corrupt: func(t *testing.T, s store.Store, kind store.Kind, id string) store.Store {
			fs := s.(*Store)
			path := filepath.Join(fs.Root(), fs.gen, string(kind), recordFile(id))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading record to corrupt: %v", err)
			}
			// Flip one byte inside the payload region.
			i := bytes.Index(raw, []byte(`"payload"`))
			if i < 0 || i+12 >= len(raw) {
				t.Fatalf("no payload region to corrupt in %s", path)
			}
			raw[i+12] ^= 0xFF
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatalf("writing corrupted record: %v", err)
			}
			return open(t, fs.Root())
		},
	})
}

// TestFreshBootEmptyDir pins the defined behavior for empty state: a
// missing directory and an existing-but-empty directory are both a
// fresh boot, not an error.
func TestFreshBootEmptyDir(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-created")
	s := open(t, missing)
	items, err := s.List(store.KindMonitor)
	if err != nil || len(items) != 0 {
		t.Fatalf("fresh store lists (%v, %v), want empty", items, err)
	}

	empty := t.TempDir() // exists, no contents
	s2 := open(t, empty)
	if err := s2.Save(store.KindMonitor, "m1", []byte(`{"a":1}`)); err != nil {
		t.Fatalf("Save on fresh store: %v", err)
	}
}

// TestTruncatedCurrentRefused pins the defined behavior for a
// truncated CURRENT pointer: refuse to start, naming the file.
func TestTruncatedCurrentRefused(t *testing.T) {
	dir := t.TempDir()
	open(t, dir).Close()
	for name, contents := range map[string]string{
		"empty":    "",
		"garbage":  "not-a-generation\n",
		"dangling": "gen-000099\n",
	} {
		t.Run(name, func(t *testing.T) {
			cur := filepath.Join(dir, currentFile)
			orig, err := os.ReadFile(cur)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(cur, orig, 0o644)
			if err := os.WriteFile(cur, []byte(contents), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = Open(dir)
			if err == nil {
				t.Fatal("Open accepted a corrupt CURRENT file")
			}
			if !strings.Contains(err.Error(), currentFile) {
				t.Fatalf("error %q does not name the offending file", err)
			}
		})
	}
}

// TestTruncatedRecordRefused pins the defined behavior for an empty or
// truncated record file: Find and List refuse with ErrCorrupt naming
// the file, and a fresh Open still succeeds (corruption is surfaced at
// read time, where the caller knows which record it needed).
func TestTruncatedRecordRefused(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Save(store.KindMonitor, "m1", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, s.gen, string(store.KindMonitor), "m1.json")
	for name, truncate := range map[string]func([]byte) []byte{
		"empty":   func([]byte) []byte { return nil },
		"halfway": func(b []byte) []byte { return b[:len(b)/2] },
	} {
		t.Run(name, func(t *testing.T) {
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(path, orig, 0o644)
			if err := os.WriteFile(path, truncate(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			s2 := open(t, dir)
			if _, _, err := s2.Find(store.KindMonitor, "m1"); !errors.Is(err, store.ErrCorrupt) {
				t.Fatalf("Find over truncated record: %v, want ErrCorrupt", err)
			} else if !strings.Contains(err.Error(), "m1.json") {
				t.Fatalf("error %q does not name the file", err)
			}
			if _, err := s2.List(store.KindMonitor); !errors.Is(err, store.ErrCorrupt) {
				t.Fatalf("List over truncated record: %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestUnrecognizedDirRefused proves Open will not adopt (or wipe) a
// directory that holds anything that is not state-dir shaped.
func TestUnrecognizedDirRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "precious.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "precious.txt") {
		t.Fatalf("Open adopted a foreign directory: %v", err)
	}
}

// TestFaultInjectedWriteLeavesPriorRecord proves the crash-safe write:
// when the data write fails partway (an error-injecting writer standing
// in for a full disk or a crash before rename), the half-written temp
// file never replaces the record and the previous contents survive —
// across a reopen, exactly as after a real crash.
func TestFaultInjectedWriteLeavesPriorRecord(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Save(store.KindMonitor, "m1", []byte(`{"rev":1}`)); err != nil {
		t.Fatal(err)
	}

	prev := newWriter
	newWriter = func(f *os.File) interface{ Write([]byte) (int, error) } {
		return failingWriter{f: f, after: 10}
	}
	err := s.Save(store.KindMonitor, "m1", []byte(`{"rev":2}`))
	newWriter = prev
	if err == nil {
		t.Fatal("Save with a failing writer reported success")
	}

	for label, st := range map[string]*Store{"same-process": s, "reopened": open(t, dir)} {
		got, ok, ferr := st.Find(store.KindMonitor, "m1")
		if ferr != nil || !ok || !bytes.Contains(got, []byte(`"rev":1`)) {
			t.Fatalf("%s: previous record did not survive failed write: (%q, %v, %v)", label, got, ok, ferr)
		}
	}
}

// failingWriter writes `after` bytes then fails — a simulated crash in
// the middle of the payload.
type failingWriter struct {
	f     *os.File
	after int
}

func (w failingWriter) Write(p []byte) (int, error) {
	if len(p) > w.after {
		p = p[:w.after]
	}
	n, _ := w.f.Write(p)
	return n, fmt.Errorf("injected write fault after %d bytes", n)
}

// TestCrashBetweenWriteAndRename simulates the other half of the
// fault: a complete temp file that was never renamed into place (the
// process died between write and rename). The record must read as its
// previous generation and Open must clear the debris.
func TestCrashBetweenWriteAndRename(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Save(store.KindMonitor, "m1", []byte(`{"rev":1}`)); err != nil {
		t.Fatal(err)
	}
	// Hand-craft the orphaned temp file a crash leaves behind.
	kindDir := filepath.Join(dir, s.gen, string(store.KindMonitor))
	orphan := filepath.Join(kindDir, tmpPrefix+"m1.json-12345")
	if err := os.WriteFile(orphan, []byte(`{"kind":"monitors","id":"m1","sha256":"bogus","payload":{"rev":2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	got, ok, err := s2.Find(store.KindMonitor, "m1")
	if err != nil || !ok || !bytes.Contains(got, []byte(`"rev":1`)) {
		t.Fatalf("previous record did not survive orphaned temp file: (%q, %v, %v)", got, ok, err)
	}
	items, err := s2.List(store.KindMonitor)
	if err != nil || len(items) != 1 {
		t.Fatalf("orphaned temp file leaked into List: (%v, %v)", items, err)
	}
}

// TestCrashMidSnapshotKeepsPreviousGeneration simulates a kill in the
// middle of Snapshot: a fully-written next generation that never
// flipped CURRENT. Open must keep serving the previous generation and
// garbage-collect the unreferenced one.
func TestCrashMidSnapshotKeepsPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Save(store.KindMonitor, "m1", []byte(`{"rev":1}`)); err != nil {
		t.Fatal(err)
	}
	// A next generation that exists but is not referenced by CURRENT —
	// the state after a crash between the generation rename and the
	// CURRENT flip.
	next := filepath.Join(dir, "gen-000002", string(store.KindMonitor))
	if err := os.MkdirAll(next, 0o755); err != nil {
		t.Fatal(err)
	}
	env, err := encodeEnvelope(store.KindMonitor, "m1", []byte(`{"rev":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(next, "m1.json"), env, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	got, _, err := s2.Find(store.KindMonitor, "m1")
	if err != nil || !bytes.Contains(got, []byte(`"rev":1`)) {
		t.Fatalf("previous generation not served after crashed snapshot: (%q, %v)", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000002")); !os.IsNotExist(err) {
		t.Fatalf("unreferenced generation not garbage-collected: %v", err)
	}
}

// TestSnapshotAdvancesGeneration covers the happy snapshot path at the
// filesystem level: the generation advances, the old directory is
// gone, and CURRENT points at the new one.
func TestSnapshotAdvancesGeneration(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Save(store.KindMonitor, "old", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	state := map[store.Kind][]store.Item{
		store.KindMonitor: {{ID: "m1", Payload: []byte(`{"a":2}`)}},
	}
	if err := s.Snapshot(state); err != nil {
		t.Fatal(err)
	}
	if s.gen != "gen-000002" {
		t.Fatalf("generation is %s, want gen-000002", s.gen)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000001")); !os.IsNotExist(err) {
		t.Fatalf("old generation not removed: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil || strings.TrimSpace(string(raw)) != "gen-000002" {
		t.Fatalf("CURRENT = %q (err %v), want gen-000002", raw, err)
	}
	// Mixed snapshot + incremental saves keep working in the new
	// generation.
	if err := s.Save(store.KindProfile, "p1", []byte(`{"b":3}`)); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if _, ok, err := s2.Find(store.KindProfile, "p1"); !ok || err != nil {
		t.Fatalf("post-snapshot Save lost on reopen: ok=%v err=%v", ok, err)
	}
}
