// Package contract exports the store port's behavioral contract as a
// reusable test suite. Every adapter package runs Run against its own
// constructor (see store/memory and store/fsjson); an adapter that
// passes is substitutable anywhere the service takes a store.Store.
// The suite is the proof behind the durability claim — CRUD round
// trips, List ordering, Delete idempotence, concurrent Save/Find under
// the race detector, corruption rejection, and snapshot-then-reload
// bit-identity are asserted, not assumed.
package contract

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/responsible-data-science/rds/internal/store"
)

// Adapter binds one store implementation into the contract suite.
type Adapter struct {
	// Make returns a fresh, empty store. Required.
	Make func(t *testing.T) store.Store
	// Reopen simulates a process restart over the same durable medium:
	// it must return a store seeing the state s had. Adapters without
	// cross-process durability (memory) return s itself; the suite then
	// still asserts the reload-facing properties degenerate correctly.
	// Required.
	Reopen func(t *testing.T, s store.Store) store.Store
	// Corrupt tampers with the at-rest bytes of one record — flipping
	// bits, truncating a file — without going through the port, and
	// returns the store to read from afterwards (reopened if the
	// adapter caches). Required: every adapter must be able to detect
	// bit rot.
	Corrupt func(t *testing.T, s store.Store, kind store.Kind, id string) store.Store
}

// kind is the collection the suite exercises; adapters must accept any
// valid kind, not only the service's canonical three.
const kind = store.Kind("contract-widgets")

// payload renders a small distinguishable JSON document.
func payload(i int) []byte {
	return []byte(fmt.Sprintf(`{"n": %d, "body": "widget-%03d"}`, i, i))
}

// canon is the canonical form Save must normalize payloads to.
func canon(t *testing.T, p []byte) []byte {
	t.Helper()
	c, err := store.CanonicalJSON(p)
	if err != nil {
		t.Fatalf("canonicalizing test payload: %v", err)
	}
	return c
}

// Run executes the full contract against the adapter.
func Run(t *testing.T, a Adapter) {
	if a.Make == nil || a.Reopen == nil || a.Corrupt == nil {
		t.Fatal("contract: Adapter needs Make, Reopen, and Corrupt")
	}
	t.Run("SaveFindRoundTrip", func(t *testing.T) { testRoundTrip(t, a) })
	t.Run("FindMissing", func(t *testing.T) { testFindMissing(t, a) })
	t.Run("SaveOverwrites", func(t *testing.T) { testOverwrite(t, a) })
	t.Run("ListOrdering", func(t *testing.T) { testListOrdering(t, a) })
	t.Run("DeleteIdempotent", func(t *testing.T) { testDeleteIdempotent(t, a) })
	t.Run("RejectsBadKeys", func(t *testing.T) { testBadKeys(t, a) })
	t.Run("RejectsInvalidJSON", func(t *testing.T) { testInvalidJSON(t, a) })
	t.Run("ConcurrentSaveFind", func(t *testing.T) { testConcurrent(t, a) })
	t.Run("CorruptionRejected", func(t *testing.T) { testCorruption(t, a) })
	t.Run("SaveSurvivesReopen", func(t *testing.T) { testReopen(t, a) })
	t.Run("SnapshotReplacesState", func(t *testing.T) { testSnapshotReplaces(t, a) })
	t.Run("SnapshotReloadBitIdentity", func(t *testing.T) { testSnapshotBitIdentity(t, a) })
}

func testRoundTrip(t *testing.T, a Adapter) {
	s := a.Make(t)
	// A formatted payload must come back canonicalized — bit-identical
	// across every later read.
	in := []byte("{\n  \"n\": 1,\n  \"body\": \"widget-001\"\n}")
	if err := s.Save(kind, "w1", in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, ok, err := s.Find(kind, "w1")
	if err != nil || !ok {
		t.Fatalf("Find: ok=%v err=%v", ok, err)
	}
	want := canon(t, in)
	if !bytes.Equal(got, want) {
		t.Fatalf("Find returned %q, want canonical %q", got, want)
	}
	// The returned slice must be the caller's to mutate.
	for i := range got {
		got[i] = 'x'
	}
	again, _, err := s.Find(kind, "w1")
	if err != nil || !bytes.Equal(again, want) {
		t.Fatalf("store state changed after caller mutated a returned payload: %q err=%v", again, err)
	}
}

func testFindMissing(t *testing.T, a Adapter) {
	s := a.Make(t)
	got, ok, err := s.Find(kind, "nope")
	if err != nil || ok || got != nil {
		t.Fatalf("Find(missing) = (%q, %v, %v), want (nil, false, nil)", got, ok, err)
	}
}

func testOverwrite(t *testing.T, a Adapter) {
	s := a.Make(t)
	if err := s.Save(kind, "w1", payload(1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.Save(kind, "w1", payload(2)); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	got, ok, err := s.Find(kind, "w1")
	if err != nil || !ok || !bytes.Equal(got, canon(t, payload(2))) {
		t.Fatalf("Find after overwrite = (%q, %v, %v), want second payload", got, ok, err)
	}
	items, err := s.List(kind)
	if err != nil || len(items) != 1 {
		t.Fatalf("List after overwrite has %d items (err %v), want 1", len(items), err)
	}
}

func testListOrdering(t *testing.T, a Adapter) {
	s := a.Make(t)
	// Insert out of order; List must come back ID-ascending.
	for _, i := range []int{7, 1, 5, 3, 9} {
		if err := s.Save(kind, fmt.Sprintf("w%d", i), payload(i)); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	items, err := s.List(kind)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	var ids []string
	for _, it := range items {
		ids = append(ids, it.ID)
	}
	want := []string{"w1", "w3", "w5", "w7", "w9"}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("List order %v, want %v", ids, want)
	}
	empty, err := s.List(store.Kind("contract-empty"))
	if err != nil || len(empty) != 0 {
		t.Fatalf("List of unknown kind = (%v, %v), want empty", empty, err)
	}
}

func testDeleteIdempotent(t *testing.T, a Adapter) {
	s := a.Make(t)
	if err := s.Save(kind, "w1", payload(1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.Delete(kind, "w1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, err := s.Find(kind, "w1"); ok || err != nil {
		t.Fatalf("Find after Delete: ok=%v err=%v", ok, err)
	}
	// Deleting again — and deleting something never saved — is a no-op.
	if err := s.Delete(kind, "w1"); err != nil {
		t.Fatalf("second Delete: %v", err)
	}
	if err := s.Delete(kind, "never-existed"); err != nil {
		t.Fatalf("Delete(absent): %v", err)
	}
}

func testBadKeys(t *testing.T, a Adapter) {
	s := a.Make(t)
	bad := []struct {
		kind store.Kind
		id   string
	}{
		{kind, ""},
		{kind, ".hidden"},
		{kind, "../escape"},
		{kind, "a/b"},
		{kind, "null\x00byte"},
		{store.Kind(""), "w1"},
		{store.Kind("../up"), "w1"},
		{store.Kind("UPPER"), "w1"},
	}
	for _, c := range bad {
		if err := s.Save(c.kind, c.id, payload(1)); err == nil {
			t.Errorf("Save(%q, %q) accepted an unsafe key", c.kind, c.id)
		}
		if _, _, err := s.Find(c.kind, c.id); err == nil {
			t.Errorf("Find(%q, %q) accepted an unsafe key", c.kind, c.id)
		}
		if err := s.Delete(c.kind, c.id); err == nil {
			t.Errorf("Delete(%q, %q) accepted an unsafe key", c.kind, c.id)
		}
	}
}

func testInvalidJSON(t *testing.T, a Adapter) {
	s := a.Make(t)
	for _, p := range [][]byte{nil, []byte(""), []byte("{truncated"), []byte("not json at all")} {
		if err := s.Save(kind, "w1", p); err == nil {
			t.Errorf("Save accepted non-JSON payload %q", p)
		}
	}
	if _, ok, err := s.Find(kind, "w1"); ok || err != nil {
		t.Fatalf("rejected Save left state behind: ok=%v err=%v", ok, err)
	}
}

func testConcurrent(t *testing.T, a Adapter) {
	s := a.Make(t)
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%03d", w, i)
				if err := s.Save(kind, id, payload(i)); err != nil {
					t.Errorf("concurrent Save %s: %v", id, err)
					return
				}
				if got, ok, err := s.Find(kind, id); err != nil || !ok || len(got) == 0 {
					t.Errorf("concurrent Find %s: ok=%v err=%v", id, ok, err)
					return
				}
				if _, err := s.List(kind); err != nil {
					t.Errorf("concurrent List: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	items, err := s.List(kind)
	if err != nil || len(items) != writers*perWriter {
		t.Fatalf("after concurrent writes List has %d items (err %v), want %d", len(items), err, writers*perWriter)
	}
}

func testCorruption(t *testing.T, a Adapter) {
	s := a.Make(t)
	if err := s.Save(kind, "w1", payload(1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.Save(kind, "w2", payload(2)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s = a.Corrupt(t, s, kind, "w1")
	if _, ok, err := s.Find(kind, "w1"); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("Find(corrupted) = (ok=%v, err=%v), want ErrCorrupt", ok, err)
	}
	if _, err := s.List(kind); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("List over a corrupt record = %v, want ErrCorrupt", err)
	}
	// Healthy records are still readable individually.
	if got, ok, err := s.Find(kind, "w2"); err != nil || !ok || !bytes.Equal(got, canon(t, payload(2))) {
		t.Fatalf("healthy record unreadable next to a corrupt one: ok=%v err=%v", ok, err)
	}
}

func testReopen(t *testing.T, a Adapter) {
	s := a.Make(t)
	if err := s.Save(kind, "w1", payload(1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s = a.Reopen(t, s)
	got, ok, err := s.Find(kind, "w1")
	if err != nil || !ok || !bytes.Equal(got, canon(t, payload(1))) {
		t.Fatalf("Find after reopen = (%q, %v, %v)", got, ok, err)
	}
}

func testSnapshotReplaces(t *testing.T, a Adapter) {
	s := a.Make(t)
	if err := s.Save(kind, "old", payload(1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	other := store.Kind("contract-other")
	if err := s.Save(other, "stray", payload(9)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	state := map[store.Kind][]store.Item{
		kind: {
			{ID: "w1", Payload: payload(1)},
			{ID: "w2", Payload: payload(2)},
		},
	}
	if err := s.Snapshot(state); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// The snapshot is the whole state: prior records of every kind are
	// gone, exactly the snapshot's records remain.
	if _, ok, err := s.Find(kind, "old"); ok || err != nil {
		t.Fatalf("pre-snapshot record survived: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s.Find(other, "stray"); ok || err != nil {
		t.Fatalf("record of omitted kind survived the snapshot: ok=%v err=%v", ok, err)
	}
	items, err := s.List(kind)
	if err != nil || len(items) != 2 {
		t.Fatalf("List after snapshot has %d items (err %v), want 2", len(items), err)
	}
}

func testSnapshotBitIdentity(t *testing.T, a Adapter) {
	s := a.Make(t)
	state := map[store.Kind][]store.Item{}
	var want []store.Item
	for i := 0; i < 20; i++ {
		doc, err := json.Marshal(map[string]any{
			"n":      i,
			"values": []float64{0.1 * float64(i), 1.0 / 3.0, 1e-300, 9007199254740993},
			"text":   fmt.Sprintf("<widget & %d>", i),
		})
		if err != nil {
			t.Fatalf("building payload: %v", err)
		}
		it := store.Item{ID: fmt.Sprintf("w%02d", i), Payload: doc}
		state[kind] = append(state[kind], it)
		want = append(want, store.Item{ID: it.ID, Payload: canon(t, doc)})
	}
	if err := s.Snapshot(state); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	check := func(label string, s store.Store) {
		items, err := s.List(kind)
		if err != nil {
			t.Fatalf("%s List: %v", label, err)
		}
		if len(items) != len(want) {
			t.Fatalf("%s List has %d items, want %d", label, len(items), len(want))
		}
		for i := range items {
			if items[i].ID != want[i].ID || !bytes.Equal(items[i].Payload, want[i].Payload) {
				t.Fatalf("%s item %d = (%s, %q), want (%s, %q)",
					label, i, items[i].ID, items[i].Payload, want[i].ID, want[i].Payload)
			}
		}
	}
	check("post-snapshot", s)
	check("post-reload", a.Reopen(t, s))
}
