// Package store defines the durable-state port behind which every
// load-bearing piece of service state lives: monitor specs, pinned
// baseline profiles, and dataset-registry entries. The serving planes
// talk to the small Store interface only; adapters supply the actual
// medium — store/memory reproduces the historical in-process behavior
// (and keeps fast tests fast), store/fsjson persists to a state
// directory with crash-safe writes so a standing monitor survives a
// process restart.
//
// The port is deliberately narrow, in the style of a CRUD repository
// port: records are opaque JSON payloads addressed by (Kind, ID), plus
// one atomic full-state Snapshot used for batch persistence and
// generation flips. Payloads are canonicalized (compact JSON) on Save
// and checksummed at rest: storage is untrusted by design, so a
// truncated or tampered record is refused on read with ErrCorrupt
// rather than silently loaded — the same posture as
// provenance.ReadAuditJSON's hash-chain check.
//
// internal/store/contract exports the behavioral contract as a
// table-driven test suite; every adapter must pass it (CRUD round
// trips, List ordering, Delete idempotence, concurrent Save/Find,
// corruption rejection, snapshot-then-reload bit-identity). New
// adapters start by running the contract, not by re-reading this
// comment.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Kind names one record collection. Adapters accept any ValidKind, but
// the service uses the canonical collections below.
type Kind string

// Canonical record collections.
const (
	// KindMonitor holds monitor spec records keyed by monitor id.
	KindMonitor Kind = "monitors"
	// KindProfile holds pinned baseline-profile records keyed by the
	// owning monitor's id.
	KindProfile Kind = "profiles"
	// KindDataset holds dataset-registry entries keyed by content hash
	// (the dataset_ref), prefixed "tenant." for non-default tenants.
	KindDataset Kind = "datasets"
	// KindTenant holds per-tenant quota-override records keyed by
	// tenant id. Restored first at boot — datasets and monitors restore
	// into a world where every tenant's quotas are already known.
	KindTenant Kind = "tenants"
	// KindPipelines holds staged-pipeline run records keyed by pipeline
	// id: the submitted spec plus every completed stage's result — the
	// irreducible state from which an interrupted run resumes at its
	// last completed stage after a restart.
	KindPipelines Kind = "pipelines"
)

// ErrCorrupt marks a record whose at-rest bytes fail validation — a
// truncated file, an invalid envelope, or a checksum mismatch. Readers
// must treat it as "refuse to load", never as "absent".
var ErrCorrupt = errors.New("store: corrupt record")

// ErrInvalidID rejects record ids that are unsafe as storage keys (see
// ValidID).
var ErrInvalidID = errors.New("store: invalid record id")

// ErrInvalidKind rejects collection names that are unsafe as storage
// keys (see ValidKind).
var ErrInvalidKind = errors.New("store: invalid record kind")

// Item is one record in a listing or snapshot: its id and canonical
// JSON payload.
type Item struct {
	// ID is the record key within its Kind.
	ID string `json:"id"`
	// Payload is the record's canonical JSON document.
	Payload json.RawMessage `json:"payload"`
}

// Store is the repository port. Implementations must be safe for
// concurrent use. Payloads are JSON documents; Save canonicalizes them
// (CanonicalJSON), Find and List return the canonical bytes, so a
// payload read back after any number of save/reload cycles is
// bit-identical to the canonical form of what was saved.
type Store interface {
	// Save upserts one record. The payload must be valid JSON.
	Save(kind Kind, id string, payload []byte) error
	// Find returns the record's canonical payload. ok is false — with a
	// nil error — when the record does not exist; a corrupt record
	// returns ErrCorrupt, never (nil, false, nil).
	Find(kind Kind, id string) (payload []byte, ok bool, err error)
	// Delete removes one record. Deleting an absent record is a no-op:
	// Delete is idempotent.
	Delete(kind Kind, id string) error
	// List returns every record of the kind ordered by ID ascending. An
	// unknown (but valid) kind lists empty.
	List(kind Kind) ([]Item, error)
	// Snapshot atomically replaces the entire store contents with the
	// given state: after it returns, exactly the given records exist,
	// in every kind — including kinds absent from the map, which are
	// emptied. Adapters must make the replacement all-or-nothing: a
	// crash mid-snapshot leaves the previous state fully intact.
	Snapshot(state map[Kind][]Item) error
	// Close releases the adapter's resources. The store must not be
	// used afterwards.
	Close() error
}

// ValidKind reports whether a collection name is safe as a storage key
// for every adapter: lowercase ASCII letters, digits, '-' or '_',
// starting with a letter.
func ValidKind(k Kind) bool {
	if len(k) == 0 || len(k) > 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9' && i > 0:
		case (c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

// ValidID reports whether a record id is safe as a storage key for
// every adapter: ASCII letters, digits, '.', '-' or '_', not starting
// with '.', at most 128 bytes. Monitor ids ("mon-000001") and frame
// content hashes (hex) both qualify.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 128 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// CheckKey validates a (kind, id) pair, wrapping the offending value in
// the error so adapters report rejections uniformly.
func CheckKey(kind Kind, id string) error {
	if !ValidKind(kind) {
		return fmt.Errorf("%w: %q", ErrInvalidKind, kind)
	}
	if !ValidID(id) {
		return fmt.Errorf("%w: %q", ErrInvalidID, id)
	}
	return nil
}

// CanonicalJSON validates payload and returns its canonical form — the
// compact, HTML-safe encoding json.Marshal produces — so checksums and
// bit-identity assertions are stable across save/load cycles no matter
// how the caller formatted the document.
func CanonicalJSON(payload []byte) ([]byte, error) {
	if !json.Valid(payload) {
		return nil, fmt.Errorf("store: payload is not valid JSON")
	}
	return json.Marshal(json.RawMessage(payload))
}
