package memory

import (
	"testing"

	"github.com/responsible-data-science/rds/internal/store"
	"github.com/responsible-data-science/rds/internal/store/contract"
)

// TestContract runs the cross-adapter contract suite against the
// in-memory adapter. Reopen is the identity: the medium is the
// process, so "restart" hands back the same instance and the
// reload-facing properties degenerate to plain reads.
func TestContract(t *testing.T) {
	contract.Run(t, contract.Adapter{
		Make: func(t *testing.T) store.Store { return New() },
		Reopen: func(t *testing.T, s store.Store) store.Store {
			return s
		},
		Corrupt: func(t *testing.T, s store.Store, kind store.Kind, id string) store.Store {
			if !s.(*Store).Corrupt(kind, id) {
				t.Fatalf("Corrupt(%s, %s): no such record", kind, id)
			}
			return s
		},
	})
}

// TestCorruptMissing covers the tamper hook's miss path.
func TestCorruptMissing(t *testing.T) {
	if New().Corrupt(store.KindMonitor, "nope") {
		t.Fatal("Corrupt reported success for an absent record")
	}
}

// TestCloseEmpties verifies Close drops the contents.
func TestCloseEmpties(t *testing.T) {
	s := New()
	if err := s.Save(store.KindMonitor, "m1", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Find(store.KindMonitor, "m1"); ok || err != nil {
		t.Fatalf("record survived Close: ok=%v err=%v", ok, err)
	}
}
