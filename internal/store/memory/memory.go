// Package memory implements the store port in process memory. It is
// the adapter behind a server started without -state-dir — today's
// historical behavior, nothing survives the process — and the adapter
// fast tests use. Despite living on the heap it keeps the port's
// untrusted-storage posture: payloads are checksummed on Save and
// verified on every read, so the contract suite's corruption-rejection
// property holds here exactly as it does for the filesystem adapter.
package memory

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"github.com/responsible-data-science/rds/internal/store"
)

// record is one stored payload with its at-rest checksum.
type record struct {
	payload []byte
	sum     [sha256.Size]byte
}

// Store is the in-memory adapter. The zero value is not usable; call
// New. Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	kinds map[store.Kind]map[string]record
}

// New returns an empty in-memory store.
func New() *Store {
	return &Store{kinds: map[store.Kind]map[string]record{}}
}

// Save upserts one record, canonicalizing and checksumming the payload.
func (s *Store) Save(kind store.Kind, id string, payload []byte) error {
	if err := store.CheckKey(kind, id); err != nil {
		return err
	}
	canon, err := store.CanonicalJSON(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.kinds[kind]
	if m == nil {
		m = map[string]record{}
		s.kinds[kind] = m
	}
	m[id] = record{payload: canon, sum: sha256.Sum256(canon)}
	return nil
}

// Find returns the record's canonical payload, verifying the at-rest
// checksum; a tampered record answers store.ErrCorrupt.
func (s *Store) Find(kind store.Kind, id string) ([]byte, bool, error) {
	if err := store.CheckKey(kind, id); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.kinds[kind][id]
	if !ok {
		return nil, false, nil
	}
	if sha256.Sum256(rec.payload) != rec.sum {
		return nil, false, corruptErr(kind, id)
	}
	return append([]byte(nil), rec.payload...), true, nil
}

// Delete removes one record; absent records are a no-op.
func (s *Store) Delete(kind store.Kind, id string) error {
	if err := store.CheckKey(kind, id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.kinds[kind], id)
	return nil
}

// List returns the kind's records ordered by ID ascending, verifying
// each at-rest checksum.
func (s *Store) List(kind store.Kind) ([]store.Item, error) {
	if !store.ValidKind(kind) {
		return nil, fmt.Errorf("%w: %q", store.ErrInvalidKind, kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.kinds[kind]
	items := make([]store.Item, 0, len(m))
	for id, rec := range m {
		if sha256.Sum256(rec.payload) != rec.sum {
			return nil, corruptErr(kind, id)
		}
		items = append(items, store.Item{ID: id, Payload: append([]byte(nil), rec.payload...)})
	}
	sortItems(items)
	return items, nil
}

// Snapshot atomically replaces the whole store contents: the new state
// is built aside and swapped in under the lock, so concurrent readers
// see either the old state or the new, never a mix.
func (s *Store) Snapshot(state map[store.Kind][]store.Item) error {
	next := map[store.Kind]map[string]record{}
	for kind, items := range state {
		m := map[string]record{}
		for _, it := range items {
			if err := store.CheckKey(kind, it.ID); err != nil {
				return err
			}
			canon, err := store.CanonicalJSON(it.Payload)
			if err != nil {
				return err
			}
			m[it.ID] = record{payload: canon, sum: sha256.Sum256(canon)}
		}
		next[kind] = m
	}
	s.mu.Lock()
	s.kinds = next
	s.mu.Unlock()
	return nil
}

// Close releases the store's contents.
func (s *Store) Close() error {
	s.mu.Lock()
	s.kinds = map[store.Kind]map[string]record{}
	s.mu.Unlock()
	return nil
}

// Corrupt flips bytes of the stored payload without updating the
// checksum — a test hook standing in for at-rest bit rot, so the
// contract suite can prove tampered records are refused. It reports
// whether the record existed.
func (s *Store) Corrupt(kind store.Kind, id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.kinds[kind][id]
	if !ok {
		return false
	}
	tampered := append([]byte(nil), rec.payload...)
	if len(tampered) == 0 {
		return false
	}
	tampered[len(tampered)/2] ^= 0xFF
	s.kinds[kind][id] = record{payload: tampered, sum: rec.sum}
	return true
}

// corruptErr labels a checksum mismatch with the failing record.
func corruptErr(kind store.Kind, id string) error {
	return fmt.Errorf("%w: %s/%s failed its at-rest checksum", store.ErrCorrupt, kind, id)
}

// sortItems orders a listing by ID ascending — the port's List
// contract.
func sortItems(items []store.Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
}
