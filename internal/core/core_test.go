package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/privacy"
	"github.com/responsible-data-science/rds/internal/rng"
	"github.com/responsible-data-science/rds/internal/synth"
)

func strictPolicy() policy.FACTPolicy {
	return policy.FACTPolicy{
		MinDisparateImpact:   0.8,
		MaxEqOppDifference:   0.1,
		RequireIntervals:     true,
		MaxUncorrectedTests:  1,
		Correction:           "holm",
		MaxEpsilon:           1.0,
		RequireLineage:       true,
		RequireModelCard:     true,
		MinSurrogateFidelity: 0.8,
	}
}

func newCreditPipeline(t *testing.T, bias float64, mitigation Mitigation) (*Pipeline, *TrainedModel) {
	t.Helper()
	p, err := New(Config{Name: "credit", Policy: strictPolicy(), Seed: 7, Actor: "test"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := synth.Credit(synth.CreditConfig{N: 6000, Bias: bias, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load("credit-synth", f); err != nil {
		t.Fatal(err)
	}
	tm, err := p.Train(TrainSpec{
		Target:     "approved",
		Sensitive:  "group",
		Protected:  "B",
		Reference:  "A",
		Mitigation: mitigation,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, tm
}

func TestPipelineEndToEndBiasedDataFailsAudit(t *testing.T) {
	p, tm := newCreditPipeline(t, 1.2, MitigateNone)
	rep, err := p.Audit(tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall != policy.Red {
		t.Fatalf("biased unmitigated pipeline graded %s, want RED:\n%s", rep.Overall, rep.Render())
	}
	// Fairness must be the failing dimension.
	foundRed := false
	for _, f := range rep.Findings {
		if f.Dimension == "fairness" && f.Grade == policy.Red {
			foundRed = true
		}
	}
	if !foundRed {
		t.Fatalf("no red fairness finding:\n%s", rep.Render())
	}
}

func TestPipelineMitigationImprovesGrade(t *testing.T) {
	_, tmBase := newCreditPipeline(t, 1.2, MitigateNone)
	pMit, tmMit := newCreditPipeline(t, 1.2, MitigateThreshold)
	repMit, err := pMit.Audit(tmMit)
	if err != nil {
		t.Fatal(err)
	}
	baseDI := 0.0
	{
		pBase, _ := newCreditPipeline(t, 1.2, MitigateNone)
		repBase, err := pBase.Audit(tmBase)
		if err != nil {
			t.Fatal(err)
		}
		baseDI = repBase.Fairness.Report.DisparateImpact
	}
	if repMit.Fairness.Report.DisparateImpact <= baseDI {
		t.Fatalf("mitigation did not improve DI: %v -> %v", baseDI, repMit.Fairness.Report.DisparateImpact)
	}
	// Threshold mitigation targets demographic parity directly; DI must
	// now pass the four-fifths floor.
	if repMit.Fairness.Report.DisparateImpact < 0.8 {
		t.Fatalf("mitigated DI = %v, want >= 0.8", repMit.Fairness.Report.DisparateImpact)
	}
}

func TestPipelineFairDataPassesAudit(t *testing.T) {
	p, tm := newCreditPipeline(t, 0, MitigateReweigh)
	rep, err := p.Audit(tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall == policy.Red {
		t.Fatalf("fair pipeline graded RED:\n%s", rep.Render())
	}
	if !rep.Transparency.AuditIntact {
		t.Fatal("audit chain broken")
	}
	if rep.Transparency.LineageNodes < 2 {
		t.Fatalf("lineage nodes = %d", rep.Transparency.LineageNodes)
	}
	if !rep.Accuracy.AccuracyCI.Contains(rep.Accuracy.Accuracy) {
		t.Fatal("accuracy outside its own CI")
	}
	out := rep.Render()
	for _, want := range []string{"FACT report", "fairness:", "accuracy:", "transparency:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPipelineConsentFiltering(t *testing.T) {
	pol := strictPolicy()
	pol.RequiredPurpose = policy.PurposeResearch
	p, err := New(Config{Name: "consented", Policy: pol, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ledger := policy.NewConsentLedger()
	// Subjects s0..s99; only even ones consent.
	ids := make([]string, 100)
	vals := make([]float64, 100)
	labels := make([]int64, 100)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i)
		vals[i] = float64(i)
		labels[i] = int64(i % 2)
		if i%2 == 0 {
			if err := ledger.Grant(ids[i], policy.PurposeResearch); err != nil {
				t.Fatal(err)
			}
		}
	}
	ledger.Erase("s0") // erased subject must also drop out
	p.AttachConsent(ledger, "subject")
	f := frame.MustNew(
		frame.NewString("subject", ids),
		frame.NewFloat64("x", vals),
		frame.NewInt64("y", labels),
	)
	if err := p.Load("survey", f); err != nil {
		t.Fatal(err)
	}
	if p.Frame().NumRows() != 49 { // 50 even minus erased s0
		t.Fatalf("rows after consent = %d, want 49", p.Frame().NumRows())
	}
	if p.DeniedRows() != 51 {
		t.Fatalf("denied = %d, want 51", p.DeniedRows())
	}
}

func TestPipelineConsentRequiresPurpose(t *testing.T) {
	p, err := New(Config{Name: "x", Policy: policy.FACTPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	p.AttachConsent(policy.NewConsentLedger(), "subject")
	f := frame.MustNew(frame.NewString("subject", []string{"a"}))
	if err := p.Load("d", f); err == nil {
		t.Fatal("consent without purpose accepted")
	}
}

func TestPipelineTransform(t *testing.T) {
	p, err := New(Config{Name: "t", Policy: policy.FACTPolicy{}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := synth.Credit(synth.CreditConfig{N: 500, Seed: 13})
	if err := p.Load("credit", f); err != nil {
		t.Fatal(err)
	}
	if err := p.Transform("drop-latecomers", func(fr *frame.Frame) (*frame.Frame, error) {
		col := fr.MustCol("late_payments")
		return fr.Filter(func(i int) bool { return col.Int(i) < 3 }), nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.Frame().NumRows() >= 500 {
		t.Fatal("transform did not filter")
	}
	if p.Lineage().Len() != 2 {
		t.Fatalf("lineage nodes = %d", p.Lineage().Len())
	}
	// Failing transform is recorded and surfaced.
	if err := p.Transform("boom", func(fr *frame.Frame) (*frame.Frame, error) {
		return nil, fmt.Errorf("synthetic failure")
	}); err == nil {
		t.Fatal("failing transform not surfaced")
	}
	if err := p.Transform("empty", func(fr *frame.Frame) (*frame.Frame, error) {
		return fr.Filter(func(int) bool { return false }), nil
	}); err == nil {
		t.Fatal("empty transform output accepted")
	}
}

func TestPipelineBudgetIntegration(t *testing.T) {
	pol := strictPolicy()
	p, tm := newCreditPipeline(t, 0, MitigateNone)
	b, err := privacy.NewBudget(pol.MaxEpsilon, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachBudget(b)
	src := rng.New(9)
	if _, err := privacy.PrivateCount(b, "approved-count", 100, 0.5, src); err != nil {
		t.Fatal(err)
	}
	rep, err := p.Audit(tm)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Confidentiality.BudgetAttached || rep.Confidentiality.EpsSpent != 0.5 {
		t.Fatalf("budget section: %+v", rep.Confidentiality)
	}
	// Overspending relative to the cap turns the dimension red: new
	// pipeline with a tighter cap.
	pol2 := strictPolicy()
	pol2.MaxEpsilon = 0.1
	p2, err := New(Config{Name: "tight", Policy: pol2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := synth.Credit(synth.CreditConfig{N: 3000, Seed: 17})
	if err := p2.Load("credit", f); err != nil {
		t.Fatal(err)
	}
	tm2, err := p2.Train(TrainSpec{Target: "approved", Sensitive: "group", Protected: "B", Reference: "A"})
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := privacy.NewBudget(10, 0) // accountant allows more than policy cap
	p2.AttachBudget(b2)
	if _, err := privacy.PrivateCount(b2, "c", 10, 5.0, src); err != nil {
		t.Fatal(err)
	}
	rep2, err := p2.Audit(tm2)
	if err != nil {
		t.Fatal(err)
	}
	redConf := false
	for _, fd := range rep2.Findings {
		if fd.Dimension == "confidentiality" && fd.Grade == policy.Red {
			redConf = true
		}
	}
	if !redConf {
		t.Fatalf("cap overspend not red:\n%s", rep2.Render())
	}
}

func TestPipelineHypothesisLedgerInAudit(t *testing.T) {
	p, tm := newCreditPipeline(t, 0, MitigateNone)
	p.RecordHypothesis("h1", 0.001)
	p.RecordHypothesis("h2", 0.04)
	p.RecordHypothesis("h3", 0.04)
	rep, err := p.Audit(tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy.TestsRun != 3 || len(rep.Accuracy.Corrected) != 3 {
		t.Fatalf("ledger not audited: %+v", rep.Accuracy)
	}
	// Holm at 0.05: only h1 survives.
	survived := 0
	for _, d := range rep.Accuracy.Corrected {
		if d.Rejected {
			survived++
		}
	}
	if survived != 1 {
		t.Fatalf("survived = %d, want 1", survived)
	}
}

func TestPipelineUncorrectedTestsGoRed(t *testing.T) {
	pol := strictPolicy()
	pol.Correction = "" // no correction mandated
	pol.MaxUncorrectedTests = 2
	p, err := New(Config{Name: "sloppy", Policy: pol, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := synth.Credit(synth.CreditConfig{N: 3000, Seed: 19})
	if err := p.Load("credit", f); err != nil {
		t.Fatal(err)
	}
	tm, err := p.Train(TrainSpec{Target: "approved", Sensitive: "group", Protected: "B", Reference: "A"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.RecordHypothesis(fmt.Sprintf("h%d", i), 0.04)
	}
	rep, err := p.Audit(tm)
	if err != nil {
		t.Fatal(err)
	}
	redAcc := false
	for _, fd := range rep.Findings {
		if fd.Dimension == "accuracy" && fd.Grade == policy.Red {
			redAcc = true
		}
	}
	if !redAcc {
		t.Fatalf("uncorrected testing not red:\n%s", rep.Render())
	}
}

func TestPipelineReleaseAudit(t *testing.T) {
	pol := strictPolicy()
	pol.MinKAnonymity = 10
	p, err := New(Config{Name: "publisher", Policy: pol, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := synth.Hospital(synth.HospitalConfig{N: 2000, Seed: 23})
	if err := p.Load("hospital", f); err != nil {
		t.Fatal(err)
	}
	res, err := privacy.Anonymize(f, privacy.AnonymizeConfig{K: 10, QuasiIdentifiers: []string{"age", "sex", "zip"}})
	if err != nil {
		t.Fatal(err)
	}
	p.RecordRelease(res)
	// Train something so Audit runs (hospital data: readmitted by sex).
	tm, err := p.Train(TrainSpec{Target: "readmitted", Sensitive: "sex", Protected: "F", Reference: "M"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Audit(tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Confidentiality.ReleaseMinK < 10 {
		t.Fatalf("release min k = %d", rep.Confidentiality.ReleaseMinK)
	}
	greenRelease := false
	for _, fd := range rep.Findings {
		if fd.Dimension == "confidentiality" && strings.Contains(fd.Message, "release min class") && fd.Grade == policy.Green {
			greenRelease = true
		}
	}
	if !greenRelease {
		t.Fatalf("k-anonymous release not green:\n%s", rep.Render())
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nameless pipeline accepted")
	}
	if _, err := New(Config{Name: "x", Policy: policy.FACTPolicy{MinDisparateImpact: 2}}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	p, _ := New(Config{Name: "x", Policy: policy.FACTPolicy{}})
	if err := p.Load("empty", frame.MustNew()); err == nil {
		t.Fatal("empty frame accepted")
	}
	if err := p.Transform("t", nil); err == nil {
		t.Fatal("transform before load accepted")
	}
	if _, err := p.Train(TrainSpec{}); err == nil {
		t.Fatal("train before load accepted")
	}
	if _, err := p.Audit(nil); err == nil {
		t.Fatal("audit of nil model accepted")
	}
}

func TestTrainSpecValidation(t *testing.T) {
	p, _ := New(Config{Name: "v", Policy: policy.FACTPolicy{}, Seed: 3})
	f, _ := synth.Credit(synth.CreditConfig{N: 300, Seed: 29})
	if err := p.Load("c", f); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(TrainSpec{Target: "approved"}); err == nil {
		t.Fatal("spec without groups accepted")
	}
	if _, err := p.Train(TrainSpec{
		Target: "approved", Sensitive: "group", Protected: "B", Reference: "A",
		TestFraction: 1.5,
	}); err == nil {
		t.Fatal("bad test fraction accepted")
	}
}

func TestMitigationString(t *testing.T) {
	if MitigateNone.String() != "none" || MitigateReweigh.String() != "reweigh" || MitigateThreshold.String() != "threshold" {
		t.Fatal("mitigation strings wrong")
	}
}

func TestPipelineAuditTrailGrows(t *testing.T) {
	p, tm := newCreditPipeline(t, 0, MitigateNone)
	before := p.AuditLog().Len()
	if _, err := p.Audit(tm); err != nil {
		t.Fatal(err)
	}
	if p.AuditLog().Len() != before+1 {
		t.Fatal("audit event not appended")
	}
	if p.AuditLog().Verify() != -1 {
		t.Fatal("audit chain broken")
	}
}
