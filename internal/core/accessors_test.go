package core

import (
	"testing"

	"github.com/responsible-data-science/rds/internal/privacy"
)

func TestPipelineAccessors(t *testing.T) {
	p, err := New(Config{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Budget() != nil {
		t.Errorf("fresh pipeline Budget = %v, want nil", p.Budget())
	}
	b, err := privacy.NewBudget(1.0, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachBudget(b)
	if p.Budget() != b {
		t.Error("Budget() did not return the attached accountant")
	}
	if p.Ledger() == nil {
		t.Error("Ledger() = nil, want the pipeline's hypothesis ledger")
	}
	if p.Lineage() == nil || p.AuditLog() == nil {
		t.Error("Lineage/AuditLog should be non-nil on a fresh pipeline")
	}
}
