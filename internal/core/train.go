package core

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/fairness"
	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/ml"
	"github.com/responsible-data-science/rds/internal/provenance"
)

// Mitigation selects the fairness intervention applied during training.
type Mitigation int

// Mitigation strategies.
const (
	// MitigateNone trains directly on the (possibly biased) labels.
	MitigateNone Mitigation = iota
	// MitigateReweigh applies Kamiran-Calders instance weights.
	MitigateReweigh
	// MitigateThreshold post-processes with per-group thresholds
	// targeting demographic parity.
	MitigateThreshold
)

// ParseMitigation maps a mitigation name ("none", "reweigh",
// "threshold") to its Mitigation, as used by CLI flags and the audit
// service's JSON requests.
func ParseMitigation(name string) (Mitigation, error) {
	switch name {
	case "", "none":
		return MitigateNone, nil
	case "reweigh":
		return MitigateReweigh, nil
	case "threshold":
		return MitigateThreshold, nil
	}
	return MitigateNone, fmt.Errorf("core: unknown mitigation %q (want none, reweigh, or threshold)", name)
}

// String renders the mitigation name.
func (m Mitigation) String() string {
	switch m {
	case MitigateNone:
		return "none"
	case MitigateReweigh:
		return "reweigh"
	case MitigateThreshold:
		return "threshold"
	}
	return fmt.Sprintf("Mitigation(%d)", int(m))
}

// TrainSpec describes a training run over the pipeline's working frame.
type TrainSpec struct {
	Target       string   // binary label column (1 = favourable)
	Sensitive    string   // sensitive-attribute column (excluded from features)
	Protected    string   // protected group value of Sensitive
	Reference    string   // reference group value of Sensitive
	Exclude      []string // additional columns to keep out of the features
	TestFraction float64  // default 0.3
	Mitigation   Mitigation
	Epochs       int // logistic epochs (default 40)
	// TrueGroups optionally names a column holding the auditor's
	// ground-truth sensitive attribute — the curriculum's "auditor's
	// check" when Sensitive has been privatized (e.g. LDP randomized
	// response): mitigation and thresholds see only the noisy Sensitive
	// column, but the fairness evaluation groups by TrueGroups, so the
	// audit measures real disparate impact, not disparate impact among
	// the noise. Always excluded from features. Empty means Sensitive
	// is the truth (the historical behavior).
	TrueGroups string
}

// TrainedModel is the result of Pipeline.Train: the model, its held-out
// evaluation artifacts, and the transparency card.
type TrainedModel struct {
	Model ml.Classifier
	Spec  TrainSpec
	Test  *ml.Dataset
	// TestGroups is the fairness-evaluation grouping restricted to the
	// test split: the Sensitive column, or TrueGroups when the spec
	// sets it (the auditor's ground-truth check over a privatized
	// attribute).
	TestGroups []string
	// TestGroupCol is the evaluation column restricted to the test
	// split — the same values as TestGroups, but keeping the column's
	// dictionary encoding so the fairness kernel can tally by code.
	TestGroupCol *frame.Series
	TestProbs    []float64
	TestPreds    []float64
	Thresholds   *fairness.GroupThresholds // non-nil for MitigateThreshold
	Accuracy     float64
	AUC          float64
	Card         *provenance.ModelCard
	LineageID    string
}

// Train fits a logistic model on the working frame per spec, with the
// chosen fairness mitigation, evaluates it on a held-out split, and
// records model provenance plus a model card.
func (p *Pipeline) Train(spec TrainSpec) (*TrainedModel, error) {
	if p.data == nil {
		return nil, fmt.Errorf("core: Train before Load")
	}
	if spec.Target == "" || spec.Sensitive == "" || spec.Protected == "" || spec.Reference == "" {
		return nil, fmt.Errorf("core: TrainSpec needs Target, Sensitive, Protected and Reference")
	}
	if spec.TestFraction == 0 {
		spec.TestFraction = 0.3
	}
	if spec.TestFraction <= 0 || spec.TestFraction >= 1 {
		return nil, fmt.Errorf("core: TestFraction %v out of (0,1)", spec.TestFraction)
	}
	if spec.Epochs <= 0 {
		spec.Epochs = 40
	}

	exclude := append([]string{spec.Sensitive}, spec.Exclude...)
	if spec.TrueGroups != "" {
		exclude = append(exclude, spec.TrueGroups)
	}
	ds, err := ml.FromFrame(p.data, spec.Target, exclude...)
	if err != nil {
		return nil, fmt.Errorf("core: encoding features: %w", err)
	}
	groupCol := p.data.MustCol(spec.Sensitive)
	groups := groupCol.Strings()
	// evalCol carries the fairness-evaluation grouping: the true
	// attribute when TrueGroups is set, otherwise Sensitive itself.
	evalCol, evalGroups := groupCol, groups
	if spec.TrueGroups != "" {
		c, err := p.data.Col(spec.TrueGroups)
		if err != nil {
			return nil, fmt.Errorf("core: TrueGroups column: %w", err)
		}
		evalCol = c
		evalGroups = c.Strings()
	}

	// Deterministic split that keeps group labels aligned with rows.
	perm := p.src.Perm(ds.N())
	nTest := int(float64(ds.N()) * spec.TestFraction)
	if nTest < 1 || ds.N()-nTest < 2 {
		return nil, fmt.Errorf("core: %d rows cannot support test fraction %v", ds.N(), spec.TestFraction)
	}
	testIdx, trainIdx := perm[:nTest], perm[nTest:]
	trainSet := ds.Subset(trainIdx)
	testSet := ds.Subset(testIdx)
	// testGroups follows Sensitive — it drives mitigation (thresholds
	// are keyed by the attribute the served model can actually see);
	// testEval follows evalCol and drives the fairness evaluation.
	testGroups := make([]string, len(testIdx))
	for i, idx := range testIdx {
		testGroups[i] = groups[idx]
	}
	testEval := make([]string, len(testIdx))
	for i, idx := range testIdx {
		testEval[i] = evalGroups[idx]
	}
	trainGroups := make([]string, len(trainIdx))
	for i, idx := range trainIdx {
		trainGroups[i] = groups[idx]
	}

	if spec.Mitigation == MitigateReweigh {
		w, err := fairness.Reweigh(trainSet.Y, trainGroups)
		if err != nil {
			return nil, fmt.Errorf("core: reweighing: %w", err)
		}
		trainSet.Weights = w
	}

	model, err := ml.TrainLogistic(trainSet, ml.LogisticConfig{Epochs: spec.Epochs, Seed: p.cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: training: %w", err)
	}

	tm := &TrainedModel{
		Model:        model,
		Spec:         spec,
		Test:         testSet,
		TestGroups:   testEval,
		TestGroupCol: evalCol.Take(testIdx),
		TestProbs:    ml.PredictProbaAll(model, testSet.X),
	}
	if spec.Mitigation == MitigateThreshold {
		th, err := fairness.OptimizeThresholds(testSet.Y, tm.TestProbs, testGroups,
			spec.Protected, spec.Reference, fairness.DemographicParity)
		if err != nil {
			return nil, fmt.Errorf("core: threshold optimization: %w", err)
		}
		tm.Thresholds = &th
		tm.TestPreds = th.Apply(tm.TestProbs, testGroups)
	} else {
		tm.TestPreds = ml.PredictAll(model, testSet.X)
	}

	acc, err := ml.Accuracy(testSet.Y, tm.TestPreds)
	if err != nil {
		return nil, err
	}
	tm.Accuracy = acc
	if auc, err := ml.AUC(testSet.Y, tm.TestProbs); err == nil {
		tm.AUC = auc
	}

	// Provenance: model node + card.
	id := p.nextID("model")
	dataHash := ""
	if n, ok := p.graph.Get(p.lastNode); ok {
		dataHash = n.Hash
	}
	if _, err := p.graph.Add(id, provenance.KindModel,
		fmt.Sprintf("logistic(%s|mitigation=%s)", spec.Target, spec.Mitigation),
		provenance.HashStrings(dataHash, spec.Target, spec.Mitigation.String()),
		p.inputsOrNone(),
		map[string]string{"mitigation": spec.Mitigation.String(), "epochs": fmt.Sprintf("%d", spec.Epochs)},
	); err != nil {
		return nil, err
	}
	tm.LineageID = id
	p.audit.Append(p.cfg.Actor, "train", id,
		fmt.Sprintf("acc=%.4f auc=%.4f mitigation=%s", tm.Accuracy, tm.AUC, spec.Mitigation))

	tm.Card = &provenance.ModelCard{
		Name:           p.cfg.Name + "/" + spec.Target,
		Version:        "1",
		ModelType:      "logistic regression (SGD, standardized)",
		IntendedUse:    fmt.Sprintf("predict %q; protected group %q vs %q", spec.Target, spec.Protected, spec.Reference),
		TrainingData:   fmt.Sprintf("pipeline %s working frame [%.12s]", p.cfg.Name, dataHash),
		Features:       testSet.Features,
		ExcludedFields: exclude,
		Metrics:        map[string]float64{"accuracy": tm.Accuracy, "auc": tm.AUC},
		LineageID:      id,
	}
	return tm, nil
}
