package core

import (
	"fmt"
	"strings"

	"github.com/responsible-data-science/rds/internal/explain"
	"github.com/responsible-data-science/rds/internal/fairness"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/stats"
)

// FACTReport is the pipeline's compliance report: one section per FACT
// dimension plus governance, with traffic-light findings evaluated
// against the pipeline's policy. The JSON form is what the audit service
// (internal/serve, cmd/rds-serve) returns to clients.
type FACTReport struct {
	Pipeline string `json:"pipeline"`

	Fairness        FairnessSection        `json:"fairness"`
	Accuracy        AccuracySection        `json:"accuracy"`
	Confidentiality ConfidentialitySection `json:"confidentiality"`
	Transparency    TransparencySection    `json:"transparency"`

	Findings []policy.Finding `json:"findings"`
	Overall  policy.Grade     `json:"overall"`
}

// FairnessSection carries the measured group-fairness outcome.
type FairnessSection struct {
	Report fairness.Report `json:"report"`
}

// AccuracySection carries accuracy with its interval and the corrected
// hypothesis decisions.
type AccuracySection struct {
	Accuracy   float64                `json:"accuracy"`
	AccuracyCI stats.Interval         `json:"accuracy_ci"`
	TestsRun   int                    `json:"tests_run"`
	Corrected  []stats.LedgerDecision `json:"corrected,omitempty"`
}

// ConfidentialitySection reports budget consumption and any micro-data
// release quality.
type ConfidentialitySection struct {
	BudgetAttached bool    `json:"budget_attached"`
	EpsSpent       float64 `json:"eps_spent"`
	EpsTotalCap    float64 `json:"eps_total_cap"`
	ReleaseMinK    int     `json:"release_min_k"` // 0 when no release happened
}

// TransparencySection reports lineage size, audit-chain integrity, and
// explanation fidelity.
type TransparencySection struct {
	LineageNodes      int     `json:"lineage_nodes"`
	AuditIntact       bool    `json:"audit_intact"`
	SurrogateFidelity float64 `json:"surrogate_fidelity"`
	CardValid         bool    `json:"card_valid"`
}

// Audit evaluates the trained model and the pipeline state against the
// policy and produces the FACT report.
func (p *Pipeline) Audit(tm *TrainedModel) (*FACTReport, error) {
	if tm == nil {
		return nil, fmt.Errorf("core: Audit needs a trained model")
	}
	pol := p.cfg.Policy
	rep := &FACTReport{Pipeline: p.cfg.Name}

	// --- Fairness (Q1). Routed through the sharded execution engine;
	// cfg.Shards only changes wall-clock time, never the metrics. A
	// dict-encoded group column takes the code-keyed kernel (identical
	// report, property-tested); models without the column fall back to
	// the rendered group labels.
	var fr fairness.Report
	var err error
	if tm.TestGroupCol != nil {
		fr, err = fairness.EvaluateSeriesSharded(tm.Test.Y, tm.TestPreds, tm.TestGroupCol, tm.Spec.Protected, tm.Spec.Reference, p.cfg.Shards)
	} else {
		fr, err = fairness.EvaluateSharded(tm.Test.Y, tm.TestPreds, tm.TestGroups, tm.Spec.Protected, tm.Spec.Reference, p.cfg.Shards)
	}
	if err != nil {
		return nil, fmt.Errorf("core: fairness evaluation: %w", err)
	}
	rep.Fairness.Report = fr
	if pol.MinDisparateImpact > 0 {
		switch {
		case fr.DisparateImpact >= pol.MinDisparateImpact:
			rep.add("fairness", policy.Green,
				fmt.Sprintf("disparate impact %.3f meets floor %.2f", fr.DisparateImpact, pol.MinDisparateImpact))
		case fr.DisparateImpact >= pol.MinDisparateImpact-0.05:
			rep.add("fairness", policy.Amber,
				fmt.Sprintf("disparate impact %.3f within 0.05 of floor %.2f", fr.DisparateImpact, pol.MinDisparateImpact))
		default:
			rep.add("fairness", policy.Red,
				fmt.Sprintf("disparate impact %.3f below floor %.2f", fr.DisparateImpact, pol.MinDisparateImpact))
		}
	}
	if pol.MaxEqOppDifference > 0 {
		eod := fr.EqualOpportunityDifference
		if eod < 0 {
			eod = -eod
		}
		if eod <= pol.MaxEqOppDifference {
			rep.add("fairness", policy.Green,
				fmt.Sprintf("equal-opportunity gap %.3f within %.2f", eod, pol.MaxEqOppDifference))
		} else {
			rep.add("fairness", policy.Red,
				fmt.Sprintf("equal-opportunity gap %.3f exceeds %.2f", eod, pol.MaxEqOppDifference))
		}
	}

	// --- Accuracy (Q2).
	rep.Accuracy.Accuracy = tm.Accuracy
	correct := int(tm.Accuracy * float64(tm.Test.N()))
	ci, err := stats.WilsonCI(correct, tm.Test.N(), 0.95)
	if err != nil {
		return nil, fmt.Errorf("core: accuracy interval: %w", err)
	}
	rep.Accuracy.AccuracyCI = ci
	if pol.RequireIntervals {
		rep.add("accuracy", policy.Green,
			fmt.Sprintf("accuracy %.4f with 95%% CI [%.4f, %.4f] (n=%d)", tm.Accuracy, ci.Lower, ci.Upper, tm.Test.N()))
	}
	rep.Accuracy.TestsRun = p.ledger.Len()
	if p.ledger.Len() > 0 {
		method, ok := correctionByName(pol.Correction)
		switch {
		case pol.Correction == "" && p.ledger.Len() > pol.MaxUncorrectedTests:
			rep.add("accuracy", policy.Red,
				fmt.Sprintf("%d hypotheses tested with no correction policy (limit %d)", p.ledger.Len(), pol.MaxUncorrectedTests))
		case pol.Correction != "" && !ok:
			rep.add("accuracy", policy.Red,
				fmt.Sprintf("unknown correction %q in policy", pol.Correction))
		case ok:
			decisions, err := p.ledger.Decide(method, 0.05)
			if err != nil {
				return nil, fmt.Errorf("core: correcting hypotheses: %w", err)
			}
			rep.Accuracy.Corrected = decisions
			survived := 0
			for _, d := range decisions {
				if d.Rejected {
					survived++
				}
			}
			rep.add("accuracy", policy.Green,
				fmt.Sprintf("%d hypotheses corrected with %s; %d significant", len(decisions), pol.Correction, survived))
		}
	}

	// --- Confidentiality (Q3).
	rep.Confidentiality.EpsTotalCap = pol.MaxEpsilon
	if p.budget != nil {
		rep.Confidentiality.BudgetAttached = true
		spent, _ := p.budget.Spent()
		rep.Confidentiality.EpsSpent = spent
		if pol.MaxEpsilon > 0 {
			if spent <= pol.MaxEpsilon {
				rep.add("confidentiality", policy.Green,
					fmt.Sprintf("privacy budget spent %.3f within cap %.2f", spent, pol.MaxEpsilon))
			} else {
				rep.add("confidentiality", policy.Red,
					fmt.Sprintf("privacy budget spent %.3f exceeds cap %.2f", spent, pol.MaxEpsilon))
			}
		}
	} else if pol.MaxEpsilon > 0 {
		rep.add("confidentiality", policy.Amber, "policy caps epsilon but no budget accountant is attached")
	}
	if pol.MinKAnonymity > 0 {
		if p.release == nil {
			rep.add("confidentiality", policy.Amber,
				fmt.Sprintf("policy requires %d-anonymous releases; none recorded", pol.MinKAnonymity))
		} else {
			rep.Confidentiality.ReleaseMinK = p.release.MinClassSize
			if p.release.MinClassSize >= pol.MinKAnonymity {
				rep.add("confidentiality", policy.Green,
					fmt.Sprintf("release min class %d meets k=%d", p.release.MinClassSize, pol.MinKAnonymity))
			} else {
				rep.add("confidentiality", policy.Red,
					fmt.Sprintf("release min class %d below k=%d", p.release.MinClassSize, pol.MinKAnonymity))
			}
		}
	}

	// --- Transparency (Q4).
	rep.Transparency.LineageNodes = p.graph.Len()
	rep.Transparency.AuditIntact = p.audit.Verify() == -1
	if pol.RequireLineage {
		if p.graph.Len() >= 2 && rep.Transparency.AuditIntact {
			rep.add("transparency", policy.Green,
				fmt.Sprintf("lineage has %d nodes; audit chain intact", p.graph.Len()))
		} else {
			rep.add("transparency", policy.Red, "lineage missing or audit chain broken")
		}
	}
	if pol.RequireModelCard {
		if err := tm.Card.Validate(); err == nil {
			rep.Transparency.CardValid = true
			rep.add("transparency", policy.Green, "model card complete")
		} else {
			rep.add("transparency", policy.Red, err.Error())
		}
	}
	if pol.MinSurrogateFidelity > 0 {
		sur, err := explain.FitSurrogate(tm.Model, tm.Test, 4)
		if err != nil {
			return nil, fmt.Errorf("core: surrogate: %w", err)
		}
		rep.Transparency.SurrogateFidelity = sur.Fidelity
		if sur.Fidelity >= pol.MinSurrogateFidelity {
			rep.add("transparency", policy.Green,
				fmt.Sprintf("surrogate fidelity %.3f meets floor %.2f", sur.Fidelity, pol.MinSurrogateFidelity))
		} else {
			rep.add("transparency", policy.Amber,
				fmt.Sprintf("surrogate fidelity %.3f below floor %.2f", sur.Fidelity, pol.MinSurrogateFidelity))
		}
	}

	// --- Governance.
	if p.consent != nil {
		rep.add("governance", policy.Green,
			fmt.Sprintf("consent enforced for purpose %q (%d rows denied)", pol.RequiredPurpose, p.deniedRows))
	}

	rep.Overall = policy.WorstGrade(rep.Findings)
	p.audit.Append(p.cfg.Actor, "audit", p.cfg.Name, fmt.Sprintf("overall=%s findings=%d", rep.Overall, len(rep.Findings)))
	return rep, nil
}

func (r *FACTReport) add(dim string, g policy.Grade, msg string) {
	r.Findings = append(r.Findings, policy.Finding{Dimension: dim, Grade: g, Message: msg})
}

func correctionByName(name string) (stats.Correction, bool) {
	switch name {
	case "bonferroni":
		return stats.Bonferroni, true
	case "holm":
		return stats.Holm, true
	case "benjamini-hochberg":
		return stats.BenjaminiHochberg, true
	case "benjamini-yekutieli":
		return stats.BenjaminiYekutieli, true
	default:
		return stats.NoCorrection, false
	}
}

// Render formats the report for humans.
func (r *FACTReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FACT report for pipeline %q — overall %s\n", r.Pipeline, r.Overall)
	fmt.Fprintf(&b, "  fairness: DI=%.3f SPD=%+.3f EOD=%+.3f (protected %s n=%d, reference %s n=%d)\n",
		r.Fairness.Report.DisparateImpact,
		r.Fairness.Report.StatisticalParityDifference,
		r.Fairness.Report.EqualOpportunityDifference,
		r.Fairness.Report.Protected.Group, r.Fairness.Report.Protected.N,
		r.Fairness.Report.Reference.Group, r.Fairness.Report.Reference.N)
	fmt.Fprintf(&b, "  accuracy: %.4f %s; %d hypotheses recorded\n",
		r.Accuracy.Accuracy, r.Accuracy.AccuracyCI, r.Accuracy.TestsRun)
	if r.Confidentiality.BudgetAttached {
		fmt.Fprintf(&b, "  confidentiality: eps spent %.3f (cap %.2f)",
			r.Confidentiality.EpsSpent, r.Confidentiality.EpsTotalCap)
		if r.Confidentiality.ReleaseMinK > 0 {
			fmt.Fprintf(&b, "; release min class %d", r.Confidentiality.ReleaseMinK)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  transparency: %d lineage nodes, audit intact=%v, surrogate fidelity %.3f\n",
		r.Transparency.LineageNodes, r.Transparency.AuditIntact, r.Transparency.SurrogateFidelity)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  [%s] %-15s %s\n", f.Grade, f.Dimension+":", f.Message)
	}
	return b.String()
}
