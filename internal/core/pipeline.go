// Package core implements the paper's envisioned system: a data-science
// pipeline that is responsible *by design*. A Pipeline carries, alongside
// the data, the four FACT safeguards as first-class machinery:
//
//   - Fairness: group metrics evaluated on every trained model, with
//     optional mitigation built into training (FACT Q1).
//   - Accuracy: every estimate ships with a confidence interval, and all
//     hypothesis tests flow through a ledger that enforces
//     multiple-testing correction (FACT Q2).
//   - Confidentiality: consent-based row filtering before any processing
//     and a privacy-budget accountant for every DP release (FACT Q3).
//   - Transparency: every step appends to a lineage DAG and a
//     hash-chained audit log; models carry cards and are explained by
//     measured-fidelity surrogates (FACT Q4).
//
// Audit evaluates the pipeline against a declarative policy.FACTPolicy
// and grades each dimension Green/Amber/Red — the "green data science"
// gauge of Section 3.
package core

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/frame"
	"github.com/responsible-data-science/rds/internal/policy"
	"github.com/responsible-data-science/rds/internal/privacy"
	"github.com/responsible-data-science/rds/internal/provenance"
	"github.com/responsible-data-science/rds/internal/rng"
	"github.com/responsible-data-science/rds/internal/stats"
)

// Config parameterizes a pipeline.
type Config struct {
	Name   string
	Policy policy.FACTPolicy
	Seed   uint64 // drives every stochastic step; recorded in provenance
	Actor  string // who runs the pipeline (audit log attribution)
	// Shards is the goroutine count for the sharded execution engine
	// (internal/exec) Audit's row-scans run on; 0 selects
	// runtime.GOMAXPROCS. Audit results are shard-invariant: Shards
	// changes wall-clock time, never the report.
	Shards int
}

// Pipeline is a responsible-by-design data-science pipeline.
type Pipeline struct {
	cfg        Config
	data       *frame.Frame
	graph      *provenance.Graph
	audit      *provenance.AuditLog
	ledger     *stats.HypothesisLedger
	budget     *privacy.Budget
	consent    *policy.ConsentLedger
	subjectCol string
	release    *privacy.AnonymizeResult // last published micro-data, if any
	deniedRows int
	stage      int
	lastNode   string
	src        *rng.Source
}

// New creates a pipeline with the given configuration.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: pipeline needs a name")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Actor == "" {
		cfg.Actor = "pipeline"
	}
	return &Pipeline{
		cfg:    cfg,
		graph:  provenance.NewGraph(),
		audit:  provenance.NewAuditLog(),
		ledger: &stats.HypothesisLedger{},
		src:    rng.New(cfg.Seed),
	}, nil
}

// AttachConsent wires a consent ledger; Load will then drop rows whose
// subject (named column) has not consented to the policy's purpose, and
// rows of erased subjects.
func (p *Pipeline) AttachConsent(ledger *policy.ConsentLedger, subjectColumn string) {
	p.consent = ledger
	p.subjectCol = subjectColumn
}

// AttachBudget wires a privacy-budget accountant. DP releases made
// through the pipeline (or by callers sharing the budget) are then
// visible to Audit.
func (p *Pipeline) AttachBudget(b *privacy.Budget) { p.budget = b }

// Budget returns the attached accountant (nil if none).
func (p *Pipeline) Budget() *privacy.Budget { return p.budget }

// Lineage returns the provenance graph.
func (p *Pipeline) Lineage() *provenance.Graph { return p.graph }

// AuditLog returns the hash-chained event log.
func (p *Pipeline) AuditLog() *provenance.AuditLog { return p.audit }

// Ledger returns the hypothesis ledger.
func (p *Pipeline) Ledger() *stats.HypothesisLedger { return p.ledger }

// Frame returns the current working data.
func (p *Pipeline) Frame() *frame.Frame { return p.data }

// DeniedRows reports how many rows consent filtering removed.
func (p *Pipeline) DeniedRows() int { return p.deniedRows }

// Load ingests a frame as the pipeline's working data, applying consent
// filtering when a ledger is attached, and records provenance.
func (p *Pipeline) Load(name string, f *frame.Frame) error {
	if f == nil || f.NumRows() == 0 {
		return fmt.Errorf("core: Load %q: empty frame", name)
	}
	working := f
	if p.consent != nil {
		if p.cfg.Policy.RequiredPurpose == "" {
			return fmt.Errorf("core: consent ledger attached but policy has no RequiredPurpose")
		}
		col, err := f.Col(p.subjectCol)
		if err != nil {
			return fmt.Errorf("core: consent filtering: %w", err)
		}
		before := f.NumRows()
		working = f.Filter(func(i int) bool {
			return !col.IsNull(i) && p.consent.HasConsent(col.Str(i), p.cfg.Policy.RequiredPurpose)
		})
		p.deniedRows = before - working.NumRows()
		if working.NumRows() == 0 {
			return fmt.Errorf("core: consent filtering removed every row (purpose %q)", p.cfg.Policy.RequiredPurpose)
		}
	}
	hash, err := provenance.HashFrame(working)
	if err != nil {
		return err
	}
	id := p.nextID("load")
	if _, err := p.graph.Add(id, provenance.KindDataset, name, hash, nil, map[string]string{
		"rows": fmt.Sprintf("%d", working.NumRows()),
		"seed": fmt.Sprintf("%d", p.cfg.Seed),
	}); err != nil {
		return err
	}
	p.audit.Append(p.cfg.Actor, "load", name,
		fmt.Sprintf("rows=%d denied=%d", working.NumRows(), p.deniedRows))
	p.data = working
	p.lastNode = id
	return nil
}

// Transform applies fn to the working frame as a recorded pipeline step.
func (p *Pipeline) Transform(name string, fn func(*frame.Frame) (*frame.Frame, error)) error {
	if p.data == nil {
		return fmt.Errorf("core: Transform %q before Load", name)
	}
	out, err := fn(p.data)
	if err != nil {
		p.audit.Append(p.cfg.Actor, "transform-failed", name, err.Error())
		return fmt.Errorf("core: transform %q: %w", name, err)
	}
	if out == nil || out.NumRows() == 0 {
		return fmt.Errorf("core: transform %q produced an empty frame", name)
	}
	hash, err := provenance.HashFrame(out)
	if err != nil {
		return err
	}
	id := p.nextID("transform")
	if _, err := p.graph.Add(id, provenance.KindTransform, name, hash, []string{p.lastNode}, nil); err != nil {
		return err
	}
	p.audit.Append(p.cfg.Actor, "transform", name, fmt.Sprintf("rows=%d", out.NumRows()))
	p.data = out
	p.lastNode = id
	return nil
}

// RecordHypothesis logs one hypothesis test (name, p-value) with the
// pipeline's ledger, so Audit can enforce correction.
func (p *Pipeline) RecordHypothesis(name string, pvalue float64) {
	p.ledger.Record(name, pvalue)
	p.audit.Append(p.cfg.Actor, "hypothesis", name, fmt.Sprintf("p=%.6g", pvalue))
}

// RecordRelease registers a k-anonymized micro-data publication so Audit
// can check it against the policy's MinKAnonymity.
func (p *Pipeline) RecordRelease(res *privacy.AnonymizeResult) {
	p.release = res
	id := p.nextID("release")
	hash, err := provenance.HashFrame(res.Data)
	if err != nil {
		hash = ""
	}
	_, _ = p.graph.Add(id, provenance.KindReport, "micro-data release", hash, p.inputsOrNone(), map[string]string{
		"min_class": fmt.Sprintf("%d", res.MinClassSize),
	})
	p.audit.Append(p.cfg.Actor, "release", "micro-data",
		fmt.Sprintf("classes=%d min_class=%d loss=%.3f", res.Classes, res.MinClassSize, res.InformationLoss))
}

func (p *Pipeline) inputsOrNone() []string {
	if p.lastNode == "" {
		return nil
	}
	return []string{p.lastNode}
}

func (p *Pipeline) nextID(kind string) string {
	p.stage++
	return fmt.Sprintf("%s-%02d-%s", p.cfg.Name, p.stage, kind)
}
