package ml

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

// linearlySeparable builds a 2-feature dataset where y = 1 iff
// x0 + x1 > 0, with a margin controlled by gap.
func linearlySeparable(n int, seed uint64) *Dataset {
	src := rng.New(seed)
	d := &Dataset{Features: []string{"x0", "x1"}}
	for i := 0; i < n; i++ {
		x0 := src.Normal(0, 1)
		x1 := src.Normal(0, 1)
		y := 0.0
		if x0+x1 > 0 {
			y = 1
		}
		d.X = append(d.X, []float64{x0, x1})
		d.Y = append(d.Y, y)
	}
	return d
}

// noisyNonlinear builds an XOR-ish dataset a linear model cannot fit.
func noisyNonlinear(n int, seed uint64) *Dataset {
	src := rng.New(seed)
	d := &Dataset{Features: []string{"x0", "x1"}}
	for i := 0; i < n; i++ {
		x0 := src.Float64()*2 - 1
		x1 := src.Float64()*2 - 1
		y := 0.0
		if (x0 > 0) != (x1 > 0) {
			y = 1
		}
		d.X = append(d.X, []float64{x0, x1})
		d.Y = append(d.Y, y)
	}
	return d
}

func accuracyOn(t *testing.T, c Classifier, d *Dataset) float64 {
	t.Helper()
	acc, err := Accuracy(d.Y, PredictAll(c, d.X))
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestLogisticLearnsSeparableData(t *testing.T) {
	train := linearlySeparable(800, 1)
	test := linearlySeparable(400, 2)
	m, err := TrainLogistic(train, LogisticConfig{Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, m, test); acc < 0.95 {
		t.Fatalf("logistic accuracy = %v on separable data", acc)
	}
	// The learned direction must be positive on both features.
	if m.Weights[0] <= 0 || m.Weights[1] <= 0 {
		t.Fatalf("learned weights wrong sign: %v", m.Weights)
	}
	coefs := m.Coefficients()
	if coefs["x0"] != m.Weights[0] {
		t.Fatal("Coefficients map wrong")
	}
}

func TestLogisticRejectsBadTargets(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}}, Y: []float64{2}, Features: []string{"x"}}
	if _, err := TrainLogistic(d, LogisticConfig{}); err == nil {
		t.Fatal("non-binary target accepted")
	}
	if _, err := TrainLogistic(&Dataset{Features: []string{"x"}}, LogisticConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestLogisticSampleWeights(t *testing.T) {
	// Duplicate-by-weight equivalence: weighting a row by 3 should move
	// the decision boundary like including it 3 times.
	base := linearlySeparable(200, 3)
	weighted := base.Clone()
	weighted.Weights = make([]float64, weighted.N())
	for i := range weighted.Weights {
		weighted.Weights[i] = 1
		if weighted.Y[i] == 1 {
			weighted.Weights[i] = 5 // overweight positives
		}
	}
	m0, err := TrainLogistic(base, LogisticConfig{Epochs: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := TrainLogistic(weighted, LogisticConfig{Epochs: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Overweighting positives should raise predicted probabilities on
	// average.
	var p0, p1 float64
	for _, x := range base.X {
		p0 += m0.PredictProba(x)
		p1 += m1.PredictProba(x)
	}
	if p1 <= p0 {
		t.Fatalf("positive overweighting lowered mean probability: %v vs %v", p1/200, p0/200)
	}
}

func TestLogisticDeterministic(t *testing.T) {
	d := linearlySeparable(300, 5)
	m1, _ := TrainLogistic(d, LogisticConfig{Seed: 9})
	m2, _ := TrainLogistic(d, LogisticConfig{Seed: 9})
	for j := range m1.Weights {
		if m1.Weights[j] != m2.Weights[j] {
			t.Fatal("training not deterministic for equal seeds")
		}
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if Sigmoid(100) <= 0.999 || Sigmoid(-100) >= 0.001 {
		t.Fatal("sigmoid saturation wrong")
	}
	// Numerical stability in both tails.
	if math.IsNaN(Sigmoid(-1000)) || math.IsNaN(Sigmoid(1000)) {
		t.Fatal("sigmoid overflow")
	}
}

func TestLinearRecoversCoefficients(t *testing.T) {
	src := rng.New(11)
	d := &Dataset{Features: []string{"a", "b"}}
	for i := 0; i < 500; i++ {
		a := src.Normal(0, 1)
		b := src.Normal(0, 1)
		y := 3*a - 2*b + 5 + src.Normal(0, 0.01)
		d.X = append(d.X, []float64{a, b})
		d.Y = append(d.Y, y)
	}
	m, err := TrainLinear(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 0.01 || math.Abs(m.Weights[1]+2) > 0.01 || math.Abs(m.Bias-5) > 0.01 {
		t.Fatalf("OLS recovered w=%v b=%v", m.Weights, m.Bias)
	}
	if r2 := m.RSquared(d); r2 < 0.999 {
		t.Fatalf("R^2 = %v", r2)
	}
}

func TestLinearCollinearNeedsRidge(t *testing.T) {
	d := &Dataset{Features: []string{"a", "b"}}
	for i := 0; i < 50; i++ {
		v := float64(i)
		d.X = append(d.X, []float64{v, 2 * v}) // perfectly collinear
		d.Y = append(d.Y, v)
	}
	if _, err := TrainLinear(d, 0); err == nil {
		t.Fatal("singular system solved without ridge")
	}
	if _, err := TrainLinear(d, 0.1); err != nil {
		t.Fatalf("ridge failed on collinear data: %v", err)
	}
}

func TestLinearWeighted(t *testing.T) {
	// Two populations with different slopes; weighting one to zero should
	// recover the other's slope.
	d := &Dataset{Features: []string{"x"}}
	var w []float64
	for i := 0; i < 100; i++ {
		v := float64(i) / 10
		d.X = append(d.X, []float64{v})
		d.Y = append(d.Y, 2*v) // slope 2 population
		w = append(w, 1)
		d.X = append(d.X, []float64{v})
		d.Y = append(d.Y, 5*v) // slope 5 population
		w = append(w, 0)
	}
	d.Weights = w
	m, err := TrainLinear(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-2) > 1e-6 {
		t.Fatalf("weighted OLS slope = %v, want 2", m.Weights[0])
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := TrainLinear(&Dataset{Features: []string{"x"}}, 0); err == nil {
		t.Fatal("empty dataset accepted")
	}
	d := &Dataset{X: [][]float64{{1}}, Y: []float64{1}, Features: []string{"x"}}
	if _, err := TrainLinear(d, -1); err == nil {
		t.Fatal("negative ridge accepted")
	}
}

func TestTreeLearnsNonlinear(t *testing.T) {
	train := noisyNonlinear(1000, 13)
	test := noisyNonlinear(400, 14)
	tree, err := TrainTree(train, TreeConfig{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, tree, test); acc < 0.9 {
		t.Fatalf("tree accuracy on XOR = %v", acc)
	}
	// A linear model cannot fit XOR: tree must beat it clearly.
	lin, err := TrainLogistic(train, LogisticConfig{Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if linAcc := accuracyOn(t, lin, test); linAcc > 0.7 {
		t.Fatalf("logistic fit XOR too well (%v) — test data broken?", linAcc)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	train := noisyNonlinear(500, 15)
	for _, depth := range []int{1, 2, 4} {
		tree, err := TrainTree(train, TreeConfig{MaxDepth: depth, MinLeaf: 1})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Depth() > depth {
			t.Fatalf("tree depth %d exceeds max %d", tree.Depth(), depth)
		}
	}
}

func TestTreePureNodeStops(t *testing.T) {
	d := &Dataset{
		X:        [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}},
		Y:        []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		Features: []string{"x"},
	}
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() || tree.Root.Prob != 1 {
		t.Fatal("pure dataset should give single leaf with prob 1")
	}
}

func TestTreeRules(t *testing.T) {
	train := linearlySeparable(300, 17)
	tree, err := TrainTree(train, TreeConfig{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	rules := tree.Rules()
	if len(rules) != tree.LeafCount() {
		t.Fatalf("%d rules for %d leaves", len(rules), tree.LeafCount())
	}
	for _, r := range rules {
		if len(r) == 0 {
			t.Fatal("empty rule")
		}
	}
}

func TestTreeWeightsShiftSplits(t *testing.T) {
	// All-weight-on-positives should drive leaf probabilities up.
	d := noisyNonlinear(400, 19)
	w := make([]float64, d.N())
	for i := range w {
		if d.Y[i] == 1 {
			w[i] = 10
		} else {
			w[i] = 0.1
		}
	}
	dw := d.Clone()
	dw.Weights = w
	t0, err := TrainTree(d, TreeConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := TrainTree(dw, TreeConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	var p0, p1 float64
	for _, x := range d.X {
		p0 += t0.PredictProba(x)
		p1 += t1.PredictProba(x)
	}
	if p1 <= p0 {
		t.Fatal("positive weighting did not raise tree probabilities")
	}
}

func TestGaussianNB(t *testing.T) {
	train := linearlySeparable(1000, 21)
	test := linearlySeparable(400, 22)
	m, err := TrainGaussianNB(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, m, test); acc < 0.9 {
		t.Fatalf("NB accuracy = %v", acc)
	}
	if m.Prior1 < 0.4 || m.Prior1 > 0.6 {
		t.Fatalf("prior = %v", m.Prior1)
	}
}

func TestGaussianNBSingleClassError(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 1}, Features: []string{"x"}}
	if _, err := TrainGaussianNB(d); err == nil {
		t.Fatal("single-class NB accepted")
	}
}

func TestKNN(t *testing.T) {
	train := noisyNonlinear(800, 23)
	test := noisyNonlinear(300, 24)
	m, err := TrainKNN(train, 7)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, m, test); acc < 0.9 {
		t.Fatalf("kNN accuracy on XOR = %v", acc)
	}
}

func TestKNNNeighborsOrdering(t *testing.T) {
	d := &Dataset{
		X:        [][]float64{{0}, {1}, {2}, {10}},
		Y:        []float64{0, 1, 0, 1},
		Features: []string{"x"},
	}
	m, err := TrainKNN(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	nb := m.Neighbors([]float64{0.9})
	if nb[0] != 1 || nb[1] != 0 {
		t.Fatalf("neighbors = %v", nb)
	}
}

func TestKNNErrors(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}}, Y: []float64{1}, Features: []string{"x"}}
	if _, err := TrainKNN(d, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TrainKNN(d, 2); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestEnsembleBeatsSingleStumpOnXOR(t *testing.T) {
	train := noisyNonlinear(800, 25)
	test := noisyNonlinear(300, 26)
	e, err := TrainEnsemble(train, EnsembleConfig{NumTrees: 15, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, e, test); acc < 0.9 {
		t.Fatalf("ensemble accuracy = %v", acc)
	}
	if e.Size() <= len(e.Trees) {
		t.Fatal("ensemble suspiciously small")
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	d := noisyNonlinear(200, 27)
	e1, _ := TrainEnsemble(d, EnsembleConfig{NumTrees: 5, Seed: 3})
	e2, _ := TrainEnsemble(d, EnsembleConfig{NumTrees: 5, Seed: 3})
	x := []float64{0.2, -0.4}
	if e1.PredictProba(x) != e2.PredictProba(x) {
		t.Fatal("ensemble not deterministic")
	}
}
