package ml

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/responsible-data-science/rds/internal/rng"
)

// Property: AUC is invariant under strictly monotone transforms of the
// scores — it is a pure ranking statistic.
func TestAUCMonotoneInvariance(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		n := 50 + src.Intn(100)
		yTrue := make([]float64, n)
		scores := make([]float64, n)
		pos := 0
		for i := range yTrue {
			if src.Bernoulli(0.5) {
				yTrue[i] = 1
				pos++
			}
			scores[i] = src.Normal(yTrue[i], 1)
		}
		if pos == 0 || pos == n {
			return true
		}
		a1, err1 := AUC(yTrue, scores)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(s/3) + 7 // strictly increasing
		}
		a2, err2 := AUC(yTrue, transformed)
		return err1 == nil && err2 == nil && math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: confusion-matrix cells always partition the sample.
func TestConfusionPartitionProperty(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(200)
		yTrue := make([]float64, n)
		yPred := make([]float64, n)
		for i := range yTrue {
			if src.Bernoulli(0.5) {
				yTrue[i] = 1
			}
			if src.Bernoulli(0.5) {
				yPred[i] = 1
			}
		}
		cm, err := Confusion(yTrue, yPred)
		if err != nil {
			return false
		}
		return cm.TP+cm.FP+cm.TN+cm.FN == float64(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping all predictions swaps TPR with FNR and accuracy with
// its complement.
func TestConfusionFlipProperty(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		n := 10 + src.Intn(100)
		yTrue := make([]float64, n)
		yPred := make([]float64, n)
		flipped := make([]float64, n)
		anyPos, anyNeg := false, false
		for i := range yTrue {
			if src.Bernoulli(0.5) {
				yTrue[i] = 1
				anyPos = true
			} else {
				anyNeg = true
			}
			if src.Bernoulli(0.5) {
				yPred[i] = 1
			}
			flipped[i] = 1 - yPred[i]
		}
		if !anyPos || !anyNeg {
			return true
		}
		a, err1 := Accuracy(yTrue, yPred)
		b, err2 := Accuracy(yTrue, flipped)
		return err1 == nil && err2 == nil && math.Abs(a+b-1) < 1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the standardizer is idempotent — transforming an already
// standardized dataset changes nothing (up to float error).
func TestStandardizerIdempotent(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		n := 10 + src.Intn(50)
		d := &Dataset{Features: []string{"a", "b"}}
		for i := 0; i < n; i++ {
			d.X = append(d.X, []float64{src.Normal(5, 3), src.Normal(-2, 0.5)})
			d.Y = append(d.Y, 0)
		}
		once := FitStandardizer(d).Transform(d)
		twice := FitStandardizer(once).Transform(once)
		for i := range once.X {
			for j := range once.X[i] {
				if math.Abs(once.X[i][j]-twice.X[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: KFold test folds partition the dataset for any k.
func TestKFoldPartitionProperty(t *testing.T) {
	check := func(seed uint64, kRaw, nRaw uint8) bool {
		n := 4 + int(nRaw)%200
		k := 2 + int(kRaw)%8
		if k > n {
			k = n
		}
		d := &Dataset{Features: []string{"x"}}
		for i := 0; i < n; i++ {
			d.X = append(d.X, []float64{float64(i)})
			d.Y = append(d.Y, 0)
		}
		folds, err := KFold(d, k, rng.New(seed))
		if err != nil {
			return false
		}
		seen := map[float64]int{}
		for _, f := range folds {
			for _, row := range f[1].X {
				seen[row[0]]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
