package ml

import "testing"

func TestLinearModelPredictAllRows(t *testing.T) {
	m := &LinearModel{Bias: 1, Weights: []float64{2, -1}}
	got := m.PredictAllRows([][]float64{{1, 0}, {0, 1}, {3, 2}})
	want := []float64{3, 0, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
	if out := m.PredictAllRows(nil); len(out) != 0 {
		t.Errorf("nil input -> %v, want empty", out)
	}
}
