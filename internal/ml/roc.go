package ml

import (
	"fmt"
	"sort"
)

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// ROCCurve computes the ROC operating points of a scored binary
// classifier, one per distinct score (descending), plus the (0,0)
// endpoint. The trapezoidal area under the returned curve equals AUC.
func ROCCurve(yTrue, scores []float64) ([]ROCPoint, error) {
	if len(yTrue) != len(scores) {
		return nil, fmt.Errorf("ml: ROCCurve length mismatch %d vs %d", len(yTrue), len(scores))
	}
	var nPos, nNeg float64
	for _, y := range yTrue {
		switch y {
		case 1:
			nPos++
		case 0:
			nNeg++
		default:
			return nil, fmt.Errorf("ml: ROCCurve labels must be 0/1, got %v", y)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, fmt.Errorf("ml: ROCCurve needs both classes")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	points := []ROCPoint{{Threshold: scores[idx[0]] + 1, TPR: 0, FPR: 0}}
	var tp, fp float64
	i := 0
	for i < len(idx) {
		// Process all rows tied at this score together.
		s := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == s {
			if yTrue[idx[i]] == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		points = append(points, ROCPoint{Threshold: s, TPR: tp / nPos, FPR: fp / nNeg})
	}
	return points, nil
}

// AUCFromCurve integrates a ROC curve with the trapezoid rule.
func AUCFromCurve(points []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// BestYoudenThreshold returns the threshold maximizing TPR - FPR
// (Youden's J), a standard operating-point choice.
func BestYoudenThreshold(points []ROCPoint) (ROCPoint, error) {
	if len(points) == 0 {
		return ROCPoint{}, fmt.Errorf("ml: empty ROC curve")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.TPR-p.FPR > best.TPR-best.FPR {
			best = p
		}
	}
	return best, nil
}
