package ml

import (
	"fmt"
	"math"
)

// GaussianNB is a Gaussian naive Bayes binary classifier: features are
// modeled as independent normals within each class.
type GaussianNB struct {
	Prior1   float64 // P(y=1)
	Mean     [2][]float64
	Variance [2][]float64
	Features []string
}

// TrainGaussianNB fits class-conditional feature means/variances with
// per-sample weights. Variances are floored at a small epsilon to keep
// degenerate (constant) features from producing infinite likelihoods.
func TrainGaussianNB(d *Dataset) (*GaussianNB, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("ml: TrainGaussianNB on empty dataset")
	}
	dim := d.D()
	m := &GaussianNB{Features: append([]string(nil), d.Features...)}
	var wClass [2]float64
	for c := 0; c < 2; c++ {
		m.Mean[c] = make([]float64, dim)
		m.Variance[c] = make([]float64, dim)
	}
	for i, row := range d.X {
		y := int(d.Y[i])
		if d.Y[i] != 0 && d.Y[i] != 1 {
			return nil, fmt.Errorf("ml: TrainGaussianNB target must be 0/1, row %d is %v", i, d.Y[i])
		}
		w := d.Weight(i)
		wClass[y] += w
		for j, v := range row {
			m.Mean[y][j] += w * v
		}
	}
	if wClass[0] == 0 || wClass[1] == 0 {
		return nil, fmt.Errorf("ml: TrainGaussianNB needs both classes present")
	}
	for c := 0; c < 2; c++ {
		for j := range m.Mean[c] {
			m.Mean[c][j] /= wClass[c]
		}
	}
	for i, row := range d.X {
		y := int(d.Y[i])
		w := d.Weight(i)
		for j, v := range row {
			dlt := v - m.Mean[y][j]
			m.Variance[y][j] += w * dlt * dlt
		}
	}
	const varFloor = 1e-9
	for c := 0; c < 2; c++ {
		for j := range m.Variance[c] {
			m.Variance[c][j] = m.Variance[c][j]/wClass[c] + varFloor
		}
	}
	m.Prior1 = wClass[1] / (wClass[0] + wClass[1])
	return m, nil
}

// PredictProba returns P(y=1 | x) via Bayes' rule in log space.
func (m *GaussianNB) PredictProba(x []float64) float64 {
	log1 := math.Log(m.Prior1)
	log0 := math.Log(1 - m.Prior1)
	for j, v := range x {
		log1 += logNormPDF(v, m.Mean[1][j], m.Variance[1][j])
		log0 += logNormPDF(v, m.Mean[0][j], m.Variance[0][j])
	}
	// Normalize stably.
	maxLog := math.Max(log0, log1)
	p1 := math.Exp(log1 - maxLog)
	p0 := math.Exp(log0 - maxLog)
	return p1 / (p0 + p1)
}

func logNormPDF(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5*(math.Log(2*math.Pi*variance)) - d*d/(2*variance)
}
