package ml

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

func TestROCCurveEndpoints(t *testing.T) {
	yTrue := []float64{0, 0, 1, 1}
	scores := []float64{0.1, 0.4, 0.35, 0.8}
	curve, err := ROCCurve(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Fatalf("curve does not start at origin: %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("curve does not end at (1,1): %+v", last)
	}
	// Monotone non-decreasing in both axes.
	for i := 1; i < len(curve); i++ {
		if curve[i].TPR < curve[i-1].TPR || curve[i].FPR < curve[i-1].FPR {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
}

func TestROCCurveAreaMatchesAUC(t *testing.T) {
	src := rng.New(61)
	n := 2000
	yTrue := make([]float64, n)
	scores := make([]float64, n)
	for i := range yTrue {
		if src.Bernoulli(0.4) {
			yTrue[i] = 1
			scores[i] = src.Normal(1, 1)
		} else {
			scores[i] = src.Normal(0, 1)
		}
	}
	curve, err := ROCCurve(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	area := AUCFromCurve(curve)
	auc, err := AUC(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(area-auc) > 1e-9 {
		t.Fatalf("trapezoid area %v != rank AUC %v", area, auc)
	}
}

func TestROCCurveTies(t *testing.T) {
	// All scores identical: the curve is the diagonal (one step), and
	// AUC is 0.5.
	yTrue := []float64{1, 0, 1, 0}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	curve, err := ROCCurve(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("tied curve has %d points, want 2", len(curve))
	}
	if a := AUCFromCurve(curve); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v", a)
	}
}

func TestROCCurveErrors(t *testing.T) {
	if _, err := ROCCurve([]float64{1, 1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("single-class accepted")
	}
	if _, err := ROCCurve([]float64{1}, []float64{0.5, 0.1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ROCCurve([]float64{2}, []float64{0.5}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestBestYoudenThreshold(t *testing.T) {
	yTrue := []float64{0, 0, 0, 1, 1, 1}
	scores := []float64{0.1, 0.2, 0.3, 0.7, 0.8, 0.9}
	curve, err := ROCCurve(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestYoudenThreshold(curve)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect separation: best point has TPR 1, FPR 0.
	if best.TPR != 1 || best.FPR != 0 {
		t.Fatalf("best point %+v", best)
	}
	if _, err := BestYoudenThreshold(nil); err == nil {
		t.Fatal("empty curve accepted")
	}
}
