package ml

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/rng"
)

// TrainTestSplit partitions the dataset into train and test subsets with
// the given test fraction, shuffled by src.
func TrainTestSplit(d *Dataset, testFraction float64, src *rng.Source) (train, test *Dataset, err error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("ml: testFraction must be in (0,1), got %v", testFraction)
	}
	n := d.N()
	if n < 2 {
		return nil, nil, fmt.Errorf("ml: cannot split %d rows", n)
	}
	perm := src.Perm(n)
	nTest := int(float64(n) * testFraction)
	if nTest == 0 {
		nTest = 1
	}
	if nTest == n {
		nTest = n - 1
	}
	return d.Subset(perm[nTest:]), d.Subset(perm[:nTest]), nil
}

// StratifiedSplit splits while preserving the 0/1 label ratio in both
// parts, which keeps small-minority datasets (the fairness workloads)
// from producing single-class test sets.
func StratifiedSplit(d *Dataset, testFraction float64, src *rng.Source) (train, test *Dataset, err error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("ml: testFraction must be in (0,1), got %v", testFraction)
	}
	var pos, neg []int
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) < 2 || len(neg) < 2 {
		return nil, nil, fmt.Errorf("ml: StratifiedSplit needs >=2 rows of each class (pos=%d neg=%d)", len(pos), len(neg))
	}
	var trainIdx, testIdx []int
	for _, class := range [][]int{pos, neg} {
		src.Shuffle(len(class), func(a, b int) { class[a], class[b] = class[b], class[a] })
		k := int(float64(len(class)) * testFraction)
		if k == 0 {
			k = 1
		}
		if k == len(class) {
			k = len(class) - 1
		}
		testIdx = append(testIdx, class[:k]...)
		trainIdx = append(trainIdx, class[k:]...)
	}
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// KFold yields k cross-validation folds as (train, test) pairs, shuffled
// by src. Every row appears in exactly one test fold.
func KFold(d *Dataset, k int, src *rng.Source) ([][2]*Dataset, error) {
	n := d.N()
	if k < 2 || k > n {
		return nil, fmt.Errorf("ml: KFold k=%d out of range [2,%d]", k, n)
	}
	perm := src.Perm(n)
	folds := make([][2]*Dataset, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		testIdx := perm[lo:hi]
		trainIdx := make([]int, 0, n-(hi-lo))
		trainIdx = append(trainIdx, perm[:lo]...)
		trainIdx = append(trainIdx, perm[hi:]...)
		folds[f] = [2]*Dataset{d.Subset(trainIdx), d.Subset(testIdx)}
	}
	return folds, nil
}

// CrossValidateAccuracy trains with the supplied constructor on each fold
// and returns the per-fold test accuracies. The constructor receives the
// training fold; returning an error aborts the whole evaluation.
func CrossValidateAccuracy(d *Dataset, k int, src *rng.Source, train func(*Dataset) (Classifier, error)) ([]float64, error) {
	folds, err := KFold(d, k, src)
	if err != nil {
		return nil, err
	}
	accs := make([]float64, len(folds))
	for i, fold := range folds {
		model, err := train(fold[0])
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d training: %w", i, err)
		}
		acc, err := Accuracy(fold[1].Y, PredictAll(model, fold[1].X))
		if err != nil {
			return nil, err
		}
		accs[i] = acc
	}
	return accs, nil
}
