package ml

import (
	"fmt"
	"math"
)

// LinearModel is an ordinary-least-squares (optionally ridge) regression
// model fit by solving the normal equations.
type LinearModel struct {
	Weights  []float64
	Bias     float64
	Features []string
}

// TrainLinear fits y = Xw + b by (weighted) least squares with an optional
// ridge penalty l2 >= 0 on the weights (not the intercept).
func TrainLinear(d *Dataset, l2 float64) (*LinearModel, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("ml: TrainLinear on empty dataset")
	}
	if l2 < 0 {
		return nil, fmt.Errorf("ml: negative ridge penalty %v", l2)
	}
	dim := d.D() + 1 // augmented with intercept column
	// Normal equations: (A^T W A + l2 I') w = A^T W y.
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	aty := make([]float64, dim)
	row := make([]float64, dim)
	for i, x := range d.X {
		w := d.Weight(i)
		if w == 0 {
			continue
		}
		copy(row, x)
		row[dim-1] = 1 // intercept
		for a := 0; a < dim; a++ {
			va := row[a] * w
			aty[a] += va * d.Y[i]
			for b := a; b < dim; b++ {
				ata[a][b] += va * row[b]
			}
		}
	}
	for a := 0; a < dim; a++ {
		for b := 0; b < a; b++ {
			ata[a][b] = ata[b][a]
		}
	}
	for a := 0; a < dim-1; a++ { // no penalty on intercept
		ata[a][a] += l2
	}
	sol, err := solveLinearSystem(ata, aty)
	if err != nil {
		return nil, fmt.Errorf("ml: TrainLinear: %w (features collinear? add ridge)", err)
	}
	return &LinearModel{
		Weights:  sol[:dim-1],
		Bias:     sol[dim-1],
		Features: append([]string(nil), d.Features...),
	}, nil
}

// Predict returns the fitted value for x.
func (m *LinearModel) Predict(x []float64) float64 {
	v := m.Bias
	for j, w := range m.Weights {
		v += w * x[j]
	}
	return v
}

// PredictAllRows returns fitted values for all rows.
func (m *LinearModel) PredictAllRows(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// RSquared returns the coefficient of determination on the given data.
func (m *LinearModel) RSquared(d *Dataset) float64 {
	if d.N() == 0 {
		return math.NaN()
	}
	var meanY float64
	for _, y := range d.Y {
		meanY += y
	}
	meanY /= float64(d.N())
	var ssRes, ssTot float64
	for i, x := range d.X {
		r := d.Y[i] - m.Predict(x)
		ssRes += r * r
		t := d.Y[i] - meanY
		ssTot += t * t
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// solveLinearSystem solves Ax=b by Gaussian elimination with partial
// pivoting. A and b are mutated. Returns an error on (near-)singularity.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("singular matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}
