package ml

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
)

func toyFrame() *frame.Frame {
	return frame.MustNew(
		frame.NewFloat64("income", []float64{10, 20, 30, 40}),
		frame.NewString("region", []string{"n", "s", "n", "e"}),
		frame.NewBool("urban", []bool{true, false, true, true}),
		frame.NewInt64("approved", []int64{1, 0, 1, 0}),
	)
}

func TestFromFrameBasics(t *testing.T) {
	ds, err := FromFrame(toyFrame(), "approved")
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 4 {
		t.Fatalf("N = %d", ds.N())
	}
	// income, region=s, region=e (first level "n" dropped), urban.
	if ds.D() != 4 {
		t.Fatalf("D = %d: %v", ds.D(), ds.Features)
	}
	if ds.Y[0] != 1 || ds.Y[1] != 0 {
		t.Fatal("targets wrong")
	}
	j, err := ds.FeatureIndex("region=s")
	if err != nil {
		t.Fatal(err)
	}
	if ds.X[1][j] != 1 || ds.X[0][j] != 0 {
		t.Fatal("one-hot encoding wrong")
	}
	u, err := ds.FeatureIndex("urban")
	if err != nil {
		t.Fatal(err)
	}
	if ds.X[0][u] != 1 || ds.X[1][u] != 0 {
		t.Fatal("bool encoding wrong")
	}
}

func TestFromFrameExclude(t *testing.T) {
	ds, err := FromFrame(toyFrame(), "approved", "region")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ds.Features {
		if f == "region=s" || f == "region=e" {
			t.Fatalf("excluded column leaked: %v", ds.Features)
		}
	}
	if _, err := FromFrame(toyFrame(), "approved", "ghost"); err == nil {
		t.Fatal("unknown exclude accepted")
	}
}

func TestFromFrameBoolTarget(t *testing.T) {
	f := frame.MustNew(
		frame.NewFloat64("x", []float64{1, 2}),
		frame.NewBool("y", []bool{true, false}),
	)
	ds, err := FromFrame(f, "y")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Y[0] != 1 || ds.Y[1] != 0 {
		t.Fatal("bool target wrong")
	}
}

func TestFromFrameRejectsStringTarget(t *testing.T) {
	f := frame.MustNew(
		frame.NewFloat64("x", []float64{1}),
		frame.NewString("y", []string{"yes"}),
	)
	if _, err := FromFrame(f, "y"); err == nil {
		t.Fatal("string target accepted")
	}
}

func TestFromFrameRejectsNulls(t *testing.T) {
	x := frame.NewFloat64("x", []float64{1, 2})
	x.SetNull(0)
	f := frame.MustNew(x, frame.NewInt64("y", []int64{0, 1}))
	if _, err := FromFrame(f, "y"); err == nil {
		t.Fatal("null feature accepted")
	}
	y := frame.NewInt64("y", []int64{0, 1})
	y.SetNull(1)
	g := frame.MustNew(frame.NewFloat64("x", []float64{1, 2}), y)
	if _, err := FromFrame(g, "y"); err == nil {
		t.Fatal("null target accepted")
	}
}

func TestFromFrameSkipsConstantStrings(t *testing.T) {
	f := frame.MustNew(
		frame.NewString("const", []string{"same", "same"}),
		frame.NewFloat64("x", []float64{1, 2}),
		frame.NewInt64("y", []int64{0, 1}),
	)
	ds, err := FromFrame(f, "y")
	if err != nil {
		t.Fatal(err)
	}
	if ds.D() != 1 {
		t.Fatalf("constant string column not skipped: %v", ds.Features)
	}
}

func TestValidate(t *testing.T) {
	good := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{0, 1}, Features: []string{"x"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{X: [][]float64{{1}}, Y: []float64{0, 1}, Features: []string{"x"}}
	if bad.Validate() == nil {
		t.Fatal("row/target mismatch accepted")
	}
	nan := &Dataset{X: [][]float64{{math.NaN()}}, Y: []float64{0}, Features: []string{"x"}}
	if nan.Validate() == nil {
		t.Fatal("NaN feature accepted")
	}
	negW := &Dataset{X: [][]float64{{1}}, Y: []float64{0}, Features: []string{"x"}, Weights: []float64{-1}}
	if negW.Validate() == nil {
		t.Fatal("negative weight accepted")
	}
	ragged := &Dataset{X: [][]float64{{1}, {1, 2}}, Y: []float64{0, 1}, Features: []string{"x"}}
	if ragged.Validate() == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestCloneAndSubsetIndependence(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []float64{0, 1, 0}, Features: []string{"x"}, Weights: []float64{1, 2, 3}}
	c := ds.Clone()
	c.X[0][0] = 99
	c.Weights[0] = 99
	if ds.X[0][0] != 1 || ds.Weights[0] != 1 {
		t.Fatal("Clone shares memory")
	}
	s := ds.Subset([]int{2, 0})
	if s.N() != 2 || s.X[0][0] != 3 || s.Y[1] != 0 || s.Weights[0] != 3 {
		t.Fatal("Subset wrong")
	}
	s.X[0][0] = 42
	if ds.X[2][0] != 3 {
		t.Fatal("Subset shares memory")
	}
}

func TestWeightDefault(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}}, Y: []float64{0}, Features: []string{"x"}}
	if ds.Weight(0) != 1 {
		t.Fatal("default weight not 1")
	}
}

func TestColumn(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1, 10}, {2, 20}}, Y: []float64{0, 1}, Features: []string{"a", "b"}}
	col := ds.Column(1)
	if col[0] != 10 || col[1] != 20 {
		t.Fatal("Column wrong")
	}
}

func TestStandardizer(t *testing.T) {
	ds := &Dataset{
		X:        [][]float64{{1, 100}, {2, 200}, {3, 300}},
		Y:        []float64{0, 1, 0},
		Features: []string{"a", "b"},
	}
	s := FitStandardizer(ds)
	out := s.Transform(ds)
	for j := 0; j < 2; j++ {
		var mean, variance float64
		for i := range out.X {
			mean += out.X[i][j]
		}
		mean /= 3
		for i := range out.X {
			d := out.X[i][j] - mean
			variance += d * d
		}
		variance /= 3
		if math.Abs(mean) > 1e-12 || math.Abs(variance-1) > 1e-12 {
			t.Fatalf("feature %d standardized to mean=%v var=%v", j, mean, variance)
		}
	}
	// Original untouched.
	if ds.X[0][0] != 1 {
		t.Fatal("Transform mutated input")
	}
	row := s.TransformRow([]float64{2, 200})
	if math.Abs(row[0]) > 1e-12 {
		t.Fatal("TransformRow wrong")
	}
}

func TestStandardizerConstantFeature(t *testing.T) {
	ds := &Dataset{X: [][]float64{{5}, {5}}, Y: []float64{0, 1}, Features: []string{"c"}}
	s := FitStandardizer(ds)
	out := s.Transform(ds)
	if out.X[0][0] != 0 || math.IsNaN(out.X[1][0]) {
		t.Fatal("constant feature mishandled")
	}
}
