package ml

import (
	"fmt"
	"sort"
	"strings"
)

// TreeConfig holds CART training hyperparameters.
type TreeConfig struct {
	MaxDepth   int     // maximum tree depth (default 6)
	MinLeaf    int     // minimum samples per leaf (default 5)
	MinGain    float64 // minimum Gini gain to split (default 1e-7)
	FeatureSub int     // number of features considered per split; 0 = all
	Seed       uint64  // seed for feature subsampling
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.MinGain <= 0 {
		c.MinGain = 1e-7
	}
	return c
}

// TreeNode is one node of a CART tree. Leaves have Left == Right == nil.
type TreeNode struct {
	Feature   int     // split feature index (internal nodes)
	Threshold float64 // split threshold: x[Feature] <= Threshold goes left
	Left      *TreeNode
	Right     *TreeNode
	Prob      float64 // P(y=1) at this node (leaves; also kept for internals)
	Samples   float64 // total sample weight at the node
}

// IsLeaf reports whether the node is terminal.
func (n *TreeNode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a trained CART binary classifier.
type Tree struct {
	Root     *TreeNode
	Features []string
	cfg      TreeConfig
}

// TrainTree fits a CART classification tree minimizing weighted Gini
// impurity. Targets must be 0/1; sample weights are honoured.
func TrainTree(d *Dataset, cfg TreeConfig) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("ml: TrainTree on empty dataset")
	}
	for i, y := range d.Y {
		if y != 0 && y != 1 {
			return nil, fmt.Errorf("ml: TrainTree target must be 0/1, row %d is %v", i, y)
		}
	}
	cfg = cfg.withDefaults()
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{Features: append([]string(nil), d.Features...), cfg: cfg}
	t.Root = t.grow(d, idx, 0)
	return t, nil
}

func nodeStats(d *Dataset, idx []int) (wTotal, wPos float64) {
	for _, i := range idx {
		w := d.Weight(i)
		wTotal += w
		if d.Y[i] == 1 {
			wPos += w
		}
	}
	return
}

func gini(wTotal, wPos float64) float64 {
	if wTotal == 0 {
		return 0
	}
	p := wPos / wTotal
	return 2 * p * (1 - p)
}

func (t *Tree) grow(d *Dataset, idx []int, depth int) *TreeNode {
	wTotal, wPos := nodeStats(d, idx)
	node := &TreeNode{Samples: wTotal}
	if wTotal > 0 {
		node.Prob = wPos / wTotal
	}
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf || wPos == 0 || wPos == wTotal {
		return node
	}
	bestGain := t.cfg.MinGain
	bestFeature := -1
	var bestThreshold float64
	parentImpurity := gini(wTotal, wPos)

	order := make([]int, len(idx))
	for f := 0; f < d.D(); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		// Scan split points between distinct values.
		var leftW, leftPos float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			w := d.Weight(i)
			leftW += w
			if d.Y[i] == 1 {
				leftPos += w
			}
			v, next := d.X[i][f], d.X[order[k+1]][f]
			if v == next {
				continue
			}
			if k+1 < t.cfg.MinLeaf || len(order)-k-1 < t.cfg.MinLeaf {
				continue
			}
			rightW := wTotal - leftW
			rightPos := wPos - leftPos
			if leftW == 0 || rightW == 0 {
				continue
			}
			childImpurity := (leftW*gini(leftW, leftPos) + rightW*gini(rightW, rightPos)) / wTotal
			gain := parentImpurity - childImpurity
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (v + next) / 2
			}
		}
	}
	if bestFeature < 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.Feature = bestFeature
	node.Threshold = bestThreshold
	node.Left = t.grow(d, left, depth+1)
	node.Right = t.grow(d, right, depth+1)
	return node
}

// PredictProba returns the leaf probability for x.
func (t *Tree) PredictProba(x []float64) float64 {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Prob
}

// Depth returns the depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return nodeDepth(t.Root) }

func nodeDepth(n *TreeNode) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := nodeDepth(n.Left), nodeDepth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return countLeaves(t.Root) }

func countLeaves(n *TreeNode) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Rules renders the tree as human-readable decision rules, the tree's
// native transparency artifact (FACT Q4).
func (t *Tree) Rules() []string {
	var out []string
	var walk func(n *TreeNode, path []string)
	walk = func(n *TreeNode, path []string) {
		if n.IsLeaf() {
			cond := strings.Join(path, " AND ")
			if cond == "" {
				cond = "TRUE"
			}
			out = append(out, fmt.Sprintf("IF %s THEN P(y=1)=%.3f (n=%.0f)", cond, n.Prob, n.Samples))
			return
		}
		name := fmt.Sprintf("x%d", n.Feature)
		if n.Feature < len(t.Features) {
			name = t.Features[n.Feature]
		}
		walk(n.Left, append(path, fmt.Sprintf("%s <= %.4g", name, n.Threshold)))
		walk(n.Right, append(path[:len(path):len(path)], fmt.Sprintf("%s > %.4g", name, n.Threshold)))
	}
	walk(t.Root, nil)
	return out
}
