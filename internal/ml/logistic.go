package ml

import (
	"fmt"
	"math"

	"github.com/responsible-data-science/rds/internal/rng"
)

// Classifier is a binary probabilistic classifier. PredictProba returns
// P(y=1 | x). Implementations must be deterministic once trained.
type Classifier interface {
	PredictProba(x []float64) float64
}

// Predict thresholds a classifier's probability at 0.5.
func Predict(c Classifier, x []float64) float64 {
	if c.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictAll returns hard 0/1 predictions for every row.
func PredictAll(c Classifier, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = Predict(c, x)
	}
	return out
}

// PredictProbaAll returns P(y=1|x) for every row.
func PredictProbaAll(c Classifier, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = c.PredictProba(x)
	}
	return out
}

// LogisticConfig holds the hyperparameters of logistic-regression training.
type LogisticConfig struct {
	LearningRate float64 // SGD step size (default 0.1)
	Epochs       int     // passes over the data (default 100)
	L2           float64 // ridge penalty (default 0)
	BatchSize    int     // minibatch size (default 32)
	Seed         uint64  // shuffling seed (default 1)
}

func (c LogisticConfig) withDefaults() LogisticConfig {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Logistic is a trained logistic-regression model.
type Logistic struct {
	Weights  []float64 // per-feature coefficients
	Bias     float64
	Features []string
}

// Sigmoid is the logistic link function.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// TrainLogistic fits binary logistic regression by minibatch SGD with
// optional L2 regularization and per-sample weights. Targets must be 0/1.
func TrainLogistic(d *Dataset, cfg LogisticConfig) (*Logistic, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("ml: TrainLogistic on empty dataset")
	}
	for i, y := range d.Y {
		if y != 0 && y != 1 {
			return nil, fmt.Errorf("ml: TrainLogistic target must be 0/1, row %d is %v", i, y)
		}
	}
	cfg = cfg.withDefaults()
	// Standardize internally for SGD stability on raw feature scales,
	// then fold the affine transform back into the returned weights so the
	// model predicts over the caller's original feature space.
	std := FitStandardizer(d)
	d = std.Transform(d)
	dim := d.D()
	m := &Logistic{Weights: make([]float64, dim), Features: append([]string(nil), d.Features...)}
	src := rng.New(cfg.Seed)
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = i
	}
	gw := make([]float64, dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		// Decaying step size stabilizes late epochs.
		lr := cfg.LearningRate / (1 + 0.01*float64(epoch))
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for j := range gw {
				gw[j] = 0
			}
			gb := 0.0
			var batchW float64
			for _, i := range idx[start:end] {
				w := d.Weight(i)
				if w == 0 {
					continue
				}
				p := m.PredictProba(d.X[i])
				err := (p - d.Y[i]) * w
				for j, xj := range d.X[i] {
					gw[j] += err * xj
				}
				gb += err
				batchW += w
			}
			if batchW == 0 {
				continue
			}
			for j := range m.Weights {
				m.Weights[j] -= lr * (gw[j]/batchW + cfg.L2*m.Weights[j])
			}
			m.Bias -= lr * gb / batchW
		}
	}
	// Un-standardize: w'_j = w_j / s_j, b' = b - sum_j w_j m_j / s_j.
	for j := range m.Weights {
		m.Bias -= m.Weights[j] * std.Mean[j] / std.Scale[j]
		m.Weights[j] /= std.Scale[j]
	}
	return m, nil
}

// PredictProba returns P(y=1 | x).
func (m *Logistic) PredictProba(x []float64) float64 {
	z := m.Bias
	for j, w := range m.Weights {
		z += w * x[j]
	}
	return Sigmoid(z)
}

// Coefficients returns a copy of feature-name → coefficient, the model's
// native transparency artifact.
func (m *Logistic) Coefficients() map[string]float64 {
	out := make(map[string]float64, len(m.Weights))
	for j, f := range m.Features {
		out[f] = m.Weights[j]
	}
	return out
}
