package ml

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

func TestConfusionAndDerivedMetrics(t *testing.T) {
	yTrue := []float64{1, 1, 1, 1, 0, 0, 0, 0, 0, 0}
	yPred := []float64{1, 1, 1, 0, 1, 0, 0, 0, 0, 0}
	cm, err := Confusion(yTrue, yPred)
	if err != nil {
		t.Fatal(err)
	}
	if cm.TP != 3 || cm.FN != 1 || cm.FP != 1 || cm.TN != 5 {
		t.Fatalf("confusion = %+v", cm)
	}
	if math.Abs(cm.Accuracy()-0.8) > 1e-12 {
		t.Errorf("accuracy = %v", cm.Accuracy())
	}
	if math.Abs(cm.Precision()-0.75) > 1e-12 {
		t.Errorf("precision = %v", cm.Precision())
	}
	if math.Abs(cm.Recall()-0.75) > 1e-12 {
		t.Errorf("recall = %v", cm.Recall())
	}
	if math.Abs(cm.F1()-0.75) > 1e-12 {
		t.Errorf("f1 = %v", cm.F1())
	}
	if math.Abs(cm.FalsePositiveRate()-1.0/6) > 1e-12 {
		t.Errorf("fpr = %v", cm.FalsePositiveRate())
	}
	if math.Abs(cm.PositiveRate()-0.4) > 1e-12 {
		t.Errorf("positive rate = %v", cm.PositiveRate())
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := Confusion([]float64{1}, []float64{1, 0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Confusion([]float64{2}, []float64{1}); err == nil {
		t.Fatal("non-binary label accepted")
	}
}

func TestConfusionDegenerateNaNs(t *testing.T) {
	cm, err := Confusion([]float64{0, 0}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(cm.Precision()) || !math.IsNaN(cm.Recall()) {
		t.Fatal("degenerate precision/recall should be NaN")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	yTrue := []float64{0, 0, 1, 1}
	perfect := []float64{0.1, 0.2, 0.8, 0.9}
	auc, err := AUC(yTrue, perfect)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	inverted := []float64{0.9, 0.8, 0.2, 0.1}
	auc, _ = AUC(yTrue, inverted)
	if auc != 0 {
		t.Fatalf("inverted AUC = %v", auc)
	}
	constant := []float64{0.5, 0.5, 0.5, 0.5}
	auc, _ = AUC(yTrue, constant)
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("constant-score AUC = %v (ties should midrank)", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	src := rng.New(31)
	n := 5000
	yTrue := make([]float64, n)
	scores := make([]float64, n)
	for i := range yTrue {
		if src.Bernoulli(0.5) {
			yTrue[i] = 1
		}
		scores[i] = src.Float64()
	}
	auc, err := AUC(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC = %v", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1, 1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("single-class AUC accepted")
	}
	if _, err := AUC([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := AUC([]float64{0.5}, []float64{0.5}); err == nil {
		t.Fatal("non-binary label accepted")
	}
}

func TestLogLoss(t *testing.T) {
	// Perfect confident predictions give ~0 loss.
	ll, err := LogLoss([]float64{1, 0}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ll > 1e-10 {
		t.Fatalf("perfect log loss = %v", ll)
	}
	// p=0.5 everywhere gives log 2.
	ll, _ = LogLoss([]float64{1, 0, 1}, []float64{0.5, 0.5, 0.5})
	if math.Abs(ll-math.Log(2)) > 1e-12 {
		t.Fatalf("uniform log loss = %v", ll)
	}
	// Confident wrong answers are heavily penalized but finite.
	ll, _ = LogLoss([]float64{1}, []float64{0})
	if math.IsInf(ll, 0) || ll < 10 {
		t.Fatalf("clipped log loss = %v", ll)
	}
	if _, err := LogLoss(nil, nil); err == nil {
		t.Fatal("empty log loss accepted")
	}
}

func TestBrierScore(t *testing.T) {
	bs, err := BrierScore([]float64{1, 0}, []float64{0.8, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.2*0.2 + 0.3*0.3) / 2
	if math.Abs(bs-want) > 1e-12 {
		t.Fatalf("brier = %v, want %v", bs, want)
	}
}

func TestCalibrationCurve(t *testing.T) {
	// Predictions match observed frequencies perfectly.
	var yTrue, probs []float64
	for i := 0; i < 100; i++ {
		probs = append(probs, 0.25)
		if i < 25 {
			yTrue = append(yTrue, 1)
		} else {
			yTrue = append(yTrue, 0)
		}
	}
	curve, err := CalibrationCurve(yTrue, probs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if curve[1].Count != 100 {
		t.Fatalf("bin occupancy wrong: %+v", curve)
	}
	if math.Abs(curve[1].ObservedRate-0.25) > 1e-12 {
		t.Fatalf("observed rate = %v", curve[1].ObservedRate)
	}
	ece, err := ExpectedCalibrationError(yTrue, probs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ece > 1e-12 {
		t.Fatalf("perfectly calibrated ECE = %v", ece)
	}
}

func TestCalibrationCurveEdges(t *testing.T) {
	// p=1.0 must land in the last bin, not out of range.
	curve, err := CalibrationCurve([]float64{1}, []float64{1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if curve[9].Count != 1 {
		t.Fatal("p=1 not in last bin")
	}
	if _, err := CalibrationCurve([]float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestExpectedCalibrationErrorDetectsMiscalibration(t *testing.T) {
	var yTrue, probs []float64
	for i := 0; i < 100; i++ {
		probs = append(probs, 0.9) // overconfident
		if i < 50 {
			yTrue = append(yTrue, 1)
		} else {
			yTrue = append(yTrue, 0)
		}
	}
	ece, err := ExpectedCalibrationError(yTrue, probs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ece-0.4) > 1e-9 {
		t.Fatalf("ECE = %v, want 0.4", ece)
	}
}

func TestSplitBasics(t *testing.T) {
	d := linearlySeparable(100, 33)
	src := rng.New(1)
	train, test, err := TrainTestSplit(d, 0.25, src)
	if err != nil {
		t.Fatal(err)
	}
	if train.N()+test.N() != 100 || test.N() != 25 {
		t.Fatalf("split sizes %d/%d", train.N(), test.N())
	}
	if _, _, err := TrainTestSplit(d, 0, src); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, _, err := TrainTestSplit(d, 1, src); err == nil {
		t.Fatal("unit fraction accepted")
	}
}

func TestStratifiedSplitKeepsRatio(t *testing.T) {
	// 10% positive rate.
	d := &Dataset{Features: []string{"x"}}
	for i := 0; i < 200; i++ {
		y := 0.0
		if i%10 == 0 {
			y = 1
		}
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, y)
	}
	src := rng.New(2)
	train, test, err := StratifiedSplit(d, 0.3, src)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(ds *Dataset) float64 {
		var p float64
		for _, y := range ds.Y {
			p += y
		}
		return p / float64(ds.N())
	}
	if math.Abs(rate(train)-0.1) > 0.02 || math.Abs(rate(test)-0.1) > 0.02 {
		t.Fatalf("stratified rates train=%v test=%v", rate(train), rate(test))
	}
}

func TestKFoldPartition(t *testing.T) {
	d := linearlySeparable(103, 35)
	src := rng.New(3)
	folds, err := KFold(d, 5, src)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range folds {
		total += f[1].N()
		if f[0].N()+f[1].N() != 103 {
			t.Fatal("fold does not partition")
		}
	}
	if total != 103 {
		t.Fatalf("test folds cover %d rows, want 103", total)
	}
	if _, err := KFold(d, 1, src); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestCrossValidateAccuracy(t *testing.T) {
	d := linearlySeparable(400, 37)
	src := rng.New(4)
	accs, err := CrossValidateAccuracy(d, 4, src, func(train *Dataset) (Classifier, error) {
		return TrainLogistic(train, LogisticConfig{Epochs: 40})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 4 {
		t.Fatalf("folds = %d", len(accs))
	}
	for _, a := range accs {
		if a < 0.85 {
			t.Fatalf("fold accuracy = %v", a)
		}
	}
}
