package ml

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/rng"
)

// Ensemble is a bagged collection of deep CART trees trained on bootstrap
// resamples with feature bagging. In the transparency experiments it plays
// the paper's "deep learning black box": a model whose individual decision
// cannot be rationalized by reading its parameters, which is exactly what
// the explain package's surrogates are then asked to approximate.
type Ensemble struct {
	Trees    []*Tree
	Features []string
}

// EnsembleConfig holds bagging hyperparameters.
type EnsembleConfig struct {
	NumTrees int    // default 25
	MaxDepth int    // per-tree depth (default 8)
	MinLeaf  int    // per-tree minimum leaf size (default 2)
	Seed     uint64 // bootstrap seed (default 1)
}

func (c EnsembleConfig) withDefaults() EnsembleConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 25
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TrainEnsemble fits a bagged tree ensemble.
func TrainEnsemble(d *Dataset, cfg EnsembleConfig) (*Ensemble, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("ml: TrainEnsemble on empty dataset")
	}
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed)
	e := &Ensemble{Features: append([]string(nil), d.Features...)}
	n := d.N()
	for t := 0; t < cfg.NumTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = src.Intn(n)
		}
		boot := d.Subset(idx)
		tree, err := TrainTree(boot, TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf})
		if err != nil {
			return nil, fmt.Errorf("ml: ensemble tree %d: %w", t, err)
		}
		e.Trees = append(e.Trees, tree)
	}
	return e, nil
}

// PredictProba averages the member trees' probabilities.
func (e *Ensemble) PredictProba(x []float64) float64 {
	var sum float64
	for _, t := range e.Trees {
		sum += t.PredictProba(x)
	}
	return sum / float64(len(e.Trees))
}

// Size returns the total number of leaves across all member trees — a
// crude complexity measure used to quantify "unreadability" in the
// transparency experiment.
func (e *Ensemble) Size() int {
	var n int
	for _, t := range e.Trees {
		n += t.LeafCount()
	}
	return n
}
