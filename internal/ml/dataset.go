// Package ml implements the machine-learning substrate of the toolkit:
// dataset encoding from frames, linear and logistic regression, CART
// decision trees, naive Bayes, k-nearest-neighbour, a bagged ensemble used
// as the "black box" in transparency experiments, evaluation metrics, and
// cross-validation. Models support per-sample weights, which is what
// fairness pre-processing (reweighing) plugs into.
//
// Everything is implemented from first principles on the standard library;
// the paper's point is that pipeline safeguards must wrap the *whole*
// model lifecycle, which requires the models to live inside the toolkit
// rather than behind an external service.
package ml

import (
	"fmt"
	"math"

	"github.com/responsible-data-science/rds/internal/frame"
)

// Dataset is a dense numeric design matrix with a binary or continuous
// target and optional per-sample weights.
type Dataset struct {
	X        [][]float64 // n rows, d columns
	Y        []float64   // n targets
	Features []string    // d column names
	Weights  []float64   // nil means uniform
}

// N returns the number of rows.
func (d *Dataset) N() int { return len(d.X) }

// D returns the number of features.
func (d *Dataset) D() int {
	if len(d.X) == 0 {
		return len(d.Features)
	}
	return len(d.X[0])
}

// Weight returns the weight of row i (1 when unweighted).
func (d *Dataset) Weight(i int) float64 {
	if d.Weights == nil {
		return 1
	}
	return d.Weights[i]
}

// Validate checks the structural invariants of the dataset.
func (d *Dataset) Validate() error {
	n := len(d.X)
	if len(d.Y) != n {
		return fmt.Errorf("ml: %d rows but %d targets", n, len(d.Y))
	}
	if d.Weights != nil && len(d.Weights) != n {
		return fmt.Errorf("ml: %d rows but %d weights", n, len(d.Weights))
	}
	width := len(d.Features)
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), width)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: row %d feature %d is %v", i, j, v)
			}
		}
	}
	for i, w := range d.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("ml: weight %d is invalid (%v)", i, w)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Y:        append([]float64(nil), d.Y...),
		Features: append([]string(nil), d.Features...),
	}
	c.X = make([][]float64, len(d.X))
	for i, row := range d.X {
		c.X[i] = append([]float64(nil), row...)
	}
	if d.Weights != nil {
		c.Weights = append([]float64(nil), d.Weights...)
	}
	return c
}

// Subset returns the rows at idx as a new dataset (rows copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{Features: append([]string(nil), d.Features...)}
	s.X = make([][]float64, len(idx))
	s.Y = make([]float64, len(idx))
	for j, i := range idx {
		s.X[j] = append([]float64(nil), d.X[i]...)
		s.Y[j] = d.Y[i]
	}
	if d.Weights != nil {
		s.Weights = make([]float64, len(idx))
		for j, i := range idx {
			s.Weights[j] = d.Weights[i]
		}
	}
	return s
}

// FeatureIndex returns the column index of the named feature, or an error.
func (d *Dataset) FeatureIndex(name string) (int, error) {
	for i, f := range d.Features {
		if f == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ml: no feature %q", name)
}

// Column returns a copy of feature column j.
func (d *Dataset) Column(j int) []float64 {
	out := make([]float64, len(d.X))
	for i, row := range d.X {
		out[i] = row[j]
	}
	return out
}

// FromFrame converts a frame into a Dataset. target names the label column
// (numeric or bool). Numeric feature columns pass through; string columns
// are one-hot encoded as name=level (dropping the first level as the
// reference, avoiding collinearity); bool columns become 0/1. Columns
// listed in exclude are skipped — pipelines use this to keep the sensitive
// attribute out of the design matrix while retaining it for auditing.
func FromFrame(f *frame.Frame, target string, exclude ...string) (*Dataset, error) {
	tcol, err := f.Col(target)
	if err != nil {
		return nil, err
	}
	skip := map[string]bool{target: true}
	for _, e := range exclude {
		if !f.Has(e) {
			return nil, fmt.Errorf("ml: exclude column %q not in frame", e)
		}
		skip[e] = true
	}
	n := f.NumRows()
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if tcol.IsNull(i) {
			return nil, fmt.Errorf("ml: target %q has null at row %d", target, i)
		}
		switch tcol.DType() {
		case frame.Bool:
			if tcol.Boolv(i) {
				y[i] = 1
			}
		case frame.Float64, frame.Int64:
			y[i] = tcol.Float(i)
		default:
			return nil, fmt.Errorf("ml: target %q must be numeric or bool, is %s", target, tcol.DType())
		}
	}

	var features []string
	var columns [][]float64
	for _, name := range f.Names() {
		if skip[name] {
			continue
		}
		col := f.MustCol(name)
		switch col.DType() {
		case frame.Float64, frame.Int64:
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				if col.IsNull(i) {
					return nil, fmt.Errorf("ml: feature %q has null at row %d (impute before modeling)", name, i)
				}
				vals[i] = col.Float(i)
			}
			features = append(features, name)
			columns = append(columns, vals)
		case frame.Bool:
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				if col.Boolv(i) {
					vals[i] = 1
				}
			}
			features = append(features, name)
			columns = append(columns, vals)
		case frame.String:
			levels := col.Levels()
			if len(levels) < 2 {
				continue // constant column carries no information
			}
			for _, lv := range levels[1:] {
				vals := make([]float64, n)
				for i := 0; i < n; i++ {
					if !col.IsNull(i) && col.Str(i) == lv {
						vals[i] = 1
					}
				}
				features = append(features, name+"="+lv)
				columns = append(columns, vals)
			}
		}
	}
	ds := &Dataset{Features: features, Y: y}
	ds.X = make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(columns))
		for j := range columns {
			row[j] = columns[j][i]
		}
		ds.X[i] = row
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// Standardizer rescales features to zero mean and unit variance. Fit on
// training data, apply to both splits — fitting on the full dataset leaks
// test information, one of the quiet accuracy sins of Q2.
type Standardizer struct {
	Mean  []float64
	Scale []float64
}

// FitStandardizer computes per-feature means and scales from the dataset.
func FitStandardizer(d *Dataset) *Standardizer {
	dim := d.D()
	s := &Standardizer{Mean: make([]float64, dim), Scale: make([]float64, dim)}
	n := float64(d.N())
	if n == 0 {
		for j := range s.Scale {
			s.Scale[j] = 1
		}
		return s
	}
	for _, row := range d.X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			dlt := v - s.Mean[j]
			s.Scale[j] += dlt * dlt
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] == 0 {
			s.Scale[j] = 1 // constant feature: leave centred
		}
	}
	return s
}

// Transform returns a standardized copy of the dataset.
func (s *Standardizer) Transform(d *Dataset) *Dataset {
	out := d.Clone()
	for i, row := range out.X {
		for j := range row {
			out.X[i][j] = (row[j] - s.Mean[j]) / s.Scale[j]
		}
	}
	return out
}

// TransformRow standardizes a single feature vector in place-copy style.
func (s *Standardizer) TransformRow(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - s.Mean[j]) / s.Scale[j]
	}
	return out
}
