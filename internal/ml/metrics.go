package ml

import (
	"fmt"
	"math"
	"sort"
)

// ConfusionMatrix summarizes binary classification outcomes.
type ConfusionMatrix struct {
	TP, FP, TN, FN float64
}

// Confusion computes the confusion matrix from true labels and hard 0/1
// predictions.
func Confusion(yTrue, yPred []float64) (ConfusionMatrix, error) {
	if len(yTrue) != len(yPred) {
		return ConfusionMatrix{}, fmt.Errorf("ml: Confusion length mismatch %d vs %d", len(yTrue), len(yPred))
	}
	var cm ConfusionMatrix
	for i := range yTrue {
		switch {
		case yTrue[i] == 1 && yPred[i] == 1:
			cm.TP++
		case yTrue[i] == 0 && yPred[i] == 1:
			cm.FP++
		case yTrue[i] == 0 && yPred[i] == 0:
			cm.TN++
		case yTrue[i] == 1 && yPred[i] == 0:
			cm.FN++
		default:
			return ConfusionMatrix{}, fmt.Errorf("ml: non-binary label/prediction at %d: %v/%v", i, yTrue[i], yPred[i])
		}
	}
	return cm, nil
}

// Accuracy is (TP+TN)/total.
func (cm ConfusionMatrix) Accuracy() float64 {
	total := cm.TP + cm.FP + cm.TN + cm.FN
	if total == 0 {
		return math.NaN()
	}
	return (cm.TP + cm.TN) / total
}

// Precision is TP/(TP+FP), NaN when nothing was predicted positive.
func (cm ConfusionMatrix) Precision() float64 {
	if cm.TP+cm.FP == 0 {
		return math.NaN()
	}
	return cm.TP / (cm.TP + cm.FP)
}

// Recall is TP/(TP+FN) (the true-positive rate), NaN with no positives.
func (cm ConfusionMatrix) Recall() float64 {
	if cm.TP+cm.FN == 0 {
		return math.NaN()
	}
	return cm.TP / (cm.TP + cm.FN)
}

// FalsePositiveRate is FP/(FP+TN), NaN with no negatives.
func (cm ConfusionMatrix) FalsePositiveRate() float64 {
	if cm.FP+cm.TN == 0 {
		return math.NaN()
	}
	return cm.FP / (cm.FP + cm.TN)
}

// F1 is the harmonic mean of precision and recall.
func (cm ConfusionMatrix) F1() float64 {
	p, r := cm.Precision(), cm.Recall()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// PositiveRate is the fraction predicted positive — the quantity group
// fairness metrics compare across groups.
func (cm ConfusionMatrix) PositiveRate() float64 {
	total := cm.TP + cm.FP + cm.TN + cm.FN
	if total == 0 {
		return math.NaN()
	}
	return (cm.TP + cm.FP) / total
}

// Accuracy is a convenience wrapper over Confusion().Accuracy().
func Accuracy(yTrue, yPred []float64) (float64, error) {
	cm, err := Confusion(yTrue, yPred)
	if err != nil {
		return 0, err
	}
	return cm.Accuracy(), nil
}

// AUC computes the area under the ROC curve from scores, using the
// rank-statistic (Mann-Whitney) formulation with midrank tie handling.
func AUC(yTrue, scores []float64) (float64, error) {
	if len(yTrue) != len(scores) {
		return 0, fmt.Errorf("ml: AUC length mismatch %d vs %d", len(yTrue), len(scores))
	}
	var nPos, nNeg float64
	for _, y := range yTrue {
		switch y {
		case 1:
			nPos++
		case 0:
			nNeg++
		default:
			return 0, fmt.Errorf("ml: AUC labels must be 0/1, got %v", y)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("ml: AUC needs both classes (pos=%v neg=%v)", nPos, nNeg)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Midranks.
	ranks := make([]float64, len(scores))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var rankSum float64
	for i, y := range yTrue {
		if y == 1 {
			rankSum += ranks[i]
		}
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg), nil
}

// LogLoss computes the cross-entropy of probabilistic predictions, with
// probabilities clipped away from {0,1} to keep the loss finite.
func LogLoss(yTrue, probs []float64) (float64, error) {
	if len(yTrue) != len(probs) {
		return 0, fmt.Errorf("ml: LogLoss length mismatch")
	}
	if len(yTrue) == 0 {
		return 0, fmt.Errorf("ml: LogLoss on empty input")
	}
	const eps = 1e-12
	var sum float64
	for i, y := range yTrue {
		p := math.Min(1-eps, math.Max(eps, probs[i]))
		if y == 1 {
			sum -= math.Log(p)
		} else {
			sum -= math.Log(1 - p)
		}
	}
	return sum / float64(len(yTrue)), nil
}

// BrierScore is the mean squared error of probabilistic predictions.
func BrierScore(yTrue, probs []float64) (float64, error) {
	if len(yTrue) != len(probs) {
		return 0, fmt.Errorf("ml: BrierScore length mismatch")
	}
	if len(yTrue) == 0 {
		return 0, fmt.Errorf("ml: BrierScore on empty input")
	}
	var sum float64
	for i := range yTrue {
		d := probs[i] - yTrue[i]
		sum += d * d
	}
	return sum / float64(len(yTrue)), nil
}

// CalibrationBin is one bucket of a reliability diagram.
type CalibrationBin struct {
	Lower, Upper  float64 // predicted-probability range
	MeanPredicted float64
	ObservedRate  float64
	Count         int
}

// CalibrationCurve buckets predictions into equal-width bins and reports
// predicted vs. observed rates — the reliability diagram behind "answers
// with a guaranteed level of accuracy" (Q2) and per-group calibration
// fairness (Q1).
func CalibrationCurve(yTrue, probs []float64, bins int) ([]CalibrationBin, error) {
	if len(yTrue) != len(probs) {
		return nil, fmt.Errorf("ml: CalibrationCurve length mismatch")
	}
	if bins <= 0 {
		return nil, fmt.Errorf("ml: CalibrationCurve needs positive bins")
	}
	out := make([]CalibrationBin, bins)
	for b := range out {
		out[b].Lower = float64(b) / float64(bins)
		out[b].Upper = float64(b+1) / float64(bins)
	}
	sums := make([]float64, bins)
	obs := make([]float64, bins)
	for i, p := range probs {
		b := int(p * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		out[b].Count++
		sums[b] += p
		obs[b] += yTrue[i]
	}
	for b := range out {
		if out[b].Count > 0 {
			out[b].MeanPredicted = sums[b] / float64(out[b].Count)
			out[b].ObservedRate = obs[b] / float64(out[b].Count)
		} else {
			out[b].MeanPredicted = math.NaN()
			out[b].ObservedRate = math.NaN()
		}
	}
	return out, nil
}

// ExpectedCalibrationError is the count-weighted mean |predicted-observed|
// over the reliability bins.
func ExpectedCalibrationError(yTrue, probs []float64, bins int) (float64, error) {
	curve, err := CalibrationCurve(yTrue, probs, bins)
	if err != nil {
		return 0, err
	}
	var total, weighted float64
	for _, b := range curve {
		if b.Count == 0 {
			continue
		}
		weighted += float64(b.Count) * math.Abs(b.MeanPredicted-b.ObservedRate)
		total += float64(b.Count)
	}
	if total == 0 {
		return math.NaN(), nil
	}
	return weighted / total, nil
}
