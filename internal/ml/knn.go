package ml

import (
	"fmt"
	"math"
	"sort"
)

// KNN is a k-nearest-neighbour binary classifier over Euclidean distance.
// It is used both as a baseline model and by the fairness package's
// individual-consistency metric ("similar individuals should receive
// similar decisions").
type KNN struct {
	K int
	X [][]float64
	Y []float64
}

// TrainKNN stores the training set (lazily evaluated model). k must be
// positive and no larger than the training-set size.
func TrainKNN(d *Dataset, k int) (*KNN, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 || k > d.N() {
		return nil, fmt.Errorf("ml: TrainKNN k=%d out of range [1,%d]", k, d.N())
	}
	m := &KNN{K: k}
	m.X = make([][]float64, d.N())
	for i, row := range d.X {
		m.X[i] = append([]float64(nil), row...)
	}
	m.Y = append([]float64(nil), d.Y...)
	return m, nil
}

// Neighbors returns the indices of the k nearest training rows to x,
// closest first (deterministic tie-break by index).
func (m *KNN) Neighbors(x []float64) []int {
	type pair struct {
		d float64
		i int
	}
	ds := make([]pair, len(m.X))
	for i, row := range m.X {
		ds[i] = pair{euclidean(x, row), i}
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].d != ds[b].d {
			return ds[a].d < ds[b].d
		}
		return ds[a].i < ds[b].i
	})
	out := make([]int, m.K)
	for j := 0; j < m.K; j++ {
		out[j] = ds[j].i
	}
	return out
}

// PredictProba returns the fraction of positive labels among the k nearest
// neighbours.
func (m *KNN) PredictProba(x []float64) float64 {
	var pos float64
	for _, i := range m.Neighbors(x) {
		pos += m.Y[i]
	}
	return pos / float64(m.K)
}

func euclidean(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return math.Sqrt(s)
}
