package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "mean")
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, PopVariance(xs), 4, 1e-12, "pop variance")
	approx(t, Variance(xs), 32.0/7, 1e-12, "sample variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "stddev")
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("variance of single value should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	approx(t, Min(xs), -1, 0, "min")
	approx(t, Max(xs), 7, 0, "max")
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("min/max of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 5, 0, "q1")
	approx(t, Median(xs), 3, 0, "median odd")
	approx(t, Median([]float64{1, 2, 3, 4}), 2.5, 1e-12, "median even")
	approx(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("invalid quantile args should be NaN")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileWithinRange(t *testing.T) {
	check := func(xs []float64, qr uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q := float64(qr) / 255
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	approx(t, Correlation(xs, ys), 1, 1e-12, "perfect positive")
	zs := []float64{10, 8, 6, 4, 2}
	approx(t, Correlation(xs, zs), -1, 1e-12, "perfect negative")
	if !math.IsNaN(Correlation(xs, []float64{1, 1, 1, 1, 1})) {
		t.Error("correlation with constant should be NaN")
	}
	if !math.IsNaN(Covariance(xs, ys[:3])) {
		t.Error("mismatched lengths should be NaN")
	}
	approx(t, Covariance(xs, ys), 5, 1e-12, "covariance")
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone nonlinear
	approx(t, SpearmanCorrelation(xs, ys), 1, 1e-12, "spearman monotone")
	zs := []float64{5, 4, 3, 2, 1}
	approx(t, SpearmanCorrelation(xs, zs), -1, 1e-12, "spearman inverse")
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	approx(t, SpearmanCorrelation(xs, ys), 1, 1e-12, "spearman ties")
}

func TestRankWithTies(t *testing.T) {
	ranks := rankWithTies([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		approx(t, ranks[i], want[i], 1e-12, "rank")
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	approx(t, s.Mean, 3, 1e-12, "describe mean")
	approx(t, s.Median, 3, 1e-12, "describe median")
	approx(t, s.Min, 1, 0, "describe min")
	approx(t, s.Max, 5, 0, "describe max")
}
