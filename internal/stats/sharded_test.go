package stats

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

func bitsEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestDescribeShardedInvariance is the merge-correctness property test
// for every descriptive statistic: across sizes (including empty,
// single-row, and fewer-rows-than-shards layouts) the sharded summary
// at N shards is bit-identical to the 1-shard plan, and the exactly
// mergeable statistics (count, min, max, quantiles) are bit-identical
// to the sequential Describe.
func TestDescribeShardedInvariance(t *testing.T) {
	src := rng.New(42)
	for _, n := range []int{0, 1, 2, 7, 100, 8192, 8193, 20000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Normal(3, 10)
		}
		seq := Describe(xs)
		one := DescribeSharded(xs, 1)
		for _, shards := range []int{1, 2, 4, 16, 64} {
			got := DescribeSharded(xs, shards)
			// Shard invariance: bit-identical to the 1-shard plan.
			if got.N != one.N ||
				!bitsEq(got.Mean, one.Mean) || !bitsEq(got.StdDev, one.StdDev) ||
				!bitsEq(got.Min, one.Min) || !bitsEq(got.Max, one.Max) ||
				!bitsEq(got.Q25, one.Q25) || !bitsEq(got.Median, one.Median) ||
				!bitsEq(got.Q75, one.Q75) {
				t.Errorf("n=%d shards=%d: summary diverged from 1-shard plan:\n got %+v\nwant %+v",
					n, shards, got, one)
			}
			// Exact statistics also match the sequential Describe bitwise.
			if got.N != seq.N || !bitsEq(got.Min, seq.Min) || !bitsEq(got.Max, seq.Max) ||
				!bitsEq(got.Q25, seq.Q25) || !bitsEq(got.Median, seq.Median) ||
				!bitsEq(got.Q75, seq.Q75) {
				t.Errorf("n=%d shards=%d: exact stats diverged from Describe:\n got %+v\nwant %+v",
					n, shards, got, seq)
			}
			// Merged-tree statistics agree with the sequential fold to
			// float tolerance.
			if n >= 2 {
				if math.Abs(got.Mean-seq.Mean) > 1e-9*math.Max(1, math.Abs(seq.Mean)) {
					t.Errorf("n=%d shards=%d: mean %v vs sequential %v", n, shards, got.Mean, seq.Mean)
				}
				if math.Abs(got.StdDev-seq.StdDev) > 1e-9*math.Max(1, seq.StdDev) {
					t.Errorf("n=%d shards=%d: stddev %v vs sequential %v", n, shards, got.StdDev, seq.StdDev)
				}
			}
		}
	}
}

// TestDescribeShardedNaN: NaN values must not corrupt the parallel
// merge. The merged sorted sample keeps sort.Float64s ordering (NaNs
// first) so quantiles match the sequential Describe exactly, and
// Min/Max skip NaNs (even one leading a chunk) instead of dropping
// that chunk's extrema.
func TestDescribeShardedNaN(t *testing.T) {
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64((i*7919)%10000) + 5 // values in [5, 10004]
	}
	xs[9000] = math.NaN() // mid-chunk NaN
	xs[8192] = math.NaN() // first element of chunk 2
	xs[8193] = 1          // true minimum, right after the chunk-leading NaN
	seq := Describe(xs)
	for _, shards := range []int{1, 4, 16} {
		got := DescribeSharded(xs, shards)
		if !bitsEq(got.Q25, seq.Q25) || !bitsEq(got.Median, seq.Median) || !bitsEq(got.Q75, seq.Q75) {
			t.Errorf("shards=%d: quantiles with NaN diverged: %+v vs %+v", shards, got, seq)
		}
		if got.Min != 1 {
			t.Errorf("shards=%d: Min = %v, want 1 (NaN must not drop a chunk's extrema)", shards, got.Min)
		}
		if got.Max != seq.Max {
			t.Errorf("shards=%d: Max = %v, want %v", shards, got.Max, seq.Max)
		}
		if !math.IsNaN(got.Mean) {
			t.Errorf("shards=%d: Mean = %v, want NaN propagation", shards, got.Mean)
		}
	}
	// All-NaN input: extrema stay NaN.
	all := DescribeSharded([]float64{math.NaN(), math.NaN()}, 4)
	if !math.IsNaN(all.Min) || !math.IsNaN(all.Max) {
		t.Errorf("all-NaN extrema = %v/%v, want NaN", all.Min, all.Max)
	}
}

// TestQuantileShardedMatchesSequential: the parallel sort feeds the
// shared interpolation, so every quantile matches Quantile bit for bit.
func TestQuantileShardedMatchesSequential(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 10001)
	for i := range xs {
		xs[i] = src.Float64() * 1000
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		want := Quantile(xs, q)
		for _, shards := range []int{1, 3, 8} {
			if got := QuantileSharded(xs, q, shards); !bitsEq(got, want) {
				t.Errorf("q=%v shards=%d: %v vs sequential %v", q, shards, got, want)
			}
		}
	}
	if !math.IsNaN(QuantileSharded(nil, 0.5, 4)) || !math.IsNaN(QuantileSharded(xs, -1, 4)) {
		t.Error("invalid inputs should yield NaN")
	}
}
