// Package stats implements the statistical substrate for FACT Q2
// ("accuracy: data science without guesswork"): descriptive statistics,
// hypothesis tests with exact p-values, bootstrap and binomial confidence
// intervals, multiple-testing corrections, and a Simpson's-paradox
// detector. The paper's position is that every data-science answer must
// carry meta-information about its accuracy; this package is where that
// meta-information is computed.
package stats

import "math"

// lgamma returns log|Gamma(x)| without the sign (we only evaluate at
// positive arguments in this package).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegularizedGammaP computes the regularized lower incomplete gamma
// function P(a, x) = gamma(a,x)/Gamma(a), for a > 0, x >= 0.
// P is the CDF of the Gamma(a,1) distribution; chi-square CDFs reduce
// to it. The implementation follows Numerical Recipes: series expansion
// for x < a+1, continued fraction otherwise.
func RegularizedGammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
}

func gammaQContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
}

// RegularizedBeta computes the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1]. It is the CDF of the Beta(a,b)
// distribution; Student-t and F distribution CDFs reduce to it.
func RegularizedBeta(x, a, b float64) float64 {
	if a <= 0 || b <= 0 || x < 0 || x > 1 || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	bt := math.Exp(lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betaContinuedFraction(x, a, b) / a
	}
	return 1 - bt*betaContinuedFraction(1-x, b, a)/b
}

func betaContinuedFraction(x, a, b float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// NormalCDF returns the standard normal cumulative distribution Phi(z).
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the inverse standard normal CDF using the
// Acklam/Wichura rational approximation refined by one Halley step,
// accurate to ~1e-15 over (0, 1). Panics outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic("stats: NormalQuantile requires p in (0,1)")
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// StudentTCDF returns P(T <= t) for Student's t with df degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegularizedBeta(x, df/2, 0.5)
	if t > 0 {
		return 1 - p
	}
	return p
}

// ChiSquareCDF returns P(X <= x) for a chi-square with df degrees of
// freedom.
func ChiSquareCDF(x, df float64) float64 {
	if x < 0 {
		return 0
	}
	return RegularizedGammaP(df/2, x/2)
}

// FCDF returns P(F <= f) for the F distribution with (d1, d2) degrees of
// freedom.
func FCDF(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 0
	}
	x := d1 * f / (d1*f + d2)
	return RegularizedBeta(x, d1/2, d2/2)
}
