package stats

import (
	"fmt"
	"math"

	"github.com/responsible-data-science/rds/internal/rng"
)

// Interval is a two-sided confidence interval with its nominal level.
// Every estimator in the toolkit that reports a point value can also
// report an Interval; the paper's Q2 demands that results ship with
// explicit accuracy meta-information rather than bare numbers.
type Interval struct {
	Lower, Upper float64
	Level        float64 // e.g. 0.95
}

// Width returns Upper - Lower.
func (iv Interval) Width() float64 { return iv.Upper - iv.Lower }

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lower && v <= iv.Upper }

// String renders the interval.
func (iv Interval) String() string {
	return fmt.Sprintf("[%.6g, %.6g] @%.0f%%", iv.Lower, iv.Upper, iv.Level*100)
}

// MeanCI returns the t-based confidence interval for the mean of xs at the
// given level (0 < level < 1). Errors for n < 2.
func MeanCI(xs []float64, level float64) (Interval, error) {
	if len(xs) < 2 {
		return Interval{}, fmt.Errorf("stats: MeanCI needs >=2 observations, got %d", len(xs))
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: MeanCI level must be in (0,1), got %v", level)
	}
	m := Mean(xs)
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	df := float64(len(xs) - 1)
	t := studentTQuantile(1-(1-level)/2, df)
	return Interval{Lower: m - t*se, Upper: m + t*se, Level: level}, nil
}

// studentTQuantile inverts StudentTCDF by bisection. df >= 1 assumed.
func studentTQuantile(p, df float64) float64 {
	if p == 0.5 {
		return 0
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// WilsonCI returns the Wilson score interval for a binomial proportion
// with the given number of successes out of n trials. It behaves sanely at
// the boundaries (0 or n successes), unlike the Wald interval.
func WilsonCI(successes, n int, level float64) (Interval, error) {
	if n <= 0 {
		return Interval{}, fmt.Errorf("stats: WilsonCI needs positive n, got %d", n)
	}
	if successes < 0 || successes > n {
		return Interval{}, fmt.Errorf("stats: WilsonCI successes %d out of range [0,%d]", successes, n)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: WilsonCI level must be in (0,1), got %v", level)
	}
	z := NormalQuantile(1 - (1-level)/2)
	p := float64(successes) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	centre := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lower := math.Max(0, centre-half)
	upper := math.Min(1, centre+half)
	// Pin exact boundaries: at 0 or n successes the score bound is exactly
	// the boundary, but the closed form leaves float residue.
	if successes == 0 {
		lower = 0
	}
	if successes == n {
		upper = 1
	}
	return Interval{Lower: lower, Upper: upper, Level: level}, nil
}

// ClopperPearsonCI returns the exact (conservative) Clopper-Pearson
// interval for a binomial proportion, by inverting the Beta CDF.
func ClopperPearsonCI(successes, n int, level float64) (Interval, error) {
	if n <= 0 {
		return Interval{}, fmt.Errorf("stats: ClopperPearsonCI needs positive n, got %d", n)
	}
	if successes < 0 || successes > n {
		return Interval{}, fmt.Errorf("stats: ClopperPearsonCI successes %d out of range [0,%d]", successes, n)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: ClopperPearsonCI level must be in (0,1), got %v", level)
	}
	alpha := 1 - level
	var lower, upper float64
	if successes == 0 {
		lower = 0
	} else {
		lower = betaQuantile(alpha/2, float64(successes), float64(n-successes+1))
	}
	if successes == n {
		upper = 1
	} else {
		upper = betaQuantile(1-alpha/2, float64(successes+1), float64(n-successes))
	}
	return Interval{Lower: lower, Upper: upper, Level: level}, nil
}

// betaQuantile inverts RegularizedBeta by bisection.
func betaQuantile(p, a, b float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if RegularizedBeta(mid, a, b) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// BootstrapCI computes a percentile bootstrap confidence interval for an
// arbitrary statistic of the sample, using resamples resampling rounds.
func BootstrapCI(xs []float64, statistic func([]float64) float64, resamples int, level float64, src *rng.Source) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, fmt.Errorf("stats: BootstrapCI needs non-empty sample")
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: BootstrapCI needs >=10 resamples, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: BootstrapCI level must be in (0,1), got %v", level)
	}
	vals := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[src.Intn(len(xs))]
		}
		vals[r] = statistic(buf)
	}
	alpha := 1 - level
	return Interval{
		Lower: Quantile(vals, alpha/2),
		Upper: Quantile(vals, 1-alpha/2),
		Level: level,
	}, nil
}

// StandardError returns the standard error of the mean.
func StandardError(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}
