package stats

import (
	"testing"

	"github.com/responsible-data-science/rds/internal/frame"
)

// berkeleyStyle builds a dataset with a planted Simpson reversal, modeled
// on the Berkeley admissions structure: within each department women are
// admitted at a higher rate, but women apply mostly to the competitive
// department, so the aggregate rate is lower.
func berkeleyStyle() *frame.Frame {
	var treat []float64 // 1 = group A (e.g. female applicants)
	var outcome []float64
	var dept []string
	add := func(t float64, d string, admitted, rejected int) {
		for i := 0; i < admitted; i++ {
			treat = append(treat, t)
			outcome = append(outcome, 1)
			dept = append(dept, d)
		}
		for i := 0; i < rejected; i++ {
			treat = append(treat, t)
			outcome = append(outcome, 0)
			dept = append(dept, d)
		}
	}
	// Easy department: A admits 95/100 of group1, 80/100 of group0...
	// group1 mostly applies to hard dept.
	add(1, "easy", 19, 1)   // group1 easy: 95%
	add(0, "easy", 160, 40) // group0 easy: 80%
	add(1, "hard", 90, 210) // group1 hard: 30%
	add(0, "hard", 10, 40)  // group0 hard: 20%
	return frame.MustNew(
		frame.NewFloat64("treat", treat),
		frame.NewFloat64("outcome", outcome),
		frame.NewString("dept", dept),
	)
}

func TestSimpsonScanDetectsReversal(t *testing.T) {
	f := berkeleyStyle()
	results, err := SimpsonScan(f, "treat", "outcome", []string{"dept"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	// Within both departments group1 does better...
	for _, s := range r.Strata {
		if s.Direction != PositiveAssoc {
			t.Fatalf("stratum %q direction = %v, want positive", s.Group, s.Direction)
		}
	}
	// ...but in aggregate group1 does worse.
	if r.Aggregate.Direction != NegativeAssoc {
		t.Fatalf("aggregate direction = %v, want negative", r.Aggregate.Direction)
	}
	if !r.Reversed {
		t.Fatal("planted Simpson reversal not detected")
	}
}

func TestSimpsonScanNullData(t *testing.T) {
	// Homogeneous data: no reversal should be reported.
	var treat, outcome []float64
	var g []string
	for i := 0; i < 400; i++ {
		tr := float64(i % 2)
		out := 0.0
		if i%4 < 2 { // outcome independent of treatment
			out = 1
		}
		treat = append(treat, tr)
		outcome = append(outcome, out)
		if i < 200 {
			g = append(g, "x")
		} else {
			g = append(g, "y")
		}
	}
	f := frame.MustNew(
		frame.NewFloat64("treat", treat),
		frame.NewFloat64("outcome", outcome),
		frame.NewString("grp", g),
	)
	results, err := SimpsonScan(f, "treat", "outcome", []string{"grp"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Reversed {
		t.Fatal("false positive reversal on null data")
	}
}

func TestSimpsonScanConsistentTrend(t *testing.T) {
	// Treatment helps everywhere, including aggregate: not a paradox.
	var treat, outcome []float64
	var g []string
	add := func(tr, out float64, grp string, n int) {
		for i := 0; i < n; i++ {
			treat = append(treat, tr)
			outcome = append(outcome, out)
			g = append(g, grp)
		}
	}
	add(1, 1, "a", 80)
	add(1, 0, "a", 20)
	add(0, 1, "a", 50)
	add(0, 0, "a", 50)
	add(1, 1, "b", 70)
	add(1, 0, "b", 30)
	add(0, 1, "b", 40)
	add(0, 0, "b", 60)
	f := frame.MustNew(
		frame.NewFloat64("treat", treat),
		frame.NewFloat64("outcome", outcome),
		frame.NewString("grp", g),
	)
	results, err := SimpsonScan(f, "treat", "outcome", []string{"grp"})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Reversed || r.PartialReversal {
		t.Fatal("consistent trend flagged as reversal")
	}
	if r.Aggregate.Direction != PositiveAssoc {
		t.Fatalf("aggregate = %v", r.Aggregate.Direction)
	}
}

func TestSimpsonScanBoolColumns(t *testing.T) {
	f := frame.MustNew(
		frame.NewBool("treat", []bool{true, true, false, false, true, true, false, false, true, false}),
		frame.NewBool("outcome", []bool{true, false, true, false, true, false, true, false, true, false}),
		frame.NewString("g", []string{"a", "a", "a", "a", "a", "b", "b", "b", "b", "b"}),
	)
	if _, err := SimpsonScan(f, "treat", "outcome", []string{"g"}); err != nil {
		t.Fatalf("bool columns rejected: %v", err)
	}
}

func TestSimpsonScanRejectsNonBinary(t *testing.T) {
	f := frame.MustNew(
		frame.NewFloat64("treat", []float64{0, 1, 2}),
		frame.NewFloat64("outcome", []float64{0, 1, 0}),
		frame.NewString("g", []string{"a", "a", "a"}),
	)
	if _, err := SimpsonScan(f, "treat", "outcome", []string{"g"}); err == nil {
		t.Fatal("non-binary treatment accepted")
	}
}

func TestSimpsonScanUnknownColumns(t *testing.T) {
	f := berkeleyStyle()
	if _, err := SimpsonScan(f, "nope", "outcome", []string{"dept"}); err == nil {
		t.Fatal("unknown treatment column accepted")
	}
	if _, err := SimpsonScan(f, "treat", "outcome", []string{"nope"}); err == nil {
		t.Fatal("unknown confounder accepted")
	}
}

func TestSimpsonScanSkipsTinyStrata(t *testing.T) {
	// A stratum with fewer than minStratum rows must not create noise.
	f := frame.MustNew(
		frame.NewFloat64("treat", []float64{1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0}),
		frame.NewFloat64("outcome", []float64{1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 0, 1}),
		frame.NewString("g", []string{"big", "big", "big", "big", "big", "big", "big", "big", "big", "big", "tiny", "tiny"}),
	)
	results, err := SimpsonScan(f, "treat", "outcome", []string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range results[0].Strata {
		if s.Group == "tiny" {
			t.Fatal("tiny stratum not skipped")
		}
	}
}

func TestAssociationString(t *testing.T) {
	if PositiveAssoc.String() != "positive" || NegativeAssoc.String() != "negative" || NoAssoc.String() != "none" {
		t.Fatal("Association.String wrong")
	}
}
