package stats

import (
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

func TestMannWhitneyDetectsShift(t *testing.T) {
	src := rng.New(101)
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		// Heavy-tailed data: exponential with different rates.
		a[i] = src.Exp(1)
		b[i] = src.Exp(0.4) // larger values
	}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-3 {
		t.Fatalf("clear shift p = %v", res.PValue)
	}
}

func TestMannWhitneyNullCalibration(t *testing.T) {
	src := rng.New(103)
	rejections := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		a := make([]float64, 25)
		b := make([]float64, 25)
		for j := range a {
			a[j] = src.Exp(1)
			b[j] = src.Exp(1)
		}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate < 0.025 || rate > 0.085 {
		t.Fatalf("null rejection rate = %v", rate)
	}
}

func TestMannWhitneyTiesAndErrors(t *testing.T) {
	// All values identical: p = 1.
	a := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	res, err := MannWhitneyU(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 {
		t.Fatalf("identical samples p = %v", res.PValue)
	}
	if _, err := MannWhitneyU(a[:3], a); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestOneSampleTTest(t *testing.T) {
	src := rng.New(107)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = src.Normal(10, 2)
	}
	hit, err := OneSampleTTest(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hit.PValue < 0.01 {
		t.Fatalf("true mean rejected: p = %v", hit.PValue)
	}
	miss, err := OneSampleTTest(xs, 11)
	if err != nil {
		t.Fatal(err)
	}
	if miss.PValue > 1e-4 {
		t.Fatalf("wrong mean not rejected: p = %v", miss.PValue)
	}
	if _, err := OneSampleTTest([]float64{1}, 0); err == nil {
		t.Fatal("single observation accepted")
	}
	// Constant sample edge cases.
	same, err := OneSampleTTest([]float64{3, 3, 3}, 3)
	if err != nil || same.PValue != 1 {
		t.Fatalf("constant-at-mu: p=%v err=%v", same.PValue, err)
	}
	diff, err := OneSampleTTest([]float64{3, 3, 3}, 4)
	if err != nil || diff.PValue != 0 {
		t.Fatalf("constant-off-mu: p=%v err=%v", diff.PValue, err)
	}
}

func TestOneWayANOVA(t *testing.T) {
	src := rng.New(109)
	g1 := make([]float64, 40)
	g2 := make([]float64, 40)
	g3 := make([]float64, 40)
	for i := range g1 {
		g1[i] = src.Normal(0, 1)
		g2[i] = src.Normal(0, 1)
		g3[i] = src.Normal(2, 1) // shifted group
	}
	res, err := OneWayANOVA(g1, g2, g3)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Fatalf("shifted group not detected: p = %v", res.PValue)
	}
	// Null case.
	null, err := OneWayANOVA(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if null.PValue < 0.01 {
		t.Fatalf("null over-rejected: p = %v", null.PValue)
	}
	// Errors.
	if _, err := OneWayANOVA(g1); err == nil {
		t.Fatal("single group accepted")
	}
	if _, err := OneWayANOVA(g1, []float64{1}); err == nil {
		t.Fatal("tiny group accepted")
	}
	// Degenerate: identical constants.
	c := []float64{2, 2, 2}
	same, err := OneWayANOVA(c, c)
	if err != nil || same.PValue != 1 {
		t.Fatalf("constant equal groups: p=%v err=%v", same.PValue, err)
	}
	sep, err := OneWayANOVA([]float64{1, 1, 1}, []float64{2, 2, 2})
	if err != nil || sep.PValue != 0 {
		t.Fatalf("perfectly separated constants: p=%v err=%v", sep.PValue, err)
	}
}

func TestANOVATwoGroupsMatchesTTest(t *testing.T) {
	// With two groups, ANOVA F = t^2 and p-values agree (equal-variance
	// t-test; Welch differs slightly, so use balanced same-variance data).
	src := rng.New(113)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = src.Normal(0, 1)
		b[i] = src.Normal(0.3, 1)
	}
	f, err := OneWayANOVA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if diff := f.PValue - tt.PValue; diff > 0.02 || diff < -0.02 {
		t.Fatalf("ANOVA p %v far from t-test p %v", f.PValue, tt.PValue)
	}
}
