package stats

import (
	"fmt"
	"math"
	"sort"
)

// The paper (Q2) singles out the multiple-testing trap: "If enough
// hypotheses are tested, one will eventually be true for the sample data
// used." This file implements the standard family-wise and false-discovery
// corrections, plus a HypothesisLedger that pipelines use to track every
// test they run so the correction cannot be silently forgotten.

// Correction identifies a multiple-testing correction procedure.
type Correction int

const (
	// NoCorrection reports raw p-values (the pitfall the paper warns about).
	NoCorrection Correction = iota
	// Bonferroni controls FWER by multiplying each p-value by m.
	Bonferroni
	// Holm is the uniformly-more-powerful step-down FWER control.
	Holm
	// BenjaminiHochberg controls the false-discovery rate (independent or
	// positively dependent tests).
	BenjaminiHochberg
	// BenjaminiYekutieli controls FDR under arbitrary dependence.
	BenjaminiYekutieli
)

// String returns the procedure name.
func (c Correction) String() string {
	switch c {
	case NoCorrection:
		return "none"
	case Bonferroni:
		return "bonferroni"
	case Holm:
		return "holm"
	case BenjaminiHochberg:
		return "benjamini-hochberg"
	case BenjaminiYekutieli:
		return "benjamini-yekutieli"
	}
	return fmt.Sprintf("Correction(%d)", int(c))
}

// Adjust returns adjusted p-values for the chosen procedure, in the same
// order as the input. Adjusted values are clamped to [0,1]; comparing an
// adjusted p-value against alpha is equivalent to the classical rejection
// rule of the procedure. Errors on invalid p-values.
func Adjust(pvalues []float64, method Correction) ([]float64, error) {
	m := len(pvalues)
	for i, p := range pvalues {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: invalid p-value %v at index %d", p, i)
		}
	}
	if m == 0 {
		return nil, nil
	}
	out := make([]float64, m)
	switch method {
	case NoCorrection:
		copy(out, pvalues)
		return out, nil
	case Bonferroni:
		for i, p := range pvalues {
			out[i] = math.Min(1, p*float64(m))
		}
		return out, nil
	case Holm:
		idx := sortedIndex(pvalues)
		running := 0.0
		for rank, i := range idx {
			adj := math.Min(1, pvalues[i]*float64(m-rank))
			// Enforce monotonicity of the step-down procedure.
			if adj < running {
				adj = running
			}
			running = adj
			out[i] = adj
		}
		return out, nil
	case BenjaminiHochberg, BenjaminiYekutieli:
		c := 1.0
		if method == BenjaminiYekutieli {
			c = harmonic(m)
		}
		idx := sortedIndex(pvalues)
		// Step-up: work from the largest p-value down, enforcing
		// monotone non-increase.
		running := 1.0
		for rank := m - 1; rank >= 0; rank-- {
			i := idx[rank]
			adj := math.Min(1, pvalues[i]*c*float64(m)/float64(rank+1))
			if adj > running {
				adj = running
			}
			running = adj
			out[i] = adj
		}
		return out, nil
	}
	return nil, fmt.Errorf("stats: unknown correction %v", method)
}

func harmonic(m int) float64 {
	var h float64
	for k := 1; k <= m; k++ {
		h += 1 / float64(k)
	}
	return h
}

// sortedIndex returns indices ordering pvalues ascending.
func sortedIndex(pvalues []float64) []int {
	idx := make([]int, len(pvalues))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	return idx
}

// Reject applies the correction and returns, for each hypothesis, whether
// it is rejected at level alpha.
func Reject(pvalues []float64, method Correction, alpha float64) ([]bool, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("stats: alpha must be in (0,1), got %v", alpha)
	}
	adj, err := Adjust(pvalues, method)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(adj))
	for i, p := range adj {
		out[i] = p <= alpha
	}
	return out, nil
}

// Hypothesis is one entry in a HypothesisLedger.
type Hypothesis struct {
	Name   string
	PValue float64
}

// HypothesisLedger accumulates every hypothesis test performed during an
// analysis so the family-wise correction is computed over the *actual*
// number of tests run — the discipline the paper says is "well-known in
// statistical inference, but often underestimated".
type HypothesisLedger struct {
	entries []Hypothesis
}

// Record adds a test outcome to the ledger.
func (l *HypothesisLedger) Record(name string, pvalue float64) {
	l.entries = append(l.entries, Hypothesis{Name: name, PValue: pvalue})
}

// Len returns the number of recorded hypotheses.
func (l *HypothesisLedger) Len() int { return len(l.entries) }

// Entries returns a copy of the recorded hypotheses.
func (l *HypothesisLedger) Entries() []Hypothesis {
	return append([]Hypothesis(nil), l.entries...)
}

// LedgerDecision is the corrected verdict for one recorded hypothesis.
type LedgerDecision struct {
	Hypothesis
	AdjustedP float64
	Rejected  bool
}

// Decide applies the correction across every recorded hypothesis at level
// alpha and returns per-hypothesis decisions.
func (l *HypothesisLedger) Decide(method Correction, alpha float64) ([]LedgerDecision, error) {
	ps := make([]float64, len(l.entries))
	for i, e := range l.entries {
		ps[i] = e.PValue
	}
	adj, err := Adjust(ps, method)
	if err != nil {
		return nil, err
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("stats: alpha must be in (0,1), got %v", alpha)
	}
	out := make([]LedgerDecision, len(l.entries))
	for i, e := range l.entries {
		out[i] = LedgerDecision{Hypothesis: e, AdjustedP: adj[i], Rejected: adj[i] <= alpha}
	}
	return out, nil
}
