package stats

import (
	"fmt"

	"github.com/responsible-data-science/rds/internal/frame"
)

// The paper uses Simpson's paradox as its canonical example of "how easy it
// is to give false advice even in the presence of big data": a trend that
// appears in every subgroup disappears or reverses when the subgroups are
// combined. SimpsonScan checks a binary treatment/outcome association
// against every candidate confounder column and reports reversals.

// Association is the direction of a treatment→outcome association.
type Association int

const (
	// NegativeAssoc means treatment lowers the outcome rate.
	NegativeAssoc Association = -1
	// NoAssoc means no (or tied) association.
	NoAssoc Association = 0
	// PositiveAssoc means treatment raises the outcome rate.
	PositiveAssoc Association = 1
)

// String renders the association direction.
func (a Association) String() string {
	switch a {
	case NegativeAssoc:
		return "negative"
	case PositiveAssoc:
		return "positive"
	default:
		return "none"
	}
}

// GroupTrend is the association within one stratum of the confounder.
type GroupTrend struct {
	Group       string
	N           int
	TreatedRate float64 // P(outcome | treated)
	ControlRate float64 // P(outcome | not treated)
	Direction   Association
}

// SimpsonResult reports the aggregate association, the per-stratum
// associations for one confounder, and whether the paradox is present
// (aggregate direction conflicts with a unanimous stratum direction).
type SimpsonResult struct {
	Confounder      string
	Aggregate       GroupTrend
	Strata          []GroupTrend
	Reversed        bool // all strata agree with each other and disagree with the aggregate
	PartialReversal bool // aggregate disagrees with at least one stratum
}

// minStratum is the smallest stratum size considered; tiny strata produce
// unstable rates and spurious "reversals".
const minStratum = 5

// SimpsonScan examines the association between binary columns treatment and
// outcome, stratified by each confounder column, and returns one result per
// confounder. treatment and outcome must be 0/1-valued numeric or bool
// columns.
func SimpsonScan(f *frame.Frame, treatment, outcome string, confounders []string) ([]SimpsonResult, error) {
	tr, err := binaryColumn(f, treatment)
	if err != nil {
		return nil, err
	}
	out, err := binaryColumn(f, outcome)
	if err != nil {
		return nil, err
	}
	if len(tr) != len(out) {
		return nil, fmt.Errorf("stats: treatment and outcome lengths differ")
	}
	agg := trend("ALL", tr, out)
	var results []SimpsonResult
	for _, conf := range confounders {
		col, err := f.Col(conf)
		if err != nil {
			return nil, err
		}
		byLevel := map[string][]int{}
		var order []string
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				continue
			}
			k := col.FormatValue(i)
			if _, seen := byLevel[k]; !seen {
				order = append(order, k)
			}
			byLevel[k] = append(byLevel[k], i)
		}
		res := SimpsonResult{Confounder: conf, Aggregate: agg}
		allAgree := true
		var stratumDir Association
		first := true
		for _, k := range order {
			rows := byLevel[k]
			if len(rows) < minStratum {
				continue
			}
			st, so := subset(tr, rows), subset(out, rows)
			t := trend(k, st, so)
			res.Strata = append(res.Strata, t)
			if t.Direction == NoAssoc {
				continue
			}
			if first {
				stratumDir = t.Direction
				first = false
			} else if t.Direction != stratumDir {
				allAgree = false
			}
			if t.Direction != agg.Direction && agg.Direction != NoAssoc {
				res.PartialReversal = true
			}
		}
		if !first && allAgree && stratumDir != NoAssoc &&
			agg.Direction != NoAssoc && stratumDir != agg.Direction {
			res.Reversed = true
		}
		results = append(results, res)
	}
	return results, nil
}

func trend(label string, tr, out []float64) GroupTrend {
	var tN, tY, cN, cY float64
	for i := range tr {
		if tr[i] >= 0.5 {
			tN++
			if out[i] >= 0.5 {
				tY++
			}
		} else {
			cN++
			if out[i] >= 0.5 {
				cY++
			}
		}
	}
	g := GroupTrend{Group: label, N: len(tr)}
	if tN > 0 {
		g.TreatedRate = tY / tN
	}
	if cN > 0 {
		g.ControlRate = cY / cN
	}
	switch {
	case tN == 0 || cN == 0:
		g.Direction = NoAssoc
	case g.TreatedRate > g.ControlRate:
		g.Direction = PositiveAssoc
	case g.TreatedRate < g.ControlRate:
		g.Direction = NegativeAssoc
	default:
		g.Direction = NoAssoc
	}
	return g
}

func subset(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for j, i := range idx {
		out[j] = xs[i]
	}
	return out
}

// binaryColumn extracts a 0/1 slice from a numeric or bool column,
// rejecting other values — a schema guard so that "binary" is checked,
// not assumed.
func binaryColumn(f *frame.Frame, name string) ([]float64, error) {
	col, err := f.Col(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, col.Len())
	for i := 0; i < col.Len(); i++ {
		if col.IsNull(i) {
			return nil, fmt.Errorf("stats: binary column %q has null at row %d", name, i)
		}
		var v float64
		if col.DType() == frame.Bool {
			if col.Boolv(i) {
				v = 1
			}
		} else {
			v = col.Float(i)
		}
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("stats: column %q is not binary: value %v at row %d", name, v, i)
		}
		out[i] = v
	}
	return out, nil
}
