package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", label, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	approx(t, NormalCDF(1.959963985), 0.975, 1e-8, "Phi(1.96)")
	approx(t, NormalCDF(-1.959963985), 0.025, 1e-8, "Phi(-1.96)")
	approx(t, NormalCDF(3), 0.99865010, 1e-7, "Phi(3)")
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		z := NormalQuantile(p)
		approx(t, NormalCDF(z), p, 1e-10, "Phi(Phi^-1(p))")
	}
}

func TestNormalQuantileKnown(t *testing.T) {
	approx(t, NormalQuantile(0.975), 1.959963985, 1e-6, "z_0.975")
	approx(t, NormalQuantile(0.5), 0, 1e-9, "z_0.5")
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestRegularizedGammaP(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 1, 2, 5} {
		approx(t, RegularizedGammaP(1, x), 1-math.Exp(-x), 1e-10, "P(1,x)")
	}
	approx(t, RegularizedGammaP(2.5, 0), 0, 0, "P(a,0)")
	if !math.IsNaN(RegularizedGammaP(-1, 1)) {
		t.Error("P with a<=0 should be NaN")
	}
}

func TestChiSquareCDFKnown(t *testing.T) {
	// Chi2(1): P(X <= 3.841459) = 0.95.
	approx(t, ChiSquareCDF(3.841458821, 1), 0.95, 1e-6, "chi2(1) 95th")
	// Chi2(2) is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
	approx(t, ChiSquareCDF(4, 2), 1-math.Exp(-2), 1e-10, "chi2(2)")
	approx(t, ChiSquareCDF(-1, 3), 0, 0, "chi2 negative")
}

func TestRegularizedBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a).
	check := func(xr, ar, br uint8) bool {
		x := float64(xr)/256*0.98 + 0.01
		a := float64(ar%40)/4 + 0.25
		b := float64(br%40)/4 + 0.25
		lhs := RegularizedBeta(x, a, b)
		rhs := 1 - RegularizedBeta(1-x, b, a)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegularizedBetaUniform(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.33, 0.77} {
		approx(t, RegularizedBeta(x, 1, 1), x, 1e-12, "I_x(1,1)")
	}
	approx(t, RegularizedBeta(0, 2, 3), 0, 0, "I_0")
	approx(t, RegularizedBeta(1, 2, 3), 1, 0, "I_1")
}

func TestStudentTCDFKnown(t *testing.T) {
	// t(inf-ish) approaches normal; t(1) is Cauchy: CDF(1) = 0.75.
	approx(t, StudentTCDF(1, 1), 0.75, 1e-8, "t1 CDF(1)")
	approx(t, StudentTCDF(0, 7), 0.5, 1e-12, "t CDF(0)")
	// t(10): P(T <= 2.228139) = 0.975.
	approx(t, StudentTCDF(2.228138852, 10), 0.975, 1e-6, "t10 97.5th")
	// Symmetry.
	approx(t, StudentTCDF(-2, 5)+StudentTCDF(2, 5), 1, 1e-10, "t symmetry")
}

func TestFCDFKnown(t *testing.T) {
	// F(1, d2) at f equals 2*P(T_d2 <= sqrt f) - 1.
	f := 4.0
	d2 := 10.0
	want := 2*StudentTCDF(math.Sqrt(f), d2) - 1
	approx(t, FCDF(f, 1, d2), want, 1e-9, "F(1,10)")
	approx(t, FCDF(0, 3, 4), 0, 0, "F at 0")
}

func TestCDFsMonotone(t *testing.T) {
	check := func(a, b uint8) bool {
		x1 := float64(a) / 16
		x2 := x1 + float64(b%16)/16 + 0.01
		return ChiSquareCDF(x1, 3) <= ChiSquareCDF(x2, 3)+1e-12 &&
			StudentTCDF(x1-5, 7) <= StudentTCDF(x2-5, 7)+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
