package stats

import (
	"math"

	"github.com/responsible-data-science/rds/internal/exec"
)

// DescribeSharded computes the descriptive Summary of a sample on the
// sharded execution engine (internal/exec): the sample is chunked,
// per-chunk moment accumulators and sorted runs are built in parallel
// on shards goroutines (0 selects runtime.GOMAXPROCS), and the chunk
// states are merged in deterministic chunk order. The result is
// bit-for-bit identical at every shard count.
//
// Count and the quantiles match Describe exactly (integer counts and
// the shared type-7 interpolation over the same sorted sample — the
// parallel merge preserves sort.Float64s ordering, NaNs first). Mean
// and StdDev are computed through the chunked merge tree, so they may
// differ from the sequential left-to-right fold of Describe in the
// last few ulps — but never between shard counts. Min and Max ignore
// NaN values entirely (NaN only when the sample is empty or all-NaN),
// which differs from Describe's comparison scan only when the first
// element is NaN.
func DescribeSharded(xs []float64, shards int) Summary {
	states, err := exec.Run(len(xs), exec.Options{Shards: shards},
		exec.NewMoments(xs), exec.NewSorted(xs, false))
	if err != nil {
		// Run only fails on invalid plans (negative n, no kernels),
		// impossible here; mirror Describe's NaN convention defensively.
		return Describe(nil)
	}
	m := states[0].(*exec.Moments)
	sorted := states[1].(*exec.Sorted).Values()
	s := Summary{
		N:      int(m.N),
		Mean:   m.Mean(),
		StdDev: m.StdDev(),
		Min:    math.NaN(),
		Max:    math.NaN(),
	}
	if m.N > 0 {
		s.Min, s.Max = m.Min, m.Max
	}
	s.Q25 = quantileSorted(sorted, 0.25)
	s.Median = quantileSorted(sorted, 0.5)
	s.Q75 = quantileSorted(sorted, 0.75)
	return s
}

// QuantileSharded returns the q-quantile computed over a sharded
// parallel sort (see DescribeSharded for the determinism contract). It
// matches Quantile exactly: the merged sorted sample is identical to a
// sequential sort, and the interpolation is shared.
func QuantileSharded(xs []float64, q float64, shards int) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	st, err := exec.RunOne(len(xs), exec.Options{Shards: shards}, exec.NewSorted(xs, false))
	if err != nil {
		return math.NaN()
	}
	return quantileSorted(st.(*exec.Sorted).Values(), q)
}
