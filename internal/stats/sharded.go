package stats

import (
	"math"

	"github.com/responsible-data-science/rds/internal/exec"
)

// DescribeSharded computes the descriptive Summary of a sample on the
// sharded execution engine (internal/exec): the sample is chunked,
// per-chunk moment accumulators and sorted runs are built in parallel
// on shards goroutines (0 selects runtime.GOMAXPROCS), and the chunk
// states are merged in deterministic chunk order. The result is
// bit-for-bit identical at every shard count.
//
// Count and the quantiles match Describe exactly (integer counts and
// the shared type-7 interpolation over the same sorted sample — the
// parallel merge preserves sort.Float64s ordering, NaNs first). Mean
// and StdDev are computed through the chunked merge tree, so they may
// differ from the sequential left-to-right fold of Describe in the
// last few ulps — but never between shard counts. Min and Max ignore
// NaN values entirely (NaN only when the sample is empty or all-NaN),
// which differs from Describe's comparison scan only when the first
// element is NaN.
func DescribeSharded(xs []float64, shards int) Summary {
	states, err := exec.Run(len(xs), exec.Options{Shards: shards},
		exec.NewMoments(xs), exec.NewSorted(xs, false))
	if err != nil {
		// Run only fails on invalid plans (negative n, no kernels),
		// impossible here; mirror Describe's NaN convention defensively.
		return Describe(nil)
	}
	m := states[0].(*exec.Moments)
	sorted := states[1].(*exec.Sorted)
	s := Summary{
		N:      int(m.N),
		Mean:   m.Mean(),
		StdDev: m.StdDev(),
		Min:    math.NaN(),
		Max:    math.NaN(),
	}
	if m.N > 0 {
		s.Min, s.Max = m.Min, m.Max
	}
	if qs, ok := quantileOrderStats(sorted, []float64{0.25, 0.5, 0.75}); ok {
		s.Q25, s.Median, s.Q75 = qs[0], qs[1], qs[2]
	} else {
		vals := sorted.Values()
		s.Q25 = quantileSorted(vals, 0.25)
		s.Median = quantileSorted(vals, 0.5)
		s.Q75 = quantileSorted(vals, 0.75)
	}
	return s
}

// quantileOrderStats computes type-7 quantiles for the ascending qs
// through Sorted.OrderStats — selection over the gathered sample
// instead of a full sort, the win that keeps the audit profile's
// per-column cost linear. The interpolation is the same arithmetic as
// quantileSorted over the same (unique, per the OrderStats gate) order
// statistics, so an ok result is bit-identical to the sorted path; ok
// is false on an empty sample or when OrderStats declines (NaN or
// negative zero present) and the caller takes the Values route.
func quantileOrderStats(sorted *exec.Sorted, qs []float64) ([]float64, bool) {
	n := sorted.Count()
	if n == 0 {
		return nil, false
	}
	ks := make([]int, 0, 2*len(qs))
	for _, q := range qs {
		pos := q * float64(n-1)
		for _, k := range []int{int(math.Floor(pos)), int(math.Ceil(pos))} {
			if len(ks) == 0 || k > ks[len(ks)-1] {
				ks = append(ks, k)
			}
		}
	}
	vals, ok := sorted.OrderStats(ks)
	if !ok {
		return nil, false
	}
	at := func(k int) float64 {
		for i, kk := range ks {
			if kk == k {
				return vals[i]
			}
		}
		return math.NaN()
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		pos := q * float64(n-1)
		lo, hi := int(math.Floor(pos)), int(math.Ceil(pos))
		if lo == hi {
			out[i] = at(lo)
			continue
		}
		frac := pos - float64(lo)
		out[i] = at(lo)*(1-frac) + at(hi)*frac
	}
	return out, true
}

// QuantileSharded returns the q-quantile computed over a sharded
// parallel sort (see DescribeSharded for the determinism contract). It
// matches Quantile exactly: the merged sorted sample is identical to a
// sequential sort, and the interpolation is shared.
func QuantileSharded(xs []float64, q float64, shards int) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	st, err := exec.RunOne(len(xs), exec.Options{Shards: shards}, exec.NewSorted(xs, false))
	if err != nil {
		return math.NaN()
	}
	sorted := st.(*exec.Sorted)
	if out, ok := quantileOrderStats(sorted, []float64{q}); ok {
		return out[0]
	}
	return quantileSorted(sorted.Values(), q)
}
