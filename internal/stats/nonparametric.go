package stats

import (
	"fmt"
	"math"
)

// MannWhitneyU performs the two-sided Mann-Whitney U test (Wilcoxon
// rank-sum) with the normal approximation and tie correction — the
// nonparametric counterpart of the t-test for the heavy-tailed metrics
// (latencies, charges) that responsible reporting should not assume
// normal. Requires at least 8 observations per sample for the
// approximation to be honest.
func MannWhitneyU(a, b []float64) (TestResult, error) {
	na, nb := len(a), len(b)
	if na < 8 || nb < 8 {
		return TestResult{}, fmt.Errorf("stats: MannWhitneyU needs >= 8 observations per sample, got %d and %d", na, nb)
	}
	pooled := make([]float64, 0, na+nb)
	pooled = append(pooled, a...)
	pooled = append(pooled, b...)
	ranks := rankWithTies(pooled)
	var ra float64
	for i := 0; i < na; i++ {
		ra += ranks[i]
	}
	u := ra - float64(na)*float64(na+1)/2 // U statistic of sample a
	nA, nB := float64(na), float64(nb)
	mean := nA * nB / 2
	// Tie correction for the variance.
	counts := map[float64]float64{}
	for _, v := range pooled {
		counts[v]++
	}
	var tieSum float64
	for _, c := range counts {
		tieSum += c*c*c - c
	}
	n := nA + nB
	variance := nA * nB / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if variance <= 0 {
		// All values identical: no evidence of difference.
		return TestResult{Statistic: u, PValue: 1}, nil
	}
	z := (u - mean) / math.Sqrt(variance)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{Statistic: u, PValue: clampP(p)}, nil
}

// OneSampleTTest tests H0: mean(xs) == mu, two-sided.
func OneSampleTTest(xs []float64, mu float64) (TestResult, error) {
	n := len(xs)
	if n < 2 {
		return TestResult{}, fmt.Errorf("stats: OneSampleTTest needs >= 2 observations, got %d", n)
	}
	se := StandardError(xs)
	if se == 0 {
		if Mean(xs) == mu {
			return TestResult{Statistic: 0, PValue: 1, DF: float64(n - 1)}, nil
		}
		return TestResult{Statistic: math.Inf(1), PValue: 0, DF: float64(n - 1)}, nil
	}
	t := (Mean(xs) - mu) / se
	df := float64(n - 1)
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	return TestResult{Statistic: t, PValue: clampP(p), DF: df}, nil
}

// OneWayANOVA tests whether k group means are equal (the F-test), the
// standard screen before per-group comparisons inflate the test count.
func OneWayANOVA(groups ...[]float64) (TestResult, error) {
	k := len(groups)
	if k < 2 {
		return TestResult{}, fmt.Errorf("stats: ANOVA needs >= 2 groups, got %d", k)
	}
	var n int
	var grand float64
	for i, g := range groups {
		if len(g) < 2 {
			return TestResult{}, fmt.Errorf("stats: ANOVA group %d has %d observations, need >= 2", i, len(g))
		}
		n += len(g)
		for _, v := range g {
			grand += v
		}
	}
	grand /= float64(n)
	var ssBetween, ssWithin float64
	for _, g := range groups {
		m := Mean(g)
		ssBetween += float64(len(g)) * (m - grand) * (m - grand)
		for _, v := range g {
			ssWithin += (v - m) * (v - m)
		}
	}
	dfB := float64(k - 1)
	dfW := float64(n - k)
	if ssWithin == 0 {
		if ssBetween == 0 {
			return TestResult{Statistic: 0, PValue: 1, DF: dfB}, nil
		}
		return TestResult{Statistic: math.Inf(1), PValue: 0, DF: dfB}, nil
	}
	f := (ssBetween / dfB) / (ssWithin / dfW)
	p := 1 - FCDF(f, dfB, dfW)
	return TestResult{Statistic: f, PValue: clampP(p), DF: dfB}, nil
}
