package stats

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

func TestWelchTTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res, err := WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 || res.PValue < 0.99 {
		t.Fatalf("identical samples: stat=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestWelchTTestClearDifference(t *testing.T) {
	src := rng.New(1)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = src.Normal(0, 1)
		b[i] = src.Normal(2, 1)
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Fatalf("2-sigma shift not detected: p=%v", res.PValue)
	}
	if res.Statistic >= 0 {
		t.Fatalf("statistic sign wrong: %v", res.Statistic)
	}
}

func TestWelchTTestNullCalibration(t *testing.T) {
	// Under H0, p-values should be roughly uniform: ~5% below 0.05.
	src := rng.New(2)
	rejections := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		a := make([]float64, 30)
		b := make([]float64, 30)
		for j := range a {
			a[j] = src.Norm()
			b[j] = src.Norm()
		}
		res, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate < 0.03 || rate > 0.08 {
		t.Fatalf("null rejection rate = %v, want ~0.05", rate)
	}
}

func TestWelchTTestErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestWelchTTestConstantSamples(t *testing.T) {
	res, err := WelchTTest([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 {
		t.Fatalf("constant equal samples p = %v, want 1", res.PValue)
	}
}

func TestTwoProportionZTest(t *testing.T) {
	// 80/100 vs 50/100 is a big difference.
	res, err := TwoProportionZTest(80, 100, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-4 {
		t.Fatalf("clear proportion difference not detected: p=%v", res.PValue)
	}
	// Equal proportions.
	res, err = TwoProportionZTest(50, 100, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.99 {
		t.Fatalf("equal proportions p = %v", res.PValue)
	}
}

func TestTwoProportionZTestErrors(t *testing.T) {
	if _, err := TwoProportionZTest(1, 0, 1, 10); err == nil {
		t.Fatal("zero n accepted")
	}
	if _, err := TwoProportionZTest(11, 10, 1, 10); err == nil {
		t.Fatal("successes > n accepted")
	}
}

func TestChiSquareIndependenceKnown(t *testing.T) {
	// Classic 2x2 with strong association.
	res, err := ChiSquareIndependence([][]float64{{90, 10}, {10, 90}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-10 {
		t.Fatalf("strong association p = %v", res.PValue)
	}
	approx(t, res.DF, 1, 0, "df")
	// Perfectly independent table.
	res, err = ChiSquareIndependence([][]float64{{25, 25}, {25, 25}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Statistic, 0, 1e-12, "chi2 of independent")
	approx(t, res.PValue, 1, 1e-9, "p of independent")
}

func TestChiSquareErrors(t *testing.T) {
	cases := [][][]float64{
		{{1, 2}},          // one row
		{{1}, {2}},        // one column
		{{1, 2}, {3}},     // ragged
		{{0, 0}, {1, 2}},  // zero row
		{{0, 1}, {0, 2}},  // zero column
		{{-1, 2}, {3, 4}}, // negative
		{{0, 0}, {0, 0}},  // empty
	}
	for i, table := range cases {
		if _, err := ChiSquareIndependence(table); err == nil {
			t.Errorf("case %d: invalid table accepted", i)
		}
	}
}

func TestFisherExactKnown(t *testing.T) {
	// Tea-tasting: [[3,1],[1,3]] has two-sided p ~ 0.4857.
	res, err := FisherExact(3, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.PValue, 0.4857142857, 1e-6, "tea tasting p")
	// Strong association.
	res, err = FisherExact(20, 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-8 {
		t.Fatalf("extreme table p = %v", res.PValue)
	}
}

func TestFisherExactAgreesWithChiSquareDirection(t *testing.T) {
	res, err := FisherExact(50, 10, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic <= 1 {
		t.Fatalf("odds ratio = %v, want > 1", res.Statistic)
	}
}

func TestFisherExactErrors(t *testing.T) {
	if _, err := FisherExact(-1, 1, 1, 1); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := FisherExact(0, 0, 0, 0); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestPermutationTestDetectsShift(t *testing.T) {
	src := rng.New(5)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = src.Normal(0, 1)
		b[i] = src.Normal(1.5, 1)
	}
	res, err := PermutationTest(a, b, 500, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.02 {
		t.Fatalf("clear shift not detected: p=%v", res.PValue)
	}
}

func TestPermutationTestNull(t *testing.T) {
	src := rng.New(6)
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = src.Norm()
		b[i] = src.Norm()
	}
	res, err := PermutationTest(a, b, 500, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Fatalf("null rejected too confidently: p=%v", res.PValue)
	}
	if res.PValue <= 0 {
		t.Fatal("permutation p-value must be > 0 by construction")
	}
}

func TestPermutationTestErrors(t *testing.T) {
	src := rng.New(1)
	if _, err := PermutationTest(nil, []float64{1}, 10, src); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := PermutationTest([]float64{1}, []float64{1}, 0, src); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestWelchMatchesZForLargeN(t *testing.T) {
	// For large samples the t-test p-value approaches the z-test's.
	src := rng.New(7)
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = src.Normal(0, 1)
		b[i] = src.Normal(0.05, 1)
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	z := (Mean(a) - Mean(b)) / math.Sqrt(Variance(a)/5000+Variance(b)/5000)
	pz := 2 * (1 - NormalCDF(math.Abs(z)))
	approx(t, res.PValue, pz, 1e-3, "t vs z")
}
