package stats

import (
	"fmt"
	"math"

	"github.com/responsible-data-science/rds/internal/rng"
)

// TestResult is the outcome of a hypothesis test: the test statistic, the
// two-sided p-value, and the degrees of freedom where applicable. Returning
// the p-value (rather than a bare reject/accept bit) is deliberate: the
// paper requires answers to carry accuracy meta-information, and downstream
// multiple-testing correction needs the raw p-values.
type TestResult struct {
	Statistic float64
	PValue    float64
	DF        float64
}

// WelchTTest performs the two-sample Welch t-test (unequal variances) and
// returns the two-sided result. Errors on samples smaller than 2.
func WelchTTest(a, b []float64) (TestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TestResult{}, fmt.Errorf("stats: WelchTTest needs >=2 observations per sample, got %d and %d", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	if se2 == 0 {
		// Identical constant samples: no evidence of difference.
		return TestResult{Statistic: 0, PValue: 1, DF: na + nb - 2}, nil
	}
	t := (ma - mb) / math.Sqrt(se2)
	// Welch–Satterthwaite degrees of freedom.
	df := se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	return TestResult{Statistic: t, PValue: clampP(p), DF: df}, nil
}

// TwoProportionZTest tests H0: p1 == p2 given successes/totals of two
// samples, using the pooled standard error. Two-sided.
func TwoProportionZTest(success1, n1, success2, n2 int) (TestResult, error) {
	if n1 <= 0 || n2 <= 0 {
		return TestResult{}, fmt.Errorf("stats: TwoProportionZTest needs positive sample sizes, got %d and %d", n1, n2)
	}
	if success1 < 0 || success1 > n1 || success2 < 0 || success2 > n2 {
		return TestResult{}, fmt.Errorf("stats: successes out of range: %d/%d and %d/%d", success1, n1, success2, n2)
	}
	p1 := float64(success1) / float64(n1)
	p2 := float64(success2) / float64(n2)
	pool := float64(success1+success2) / float64(n1+n2)
	se := math.Sqrt(pool * (1 - pool) * (1/float64(n1) + 1/float64(n2)))
	if se == 0 {
		return TestResult{Statistic: 0, PValue: 1}, nil
	}
	z := (p1 - p2) / se
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{Statistic: z, PValue: clampP(p)}, nil
}

// ChiSquareIndependence tests independence of the rows and columns of a
// contingency table (counts). Rows and columns that are entirely zero are
// an error, as is a ragged table.
func ChiSquareIndependence(table [][]float64) (TestResult, error) {
	r := len(table)
	if r < 2 {
		return TestResult{}, fmt.Errorf("stats: chi-square needs >=2 rows, got %d", r)
	}
	c := len(table[0])
	if c < 2 {
		return TestResult{}, fmt.Errorf("stats: chi-square needs >=2 columns, got %d", c)
	}
	rowSums := make([]float64, r)
	colSums := make([]float64, c)
	var total float64
	for i, row := range table {
		if len(row) != c {
			return TestResult{}, fmt.Errorf("stats: ragged contingency table at row %d", i)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return TestResult{}, fmt.Errorf("stats: invalid count %v at (%d,%d)", v, i, j)
			}
			rowSums[i] += v
			colSums[j] += v
			total += v
		}
	}
	if total == 0 {
		return TestResult{}, fmt.Errorf("stats: empty contingency table")
	}
	for i, s := range rowSums {
		if s == 0 {
			return TestResult{}, fmt.Errorf("stats: row %d has zero total", i)
		}
	}
	for j, s := range colSums {
		if s == 0 {
			return TestResult{}, fmt.Errorf("stats: column %d has zero total", j)
		}
	}
	var chi2 float64
	for i := range table {
		for j := range table[i] {
			expected := rowSums[i] * colSums[j] / total
			d := table[i][j] - expected
			chi2 += d * d / expected
		}
	}
	df := float64((r - 1) * (c - 1))
	p := 1 - ChiSquareCDF(chi2, df)
	return TestResult{Statistic: chi2, PValue: clampP(p), DF: df}, nil
}

// FisherExact performs Fisher's exact test on a 2x2 table
// [[a b] [c d]] and returns the two-sided p-value (sum of all tables with
// probability <= observed, the standard definition).
func FisherExact(a, b, c, d int) (TestResult, error) {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return TestResult{}, fmt.Errorf("stats: FisherExact counts must be non-negative")
	}
	n := a + b + c + d
	if n == 0 {
		return TestResult{}, fmt.Errorf("stats: FisherExact empty table")
	}
	r1 := a + b
	c1 := a + c
	logP := func(x int) float64 {
		// Hypergeometric pmf for top-left cell value x.
		return lchoose(r1, x) + lchoose(n-r1, c1-x) - lchoose(n, c1)
	}
	lo := max(0, c1-(n-r1))
	hi := min(r1, c1)
	observed := logP(a)
	var p float64
	const tol = 1e-12
	for x := lo; x <= hi; x++ {
		lp := logP(x)
		if lp <= observed+tol {
			p += math.Exp(lp)
		}
	}
	// Odds ratio as the statistic (with Haldane correction for zeros).
	or := (float64(a) + 0.5) * (float64(d) + 0.5) / ((float64(b) + 0.5) * (float64(c) + 0.5))
	return TestResult{Statistic: or, PValue: clampP(p)}, nil
}

func lchoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
}

// PermutationTest estimates the two-sided p-value for a difference of means
// between samples a and b by random relabeling. iters controls the number
// of permutations; the returned p-value includes the +1 smoothing that
// guarantees p > 0 (an exact-test convention that avoids overclaiming
// certainty — FACT Q2 again).
func PermutationTest(a, b []float64, iters int, src *rng.Source) (TestResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return TestResult{}, fmt.Errorf("stats: PermutationTest needs non-empty samples")
	}
	if iters <= 0 {
		return TestResult{}, fmt.Errorf("stats: PermutationTest needs positive iterations")
	}
	observed := math.Abs(Mean(a) - Mean(b))
	pool := append(append([]float64(nil), a...), b...)
	na := len(a)
	extreme := 0
	for i := 0; i < iters; i++ {
		src.Shuffle(len(pool), func(x, y int) { pool[x], pool[y] = pool[y], pool[x] })
		if math.Abs(Mean(pool[:na])-Mean(pool[na:])) >= observed {
			extreme++
		}
	}
	p := (float64(extreme) + 1) / (float64(iters) + 1)
	return TestResult{Statistic: observed, PValue: clampP(p)}, nil
}

func clampP(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
