package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/responsible-data-science/rds/internal/rng"
)

func TestAdjustBonferroni(t *testing.T) {
	ps := []float64{0.01, 0.04, 0.03, 0.005}
	adj, err := Adjust(ps, Bonferroni)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.04, 0.16, 0.12, 0.02}
	for i := range want {
		approx(t, adj[i], want[i], 1e-12, "bonferroni")
	}
}

func TestAdjustBonferroniClamps(t *testing.T) {
	adj, err := Adjust([]float64{0.5, 0.9}, Bonferroni)
	if err != nil {
		t.Fatal(err)
	}
	if adj[1] != 1 {
		t.Fatalf("Bonferroni not clamped: %v", adj[1])
	}
}

func TestAdjustHolmKnown(t *testing.T) {
	// Classic example: p = (0.01, 0.02, 0.03, 0.04) with m=4.
	// Holm adjusted: 0.04, 0.06, 0.06, 0.06.
	adj, err := Adjust([]float64{0.01, 0.02, 0.03, 0.04}, Holm)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.04, 0.06, 0.06, 0.06}
	for i := range want {
		approx(t, adj[i], want[i], 1e-12, "holm")
	}
}

func TestAdjustBHKnown(t *testing.T) {
	// BH adjusted p for (0.01, 0.02, 0.03, 0.04): (0.04, 0.04, 0.04, 0.04).
	adj, err := Adjust([]float64{0.01, 0.02, 0.03, 0.04}, BenjaminiHochberg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range adj {
		approx(t, adj[i], 0.04, 1e-12, "bh")
	}
	// A spread-out example.
	adj, err = Adjust([]float64{0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205}, BenjaminiHochberg)
	if err != nil {
		t.Fatal(err)
	}
	// First adjusted value: 0.001*8/1 = 0.008.
	approx(t, adj[0], 0.008, 1e-12, "bh first")
	// Monotone w.r.t. sorted raw order.
	if adj[1] > adj[2] || adj[2] > adj[5] {
		t.Fatalf("BH adjusted not monotone: %v", adj)
	}
}

func TestAdjustBYMoreConservativeThanBH(t *testing.T) {
	ps := []float64{0.001, 0.01, 0.02, 0.04, 0.1}
	bh, err := Adjust(ps, BenjaminiHochberg)
	if err != nil {
		t.Fatal(err)
	}
	by, err := Adjust(ps, BenjaminiYekutieli)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if by[i] < bh[i]-1e-12 {
			t.Fatalf("BY %v less conservative than BH %v at %d", by[i], bh[i], i)
		}
	}
}

func TestAdjustErrors(t *testing.T) {
	if _, err := Adjust([]float64{1.5}, Bonferroni); err == nil {
		t.Fatal("p > 1 accepted")
	}
	if _, err := Adjust([]float64{math.NaN()}, Holm); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Adjust([]float64{-0.1}, BenjaminiHochberg); err == nil {
		t.Fatal("negative p accepted")
	}
}

func TestAdjustEmpty(t *testing.T) {
	adj, err := Adjust(nil, Holm)
	if err != nil || adj != nil {
		t.Fatalf("empty input: %v, %v", adj, err)
	}
}

// Property: all corrections dominate raw p-values and stay in [0,1].
func TestAdjustDominatesRaw(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ps := make([]float64, len(raw))
		for i, r := range raw {
			ps[i] = float64(r) / 65535
		}
		for _, m := range []Correction{Bonferroni, Holm, BenjaminiHochberg, BenjaminiYekutieli} {
			adj, err := Adjust(ps, m)
			if err != nil {
				return false
			}
			for i := range ps {
				if adj[i] < ps[i]-1e-12 || adj[i] > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Holm is uniformly at least as powerful as Bonferroni.
func TestHolmDominatesBonferroni(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ps := make([]float64, len(raw))
		for i, r := range raw {
			ps[i] = float64(r) / 65535
		}
		bonf, err1 := Adjust(ps, Bonferroni)
		holm, err2 := Adjust(ps, Holm)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range ps {
			if holm[i] > bonf[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRejectAlphaValidation(t *testing.T) {
	if _, err := Reject([]float64{0.01}, Holm, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	rej, err := Reject([]float64{0.001, 0.5}, Bonferroni, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rej[0] || rej[1] {
		t.Fatalf("Reject verdicts wrong: %v", rej)
	}
}

// The paper's experiment: under the global null with many predictors, raw
// testing yields a high family-wise error while Bonferroni controls it.
func TestFamilyWiseErrorControl(t *testing.T) {
	src := rng.New(21)
	const trials = 300
	const m = 40 // hypotheses per family
	const n = 50 // observations per test
	rawFW, bonfFW := 0, 0
	for trial := 0; trial < trials; trial++ {
		ps := make([]float64, m)
		for k := 0; k < m; k++ {
			a := make([]float64, n)
			b := make([]float64, n)
			for i := range a {
				a[i] = src.Norm()
				b[i] = src.Norm()
			}
			res, err := WelchTTest(a, b)
			if err != nil {
				t.Fatal(err)
			}
			ps[k] = res.PValue
		}
		anyRaw := false
		for _, p := range ps {
			if p < 0.05 {
				anyRaw = true
			}
		}
		if anyRaw {
			rawFW++
		}
		rej, err := Reject(ps, Bonferroni, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rej {
			if r {
				bonfFW++
				break
			}
		}
	}
	rawRate := float64(rawFW) / trials
	bonfRate := float64(bonfFW) / trials
	// Theoretical raw FWER = 1 - 0.95^40 ~ 0.87.
	if rawRate < 0.7 {
		t.Fatalf("raw FWER = %v, expected high (~0.87)", rawRate)
	}
	if bonfRate > 0.12 {
		t.Fatalf("Bonferroni FWER = %v, expected ~0.05", bonfRate)
	}
}

func TestHypothesisLedger(t *testing.T) {
	var l HypothesisLedger
	l.Record("h1", 0.001)
	l.Record("h2", 0.2)
	l.Record("h3", 0.04)
	if l.Len() != 3 {
		t.Fatalf("ledger len = %d", l.Len())
	}
	decisions, err := l.Decide(Holm, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !decisions[0].Rejected {
		t.Fatal("h1 should be rejected")
	}
	if decisions[1].Rejected {
		t.Fatal("h2 should not be rejected")
	}
	// Holm-adjusted p for h3: max(0.003, 0.08) monotone chain -> 0.08 > 0.05.
	if decisions[2].Rejected {
		t.Fatalf("h3 rejected with adjusted p %v", decisions[2].AdjustedP)
	}
	entries := l.Entries()
	entries[0].Name = "mutated"
	if l.Entries()[0].Name != "h1" {
		t.Fatal("Entries leaked internal state")
	}
}

func TestLedgerDecideBadAlpha(t *testing.T) {
	var l HypothesisLedger
	l.Record("h", 0.5)
	if _, err := l.Decide(Holm, 1.2); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestCorrectionString(t *testing.T) {
	names := map[Correction]string{
		NoCorrection: "none", Bonferroni: "bonferroni", Holm: "holm",
		BenjaminiHochberg: "benjamini-hochberg", BenjaminiYekutieli: "benjamini-yekutieli",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
}
