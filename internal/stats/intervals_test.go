package stats

import (
	"math"
	"testing"

	"github.com/responsible-data-science/rds/internal/rng"
)

func TestMeanCICoverage(t *testing.T) {
	// Empirical coverage of the 95% t-interval should be ~95%.
	src := rng.New(11)
	const trials, n = 2000, 20
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = src.Normal(5, 2)
		}
		iv, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(5) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.93 || rate > 0.97 {
		t.Fatalf("coverage = %v, want ~0.95", rate)
	}
}

func TestMeanCIWidthShrinks(t *testing.T) {
	src := rng.New(12)
	width := func(n int) float64 {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = src.Norm()
		}
		iv, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		return iv.Width()
	}
	if w1, w2 := width(100), width(10000); w2 >= w1 {
		t.Fatalf("CI width did not shrink with n: %v -> %v", w1, w2)
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Fatal("single observation accepted")
	}
	if _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestWilsonCIBasics(t *testing.T) {
	iv, err := WilsonCI(50, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.5) {
		t.Fatalf("Wilson CI %v does not contain 0.5", iv)
	}
	if iv.Lower < 0.40 || iv.Upper > 0.60 {
		t.Fatalf("Wilson CI too wide: %v", iv)
	}
	// Boundary behaviour.
	iv, err = WilsonCI(0, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lower != 0 || iv.Upper <= 0 || iv.Upper > 0.3 {
		t.Fatalf("Wilson CI at 0 successes: %v", iv)
	}
	iv, err = WilsonCI(20, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Upper != 1 || iv.Lower >= 1 {
		t.Fatalf("Wilson CI at n successes: %v", iv)
	}
}

func TestWilsonCIErrors(t *testing.T) {
	if _, err := WilsonCI(5, 0, 0.95); err == nil {
		t.Fatal("zero n accepted")
	}
	if _, err := WilsonCI(30, 20, 0.95); err == nil {
		t.Fatal("successes > n accepted")
	}
	if _, err := WilsonCI(5, 20, 0); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestClopperPearsonContainsWilson(t *testing.T) {
	// Clopper-Pearson is conservative: it should (weakly) contain the
	// Wilson interval for moderate cases.
	for _, s := range []int{3, 10, 17} {
		cp, err := ClopperPearsonCI(s, 20, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		w, err := WilsonCI(s, 20, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Lower > w.Lower+1e-9 || cp.Upper < w.Upper-1e-9 {
			t.Fatalf("CP %v does not contain Wilson %v at s=%d", cp, w, s)
		}
	}
}

func TestClopperPearsonBoundaries(t *testing.T) {
	cp, err := ClopperPearsonCI(0, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Lower != 0 {
		t.Fatalf("CP lower at 0 successes = %v", cp.Lower)
	}
	cp, err = ClopperPearsonCI(10, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Upper != 1 {
		t.Fatalf("CP upper at n successes = %v", cp.Upper)
	}
}

func TestClopperPearsonCoverage(t *testing.T) {
	// Exact interval must achieve at least nominal coverage.
	src := rng.New(13)
	const trials, n = 1000, 30
	const p = 0.3
	covered := 0
	for i := 0; i < trials; i++ {
		s := src.Binomial(n, p)
		iv, err := ClopperPearsonCI(s, n, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(p) {
			covered++
		}
	}
	if rate := float64(covered) / trials; rate < 0.94 {
		t.Fatalf("Clopper-Pearson coverage = %v, want >= 0.95-ish", rate)
	}
}

func TestBootstrapCIMedian(t *testing.T) {
	src := rng.New(14)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.Normal(10, 3)
	}
	iv, err := BootstrapCI(xs, Median, 500, 0.95, src)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(10) {
		t.Fatalf("bootstrap CI %v misses true median 10", iv)
	}
	if iv.Width() > 2 {
		t.Fatalf("bootstrap CI suspiciously wide: %v", iv)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	src := rng.New(1)
	if _, err := BootstrapCI(nil, Mean, 100, 0.95, src); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := BootstrapCI([]float64{1, 2}, Mean, 5, 0.95, src); err == nil {
		t.Fatal("too few resamples accepted")
	}
	if _, err := BootstrapCI([]float64{1, 2}, Mean, 100, 2, src); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lower: 1, Upper: 3, Level: 0.9}
	approx(t, iv.Width(), 2, 1e-12, "width")
	if !iv.Contains(1) || !iv.Contains(3) || iv.Contains(3.1) {
		t.Fatal("Contains wrong")
	}
	if iv.String() == "" {
		t.Fatal("String empty")
	}
}

func TestStandardError(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := StdDev(xs) / math.Sqrt(8)
	approx(t, StandardError(xs), want, 1e-12, "se")
	if !math.IsNaN(StandardError([]float64{1})) {
		t.Fatal("SE of single value should be NaN")
	}
}
