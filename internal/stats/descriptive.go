package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean. NaN inputs propagate; an empty slice
// yields NaN so that callers cannot mistake "no data" for zero (the
// paper's Q2 point: absence of data is not a measurement).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, NaN for n < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population (n) variance, NaN for empty input.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Min returns the minimum, NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (q in [0,1]) using linear interpolation
// between order statistics (type 7, the R/NumPy default). NaN for empty
// input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted is Quantile over already-sorted data: the shared
// interpolation both the sequential and the sharded paths use, so
// identical sorted inputs yield identical bits.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Covariance returns the unbiased sample covariance of two equal-length
// slices, NaN for n < 2 or mismatched lengths.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation coefficient, NaN when either
// input is constant or lengths mismatch.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(xs, ys) / (sx * sy)
}

// rankWithTies assigns average ranks (1-based) to the data, averaging ties.
func rankWithTies(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// SpearmanCorrelation returns the Spearman rank correlation, robust to
// monotone-but-nonlinear relationships; used by the proxy detector to
// catch nonlinear redlining.
func SpearmanCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Correlation(rankWithTies(xs), rankWithTies(ys))
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Describe computes a Summary of the sample.
func Describe(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Q25:    Quantile(xs, 0.25),
		Median: Median(xs),
		Q75:    Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}
