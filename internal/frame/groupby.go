package frame

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GroupBy partitions the frame by the rendered values of the named columns
// and returns the groups in deterministic (sorted key) order. Determinism
// matters for provenance: the same input must always hash to the same
// grouped output.
func (f *Frame) GroupBy(names ...string) ([]Group, error) {
	cols := make([]*Series, len(names))
	for i, n := range names {
		c, err := f.Col(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	byKey := map[string][]int{}
	keyVals := map[string][]string{}
	for r := 0; r < f.NumRows(); r++ {
		parts := make([]string, len(cols))
		for i, c := range cols {
			if c.IsNull(r) {
				parts[i] = "\x00null"
			} else {
				parts[i] = c.FormatValue(r)
			}
		}
		k := strings.Join(parts, "\x1f")
		byKey[k] = append(byKey[k], r)
		keyVals[k] = parts
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Group, len(keys))
	for i, k := range keys {
		out[i] = Group{Keys: keyVals[k], Rows: f.Take(byKey[k])}
	}
	return out, nil
}

// Group is one partition of a GroupBy: the key values (one per grouping
// column) and the subframe of matching rows.
type Group struct {
	Keys []string
	Rows *Frame
}

// Agg describes one aggregation over a numeric column.
type Agg struct {
	Col string // input column
	Op  AggOp  // aggregation operator
	As  string // output column name; defaults to op_col
}

// AggOp enumerates supported aggregation operators.
type AggOp int

const (
	// AggCount counts non-null rows.
	AggCount AggOp = iota
	// AggSum sums non-null values.
	AggSum
	// AggMean averages non-null values.
	AggMean
	// AggMin takes the minimum of non-null values.
	AggMin
	// AggMax takes the maximum of non-null values.
	AggMax
)

// String returns the operator's name.
func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMean:
		return "mean"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("AggOp(%d)", int(op))
}

// Aggregate groups by the key columns and computes one row per group with
// the requested aggregations. The result has the key columns (as strings)
// followed by one float64 column per aggregation.
func (f *Frame) Aggregate(keys []string, aggs []Agg) (*Frame, error) {
	groups, err := f.GroupBy(keys...)
	if err != nil {
		return nil, err
	}
	keyCols := make([][]string, len(keys))
	aggCols := make([][]float64, len(aggs))
	for i := range aggCols {
		aggCols[i] = make([]float64, 0, len(groups))
	}
	for i := range keyCols {
		keyCols[i] = make([]string, 0, len(groups))
	}
	for _, g := range groups {
		for i := range keys {
			keyCols[i] = append(keyCols[i], g.Keys[i])
		}
		for i, a := range aggs {
			v, err := aggregateColumn(g.Rows, a)
			if err != nil {
				return nil, err
			}
			aggCols[i] = append(aggCols[i], v)
		}
	}
	cols := make([]*Series, 0, len(keys)+len(aggs))
	for i, k := range keys {
		cols = append(cols, NewString(k, keyCols[i]))
	}
	for i, a := range aggs {
		name := a.As
		if name == "" {
			name = a.Op.String() + "_" + a.Col
		}
		cols = append(cols, NewFloat64(name, aggCols[i]))
	}
	return New(cols...)
}

func aggregateColumn(g *Frame, a Agg) (float64, error) {
	s, err := g.Col(a.Col)
	if err != nil {
		return 0, err
	}
	if a.Op == AggCount {
		return float64(s.Len() - s.NullCount()), nil
	}
	if s.DType() != Float64 && s.DType() != Int64 {
		return 0, fmt.Errorf("frame: aggregate %s on non-numeric column %q", a.Op, a.Col)
	}
	var (
		sum  float64
		n    int
		minV = math.Inf(1)
		maxV = math.Inf(-1)
	)
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) {
			continue
		}
		v := s.Float(i)
		sum += v
		n++
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	switch a.Op {
	case AggSum:
		return sum, nil
	case AggMean:
		if n == 0 {
			return math.NaN(), nil
		}
		return sum / float64(n), nil
	case AggMin:
		if n == 0 {
			return math.NaN(), nil
		}
		return minV, nil
	case AggMax:
		if n == 0 {
			return math.NaN(), nil
		}
		return maxV, nil
	}
	return 0, fmt.Errorf("frame: unknown aggregation %v", a.Op)
}
