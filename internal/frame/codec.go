package frame

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"unicode/utf8"
)

// Exact JSON codec. The CSV codec is for interchange and is lossy by
// design (dtype narrowing, null spelling); this codec exists for
// persistence, where the bar is exact round-tripping: for any frame f,
// ReadJSON(WriteJSON(f)) has the same frame.Hash — every value bit,
// null mask, dtype, and column order preserved. Float columns are
// encoded as base64 little-endian IEEE-754 bits (JSON numbers cannot
// carry NaN, and NaN payload bits participate in the content hash);
// string columns fall back to per-value base64 only when a value is
// not valid UTF-8 (encoding/json would silently replace invalid bytes
// with U+FFFD). The dataset registry persists resident frames in this
// format, keyed by content hash, and refuses a reloaded frame whose
// hash no longer matches its key.

// frameDoc is the serialized form of a Frame.
type frameDoc struct {
	// Rows is the frame's row count, kept explicit so empty columns
	// reconstruct at the right length.
	Rows int `json:"rows"`
	// Cols are the columns in frame order.
	Cols []seriesDoc `json:"cols"`
}

// seriesDoc is the serialized form of one Series. Exactly one payload
// field is populated, matching DType.
type seriesDoc struct {
	Name  string `json:"name"`
	DType string `json:"dtype"`
	// Floats is the column's float64 bits: base64 of the little-endian
	// IEEE-754 encoding, 8 bytes per row. Bit-exact for NaN and ±Inf.
	Floats string `json:"floats,omitempty"`
	// Ints are the int64 values (JSON integers round-trip exactly).
	Ints []int64 `json:"ints,omitempty"`
	// Strings are the string values, used when every value is valid
	// UTF-8 (the common case; human-readable at rest).
	Strings []string `json:"strings,omitempty"`
	// StringsB64 replaces Strings when any value contains invalid
	// UTF-8, which encoding/json cannot carry losslessly: every value
	// is base64-encoded.
	StringsB64 []string `json:"strings_b64,omitempty"`
	// DictEncoded marks a dictionary-encoded string column: Codes
	// carries the per-row codes and Dict (or DictB64) the dictionary.
	// The representation — not just the values — survives the round
	// trip, so a reloaded registry keeps the interned footprint that
	// dataset.SizeOf budgeted for.
	DictEncoded bool `json:"dict_encoded,omitempty"`
	// Dict is the dictionary of a dict-encoded column, in code order.
	Dict []string `json:"dict,omitempty"`
	// DictB64 replaces Dict when any level contains invalid UTF-8.
	DictB64 []string `json:"dict_b64,omitempty"`
	// Codes is base64 of the little-endian int32 codes, 4 bytes per row.
	Codes string `json:"codes,omitempty"`
	// Bools are the bool values.
	Bools []bool `json:"bools,omitempty"`
	// Nulls are the null-mask row indices, ascending.
	Nulls []int `json:"nulls,omitempty"`
}

// allValidUTF8 reports whether every string is valid UTF-8, i.e.
// encoding/json can carry all of them losslessly.
func allValidUTF8(vals []string) bool {
	for _, v := range vals {
		if !utf8.ValidString(v) {
			return false
		}
	}
	return true
}

// WriteJSON serializes the frame in the exact persistence format.
func (f *Frame) WriteJSON(w io.Writer) error {
	doc := frameDoc{Rows: f.NumRows(), Cols: make([]seriesDoc, 0, f.NumCols())}
	for _, c := range f.cols {
		sd := seriesDoc{Name: c.name, DType: c.dtype.String()}
		switch c.dtype {
		case Float64:
			buf := make([]byte, 8*len(c.floats))
			for i, v := range c.floats {
				binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
			}
			sd.Floats = base64.StdEncoding.EncodeToString(buf)
		case Int64:
			sd.Ints = c.ints
			if sd.Ints == nil {
				sd.Ints = []int64{}
			}
		case String:
			if c.dict != nil {
				sd.DictEncoded = true
				buf := make([]byte, 4*len(c.codes))
				for i, code := range c.codes {
					binary.LittleEndian.PutUint32(buf[4*i:], uint32(code))
				}
				sd.Codes = base64.StdEncoding.EncodeToString(buf)
				if allValidUTF8(c.dict) {
					sd.Dict = c.dict
					if sd.Dict == nil {
						sd.Dict = []string{}
					}
				} else {
					sd.DictB64 = make([]string, len(c.dict))
					for i, v := range c.dict {
						sd.DictB64[i] = base64.StdEncoding.EncodeToString([]byte(v))
					}
				}
				break
			}
			if allValidUTF8(c.strings) {
				sd.Strings = c.strings
				if sd.Strings == nil {
					sd.Strings = []string{}
				}
			} else {
				sd.StringsB64 = make([]string, len(c.strings))
				for i, v := range c.strings {
					sd.StringsB64[i] = base64.StdEncoding.EncodeToString([]byte(v))
				}
			}
		case Bool:
			sd.Bools = c.bools
			if sd.Bools == nil {
				sd.Bools = []bool{}
			}
		default:
			return fmt.Errorf("frame: WriteJSON: column %q has unknown dtype %v", c.name, c.dtype)
		}
		for i := 0; i < c.Len(); i++ {
			if c.IsNull(i) {
				sd.Nulls = append(sd.Nulls, i)
			}
		}
		doc.Cols = append(doc.Cols, sd)
	}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("frame: encoding frame: %w", err)
	}
	return nil
}

// ReadJSON deserializes a frame written by WriteJSON, re-validating
// shape: known dtypes, per-column lengths matching the row count, and
// in-range null indices. The result hashes identically to the frame
// that was written.
func ReadJSON(r io.Reader) (*Frame, error) {
	var doc frameDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("frame: decoding frame: %w", err)
	}
	if doc.Rows < 0 {
		return nil, fmt.Errorf("frame: decoding frame: negative row count %d", doc.Rows)
	}
	cols := make([]*Series, 0, len(doc.Cols))
	for _, sd := range doc.Cols {
		var s *Series
		switch sd.DType {
		case Float64.String():
			raw, err := base64.StdEncoding.DecodeString(sd.Floats)
			if err != nil {
				return nil, fmt.Errorf("frame: column %q: decoding float bits: %w", sd.Name, err)
			}
			if len(raw) != 8*doc.Rows {
				return nil, fmt.Errorf("frame: column %q has %d float bytes, want %d", sd.Name, len(raw), 8*doc.Rows)
			}
			vals := make([]float64, doc.Rows)
			for i := range vals {
				vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
			}
			s = NewFloat64(sd.Name, vals)
		case Int64.String():
			if len(sd.Ints) != doc.Rows {
				return nil, fmt.Errorf("frame: column %q has %d ints, want %d", sd.Name, len(sd.Ints), doc.Rows)
			}
			s = NewInt64(sd.Name, sd.Ints)
		case String.String():
			if sd.DictEncoded {
				dict := sd.Dict
				if sd.DictB64 != nil {
					dict = make([]string, len(sd.DictB64))
					for i, b := range sd.DictB64 {
						raw, err := base64.StdEncoding.DecodeString(b)
						if err != nil {
							return nil, fmt.Errorf("frame: column %q: decoding dict level %d: %w", sd.Name, i, err)
						}
						dict[i] = string(raw)
					}
				}
				raw, err := base64.StdEncoding.DecodeString(sd.Codes)
				if err != nil {
					return nil, fmt.Errorf("frame: column %q: decoding codes: %w", sd.Name, err)
				}
				if len(raw) != 4*doc.Rows {
					return nil, fmt.Errorf("frame: column %q has %d code bytes, want %d", sd.Name, len(raw), 4*doc.Rows)
				}
				codes := make([]int32, doc.Rows)
				for i := range codes {
					codes[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
				}
				s, err = NewStringDict(sd.Name, codes, dict)
				if err != nil {
					return nil, err
				}
				break
			}
			vals := sd.Strings
			if sd.StringsB64 != nil {
				vals = make([]string, len(sd.StringsB64))
				for i, b := range sd.StringsB64 {
					raw, err := base64.StdEncoding.DecodeString(b)
					if err != nil {
						return nil, fmt.Errorf("frame: column %q: decoding string %d: %w", sd.Name, i, err)
					}
					vals[i] = string(raw)
				}
			}
			if len(vals) != doc.Rows {
				return nil, fmt.Errorf("frame: column %q has %d strings, want %d", sd.Name, len(vals), doc.Rows)
			}
			s = NewString(sd.Name, vals)
		case Bool.String():
			if len(sd.Bools) != doc.Rows {
				return nil, fmt.Errorf("frame: column %q has %d bools, want %d", sd.Name, len(sd.Bools), doc.Rows)
			}
			s = NewBool(sd.Name, sd.Bools)
		default:
			return nil, fmt.Errorf("frame: column %q has unknown dtype %q", sd.Name, sd.DType)
		}
		prev := -1
		for _, i := range sd.Nulls {
			if i < 0 || i >= doc.Rows || i <= prev {
				return nil, fmt.Errorf("frame: column %q has invalid null index %d", sd.Name, i)
			}
			prev = i
			s.SetNull(i)
		}
		cols = append(cols, s)
	}
	f, err := New(cols...)
	if err != nil {
		return nil, fmt.Errorf("frame: decoding frame: %w", err)
	}
	if f.NumCols() > 0 && f.NumRows() != doc.Rows {
		return nil, fmt.Errorf("frame: decoded %d rows, document says %d", f.NumRows(), doc.Rows)
	}
	return f, nil
}
