package frame

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// roundTrip encodes f with WriteJSON and decodes it back, failing the
// test on either error.
func roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	return g
}

// TestCodecHashIdentity is the codec's contract: the decoded frame
// hashes identically to the original, across every dtype and the
// values JSON itself cannot carry (NaN with payload bits, ±Inf,
// negative zero, invalid UTF-8, nulls).
func TestCodecHashIdentity(t *testing.T) {
	quietNaN := math.NaN()
	payloadNaN := math.Float64frombits(math.Float64bits(quietNaN) ^ 0x0f)
	fl := NewFloat64("f", []float64{0, math.Copysign(0, -1), quietNaN, payloadNaN, math.Inf(1), math.Inf(-1), 0.1, math.MaxFloat64, math.SmallestNonzeroFloat64})
	fl.SetNull(6)
	in := NewInt64("i", []int64{math.MinInt64, -1, 0, 1, math.MaxInt64, 42, 42, 42, 42})
	in.SetNull(0)
	st := NewString("s", []string{"", "plain", "uniçode", "with\nnewline", `qu"ote`, "tab\t", "nul\x00byte", "ok", "ok"})
	st.SetNull(8)
	bo := NewBool("b", []bool{true, false, true, false, true, false, true, false, true})
	f, err := New(fl, in, st, bo)
	if err != nil {
		t.Fatal(err)
	}

	g := roundTrip(t, f)
	if g.Hash() != f.Hash() {
		t.Fatalf("hash mismatch after round trip: %s != %s", g.Hash(), f.Hash())
	}
	// Hash covers bits and nulls; spot-check the trickiest value too.
	if got := math.Float64bits(g.MustCol("f").Float(3)); got != math.Float64bits(payloadNaN) {
		t.Fatalf("NaN payload bits not preserved: %x", got)
	}
}

// TestCodecInvalidUTF8 pins the base64 fallback: a string column with
// invalid UTF-8 survives exactly, where plain encoding/json would have
// substituted U+FFFD.
func TestCodecInvalidUTF8(t *testing.T) {
	bad := string([]byte{0xff, 0xfe, 'x'})
	st := NewString("s", []string{"fine", bad})
	f, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"strings_b64"`) {
		t.Fatalf("invalid UTF-8 column not base64-encoded: %s", buf.String())
	}
	g, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Hash() != f.Hash() {
		t.Fatal("hash mismatch for invalid-UTF-8 strings")
	}
	if got := g.MustCol("s").Str(1); got != bad {
		t.Fatalf("invalid UTF-8 value mangled: %q", got)
	}
}

// TestCodecEmptyFrames covers the degenerate shapes: zero columns and
// zero rows.
func TestCodecEmptyFrames(t *testing.T) {
	empty, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if g := roundTrip(t, empty); g.NumRows() != 0 || g.NumCols() != 0 {
		t.Fatalf("empty frame round-tripped to %dx%d", g.NumRows(), g.NumCols())
	}

	zeroRows, err := New(NewFloat64("f", nil), NewString("s", nil))
	if err != nil {
		t.Fatal(err)
	}
	g := roundTrip(t, zeroRows)
	if g.Hash() != zeroRows.Hash() {
		t.Fatal("zero-row frame hash mismatch")
	}
}

// TestCodecRejectsMalformed pins the validation errors: length
// mismatches, unknown dtypes, bad null indices, bad base64.
func TestCodecRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"not-json":        `{"rows":`,
		"negative-rows":   `{"rows":-1,"cols":[]}`,
		"unknown-dtype":   `{"rows":1,"cols":[{"name":"x","dtype":"decimal128"}]}`,
		"short-floats":    `{"rows":2,"cols":[{"name":"x","dtype":"float64","floats":"AAAAAAAAAAA="}]}`,
		"bad-base64":      `{"rows":1,"cols":[{"name":"x","dtype":"float64","floats":"!!!"}]}`,
		"short-ints":      `{"rows":2,"cols":[{"name":"x","dtype":"int64","ints":[1]}]}`,
		"short-strings":   `{"rows":2,"cols":[{"name":"x","dtype":"string","strings":["a"]}]}`,
		"bad-strings-b64": `{"rows":1,"cols":[{"name":"x","dtype":"string","strings_b64":["!!!"]}]}`,
		"short-bools":     `{"rows":2,"cols":[{"name":"x","dtype":"bool","bools":[true]}]}`,
		"null-oob":        `{"rows":1,"cols":[{"name":"x","dtype":"int64","ints":[1],"nulls":[1]}]}`,
		"null-negative":   `{"rows":1,"cols":[{"name":"x","dtype":"int64","ints":[1],"nulls":[-1]}]}`,
		"null-dup":        `{"rows":1,"cols":[{"name":"x","dtype":"int64","ints":[1],"nulls":[0,0]}]}`,
		"dup-columns":     `{"rows":1,"cols":[{"name":"x","dtype":"int64","ints":[1]},{"name":"x","dtype":"int64","ints":[2]}]}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
				t.Fatalf("ReadJSON accepted malformed document %s", doc)
			}
		})
	}
}
