package frame

import (
	"math"
	"testing"
)

func deptFrame() *Frame {
	return MustNew(
		NewString("dept", []string{"eng", "ops", "eng", "ops", "eng"}),
		NewString("site", []string{"a", "a", "b", "b", "a"}),
		NewFloat64("pay", []float64{10, 20, 30, 40, 50}),
	)
}

func TestGroupBySingleKey(t *testing.T) {
	groups, err := deptFrame().GroupBy("dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Deterministic sorted key order: eng before ops.
	if groups[0].Keys[0] != "eng" || groups[0].Rows.NumRows() != 3 {
		t.Fatalf("first group %v with %d rows", groups[0].Keys, groups[0].Rows.NumRows())
	}
	if groups[1].Keys[0] != "ops" || groups[1].Rows.NumRows() != 2 {
		t.Fatalf("second group %v", groups[1].Keys)
	}
}

func TestGroupByMultiKey(t *testing.T) {
	groups, err := deptFrame().GroupBy("dept", "site")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
}

func TestGroupByUnknownColumn(t *testing.T) {
	if _, err := deptFrame().GroupBy("nope"); err == nil {
		t.Fatal("unknown group key accepted")
	}
}

func TestGroupByNullKey(t *testing.T) {
	s := NewString("g", []string{"x", "y", "x"})
	s.SetNull(1)
	f := MustNew(s, NewFloat64("v", []float64{1, 2, 3}))
	groups, err := f.GroupBy("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("null key grouping produced %d groups", len(groups))
	}
}

func TestAggregate(t *testing.T) {
	out, err := deptFrame().Aggregate([]string{"dept"}, []Agg{
		{Col: "pay", Op: AggMean},
		{Col: "pay", Op: AggSum, As: "total"},
		{Col: "pay", Op: AggCount},
		{Col: "pay", Op: AggMin},
		{Col: "pay", Op: AggMax},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("aggregate rows = %d", out.NumRows())
	}
	// eng: pays 10,30,50.
	if got := out.MustCol("mean_pay").Float(0); got != 30 {
		t.Errorf("eng mean = %v", got)
	}
	if got := out.MustCol("total").Float(0); got != 90 {
		t.Errorf("eng total = %v", got)
	}
	if got := out.MustCol("count_pay").Float(0); got != 3 {
		t.Errorf("eng count = %v", got)
	}
	if got := out.MustCol("min_pay").Float(0); got != 10 {
		t.Errorf("eng min = %v", got)
	}
	if got := out.MustCol("max_pay").Float(0); got != 50 {
		t.Errorf("eng max = %v", got)
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	v := NewFloat64("v", []float64{1, 100, 3})
	v.SetNull(1)
	f := MustNew(NewString("g", []string{"a", "a", "a"}), v)
	out, err := f.Aggregate([]string{"g"}, []Agg{{Col: "v", Op: AggMean}, {Col: "v", Op: AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.MustCol("mean_v").Float(0); got != 2 {
		t.Fatalf("mean with null = %v, want 2", got)
	}
	if got := out.MustCol("count_v").Float(0); got != 2 {
		t.Fatalf("count with null = %v, want 2", got)
	}
}

func TestAggregateEmptyGroupStats(t *testing.T) {
	v := NewFloat64("v", []float64{1})
	v.SetNull(0)
	f := MustNew(NewString("g", []string{"a"}), v)
	out, err := f.Aggregate([]string{"g"}, []Agg{{Col: "v", Op: AggMean}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.MustCol("mean_v").Float(0)) {
		t.Fatal("mean of all-null group should be NaN")
	}
}

func TestAggregateNonNumeric(t *testing.T) {
	f := deptFrame()
	if _, err := f.Aggregate([]string{"dept"}, []Agg{{Col: "site", Op: AggSum}}); err == nil {
		t.Fatal("sum over string column accepted")
	}
	// Count over strings is fine.
	out, err := f.Aggregate([]string{"dept"}, []Agg{{Col: "site", Op: AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	if out.MustCol("count_site").Float(0) != 3 {
		t.Fatal("count over string wrong")
	}
}

func TestJoinInner(t *testing.T) {
	left := MustNew(
		NewString("id", []string{"a", "b", "c"}),
		NewFloat64("x", []float64{1, 2, 3}),
	)
	right := MustNew(
		NewString("id", []string{"b", "c", "d"}),
		NewFloat64("y", []float64{20, 30, 40}),
	)
	out, err := left.Join(right, "id", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("inner join rows = %d", out.NumRows())
	}
	if out.MustCol("id").Str(0) != "b" || out.MustCol("y").Float(0) != 20 {
		t.Fatal("inner join content wrong")
	}
}

func TestJoinLeft(t *testing.T) {
	left := MustNew(
		NewString("id", []string{"a", "b"}),
		NewFloat64("x", []float64{1, 2}),
	)
	right := MustNew(
		NewString("id", []string{"b"}),
		NewFloat64("y", []float64{20}),
	)
	out, err := left.Join(right, "id", LeftJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("left join rows = %d", out.NumRows())
	}
	if !out.MustCol("y").IsNull(0) {
		t.Fatal("unmatched left row should have null y")
	}
	if out.MustCol("y").Float(1) != 20 {
		t.Fatal("matched row wrong")
	}
}

func TestJoinDuplicateRightKeysFanOut(t *testing.T) {
	left := MustNew(NewString("id", []string{"a"}), NewFloat64("x", []float64{1}))
	right := MustNew(NewString("id", []string{"a", "a"}), NewFloat64("y", []float64{10, 11}))
	out, err := left.Join(right, "id", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("fan-out rows = %d, want 2", out.NumRows())
	}
}

func TestJoinNameCollision(t *testing.T) {
	left := MustNew(NewString("id", []string{"a"}), NewFloat64("v", []float64{1}))
	right := MustNew(NewString("id", []string{"a"}), NewFloat64("v", []float64{2}))
	out, err := left.Join(right, "id", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("v_right") {
		t.Fatalf("collision not suffixed: %v", out.Names())
	}
	if out.MustCol("v").Float(0) != 1 || out.MustCol("v_right").Float(0) != 2 {
		t.Fatal("collision values wrong")
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	lid := NewString("id", []string{"a", "b"})
	lid.SetNull(0)
	left := MustNew(lid, NewFloat64("x", []float64{1, 2}))
	rid := NewString("id", []string{"a", "b"})
	rid.SetNull(0)
	right := MustNew(rid, NewFloat64("y", []float64{10, 20}))
	out, err := left.Join(right, "id", InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.MustCol("id").Str(0) != "b" {
		t.Fatalf("null keys matched: %d rows", out.NumRows())
	}
}

func TestJoinKeyDTypeMismatch(t *testing.T) {
	left := MustNew(NewString("id", []string{"1"}))
	right := MustNew(NewInt64("id", []int64{1}))
	if _, err := left.Join(right, "id", InnerJoin); err == nil {
		t.Fatal("dtype mismatch join accepted")
	}
}

func TestJoinMissingKey(t *testing.T) {
	left := MustNew(NewString("id", []string{"1"}))
	right := MustNew(NewString("other", []string{"1"}))
	if _, err := left.Join(right, "id", InnerJoin); err == nil {
		t.Fatal("missing right key accepted")
	}
}
