package frame

// The streaming ReadCSV exists so that loading a large CSV costs the
// column values plus fixed scratch, not the [][]string record matrix
// csv.ReadAll materializes. This file keeps the pre-streaming loader as
// a test-only reference and checks the streaming path allocates
// strictly less — the "max-RSS" guard the CI bench smoke runs.

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
)

// readCSVBuffered is the pre-streaming ReadCSV (csv.ReadAll over the
// whole file) with the same trimming rules, kept only as the memory
// baseline the streaming loader is compared against.
func readCSVBuffered(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("frame: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("frame: csv has no header row")
	}
	header := records[0]
	rows := records[1:]
	cols := make([]*Series, len(header))
	for j, name := range header {
		raw := make([]string, len(rows))
		for i, rec := range rows {
			raw[i] = strings.TrimSpace(rec[j])
		}
		cols[j] = inferSeries(strings.TrimSpace(name), raw)
	}
	return New(cols...)
}

// loadFixtureCSV renders a mixed-type CSV of n rows for the memory
// comparison.
func loadFixtureCSV(n int) string {
	var b strings.Builder
	b.WriteString("id,score,group,ok\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%.3f,g%d,%v\n", i, float64(i)/3, i%5, i%2 == 0)
	}
	return b.String()
}

// allocDelta runs load once and returns the bytes it allocated
// (TotalAlloc delta; package tests run sequentially, so no other
// goroutine muddies the counter).
func allocDelta(t *testing.T, text string, load func(io.Reader) (*Frame, error)) uint64 {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f, err := load(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(f)
	return after.TotalAlloc - before.TotalAlloc
}

func TestStreamingLoadAllocsBelowBuffered(t *testing.T) {
	const rows = 100_000
	text := loadFixtureCSV(rows)

	stream, err := ReadCSV(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := readCSVBuffered(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !stream.Equal(buffered) {
		t.Fatal("streaming and buffered loads disagree on content")
	}

	streamBytes := allocDelta(t, text, ReadCSV)
	bufferedBytes := allocDelta(t, text, readCSVBuffered)
	t.Logf("streaming allocated %d bytes, buffered %d (%.0f%%)",
		streamBytes, bufferedBytes, 100*float64(streamBytes)/float64(bufferedBytes))
	// Require real headroom, not a rounding win: the record matrix the
	// buffered path materializes is ~rows*(cols+1) slice/string headers.
	if float64(streamBytes) >= 0.8*float64(bufferedBytes) {
		t.Fatalf("streaming load allocated %d bytes, want well below buffered %d",
			streamBytes, bufferedBytes)
	}
}

// BenchmarkCSVLoad compares the streaming loader against the buffered
// reference at 100k rows; -benchmem makes the allocation gap visible
// in the CI bench smoke.
func BenchmarkCSVLoad(b *testing.B) {
	text := loadFixtureCSV(100_000)
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadCSV(strings.NewReader(text)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := readCSVBuffered(strings.NewReader(text)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
