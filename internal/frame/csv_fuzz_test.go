package frame

import (
	"strings"
	"testing"
)

// FuzzReadCSV throws arbitrary bytes at the CSV reader. The parser may
// reject input with an error, but it must never panic, and any frame it
// does produce must be internally consistent: rectangular, hashable,
// deterministic across re-parses, and writable as CSV that parses
// again.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"",
		"id,v\n1,2\n",
		"\uFEFFid,v\n1,2\n",                  // Excel BOM
		"n, s ,b\n 42 , x ,  \n7,y, true \n", // padded cells, null cell
		"v\nNaN\nNaN\n",                      // all-NaN numeric column
		"s\nNaN\nInf\n+Inf\n-Inf\n",          // non-finite literals stay text
		"v\n1.5\nNaN\n-Inf\n",                // mixed finite/non-finite floats
		"a,b\n\"x,y\",\"line\nbreak\"\n",     // quoted separators and newlines
		"a,a\n1,2\n",                         // duplicate header
		",b\n1,2\n",                          // empty header cell
		"a,b\n1\n",                           // ragged row
		"a\r\n1\r\n2\r\n",                    // CRLF
		"x\n9223372036854775807\n",           // int64 max
		"x\n1e309\n",                         // float overflow
		"x\ntrue\nfalse\n\n",                 // bools with trailing blank line
		"héader,ü\n√,∞\n",                    // non-ASCII
		// Dictionary-encoding stress: levels differing only by case or
		// by surrounding whitespace must stay distinct levels.
		"g\nx\nX\n\" x\"\n\"x \"\nx\nX\n",
		// Empty-string level next to a null cell: in a multi-column row
		// "" is a value for string columns, absence for typed ones.
		"g,h\na,1\n\"\",2\nb,\n,4\n",
		// Mostly-unique column: the ingest cardinality policy must keep
		// ID-like columns plain rather than building a useless dict.
		"id,g\nu-001,x\nu-002,x\nu-003,y\nu-004,y\nu-005,x\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		fr, err := ReadCSVString(input)
		if err != nil {
			return
		}
		rows, cols := fr.NumRows(), fr.NumCols()
		if cols == 0 {
			t.Fatalf("parsed frame has no columns: %q", input)
		}
		for j := 0; j < cols; j++ {
			c := fr.ColAt(j)
			if c.Len() != rows {
				t.Fatalf("column %q has %d rows, frame has %d: %q", c.Name(), c.Len(), rows, input)
			}
			for i := 0; i < rows; i++ {
				_ = c.Value(i) // every cell must be addressable without panic
			}
			if _, dict, ok := c.DictView(); ok {
				// Dictionary invariants: bounded, distinct levels, and a
				// value-identical plain rebuild (representation must be
				// invisible to Equal).
				if len(dict) > rows+1 {
					t.Fatalf("column %q dict has %d levels for %d rows: %q", c.Name(), len(dict), rows, input)
				}
				seen := make(map[string]bool, len(dict))
				for _, lv := range dict {
					if seen[lv] {
						t.Fatalf("column %q dict repeats level %q: %q", c.Name(), lv, input)
					}
					seen[lv] = true
				}
				plain := NewString(c.Name(), c.Strings())
				for i := 0; i < rows; i++ {
					if c.IsNull(i) {
						plain.SetNull(i)
					}
				}
				if !c.Equal(plain) {
					t.Fatalf("column %q: dict and plain rebuild disagree: %q", c.Name(), input)
				}
			}
		}
		if h1, h2 := fr.Hash(), fr.Hash(); h1 != h2 {
			t.Fatalf("Hash not deterministic: %s vs %s", h1, h2)
		}
		again, err := ReadCSVString(input)
		if err != nil {
			t.Fatalf("re-parse of accepted input failed: %v: %q", err, input)
		}
		if !fr.Equal(again) {
			t.Fatalf("re-parse not deterministic: %q", input)
		}
		var sb strings.Builder
		if err := fr.WriteCSV(&sb); err != nil {
			t.Fatalf("WriteCSV of parsed frame failed: %v: %q", err, input)
		}
		back, err := ReadCSVString(sb.String())
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\ncsv: %q\ninput: %q", err, sb.String(), input)
		}
		// Round-trip row preservation has one documented loss: in a
		// single-column frame a null/empty cell writes as a blank line,
		// which the reader skips (multi-column rows keep their commas).
		wantRows := rows
		if cols == 1 {
			wantRows = 0
			c := fr.ColAt(0)
			for i := 0; i < rows; i++ {
				if c.FormatValue(i) != "" {
					wantRows++
				}
			}
		}
		if back.NumRows() != wantRows || back.NumCols() != cols {
			t.Fatalf("round-trip shape %dx%d, want %dx%d: %q", back.NumRows(), back.NumCols(), wantRows, cols, input)
		}
	})
}
